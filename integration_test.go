package provrpq_test

import (
	"math/rand"
	"os"
	"testing"

	"provrpq"
	"provrpq/internal/automata"
	"provrpq/internal/baseline"
	"provrpq/internal/derive"
	"provrpq/internal/index"
	"provrpq/internal/workload"
)

// TestEngineAgreesWithOracleOnDatasets is the end-to-end integration test:
// random queries (safe and unsafe) over BioAID/QBLast runs, public Engine
// results compared pair-for-pair with the product-BFS oracle.
func TestEngineAgreesWithOracleOnDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, d := range []*workload.Dataset{workload.BioAID(), workload.QBLast()} {
		run, err := derive.Derive(d.Spec, derive.Options{Seed: 5, TargetEdges: 300})
		if err != nil {
			t.Fatal(err)
		}
		pubRun := rehydrate(t, d, run)
		eng := provrpq.NewEngine(pubRun)
		r := rand.New(rand.NewSource(9))

		var queries []string
		for k := 0; k <= 4; k += 2 {
			queries = append(queries, d.SafeIFQ(r, k, true), d.SafeIFQ(r, k, false))
		}
		queries = append(queries, d.StarQuery())
		for i := 0; i < 6; i++ {
			queries = append(queries, d.RandomQuery(r, 2))
		}

		for _, qs := range queries {
			q, err := provrpq.ParseQuery(qs)
			if err != nil {
				t.Fatalf("%s: parse %q: %v", d.Name, qs, err)
			}
			pairs, err := eng.Evaluate(q)
			if err != nil {
				t.Fatalf("%s: evaluate %q: %v", d.Name, qs, err)
			}
			oracle := baseline.NewOracle(run, automata.MustParse(qs))
			want := map[[2]int]bool{}
			for _, u := range run.AllNodes() {
				for _, v := range oracle.From(u) {
					want[[2]int{int(u), int(v)}] = true
				}
			}
			if len(pairs) != len(want) {
				t.Fatalf("%s query %q: engine %d pairs, oracle %d", d.Name, qs, len(pairs), len(want))
			}
			for _, p := range pairs {
				if !want[[2]int{int(p.From), int(p.To)}] {
					t.Fatalf("%s query %q: spurious pair %v", d.Name, qs, p)
				}
			}
		}
	}
}

// TestRelaxedSafetyEndToEnd drives the context-restricted safety extension
// through the public API on the fork dataset shape.
func TestRelaxedSafetyEndToEnd(t *testing.T) {
	spec, err := provrpq.NewSpecBuilder().
		Start("S").
		Prod("S", []string{"M", "b"}, []provrpq.BodyEdge{{From: 0, To: 1, Tag: "b"}}).
		Prod("M", []string{"a", "M"}, []provrpq.BodyEdge{{From: 0, To: 1, Tag: "a"}}).
		Prod("M", []string{"a"}, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := spec.Derive(provrpq.DeriveOptions{Seed: 1, TargetEdges: 200})
	if err != nil {
		t.Fatal(err)
	}
	eng := provrpq.NewEngine(run)
	q := provrpq.MustParseQuery("a*.b")
	strict, err := eng.IsSafe(q)
	if err != nil {
		t.Fatal(err)
	}
	if strict {
		t.Fatal("a*.b should be strictly unsafe")
	}
	relaxed, err := eng.IsSafeRelaxed(q)
	if err != nil {
		t.Fatal(err)
	}
	if !relaxed {
		t.Fatal("a*.b should be relaxed-safe")
	}
	// After relaxation the constant-time strategies are available and agree
	// with the G1 baseline.
	as := run.NodesOfModule("a")
	bs := run.NodesOfModule("b")
	fast, err := eng.AllPairs(q, as, bs, provrpq.StrategyOptRPL)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := eng.AllPairs(q, as, bs, provrpq.StrategyG1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(slow) || len(fast) != len(as) {
		t.Fatalf("relaxed decode: optRPL %d, G1 %d, want %d (every a reaches b via a*)",
			len(fast), len(slow), len(as))
	}
}

// rehydrate converts an internal run to a public one through the JSON
// persistence layer, exercising it on dataset-scale runs.
func rehydrate(t *testing.T, d *workload.Dataset, run *derive.Run) *provrpq.Run {
	t.Helper()
	specJSON, err := d.Spec.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	runJSON, err := derive.EncodeRun(run)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	specPath := dir + "/spec.json"
	runPath := dir + "/run.json"
	if err := os.WriteFile(specPath, specJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(runPath, runJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := provrpq.LoadSpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := provrpq.LoadRun(runPath, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the index used by the oracle comparison on identical ids.
	_ = index.Build(run)
	return pub
}
