package provrpq

import (
	"errors"
	"fmt"
	"sync"

	"provrpq/internal/derive"
)

// ErrVersionMismatch marks a conditional append whose expected version no
// longer matches the run's current version (match with errors.Is). The
// usual cause is a retry of an append that actually committed — e.g. the
// client saw a timeout while the server finished the work — so the caller
// should re-read the run's version and decide whether its batch is
// already applied.
var ErrVersionMismatch = errors.New("provrpq: run version mismatch")

// Batch is one append-only growth step for a run: new atomic module
// executions (each carrying the derivation-based label assigned when the
// executing workflow fired the production that created it) plus new tagged
// data edges. Real provenance graphs are not derived once — a run grows
// while its workflow executes — and because labels are dynamic (assigned
// at node-creation time, never recomputed; Section II-B), growth never
// touches an existing label: appending pays only for the batch and the
// frontier of nodes its edges attach to, and every label-based answer over
// the pre-existing nodes is byte-identical before and after.
//
// Wire shape (the same node and edge encoding as a run upload):
//
//	{"nodes": [{"name": "a:9", "module": "a", "label": "<base64>"}],
//	 "edges": [{"From": 3, "To": 12, "Tag": "s"}]}
//
// Edge endpoints use the grown run's numbering: ids below the pre-append
// node count reference existing nodes, ids at or above it reference batch
// nodes in order. Like an uploaded run, appended content must describe a
// derivation of the specification for safe-query answers to stay exact;
// the same structural validation (modules, labels, tags, endpoint ranges,
// name uniqueness) is enforced.
type Batch struct {
	b    derive.Batch
	spec *Spec
}

// DecodeBatch deserializes a growth batch against the specification of the
// run it will be appended to. Validation that needs the run itself —
// endpoint ranges, node-name uniqueness — happens at append time.
func DecodeBatch(spec *Spec, data []byte) (*Batch, error) {
	b, err := derive.DecodeBatch(spec.s, data)
	if err != nil {
		return nil, err
	}
	return &Batch{b: b, spec: spec}, nil
}

// EncodeBatch serializes the batch (the append log's payload format).
func EncodeBatch(b *Batch) ([]byte, error) {
	if b == nil || b.spec == nil || b.spec.s == nil {
		return nil, fmt.Errorf("provrpq: nil batch")
	}
	return derive.EncodeBatch(b.spec.s, b.b)
}

// NumNodes returns the batch's new-node count.
func (b *Batch) NumNodes() int { return len(b.b.Nodes) }

// NumEdges returns the batch's new-edge count.
func (b *Batch) NumEdges() int { return len(b.b.Edges) }

// AppendStats reports the work an append performed. The incremental-cost
// contract is O(Touched + NewEdges) amortized — independent of the run's
// total size, unlike a full re-derivation's O(n).
type AppendStats struct {
	// NewNodes and NewEdges count the batch's contents.
	NewNodes, NewEdges int
	// Frontier counts the pre-existing nodes the new edges attach to —
	// the only old nodes whose derived state (adjacency) changes at all.
	Frontier int
	// Touched = NewNodes + Frontier.
	Touched int
}

// Append extends the run with one growth batch, in place: new nodes are
// validated and labeled state registered, and adjacency is extended only
// at the batch's frontier, never re-deriving the run's other nodes. A
// rejected batch (bad module, label, tag, endpoint or duplicate name)
// leaves the run byte-identical.
//
// Append mutates the run: it is for exclusive owners (load → grow → save
// pipelines). Engines built over the run before the append do not see the
// growth — build a new Engine afterwards. A run served concurrently from a
// Catalog grows through Catalog.AppendEdges instead, which versions the
// run and swaps engines atomically.
func (r *Run) Append(b *Batch) (AppendStats, error) {
	if b == nil || b.spec == nil {
		return AppendStats{}, fmt.Errorf("provrpq: nil batch")
	}
	if b.spec.s != r.r.Spec {
		return AppendStats{}, fmt.Errorf("provrpq: batch was not decoded against the run's specification")
	}
	st, err := derive.AppendEdges(r.r, b.b)
	if err != nil {
		return AppendStats{}, err
	}
	return AppendStats(st), nil
}

// AppendResult describes one Catalog.AppendEdges commit.
type AppendResult struct {
	// Run is the new current version (the one subsequent Engine lookups
	// serve).
	Run *Run
	// Version counts the growth batches applied to the run since it was
	// first registered — including batches replayed from the append log at
	// boot — so it is stable across restarts of a durable catalog.
	Version int
	// Stats reports the incremental work of this append.
	Stats AppendStats
}

// AppendEdges grows the named run by one batch and atomically swaps the
// grown version in: the run is versioned (never mutated in place), the old
// version's lazily-built engine — and with it every per-engine artifact
// that depends on run contents: the inverted edge index, unsafe-query
// evaluators, label snapshots — is dropped so the next Engine call builds
// over the grown run, while compiled query plans, which depend only on
// (specification, query), stay shared through the catalog's plan cache
// and hit immediately on the new engine. In-flight queries keep reading
// the old version, which stays internally consistent forever.
//
// On a durable catalog the batch is committed to the per-run append log —
// through the store's manifest, so a crash mid-append replays cleanly or
// is invisible, never torn — before the grown version becomes visible,
// and a restart (NewCatalogFromStore, rpqd -data-dir) replays the log
// onto the stored base run. A persist failure surfaces as ErrStoreFailed
// and leaves the catalog serving the un-grown version.
func (c *Catalog) AppendEdges(runName string, b *Batch) (AppendResult, error) {
	return c.appendEdges(runName, b, -1)
}

// AppendEdgesCAS is AppendEdges conditioned on the run's current version:
// the append commits only if the version still equals expectedVersion,
// otherwise nothing changes and the error matches ErrVersionMismatch.
// This is the idempotency guard for retries — an append is not naturally
// idempotent (an edges-only batch applied twice duplicates its edges), so
// a client that cannot tell whether its request committed (a timeout, a
// dropped connection) sends the version it grew the batch against; if the
// first attempt actually committed, the retry bounces off the bumped
// version instead of double-applying.
func (c *Catalog) AppendEdgesCAS(runName string, b *Batch, expectedVersion int) (AppendResult, error) {
	if expectedVersion < 0 {
		return AppendResult{}, fmt.Errorf("provrpq: catalog: negative expected version %d for run %q", expectedVersion, runName)
	}
	return c.appendEdges(runName, b, expectedVersion)
}

// appendEdges implements AppendEdges; expectedVersion < 0 means
// unconditional.
func (c *Catalog) appendEdges(runName string, b *Batch, expectedVersion int) (AppendResult, error) {
	if b == nil || b.spec == nil {
		return AppendResult{}, fmt.Errorf("provrpq: catalog: nil batch for run %q", runName)
	}
	// One growth at a time per run: two concurrent growths of one run
	// would fork its version history (the second Grow would start from a
	// stale base and the swap would silently drop the first batch), and
	// the store's append sequence must match the order versions become
	// visible. Growth of other runs proceeds in parallel.
	mu := c.growLock(runName)
	mu.Lock()
	defer mu.Unlock()
	cur, ok := c.reg.Run(runName)
	if !ok {
		return AppendResult{}, fmt.Errorf("provrpq: catalog: unknown run %q", runName)
	}
	if expectedVersion >= 0 {
		if gen, _ := c.reg.RunGeneration(runName); gen != expectedVersion {
			return AppendResult{}, fmt.Errorf("%w: run %q is at version %d, batch expected %d", ErrVersionMismatch, runName, gen, expectedVersion)
		}
	}
	if b.spec.s != cur.r.Spec {
		return AppendResult{}, fmt.Errorf("provrpq: catalog: batch for run %q was not decoded against its specification", runName)
	}
	grown, st, err := cur.r.Grow(b.b)
	if err != nil {
		return AppendResult{}, err
	}
	if c.store != nil {
		// The append log persists columnar batches (DecodeBatch sniffs, so
		// JSON batches from an older log replay identically).
		data, err := derive.EncodeBatchColumnar(b.spec.s, b.b)
		if err != nil {
			return AppendResult{}, err
		}
		// Durable before visible, like every catalog mutation: once a
		// reader can see the grown version, a restart replays it.
		if _, err := c.store.st.AppendRun(runName, data); err != nil {
			return AppendResult{}, fmt.Errorf("%w: run %q append: %w", ErrStoreFailed, runName, err)
		}
	}
	newRun := &Run{r: grown, spec: cur.spec}
	gen, ok := c.reg.ReplaceRun(runName, newRun)
	if !ok {
		// Unreachable: runs are never deregistered and growMu is held.
		return AppendResult{}, fmt.Errorf("provrpq: catalog: run %q disappeared during append", runName)
	}
	// Notify standing-query subscribers while growMu is still held, so a
	// run's events arrive in version order with no gaps. The batch's nodes
	// are the grown run's id suffix: [old count, old count + NewNodes).
	c.notifyAppend(AppendEvent{
		RunName:      runName,
		Version:      gen,
		Run:          newRun,
		FirstNewNode: NodeID(cur.NumNodes()),
		NewNodes:     st.NewNodes,
		NewEdges:     st.NewEdges,
	})
	return AppendResult{Run: newRun, Version: gen, Stats: AppendStats(st)}, nil
}

// growLock returns the named run's growth mutex, creating it on first
// use. Entries are never removed — runs are never deregistered, and a
// mutex is a few words. growMu shares persistMu's rank: the two are
// never held together (the lockorder analyzer flags equal-rank nesting).
//
//provrpq:lockrank growMu 10
func (c *Catalog) growLock(runName string) *sync.Mutex {
	mu, _ := c.growMus.LoadOrStore(runName, &sync.Mutex{})
	return mu.(*sync.Mutex)
}

// RunVersion reports how many growth batches have been applied to the
// named run since it was registered or last compacted (0 for a run that
// never grew; on a durable catalog, batches replayed at boot count).
func (c *Catalog) RunVersion(name string) (int, bool) { return c.reg.RunGeneration(name) }

// CompactRun folds the named run's committed growth batches into a single
// stored base payload, bounding the append log: without compaction a
// continuously growing run accumulates one file per batch and every boot
// replays the entire history. The run itself is untouched — compaction
// rewrites how the current version is stored, not what it contains — and
// its version resets to 0 (versions count batches since the last
// compaction). The switch is committed atomically through the store's
// manifest: a crash mid-compaction leaves the old base and log fully in
// force, never a double-applied batch. Only meaningful on a durable
// catalog; without a store it is an error.
func (c *Catalog) CompactRun(runName string) error {
	if c.store == nil {
		return fmt.Errorf("provrpq: catalog: compacting run %q: catalog has no store", runName)
	}
	mu := c.growLock(runName)
	mu.Lock()
	defer mu.Unlock()
	cur, ok := c.reg.Run(runName)
	if !ok {
		return fmt.Errorf("provrpq: catalog: unknown run %q", runName)
	}
	data, err := EncodeRunColumnar(cur)
	if err != nil {
		return err
	}
	if _, err := c.store.st.CompactRun(runName, data); err != nil {
		return fmt.Errorf("%w: run %q compaction: %w", ErrStoreFailed, runName, err)
	}
	c.reg.SetRunGeneration(runName, 0)
	return nil
}

// ReleaseEngine drops the named run's lazily-built engine while keeping
// the run registered: the next Engine call rebuilds it (and re-resolves
// its compiled plans from the shared cache). A long-lived daemon holding
// many rarely-queried runs uses this to bound memory — a built engine
// pins the run's inverted edge index and unsafe-query evaluators, which
// can dwarf the run itself.
func (c *Catalog) ReleaseEngine(runName string) error {
	if !c.reg.DropEngine(runName) {
		return fmt.Errorf("provrpq: catalog: unknown run %q", runName)
	}
	return nil
}
