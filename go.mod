module provrpq

go 1.24
