package provrpq

import (
	"fmt"
	"sync"

	"provrpq/internal/catalog"
	"provrpq/internal/parallel"
)

// ErrAlreadyRegistered marks a catalog registration under a taken name;
// match with errors.Is to distinguish duplicates from invalid input.
var ErrAlreadyRegistered = catalog.ErrExists

// Catalog is a concurrency-safe registry of named specifications and named
// runs — the multi-run serving layer. Every run gets one lazily-built
// Engine, and all of a catalog's engines share one plan cache, so a query
// compiled for one run is a cache hit on every other run of the same
// specification. A Catalog is safe for concurrent use: registrations,
// lookups and evaluations may be interleaved freely from any number of
// goroutines.
type Catalog struct {
	plans   *PlanCache
	workers int
	store   *Store
	reg     *catalog.Registry[*Spec, *Run, *Engine]

	// growMus holds one mutex per run name, serializing AppendEdges and
	// CompactRun on that run: a run's version history must be linear —
	// each growth starts from the version the previous one published —
	// and on a durable catalog the append log's sequence must match
	// publication order. Per-run rather than catalog-wide so concurrent
	// growth of independent runs only contends on the store's own
	// manifest serialization, not on each other's encode and COW work.
	// Never held together with persistMu.
	growMus sync.Map // run name -> *sync.Mutex

	// persistMu serializes durable mutations. Registration on a durable
	// catalog is check-name → persist → insert: the disk write precedes
	// visibility, so any spec or run a concurrent reader can see is
	// already on disk (a failed persist leaves the catalog untouched),
	// and because every durable writer holds the mutex the name checks
	// cannot race with the insert. Never taken when store == nil —
	// in-memory catalogs keep their lock-free registration paths — and
	// disk writes serialize inside the store anyway, so the mutex costs
	// nothing extra.
	//
	//provrpq:lockrank persistMu 10
	persistMu sync.Mutex

	// subsMu guards the append-event subscriber table (SubscribeAppends).
	// Held only to copy or mutate the table — callbacks always run outside
	// it (but on the appending goroutine, under that run's growth lock).
	//
	//provrpq:lockrank catalogSubsMu 18
	subsMu    sync.Mutex
	subs      map[int]func(AppendEvent)
	nextSubID int
}

// CatalogOptions configure a Catalog.
type CatalogOptions struct {
	// PlanCache overrides the catalog's dedicated compiled-plan cache
	// (nil builds a private cache with the default bound).
	PlanCache *PlanCache
	// Workers bounds each engine's parallel all-pairs scans (0 means one
	// worker per CPU).
	Workers int
	// Store, when non-nil, makes the catalog durable: every successful
	// RegisterSpec, AddRun and DeriveRun is persisted to the store before
	// the entry becomes visible, and a persistence failure leaves the
	// catalog untouched, surfacing as an ErrStoreFailed-wrapped error.
	// The store should be empty or belong to this catalog: registrations
	// under a name the store already holds but the catalog never loaded
	// are refused, so attaching an already-populated directory here
	// (instead of rebuilding with NewCatalogFromStore) cannot clobber
	// entries a restart would need.
	Store *Store
}

// NewCatalog returns an empty catalog.
func NewCatalog(opts CatalogOptions) *Catalog {
	plans := opts.PlanCache
	if plans == nil {
		plans = NewPlanCache(0)
	}
	c := &Catalog{plans: plans, workers: opts.Workers, store: opts.Store}
	c.reg = catalog.New[*Spec, *Run, *Engine](func(r *Run) *Engine {
		return NewEngineOpts(r, EngineOptions{Workers: c.workers, PlanCache: c.plans})
	})
	return c
}

// RegisterSpec registers a specification under a unique name. On a
// durable catalog the specification is on disk before it becomes visible
// to any other call, so a reader can never observe a spec the store lost.
func (c *Catalog) RegisterSpec(name string, s *Spec) error {
	if s == nil || s.s == nil {
		return fmt.Errorf("provrpq: catalog: nil specification %q", name)
	}
	if c.store == nil || name == "" {
		return c.reg.PutSpec(name, s) // PutSpec owns the empty-name error
	}
	c.persistMu.Lock()
	defer c.persistMu.Unlock()
	if _, ok := c.reg.Spec(name); ok {
		return fmt.Errorf("provrpq: catalog: specification %q: %w", name, ErrAlreadyRegistered)
	}
	// A name free in memory but present on disk means the store was
	// attached to a catalog that did not load it (CatalogOptions.Store
	// over an already-populated directory). Overwriting would strand any
	// on-disk runs still bound to the old payload — their labels decode
	// against the replaced spec and the next boot fails — so refuse.
	if c.store.HasSpec(name) {
		return fmt.Errorf("provrpq: catalog: specification %q exists in the store but was not loaded into this catalog (rebuild with NewCatalogFromStore): %w", name, ErrAlreadyRegistered)
	}
	if err := c.store.SaveSpec(name, s); err != nil {
		return fmt.Errorf("%w: specification %q: %w", ErrStoreFailed, name, err)
	}
	// On disk; now make it visible. persistMu is held, so the name checks
	// above still hold and the insert cannot fail.
	return c.reg.PutSpec(name, s)
}

// Store returns the catalog's attached store (nil for an in-memory-only
// catalog).
func (c *Catalog) Store() *Store { return c.store }

// Spec returns the specification registered under name.
func (c *Catalog) Spec(name string) (*Spec, bool) { return c.reg.Spec(name) }

// SpecNames returns all registered specification names, sorted.
func (c *Catalog) SpecNames() []string { return c.reg.SpecNames() }

// AddRun registers a run under a unique name, bound to the named
// registered specification. The run must actually be of that
// specification — derived from it or decoded against it — because
// label decoding and plan sharing depend on specification identity. On a
// durable catalog the run is on disk before the call returns.
func (c *Catalog) AddRun(name, specName string, r *Run) error {
	s, ok := c.reg.Spec(specName)
	if !ok {
		return fmt.Errorf("provrpq: catalog: run %q references unregistered specification %q", name, specName)
	}
	if r == nil || r.r == nil {
		return fmt.Errorf("provrpq: catalog: nil run %q", name)
	}
	if r.r.Spec != s.s {
		return fmt.Errorf("provrpq: catalog: run %q was not derived from or decoded against specification %q", name, specName)
	}
	return c.putRunDurable(name, specName, r)
}

// putRunDurable registers a run and, on a durable catalog, persists it
// before it becomes visible — serialized against other durable mutations
// by persistMu, so a concurrent reader (EvaluateBatch enumerating runs,
// Engine by name) can never see a run whose persist then fails.
func (c *Catalog) putRunDurable(name, specName string, r *Run) error {
	if c.store == nil || name == "" {
		return c.reg.PutRun(name, specName, r) // PutRun owns the empty-name error
	}
	// Encode outside persistMu: encoding a large run is the expensive part
	// of a save, and only the disk write itself needs serializing — two
	// concurrent uploads should overlap their encodes. The durable store
	// persists the columnar format natively, so a restart opens the payload
	// zero-copy instead of re-parsing JSON.
	data, err := EncodeRunColumnar(r)
	if err != nil {
		return err
	}
	c.persistMu.Lock()
	defer c.persistMu.Unlock()
	// Re-check the binding under the lock: the callers' spec lookups ran
	// outside it, and the run file must never land on disk bound to a
	// specification the store does not hold.
	if _, ok := c.reg.Spec(specName); !ok {
		return fmt.Errorf("provrpq: catalog: run %q references unregistered specification %q", name, specName)
	}
	if c.reg.HasRun(name) {
		return fmt.Errorf("provrpq: catalog: run %q: %w", name, ErrAlreadyRegistered)
	}
	// See RegisterSpec: never clobber an on-disk run this catalog did not
	// load.
	if c.store.HasRun(name) {
		return fmt.Errorf("provrpq: catalog: run %q exists in the store but was not loaded into this catalog (rebuild with NewCatalogFromStore): %w", name, ErrAlreadyRegistered)
	}
	if err := c.store.st.PutRun(name, specName, data); err != nil {
		return fmt.Errorf("%w: run %q: %w", ErrStoreFailed, name, err)
	}
	return c.reg.PutRun(name, specName, r)
}

// DeriveRun derives a fresh run of the named specification and registers
// it under runName. On a durable catalog the run — labels included — is
// on disk before the call returns, so a later NewCatalogFromStore serves
// it without re-deriving.
func (c *Catalog) DeriveRun(runName, specName string, opts DeriveOptions) (*Run, error) {
	s, ok := c.reg.Spec(specName)
	if !ok {
		return nil, fmt.Errorf("provrpq: catalog: unknown specification %q", specName)
	}
	// Check name availability — in memory and on disk — before paying for
	// the derivation (which can be millions of edges); putRunDurable
	// re-checks under the lock for the race.
	if c.reg.HasRun(runName) || (c.store != nil && c.store.HasRun(runName)) {
		return nil, fmt.Errorf("provrpq: catalog: run %q: %w", runName, ErrAlreadyRegistered)
	}
	r, err := s.Derive(opts)
	if err != nil {
		return nil, err
	}
	if err := c.putRunDurable(runName, specName, r); err != nil {
		return nil, err
	}
	return r, nil
}

// Run returns the run registered under name.
func (c *Catalog) Run(name string) (*Run, bool) { return c.reg.Run(name) }

// RunSpecName returns the name of the specification a run is bound to.
func (c *Catalog) RunSpecName(name string) (string, bool) { return c.reg.RunSpec(name) }

// RunNames returns all registered run names, sorted.
func (c *Catalog) RunNames() []string { return c.reg.RunNames() }

// RunsOfSpec returns the names of the runs bound to the named
// specification, sorted.
func (c *Catalog) RunsOfSpec(specName string) []string { return c.reg.RunsOf(specName) }

// Engine returns the named run's engine, building it on first use.
// Concurrent first calls for one run share a single build.
func (c *Catalog) Engine(runName string) (*Engine, error) {
	e, ok := c.reg.Engine(runName)
	if !ok {
		return nil, fmt.Errorf("provrpq: catalog: unknown run %q", runName)
	}
	return e, nil
}

// Explain reports the named run's evaluation plan for the query without
// evaluating it — the planner's strategy choice, seed tag and cost
// estimates for safe queries, the safe-subtree decomposition for unsafe
// ones. Plan decisions are cached per run generation: the planner's
// statistics live on the run's engine, which AppendEdges swaps together
// with the run, so a grown run re-plans against its current shape while
// the compiled query plans stay shared through the catalog's plan cache.
func (c *Catalog) Explain(runName string, q *Query) (*PlanReport, error) {
	eng, err := c.Engine(runName)
	if err != nil {
		return nil, err
	}
	return eng.Explain(q)
}

// BatchResult is one (run, query) cell of an EvaluateBatch answer. Err is
// per-item: one failing cell (unknown run, failing compile) never blocks
// the rest of the batch.
type BatchResult struct {
	Run   string
	Query string
	Pairs []Pair
	Err   error
}

// EvaluateBatch evaluates every query against every named run — the full
// runNames × queries product, fanned out across the catalog's worker pool
// with one compiled plan per (specification, query) shared by all runs of
// that specification. A nil or empty runNames selects every registered
// run. Results arrive run-major (all queries of runNames[0], then
// runNames[1], …), each cell carrying its own error; the result order is
// deterministic and independent of the worker count.
func (c *Catalog) EvaluateBatch(runNames []string, queries []*Query) []BatchResult {
	if len(runNames) == 0 {
		runNames = c.reg.RunNames()
	}
	nq := len(queries)
	out := make([]BatchResult, len(runNames)*nq)
	if len(out) == 0 {
		return nil
	}
	parallel.Do(len(out), parallel.Workers(c.workers), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			runName, q := runNames[i/nq], queries[i%nq]
			res := BatchResult{Run: runName, Query: q.String()}
			eng, err := c.Engine(runName)
			if err != nil {
				res.Err = err
			} else {
				res.Pairs, res.Err = eng.Evaluate(q)
			}
			out[i] = res
		}
	})
	return out
}

// CatalogStats is a point-in-time snapshot of a catalog's size, its
// plan-cache traffic and its resolved per-engine worker-pool width.
type CatalogStats struct {
	Specs, Runs int
	PlanCache   CacheStats
	Workers     int
}

// Stats snapshots the catalog.
func (c *Catalog) Stats() CatalogStats {
	ns, nr := c.reg.Len()
	return CatalogStats{
		Specs:     ns,
		Runs:      nr,
		PlanCache: c.plans.Stats(),
		Workers:   parallel.Workers(c.workers),
	}
}
