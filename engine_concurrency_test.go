package provrpq_test

// Concurrency tests for the engine stack: one shared Engine (and two
// engines sharing a plan cache) hammered from many goroutines with a mix of
// Pairwise / AllPairs / Evaluate / IsSafeRelaxed calls, asserting every
// answer matches the serial one. Run with -race; the suite exists to fail
// under it.

import (
	"fmt"
	"sync"
	"testing"

	"provrpq"
)

// forkSpec is the public-API equivalent of the Fig. 14 fork pattern: every
// execution of M spells a^j, so a* is safe, a*.b is strict-unsafe but
// relaxed-safe, and a+ is genuinely unsafe (G2 fallback).
func forkSpec(t testing.TB) *provrpq.Spec {
	t.Helper()
	spec, err := provrpq.NewSpecBuilder().
		Start("S").
		Prod("S", []string{"M", "b"}, []provrpq.BodyEdge{{From: 0, To: 1, Tag: "b"}}).
		Prod("M", []string{"a", "M"}, []provrpq.BodyEdge{{From: 0, To: 1, Tag: "a"}}).
		Prod("M", []string{"a"}, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func forkRun(t testing.TB, spec *provrpq.Spec, seed int64, edges int) *provrpq.Run {
	t.Helper()
	run, err := spec.Derive(provrpq.DeriveOptions{Seed: seed, TargetEdges: edges, FavorModule: "M"})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func pairSet(pairs []provrpq.Pair) map[provrpq.Pair]bool {
	m := make(map[provrpq.Pair]bool, len(pairs))
	for _, p := range pairs {
		m[p] = true
	}
	return m
}

func samePairs(a, b []provrpq.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	sb := pairSet(b)
	for _, p := range a {
		if !sb[p] {
			return false
		}
	}
	return true
}

// TestEngineConcurrentMixedCalls hammers one shared Engine with every entry
// point at once — safe decodes, the unsafe G2 fallback, all-pairs scans,
// the general evaluator, and the relaxation state transition — and checks
// each answer against a serial engine's.
func TestEngineConcurrentMixedCalls(t *testing.T) {
	spec := forkSpec(t)
	run := forkRun(t, spec, 7, 120)
	qSafe := provrpq.MustParseQuery("a*")
	qRelax := provrpq.MustParseQuery("a*.b")
	qUnsafe := provrpq.MustParseQuery("a+")

	anodes := run.NodesOfModule("a")
	if len(anodes) < 8 {
		t.Fatalf("run too small: %d a-nodes", len(anodes))
	}

	// Serial ground truth from a private, serial engine.
	serial := provrpq.NewEngineOpts(run, provrpq.EngineOptions{
		Workers:   1,
		PlanCache: provrpq.NewPlanCache(64),
	})
	type pw struct{ u, v provrpq.NodeID }
	samples := make([]pw, 0, 16)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			samples = append(samples, pw{anodes[i*len(anodes)/4], anodes[j*len(anodes)/4]})
		}
	}
	wantSafe := map[pw]bool{}
	wantRelax := map[pw]bool{}
	wantUnsafe := map[pw]bool{}
	for _, s := range samples {
		var err error
		if wantSafe[s], err = serial.Pairwise(qSafe, s.u, s.v); err != nil {
			t.Fatal(err)
		}
		if wantRelax[s], err = serial.Pairwise(qRelax, s.u, s.v); err != nil {
			t.Fatal(err)
		}
		if wantUnsafe[s], err = serial.Pairwise(qUnsafe, s.u, s.v); err != nil {
			t.Fatal(err)
		}
	}
	wantAll, err := serial.AllPairs(qSafe, anodes, anodes, provrpq.Auto)
	if err != nil {
		t.Fatal(err)
	}
	wantEval, err := serial.Evaluate(qUnsafe)
	if err != nil {
		t.Fatal(err)
	}
	wantReach, err := serial.AllPairsReachable(anodes, anodes)
	if err != nil {
		t.Fatal(err)
	}

	// The engine under test: default worker pool, private cache so the
	// relaxation transition runs inside this test.
	eng := provrpq.NewEngineOpts(run, provrpq.EngineOptions{PlanCache: provrpq.NewPlanCache(64)})

	const goroutines = 16
	const iters = 6
	errs := make(chan error, goroutines*iters)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch (g + it) % 6 {
				case 0:
					s := samples[(g*iters+it)%len(samples)]
					got, err := eng.Pairwise(qSafe, s.u, s.v)
					if err != nil {
						errs <- err
					} else if got != wantSafe[s] {
						errs <- fmt.Errorf("Pairwise(a*, %d, %d) = %v, want %v", s.u, s.v, got, wantSafe[s])
					}
				case 1:
					// The relaxable query races the IsSafeRelaxed upgrade:
					// before it lands the G2 fallback answers, afterwards
					// the label decode does — both must agree with serial.
					s := samples[(g*iters+it)%len(samples)]
					got, err := eng.Pairwise(qRelax, s.u, s.v)
					if err != nil {
						errs <- err
					} else if got != wantRelax[s] {
						errs <- fmt.Errorf("Pairwise(a*.b, %d, %d) = %v, want %v", s.u, s.v, got, wantRelax[s])
					}
				case 2:
					if ok, err := eng.IsSafeRelaxed(qRelax); err != nil {
						errs <- err
					} else if !ok {
						errs <- fmt.Errorf("IsSafeRelaxed(a*.b) = false, want true")
					}
					if ok, err := eng.IsSafeRelaxed(qUnsafe); err != nil {
						errs <- err
					} else if ok {
						errs <- fmt.Errorf("IsSafeRelaxed(a+) = true, want false")
					}
				case 3:
					got, err := eng.AllPairs(qSafe, anodes, anodes, provrpq.Auto)
					if err != nil {
						errs <- err
					} else if !samePairs(got, wantAll) {
						errs <- fmt.Errorf("AllPairs(a*): %d pairs, want %d", len(got), len(wantAll))
					}
				case 4:
					got, err := eng.Evaluate(qUnsafe)
					if err != nil {
						errs <- err
					} else if !samePairs(got, wantEval) {
						errs <- fmt.Errorf("Evaluate(a+): %d pairs, want %d", len(got), len(wantEval))
					}
				case 5:
					s := samples[(g*iters+it)%len(samples)]
					got, err := eng.Pairwise(qUnsafe, s.u, s.v)
					if err != nil {
						errs <- err
					} else if got != wantUnsafe[s] {
						errs <- fmt.Errorf("Pairwise(a+, %d, %d) = %v, want %v", s.u, s.v, got, wantUnsafe[s])
					}
					gotReach, err := eng.AllPairsReachable(anodes, anodes)
					if err != nil {
						errs <- err
					} else if !samePairs(gotReach, wantReach) {
						errs <- fmt.Errorf("AllPairsReachable: %d pairs, want %d", len(gotReach), len(wantReach))
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEnginesSharePlanCache runs two engines over different runs of one
// specification against one explicit plan cache, concurrently, and checks
// that plans are genuinely shared: a relaxation upgrade performed through
// one engine is visible to the other.
func TestEnginesSharePlanCache(t *testing.T) {
	spec := forkSpec(t)
	run1 := forkRun(t, spec, 11, 300)
	run2 := forkRun(t, spec, 12, 300)
	pc := provrpq.NewPlanCache(64)
	e1 := provrpq.NewEngineOpts(run1, provrpq.EngineOptions{PlanCache: pc})
	e2 := provrpq.NewEngineOpts(run2, provrpq.EngineOptions{PlanCache: pc})
	qSafe := provrpq.MustParseQuery("a*")
	qRelax := provrpq.MustParseQuery("a*.b")

	// Serial ground truth per engine.
	want1, err := provrpq.NewEngineOpts(run1, provrpq.EngineOptions{Workers: 1, PlanCache: provrpq.NewPlanCache(8)}).Evaluate(qSafe)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := provrpq.NewEngineOpts(run2, provrpq.EngineOptions{Workers: 1, PlanCache: provrpq.NewPlanCache(8)}).Evaluate(qSafe)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			eng, want := e1, want1
			if g%2 == 1 {
				eng, want = e2, want2
			}
			got, err := eng.Evaluate(qSafe)
			if err != nil {
				errs <- err
				return
			}
			if !samePairs(got, want) {
				errs <- fmt.Errorf("engine %d: Evaluate(a*) gave %d pairs, want %d", g%2+1, len(got), len(want))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if pc.Len() == 0 {
		t.Fatal("plan cache unused")
	}

	// Plan sharing makes the relaxation upgrade visible across engines.
	if ok, err := e1.IsSafe(qRelax); err != nil || ok {
		t.Fatalf("IsSafe(a*.b) = %v, %v; want false before relaxation", ok, err)
	}
	if ok, err := e1.IsSafeRelaxed(qRelax); err != nil || !ok {
		t.Fatalf("IsSafeRelaxed(a*.b) = %v, %v; want true", ok, err)
	}
	if ok, err := e2.IsSafe(qRelax); err != nil || !ok {
		t.Fatalf("IsSafe(a*.b) on the sharing engine = %v, %v; want true after relaxation", ok, err)
	}
}

// TestRelaxationSurvivesPlanEviction churns a capacity-1 plan cache until
// the relaxed plan is long evicted: the engine that performed the upgrade
// must keep answering with the constant-time decode (its memo pins the
// plan), per the IsSafeRelaxed contract.
func TestRelaxationSurvivesPlanEviction(t *testing.T) {
	spec := forkSpec(t)
	run := forkRun(t, spec, 5, 150)
	pc := provrpq.NewPlanCache(1)
	eng := provrpq.NewEngineOpts(run, provrpq.EngineOptions{Workers: 1, PlanCache: pc})
	qRelax := provrpq.MustParseQuery("a*.b")
	if ok, err := eng.IsSafeRelaxed(qRelax); err != nil || !ok {
		t.Fatalf("IsSafeRelaxed(a*.b) = %v, %v", ok, err)
	}
	// Evict a*.b from the shared cache by compiling other queries.
	for _, qs := range []string{"a*", "a+", "_*", "_+"} {
		if _, err := eng.IsSafe(provrpq.MustParseQuery(qs)); err != nil {
			t.Fatal(err)
		}
	}
	// StrategyRPL demands a safe plan: it must still see the upgrade.
	anodes := run.NodesOfModule("a")
	if _, err := eng.AllPairs(qRelax, anodes, anodes, provrpq.StrategyRPL); err != nil {
		t.Fatalf("AllPairs(a*.b, RPL) after eviction: %v", err)
	}
	if ok, err := eng.IsSafe(qRelax); err != nil || !ok {
		t.Fatalf("IsSafe(a*.b) after eviction = %v, %v; the memo must pin the relaxed plan", ok, err)
	}
}

// TestParallelMatchesSerial asserts the parallel scans return the same
// result sets as the serial ones — and, for AllPairs, in exactly the same
// order.
func TestParallelMatchesSerial(t *testing.T) {
	spec := forkSpec(t)
	run := forkRun(t, spec, 3, 900)
	anodes := run.NodesOfModule("a")
	all := run.AllNodes()
	qSafe := provrpq.MustParseQuery("a*")

	serial := provrpq.NewEngineOpts(run, provrpq.EngineOptions{Workers: 1, PlanCache: provrpq.NewPlanCache(16)})
	strategies := []provrpq.Strategy{provrpq.StrategyRPL, provrpq.StrategyOptRPL, provrpq.Auto}
	wants := map[provrpq.Strategy][]provrpq.Pair{}
	for _, strat := range strategies {
		w, err := serial.AllPairs(qSafe, anodes, anodes, strat)
		if err != nil {
			t.Fatal(err)
		}
		wants[strat] = w
	}
	wantReach, err := serial.AllPairsReachable(all, anodes)
	if err != nil {
		t.Fatal(err)
	}
	wantEval, err := serial.Evaluate(qSafe)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		par := provrpq.NewEngineOpts(run, provrpq.EngineOptions{Workers: workers, PlanCache: provrpq.NewPlanCache(16)})
		for _, strat := range strategies {
			want := wants[strat]
			got, err := par.AllPairs(qSafe, anodes, anodes, strat)
			if err != nil {
				t.Fatal(err)
			}
			if !samePairs(got, want) {
				t.Fatalf("workers=%d strategy=%d: %d pairs, want %d", workers, strat, len(got), len(want))
			}
			if strat == provrpq.StrategyRPL {
				// The sharded nested-loop scan must preserve the serial
				// emit order exactly.
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("workers=%d RPL: pair %d = %v, want %v (order must match serial)",
							workers, i, got[i], want[i])
					}
				}
			}
		}
		gotReach, err := par.AllPairsReachable(all, anodes)
		if err != nil {
			t.Fatal(err)
		}
		if !samePairs(gotReach, wantReach) {
			t.Fatalf("workers=%d: AllPairsReachable %d pairs, want %d", workers, len(gotReach), len(wantReach))
		}
		gotEval, err := par.Evaluate(qSafe)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotEval) != len(wantEval) {
			t.Fatalf("workers=%d: Evaluate %d pairs, want %d", workers, len(gotEval), len(wantEval))
		}
		for i := range gotEval {
			if gotEval[i] != wantEval[i] {
				t.Fatalf("workers=%d: Evaluate pair %d differs", workers, i)
			}
		}
	}
}
