package provrpq

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"provrpq/internal/store"
)

// splitEncodedRun carves an encoded run into a base-run payload (nodes
// [0, cuts[0]) plus their internal edges) and one growth-batch payload per
// further cut, preserving the original edge order within each part. Edge
// endpoints keep their absolute ids, which is exactly the batch wire
// numbering (the base is a prefix of the final run).
func splitEncodedRun(t testing.TB, data []byte, cuts []int) (base []byte, batches [][]byte) {
	t.Helper()
	var rj struct {
		Nodes []json.RawMessage `json:"nodes"`
		Edges []struct {
			From, To int
			Tag      string
		} `json:"edges"`
	}
	if err := json.Unmarshal(data, &rj); err != nil {
		t.Fatal(err)
	}
	if cuts[len(cuts)-1] != len(rj.Nodes) {
		t.Fatalf("last cut %d != node count %d", cuts[len(cuts)-1], len(rj.Nodes))
	}
	type edge struct {
		From int    `json:"From"`
		To   int    `json:"To"`
		Tag  string `json:"Tag"`
	}
	part := func(nodes []json.RawMessage, edges []edge) []byte {
		if edges == nil {
			edges = []edge{}
		}
		out, err := json.Marshal(map[string]any{"nodes": nodes, "edges": edges})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	edgeParts := make([][]edge, len(cuts))
	for _, e := range rj.Edges {
		hi := e.From
		if e.To > hi {
			hi = e.To
		}
		for i, c := range cuts {
			if hi < c {
				edgeParts[i] = append(edgeParts[i], edge(e))
				break
			}
		}
	}
	base = part(rj.Nodes[:cuts[0]], edgeParts[0])
	for i := 1; i < len(cuts); i++ {
		batches = append(batches, part(rj.Nodes[cuts[i-1]:cuts[i]], edgeParts[i]))
	}
	return base, batches
}

// rebuiltReference re-derives the final graph from scratch: the full node
// list with the edges ordered the way the append path emits them (base
// edges first, then each batch's), decoded through the full-validation
// DecodeRun path.
func rebuiltReference(t testing.TB, spec *Spec, base []byte, batches [][]byte) *Run {
	t.Helper()
	var acc struct {
		Nodes []json.RawMessage `json:"nodes"`
		Edges []json.RawMessage `json:"edges"`
	}
	add := func(data []byte) {
		var p struct {
			Nodes []json.RawMessage `json:"nodes"`
			Edges []json.RawMessage `json:"edges"`
		}
		if err := json.Unmarshal(data, &p); err != nil {
			t.Fatal(err)
		}
		acc.Nodes = append(acc.Nodes, p.Nodes...)
		acc.Edges = append(acc.Edges, p.Edges...)
	}
	add(base)
	for _, b := range batches {
		add(b)
	}
	data, err := json.Marshal(acc)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := DecodeRun(spec, data)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

var appendQueries = []string{"_*.s._*.publish", "ingest._*", "_*.a1._*", "_*", "s.s"}

// samePairs compares two Evaluate results (order included: both engines
// run the same deterministic scan).
func samePairs(a, b []Pair) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d pairs vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("pair %d: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}

// TestAppendEqualsFullDerivation is the acceptance property: for
// randomized base graphs and randomized edge batches, appending then
// querying is indistinguishable — byte-identical encoding, identical
// labels, identical pair sets for safe and unsafe queries — from fully
// re-deriving the final graph from scratch.
func TestAppendEqualsFullDerivation(t *testing.T) {
	spec := introSpec(t)
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		full, err := spec.Derive(DeriveOptions{Seed: seed, TargetEdges: 60 + rng.Intn(240)})
		if err != nil {
			t.Fatal(err)
		}
		fullJSON, err := EncodeRun(full)
		if err != nil {
			t.Fatal(err)
		}
		n := full.NumNodes()
		cuts := []int{1 + rng.Intn(n-1)}
		for cuts[len(cuts)-1] < n {
			next := cuts[len(cuts)-1] + 1 + rng.Intn(n/3+1)
			if next > n {
				next = n
			}
			cuts = append(cuts, next)
		}
		baseJSON, batchJSONs := splitEncodedRun(t, fullJSON, cuts)

		grown, err := DecodeRun(spec, baseJSON)
		if err != nil {
			t.Fatalf("seed %d: decoding base: %v", seed, err)
		}
		for bi, bj := range batchJSONs {
			batch, err := DecodeBatch(spec, bj)
			if err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, bi, err)
			}
			stats, err := grown.Append(batch)
			if err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, bi, err)
			}
			if stats.NewNodes != batch.NumNodes() || stats.NewEdges != batch.NumEdges() {
				t.Fatalf("seed %d batch %d: stats %+v", seed, bi, stats)
			}
		}
		ref := rebuiltReference(t, spec, baseJSON, batchJSONs)

		grownJSON, err := EncodeRun(grown)
		if err != nil {
			t.Fatal(err)
		}
		refJSON, err := EncodeRun(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(grownJSON, refJSON) {
			t.Fatalf("seed %d: append-then-encode differs from full re-derivation", seed)
		}
		for i := 0; i < n; i++ {
			if grown.NodeLabel(NodeID(i)) != ref.NodeLabel(NodeID(i)) {
				t.Fatalf("seed %d: node %d label %q vs %q", seed, i, grown.NodeLabel(NodeID(i)), ref.NodeLabel(NodeID(i)))
			}
		}
		ge, re := NewEngine(grown), NewEngine(ref)
		for _, qs := range appendQueries {
			q := MustParseQuery(qs)
			gp, err := ge.Evaluate(q)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := re.Evaluate(q)
			if err != nil {
				t.Fatal(err)
			}
			if err := samePairs(gp, rp); err != nil {
				t.Fatalf("seed %d query %s: %v", seed, qs, err)
			}
		}
		for i := 0; i < 50; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			gr, _ := ge.Reachable(u, v)
			rr, _ := re.Reachable(u, v)
			if gr != rr {
				t.Fatalf("seed %d: Reachable(%d,%d) = %v vs %v", seed, u, v, gr, rr)
			}
		}
	}
}

// TestAppendFrontierProportionalWork pins the incremental-cost contract on
// a 16K-edge run: appending k edges touches O(k) nodes — the frontier —
// no matter that the run holds thousands of nodes.
func TestAppendFrontierProportionalWork(t *testing.T) {
	spec := introSpec(t)
	full, err := spec.Derive(DeriveOptions{Seed: 5, TargetEdges: 16000})
	if err != nil {
		t.Fatal(err)
	}
	n := full.NumNodes()
	if n < 4000 {
		t.Fatalf("fixture too small: %d nodes", n)
	}
	for _, k := range []int{1, 8, 64} {
		batch := appendEdgesBatch(t, spec, full, k)
		grown, stats, err := full.r.Grow(batch.b)
		if err != nil {
			t.Fatal(err)
		}
		if grown.NumEdges() != full.NumEdges()+k {
			t.Fatalf("k=%d: grew to %d edges, want %d", k, grown.NumEdges(), full.NumEdges()+k)
		}
		if stats.Touched > 2*k {
			t.Fatalf("k=%d: touched %d nodes, want <= %d (frontier-proportional, not O(n)=%d)",
				k, stats.Touched, 2*k, n)
		}
	}
}

// appendEdgesBatch builds a batch of k new edges between random existing
// nodes of the run, tagged from the specification's alphabet.
func appendEdgesBatch(t testing.TB, spec *Spec, r *Run, k int) *Batch {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(k)))
	tags := spec.Tags()
	type edge struct {
		From int    `json:"From"`
		To   int    `json:"To"`
		Tag  string `json:"Tag"`
	}
	edges := make([]edge, k)
	for i := range edges {
		edges[i] = edge{From: rng.Intn(r.NumNodes()), To: rng.Intn(r.NumNodes()), Tag: tags[rng.Intn(len(tags))]}
	}
	data, err := json.Marshal(map[string]any{"edges": edges})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeBatch(spec, data)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCatalogAppendSwapsEngineSharesPlans: the catalog append must swap in
// a fresh engine over the grown run while the old engine keeps serving the
// old version, and compiled plans — keyed by (spec, query) — must carry
// over as cache hits.
func TestCatalogAppendSwapsEngineSharesPlans(t *testing.T) {
	spec := introSpec(t)
	full, err := spec.Derive(DeriveOptions{Seed: 9, TargetEdges: 200})
	if err != nil {
		t.Fatal(err)
	}
	fullJSON, err := EncodeRun(full)
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, batchJSONs := splitEncodedRun(t, fullJSON, []int{full.NumNodes() / 2, full.NumNodes()})
	base, err := DecodeRun(spec, baseJSON)
	if err != nil {
		t.Fatal(err)
	}

	cat := NewCatalog(CatalogOptions{})
	if err := cat.RegisterSpec("wf", spec); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRun("r", "wf", base); err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery("_*.s._*.publish")
	e0, err := cat.Engine("r")
	if err != nil {
		t.Fatal(err)
	}
	oldPairs, err := e0.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	misses := cat.Stats().PlanCache.Misses

	batch, err := DecodeBatch(spec, batchJSONs[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := cat.AppendEdges("r", batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || res.Run.NumNodes() != full.NumNodes() {
		t.Fatalf("append result = version %d, %d nodes", res.Version, res.Run.NumNodes())
	}
	if v, ok := cat.RunVersion("r"); !ok || v != 1 {
		t.Fatalf("RunVersion = %d, %v", v, ok)
	}
	if got, _ := cat.Run("r"); got != res.Run {
		t.Fatal("catalog still lists the old run version")
	}

	e1, err := cat.Engine("r")
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e0 {
		t.Fatal("append did not swap the engine")
	}
	newPairs, err := e1.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Stats().PlanCache.Misses != misses {
		t.Fatalf("append recompiled the plan: misses %d -> %d", misses, cat.Stats().PlanCache.Misses)
	}

	// The old engine still serves the old, internally consistent version.
	oldAgain, err := e0.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := samePairs(oldPairs, oldAgain); err != nil {
		t.Fatalf("old engine's answer changed under append: %v", err)
	}

	// And the grown version answers like the full graph decoded whole.
	ref, err := DecodeRun(spec, mustEncode(t, res.Run))
	if err != nil {
		t.Fatal(err)
	}
	refPairs, err := NewEngine(ref).Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := samePairs(newPairs, refPairs); err != nil {
		t.Fatalf("grown engine differs from full decode: %v", err)
	}

	// Appending to an unknown run fails; a batch from a different Spec
	// instance is refused.
	if _, err := cat.AppendEdges("ghost", batch); err == nil {
		t.Fatal("append to unknown run succeeded")
	}
	otherSpec := introSpec(t)
	foreign, err := DecodeBatch(otherSpec, batchJSONs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.AppendEdges("r", foreign); err == nil {
		t.Fatal("append with a foreign-spec batch succeeded")
	}
}

func mustEncode(t testing.TB, r *Run) []byte {
	t.Helper()
	data, err := EncodeRun(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCatalogAppendUnderConcurrentQueries hammers Evaluate and Engine
// lookups while the run grows batch by batch — the race detector guards
// the version swap.
func TestCatalogAppendUnderConcurrentQueries(t *testing.T) {
	spec := introSpec(t)
	full, err := spec.Derive(DeriveOptions{Seed: 13, TargetEdges: 300})
	if err != nil {
		t.Fatal(err)
	}
	fullJSON := mustEncode(t, full)
	n := full.NumNodes()
	cuts := []int{n / 4, n / 2, 3 * n / 4, n}
	baseJSON, batchJSONs := splitEncodedRun(t, fullJSON, cuts)
	base, err := DecodeRun(spec, baseJSON)
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(CatalogOptions{})
	if err := cat.RegisterSpec("wf", spec); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRun("r", "wf", base); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := MustParseQuery(appendQueries[g%len(appendQueries)])
			for {
				select {
				case <-stop:
					return
				default:
				}
				eng, err := cat.Engine("r")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := eng.Evaluate(q); err != nil {
					t.Error(err)
					return
				}
				if _, err := eng.Pairwise(q, 0, NodeID(eng.Run().NumNodes()-1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for _, bj := range batchJSONs {
		batch, err := DecodeBatch(spec, bj)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cat.AppendEdges("r", batch); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if v, _ := cat.RunVersion("r"); v != len(batchJSONs) {
		t.Fatalf("final version = %d, want %d", v, len(batchJSONs))
	}
	eng, err := cat.Engine("r")
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Evaluate(MustParseQuery("_*"))
	if err != nil {
		t.Fatal(err)
	}
	ref := rebuiltReference(t, spec, baseJSON, batchJSONs)
	want, err := NewEngine(ref).Evaluate(MustParseQuery("_*"))
	if err != nil {
		t.Fatal(err)
	}
	if err := samePairs(got, want); err != nil {
		t.Fatalf("final grown run differs from reference: %v", err)
	}
}

// TestReleaseEngine drops a built engine while keeping the run served.
func TestReleaseEngine(t *testing.T) {
	spec := introSpec(t)
	run, err := spec.Derive(DeriveOptions{Seed: 2, TargetEdges: 80})
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(CatalogOptions{})
	if err := cat.RegisterSpec("wf", spec); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRun("r", "wf", run); err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery("ingest._*")
	e0, err := cat.Engine("r")
	if err != nil {
		t.Fatal(err)
	}
	want, err := e0.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.ReleaseEngine("r"); err != nil {
		t.Fatal(err)
	}
	if _, ok := cat.Run("r"); !ok {
		t.Fatal("ReleaseEngine deregistered the run")
	}
	e1, err := cat.Engine("r")
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e0 {
		t.Fatal("ReleaseEngine kept the old engine")
	}
	got, err := e1.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := samePairs(got, want); err != nil {
		t.Fatalf("rebuilt engine differs: %v", err)
	}
	if v, _ := cat.RunVersion("r"); v != 0 {
		t.Fatalf("ReleaseEngine bumped the version to %d", v)
	}
	if err := cat.ReleaseEngine("ghost"); err == nil {
		t.Fatal("ReleaseEngine of an unknown run succeeded")
	}
}

// TestAppendDurableCrashConsistency mirrors the store's orphan-run tests
// at the catalog level: a batch is either fully replayed after a restart
// or — when the crash hit between the batch write and the manifest commit
// — fully invisible, never torn.
func TestAppendDurableCrashConsistency(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := introSpec(t)
	full, err := spec.Derive(DeriveOptions{Seed: 17, TargetEdges: 160})
	if err != nil {
		t.Fatal(err)
	}
	fullJSON := mustEncode(t, full)
	n := full.NumNodes()
	baseJSON, batchJSONs := splitEncodedRun(t, fullJSON, []int{n / 3, 2 * n / 3, n})
	base, err := DecodeRun(spec, baseJSON)
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(CatalogOptions{Store: st})
	if err := cat.RegisterSpec("wf", spec); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRun("r", "wf", base); err != nil {
		t.Fatal(err)
	}
	batch0, err := DecodeBatch(spec, batchJSONs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.AppendEdges("r", batch0); err != nil {
		t.Fatal(err)
	}
	committed, _ := cat.Run("r")
	wantNodes := committed.NumNodes()

	// Crash between AppendRun's two writes: the seq-1 batch file lands,
	// the manifest count does not.
	orphan := filepath.Join(dir, "appends", "r.1.json")
	if err := os.WriteFile(orphan, batchJSONs[1], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat2, err := NewCatalogFromStore(st2, CatalogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	restored, ok := cat2.Run("r")
	if !ok {
		t.Fatal("run lost on restart")
	}
	if restored.NumNodes() != wantNodes {
		t.Fatalf("restored run has %d nodes, want %d (committed batch replayed, torn batch invisible)",
			restored.NumNodes(), wantNodes)
	}
	if v, _ := cat2.RunVersion("r"); v != 1 {
		t.Fatalf("restored version = %d, want 1", v)
	}
	// Identical answers to the pre-crash committed state, byte for byte.
	if !bytes.Equal(mustEncode(t, restored), mustEncode(t, committed)) {
		t.Fatal("restored run differs from the committed pre-crash state")
	}

	// The next append retakes seq 1, atomically replacing the orphan, and
	// a further restart replays both batches. The batch must decode
	// against the restored catalog's spec instance — label decoding and
	// plan sharing hinge on specification identity.
	spec2, ok := cat2.Spec("wf")
	if !ok {
		t.Fatal("spec lost on restart")
	}
	batch1, err := DecodeBatch(spec2, batchJSONs[1])
	if err != nil {
		t.Fatal(err)
	}
	res, err := cat2.AppendEdges("r", batch1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.Run.NumNodes() != n {
		t.Fatalf("post-crash append = version %d, %d nodes", res.Version, res.Run.NumNodes())
	}
	st3, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat3, err := NewCatalogFromStore(st3, CatalogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	final, _ := cat3.Run("r")
	if !bytes.Equal(mustEncode(t, final), mustEncode(t, res.Run)) {
		t.Fatal("second restart differs from the grown run")
	}
	if v, _ := cat3.RunVersion("r"); v != 2 {
		t.Fatalf("final version = %d, want 2", v)
	}
}

// TestAppendStoreFailureLeavesCatalogUngrown: when the append log cannot
// be written, the error is ErrStoreFailed and the catalog keeps serving
// the un-grown version (nothing half-applied).
func TestAppendStoreFailureLeavesCatalogUngrown(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := introSpec(t)
	full, err := spec.Derive(DeriveOptions{Seed: 19, TargetEdges: 100})
	if err != nil {
		t.Fatal(err)
	}
	fullJSON := mustEncode(t, full)
	baseJSON, batchJSONs := splitEncodedRun(t, fullJSON, []int{full.NumNodes() / 2, full.NumNodes()})
	base, err := DecodeRun(spec, baseJSON)
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(CatalogOptions{Store: st})
	if err := cat.RegisterSpec("wf", spec); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRun("r", "wf", base); err != nil {
		t.Fatal(err)
	}
	// Make the append log unwritable by replacing its directory with a
	// file.
	appendsDir := filepath.Join(dir, "appends")
	if err := os.RemoveAll(appendsDir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(appendsDir, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	batch, err := DecodeBatch(spec, batchJSONs[0])
	if err != nil {
		t.Fatal(err)
	}
	beforeNodes := base.NumNodes()
	if _, err := cat.AppendEdges("r", batch); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("append with broken store = %v, want ErrStoreFailed", err)
	}
	cur, _ := cat.Run("r")
	if cur.NumNodes() != beforeNodes {
		t.Fatalf("failed append grew the served run to %d nodes", cur.NumNodes())
	}
	if v, _ := cat.RunVersion("r"); v != 0 {
		t.Fatalf("failed append bumped the version to %d", v)
	}
}

// TestCatalogCompactRun: compaction folds the append log into one stored
// base — the served run is untouched, the version resets, a restart boots
// from the folded base with identical answers, and growth continues.
func TestCatalogCompactRun(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := introSpec(t)
	full, err := spec.Derive(DeriveOptions{Seed: 23, TargetEdges: 150})
	if err != nil {
		t.Fatal(err)
	}
	n := full.NumNodes()
	baseJSON, batchJSONs := splitEncodedRun(t, mustEncode(t, full), []int{n / 3, 2 * n / 3, n})
	base, err := DecodeRun(spec, baseJSON)
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(CatalogOptions{Store: st})
	if err := cat.RegisterSpec("wf", spec); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRun("r", "wf", base); err != nil {
		t.Fatal(err)
	}
	// In-memory catalogs cannot compact (there is nothing stored to fold).
	memCat := NewCatalog(CatalogOptions{})
	if err := memCat.CompactRun("r"); err == nil {
		t.Fatal("compaction without a store succeeded")
	}
	if err := cat.CompactRun("ghost"); err == nil {
		t.Fatal("compaction of unknown run succeeded")
	}

	b0, err := DecodeBatch(spec, batchJSONs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.AppendEdges("r", b0); err != nil {
		t.Fatal(err)
	}
	served, _ := cat.Run("r")
	servedJSON := mustEncode(t, served)
	if err := cat.CompactRun("r"); err != nil {
		t.Fatal(err)
	}
	if v, _ := cat.RunVersion("r"); v != 0 {
		t.Fatalf("version after compaction = %d, want 0", v)
	}
	if cur, _ := cat.Run("r"); cur != served {
		t.Fatal("compaction replaced the served run")
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Appends) != 0 {
		t.Fatalf("appends after compaction = %v, want empty", snap.Appends)
	}

	// Growth continues on the folded base.
	b1, err := DecodeBatch(spec, batchJSONs[1])
	if err != nil {
		t.Fatal(err)
	}
	res, err := cat.AppendEdges("r", b1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || res.Run.NumNodes() != n {
		t.Fatalf("post-compaction append = version %d, %d nodes", res.Version, res.Run.NumNodes())
	}

	// Restart: the folded base plus the one new batch reproduce the run.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat2, err := NewCatalogFromStore(st2, CatalogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	restored, _ := cat2.Run("r")
	if !bytes.Equal(mustEncode(t, restored), mustEncode(t, res.Run)) {
		t.Fatal("restart after compaction differs from the served run")
	}
	if v, _ := cat2.RunVersion("r"); v != 1 {
		t.Fatalf("restored version = %d, want 1", v)
	}
	_ = servedJSON
}

// TestAppendEdgesCAS: the version guard commits exactly once — a retry of
// a committed append bounces off the bumped version instead of
// double-applying its edges.
func TestAppendEdgesCAS(t *testing.T) {
	spec := introSpec(t)
	run, err := spec.Derive(DeriveOptions{Seed: 29, TargetEdges: 100})
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(CatalogOptions{})
	if err := cat.RegisterSpec("wf", spec); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRun("r", "wf", run); err != nil {
		t.Fatal(err)
	}
	batch := appendEdgesBatch(t, spec, run, 4)
	if _, err := cat.AppendEdgesCAS("r", batch, -1); err == nil {
		t.Fatal("negative expected version accepted")
	}
	res, err := cat.AppendEdgesCAS("r", batch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 {
		t.Fatalf("version after CAS append = %d", res.Version)
	}
	// The "retry after a timeout" scenario: same batch, same expected
	// version — must be refused, and the run must not gain the edges twice.
	if _, err := cat.AppendEdgesCAS("r", batch, 0); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("replayed CAS append = %v, want ErrVersionMismatch", err)
	}
	cur, _ := cat.Run("r")
	if cur.NumEdges() != run.NumEdges()+4 {
		t.Fatalf("run has %d edges, want exactly one application of the batch (%d)",
			cur.NumEdges(), run.NumEdges()+4)
	}
	if v, _ := cat.RunVersion("r"); v != 1 {
		t.Fatalf("version after refused retry = %d, want 1", v)
	}
	// The next intentional append carries the new version.
	if _, err := cat.AppendEdgesCAS("r", batch, 1); err != nil {
		t.Fatalf("CAS append at current version: %v", err)
	}
}

// TestWedgedStoreSentinelSurvivesCatalog: when an ambiguous commit wedges
// the store, the wedge sentinel must stay matchable with errors.Is through
// the catalog's ErrStoreFailed wrapping. A regression test for the %v
// wraps (caught by provlint's errsentinel) that flattened the chain and
// made callers unable to distinguish "wedged, reopen to recover" from any
// other persistence failure.
func TestWedgedStoreSentinelSurvivesCatalog(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := introSpec(t)
	full, err := spec.Derive(DeriveOptions{Seed: 31, TargetEdges: 100})
	if err != nil {
		t.Fatal(err)
	}
	n := full.NumNodes()
	baseJSON, batchJSONs := splitEncodedRun(t, mustEncode(t, full), []int{n / 3, 2 * n / 3, n})
	base, err := DecodeRun(spec, baseJSON)
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(CatalogOptions{Store: st})
	if err := cat.RegisterSpec("wf", spec); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRun("r", "wf", base); err != nil {
		t.Fatal(err)
	}
	batch1, err := DecodeBatch(spec, batchJSONs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the store: a failing parent-directory fsync after the rename
	// is an ambiguous commit.
	fail := true
	orig := store.FsyncDir
	store.FsyncDir = func(d string) error {
		if fail {
			return fmt.Errorf("injected fsync failure")
		}
		return orig(d)
	}
	defer func() { store.FsyncDir = orig }()
	if _, err := cat.AppendEdges("r", batch1); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("append with failing dir fsync = %v, want ErrStoreFailed", err)
	}
	fail = false

	// The wedge latched; retrying the batch must surface the wedge
	// sentinel through both wrapping layers.
	_, err = cat.AppendEdges("r", batch1)
	if !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("append on wedged store = %v, want ErrStoreFailed in the chain", err)
	}
	if !errors.Is(err, store.ErrWedged) {
		t.Fatalf("append on wedged store = %v, want store.ErrWedged to survive the catalog wrap", err)
	}
}
