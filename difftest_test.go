package provrpq

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"provrpq/internal/baseline"
	"provrpq/internal/derive"
	"provrpq/internal/workload"
)

// The differential harness: randomized runs × generated queries assert that
// every evaluation path — the forced strategies (RPL, OptRPL, the seeded
// strategy, the G1 relational baseline), the planner-driven Auto, the
// Evaluate pipeline, and the G3 baseline where its IFQ shape applies —
// returns exactly the pair set of the product-BFS oracle. Any divergence
// between the paper's constant-time label machinery, the planner's new
// seeded path and the explicit run traversal is a correctness bug, so this
// is the safety net under which strategies are free to evolve.
//
// Tier sizing lives in difftest_default_test.go / difftest_slow_test.go:
// the regular run stays fast enough for -race in CI, `-tags slow` runs the
// ≥ 200-case acceptance tier.

// pairKey flattens a Pair for set comparison.
func pairKey(p Pair) uint64 { return uint64(p.From)<<32 | uint64(uint32(p.To)) }

func pairSet(pairs []Pair) []uint64 {
	out := make([]uint64, len(pairs))
	seen := map[uint64]struct{}{}
	out = out[:0]
	for _, p := range pairs {
		k := pairKey(p)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalSets(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffQueries draws the query mix for one run: random compositions (safe
// and unsafe arise), plus safe IFQs of both selectivity classes so the
// seeded strategy's sweet spot is always represented.
func diffQueries(d *workload.Dataset, r *rand.Rand, n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			out = append(out, d.RandomQuery(r, 3))
		case 1:
			out = append(out, d.SafeIFQ(r, 1+r.Intn(3), false))
		default:
			out = append(out, d.SafeIFQ(r, 1+r.Intn(3), true))
		}
	}
	return out
}

func TestDifferentialStrategies(t *testing.T) {
	datasets := []*workload.Dataset{workload.BioAID(), workload.QBLast(), workload.Synthetic(200, 1)}
	cases := 0
	for _, d := range datasets {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			for rs := 0; rs < diffRunsPerDataset; rs++ {
				seed := int64(rs*101 + 7)
				dr, err := derive.Derive(d.Spec, derive.Options{Seed: seed, TargetEdges: diffRunEdges})
				if err != nil {
					t.Fatal(err)
				}
				run := &Run{r: dr, spec: &Spec{s: d.Spec}}
				eng := NewEngine(run)
				r := rand.New(rand.NewSource(seed * 13))
				for _, qs := range diffQueries(d, r, diffQueriesPerRun) {
					if diffCheckOne(t, eng, run, qs) {
						cases++
					}
					if t.Failed() {
						t.Fatalf("divergence on run seed %d (%d edges) of %s", seed, dr.NumEdges(), d.Name)
					}
				}
			}
		})
	}
	t.Logf("differential cases checked: %d", cases)
	if cases < diffMinCases {
		t.Fatalf("only %d run×query cases checked, floor is %d", cases, diffMinCases)
	}
}

// diffCheckOne cross-checks one (run, query) cell; reports whether the case
// counted (false only when the query does not compile, e.g. a random query
// whose minimal DFA exceeds the supported state bound).
func diffCheckOne(t *testing.T, eng *Engine, run *Run, qs string) bool {
	t.Helper()
	q, err := ParseQuery(qs)
	if err != nil {
		t.Fatalf("generated query %q does not parse: %v", qs, err)
	}
	safe, err := eng.IsSafe(q)
	if err != nil {
		return false // does not compile (DFA too large); not a divergence
	}
	all := run.AllNodes()

	oracle := baseline.NewOracle(run.r, q.node)
	var want []Pair
	oracle.AllPairs(toDerive(all), toDerive(all), func(i, j int) {
		want = append(want, Pair{From: all[i], To: all[j]})
	})
	wantSet := pairSet(want)

	check := func(name string, pairs []Pair, err error) {
		t.Helper()
		if err != nil {
			t.Errorf("query %q (safe=%v): %s failed: %v", qs, safe, name, err)
			return
		}
		if got := pairSet(pairs); !equalSets(got, wantSet) {
			t.Errorf("query %q (safe=%v): %s returned %d pairs, oracle %d", qs, safe, name, len(got), len(wantSet))
		}
	}

	strategies := []Strategy{StrategyG1, StrategySeeded, Auto}
	if safe {
		strategies = append(strategies, StrategyRPL, StrategyOptRPL)
	}
	for _, st := range strategies {
		pairs, err := eng.AllPairs(q, all, all, st)
		check(fmt.Sprintf("AllPairs(%v)", st), pairs, err)
	}
	pairs, err := eng.Evaluate(q)
	check("Evaluate", pairs, err)

	if g3, ok := baseline.NewG3(eng.index(), q.node); ok {
		var g3Pairs []Pair
		g3.AllPairs(toDerive(all), toDerive(all), func(i, j int) {
			g3Pairs = append(g3Pairs, Pair{From: all[i], To: all[j]})
		})
		check("G3", g3Pairs, nil)
	}
	return true
}
