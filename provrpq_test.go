package provrpq

import (
	"os"
	"path/filepath"
	"testing"
)

// introSpec builds the workflow of the paper's introduction: data of type x,
// a repeated analysis by technique a1 or a2, a result of type s, arbitrary
// steps, then a publication p.
func introSpec(t *testing.T) *Spec {
	t.Helper()
	spec, err := NewSpecBuilder().
		Start("W").
		Chain("W", "ingest", "Analysis", "post", "publish").
		Prod("Analysis", []string{"tool1", "Analysis", "result"},
			[]BodyEdge{{From: 0, To: 1, Tag: "a1"}, {From: 1, To: 2, Tag: "s"}}).
		Prod("Analysis", []string{"tool2", "result"},
			[]BodyEdge{{From: 0, To: 1, Tag: "s"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestPublicAPIEndToEnd(t *testing.T) {
	spec := introSpec(t)
	run, err := spec.Derive(DeriveOptions{Seed: 4, TargetEdges: 300})
	if err != nil {
		t.Fatal(err)
	}
	if run.NumNodes() == 0 || run.NumEdges() == 0 {
		t.Fatal("empty run")
	}
	eng := NewEngine(run)

	q := MustParseQuery("_*.s._*.publish")
	safe, err := eng.IsSafe(q)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := eng.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("expected matches: every run ends with a publish after results")
	}
	// Cross-check one pair against Pairwise.
	got, err := eng.Pairwise(q, pairs[0].From, pairs[0].To)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Errorf("Pairwise disagrees with Evaluate on %v (safe=%v)", pairs[0], safe)
	}
}

func TestAllPairsStrategiesConsistent(t *testing.T) {
	spec := introSpec(t)
	run, err := spec.Derive(DeriveOptions{Seed: 7, TargetEdges: 150})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(run)
	q := MustParseQuery("_*.s._*")
	safe, err := eng.IsSafe(q)
	if err != nil {
		t.Fatal(err)
	}
	if !safe {
		t.Fatalf("%s should be safe here", q)
	}
	l1 := run.NodesOfModule("tool1")
	l2 := run.NodesOfModule("publish")
	var counts []int
	for _, st := range []Strategy{Auto, StrategyRPL, StrategyOptRPL, StrategyG1} {
		pairs, err := eng.AllPairs(q, l1, l2, st)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, len(pairs))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("strategies disagree: %v", counts)
		}
	}
}

func TestUnsafeQueryFallbacks(t *testing.T) {
	spec := introSpec(t)
	run, err := spec.Derive(DeriveOptions{Seed: 2, TargetEdges: 120})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(run)
	// a1 occurs only in the recursive production: unsafe.
	q := MustParseQuery("_*.a1._*")
	safe, err := eng.IsSafe(q)
	if err != nil {
		t.Fatal(err)
	}
	if safe {
		t.Fatal("_*.a1._* should be unsafe for the intro workflow")
	}
	if _, err := eng.AllPairs(q, run.AllNodes(), run.AllNodes(), StrategyOptRPL); err == nil {
		t.Error("OptRPL on an unsafe query should error")
	}
	auto, err := eng.AllPairs(q, run.AllNodes(), run.AllNodes(), Auto)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := eng.AllPairs(q, run.AllNodes(), run.AllNodes(), StrategyG1)
	if err != nil {
		t.Fatal(err)
	}
	if len(auto) != len(g1) {
		t.Errorf("Auto (%d pairs) and G1 (%d pairs) disagree on unsafe query", len(auto), len(g1))
	}
	// Pairwise falls back to G2.
	if len(auto) > 0 {
		ok, err := eng.Pairwise(q, auto[0].From, auto[0].To)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Error("Pairwise fallback disagrees with Evaluate")
		}
	}
}

func TestExplain(t *testing.T) {
	spec := introSpec(t)
	run, err := spec.Derive(DeriveOptions{Seed: 1, TargetEdges: 80})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(run)
	rep, err := eng.Explain(MustParseQuery("a1.(_*.s._*)"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe {
		t.Error("a1.(_*.s._*) should be unsafe: only recursive Analysis executions start with a1")
	}
	if !rep.Decomposed {
		t.Error("unsafe query should report the decomposition path")
	}
	// The exact decomposition depends on the cost model; presence tested in
	// core and in the dedicated plan-report tests.
}

func TestReachability(t *testing.T) {
	spec := introSpec(t)
	run, err := spec.Derive(DeriveOptions{Seed: 3, TargetEdges: 100})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(run)
	ingest := run.NodesOfModule("ingest")
	publish := run.NodesOfModule("publish")
	if len(ingest) != 1 || len(publish) != 1 {
		t.Fatalf("expected unique ingest/publish, got %d/%d", len(ingest), len(publish))
	}
	ok, err := eng.Reachable(ingest[0], publish[0])
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("ingest should reach publish")
	}
	back, err := eng.Reachable(publish[0], ingest[0])
	if err != nil {
		t.Fatal(err)
	}
	if back {
		t.Error("publish should not reach ingest")
	}
	pairs, err := eng.AllPairsReachable(run.AllNodes(), publish)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != run.NumNodes() {
		t.Errorf("all %d nodes should reach the final publish; got %d", run.NumNodes(), len(pairs))
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := introSpec(t)
	run, err := spec.Derive(DeriveOptions{Seed: 5, TargetEdges: 60})
	if err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(dir, "spec.json")
	runPath := filepath.Join(dir, "run.json")
	if err := SaveSpec(specPath, spec); err != nil {
		t.Fatal(err)
	}
	if err := SaveRun(runPath, run); err != nil {
		t.Fatal(err)
	}
	spec2, err := LoadSpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	run2, err := LoadRun(runPath, spec2)
	if err != nil {
		t.Fatal(err)
	}
	if run2.NumNodes() != run.NumNodes() || run2.NumEdges() != run.NumEdges() {
		t.Fatal("round trip changed the run")
	}
	// Query results survive the round trip.
	q := MustParseQuery("_*.s._*")
	p1, err := NewEngine(run).Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewEngine(run2).Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p2) {
		t.Fatalf("results differ after round trip: %d vs %d", len(p1), len(p2))
	}
	if _, err := LoadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("loading a missing file should fail")
	}
	if err := os.WriteFile(specPath, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(specPath); err == nil {
		t.Error("loading corrupt JSON should fail")
	}
}

func TestNodeAccessors(t *testing.T) {
	spec := introSpec(t)
	run, err := spec.Derive(DeriveOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	id, ok := run.NodeByName("ingest:1")
	if !ok {
		t.Fatal("ingest:1 missing")
	}
	if run.NodeModule(id) != "ingest" {
		t.Errorf("NodeModule = %s", run.NodeModule(id))
	}
	if run.NodeName(id) != "ingest:1" {
		t.Errorf("NodeName = %s", run.NodeName(id))
	}
	if run.NodeLabel(id) == "" {
		t.Error("NodeLabel empty")
	}
	if len(run.Edges()) != run.NumEdges() {
		t.Error("Edges() length mismatch")
	}
	eng := NewEngine(run)
	if _, err := eng.Reachable(NodeID(-1), id); err == nil {
		t.Error("out-of-range node should error")
	}
	if _, err := eng.Reachable(id, NodeID(run.NumNodes())); err == nil {
		t.Error("out-of-range node should error")
	}
}

func TestQueryParseErrorsSurface(t *testing.T) {
	if _, err := ParseQuery("a.("); err == nil {
		t.Error("bad query should fail to parse")
	}
}
