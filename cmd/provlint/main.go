// Command provlint runs provrpq's invariant analyzers over the module.
//
// Usage:
//
//	go run ./cmd/provlint ./...
//	go run ./cmd/provlint -only immutable,cowalias ./internal/derive/
//	go run ./cmd/provlint -list
//
// Exit status is 0 when the tree is clean, 1 when there are findings,
// and 2 on usage or load errors. Findings print one per line as
// file:line:col: analyzer: message. See the README's "Static analysis"
// section for the invariants, the //provrpq: annotation syntax, and the
// //provlint:ignore suppression directive.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"provrpq/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: provlint [-list] [-only names] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.DefaultSuite()
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range suite.Analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "provlint: no analyzers match -only=%s (try -list)\n", *only)
			os.Exit(2)
		}
		suite.Analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.NewLoader().Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "provlint:", err)
		os.Exit(2)
	}
	diags := suite.Run(pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "provlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
