// Command provlint runs provrpq's invariant analyzers over the module.
//
// Usage:
//
//	go run ./cmd/provlint ./...
//	go run ./cmd/provlint -only immutable,cowalias ./internal/derive/
//	go run ./cmd/provlint -json ./...
//	go run ./cmd/provlint -lockgraph ./...
//	go run ./cmd/provlint -list
//
// Exit status is 0 when the tree is clean, 1 when there are findings,
// and 2 on usage or load errors. Findings print one per line as
// file:line:col: analyzer: message, or as a JSON array with -json.
// -lockgraph prints the declared //provrpq:lockrank hierarchy and every
// observed nesting edge as a Graphviz digraph instead of running the
// suite. See the README's "Static analysis" and "Concurrency model"
// sections for the invariants, the //provrpq: annotation syntax, and
// the //provlint:ignore suppression directive.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"provrpq/internal/analysis"
)

// jsonFinding is the -json wire shape. Suppressible distinguishes
// analyzer findings (which //provlint:ignore can silence) from the
// meta-diagnostics provlint emits about malformed directives.
type jsonFinding struct {
	File         string `json:"file"`
	Line         int    `json:"line"`
	Column       int    `json:"column"`
	Analyzer     string `json:"analyzer"`
	Message      string `json:"message"`
	Suppressible bool   `json:"suppressible"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array")
	lockgraph := flag.Bool("lockgraph", false, "print the declared lock hierarchy as a Graphviz digraph and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: provlint [-list] [-json] [-lockgraph] [-only names] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.DefaultSuite()
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range suite.Analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "provlint: no analyzers match -only=%s (try -list)\n", *only)
			os.Exit(2)
		}
		suite.Analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.NewLoader().Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "provlint:", err)
		os.Exit(2)
	}
	if *lockgraph {
		fmt.Print(analysis.LockGraphDOT(pkgs))
		return
	}
	diags := suite.Run(pkgs)
	if *asJSON {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:         d.Pos.Filename,
				Line:         d.Pos.Line,
				Column:       d.Pos.Column,
				Analyzer:     d.Analyzer,
				Message:      d.Message,
				Suppressible: d.Analyzer != "provlint",
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "provlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "provlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
