// Command rpqload is a closed- or open-loop load generator for rpqd: it
// discovers the daemon's runs, drives a mixed evaluate/pairwise/append
// workload against them, and reports throughput and latency percentiles
// — machine-readably, so CI can gate on them.
//
// Usage:
//
//	rpqload -addr http://127.0.0.1:8080 -duration 10s -workers 8
//	rpqload -addr ... -qps 200 -mix evaluate=8,pairwise=2 -warmup 2s
//	rpqload -addr ... -duration 5s -out BENCH_serve.json
//
// With -qps 0 (the default) the generator is closed-loop: -workers
// goroutines each keep exactly one request in flight, so the measured
// throughput is the server's capacity at that concurrency. With -qps N
// it is open-loop: requests start on a fixed schedule regardless of
// completions, which measures latency at a target arrival rate (and
// honestly reports the overload cliff — queueing shows up as latency,
// not as a slower generator).
//
// The workload mix is a weighted choice per request:
//
//	evaluate  POST /v1/evaluate with count_only (full all-pairs scan)
//	pairwise  POST /v1/pairwise on a random node pair
//	append    POST /v1/runs/{name}/edges with one single-edge batch
//	stream    POST /v1/runs/{name}/stream with a short NDJSON burst
//
// Append traffic requires the daemon to accept growth for the target
// run; runs are never mutated unless "append" or "stream" has nonzero
// weight. Appends are version-guarded (?expected_version) so a retry can
// never double-apply: on a 409 conflict — an expected outcome when
// several writers race on one run, not a failure — the generator
// re-reads the run's version and retries a bounded number of times, and
// conflicts that survive the retries are reported in their own counter,
// never as errors. Requests during -warmup are sent but excluded from
// the report.
//
// -watch N keeps N standing-query (SSE) subscriptions open against the
// target run for the load's duration — the serving-while-watching
// scenario — and the report counts the delta events they consumed.
//
// The JSON report (stdout, or -out) carries the per-op and overall
// counts, achieved QPS, conflict and watcher tallies, and exact
// p50/p95/p99 latencies computed from every recorded sample (no
// bucketing).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type opStats struct {
	Count     int     `json:"count"`
	Errors    int     `json:"errors"`
	Conflicts int     `json:"conflicts,omitempty"`
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
}

type report struct {
	Addr            string  `json:"addr"`
	Run             string  `json:"run"`
	Query           string  `json:"query"`
	Mix             string  `json:"mix"`
	Workers         int     `json:"workers"`
	TargetQPS       float64 `json:"target_qps,omitempty"`
	WarmupSeconds   float64 `json:"warmup_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`
	Requests        int     `json:"requests"`
	Errors          int     `json:"errors"`
	// Conflicts counts appends whose version guard still collided after
	// the bounded retries — contention, not failure; they are excluded
	// from Errors.
	Conflicts int     `json:"conflicts"`
	QPS       float64 `json:"qps"`
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
	// Watchers and WatchDeltas report the standing-query side channel:
	// how many SSE subscriptions were held open and how many delta
	// events they consumed during the measured window.
	Watchers    int                `json:"watchers,omitempty"`
	WatchDeltas int64              `json:"watch_deltas,omitempty"`
	Ops         map[string]opStats `json:"ops"`
}

type sample struct {
	op       string
	dur      time.Duration
	err      bool
	conflict bool
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "rpqd base URL")
	runName := flag.String("run", "", "target run (default: the daemon's first run)")
	queryStr := flag.String("query", "_*", "query for evaluate/pairwise ops")
	duration := flag.Duration("duration", 10*time.Second, "measured load duration (after warmup)")
	warmup := flag.Duration("warmup", time.Second, "warmup window; requests sent but not recorded")
	workers := flag.Int("workers", 4, "concurrent workers (closed loop) or senders (open loop)")
	qps := flag.Float64("qps", 0, "target arrival rate; 0 = closed loop at -workers concurrency")
	mixSpec := flag.String("mix", "evaluate=7,pairwise=3", "weighted op mix, op=weight[,op=weight...]; ops: evaluate, pairwise, append, stream")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	outPath := flag.String("out", "", "write the JSON report here instead of stdout")
	watchN := flag.Int("watch", 0, "hold this many standing-query (SSE) subscriptions open for the load's duration")
	watchQuery := flag.String("watch-query", "_*", "safe query the standing subscriptions register")
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	fatal(err)
	hc := &http.Client{Timeout: 60 * time.Second}
	base := strings.TrimRight(*addr, "/")

	tgt, err := discover(hc, base, *runName)
	fatal(err)
	fmt.Fprintf(os.Stderr, "rpqload: run %q (%d nodes), spec %q, tags %v\n",
		tgt.run, len(tgt.nodes), tgt.spec, tgt.tags)
	if mix.weight("append")+mix.weight("stream") > 0 && len(tgt.tags) == 0 {
		fatal(fmt.Errorf("append/stream ops requested but specification %q reports no tags", tgt.spec))
	}

	// Standing watchers live on their own client (a client timeout would
	// kill a long SSE stream) and are torn down after the load drains.
	var watchDeltas atomic.Int64
	watchCtx, cancelWatch := context.WithCancel(context.Background())
	var watchWg sync.WaitGroup
	for i := 0; i < *watchN; i++ {
		watchWg.Add(1)
		go func() {
			defer watchWg.Done()
			runWatcher(watchCtx, base, tgt.run, *watchQuery, &watchDeltas)
		}()
	}

	var (
		mu      sync.Mutex
		samples []sample
	)
	workStart := time.Now()
	measureFrom := workStart.Add(*warmup)
	deadline := measureFrom.Add(*duration)
	record := func(s sample, started time.Time) {
		if started.Before(measureFrom) {
			return
		}
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	oneRequest := func(rng *rand.Rand) {
		op := mix.pick(rng)
		started := time.Now()
		conflict, err := tgt.do(hc, base, op, *queryStr, rng)
		record(sample{op: op, dur: time.Since(started), err: err != nil, conflict: conflict}, started)
	}

	var wg sync.WaitGroup
	if *qps > 0 {
		// Open loop: a ticker paces arrivals; a bounded sender pool keeps
		// the generator from spawning unbounded goroutines under overload
		// (beyond the pool the arrival falls behind schedule, which the
		// achieved-QPS figure then reports).
		tick := time.NewTicker(time.Duration(float64(time.Second) / *qps))
		defer tick.Stop()
		reqs := make(chan struct{}, *workers)
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(*seed + int64(w)))
				for range reqs {
					oneRequest(rng)
				}
			}(w)
		}
		for time.Now().Before(deadline) {
			<-tick.C
			select {
			case reqs <- struct{}{}:
			default: // all senders busy; this arrival is dropped late
			}
		}
		close(reqs)
	} else {
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(*seed + int64(w)))
				for time.Now().Before(deadline) {
					oneRequest(rng)
				}
			}(w)
		}
	}
	wg.Wait()
	measured := time.Since(measureFrom)
	cancelWatch()
	watchWg.Wait()

	rep := summarize(samples, measured)
	rep.Addr, rep.Run, rep.Query, rep.Mix = base, tgt.run, *queryStr, *mixSpec
	rep.Workers, rep.TargetQPS = *workers, *qps
	rep.WarmupSeconds = warmup.Seconds()
	rep.Watchers, rep.WatchDeltas = *watchN, watchDeltas.Load()

	out, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	out = append(out, '\n')
	if *outPath != "" {
		fatal(os.WriteFile(*outPath, out, 0o644))
		fmt.Fprintf(os.Stderr, "rpqload: report written to %s\n", *outPath)
	} else {
		os.Stdout.Write(out)
	}
	fmt.Fprintf(os.Stderr, "rpqload: %d requests in %.1fs = %.1f qps, p50 %.2fms p95 %.2fms p99 %.2fms, %d error(s), %d conflict(s), %d watch delta(s)\n",
		rep.Requests, rep.DurationSeconds, rep.QPS, rep.P50Millis, rep.P95Millis, rep.P99Millis, rep.Errors, rep.Conflicts, rep.WatchDeltas)
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// ---- workload target ----

// target is what discovery learned about the daemon: the run to drive,
// its node names (for pairwise endpoints), its node count (for append
// edge endpoints), its specification's tags (for append batches) and its
// last-seen version (the CAS guard for appends, advanced from every
// append response so concurrent workers mostly guess right).
type target struct {
	run       string
	spec      string
	nodes     []string
	tags      []string
	nodeCount int
	version   atomic.Int64
}

func discover(hc *http.Client, base, runName string) (*target, error) {
	var runs struct {
		Runs []struct {
			Name    string `json:"name"`
			Spec    string `json:"spec"`
			Nodes   int    `json:"nodes"`
			Version int    `json:"version"`
		} `json:"runs"`
	}
	if err := getJSON(hc, base+"/v1/runs", &runs); err != nil {
		return nil, err
	}
	if len(runs.Runs) == 0 {
		return nil, fmt.Errorf("daemon at %s serves no runs", base)
	}
	t := &target{}
	for _, r := range runs.Runs {
		if runName == "" || r.Name == runName {
			t.run, t.spec, t.nodeCount = r.Name, r.Spec, r.Nodes
			t.version.Store(int64(r.Version))
			break
		}
	}
	if t.run == "" {
		return nil, fmt.Errorf("run %q not served (have %d runs)", runName, len(runs.Runs))
	}
	var specs struct {
		Specs []struct {
			Name string   `json:"name"`
			Tags []string `json:"tags"`
		} `json:"specs"`
	}
	if err := getJSON(hc, base+"/v1/specs", &specs); err != nil {
		return nil, err
	}
	for _, s := range specs.Specs {
		if s.Name == t.spec {
			t.tags = s.Tags
		}
	}
	// One evaluate with a generous page pulls real node names for the
	// pairwise workload; reachability "_*" matches every node with itself,
	// so every node name appears.
	var ev struct {
		Pairs []struct {
			From string `json:"from"`
			To   string `json:"to"`
		} `json:"pairs"`
	}
	limit := 512
	if err := postJSON(hc, base+"/v1/evaluate",
		map[string]any{"run": t.run, "query": "_*", "limit": limit}, &ev); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, p := range ev.Pairs {
		for _, name := range []string{p.From, p.To} {
			if !seen[name] {
				seen[name] = true
				t.nodes = append(t.nodes, name)
			}
		}
	}
	if len(t.nodes) == 0 {
		return nil, fmt.Errorf("run %q yielded no node names for the pairwise workload", t.run)
	}
	return t, nil
}

// appendRetries bounds how many times one append op re-guesses the
// version guard after a 409 before giving up and reporting a conflict.
const appendRetries = 3

// streamRecordsPerOp sizes one "stream" op's NDJSON burst.
const streamRecordsPerOp = 16

// do issues one request of the given op. A non-nil error is any non-2xx
// answer; conflict reports an append whose version guard still collided
// after the bounded retries (contention, not failure).
func (t *target) do(hc *http.Client, base, op, query string, rng *rand.Rand) (conflict bool, err error) {
	switch op {
	case "pairwise":
		from := t.nodes[rng.Intn(len(t.nodes))]
		to := t.nodes[rng.Intn(len(t.nodes))]
		return false, postJSON(hc, base+"/v1/pairwise",
			map[string]any{"run": t.run, "query": query, "from": from, "to": to}, nil)
	case "append":
		// One edges-only single-edge batch between existing nodes with a
		// real tag: always valid (endpoints in range, tag in the
		// alphabet), and it exercises the durable append path, the delta
		// labeling frontier and the engine swap on every request. The
		// ?expected_version guard makes it retry-safe: a 409 means another
		// writer won the race — re-read the version and try again with the
		// fresh guard, a bounded number of times.
		body := map[string]any{
			"edges": []map[string]any{{
				"From": rng.Intn(t.nodeCount),
				"To":   rng.Intn(t.nodeCount),
				"Tag":  t.tags[rng.Intn(len(t.tags))],
			}},
		}
		for attempt := 0; ; attempt++ {
			guard := t.version.Load()
			var ar struct {
				Version int `json:"version"`
			}
			status, err := postJSONStatus(hc,
				fmt.Sprintf("%s/v1/runs/%s/edges?expected_version=%d", base, t.run, guard), body, &ar)
			if err == nil {
				t.advanceVersion(int64(ar.Version))
				return false, nil
			}
			if status != http.StatusConflict {
				return false, err
			}
			if attempt >= appendRetries {
				return true, nil
			}
			if v, rerr := t.fetchVersion(hc, base); rerr == nil {
				t.advanceVersion(v)
			}
		}
	case "stream":
		// One short NDJSON burst through the streaming-ingest route: edges
		// between existing nodes, grouped and committed by the server.
		var sb strings.Builder
		for i := 0; i < streamRecordsPerOp; i++ {
			fmt.Fprintf(&sb, `{"edge":{"From":%d,"To":%d,"Tag":%q}}`+"\n",
				rng.Intn(t.nodeCount), rng.Intn(t.nodeCount), t.tags[rng.Intn(len(t.tags))])
		}
		resp, err := hc.Post(base+"/v1/runs/"+t.run+"/stream", "application/x-ndjson", strings.NewReader(sb.String()))
		if err != nil {
			return false, err
		}
		var sr struct {
			Version int `json:"version"`
		}
		if err := decodeJSON(resp, base+"/v1/runs/"+t.run+"/stream", &sr); err != nil {
			return false, err
		}
		t.advanceVersion(int64(sr.Version))
		return false, nil
	default: // evaluate
		return false, postJSON(hc, base+"/v1/evaluate",
			map[string]any{"run": t.run, "query": query, "count_only": true}, nil)
	}
}

// advanceVersion raises the last-seen version monotonically (a stale
// response must never move the guard backwards).
func (t *target) advanceVersion(v int64) {
	for {
		cur := t.version.Load()
		if v <= cur || t.version.CompareAndSwap(cur, v) {
			return
		}
	}
}

// fetchVersion re-reads the target run's current version after a 409.
func (t *target) fetchVersion(hc *http.Client, base string) (int64, error) {
	var runs struct {
		Runs []struct {
			Name    string `json:"name"`
			Version int    `json:"version"`
		} `json:"runs"`
	}
	if err := getJSON(hc, base+"/v1/runs", &runs); err != nil {
		return 0, err
	}
	for _, r := range runs.Runs {
		if r.Name == t.run {
			return int64(r.Version), nil
		}
	}
	return 0, fmt.Errorf("run %q vanished from %s/v1/runs", t.run, base)
}

// runWatcher holds one standing-query SSE subscription open until ctx is
// canceled, counting the delta events it consumes. Errors are terminal
// for the watcher (the load result does not depend on it) and reported
// on stderr once.
func runWatcher(ctx context.Context, base, run, query string, deltas *atomic.Int64) {
	body, err := json.Marshal(map[string]string{"run": run, "query": query})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpqload: watcher:", err)
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/watch", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpqload: watcher:", err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	// No client timeout: the subscription is meant to outlive any single
	// request; ctx cancellation tears it down.
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		if ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "rpqload: watcher:", err)
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		fmt.Fprintf(os.Stderr, "rpqload: watcher: HTTP %d: %s\n", resp.StatusCode, raw)
		return
	}
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return // ctx canceled or server gone
		}
		if strings.HasPrefix(line, "event: delta") {
			deltas.Add(1)
		}
	}
}

// ---- reporting ----

func summarize(samples []sample, measured time.Duration) report {
	rep := report{
		DurationSeconds: measured.Seconds(),
		Ops:             map[string]opStats{},
	}
	byOp := map[string][]time.Duration{}
	errsByOp := map[string]int{}
	conflictsByOp := map[string]int{}
	var all []time.Duration
	for _, s := range samples {
		rep.Requests++
		if s.conflict {
			rep.Conflicts++
			conflictsByOp[s.op]++
		}
		if s.err {
			rep.Errors++
			errsByOp[s.op]++
			continue
		}
		byOp[s.op] = append(byOp[s.op], s.dur)
		all = append(all, s.dur)
	}
	if measured > 0 {
		rep.QPS = float64(rep.Requests) / measured.Seconds()
	}
	rep.P50Millis, rep.P95Millis, rep.P99Millis = percentiles(all)
	for op, ds := range byOp {
		p50, p95, p99 := percentiles(ds)
		var sum time.Duration
		for _, d := range ds {
			sum += d
		}
		st := opStats{Count: len(ds) + errsByOp[op], Errors: errsByOp[op], Conflicts: conflictsByOp[op], P50Millis: p50, P95Millis: p95, P99Millis: p99}
		if len(ds) > 0 {
			st.MeanMs = float64(sum.Microseconds()) / 1000 / float64(len(ds))
		}
		rep.Ops[op] = st
	}
	for op, n := range errsByOp {
		if _, ok := rep.Ops[op]; !ok {
			rep.Ops[op] = opStats{Count: n, Errors: n}
		}
	}
	return rep
}

// percentiles returns exact p50/p95/p99 in milliseconds from the full
// sample set (nearest-rank on the sorted samples).
func percentiles(ds []time.Duration) (p50, p95, p99 float64) {
	if len(ds) == 0 {
		return 0, 0, 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return float64(sorted[i].Microseconds()) / 1000
	}
	return at(0.50), at(0.95), at(0.99)
}

// ---- HTTP plumbing ----

func getJSON(hc *http.Client, url string, out any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	return decodeJSON(resp, url, out)
}

func postJSON(hc *http.Client, url string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := hc.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	return decodeJSON(resp, url, out)
}

// postJSONStatus is postJSON for callers that branch on the HTTP status
// (the append CAS loop needs to tell a 409 from a real failure).
func postJSONStatus(hc *http.Client, url string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := hc.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, decodeJSON(resp, url, out)
}

func decodeJSON(resp *http.Response, url string, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, raw)
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// ---- op mix ----

type opMix struct {
	ops     []string
	weights []int
	total   int
}

func parseMix(spec string) (*opMix, error) {
	m := &opMix{}
	for _, part := range strings.Split(spec, ",") {
		op, ws, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want op=weight", part)
		}
		switch op {
		case "evaluate", "pairwise", "append", "stream":
		default:
			return nil, fmt.Errorf("mix entry %q: unknown op (want evaluate, pairwise, append or stream)", part)
		}
		w, err := strconv.Atoi(ws)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: weight must be a non-negative integer", part)
		}
		m.ops = append(m.ops, op)
		m.weights = append(m.weights, w)
		m.total += w
	}
	if m.total == 0 {
		return nil, fmt.Errorf("mix %q: total weight is zero", spec)
	}
	return m, nil
}

func (m *opMix) pick(rng *rand.Rand) string {
	n := rng.Intn(m.total)
	for i, w := range m.weights {
		if n < w {
			return m.ops[i]
		}
		n -= w
	}
	return m.ops[len(m.ops)-1]
}

func (m *opMix) weight(op string) int {
	for i, o := range m.ops {
		if o == op {
			return m.weights[i]
		}
	}
	return 0
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpqload:", err)
		os.Exit(1)
	}
}
