// Command rpqcli evaluates regular path queries over a stored workflow run.
//
// Usage:
//
//	rpqcli -spec wf.spec.json -run wf.run.json -query "_*.emit._*"
//	rpqcli -spec ... -run ... -query "a*" -from a:1 -to a:9
//	rpqcli -spec ... -run ... -query "a*" -explain
//	rpqcli -spec ... -run ... -query "a*" -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"provrpq"
	"provrpq/internal/metrics"
)

func main() {
	specPath := flag.String("spec", "", "specification JSON (from wfgen or SaveSpec)")
	runPath := flag.String("run", "", "run JSON (from wfgen or SaveRun)")
	queryStr := flag.String("query", "", "regular path query")
	from := flag.String("from", "", "pairwise source node, e.g. a:1")
	to := flag.String("to", "", "pairwise target node")
	explain := flag.Bool("explain", false, "print the evaluation plan instead of results")
	limit := flag.Int("limit", 20, "max result pairs to print (0 = all)")
	stats := flag.Bool("stats", false, "print plan-cache statistics after evaluating")
	flag.Parse()

	if *stats {
		defer printStats()
	}

	if *specPath == "" || *runPath == "" || *queryStr == "" {
		fmt.Fprintln(os.Stderr, "usage: rpqcli -spec S.json -run R.json -query Q [-from u -to v | -explain]")
		os.Exit(2)
	}
	spec, err := provrpq.LoadSpec(*specPath)
	fatal(err)
	run, err := provrpq.LoadRun(*runPath, spec)
	fatal(err)
	q, err := provrpq.ParseQuery(*queryStr)
	fatal(err)

	eng := provrpq.NewEngine(run)
	safe, err := eng.IsSafe(q)
	fatal(err)
	fmt.Printf("query %s — safe: %v\n", q, safe)

	if *explain {
		rep, err := eng.Explain(q)
		fatal(err)
		if rep.Safe {
			fmt.Printf("plan: single safe scan, strategy %s\n", rep.Strategy)
			if rep.SeedTag != "" {
				dir := "forward"
				if rep.Reverse {
					dir = "reverse"
				}
				fmt.Printf("  seed tag %q (%d occurrence(s), %s)\n", rep.SeedTag, rep.SeedCount, dir)
			}
			fmt.Printf("  estimated decodes: rpl=%.0f optrpl=%.0f seeded=%.0f\n",
				rep.CostRPL, rep.CostOptRPL, rep.CostSeeded)
			fmt.Printf("  unit costs (%s): rpl=%.1fns optrpl=%.1fns seeded=%.1fns\n",
				rep.CostSource, rep.UnitNanosRPL, rep.UnitNanosOptRPL, rep.UnitNanosSeeded)
			return
		}
		fmt.Printf("plan: decomposition; safe subtrees evaluated with labels: %v (%d relational node(s))\n",
			rep.SafeSubtrees, rep.RelationalNodes)
		return
	}

	if *from != "" && *to != "" {
		u, ok := run.NodeByName(*from)
		if !ok {
			fatal(fmt.Errorf("node %q not found", *from))
		}
		v, ok := run.NodeByName(*to)
		if !ok {
			fatal(fmt.Errorf("node %q not found", *to))
		}
		match, err := eng.Pairwise(q, u, v)
		fatal(err)
		fmt.Printf("%s --[%s]--> %s: %v\n", *from, q, *to, match)
		return
	}

	pairs, err := eng.Evaluate(q)
	fatal(err)
	fmt.Printf("%d matching pairs\n", len(pairs))
	for i, p := range pairs {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... (%d more)\n", len(pairs)-*limit)
			break
		}
		fmt.Printf("  %s -> %s\n", run.NodeName(p.From), run.NodeName(p.To))
	}
}

// printStats dumps the process-wide metrics registry: the plan-cache
// summary rpqcli has always printed, then every counter and gauge the
// evaluation touched, with per-strategy latency summaries (p50/p95/p99
// estimated from the histogram buckets) for the strategies that ran.
func printStats() {
	s := provrpq.DefaultPlanCache().Stats()
	fmt.Printf("plan cache: %d plans resident, %d hits, %d misses, %d evictions\n",
		s.Plans, s.Hits, s.Misses, s.Evictions)
	for _, fam := range metrics.Default().Snapshot() {
		for _, sm := range fam.Samples {
			name := fam.Name
			if len(sm.LabelValues) > 0 {
				name += "{" + strings.Join(sm.LabelValues, ",") + "}"
			}
			if sm.Histogram == nil {
				if sm.Value != 0 {
					fmt.Printf("%s: %g\n", name, sm.Value)
				}
				continue
			}
			h := sm.Histogram
			if h.Count == 0 {
				continue
			}
			unit := ""
			if strings.HasSuffix(fam.Name, "_seconds") {
				unit = "s"
			}
			fmt.Printf("%s: n=%d mean=%.3g%s p50=%.3g%s p95=%.3g%s p99=%.3g%s\n",
				name, h.Count, h.Sum/float64(h.Count), unit,
				h.Quantile(0.50), unit, h.Quantile(0.95), unit, h.Quantile(0.99), unit)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpqcli:", err)
		os.Exit(1)
	}
}
