// Command rpqcli evaluates regular path queries over a stored workflow run.
//
// Usage:
//
//	rpqcli -spec wf.spec.json -run wf.run.json -query "_*.emit._*"
//	rpqcli -spec ... -run ... -query "a*" -from a:1 -to a:9
//	rpqcli -spec ... -run ... -query "a*" -explain
//	rpqcli -spec ... -run ... -query "a*" -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"provrpq"
)

func main() {
	specPath := flag.String("spec", "", "specification JSON (from wfgen or SaveSpec)")
	runPath := flag.String("run", "", "run JSON (from wfgen or SaveRun)")
	queryStr := flag.String("query", "", "regular path query")
	from := flag.String("from", "", "pairwise source node, e.g. a:1")
	to := flag.String("to", "", "pairwise target node")
	explain := flag.Bool("explain", false, "print the evaluation plan instead of results")
	limit := flag.Int("limit", 20, "max result pairs to print (0 = all)")
	stats := flag.Bool("stats", false, "print plan-cache statistics after evaluating")
	flag.Parse()

	if *stats {
		defer func() {
			s := provrpq.DefaultPlanCache().Stats()
			fmt.Printf("plan cache: %d plans resident, %d hits, %d misses, %d evictions\n",
				s.Plans, s.Hits, s.Misses, s.Evictions)
		}()
	}

	if *specPath == "" || *runPath == "" || *queryStr == "" {
		fmt.Fprintln(os.Stderr, "usage: rpqcli -spec S.json -run R.json -query Q [-from u -to v | -explain]")
		os.Exit(2)
	}
	spec, err := provrpq.LoadSpec(*specPath)
	fatal(err)
	run, err := provrpq.LoadRun(*runPath, spec)
	fatal(err)
	q, err := provrpq.ParseQuery(*queryStr)
	fatal(err)

	eng := provrpq.NewEngine(run)
	safe, err := eng.IsSafe(q)
	fatal(err)
	fmt.Printf("query %s — safe: %v\n", q, safe)

	if *explain {
		rep, err := eng.Explain(q)
		fatal(err)
		if rep.Safe {
			fmt.Printf("plan: single safe scan, strategy %s\n", rep.Strategy)
			if rep.SeedTag != "" {
				dir := "forward"
				if rep.Reverse {
					dir = "reverse"
				}
				fmt.Printf("  seed tag %q (%d occurrence(s), %s)\n", rep.SeedTag, rep.SeedCount, dir)
			}
			fmt.Printf("  estimated decodes: rpl=%.0f optrpl=%.0f seeded=%.0f\n",
				rep.CostRPL, rep.CostOptRPL, rep.CostSeeded)
			return
		}
		fmt.Printf("plan: decomposition; safe subtrees evaluated with labels: %v (%d relational node(s))\n",
			rep.SafeSubtrees, rep.RelationalNodes)
		return
	}

	if *from != "" && *to != "" {
		u, ok := run.NodeByName(*from)
		if !ok {
			fatal(fmt.Errorf("node %q not found", *from))
		}
		v, ok := run.NodeByName(*to)
		if !ok {
			fatal(fmt.Errorf("node %q not found", *to))
		}
		match, err := eng.Pairwise(q, u, v)
		fatal(err)
		fmt.Printf("%s --[%s]--> %s: %v\n", *from, q, *to, match)
		return
	}

	pairs, err := eng.Evaluate(q)
	fatal(err)
	fmt.Printf("%d matching pairs\n", len(pairs))
	for i, p := range pairs {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... (%d more)\n", len(pairs)-*limit)
			break
		}
		fmt.Printf("  %s -> %s\n", run.NodeName(p.From), run.NodeName(p.To))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpqcli:", err)
		os.Exit(1)
	}
}
