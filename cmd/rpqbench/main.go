// Command rpqbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	rpqbench -fig 13c          # one figure, full workload
//	rpqbench -all              # every figure
//	rpqbench -all -quick       # smoke-sized workloads
//	rpqbench -fig boot -json . # also write machine-readable BENCH_boot.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"provrpq/internal/bench"
)

func main() {
	fig := flag.String("fig", "", "figure id to run (13a..13h, 15a, 15b, par, plan, boot, ingest)")
	all := flag.Bool("all", false, "run every figure")
	quick := flag.Bool("quick", false, "shrink workloads for a smoke run")
	seed := flag.Int64("seed", 1, "workload seed")
	workers := flag.Int("parallel", 0, "extra worker count for the parallel-scaling figure (par)")
	jsonDir := flag.String("json", "", "directory for machine-readable BENCH_<figure>.json records (figures boot, plan, ingest)")
	flag.Parse()

	cfg := bench.Config{W: os.Stdout, Quick: *quick, Seed: *seed, Workers: *workers, JSONDir: *jsonDir}
	var ids []string
	switch {
	case *all:
		ids = bench.Figures()
	case *fig != "":
		ids = []string{*fig}
	default:
		fmt.Fprintln(os.Stderr, "usage: rpqbench -fig <id> | -all [-quick] [-seed N] [-parallel N]")
		fmt.Fprintln(os.Stderr, "figures:", bench.Figures())
		os.Exit(2)
	}
	for _, id := range ids {
		start := time.Now()
		if err := bench.Run(id, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "rpqbench: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "(figure %s took %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
