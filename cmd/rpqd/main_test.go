package main

import (
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestStartPprofShutdown exercises the pprof sidecar's lifecycle: the
// profiler answers while running, and stop closes the listener and
// joins the serve goroutine. Regression test for the unjoined
// `go func() { _ = http.Serve(...) }()` the goroutineleak analyzer
// flagged: the old shape leaked the listener past graceful shutdown.
func TestStartPprofShutdown(t *testing.T) {
	addr, stop, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatalf("pprof index while running: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: got %s, want 200", resp.Status)
	}

	joined := make(chan struct{})
	go func() { stop(); close(joined) }()
	select {
	case <-joined:
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not join the pprof serve goroutine")
	}
	if conn, err := net.DialTimeout("tcp", addr.String(), time.Second); err == nil {
		conn.Close()
		t.Fatal("pprof listener still accepting connections after stop")
	}
}

// TestStartPprofBadAddr verifies the listen error surfaces instead of
// crashing the daemon later.
func TestStartPprofBadAddr(t *testing.T) {
	if _, _, err := startPprof("256.256.256.256:0"); err == nil {
		t.Fatal("want error for unlistenable address")
	}
}
