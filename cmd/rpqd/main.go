// Command rpqd serves a multi-run provenance catalog over HTTP/JSON.
//
// Usage:
//
//	rpqd -addr :8080 -data-dir /var/lib/rpqd
//	rpqd -addr 127.0.0.1:0 -spec wf=wf.spec.json -run r1=wf=wf.run.json
//	rpqd -timeout 10s -max-inflight 128 -workers 4 -plan-cache 4096
//	rpqd -log-requests -pprof-addr 127.0.0.1:6060
//
// With -data-dir the catalog is durable: every registered specification,
// every uploaded or derived run (labels included) and every growth batch
// appended via POST /v1/runs/{name}/edges is committed to disk before the
// request returns, and a restart with the same directory restores the
// whole catalog without re-deriving or re-labeling anything — per-run
// append logs are replayed onto the stored base runs at boot.
// Specs and runs can also be preloaded with repeatable -spec name=path
// and -run name=spec=path flags — persisted into the data dir on first
// boot, skipped on later boots when already restored — or registered at
// runtime via POST /v1/specs and POST /v1/runs. Evaluation strategies are
// chosen per run by the selectivity planner; POST /v1/explain reports the
// plan (strategy, seed tag, cost estimates) without evaluating, and every
// /v1/evaluate response names the strategy that answered. GET /metrics
// exposes Prometheus text metrics for every layer (HTTP routes,
// evaluation strategies, planner timings, store durability);
// -log-requests emits one structured JSON log line per request (with
// request ids) on stderr, and -pprof-addr serves net/http/pprof on a
// separate private listener.
//
// POST /v1/runs/{name}/stream ingests NDJSON edge/node records
// continuously, committing them in size/time-bounded groups
// (-stream-flush-records, -stream-flush-interval) through the store's
// group-commit path, and POST /v1/watch registers a standing safe query
// whose snapshot and per-append deltas stream back over SSE
// (-max-watchers, -max-streams bound the open streams). The daemon prints its
// actual listen address on startup (useful with port 0) and shuts down
// gracefully on SIGINT or SIGTERM, draining in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"provrpq"
	"provrpq/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:0 picks a free port)")
	timeout := flag.Duration("timeout", server.DefaultTimeout, "per-request handling deadline")
	maxInFlight := flag.Int("max-inflight", server.DefaultMaxInFlight, "max concurrently-served requests (negative = unlimited)")
	workers := flag.Int("workers", 0, "per-engine scan workers (0 = one per CPU)")
	planCap := flag.Int("plan-cache", 0, "plan-cache capacity in compiled plans (0 = default)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "drain window for graceful shutdown")
	dataDir := flag.String("data-dir", "", "durable catalog directory (created if missing); registered specs and runs survive restarts")
	logRequests := flag.Bool("log-requests", false, "emit one structured (JSON, stderr) log line per request, with request ids")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled); keep it private")
	maxBodyBytes := flag.Int64("max-body-bytes", server.DefaultMaxBodyBytes, "max JSON request body in bytes (413 request_too_large beyond it)")
	streamFlushRecords := flag.Int("stream-flush-records", server.DefaultStreamFlushRecords, "streaming ingest: commit a group once this many NDJSON records are buffered")
	streamFlushInterval := flag.Duration("stream-flush-interval", server.DefaultStreamFlushInterval, "streaming ingest: commit a partially-filled group after this long (negative = size/EOF only)")
	maxRecordBytes := flag.Int("max-record-bytes", server.DefaultMaxRecordBytes, "streaming ingest: max bytes per NDJSON record (413 request_too_large beyond it)")
	maxWatchers := flag.Int("max-watchers", server.DefaultMaxWatchers, "max concurrently-open standing-query (SSE) streams (negative = unlimited)")
	maxStreams := flag.Int("max-streams", server.DefaultMaxStreams, "max concurrently-open NDJSON ingest streams (negative = unlimited)")

	type specFlag struct{ name, path string }
	type runFlag struct{ name, spec, path string }
	var specFlags []specFlag
	var runFlags []runFlag
	flag.Func("spec", "preload a specification, name=path (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		specFlags = append(specFlags, specFlag{name, path})
		return nil
	})
	flag.Func("run", "preload a run, name=spec=path (repeatable)", func(v string) error {
		parts := strings.SplitN(v, "=", 3)
		if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
			return fmt.Errorf("want name=spec=path, got %q", v)
		}
		runFlags = append(runFlags, runFlag{parts[0], parts[1], parts[2]})
		return nil
	})
	flag.Parse()

	opts := provrpq.CatalogOptions{
		PlanCache: provrpq.NewPlanCache(*planCap),
		Workers:   *workers,
	}
	var cat *provrpq.Catalog
	if *dataDir != "" {
		st, err := provrpq.OpenStore(*dataDir)
		fatal(err)
		if n := st.MigratedRuns(); n > 0 {
			fmt.Printf("rpqd: migrated %d run base(s) from JSON to the columnar format\n", n)
		}
		cat, err = provrpq.NewCatalogFromStore(st, opts)
		fatal(err)
		ns, nr := len(cat.SpecNames()), len(cat.RunNames())
		fmt.Printf("rpqd: restored %d specification(s) and %d run(s) from %s (no re-derivation)\n", ns, nr, *dataDir)
		fmt.Printf("rpqd: run bases opened via the columnar fast path (mmap, zero-copy labels)\n")
		replayed := 0
		for _, rn := range cat.RunNames() {
			if v, ok := cat.RunVersion(rn); ok {
				replayed += v
			}
		}
		if replayed > 0 {
			fmt.Printf("rpqd: replayed %d growth batch(es) from the append log\n", replayed)
		}
	} else {
		cat = provrpq.NewCatalog(opts)
	}
	for _, sf := range specFlags {
		if _, ok := cat.Spec(sf.name); ok {
			fmt.Printf("rpqd: specification %q already restored from the data dir; skipping %s\n", sf.name, sf.path)
			continue
		}
		spec, err := provrpq.LoadSpec(sf.path)
		fatal(err)
		fatal(cat.RegisterSpec(sf.name, spec))
		fmt.Printf("rpqd: loaded specification %q from %s\n", sf.name, sf.path)
	}
	for _, rf := range runFlags {
		if _, ok := cat.Run(rf.name); ok {
			fmt.Printf("rpqd: run %q already restored from the data dir; skipping %s\n", rf.name, rf.path)
			continue
		}
		spec, ok := cat.Spec(rf.spec)
		if !ok {
			fatal(fmt.Errorf("run %q references unknown specification %q (order -spec before -run)", rf.name, rf.spec))
		}
		run, err := provrpq.LoadRun(rf.path, spec)
		fatal(err)
		fatal(cat.AddRun(rf.name, rf.spec, run))
		fmt.Printf("rpqd: loaded run %q (%d nodes, %d edges) from %s\n", rf.name, run.NumNodes(), run.NumEdges(), rf.path)
	}

	srvOpts := server.Options{
		Timeout:             *timeout,
		MaxInFlight:         *maxInFlight,
		MaxBodyBytes:        *maxBodyBytes,
		StreamFlushRecords:  *streamFlushRecords,
		StreamFlushInterval: *streamFlushInterval,
		MaxRecordBytes:      *maxRecordBytes,
		MaxWatchers:         *maxWatchers,
		MaxStreams:          *maxStreams,
	}
	if *logRequests {
		srvOpts.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	srv := server.New(cat, srvOpts)
	stopPprof := func() {}
	if *pprofAddr != "" {
		pa, stop, err := startPprof(*pprofAddr)
		fatal(err)
		fmt.Printf("rpqd: pprof on %s\n", pa)
		stopPprof = stop
	}
	ln, err := net.Listen("tcp", *addr)
	fatal(err)
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("rpqd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
		stop()
		fmt.Println("rpqd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "rpqd: forced shutdown:", err)
			_ = httpSrv.Close()
		}
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
		stopPprof()
		fmt.Println("rpqd: bye")
	}
}

// startPprof serves net/http/pprof on its own mux and listener, so
// profiling never shares a port (or the request limiter) with the
// public API. The returned stop function closes the listener, joins the
// serve goroutine, and logs its exit — the daemon never leaves the
// profiler dangling past a graceful shutdown.
func startPprof(addr string) (net.Addr, func(), error) {
	pm := http.NewServeMux()
	pm.HandleFunc("/debug/pprof/", pprof.Index)
	pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
	pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
	pln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	done := make(chan error, 1)
	go func() { done <- http.Serve(pln, pm) }()
	stop := func() {
		_ = pln.Close()
		if err := <-done; err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintln(os.Stderr, "rpqd: pprof server:", err)
		}
		fmt.Println("rpqd: pprof listener closed")
	}
	return pln.Addr(), stop, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpqd:", err)
		os.Exit(1)
	}
}
