// Command wfgen generates workflow specifications and labeled runs as JSON
// files, for use with rpqcli or external tooling.
//
// Usage:
//
//	wfgen -dataset bioaid  -edges 2000 -out /tmp/bio
//	wfgen -dataset qblast  -edges 1000 -seed 7 -out /tmp/qb
//	wfgen -dataset synthetic -size 800 -edges 4000 -out /tmp/syn
//	wfgen -dataset paper -out /tmp/paper      # the paper's Fig. 2a example
//
// Writes <out>.spec.json and <out>.run.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"provrpq/internal/derive"
	"provrpq/internal/wf"
	"provrpq/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "bioaid", "bioaid | qblast | synthetic | paper | fork")
	size := flag.Int("size", 800, "grammar size for -dataset synthetic")
	edges := flag.Int("edges", 2000, "approximate run size in edges")
	seed := flag.Int64("seed", 1, "derivation seed")
	out := flag.String("out", "workflow", "output path prefix")
	forkRun := flag.Bool("forkrun", false, "derive the Fig. 13g fork workload (many fork chains)")
	flag.Parse()

	var spec *wf.Spec
	opts := derive.Options{Seed: *seed, TargetEdges: *edges}
	switch *dataset {
	case "bioaid", "qblast", "synthetic":
		var d *workload.Dataset
		switch *dataset {
		case "bioaid":
			d = workload.BioAID()
		case "qblast":
			d = workload.QBLast()
		default:
			d = workload.Synthetic(*size, *seed)
		}
		spec = d.Spec
		if *forkRun {
			opts.FavorModules = d.ForkFavor
			opts.FavorCaps = d.ForkCaps
		}
	case "paper":
		spec = wf.PaperSpec()
	case "fork":
		spec = wf.ForkSpec()
	default:
		fmt.Fprintf(os.Stderr, "wfgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	run, err := derive.Derive(spec, opts)
	fatal(err)

	specJSON, err := json.MarshalIndent(spec, "", "  ")
	fatal(err)
	fatal(os.WriteFile(*out+".spec.json", specJSON, 0o644))

	runJSON, err := derive.EncodeRun(run)
	fatal(err)
	fatal(os.WriteFile(*out+".run.json", runJSON, 0o644))

	fmt.Printf("wrote %s.spec.json (grammar size %d) and %s.run.json (%d nodes, %d edges)\n",
		*out, spec.Size(), *out, run.NumNodes(), run.NumEdges())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfgen:", err)
		os.Exit(1)
	}
}
