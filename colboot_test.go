package provrpq

import (
	"testing"

	"provrpq/internal/derive"
	"provrpq/internal/store"
)

// legacyJSONDir hand-builds a pre-columnar (PR-5-era) data directory:
// JSON run bases, a JSON growth batch in the append log, a compaction
// epoch above zero, and no format marker in the manifest. Returns the
// directory and the expected final state of each run (base + replayed
// growth), built independently of the store.
func legacyJSONDir(t *testing.T) (string, *Spec, map[string]*Run) {
	t.Helper()
	dir := t.TempDir()
	raw, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sp := introSpec(t)
	specData, err := sp.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := raw.PutSpec("intro", specData); err != nil {
		t.Fatal(err)
	}

	want := map[string]*Run{}
	encodeJSON := func(r *Run) []byte {
		data, err := derive.EncodeRun(r.r)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	r1, err := sp.Derive(DeriveOptions{Seed: 1, TargetEdges: 200})
	if err != nil {
		t.Fatal(err)
	}
	if err := raw.PutRun("r1", "intro", encodeJSON(r1)); err != nil {
		t.Fatal(err)
	}
	// One committed JSON growth batch for r1, exactly as an old build's
	// append log holds it.
	db := derive.Batch{Edges: []derive.Edge{{From: 0, To: 1, Tag: r1.r.Edges[0].Tag}}}
	bdata, err := derive.EncodeBatch(sp.s, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.AppendRun("r1", bdata); err != nil {
		t.Fatal(err)
	}
	// The expected restored r1: base + replayed batch.
	w1, err := sp.Derive(DeriveOptions{Seed: 1, TargetEdges: 200})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := derive.AppendEdges(w1.r, db); err != nil {
		t.Fatal(err)
	}
	want["r1"] = w1

	// r2 was compacted on the old build: its base sits at epoch 1.
	r2, err := sp.Derive(DeriveOptions{Seed: 2, TargetEdges: 150})
	if err != nil {
		t.Fatal(err)
	}
	if err := raw.PutRun("r2", "intro", encodeJSON(r2)); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.AppendRun("r2", bdata); err != nil {
		t.Fatal(err)
	}
	w2, err := sp.Derive(DeriveOptions{Seed: 2, TargetEdges: 150})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := derive.AppendEdges(w2.r, db); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.CompactRun("r2", encodeJSON(w2)); err != nil {
		t.Fatal(err)
	}
	want["r2"] = w2

	if f, err := raw.Format(); err != nil || f != 0 {
		t.Fatalf("legacy dir format = %d, %v; want 0", f, err)
	}
	return dir, sp, want
}

func sameRun(t *testing.T, name string, want, got *Run) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("run %q: (%d,%d) nodes/edges, want (%d,%d)",
			name, got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for _, id := range want.AllNodes() {
		if want.NodeName(id) != got.NodeName(id) || want.NodeLabel(id) != got.NodeLabel(id) {
			t.Fatalf("run %q node %d differs: %q/%q vs %q/%q", name, id,
				want.NodeName(id), want.NodeLabel(id), got.NodeName(id), got.NodeLabel(id))
		}
	}
}

// TestStoreMigratesLegacyJSONDir opens a hand-built PR-5-era JSON data
// directory and checks the one-time columnar migration: every base is
// rewritten in place (same epoch, append log and versions intact), replay
// still applies the JSON batches, answers match a from-scratch build, and
// a second open takes the format fast path without rescanning.
func TestStoreMigratesLegacyJSONDir(t *testing.T) {
	dir, _, want := legacyJSONDir(t)

	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := st.MigratedRuns(); n != 2 {
		t.Fatalf("MigratedRuns = %d, want 2", n)
	}
	// The rewrite preserved the manifest's replay state: r1's batch still
	// pending replay, r2's compaction epoch still 1.
	runs, appends, bases, err := st.st.State()
	if err != nil {
		t.Fatal(err)
	}
	if appends["r1"] != 1 || appends["r2"] != 0 {
		t.Fatalf("appends = %v, want r1:1", appends)
	}
	if bases["r1"] != 0 || bases["r2"] != 1 {
		t.Fatalf("bases = %v, want r1:0 r2:1", bases)
	}
	if runs["r1"] != "intro" || runs["r2"] != "intro" {
		t.Fatalf("runs = %v", runs)
	}
	// Both bases are now columnar on disk.
	for name, epoch := range bases {
		data, err := st.st.GetRunData(name, epoch)
		if err != nil {
			t.Fatal(err)
		}
		if !derive.IsColumnar(data) {
			t.Fatalf("run %q base still JSON after migration", name)
		}
	}

	cat, err := NewCatalogFromStore(st, CatalogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		got, ok := cat.Run(name)
		if !ok {
			t.Fatalf("run %q missing after migration", name)
		}
		sameRun(t, name, w, got)
	}
	if v, _ := cat.RunVersion("r1"); v != 1 {
		t.Fatalf("r1 version = %d, want 1 (replayed batch counts)", v)
	}
	if v, _ := cat.RunVersion("r2"); v != 0 {
		t.Fatalf("r2 version = %d, want 0 (compacted)", v)
	}
	// Answers over the migrated catalog match a from-scratch engine.
	q := MustParseQuery("_*")
	for name, w := range want {
		eng, err := cat.Engine(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		wantPairs, err := NewEngine(w).Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wantPairs) {
			t.Fatalf("run %q: %d pairs, want %d", name, len(got), len(wantPairs))
		}
		for i := range got {
			if got[i] != wantPairs[i] {
				t.Fatalf("run %q pair %d: %v, want %v", name, i, got[i], wantPairs[i])
			}
		}
	}

	// Second open: fast path — nothing to migrate, format already marked.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := st2.MigratedRuns(); n != 0 {
		t.Fatalf("second open MigratedRuns = %d, want 0", n)
	}
	if f, err := st2.st.Format(); err != nil || f != storeFormatColumnar {
		t.Fatalf("format after migration = %d, %v", f, err)
	}
	// And growth still works on the migrated store: append through a
	// catalog, reboot, replay.
	cat2, err := NewCatalogFromStore(st2, CatalogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sp2, _ := cat2.Spec("intro")
	r1, _ := cat2.Run("r1")
	bdata, err := derive.EncodeBatch(sp2.s, derive.Batch{
		Edges: []derive.Edge{{From: 0, To: 2, Tag: r1.r.Edges[0].Tag}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeBatch(sp2, bdata)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cat2.AppendEdges("r1", b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 {
		t.Fatalf("post-migration append version = %d, want 2", res.Version)
	}
	st3, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat3, err := NewCatalogFromStore(st3, CatalogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got3, _ := cat3.Run("r1")
	sameRun(t, "r1(regrown)", res.Run, got3)
}

// TestColumnarBootMatchesJSONBoot boots one catalog from columnar payloads
// (the native path) and one from the same runs stored as JSON (the legacy
// path) and checks Evaluate, Pairwise and Explain agree everywhere — the
// zero-copy boot is an encoding change, never an answer change.
func TestColumnarBootMatchesJSONBoot(t *testing.T) {
	dir, cat, runNames := durableFixture(t) // columnar-native store

	// A parallel legacy-style boot: decode the JSON re-encoding of each run.
	jsonCat := NewCatalog(CatalogOptions{})
	sp, _ := cat.Spec("intro")
	if err := jsonCat.RegisterSpec("intro", sp); err != nil {
		t.Fatal(err)
	}
	for _, name := range runNames {
		r, _ := cat.Run(name)
		data, err := derive.EncodeRun(r.r)
		if err != nil {
			t.Fatal(err)
		}
		jr, err := DecodeRun(sp, data)
		if err != nil {
			t.Fatal(err)
		}
		if err := jsonCat.AddRun(name, "intro", jr); err != nil {
			t.Fatal(err)
		}
	}

	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	colCat, err := NewCatalogFromStore(st, CatalogOptions{})
	if err != nil {
		t.Fatal(err)
	}

	queries := []*Query{
		MustParseQuery("_*.s._*.publish"),
		MustParseQuery("ingest._*"),
		MustParseQuery("_*.a1._*"), // unsafe: decomposition path
	}
	for _, name := range runNames {
		je, err := jsonCat.Engine(name)
		if err != nil {
			t.Fatal(err)
		}
		ce, err := colCat.Engine(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			jp, jerr := je.Evaluate(q)
			cp, cerr := ce.Evaluate(q)
			if (jerr == nil) != (cerr == nil) {
				t.Fatalf("run %q query %s: errors diverge: %v vs %v", name, q, jerr, cerr)
			}
			if len(jp) != len(cp) {
				t.Fatalf("run %q query %s: %d vs %d pairs", name, q, len(jp), len(cp))
			}
			for i := range jp {
				if jp[i] != cp[i] {
					t.Fatalf("run %q query %s pair %d: %v vs %v", name, q, i, jp[i], cp[i])
				}
			}
			jr, jerr := je.Explain(q)
			cr, cerr := ce.Explain(q)
			if (jerr == nil) != (cerr == nil) {
				t.Fatalf("run %q explain %s: errors diverge: %v vs %v", name, q, jerr, cerr)
			}
			if jerr == nil && (jr.Strategy != cr.Strategy || jr.Safe != cr.Safe) {
				t.Fatalf("run %q explain %s: %+v vs %+v", name, q, jr, cr)
			}
		}
		// Pairwise over every node pair of the smaller run exercises the
		// byte-path decoder against the materialized-label path.
		jrun, _ := jsonCat.Run(name)
		q := queries[0]
		nodes := jrun.AllNodes()
		if len(nodes) > 40 {
			nodes = nodes[:40]
		}
		for _, u := range nodes {
			for _, v := range nodes {
				jok, jerr := je.Pairwise(q, u, v)
				cok, cerr := ce.Pairwise(q, u, v)
				if (jerr == nil) != (cerr == nil) || jok != cok {
					t.Fatalf("run %q Pairwise(%s,%d,%d): %v/%v vs %v/%v", name, q, u, v, jok, jerr, cok, cerr)
				}
			}
		}
	}
}
