package provrpq

import (
	"fmt"
	"os"

	"provrpq/internal/derive"
)

// NodeID identifies a node (an atomic module execution) of a Run.
type NodeID int

// Run is a labeled workflow execution: a DAG of atomic module executions
// with tagged data edges. Every node carries its derivation-based
// reachability label, assigned when the node was derived.
type Run struct {
	r    *derive.Run
	spec *Spec
}

// Spec returns the specification the run was derived from.
func (r *Run) Spec() *Spec { return r.spec }

// NumNodes returns the node count.
func (r *Run) NumNodes() int { return r.r.NumNodes() }

// NumEdges returns the edge count (the paper's run-size measure).
func (r *Run) NumEdges() int { return r.r.NumEdges() }

// NodeName returns the display id of a node ("a:1" style).
func (r *Run) NodeName(n NodeID) string { return r.r.Nodes[n].Name }

// NodeModule returns the module name of a node.
func (r *Run) NodeModule(n NodeID) string { return r.r.Spec.Name(r.r.Nodes[n].Module) }

// NodeLabel returns the paper-notation rendering of a node's reachability
// label, e.g. "(1,3)(4,1)".
func (r *Run) NodeLabel(n NodeID) string { return r.r.Label(derive.NodeID(n)).String() }

// NodeByName resolves a display id.
func (r *Run) NodeByName(name string) (NodeID, bool) {
	id, ok := r.r.NodeByName(name)
	return NodeID(id), ok
}

// NodesOfModule returns all executions of the named module.
func (r *Run) NodesOfModule(name string) []NodeID {
	return fromDerive(r.r.NodesOfModule(name))
}

// AllNodes returns every node id.
func (r *Run) AllNodes() []NodeID { return fromDerive(r.r.AllNodes()) }

// Edge describes one tagged data edge.
type Edge struct {
	From, To NodeID
	Tag      string
}

// Edges returns the run's edges.
func (r *Run) Edges() []Edge {
	out := make([]Edge, len(r.r.Edges))
	for i, e := range r.r.Edges {
		out[i] = Edge{From: NodeID(e.From), To: NodeID(e.To), Tag: e.Tag}
	}
	return out
}

// EncodeRun serializes the run to JSON (labels varint-packed and
// base64-wrapped; the specification is not included — keep its JSON
// alongside, or register both in a Catalog).
func EncodeRun(r *Run) ([]byte, error) {
	return derive.EncodeRun(r.r)
}

// EncodeRunColumnar serializes the run to the binary columnar format
// ("RPQC"): packed label column, endpoint columns, name/module/tag
// dictionaries and a trailing checksum. DecodeRun accepts both this and
// the JSON payload (it sniffs the magic); JSON remains the wire format of
// the HTTP API, the columnar format is what the durable store persists.
func EncodeRunColumnar(r *Run) ([]byte, error) {
	return derive.EncodeColumnar(r.r)
}

// DecodeRun deserializes a run against its specification, validating node
// modules, labels and edge tags against the grammar: a payload referencing
// an unknown module, a structurally invalid label, an out-of-range edge or
// a tag outside the specification's alphabet Γ is rejected with a
// positioned error. Both payload formats are accepted — the binary
// columnar format is recognized by its leading magic, anything else is
// decoded as JSON.
func DecodeRun(spec *Spec, data []byte) (*Run, error) {
	dr, err := derive.DecodeRun(spec.s, data)
	if err != nil {
		return nil, err
	}
	return &Run{r: dr, spec: spec}, nil
}

// SaveRun writes the run to a JSON file (labels varint-packed; pair it with
// SaveSpec for the grammar).
func SaveRun(path string, r *Run) error {
	data, err := EncodeRun(r)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadRun reads a run from a JSON file against its specification.
func LoadRun(path string, spec *Spec) (*Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := DecodeRun(spec, data)
	if err != nil {
		return nil, fmt.Errorf("provrpq: %s: %w", path, err)
	}
	return r, nil
}

func fromDerive(ids []derive.NodeID) []NodeID {
	out := make([]NodeID, len(ids))
	for i, id := range ids {
		out[i] = NodeID(id)
	}
	return out
}

func toDerive(ids []NodeID) []derive.NodeID {
	out := make([]derive.NodeID, len(ids))
	for i, id := range ids {
		out[i] = derive.NodeID(id)
	}
	return out
}
