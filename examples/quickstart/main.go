// Quickstart: build a small recursive workflow specification, derive a
// labeled run, and answer regular path queries over its provenance.
package main

import (
	"fmt"
	"log"

	"provrpq"
)

func main() {
	// A pipeline that ingests data, repeats a cleaning step, and archives.
	spec, err := provrpq.NewSpecBuilder().
		Start("Pipeline").
		Chain("Pipeline", "ingest", "Clean", "archive").
		Chain("Clean", "scrub", "Clean", "emit"). // recursive refinement
		Chain("Clean", "scrub", "emit").          // last round
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("specification: size %d, tags %v\n", spec.Size(), spec.Tags())

	// Derive an execution of ~200 edges. Every node is labeled as it is
	// created; the labels are all the engine needs at query time.
	run, err := spec.Derive(provrpq.DeriveOptions{Seed: 42, TargetEdges: 200})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: %d nodes, %d edges\n", run.NumNodes(), run.NumEdges())

	eng := provrpq.NewEngine(run)

	// A safe query: "which node pairs are connected by a path that passes
	// an emit and ends at the archive?"
	q := provrpq.MustParseQuery("_*.emit._*.archive")
	safe, err := eng.IsSafe(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s safe=%v\n", q, safe)

	pairs, err := eng.Evaluate(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d matching pairs; first few:\n", len(pairs))
	for i, p := range pairs {
		if i == 5 {
			break
		}
		fmt.Printf("  %s --[%s]--> %s\n", run.NodeName(p.From), q, run.NodeName(p.To))
	}

	// Constant-time pairwise answers from labels alone.
	ingest := run.NodesOfModule("ingest")[0]
	archive := run.NodesOfModule("archive")[0]
	ok, err := eng.Pairwise(q, ingest, archive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pairwise %s -> %s: %v (labels %s, %s)\n",
		run.NodeName(ingest), run.NodeName(archive), ok,
		run.NodeLabel(ingest), run.NodeLabel(archive))
}
