// Service walkthrough: stand up the rpqd HTTP service in-process, register
// a specification and several runs over the wire, then answer a batch of
// regular path queries across every run with one request — exactly the
// paper's serving scenario: labels are computed once at derivation time,
// queries are answered from stored labels for as long as the runs live.
//
// The same requests work against a standalone daemon:
//
//	go run ./cmd/rpqd -addr :8080
//	curl -s localhost:8080/healthz
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"provrpq"
	"provrpq/internal/server"
)

func main() {
	// 1. The service: a catalog (shared plan cache, per-CPU workers)
	//    behind the HTTP handler, on a random local port.
	cat := provrpq.NewCatalog(provrpq.CatalogOptions{})
	srv := server.New(cat, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- http.Serve(ln, srv.Handler()) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// 2. Register a specification: a pipeline with a recursive cleaning
	//    phase, shipped as JSON.
	spec, err := provrpq.NewSpecBuilder().
		Start("Pipeline").
		Chain("Pipeline", "ingest", "Clean", "archive").
		Chain("Clean", "scrub", "Clean", "emit").
		Chain("Clean", "scrub", "emit").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	specJSON, err := spec.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}
	post(base+"/v1/specs", map[string]any{"name": "pipeline", "spec": json.RawMessage(specJSON)})

	// 3. Derive three runs of it server-side — three executions of one
	//    workflow, each with its own size and shape.
	for i := 1; i <= 3; i++ {
		resp := post(base+"/v1/runs", map[string]any{
			"name": fmt.Sprintf("run-%d", i), "spec": "pipeline",
			"derive": map[string]any{"seed": i, "target_edges": 150 * i},
		})
		fmt.Printf("derived %s: %v nodes, %v edges\n", resp["name"], resp["nodes"], resp["edges"])
	}

	// 4. One batch request: two queries across all three runs. Each query
	//    compiles once; every other (run, query) cell reuses the plan.
	batch := post(base+"/v1/batch", map[string]any{
		"queries":    []string{"_*.emit._*.archive", "Clean+.emit"},
		"count_only": true,
	})
	fmt.Println("\nbatch results (runs × queries):")
	for _, item := range batch["results"].([]any) {
		m := item.(map[string]any)
		fmt.Printf("  %-7s %-22s %v pairs\n", m["run"], m["query"], m["count"])
	}

	// 5. The stats endpoint shows the economics: hits dominate misses
	//    because runs of one specification share compiled plans.
	stats := get(base + "/statsz")
	pc := stats["plan_cache"].(map[string]any)
	fmt.Printf("\nplan cache: %v plans, %v hits, %v misses (specs=%v runs=%v workers=%v)\n",
		pc["plans"], pc["hits"], pc["misses"], stats["specs"], stats["runs"], stats["workers"])

	// 6. Tear down: close the listener and join the serve goroutine so
	//    the walkthrough exits with nothing left running.
	_ = ln.Close()
	<-serveErr
}

func post(url string, body any) map[string]any {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	return decode(resp)
}

func get(url string) map[string]any {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	return decode(resp)
}

func decode(resp *http.Response) map[string]any {
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 400 {
		log.Fatalf("%s: %v", resp.Status, out["error"])
	}
	return out
}
