// Provenance: the paper's introduction scenario. A scientific workflow
// starts from data of type x, repeatedly analyzes it with technique a1 or
// a2, produces a result of type s, and eventually publishes p. The query
//
//	x.(a1|a2)+.s._*.p
//
// finds all publications that resulted from such an analysis chain.
package main

import (
	"fmt"
	"log"

	"provrpq"
)

func main() {
	// The workflow: Source emits x; Analysis applies a1 (and may recurse
	// with the alternative technique a2) before emitting the result s;
	// Publish produces the publication p.
	spec, err := provrpq.NewSpecBuilder().
		Start("Study").
		Prod("Study", []string{"source", "Analysis", "post", "pub"}, []provrpq.BodyEdge{
			{From: 0, To: 1, Tag: "x"},
			{From: 1, To: 2, Tag: "s"},
			{From: 2, To: 3, Tag: "p"},
		}).
		// Repeated analysis: technique a1 hands off to another round...
		Prod("Analysis", []string{"tech1", "Analysis"}, []provrpq.BodyEdge{
			{From: 0, To: 1, Tag: "a1"},
		}).
		// ... or technique a2 finishes the chain.
		Prod("Analysis", []string{"tech2"}, nil).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	run, err := spec.Derive(provrpq.DeriveOptions{Seed: 7, TargetEdges: 400})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived study run: %d nodes, %d edges\n", run.NumNodes(), run.NumEdges())

	eng := provrpq.NewEngine(run)
	q := provrpq.MustParseQuery("x.(a1|a2)+.s._*.p")
	safe, err := eng.IsSafe(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s (safe=%v)\n", q, safe)

	// Which data sources contributed to which publications through a
	// repeated-analysis path?
	sources := run.NodesOfModule("source")
	pubs := run.NodesOfModule("pub")
	pairs, err := eng.AllPairs(q, sources, pubs, provrpq.Auto)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		fmt.Printf("publication %s traces back to %s via repeated analysis\n",
			run.NodeName(p.To), run.NodeName(p.From))
	}
	if len(pairs) == 0 {
		fmt.Println("no publication matched (unexpected for this workflow)")
	}

	// Contrast with plain reachability: every source reaches the
	// publication, but only the regular path query certifies the shape of
	// the derivation in between.
	reach, err := eng.AllPairsReachable(sources, pubs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reachable source→pub pairs: %d; path-shape-certified pairs: %d\n",
		len(reach), len(pairs))
}
