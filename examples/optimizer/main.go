// Optimizer: evaluating general (unsafe) queries by decomposing them into
// maximal safe subqueries (Section IV-B) — with Explain showing the plan
// the engine chose.
package main

import (
	"fmt"
	"log"
	"time"

	"provrpq"
)

func main() {
	// A workflow where the recursive branch behaves differently from the
	// base branch, so queries that count or anchor on the recursive tag
	// "retry" are unsafe.
	spec, err := provrpq.NewSpecBuilder().
		Start("Svc").
		Chain("Svc", "recv", "Handle", "log", "reply").
		Prod("Handle", []string{"try", "Handle"}, []provrpq.BodyEdge{{From: 0, To: 1, Tag: "retry"}}).
		Prod("Handle", []string{"try", "ok"}, []provrpq.BodyEdge{{From: 0, To: 1, Tag: "ok"}}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	run, err := spec.Derive(provrpq.DeriveOptions{Seed: 11, TargetEdges: 1500})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: %d nodes, %d edges\n", run.NumNodes(), run.NumEdges())
	eng := provrpq.NewEngine(run)

	queries := []string{
		"_*.ok._*",          // safe: every Handle eventually succeeds
		"retry._*.ok._*",    // unsafe: anchored on the recursive branch
		"retry.retry._*",    // unsafe: counts retries
		"(_*.ok._*).reply?", // safe subtree + small remainder
	}
	for _, qs := range queries {
		q, err := provrpq.ParseQuery(qs)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := eng.Explain(q)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		pairs, err := eng.Evaluate(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nquery %-22s safe=%-5v matches=%-6d (%.1fms)\n",
			qs, rep.Safe, len(pairs), float64(time.Since(start).Microseconds())/1000)
		switch {
		case rep.Safe:
			fmt.Printf("  single safe scan, strategy %s\n", rep.Strategy)
		case len(rep.SafeSubtrees) > 0:
			fmt.Printf("  label-evaluated safe subtrees: %v\n", rep.SafeSubtrees)
		default:
			fmt.Printf("  evaluated relationally (no safe subtree chosen)\n")
		}
	}
}
