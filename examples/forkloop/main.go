// Forkloop: Kleene-star queries over fork recursion (the paper's Fig. 14
// workload). A fork distributor "a" fans work out into chains a:1 -a->
// a:2 -a-> ...; the query a* asks which distributors lie on a common fork
// chain — the provenance question "was this datum processed inside the
// same fork?".
package main

import (
	"fmt"
	"log"
	"time"

	"provrpq"
)

func main() {
	// Fork: each Fork node spawns a distributor and recurses; ForkLoop
	// keeps starting new chains.
	spec, err := provrpq.NewSpecBuilder().
		Start("Job").
		Prod("Job", []string{"start", "ForkLoop", "collect"}, []provrpq.BodyEdge{
			{From: 0, To: 1, Tag: "go"},
			{From: 1, To: 2, Tag: "done"},
		}).
		Prod("ForkLoop", []string{"Fork", "ForkLoop"}, []provrpq.BodyEdge{{From: 0, To: 1, Tag: "fl"}}).
		Prod("ForkLoop", []string{"Fork", "stop"}, []provrpq.BodyEdge{{From: 0, To: 1, Tag: "fl"}}).
		Prod("Fork", []string{"a", "Fork"}, []provrpq.BodyEdge{{From: 0, To: 1, Tag: "a"}}).
		Prod("Fork", []string{"a"}, nil).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	run, err := spec.Derive(provrpq.DeriveOptions{
		Seed:         3,
		TargetEdges:  4000,
		FavorModules: []string{"Fork", "ForkLoop"},
		FavorCaps:    map[string]int{"Fork": 80},
	})
	if err != nil {
		log.Fatal(err)
	}
	dists := run.NodesOfModule("a")
	fmt.Printf("run: %d edges, %d fork distributors\n", run.NumEdges(), len(dists))

	eng := provrpq.NewEngine(run)
	q := provrpq.MustParseQuery("a*")
	safe, err := eng.IsSafe(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query a* safe=%v\n", safe)

	// Compare the two safe all-pairs strategies and the relational
	// baseline on the same workload.
	for _, st := range []struct {
		name string
		s    provrpq.Strategy
	}{
		{"optRPL (S2)", provrpq.StrategyOptRPL},
		{"RPL (S1)", provrpq.StrategyRPL},
		{"G1 joins", provrpq.StrategyG1},
	} {
		startT := time.Now()
		pairs, err := eng.AllPairs(q, dists, dists, st.s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8d pairs in %8.1fms\n",
			st.name, len(pairs), float64(time.Since(startT).Microseconds())/1000)
	}

	// Pairwise: same chain vs different chains.
	first, err := eng.Pairwise(q, dists[0], dists[1])
	if err != nil {
		log.Fatal(err)
	}
	last, err := eng.Pairwise(q, dists[0], dists[len(dists)-1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s -a*-> %s: %v; %s -a*-> %s: %v\n",
		run.NodeName(dists[0]), run.NodeName(dists[1]), first,
		run.NodeName(dists[0]), run.NodeName(dists[len(dists)-1]), last)
}
