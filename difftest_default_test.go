//go:build !slow

package provrpq

// Differential-harness tier for the regular (and CI -race) test run: small
// runs, few cases, fast under the race detector. The slow tier
// (difftest_slow_test.go, -tags slow) widens everything and enforces the
// ≥ 200-case floor.
const (
	diffRunsPerDataset = 2
	diffQueriesPerRun  = 8
	diffRunEdges       = 120
	diffMinCases       = 0
)
