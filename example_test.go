package provrpq_test

import (
	"fmt"
	"log"

	"provrpq"
)

// Example demonstrates the end-to-end flow: build a specification, derive a
// labeled run, and answer a regular path query.
func Example() {
	spec, err := provrpq.NewSpecBuilder().
		Start("Flow").
		Chain("Flow", "read", "Work", "write").
		Chain("Work", "step", "Work", "emit").
		Chain("Work", "step", "emit").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	run, err := spec.Derive(provrpq.DeriveOptions{Seed: 1, TargetEdges: 40})
	if err != nil {
		log.Fatal(err)
	}
	eng := provrpq.NewEngine(run)
	q := provrpq.MustParseQuery("_*.emit._*.write")
	safe, err := eng.IsSafe(q)
	if err != nil {
		log.Fatal(err)
	}
	read := run.NodesOfModule("read")[0]
	write := run.NodesOfModule("write")[0]
	ok, err := eng.Pairwise(q, read, write)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("safe=%v read->write matches=%v\n", safe, ok)
	// Output: safe=true read->write matches=true
}

// ExampleEngine_AllPairs restricts an all-pairs query to two node lists.
func ExampleEngine_AllPairs() {
	spec, err := provrpq.NewSpecBuilder().
		Start("Flow").
		Chain("Flow", "read", "Work", "write").
		Chain("Work", "step", "Work", "emit").
		Chain("Work", "step", "emit").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	run, err := spec.Derive(provrpq.DeriveOptions{Seed: 2, TargetEdges: 30})
	if err != nil {
		log.Fatal(err)
	}
	eng := provrpq.NewEngine(run)
	pairs, err := eng.AllPairs(
		provrpq.MustParseQuery("_*.emit._*"),
		run.NodesOfModule("step"),
		run.NodesOfModule("write"),
		provrpq.StrategyOptRPL,
	)
	if err != nil {
		log.Fatal(err)
	}
	// Every step precedes some emit, and write is downstream of all emits.
	fmt.Println(len(pairs) == len(run.NodesOfModule("step")))
	// Output: true
}

// ExampleEngine_Explain shows the decomposition plan for an unsafe query.
func ExampleEngine_Explain() {
	spec, err := provrpq.NewSpecBuilder().
		Start("Flow").
		Chain("Flow", "read", "Work", "write").
		Chain("Work", "step", "Work", "emit").
		Chain("Work", "step", "emit").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	run, err := spec.Derive(provrpq.DeriveOptions{Seed: 3, TargetEdges: 30})
	if err != nil {
		log.Fatal(err)
	}
	eng := provrpq.NewEngine(run)
	// "Work" appears only in the recursive production, so anchoring on it
	// is unsafe; the engine decomposes instead.
	rep, err := eng.Explain(provrpq.MustParseQuery("Work.(_*.emit._*)"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Safe)
	// Output: false
}
