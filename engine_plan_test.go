package provrpq_test

// Tests for the plan report surface: Engine.Explain / EvaluatePlanned
// across safe, unsafe and relaxed queries, the empty-run and absent-tag
// edge cases the cost model must stay finite on, and the catalog wiring
// (per-run-generation plan refresh after growth).

import (
	"math"
	"testing"

	"provrpq"
)

// planSpec is the package-doc grammar: S -> x A p over a linear A
// recursion. Tag "p" occurs exactly once per run, making it the natural
// seed for anchored queries.
func planSpec(t testing.TB) *provrpq.Spec {
	t.Helper()
	spec, err := provrpq.NewSpecBuilder().
		Start("S").
		Chain("S", "x", "A", "p").
		Chain("A", "a1", "A", "s").
		Chain("A", "a2", "s").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func finite(c float64) bool { return !math.IsNaN(c) && !math.IsInf(c, 0) && c >= 0 }

func checkCosts(t *testing.T, rep *provrpq.PlanReport) {
	t.Helper()
	for name, c := range map[string]float64{"rpl": rep.CostRPL, "optrpl": rep.CostOptRPL, "seeded": rep.CostSeeded} {
		if !finite(c) {
			t.Errorf("cost %s = %v, want finite and non-negative", name, c)
		}
	}
}

func TestExplainSafeQuery(t *testing.T) {
	spec := planSpec(t)
	run, err := spec.Derive(provrpq.DeriveOptions{Seed: 2, TargetEdges: 200})
	if err != nil {
		t.Fatal(err)
	}
	eng := provrpq.NewEngine(run)
	q := provrpq.MustParseQuery("_*.p._*")
	rep, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe || rep.Decomposed {
		t.Fatalf("expected a safe single-scan report, got %+v", rep)
	}
	switch rep.Strategy {
	case provrpq.StrategyRPL, provrpq.StrategyOptRPL, provrpq.StrategySeeded:
	default:
		t.Fatalf("safe query planned strategy %v, want a concrete scan strategy", rep.Strategy)
	}
	if rep.SeedTag != "p" || rep.SeedCount < 1 {
		t.Errorf("seed = %q (%d occurrences), want the rare required tag \"p\"", rep.SeedTag, rep.SeedCount)
	}
	checkCosts(t, rep)

	// EvaluatePlanned reports the same plan and answers identically to
	// Evaluate and to the forced strategy.
	pairs, rep2, err := eng.EvaluatePlanned(q)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Strategy != rep.Strategy {
		t.Errorf("EvaluatePlanned strategy %v != Explain strategy %v", rep2.Strategy, rep.Strategy)
	}
	direct, err := eng.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !samePairs(pairs, direct) {
		t.Errorf("EvaluatePlanned (%d pairs) and Evaluate (%d pairs) disagree", len(pairs), len(direct))
	}
	forced, err := eng.AllPairs(q, run.AllNodes(), run.AllNodes(), rep.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	if !samePairs(pairs, forced) {
		t.Errorf("planned strategy %v disagrees with its forced run", rep.Strategy)
	}
}

func TestExplainUnsafeQuery(t *testing.T) {
	spec := forkSpec(t)
	run := forkRun(t, spec, 2, 150)
	eng := provrpq.NewEngine(run)
	// a+ is genuinely unsafe on the fork grammar: iterations of M spell a^j
	// with differing j.
	rep, err := eng.Explain(provrpq.MustParseQuery("a+"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe || !rep.Decomposed {
		t.Fatalf("expected an unsafe decomposition report, got %+v", rep)
	}
	if rep.Strategy != provrpq.Auto {
		t.Errorf("unsafe strategy = %v, want Auto (decomposition)", rep.Strategy)
	}
	if rep.RelationalNodes == 0 {
		t.Error("decomposition reports zero relational nodes")
	}
	checkCosts(t, rep) // zeroed, but must not be NaN
}

// TestExplainRelaxedQuery: a strict-unsafe, relaxed-safe query reports the
// decomposition before RelaxSafety and a single safe scan after — the
// upgrade flows through to the planner.
func TestExplainRelaxedQuery(t *testing.T) {
	spec := forkSpec(t)
	run := forkRun(t, spec, 3, 120)
	eng := provrpq.NewEngineOpts(run, provrpq.EngineOptions{PlanCache: provrpq.NewPlanCache(0)})
	q := provrpq.MustParseQuery("a*.b")

	before, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if before.Safe || !before.Decomposed {
		t.Fatalf("a*.b should be strictly unsafe before relaxation, got %+v", before)
	}
	if ok, err := eng.IsSafeRelaxed(q); err != nil || !ok {
		t.Fatalf("IsSafeRelaxed(a*.b) = %v, %v; want true", ok, err)
	}
	after, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Safe || after.Decomposed {
		t.Fatalf("a*.b should report a safe single scan after relaxation, got %+v", after)
	}
	if after.SeedTag != "b" {
		t.Errorf("relaxed a*.b seed = %q, want \"b\" (the required terminal tag)", after.SeedTag)
	}
	checkCosts(t, after)
	// The relaxed safe scan must answer exactly like the relational baseline.
	g1, err := eng.AllPairs(q, run.AllNodes(), run.AllNodes(), provrpq.StrategyG1)
	if err != nil {
		t.Fatal(err)
	}
	planned, _, err := eng.EvaluatePlanned(q)
	if err != nil {
		t.Fatal(err)
	}
	if !samePairs(planned, g1) {
		t.Errorf("relaxed planned evaluation (%d pairs) disagrees with G1 (%d pairs)", len(planned), len(g1))
	}
}

// TestExplainEmptyRun: a run with zero nodes must plan and evaluate
// without dividing by zero.
func TestExplainEmptyRun(t *testing.T) {
	spec := planSpec(t)
	run, err := provrpq.DecodeRun(spec, []byte(`{"nodes":[],"edges":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	eng := provrpq.NewEngine(run)
	for _, qs := range []string{"_*.p._*", "_*", "a1.(_*.s._*)"} {
		rep, err := eng.Explain(provrpq.MustParseQuery(qs))
		if err != nil {
			t.Fatalf("Explain(%s) on empty run: %v", qs, err)
		}
		checkCosts(t, rep)
		pairs, rep2, err := eng.EvaluatePlanned(provrpq.MustParseQuery(qs))
		if err != nil {
			t.Fatalf("EvaluatePlanned(%s) on empty run: %v", qs, err)
		}
		if len(pairs) != 0 {
			t.Errorf("empty run matched %d pairs for %s", len(pairs), qs)
		}
		checkCosts(t, rep2)
	}
}

// TestExplainAbsentTag: a query anchored on a tag with zero occurrences
// (here a tag outside Γ entirely) plans finitely and evaluates to nothing.
func TestExplainAbsentTag(t *testing.T) {
	spec := planSpec(t)
	run, err := spec.Derive(provrpq.DeriveOptions{Seed: 4, TargetEdges: 100})
	if err != nil {
		t.Fatal(err)
	}
	eng := provrpq.NewEngine(run)
	q := provrpq.MustParseQuery("_*.ghost._*")
	rep, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Fatalf("_*.ghost._* should be (vacuously) safe, got %+v", rep)
	}
	if rep.SeedTag != "ghost" || rep.SeedCount != 0 {
		t.Errorf("seed = %q (%d), want ghost with zero occurrences", rep.SeedTag, rep.SeedCount)
	}
	checkCosts(t, rep)
	pairs, err := eng.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Errorf("absent tag matched %d pairs", len(pairs))
	}
}

// TestCatalogExplainTracksGrowth: Catalog.Explain serves plan reports, and
// a growth batch — which swaps the run's engine — refreshes the planner's
// statistics, so the seed occurrence count follows the run's generation.
func TestCatalogExplainTracksGrowth(t *testing.T) {
	cat := provrpq.NewCatalog(provrpq.CatalogOptions{})
	spec := planSpec(t)
	if err := cat.RegisterSpec("wf", spec); err != nil {
		t.Fatal(err)
	}
	run, err := spec.Derive(provrpq.DeriveOptions{Seed: 6, TargetEdges: 120})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRun("r1", "wf", run); err != nil {
		t.Fatal(err)
	}
	q := provrpq.MustParseQuery("_*.p._*")
	before, err := cat.Explain("r1", q)
	if err != nil {
		t.Fatal(err)
	}
	if before.SeedTag != "p" {
		t.Fatalf("seed = %q, want p", before.SeedTag)
	}
	// Append one more p-tagged edge between existing nodes: the new engine's
	// index must count it.
	batch, err := provrpq.DecodeBatch(spec, []byte(`{"edges":[{"From":0,"To":1,"Tag":"p"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.AppendEdges("r1", batch); err != nil {
		t.Fatal(err)
	}
	after, err := cat.Explain("r1", q)
	if err != nil {
		t.Fatal(err)
	}
	if after.SeedCount != before.SeedCount+1 {
		t.Errorf("seed count after growth = %d, want %d (statistics must refresh with the run generation)",
			after.SeedCount, before.SeedCount+1)
	}
}
