package provrpq

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// breakStore makes every future persist into the store fail by replacing
// its payload directories with plain files (CreateTemp inside a file
// always errors, even for root, unlike permission tricks).
func breakStore(t *testing.T, dir string) {
	t.Helper()
	for _, sub := range []string{"specs", "runs"} {
		p := filepath.Join(dir, sub)
		if err := os.RemoveAll(p); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// durableFixture builds a durable catalog in a temp store with one spec
// and two derived runs, returning the store directory for reopening.
func durableFixture(t *testing.T) (string, *Catalog, []string) {
	t.Helper()
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(CatalogOptions{Store: st})
	if err := cat.RegisterSpec("intro", introSpec(t)); err != nil {
		t.Fatal(err)
	}
	runs := []string{"r1", "r2"}
	for i, name := range runs {
		if _, err := cat.DeriveRun(name, "intro", DeriveOptions{Seed: int64(i + 1), TargetEdges: 200}); err != nil {
			t.Fatal(err)
		}
	}
	return dir, cat, runs
}

// TestStoreRoundTrip saves a spec and derived runs through a durable
// catalog, reloads them into a fresh catalog (simulating a restart), and
// asserts node labels and Evaluate pair sets are identical to the
// pre-restart engines — no re-derivation, byte-identical answers.
func TestStoreRoundTrip(t *testing.T) {
	dir, cat, runs := durableFixture(t)
	queries := []*Query{
		MustParseQuery("_*.s._*.publish"),
		MustParseQuery("ingest._*"),
		MustParseQuery("_*.a1._*"), // unsafe: decomposition path
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat2, err := NewCatalogFromStore(st2, CatalogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := cat2.SpecNames(); len(got) != 1 || got[0] != "intro" {
		t.Fatalf("reloaded SpecNames = %v", got)
	}
	if got := cat2.RunNames(); len(got) != len(runs) {
		t.Fatalf("reloaded RunNames = %v", got)
	}

	for _, name := range runs {
		before, _ := cat.Run(name)
		after, ok := cat2.Run(name)
		if !ok {
			t.Fatalf("run %q missing after reload", name)
		}
		if before.NumNodes() != after.NumNodes() || before.NumEdges() != after.NumEdges() {
			t.Fatalf("run %q resized: (%d,%d) -> (%d,%d)", name,
				before.NumNodes(), before.NumEdges(), after.NumNodes(), after.NumEdges())
		}
		for _, id := range before.AllNodes() {
			if before.NodeLabel(id) != after.NodeLabel(id) || before.NodeName(id) != after.NodeName(id) {
				t.Fatalf("run %q node %d changed across the restart", name, id)
			}
		}
		e1, err := cat.Engine(name)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := cat2.Engine(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			p1, err := e1.Evaluate(q)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := e2.Evaluate(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(p1) != len(p2) {
				t.Fatalf("run %q query %s: %d pairs before, %d after", name, q, len(p1), len(p2))
			}
			for i := range p1 {
				if p1[i] != p2[i] {
					t.Fatalf("run %q query %s pair %d: %v before, %v after", name, q, i, p1[i], p2[i])
				}
			}
		}
	}

	// Reloaded runs of one spec still share compiled plans: each query
	// above compiled once for the first run and hit for the second.
	stats := cat2.Stats()
	if stats.PlanCache.Hits <= 0 || stats.PlanCache.Hits < stats.PlanCache.Misses {
		t.Errorf("reloaded catalog should share plans across its runs: %+v", stats.PlanCache)
	}
}

// TestDurableCatalogPersistsEverything checks all three mutating paths
// write through: RegisterSpec, DeriveRun and AddRun (upload).
func TestDurableCatalogPersistsEverything(t *testing.T) {
	dir, cat, _ := durableFixture(t)

	// Upload path: encode a run and add it back under a new name.
	spec, _ := cat.Spec("intro")
	native, err := spec.Derive(DeriveOptions{Seed: 9, TargetEdges: 80})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeRun(native)
	if err != nil {
		t.Fatal(err)
	}
	uploaded, err := DecodeRun(spec, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRun("uploaded", "intro", uploaded); err != nil {
		t.Fatal(err)
	}

	st := cat.Store()
	if st == nil || st.Dir() != dir {
		t.Fatalf("Store() = %v", st)
	}
	if !st.HasSpec("intro") {
		t.Error("spec not on disk")
	}
	for _, name := range []string{"r1", "r2", "uploaded"} {
		if !st.HasRun(name) {
			t.Errorf("run %q not on disk", name)
		}
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Specs) != 1 || len(snap.Runs) != 3 || snap.Runs["uploaded"] != "intro" {
		t.Fatalf("snapshot = %+v", snap)
	}

	// And the uploaded run survives a reload.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat2, err := NewCatalogFromStore(st2, CatalogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cat2.Run("uploaded"); !ok {
		t.Error("uploaded run lost across restart")
	}
}

// TestStoreFailureLeavesNameFree forces a persist failure (store
// directory removed out from under the catalog) and checks nothing was
// registered — the entry only becomes visible once its bytes are on
// disk — with an ErrStoreFailed-wrapped error, leaving the name free for
// a retry.
func TestStoreFailureLeavesNameFree(t *testing.T) {
	dir, cat, _ := durableFixture(t)
	// Replace the runs directory with a plain file: every subsequent
	// persist must fail (CreateTemp cannot create inside a file), and
	// this works even when the tests run as root (unlike chmod).
	breakStore(t, dir)

	if _, err := cat.DeriveRun("r3", "intro", DeriveOptions{Seed: 5, TargetEdges: 50}); err == nil {
		t.Fatal("DeriveRun should fail when the store is broken")
	} else if !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("error %v does not wrap ErrStoreFailed", err)
	}
	// The failed persist left the name free: the run is not in the
	// catalog, and no concurrent reader could ever have observed it.
	if _, ok := cat.Run("r3"); ok {
		t.Error("failed registration left the run in the catalog")
	}
	for _, n := range cat.RunNames() {
		if n == "r3" {
			t.Error("failed registration is enumerable via RunNames")
		}
	}
	if _, err := cat.Engine("r3"); err == nil {
		t.Error("failed registration left an engine resolvable")
	}

	if err := cat.RegisterSpec("intro2", introSpec(t)); err == nil {
		t.Fatal("RegisterSpec should fail when the store is broken")
	} else if !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("error %v does not wrap ErrStoreFailed", err)
	}
	if _, ok := cat.Spec("intro2"); ok {
		t.Error("failed registration left the spec in the catalog")
	}
}

// TestStaleStoreAttachRefusesClobber attaches an already-populated store
// to a fresh empty catalog via CatalogOptions.Store (instead of
// rebuilding with NewCatalogFromStore) and checks that registrations
// under names the store already holds are refused: overwriting
// specs/intro.json while runs/r1.json is still bound to the old payload
// would make the directory unrestorable at the next boot.
func TestStaleStoreAttachRefusesClobber(t *testing.T) {
	dir, _, runs := durableFixture(t)
	specPath := filepath.Join(dir, "specs", "intro.json")
	specBefore, err := os.ReadFile(specPath)
	if err != nil {
		t.Fatal(err)
	}

	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewCatalog(CatalogOptions{Store: st})
	if err := fresh.RegisterSpec("intro", introSpec(t)); !errors.Is(err, ErrAlreadyRegistered) {
		t.Fatalf("RegisterSpec over a stale store entry: err=%v, want ErrAlreadyRegistered", err)
	}
	// New names still work (first boot over an empty-but-for-stale-names
	// store must not be bricked) …
	if err := fresh.RegisterSpec("other", introSpec(t)); err != nil {
		t.Fatal(err)
	}
	// … but an on-disk run name is just as protected as a spec name.
	if _, err := fresh.DeriveRun(runs[0], "other", DeriveOptions{Seed: 9, TargetEdges: 50}); !errors.Is(err, ErrAlreadyRegistered) {
		t.Fatalf("DeriveRun over a stale store entry: err=%v, want ErrAlreadyRegistered", err)
	}

	specAfter, err := os.ReadFile(specPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(specBefore) != string(specAfter) {
		t.Fatal("refused registration still rewrote the on-disk specification")
	}
	// The directory must remain fully restorable, old and new entries alike.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewCatalogFromStore(st2, CatalogOptions{})
	if err != nil {
		t.Fatalf("store no longer restorable: %v", err)
	}
	if got := restored.SpecNames(); len(got) != 2 {
		t.Fatalf("restored specs %v, want [intro other]", got)
	}
	if got := restored.RunNames(); len(got) != len(runs) {
		t.Fatalf("restored runs %v, want %v", got, runs)
	}
}
