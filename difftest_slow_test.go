//go:build slow

package provrpq

// Differential-harness tier for `go test -tags slow`: larger runs, enough
// run×query cases to enforce the acceptance floor.
const (
	diffRunsPerDataset = 4
	diffQueriesPerRun  = 18
	diffRunEdges       = 250
	diffMinCases       = 200
)
