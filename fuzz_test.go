package provrpq

import (
	"bytes"
	"encoding/json"
	"testing"
)

// Native fuzz targets for the parsing and wire-decoding surfaces — the
// paths that consume bytes an attacker (or a corrupted store) controls.
// CI runs each for a short smoke window (-fuzz=... -fuzztime=20s); the
// committed seeds double as regression corpora under plain `go test`.

// fuzzSpec is the package-doc grammar: a linear recursion with two base
// tags, small enough that the fuzzer's mutations regularly produce
// in-alphabet payloads.
func fuzzSpec(tb testing.TB) *Spec {
	tb.Helper()
	s, err := NewSpecBuilder().
		Start("S").
		Chain("S", "x", "A", "p").
		Chain("A", "a1", "A", "s").
		Chain("A", "a2", "s").
		Build()
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func fuzzRunJSON(tb testing.TB) []byte {
	tb.Helper()
	run, err := fuzzSpec(tb).Derive(DeriveOptions{Seed: 5, TargetEdges: 40})
	if err != nil {
		tb.Fatal(err)
	}
	data, err := EncodeRun(run)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzParseQuery: parsing arbitrary input never panics, and a successful
// parse reaches a rendering fixed point — String() reparses to an
// expression that renders identically (so canonical forms are stable and
// queries survive any number of wire round trips).
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		"a", "_", "ε", "<eps>", "",
		"_*.a._*", "x.(a1|a2)+.s._*.p", "(a|b)+.c?",
		"a.b*|c", "a**", "((a))", "a|", "((", "a .\tb", "-x:y_9",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := ParseQuery(s)
		if err != nil {
			return
		}
		s1 := q.String()
		q2, err := ParseQuery(s1)
		if err != nil {
			t.Fatalf("canonical rendering %q of %q does not reparse: %v", s1, s, err)
		}
		if s2 := q2.String(); s2 != s1 {
			t.Fatalf("rendering is not a fixed point: %q -> %q -> %q", s, s1, s2)
		}
	})
}

// FuzzDecodeRun: arbitrary bytes never panic the run decoder, and any
// payload it accepts re-encodes canonically — encode → decode → encode is
// byte-identical, so stored runs are stable across rewrite cycles.
func FuzzDecodeRun(f *testing.F) {
	valid := fuzzRunJSON(f)
	f.Add(valid)
	f.Add([]byte(`{"nodes":[],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"x:1","module":"x","label":""}],"edges":[]}`))
	f.Add([]byte(`{"edges":[{"From":0,"To":0,"Tag":"s"}]}`))
	f.Add([]byte(`{`))
	f.Add(bytes.Replace(valid, []byte(`"s"`), []byte(`"bogus"`), 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec := fuzzSpec(t)
		run, err := DecodeRun(spec, data)
		if err != nil {
			return
		}
		b1, err := EncodeRun(run)
		if err != nil {
			t.Fatalf("accepted payload does not re-encode: %v", err)
		}
		run2, err := DecodeRun(spec, b1)
		if err != nil {
			t.Fatalf("re-encoded payload does not decode: %v", err)
		}
		b2, err := EncodeRun(run2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("encode/decode/encode not byte-identical:\n%s\nvs\n%s", b1, b2)
		}
	})
}

// FuzzDecodeBatch: the growth-batch decoder (strict: unknown fields and
// trailing data are errors, because accepted batches replay from the
// append log forever) never panics, and accepted batches re-encode
// canonically.
func FuzzDecodeBatch(f *testing.F) {
	// A nodes-carrying seed reuses a real run's node wire shape.
	var rj struct {
		Nodes []json.RawMessage `json:"nodes"`
		Edges []json.RawMessage `json:"edges"`
	}
	if err := json.Unmarshal(fuzzRunJSON(f), &rj); err != nil {
		f.Fatal(err)
	}
	withNodes, err := json.Marshal(map[string]any{"nodes": rj.Nodes[:1], "edges": []any{}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(withNodes)
	f.Add([]byte(`{"edges":[{"From":0,"To":1,"Tag":"s"}]}`))
	f.Add([]byte(`{"nodes":[],"edges":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"edges":[]}{"edges":[]}`)) // trailing data must error
	f.Add([]byte(`{"typo":[]}`))              // unknown field must error
	f.Fuzz(func(t *testing.T, data []byte) {
		spec := fuzzSpec(t)
		b, err := DecodeBatch(spec, data)
		if err != nil {
			return
		}
		b1, err := EncodeBatch(b)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		b2dec, err := DecodeBatch(spec, b1)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		b2, err := EncodeBatch(b2dec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("encode/decode/encode not byte-identical:\n%s\nvs\n%s", b1, b2)
		}
	})
}
