package provrpq_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"provrpq"
	"provrpq/internal/automata"
	"provrpq/internal/baseline"
	"provrpq/internal/bench"
	"provrpq/internal/core"
	"provrpq/internal/derive"
	"provrpq/internal/index"
	"provrpq/internal/label"
	"provrpq/internal/plan"
	"provrpq/internal/reach"
	"provrpq/internal/workload"
)

// Figure benchmarks: each regenerates one figure of the paper's evaluation
// on a reduced (Quick) workload so `go test -bench=.` stays tractable. Run
// `go run ./cmd/rpqbench -all` for the full-size sweeps recorded in
// EXPERIMENTS.md.

func benchFigure(b *testing.B, id string) {
	b.Helper()
	cfg := bench.Config{W: io.Discard, Quick: true, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13aOverheadGrammarSize(b *testing.B) { benchFigure(b, "13a") }
func BenchmarkFig13bOverheadQuerySize(b *testing.B)   { benchFigure(b, "13b") }
func BenchmarkFig13cPairwiseRunSize(b *testing.B)     { benchFigure(b, "13c") }
func BenchmarkFig13dPairwiseQuerySize(b *testing.B)   { benchFigure(b, "13d") }
func BenchmarkFig13eAllPairsIFQBioAID(b *testing.B)   { benchFigure(b, "13e") }
func BenchmarkFig13fAllPairsIFQQBLast(b *testing.B)   { benchFigure(b, "13f") }
func BenchmarkFig13gKleeneBioAID(b *testing.B)        { benchFigure(b, "13g") }
func BenchmarkFig13hKleeneQBLast(b *testing.B)        { benchFigure(b, "13h") }
func BenchmarkFig15aGeneralBioAID(b *testing.B)       { benchFigure(b, "15a") }
func BenchmarkFig15bGeneralQBLast(b *testing.B)       { benchFigure(b, "15b") }

// Micro-benchmarks of the core primitives.

func bioRun(b *testing.B, edges int) (*workload.Dataset, *derive.Run) {
	b.Helper()
	d := workload.BioAID()
	run, err := derive.Derive(d.Spec, derive.Options{Seed: 1, TargetEdges: edges})
	if err != nil {
		b.Fatal(err)
	}
	return d, run
}

// BenchmarkPairwiseSafeDecode measures the constant-time pairwise decode
// (Theorem 1) on random node pairs of a 2K-edge BioAID run.
func BenchmarkPairwiseSafeDecode(b *testing.B) {
	d, run := bioRun(b, 2000)
	r := rand.New(rand.NewSource(2))
	env, err := core.Compile(d.Spec, automata.MustParse(d.SafeIFQ(r, 3, true)))
	if err != nil {
		b.Fatal(err)
	}
	if !env.Safe() {
		b.Fatal("query should be safe")
	}
	n := run.NumNodes()
	pairs := make([][2]label.Label, 4096)
	for i := range pairs {
		pairs[i] = [2]label.Label{
			run.Label(derive.NodeID(r.Intn(n))),
			run.Label(derive.NodeID(r.Intn(n))),
		}
	}
	dec := env.NewDecoder() // hold one decoder: no pool traffic in the timed loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		dec.PairwiseUnchecked(p[0], p[1])
	}
}

// BenchmarkCoarseReachabilityDecode measures the plain-reachability decode
// of the prior-work labeling (reconstruction of [4]).
func BenchmarkCoarseReachabilityDecode(b *testing.B) {
	_, run := bioRun(b, 2000)
	r := rand.New(rand.NewSource(3))
	n := run.NumNodes()
	pairs := make([][2]label.Label, 4096)
	for i := range pairs {
		pairs[i] = [2]label.Label{
			run.Label(derive.NodeID(r.Intn(n))),
			run.Label(derive.NodeID(r.Intn(n))),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		reach.Pairwise(run.Spec, p[0], p[1])
	}
}

// BenchmarkSafetyCheck measures Compile (minimal DFA + λ + safety verdict)
// on BioAID — the per-query overhead of Fig. 13a/b.
func BenchmarkSafetyCheck(b *testing.B) {
	d := workload.BioAID()
	r := rand.New(rand.NewSource(4))
	queries := make([]*automata.Node, 32)
	for i := range queries {
		queries[i] = automata.MustParse(d.SafeIFQ(r, 3, true))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(d.Spec, queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllPairsReachable measures the output-linear all-pairs
// reachability (Lemma 4.1) over all nodes of a 2K-edge run.
func BenchmarkAllPairsReachable(b *testing.B) {
	_, run := bioRun(b, 2000)
	labels := make([]label.Label, run.NumNodes())
	for i := range labels {
		labels[i] = run.Label(derive.NodeID(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		reach.AllPairs(run.Spec, labels, labels, func(int, int) { count++ })
	}
}

// BenchmarkLabelEncodeDecode measures the compact varint label codec.
func BenchmarkLabelEncodeDecode(b *testing.B) {
	_, run := bioRun(b, 2000)
	var labels []label.Label
	for i := 0; i < run.NumNodes(); i += 7 {
		labels = append(labels, run.Label(derive.NodeID(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := labels[i%len(labels)].Encode()
		if _, err := label.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDerive2K measures labeled-run generation itself.
func BenchmarkDerive2K(b *testing.B) {
	d := workload.BioAID()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := derive.Derive(d.Spec, derive.Options{Seed: int64(i), TargetEdges: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEvaluateSafe measures the public API end to end on a safe
// query over a mid-size run.
func BenchmarkEngineEvaluateSafe(b *testing.B) {
	spec, err := provrpq.NewSpecBuilder().
		Start("S").
		Chain("S", "in", "Loop", "out").
		Chain("Loop", "work", "Loop", "emit").
		Chain("Loop", "work", "emit").
		Build()
	if err != nil {
		b.Fatal(err)
	}
	run, err := spec.Derive(provrpq.DeriveOptions{Seed: 1, TargetEdges: 500})
	if err != nil {
		b.Fatal(err)
	}
	q := provrpq.MustParseQuery("_*.emit._*.out")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := provrpq.NewEngine(run)
		if _, err := eng.Evaluate(q); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel-scaling benches for the sharded all-pairs scans: the same
// 16K-edge scan at 1, 2 and 4 workers (workers=1 is the serial scan). The
// result sets are asserted identical across worker counts.

// forkLoopSpec mirrors the datasets' fork workload through the public API:
// an outer loop FL starts fresh fork chains F (capped at derive time), and
// both FL bodies route the fork's output over an "fl" edge so every FL
// execution spells a^j fl… and the Kleene star a* stays safe.
func forkLoopSpec(b testing.TB) *provrpq.Spec {
	b.Helper()
	spec, err := provrpq.NewSpecBuilder().
		Start("S").
		Prod("S", []string{"in", "FL", "out"}, []provrpq.BodyEdge{
			{From: 0, To: 1, Tag: "s"}, {From: 1, To: 2, Tag: "t"},
		}).
		Prod("FL", []string{"F", "FL"}, []provrpq.BodyEdge{{From: 0, To: 1, Tag: "fl"}}).
		Prod("FL", []string{"F", "fstop"}, []provrpq.BodyEdge{{From: 0, To: 1, Tag: "fl"}}).
		Prod("F", []string{"a", "F"}, []provrpq.BodyEdge{{From: 0, To: 1, Tag: "a"}}).
		Prod("F", []string{"a"}, nil).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

// BenchmarkParallelAllPairs16K measures Engine.AllPairs over fork
// distributor nodes of a 16K-edge run: the RPL nested-loop scan is pure
// decode work, OptRPL is reach-filter plus decode. The lists are capped at
// 2048 nodes to keep one iteration in the seconds range (the run itself
// stays at 16K edges). Wall-clock speedup needs real cores: on a
// single-CPU host the worker counts time-share and only overhead shows.
func BenchmarkParallelAllPairs16K(b *testing.B) {
	spec := forkLoopSpec(b)
	run, err := spec.Derive(provrpq.DeriveOptions{
		Seed: 1, TargetEdges: 16000,
		FavorModules: []string{"F", "FL"},
		FavorCaps:    map[string]int{"F": 150},
	})
	if err != nil {
		b.Fatal(err)
	}
	anodes := run.NodesOfModule("a")
	if len(anodes) > 2048 {
		anodes = anodes[:2048]
	}
	q := provrpq.MustParseQuery("a*")
	for _, strat := range []struct {
		name string
		s    provrpq.Strategy
	}{{"RPL", provrpq.StrategyRPL}, {"OptRPL", provrpq.StrategyOptRPL}} {
		serialLen := -1
		for _, w := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", strat.name, w), func(b *testing.B) {
				eng := provrpq.NewEngineOpts(run, provrpq.EngineOptions{Workers: w})
				if _, err := eng.IsSafe(q); err != nil { // warm the plan
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pairs, err := eng.AllPairs(q, anodes, anodes, strat.s)
					if err != nil {
						b.Fatal(err)
					}
					if serialLen < 0 {
						serialLen = len(pairs)
					} else if len(pairs) != serialLen {
						b.Fatalf("workers=%d found %d pairs, serial found %d", w, len(pairs), serialLen)
					}
				}
			})
		}
	}
}

// BenchmarkParallelEvaluate16K measures the general evaluator (the engine's
// Evaluate path) on a safe low-selectivity IFQ over every node pair of a
// 16K-edge BioAID run, with the safe-subtree scan sharded across workers.
func BenchmarkParallelEvaluate16K(b *testing.B) {
	d, run := bioRun(b, 16000)
	ix := index.Build(run)
	r := rand.New(rand.NewSource(6))
	q := automata.MustParse(d.SafeIFQ(r, 3, true))
	serialLen := -1
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			gen := core.NewGeneralOpts(run, ix, core.CostBased, core.GeneralOptions{Workers: w})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rel, _, err := gen.Eval(q)
				if err != nil {
					b.Fatal(err)
				}
				if serialLen < 0 {
					serialLen = rel.Len()
				} else if rel.Len() != serialLen {
					b.Fatalf("workers=%d found %d pairs, serial found %d", w, rel.Len(), serialLen)
				}
			}
		})
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationRangeCache isolates the chain-range memo: pairwise a*
// decodes across deep fork chains, with and without the cache.
func BenchmarkAblationRangeCache(b *testing.B) {
	d := workload.BioAID()
	run, err := derive.Derive(d.Spec, derive.Options{
		Seed: 1, TargetEdges: 4000,
		FavorModules: d.ForkFavor, FavorCaps: d.ForkCaps,
	})
	if err != nil {
		b.Fatal(err)
	}
	anodes := run.NodesOfModule("a")
	r := rand.New(rand.NewSource(5))
	pairs := make([][2]label.Label, 4096)
	for i := range pairs {
		pairs[i] = [2]label.Label{
			run.Label(anodes[r.Intn(len(anodes))]),
			run.Label(anodes[r.Intn(len(anodes))]),
		}
	}
	for _, disable := range []bool{false, true} {
		name := "cached"
		if disable {
			name = "uncached"
		}
		b.Run(name, func(b *testing.B) {
			env, err := core.Compile(d.Spec, automata.MustParse("a*"))
			if err != nil {
				b.Fatal(err)
			}
			env.DisableRangeCache = disable
			dec := env.NewDecoder() // created after the flag; no pool traffic while timing
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				dec.PairwiseUnchecked(p[0], p[1])
			}
		})
	}
}

// BenchmarkAblationClosure compares the semi-naive closure our remainder
// evaluation uses against the naive self-join fixpoint of the baseline.
func BenchmarkAblationClosure(b *testing.B) {
	d := workload.BioAID()
	run, err := derive.Derive(d.Spec, derive.Options{
		Seed: 1, TargetEdges: 2000,
		FavorModules: d.ForkFavor, FavorCaps: d.ForkCaps,
	})
	if err != nil {
		b.Fatal(err)
	}
	ix := index.Build(run)
	base := baseline.NewRel()
	for _, p := range ix.Pairs("a") {
		base.Add(p.From, p.To)
	}
	b.Run("semi-naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base.Closure()
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base.ClosureNaive()
		}
	})
}

// Append-path benchmarks: the acceptance claim is that appending k ≪ n
// edges to a 16K-node run does work proportional to the affected frontier
// (the k edges' endpoints), not the O(n) of re-deriving the whole run.
// Compare AppendEdges64 (the in-place ingest), Grow64 (the catalog's
// copy-on-write versioning on top of it) and Redecode (the only
// pre-append way to reflect new edges: full re-derivation of the final
// graph). The first sits orders of magnitude under the last.

// benchAppendBatch builds one k-edge growth batch between random existing
// nodes.
func benchAppendBatch(rng *rand.Rand, run *derive.Run, tags []string, k int) derive.Batch {
	edges := make([]derive.Edge, k)
	for j := range edges {
		edges[j] = derive.Edge{
			From: derive.NodeID(rng.Intn(run.NumNodes())),
			To:   derive.NodeID(rng.Intn(run.NumNodes())),
			Tag:  tags[rng.Intn(len(tags))],
		}
	}
	return derive.Batch{Edges: edges}
}

// BenchmarkAppendEdges16K: one in-place 64-edge append per op, run
// growing as a live ingest would.
func BenchmarkAppendEdges16K(b *testing.B) {
	d, run := bioRun(b, 16000)
	tags := d.Spec.Tags()
	rng := rand.New(rand.NewSource(1))
	const k = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := derive.AppendEdges(run, benchAppendBatch(rng, run, tags, k)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(k, "edges/op")
}

// BenchmarkAppendGrow16K: the versioned (copy-on-write) append the
// catalog swap uses — clone headers, then frontier-proportional work.
func BenchmarkAppendGrow16K(b *testing.B) {
	d, run := bioRun(b, 16000)
	tags := d.Spec.Tags()
	batch := benchAppendBatch(rand.New(rand.NewSource(1)), run, tags, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := run.Grow(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendRedecode16K: the O(n) alternative — re-derive (decode,
// validate, re-index) all n nodes to pick up the new edges.
func BenchmarkAppendRedecode16K(b *testing.B) {
	d, run := bioRun(b, 16000)
	data, err := derive.EncodeRun(run)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := derive.DecodeRun(d.Spec, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanAuto is the planner acceptance benchmark: the same
// all-pairs scan (l1 = l2 = all nodes) under each forced strategy and
// under Auto (the planner's choice), on a highly selective anchored IFQ
// and a dense per-iteration IFQ over the BioAID and QBLast workloads. Auto
// should sit within a few percent of the best forced column on both
// workloads, with the seeded strategy far ahead of optRPL on the
// selective one.
func BenchmarkPlanAuto(b *testing.B) {
	for _, d := range []*workload.Dataset{workload.BioAID(), workload.QBLast()} {
		run, err := derive.Derive(d.Spec, derive.Options{Seed: 1, TargetEdges: 2000})
		if err != nil {
			b.Fatal(err)
		}
		ix := index.Build(run)
		pl := plan.New(ix)
		pl.ReachDensity() // one-time statistics sample, outside every timing
		nodes := run.AllNodes()
		labels := make([]label.Label, len(nodes))
		for i, id := range nodes {
			labels[i] = run.Label(id)
		}
		r := rand.New(rand.NewSource(7))
		workloads := []struct{ name, q string }{
			{"selective", d.SafeIFQ(r, 3, false)},
			{"dense", d.SafeIFQ(r, 3, true)},
		}
		for _, wl := range workloads {
			env, err := core.Compile(d.Spec, automata.MustParse(wl.q))
			if err != nil {
				b.Fatal(err)
			}
			if !env.Safe() {
				b.Fatalf("IFQ %s unexpectedly unsafe", wl.q)
			}
			runSeeded := func(dec plan.Decision) error {
				return plan.AllPairsSeeded(env, ix, dec, nodes, nodes, func(i, j int) {})
			}
			strategies := []struct {
				name string
				fn   func() error
			}{
				{"RPL", func() error {
					return env.AllPairsSafe(labels, labels, core.RPL, func(i, j int) {})
				}},
				{"OptRPL", func() error {
					return env.AllPairsSafe(labels, labels, core.OptRPL, func(i, j int) {})
				}},
				{"Seeded", func() error {
					return runSeeded(pl.Plan(env, len(nodes), len(nodes)))
				}},
				{"Auto", func() error {
					dec := pl.Plan(env, len(nodes), len(nodes))
					switch dec.Strategy {
					case plan.RPL:
						return env.AllPairsSafe(labels, labels, core.RPL, func(i, j int) {})
					case plan.Seeded:
						return runSeeded(dec)
					default:
						return env.AllPairsSafe(labels, labels, core.OptRPL, func(i, j int) {})
					}
				}},
			}
			for _, st := range strategies {
				b.Run(d.Name+"/"+wl.name+"/"+st.name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if err := st.fn(); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}
