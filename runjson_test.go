package provrpq

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunJSONRoundTrip1K encodes a ~1K-edge derived run and verifies the
// decoded run is equal: node names, modules, labels, edges, and the
// results of a query evaluated on both.
func TestRunJSONRoundTrip1K(t *testing.T) {
	spec := introSpec(t)
	run, err := spec.Derive(DeriveOptions{Seed: 11, TargetEdges: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if run.NumEdges() < 900 {
		t.Fatalf("derived only %d edges; want ~1K", run.NumEdges())
	}
	data, err := EncodeRun(run)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRun(spec, data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != run.NumNodes() || back.NumEdges() != run.NumEdges() {
		t.Fatalf("sizes changed: (%d, %d) -> (%d, %d)",
			run.NumNodes(), run.NumEdges(), back.NumNodes(), back.NumEdges())
	}
	for _, id := range run.AllNodes() {
		if run.NodeName(id) != back.NodeName(id) ||
			run.NodeModule(id) != back.NodeModule(id) ||
			run.NodeLabel(id) != back.NodeLabel(id) {
			t.Fatalf("node %d changed in round trip", id)
		}
	}
	re, be := run.Edges(), back.Edges()
	for i := range re {
		if re[i] != be[i] {
			t.Fatalf("edge %d changed: %v -> %v", i, re[i], be[i])
		}
	}
	q := MustParseQuery("_*.s._*.publish")
	p1, err := NewEngine(run).Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewEngine(back).Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p2) {
		t.Fatalf("query results changed: %d vs %d pairs", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("pair %d changed: %v vs %v", i, p1[i], p2[i])
		}
	}
}

// TestDecodeRunRejects covers the decode error paths, each with a
// positioned message: unknown module, corrupt base64 label, out-of-range
// edge, and an edge tag outside the specification's alphabet Γ.
func TestDecodeRunRejects(t *testing.T) {
	spec := introSpec(t)
	run, err := spec.Derive(DeriveOptions{Seed: 3, TargetEdges: 50})
	if err != nil {
		t.Fatal(err)
	}
	good, err := EncodeRun(run)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate the good payload through a generic JSON map so the cases stay
	// in sync with the real wire format.
	mutate := func(f func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(good, &m); err != nil {
			t.Fatal(err)
		}
		f(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	node := func(m map[string]any, i int) map[string]any {
		return m["nodes"].([]any)[i].(map[string]any)
	}
	edge := func(m map[string]any, i int) map[string]any {
		return m["edges"].([]any)[i].(map[string]any)
	}

	cases := []struct {
		name    string
		payload []byte
		wantSub string
	}{
		{
			"unknown module",
			mutate(func(m map[string]any) { node(m, 0)["module"] = "nonexistent" }),
			"unknown module",
		},
		{
			"corrupt base64 label",
			mutate(func(m map[string]any) { node(m, 0)["label"] = "!!!not-base64!!!" }),
			"bad label encoding",
		},
		{
			"out-of-range edge",
			mutate(func(m map[string]any) { edge(m, 0)["To"] = float64(run.NumNodes() + 7) }),
			"out of range",
		},
		{
			"tag outside alphabet",
			mutate(func(m map[string]any) { edge(m, 0)["Tag"] = "smuggled" }),
			"not in the specification's alphabet",
		},
		{
			// Regression: duplicate names used to be accepted, the last
			// node silently shadowing the rest in NodeByName.
			"duplicate node name",
			mutate(func(m map[string]any) { node(m, 1)["name"] = node(m, 0)["name"] }),
			"duplicate node name",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeRun(spec, tc.payload)
			if err == nil {
				t.Fatalf("decode should reject %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// The unmutated payload still decodes (the mutator didn't break it).
	if _, err := DecodeRun(spec, good); err != nil {
		t.Fatalf("good payload rejected: %v", err)
	}
}
