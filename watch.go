package provrpq

import (
	"fmt"
	"sort"

	"provrpq/internal/derive"
)

// Standing queries: the paper's dynamic-label property (Section II-B) makes
// append deltas for safe queries append-only. A safe query is answered from
// the two endpoint labels alone, and labels are assigned at node-creation
// time and never recomputed — so growing a run cannot change any answer
// over pre-existing node pairs, and every *new* match must involve at least
// one node the batch created. Watching a safe query therefore costs one
// snapshot at registration plus, per append, a delta over only the pairs
// that involve a batch node: O(batch × run) pairwise label decodes, never a
// re-evaluation of the whole run.
//
// Unsafe queries have no such property: their evaluation consults the
// grown adjacency, so an edges-only batch (which creates no nodes) can
// create new matches between two old nodes. ErrUnsafeWatch refuses them.

// ErrUnsafeWatch marks an attempt to register a standing query that is not
// safe (match with errors.Is): only safe queries have append-only deltas.
var ErrUnsafeWatch = fmt.Errorf("provrpq: standing queries require a safe query (unsafe answers can change on old pairs as edges arrive)")

// AppendEvent describes one committed growth batch, as delivered to
// SubscribeAppends subscribers. Run is the immutable published version the
// batch produced: evaluating against it is correct forever, regardless of
// later growth.
type AppendEvent struct {
	// RunName names the grown run; Version is its post-append version
	// (AppendResult.Version).
	RunName string
	Version int
	// Run is the published grown version (AppendResult.Run).
	Run *Run
	// FirstNewNode is the pre-append node count: the batch's nodes are
	// exactly ids [FirstNewNode, FirstNewNode+NewNodes) of Run.
	FirstNewNode NodeID
	// NewNodes and NewEdges count the batch's contents.
	NewNodes, NewEdges int
}

// SubscribeAppends registers fn to be called after every committed append
// on any run of the catalog, and returns its unsubscribe function. Calls
// are made synchronously on the appending goroutine while the run's growth
// lock is held, so per-run events arrive in version order with no gaps;
// fn must therefore be fast and must never block on the append path —
// queue the event and evaluate elsewhere (the server's SSE watchers keep a
// bounded per-watcher queue and drop the watcher on overflow).
func (c *Catalog) SubscribeAppends(fn func(AppendEvent)) (cancel func()) {
	c.subsMu.Lock()
	id := c.nextSubID
	c.nextSubID++
	if c.subs == nil {
		c.subs = make(map[int]func(AppendEvent))
	}
	c.subs[id] = fn
	c.subsMu.Unlock()
	return func() {
		c.subsMu.Lock()
		delete(c.subs, id)
		c.subsMu.Unlock()
	}
}

// notifyAppend delivers one append event to every subscriber. Called with
// the run's growth lock held (ordering); the subscriber list is copied
// under subsMu so callbacks run outside it.
func (c *Catalog) notifyAppend(ev AppendEvent) {
	c.subsMu.Lock()
	if len(c.subs) == 0 {
		c.subsMu.Unlock()
		return
	}
	fns := make([]func(AppendEvent), 0, len(c.subs))
	for _, fn := range c.subs {
		fns = append(fns, fn)
	}
	c.subsMu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// DeltaPairs evaluates the standing-query delta of one append event: the
// safe-query matches of ev.Run that involve at least one batch node. The
// union of a full evaluation at version V and the deltas of every event
// after V equals a full evaluation at the latest version — the invariant
// the differential tests pin down. An edges-only batch yields no delta.
//
// The scan is pure label decoding — 2·newNodes·runNodes constant-time
// pairwise checks against the event's immutable run version — so it needs
// no engine, no index, and no locks beyond the plan cache's.
func (c *Catalog) DeltaPairs(ev AppendEvent, q *Query) ([]Pair, error) {
	if ev.Run == nil || q == nil {
		return nil, fmt.Errorf("provrpq: DeltaPairs: nil run or query")
	}
	env, err := c.plans.c.Get(ev.Run.r.Spec, q.node)
	if err != nil {
		return nil, err
	}
	if !env.Safe() {
		return nil, fmt.Errorf("%w: %s", ErrUnsafeWatch, q)
	}
	r := ev.Run.r
	n := r.NumNodes()
	lo := int(ev.FirstNewNode)
	if lo < 0 || lo > n {
		return nil, fmt.Errorf("provrpq: DeltaPairs: first new node %d outside run of %d nodes", lo, n)
	}
	var out []Pair
	for u := lo; u < n; u++ {
		ub := r.LabelBytes(derive.NodeID(u))
		for v := 0; v < n; v++ {
			vb := r.LabelBytes(derive.NodeID(v))
			// u → v covers every pair whose source is new; old → u covers
			// the rest (new → new sources are already in the u loop).
			if env.PairwiseBytesUnchecked(ub, vb) {
				out = append(out, Pair{NodeID(u), NodeID(v)})
			}
			if v < lo && env.PairwiseBytesUnchecked(vb, ub) {
				out = append(out, Pair{NodeID(v), NodeID(u)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out, nil
}

// RunAt returns the named run's current published version and its version
// number from one atomic registry read. A standing-query registration uses
// it to snapshot a consistent (run, version) pair: the full result at that
// version plus the deltas of every AppendEvent with a higher version equals
// the full result at any later version.
func (c *Catalog) RunAt(name string) (*Run, int, bool) {
	return c.reg.RunWithGeneration(name)
}

// IsSafeQuery reports whether q is safe for the given specification —
// answerable from endpoint labels alone, and so watchable as a standing
// query. It compiles (or cache-hits) the plan without evaluating.
func (c *Catalog) IsSafeQuery(spec *Spec, q *Query) (bool, error) {
	if spec == nil || spec.s == nil || q == nil {
		return false, fmt.Errorf("provrpq: IsSafeQuery: nil specification or query")
	}
	env, err := c.plans.c.Get(spec.s, q.node)
	if err != nil {
		return false, err
	}
	return env.Safe(), nil
}
