// Package provrpq answers regular path queries over workflow provenance
// graphs, reproducing Huang, Bao, Davidson, Milo and Yuan, "Answering
// Regular Path Queries on Workflow Provenance", ICDE 2015.
//
// A workflow specification is a context-free graph grammar whose language is
// the set of possible executions (runs). Runs derived by this package carry
// query-agnostic, derivation-based reachability labels. A regular path
// query that is *safe* for the specification is answered pairwise in
// constant time from two labels alone — no run traversal — and all-pairs
// queries run in time linear in the input lists and output size. Unsafe
// queries are decomposed into maximal safe subqueries composed with a small
// relational remainder.
//
// Basic use:
//
//	spec, _ := provrpq.NewSpecBuilder().
//	    Start("S").
//	    Chain("S", "x", "A", "p").
//	    Chain("A", "a1", "A", "s").
//	    Chain("A", "a2", "s").
//	    Build()
//	run, _ := spec.Derive(provrpq.DeriveOptions{Seed: 1, TargetEdges: 1000})
//	eng := provrpq.NewEngine(run)
//	q, _ := provrpq.ParseQuery("x.(a1|a2)+.s._*.p")
//	pairs, _ := eng.Evaluate(q)
//
// Query syntax: tags are identifiers; '.' concatenates (juxtaposition also
// works), '|' alternates, postfix '*', '+', '?' repeat, '_' matches any
// single tag, 'ε' (or "<eps>") the empty path, parentheses group.
//
// # Concurrency
//
// Engine, Spec, Run and Query are safe for concurrent use: any number of
// goroutines may share one Engine (or several) and call any mix of its
// methods. Compiled query plans depend only on (specification, query), so
// they live in a plan cache shared across engines — process-wide by
// default, or an explicit NewPlanCache passed through EngineOptions —
// with concurrent compiles of the same query deduplicated. All-pairs scans
// (AllPairs, AllPairsReachable, Evaluate) shard their per-pair work across
// a bounded worker pool sized by EngineOptions.Workers (default: one
// worker per CPU); per-shard results are merged in shard order, so a
// parallel scan returns exactly the pair set a serial one would, in an
// order that is deterministic for a given worker count.
package provrpq

import (
	"fmt"
	"os"

	"provrpq/internal/derive"
	"provrpq/internal/wf"
)

// Spec is a validated workflow specification (a context-free graph grammar,
// Definition 3 of the paper).
type Spec struct {
	s *wf.Spec
}

// SpecBuilder assembles a specification module by module. Modules are
// registered on first mention; the left-hand side of a production is
// composite, all other first mentions are atomic.
type SpecBuilder struct {
	b *wf.Builder
}

// NewSpecBuilder returns an empty builder.
func NewSpecBuilder() *SpecBuilder { return &SpecBuilder{b: wf.NewBuilder()} }

// Start names the start module.
func (sb *SpecBuilder) Start(name string) *SpecBuilder {
	sb.b.Start(name)
	return sb
}

// Atomic declares atomic modules explicitly (optional; first mentions in
// production bodies default to atomic).
func (sb *SpecBuilder) Atomic(names ...string) *SpecBuilder {
	sb.b.Atomic(names...)
	return sb
}

// BodyEdge is a tagged edge between body positions of a production.
type BodyEdge struct {
	From, To int
	Tag      string
}

// Prod appends a production lhs -> body. nodes lists body modules by name
// (the list position is the index edges refer to).
func (sb *SpecBuilder) Prod(lhs string, nodes []string, edges []BodyEdge) *SpecBuilder {
	wes := make([]wf.BodyEdge, len(edges))
	for i, e := range edges {
		wes[i] = wf.BodyEdge{From: e.From, To: e.To, Tag: e.Tag}
	}
	sb.b.Prod(lhs, nodes, wes)
	return sb
}

// Chain appends a production whose body is a linear chain, each edge tagged
// with the name of the module at its head.
func (sb *SpecBuilder) Chain(lhs string, nodes ...string) *SpecBuilder {
	sb.b.Chain(lhs, nodes...)
	return sb
}

// Build validates the grammar: bodies must be acyclic with a unique source
// and sink and every node on a source-sink path; every composite module
// must derive some finite execution; recursion must be strictly linear
// (all cycles of the production graph vertex-disjoint, Definition 6).
func (sb *SpecBuilder) Build() (*Spec, error) {
	s, err := sb.b.Build()
	if err != nil {
		return nil, err
	}
	return &Spec{s: s}, nil
}

// Size returns the paper's grammar-size measure: Σ over productions of
// (1 + body length).
func (s *Spec) Size() int { return s.s.Size() }

// Tags returns the edge-tag alphabet Γ of the specification.
func (s *Spec) Tags() []string { return s.s.Tags() }

// MarshalJSON serializes the grammar.
func (s *Spec) MarshalJSON() ([]byte, error) { return s.s.MarshalJSON() }

// UnmarshalJSON deserializes and re-validates a grammar.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var ws wf.Spec
	if err := ws.UnmarshalJSON(data); err != nil {
		return err
	}
	s.s = &ws
	return nil
}

// SaveSpec writes the specification to a JSON file.
func SaveSpec(path string, s *Spec) error {
	data, err := s.MarshalJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadSpec reads a specification from a JSON file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := &Spec{}
	if err := s.UnmarshalJSON(data); err != nil {
		return nil, fmt.Errorf("provrpq: %s: %w", path, err)
	}
	return s, nil
}

// DeriveOptions control run generation (Definition 4 executed with a
// random or budgeted production policy).
type DeriveOptions struct {
	// Seed seeds the production policy.
	Seed int64
	// TargetEdges approximately sizes the run (the paper's 1K-16K edge
	// workloads); 0 derives a minimal-recursion run.
	TargetEdges int
	// MaxRecursionDepth caps any single recursion chain.
	MaxRecursionDepth int
	// FavorModule extends only the named module's recursion (the Fig. 13g
	// fork workload), winding down all others immediately.
	FavorModule string
	// FavorModules extends several modules' recursions; FavorCaps
	// optionally bounds the per-chain iteration count of a favored module.
	FavorModules []string
	FavorCaps    map[string]int
}

// Derive generates a labeled run of the specification.
func (s *Spec) Derive(opts DeriveOptions) (*Run, error) {
	r, err := derive.Derive(s.s, derive.Options{
		Seed:              opts.Seed,
		TargetEdges:       opts.TargetEdges,
		MaxRecursionDepth: opts.MaxRecursionDepth,
		FavorModule:       opts.FavorModule,
		FavorModules:      opts.FavorModules,
		FavorCaps:         opts.FavorCaps,
	})
	if err != nil {
		return nil, err
	}
	return &Run{r: r, spec: s}, nil
}
