// Package parallel provides the bounded worker pool the engine's all-pairs
// scans shard over: contiguous index chunks fanned out across goroutines,
// with per-shard result buffers merged back in shard order so a parallel
// scan emits exactly the same deterministic sequence a serial one would.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a configured worker count: n > 0 is taken as-is, any
// other value means "one worker per available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Chunks splits the index range [0, n) into at most max contiguous [lo, hi)
// ranges of near-equal size (the first n%max chunks are one element larger).
// It returns nil when n == 0.
func Chunks(n, max int) [][2]int {
	if n <= 0 || max <= 0 {
		return nil
	}
	k := max
	if n < k {
		k = n
	}
	out := make([][2]int, 0, k)
	size, rem := n/k, n%k
	lo := 0
	for s := 0; s < k; s++ {
		hi := lo + size
		if s < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// Do splits [0, n) into at most workers chunks and runs fn(shard, lo, hi)
// for each chunk on its own goroutine, waiting for all of them. With one
// chunk it runs fn inline. fn must not touch another shard's state.
func Do(n, workers int, fn func(shard, lo, hi int)) {
	chunks := Chunks(n, Workers(workers))
	if len(chunks) == 0 {
		return
	}
	if len(chunks) == 1 {
		fn(0, chunks[0][0], chunks[0][1])
		return
	}
	var wg sync.WaitGroup
	for s, c := range chunks {
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, c[0], c[1])
	}
	wg.Wait()
}

// Gather shards [0, n) across workers, buffers each shard's emitted values
// privately, and replays the buffers to consume in shard order once every
// shard has finished. produce runs concurrently (its emit callback is
// shard-local and needs no locking); consume runs on the calling goroutine,
// so a parallel scan over contiguous shards preserves the serial emit order.
func Gather[T any](n, workers int, produce func(shard, lo, hi int, emit func(T)), consume func(T)) {
	chunks := Chunks(n, Workers(workers))
	if len(chunks) == 0 {
		return
	}
	if len(chunks) == 1 {
		produce(0, chunks[0][0], chunks[0][1], consume)
		return
	}
	bufs := make([][]T, len(chunks))
	var wg sync.WaitGroup
	for s, c := range chunks {
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			produce(s, lo, hi, func(v T) { bufs[s] = append(bufs[s], v) })
		}(s, c[0], c[1])
	}
	wg.Wait()
	for _, buf := range bufs {
		for _, v := range buf {
			consume(v)
		}
	}
}
