package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}

func TestChunksCoverRange(t *testing.T) {
	for n := 0; n <= 37; n++ {
		for max := 1; max <= 9; max++ {
			chunks := Chunks(n, max)
			if n == 0 {
				if chunks != nil {
					t.Fatalf("Chunks(0,%d) = %v, want nil", max, chunks)
				}
				continue
			}
			if len(chunks) > max {
				t.Fatalf("Chunks(%d,%d): %d chunks", n, max, len(chunks))
			}
			next := 0
			for _, c := range chunks {
				if c[0] != next || c[1] <= c[0] {
					t.Fatalf("Chunks(%d,%d) = %v: bad chunk %v", n, max, chunks, c)
				}
				next = c[1]
			}
			if next != n {
				t.Fatalf("Chunks(%d,%d) = %v: covers [0,%d)", n, max, chunks, next)
			}
		}
	}
}

func TestDoVisitsEveryIndex(t *testing.T) {
	const n = 1000
	var hits [n]int32
	Do(n, 7, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

// TestGatherPreservesOrder: values emitted per shard in index order must be
// consumed in global index order, regardless of worker interleaving.
func TestGatherPreservesOrder(t *testing.T) {
	const n = 2000
	for _, workers := range []int{1, 2, 3, 8, 64} {
		var got []int
		Gather(n, workers, func(_, lo, hi int, emit func(int)) {
			for i := lo; i < hi; i++ {
				if i%3 != 0 { // filter: emits need not be dense
					emit(i)
				}
			}
		}, func(v int) { got = append(got, v) })
		prev := -1
		for _, v := range got {
			if v <= prev {
				t.Fatalf("workers=%d: out of order value %d after %d", workers, v, prev)
			}
			prev = v
		}
		if len(got) != n-(n+2)/3 {
			t.Fatalf("workers=%d: %d values", workers, len(got))
		}
	}
}
