//go:build !(linux && (amd64 || arm64))

package store

// syncfsSupported is false where the raw syncfs syscall isn't wired up:
// every staged file fsyncs its own contents at write time and the
// group-commit leader only coalesces the directory and manifest fsyncs.
const syncfsSupported = false

// doSyncfs is never called when syncfsSupported is false; the variable
// exists so groupcommit.go compiles identically on every platform.
var doSyncfs = func(string) error { return nil }
