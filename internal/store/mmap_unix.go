//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapRO maps size bytes of f read-only. The mapping is deliberately never
// unmapped: the caller hands the bytes to zero-copy decoders whose runs
// alias them for the rest of the process lifetime, and an unmap under a
// live view would be a use-after-free. Superseded payload files are
// replaced by rename (writeAtomic) and unlinked, so a stale mapping pins
// only its own dead inode's pages, which the kernel reclaims under memory
// pressure (the mapping is file-backed and clean).
//
//provrpq:trusted
func mmapRO(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
}
