//go:build linux && arm64

package store

// sysSyncfs is the syncfs(2) syscall number on linux/arm64.
const sysSyncfs = 267
