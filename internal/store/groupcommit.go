package store

import (
	"fmt"
	"runtime"
	"sync"

	"provrpq/internal/metrics"
)

// Group commit: coalescing manifest writes across concurrent appends.
//
// The manifest is the store's single commit point, so every append must end
// with a manifest write — but nothing forces each append to pay its *own*
// manifest fsync. AppendRun stages its batch payload outside the store lock
// (payload fsyncs to different runs overlap freely), then funnels its
// one-line manifest bump through a leader/follower commit queue: whichever
// appender acquires leaderMu first drains every queued bump and commits them
// all in a single manifest write, and the followers just wait for their op's
// done channel. While the leader's fsync is in flight new appends pile up in
// the queue, so under N concurrent writers the steady state is one manifest
// fsync per *group*, not per batch.
//
// Staging defers the payload's durability into the group too: stage only
// writes the file in place, and the leader — immediately before the
// manifest write — flushes every member with one syncfs of the appends
// directory's filesystem, which writes back their contents and commits
// the journal carrying their directory entries. On a device that
// serializes cache flushes this is what moves the ceiling: the serial
// protocol pays four flushes per batch (payload file + dir, manifest
// file + dir) while a group of C appends pays three *shared* ones
// (syncfs, manifest file, manifest dir) — 3/C flushes per batch. Off
// Linux there is no syncfs, so stage keeps the per-file content fsync
// and the leader pins the entries with one appends-dir fsync (1 + 3/C).
//
// Crash semantics are unchanged from the serial protocol: each batch file is
// durable — content fsynced, rename pinned — before the manifest write that
// counts it, and the group's manifest write is one atomic temp-file + fsync
// + rename, so a crash anywhere leaves every in-flight batch either fully
// committed or an invisible orphan at a dense sequence number the next
// append overwrites — never a torn subset of one batch. A failed group
// commit fails every member identically: none of their counts were
// published, and an *ambiguous* failure (the staged-dir fsync or the
// post-rename manifest dir fsync) wedges the store for all of them, exactly
// as it did per-append.

var (
	mGroupCommits = metrics.Default().Counter("provrpq_store_group_commits_total",
		"Coalesced manifest commits: one per leader-written manifest, covering one or more appends.")
	mGroupedAppends = metrics.Default().Counter("provrpq_store_group_committed_appends_total",
		"Append commits that went through the group-commit queue (ratio to group_commits_total is the coalescing factor).")
	mAppendBytes = metrics.Default().Counter("provrpq_store_append_bytes_total",
		"Bytes of growth-batch payload durably committed via AppendRun.")
)

// commitOp is one queued manifest mutation. The leader that commits it sets
// err before closing done; the waiter reads err only after <-done, so the
// close is the publication point. dir, when non-empty, is a directory
// holding files this op staged with deferred durability (stage); the
// leader flushes it — once per distinct directory across the whole
// group — before the manifest write that publishes the op.
type commitOp struct {
	apply func(*manifest)
	dir   string
	err   error
	done  chan struct{}
}

// appendLock returns the named run's append mutex, creating it on first
// use (entries are never removed — a mutex is a few words and run names are
// never recycled within one store's lifetime). Holding it serializes the
// whole stage-then-commit window of one run's append, which is what keeps
// sequence numbers dense without any staged-counter bookkeeping: while it
// is held, the manifest's committed count for that run IS the next free
// slot. PutRun and CompactRun take it too, so neither can rewrite a run's
// history while one of its batches is mid-flight.
//
//provrpq:lockrank appendMu 12
func (s *Store) appendLock(name string) *sync.Mutex {
	mu, _ := s.appendMus.LoadOrStore(name, &sync.Mutex{})
	return mu.(*sync.Mutex)
}

// SetSerialCommit switches AppendRun between the coalescing group-commit
// path (the default, false) and the legacy serial path that performs the
// whole stage+commit under the store mutex with one manifest write per
// batch. The serial path exists as an honest baseline for the ingest
// benchmark and as a bisection tool; both paths provide identical crash
// semantics.
func (s *Store) SetSerialCommit(on bool) { s.serial.Store(on) }

// appendRunSerial is the pre-group-commit append protocol: everything under
// s.mu, one manifest write (and its two fsyncs) per batch. Callers hold the
// run's append lock.
func (s *Store) appendRunSerial(name string, data []byte) (seq int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged {
		return 0, fmt.Errorf("store: run %q: %w", name, ErrWedged)
	}
	m, err := s.readManifest()
	if err != nil {
		return 0, err
	}
	if _, ok := m.Runs[name]; !ok {
		return 0, fmt.Errorf("store: run %q: %w", name, ErrNotFound)
	}
	seq = m.Appends[name]
	if err := s.noteAmbiguous(writeAtomic(s.appendPath(name, seq), data)); err != nil {
		return 0, err
	}
	if m.Appends == nil {
		m.Appends = map[string]int{}
	}
	m.Appends[name] = seq + 1
	if err := s.noteAmbiguous(s.writeManifest(m)); err != nil {
		return 0, err
	}
	mWrites.With("append").Inc()
	mAppendBytes.Add(uint64(len(data)))
	return seq, nil
}

// stage writes one batch payload outside the store mutex, directly at
// its final path (writeStaged) with all durability deferred to the
// group-commit leader. The file is invisible until a manifest write
// counts it, and the leader flushes the group's staged data and entries
// (one syncfs, where supported) immediately before that manifest write
// (see commitBatch), so N concurrent stages share one flush instead of
// paying one each.
// Until then both the contents and the entry are allowed to be volatile:
// a crash can only lose files the manifest never counted. Off Linux there
// is no syncfs, so stage keeps the per-file content fsync and defers only
// the entry pin.
func (s *Store) stage(path string, data []byte) error {
	return writeStaged(path, data, !syncfsSupported)
}

// groupCommit queues one manifest mutation and returns once a leader —
// possibly this caller — has durably committed it, batched with every other
// mutation queued in the meantime. dir, when non-empty, names the directory
// of this op's staged renames, which the leader pins (FsyncDir) before the
// group's manifest write. The returned error is the group's verdict: nil
// means the mutation — staged payload included — is on disk.
func (s *Store) groupCommit(dir string, apply func(*manifest)) error {
	op := &commitOp{apply: apply, dir: dir, done: make(chan struct{})}
	s.qmu.Lock()
	s.queue = append(s.queue, op)
	s.qmu.Unlock()

	s.leaderMu.Lock()
	select {
	case <-op.done:
		// A previous leader drained the queue past this op while we waited
		// for the leadership lock; its commit already covered us.
		s.leaderMu.Unlock()
		return op.err
	default:
	}
	// Let the arrival burst quiesce before draining: each yield lets
	// appenders that are mid-stage reach the queue, and every op that
	// makes it in rides this group's flushes instead of founding the next
	// group — directly raising the coalescing factor. The loop stops the
	// first time a yield adds nothing, so a lone appender drains
	// immediately (the yield finds no one else staging) and pays no added
	// latency; the iteration cap keeps a sustained arrival stream from
	// starving the leader. Progress is never wasted while waiting: a
	// growing queue means other appenders just finished real work.
	s.qmu.Lock()
	n := len(s.queue)
	s.qmu.Unlock()
	for i := 0; i < 16; i++ {
		runtime.Gosched()
		s.qmu.Lock()
		grown := len(s.queue)
		s.qmu.Unlock()
		if grown == n {
			break
		}
		n = grown
	}
	s.qmu.Lock()
	batch := s.queue
	s.queue = nil
	s.qmu.Unlock()
	s.commitBatch(batch)
	s.leaderMu.Unlock()
	return op.err
}

// commitBatch makes every member's staged payload durable (one flush per
// distinct directory, not per op), then applies every queued mutation to
// one freshly-read manifest and publishes them with a single atomic
// manifest write. All members share the outcome: on success all their
// batches became visible together; on failure none did (their staged files
// stay invisible orphans), and an ambiguous failure wedges the store for
// everyone. A staging flush failing here is ambiguous too: the members'
// files are already in place and their durability is unknowable, so the
// store wedges rather than commit on top of an unknowable disk state.
func (s *Store) commitBatch(batch []*commitOp) {
	// Phase 1, outside the store mutex: make the staged payloads durable.
	// This touches no store state — the members' renames all completed
	// before they enqueued — so appenders keep reserving sequence numbers
	// and staging the *next* group while this group's flushes are in
	// flight. Holding s.mu here would serialize that CPU work behind the
	// device and cap the coalescing factor.
	s.mu.Lock()
	wedged := s.wedged
	s.mu.Unlock()
	var err error
	if wedged {
		err = ErrWedged
	} else {
		err = s.syncStagedDirs(batch)
	}

	// Phase 2, under the store mutex: publish the counts with one atomic
	// manifest write (or latch the wedge phase 1 earned).
	s.mu.Lock()
	if err != nil {
		s.noteAmbiguous(err)
	} else if s.wedged {
		err = ErrWedged
	} else {
		var m manifest
		m, err = s.readManifest()
		if err == nil {
			for _, op := range batch {
				op.apply(&m)
			}
			err = s.noteAmbiguous(s.writeManifest(m))
		}
	}
	s.mu.Unlock()
	if err == nil {
		mGroupCommits.Inc()
		mGroupedAppends.Add(uint64(len(batch)))
	}
	for _, op := range batch {
		op.err = err
		close(op.done)
	}
}

// syncStagedDirs makes the group's staged payloads durable: where syncfs
// is available, one filesystem flush covers every member at once — it
// writes back the deferred file contents and commits the journal, which
// carries the directory entries, so no separate FsyncDir is needed.
// Elsewhere stage already fsynced each file's contents and this pins the
// entries with one FsyncDir per distinct op directory. Deduplication is
// what makes deferral pay — every append payload lives in the same
// appends directory, so a group of N appends costs one flush here instead
// of N at stage time. A failure anywhere is ambiguous: the files are
// already in place and their durability is unknowable.
func (s *Store) syncStagedDirs(batch []*commitOp) error {
	done := ""
	for _, op := range batch {
		if op.dir == "" || op.dir == done {
			continue
		}
		if syncfsSupported {
			if err := doSyncfs(op.dir); err != nil {
				return fmt.Errorf("store: flushing staged data: %w: %w", errAmbiguousCommit, err)
			}
		} else if err := FsyncDir(op.dir); err != nil {
			return fmt.Errorf("store: pinning staged files: %w: %w", errAmbiguousCommit, err)
		}
		done = op.dir
	}
	return nil
}

// CommitStats reports the process-wide group-commit counters: coalesced
// manifest commits and the append operations they covered. ops/groups is
// the coalescing factor the ingest benchmark tracks (1.0 = no coalescing).
func CommitStats() (groups, ops uint64) {
	return mGroupCommits.Value(), mGroupedAppends.Value()
}
