// Package store implements the disk-backed catalog store underneath the
// root package's durable Catalog: named specification and run payloads,
// plus a manifest binding each run to its specification.
//
// On-disk layout under one root directory:
//
//	<dir>/specs/<name>.json        one specification payload per file
//	<dir>/runs/<name>.json         one run payload per file
//	<dir>/appends/<name>.<i>.json  the i-th committed growth batch of a run
//	<dir>/manifest.json            {"runs": {"<run>": "<spec>"},
//	                                "appends": {"<run>": <batch count>}}
//
// Payloads are opaque bytes and self-describing — the root layer stores
// specifications as JSON and run/batch payloads in either JSON or the
// binary columnar format, and decoders sniff the content. The ".json"
// filename extension is the store's path contract (one fixed path per
// logical entry), not a format claim: keeping a single path per entry is
// what makes every crash window of the temp-file + rename + manifest
// protocol leave either the old or the new complete payload, never an
// ambiguous pair.
//
// Names are opaque non-empty strings; they are path-escaped on the way to
// a filename (so "a/b" and "a b" are valid catalog names) and unescaped
// when listing. Every directly-visible write is atomic: the payload goes
// to a temp file in the destination directory, is fsynced, and is renamed
// over the final path, followed by an fsync of the directory itself, so a
// crash mid-write never leaves a torn file and a completed write —
// including the rename that publishes it — survives power loss. The one
// exception is group-committed append staging (writeStaged): a staged
// batch file is invisible until the manifest counts it, so it is written
// in place and made durable by the commit leader just before the manifest
// write that publishes it.
//
// The manifest is the commit point for runs and for growth batches: PutRun
// writes the run file first and the manifest entry second, AppendRun
// writes the batch file first and bumps the manifest's batch count second,
// and readers only surface what the manifest names, so a crash between the
// two writes leaves an invisible orphan file rather than a half-registered
// run or a torn growth step. The store works at the []byte level — the
// root package owns the spec/run/batch codecs — and is safe for concurrent
// use.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"maps"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"provrpq/internal/metrics"
)

// Store-layer instruments on the process-wide registry: commit counts by
// kind, the fsync count behind them (the store's dominant latency), and
// the wedge latch — the one state a dashboard must alarm on, because a
// wedged store refuses every mutation until reopened.
var (
	mWrites = metrics.Default().CounterVec("provrpq_store_writes_total",
		"Durable store commits, by kind (spec, run, append, compact, rewrite, manifest).", "kind")
	mFsyncs = metrics.Default().Counter("provrpq_store_fsyncs_total",
		"File and directory fsyncs performed by the store's atomic-write protocol.")
	mWedged = metrics.Default().Gauge("provrpq_store_wedged",
		"1 after a store in this process wedged on an ambiguous commit failure (mutations refused until reopen), else 0.")
)

// ErrNotFound marks a lookup of a name the store has no entry for (match
// with errors.Is).
var ErrNotFound = errors.New("not in store")

// ErrWedged marks a store that refuses further mutations after an
// ambiguous commit failure (match with errors.Is). See Store.wedged.
var ErrWedged = errors.New("store wedged by an ambiguous commit failure; reopen the store to recover")

// errAmbiguousCommit classifies a writeAtomic failure that happened after
// the rename already applied: the write may or may not be durable, so the
// caller cannot know whether the entry is committed.
var errAmbiguousCommit = errors.New("ambiguous commit")

const (
	specsDir     = "specs"
	runsDir      = "runs"
	appendsDir   = "appends"
	basesDir     = "bases"
	manifestName = "manifest.json"
	ext          = ".json"
)

// Store is one on-disk catalog directory. Open creates the layout; all
// methods are safe for concurrent use.
type Store struct {
	dir string

	// mu serializes writers: atomic renames alone keep individual files
	// consistent, but the manifest is read-modify-written and the
	// run-file-then-manifest ordering of PutRun must not interleave.
	//
	//provrpq:lockrank storeMu 30
	mu sync.Mutex

	// wedged latches when a write fails *after* its rename applied (the
	// directory fsync failed): the entry may or may not be durable, so
	// memory and disk can disagree about what is committed. Continuing to
	// mutate on top of that ambiguity would let the histories diverge —
	// e.g. an append the caller believes failed is counted by the on-disk
	// manifest, and the next append would commit a batch grown from a
	// base that lacks it. A wedged store refuses every further mutation
	// with ErrWedged (reads keep working); reopening re-reads the disk
	// state and recovers.
	wedged bool

	// appendMus holds one append mutex per run name (see appendLock in
	// groupcommit.go): at most one append per run is in flight, so a run's
	// committed batch count is always the next free sequence number.
	appendMus sync.Map

	// leaderMu elects the group-commit leader: whoever holds it drains the
	// queue and writes one manifest covering every drained op. Followers
	// block on it only to discover their op was already committed.
	//
	//provrpq:lockrank commitLeaderMu 14
	leaderMu sync.Mutex

	// qmu guards only the pending commit-op slice; it is held for
	// append/drain instants, never across I/O.
	//
	//provrpq:lockrank commitQueueMu 16
	qmu   sync.Mutex
	queue []*commitOp

	// serial disables manifest-commit coalescing (SetSerialCommit): the
	// honest per-batch-fsync baseline for the ingest benchmark.
	serial atomic.Bool

	// man caches the manifest (guarded by mu): this process is the only
	// manifest writer, so after one disk load the cache is authoritative
	// and readManifest stops paying a file read plus JSON parse per call —
	// which an append pays twice (sequence reservation, commit). A failed
	// manifest write leaves the cache at the pre-write state: for a plain
	// failure that matches disk; for an ambiguous one the store is wedged
	// and readers conservatively keep seeing the unacknowledged-write-free
	// history until reopen re-reads disk.
	man *manifest
}

// Open opens (creating if necessary) the store rooted at dir, sweeping
// any temp files a crashed writer abandoned (they are invisible to reads
// but would otherwise accumulate forever).
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, specsDir), filepath.Join(dir, runsDir), filepath.Join(dir, appendsDir), filepath.Join(dir, basesDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		sweepTempFiles(d)
	}
	// Invariant: once Open returns, the layout itself is durable. The
	// subdirectory entries live in the root directory, so fsyncing the
	// root makes them survive power loss; without this, a crash right
	// after the first boot could leave a store whose specs/runs/appends
	// directories vanish along with everything written into them.
	if err := syncDir(dir); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// sweepTempFiles removes writeAtomic leftovers ("<base>.tmp-<random>")
// from one directory. Committed entries always decode back to a catalog
// name (they end in ".json"; temp files never do), so anything that both
// fails decodeName and carries the ".tmp-" marker is sweepable — a spec
// or run legitimately named "build.tmp-2026" escapes to
// "build.tmp-2026.json" and is left alone. Best-effort: a failure to
// remove junk must not block opening the store.
func sweepTempFiles(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() || !strings.Contains(e.Name(), ".tmp-") {
			continue
		}
		if _, ok := decodeName(e.Name()); ok {
			continue // committed entry whose name merely contains ".tmp-"
		}
		_ = os.Remove(filepath.Join(dir, e.Name()))
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// PutSpec durably writes a specification payload. An existing entry under
// the same name is replaced (the catalog layer enforces name uniqueness;
// at the store level a re-save is idempotent).
func (s *Store) PutSpec(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("store: empty specification name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged {
		return fmt.Errorf("store: specification %q: %w", name, ErrWedged)
	}
	if err := s.noteAmbiguous(writeAtomic(s.specPath(name), data)); err != nil {
		return err
	}
	mWrites.With("spec").Inc()
	return nil
}

// noteAmbiguous latches the wedge when a write failed after its rename
// applied (callers hold s.mu); the error passes through unchanged.
func (s *Store) noteAmbiguous(err error) error {
	if errors.Is(err, errAmbiguousCommit) {
		s.wedged = true
		mWedged.Set(1)
	}
	return err
}

// Wedged reports whether the store has latched the wedge: an ambiguous
// commit failure happened and every further mutation is refused with
// ErrWedged until the store is reopened. Liveness probes (rpqd /healthz)
// surface this as degraded — the store still answers reads but cannot
// accept writes.
func (s *Store) Wedged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wedged
}

// GetSpec reads a specification payload.
func (s *Store) GetSpec(name string) ([]byte, error) {
	data, err := os.ReadFile(s.specPath(name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: specification %q: %w", name, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: specification %q: %w", name, err)
	}
	return data, nil
}

// HasSpec reports whether a specification is stored under name.
func (s *Store) HasSpec(name string) bool {
	_, err := os.Stat(s.specPath(name))
	return err == nil
}

// SpecNames lists the stored specification names, sorted.
func (s *Store) SpecNames() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, specsDir))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		name, ok := decodeName(e.Name())
		if !ok {
			continue // temp file or foreign junk
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// PutRun durably writes a run payload bound to the named specification.
// The run file lands before the manifest entry that makes it visible, so
// a crash between the two writes leaves an orphan file, never a run the
// loader would surface without its payload.
func (s *Store) PutRun(name, spec string, data []byte) error {
	if name == "" {
		return fmt.Errorf("store: empty run name")
	}
	if spec == "" {
		return fmt.Errorf("store: run %q: empty specification name", name)
	}
	// A fresh put rewrites the run's whole history; excluding the run's
	// in-flight append (if any) keeps the reset from racing a staged batch.
	amu := s.appendLock(name)
	amu.Lock()
	defer amu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged {
		return fmt.Errorf("store: run %q: %w", name, ErrWedged)
	}
	if err := s.noteAmbiguous(writeAtomic(s.runPath(name, 0), data)); err != nil {
		return err
	}
	m, err := s.readManifest()
	if err != nil {
		return err
	}
	m.Runs[name] = spec
	// A fresh put defines a fresh history: any growth or compaction state
	// a previous holder of the name left behind must not apply to the new
	// payload (the payload just landed at epoch 0).
	delete(m.Appends, name)
	delete(m.Bases, name)
	if err := s.noteAmbiguous(s.writeManifest(m)); err != nil {
		return err
	}
	mWrites.With("run").Inc()
	return nil
}

// GetRun reads a run payload and the specification name it is bound to.
// Only manifest-committed runs are readable.
func (s *Store) GetRun(name string) (spec string, data []byte, err error) {
	s.mu.Lock()
	m, err := s.readManifest()
	s.mu.Unlock()
	if err != nil {
		return "", nil, err
	}
	spec, ok := m.Runs[name]
	if !ok {
		return "", nil, fmt.Errorf("store: run %q: %w", name, ErrNotFound)
	}
	data, err = s.GetRunData(name, m.Bases[name])
	if err != nil {
		return "", nil, err
	}
	return spec, data, nil
}

// GetRunData reads a run's base payload at the given compaction epoch
// without consulting the manifest, for callers that already hold the
// run → specification binding and the epoch (the boot replay reads the
// manifest once via Runs/Appends/Bases, then each payload directly —
// GetRun would re-parse the manifest per run).
func (s *Store) GetRunData(name string, epoch int) ([]byte, error) {
	data, err := os.ReadFile(s.runPath(name, epoch))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: run %q: %w", name, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: run %q: %w", name, err)
	}
	return data, nil
}

// GetRunDataMapped is GetRunData backed by a read-only memory mapping
// when the platform supports it (falling back to a plain read when it
// does not): boot over a large columnar base then touches pages on
// demand instead of copying the whole payload through the heap. The
// mapping is never unmapped — the zero-copy run opened over it aliases
// the bytes for its whole lifetime — and it stays coherent across later
// compactions or rewrites because writeAtomic always replaces the path
// with a fresh inode via rename, never writing a payload in place: the
// mapping keeps referencing the old inode as a stable snapshot.
//
//provrpq:trusted
func (s *Store) GetRunDataMapped(name string, epoch int) ([]byte, error) {
	data, err := mapFile(s.runPath(name, epoch))
	if err == nil {
		return data, nil
	}
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: run %q: %w", name, ErrNotFound)
	}
	return s.GetRunData(name, epoch)
}

// mapFile memory-maps a whole file read-only (platform-gated via mmapRO).
//
//provrpq:trusted
func mapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("store: %s: too large to map", path)
	}
	return mmapRO(f, int(size))
}

// Bases returns the manifest's run → base-payload compaction epoch (a
// copy); never-compacted runs are absent (epoch 0).
func (s *Store) Bases() (map[string]int, error) {
	s.mu.Lock()
	m, err := s.readManifest()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(m.Bases))
	for k, v := range m.Bases {
		out[k] = v
	}
	return out, nil
}

// CompactRun folds a run's committed growth into a single base payload:
// data must be the full current run (base plus every committed batch,
// encoded by the caller). The new base lands at the next compaction epoch
// in bases/ and the manifest — the single commit point — switches the
// run's base and zeroes its batch count in one atomic write, so a crash
// mid-compaction leaves an invisible orphan base file and the old
// base+log fully in force, never a double-applied batch. Obsolete files
// (the previous base, the folded batches) are removed best-effort after
// the commit. Returns the new epoch.
func (s *Store) CompactRun(name string, data []byte) (int, error) {
	// Folding the log must not interleave with an in-flight append to the
	// same run: the append's reserved sequence number is only meaningful
	// against the batch count this compaction is about to zero.
	amu := s.appendLock(name)
	amu.Lock()
	defer amu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged {
		return 0, fmt.Errorf("store: run %q: %w", name, ErrWedged)
	}
	m, err := s.readManifest()
	if err != nil {
		return 0, err
	}
	if _, ok := m.Runs[name]; !ok {
		return 0, fmt.Errorf("store: run %q: %w", name, ErrNotFound)
	}
	oldEpoch, oldAppends := m.Bases[name], m.Appends[name]
	epoch := oldEpoch + 1
	if err := s.noteAmbiguous(writeAtomic(s.runPath(name, epoch), data)); err != nil {
		return 0, err
	}
	if m.Bases == nil {
		m.Bases = map[string]int{}
	}
	m.Bases[name] = epoch
	delete(m.Appends, name)
	if err := s.noteAmbiguous(s.writeManifest(m)); err != nil {
		return 0, err
	}
	mWrites.With("compact").Inc()
	// Committed; the superseded files are garbage now. Best-effort: a
	// failed remove leaves dead bytes, never wrong answers.
	_ = os.Remove(s.runPath(name, oldEpoch))
	for seq := 0; seq < oldAppends; seq++ {
		_ = os.Remove(s.appendPath(name, seq))
	}
	return epoch, nil
}

// RewriteRunPayload atomically replaces a committed run's base payload at
// its current compaction epoch, leaving every other piece of the run's
// state — its specification binding, append-log count, generation-bearing
// batches and base epoch — untouched. This is the format-migration
// primitive: the caller hands it a re-encoding of the exact same logical
// run, so whichever payload a crash leaves at the (single) base path is a
// valid base for the unchanged manifest. Contrast PutRun (resets the run's
// history) and CompactRun (advances the epoch and folds the log): neither
// can rewrite a payload in place without destroying state a migration
// must preserve.
func (s *Store) RewriteRunPayload(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged {
		return fmt.Errorf("store: run %q: %w", name, ErrWedged)
	}
	m, err := s.readManifest()
	if err != nil {
		return err
	}
	if _, ok := m.Runs[name]; !ok {
		return fmt.Errorf("store: run %q: %w", name, ErrNotFound)
	}
	if err := s.noteAmbiguous(writeAtomic(s.runPath(name, m.Bases[name]), data)); err != nil {
		return err
	}
	mWrites.With("rewrite").Inc()
	return nil
}

// Format returns the manifest's payload-format generation (see
// manifest.Format).
func (s *Store) Format() (int, error) {
	s.mu.Lock()
	m, err := s.readManifest()
	s.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return m.Format, nil
}

// SetFormat durably records the payload-format generation. Callers set it
// only after every base payload has been rewritten to the new format, so
// the flag is a pure fast-path marker for subsequent opens.
func (s *Store) SetFormat(v int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged {
		return fmt.Errorf("store: %w", ErrWedged)
	}
	m, err := s.readManifest()
	if err != nil {
		return err
	}
	if m.Format == v {
		return nil
	}
	m.Format = v
	return s.noteAmbiguous(s.writeManifest(m))
}

// HasRun reports whether a run is committed under name.
func (s *Store) HasRun(name string) bool {
	s.mu.Lock()
	m, err := s.readManifest()
	s.mu.Unlock()
	if err != nil {
		return false
	}
	_, ok := m.Runs[name]
	return ok
}

// AppendRun durably commits one growth batch for the named run, which
// must already be committed, and returns the batch's sequence number
// (0-based, dense). The batch file lands before the manifest count that
// makes it visible — the same commit protocol as PutRun — so a crash
// between the two writes leaves an orphan batch file that replay never
// reads and the next AppendRun atomically overwrites: growth is replayed
// cleanly or is invisible, never torn.
//
// Concurrent appends to different runs coalesce: each stages its payload
// (paying only the file-content fsync) in parallel, then the group-commit
// leader pins all the staged renames with one appends-directory fsync and
// publishes the manifest bumps in one atomic manifest write (see
// groupcommit.go) — so N in-flight appends cost one directory fsync plus
// one manifest fsync pair, not N of each.
func (s *Store) AppendRun(name string, data []byte) (seq int, err error) {
	if name == "" {
		return 0, fmt.Errorf("store: empty run name")
	}
	amu := s.appendLock(name)
	amu.Lock()
	defer amu.Unlock()
	if s.serial.Load() {
		return s.appendRunSerial(name, data)
	}
	// Reserve the sequence number: the append lock is held, so the
	// manifest's committed count is the next free slot and stays so until
	// this append commits or fails. The cached manifest is read in place —
	// no clone — since only one count is consulted.
	s.mu.Lock()
	if s.wedged {
		s.mu.Unlock()
		return 0, fmt.Errorf("store: run %q: %w", name, ErrWedged)
	}
	m, err := s.manifestView()
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	if _, ok := m.Runs[name]; !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("store: run %q: %w", name, ErrNotFound)
	}
	seq = m.Appends[name]
	s.mu.Unlock()

	path := s.appendPath(name, seq)
	if err := s.stage(path, data); err != nil {
		return 0, err
	}
	if err := s.groupCommit(filepath.Dir(path), func(m *manifest) {
		if m.Appends == nil {
			m.Appends = map[string]int{}
		}
		m.Appends[name] = seq + 1
	}); err != nil {
		return 0, fmt.Errorf("store: run %q: %w", name, err)
	}
	mWrites.With("append").Inc()
	mAppendBytes.Add(uint64(len(data)))
	return seq, nil
}

// GetRunAppend reads one committed growth batch of a run. Only batches
// below the manifest's committed count are readable; an orphan file from a
// crashed AppendRun is invisible.
func (s *Store) GetRunAppend(name string, seq int) ([]byte, error) {
	s.mu.Lock()
	m, err := s.readManifest()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if seq < 0 || seq >= m.Appends[name] {
		return nil, fmt.Errorf("store: run %q append %d: %w", name, seq, ErrNotFound)
	}
	return s.GetRunAppendData(name, seq)
}

// GetRunAppendData reads a growth batch without consulting the manifest,
// for callers that already hold the committed count (the boot replay reads
// the manifest once via Appends, then each batch directly — GetRunAppend
// would re-parse the manifest per batch, serializing the parallel decode
// workers on the store lock).
func (s *Store) GetRunAppendData(name string, seq int) ([]byte, error) {
	data, err := os.ReadFile(s.appendPath(name, seq))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: run %q append %d: %w", name, seq, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: run %q append %d: %w", name, seq, err)
	}
	return data, nil
}

// Appends returns the manifest's run → committed-growth-batch count (a
// copy); runs that never grew are absent.
func (s *Store) Appends() (map[string]int, error) {
	s.mu.Lock()
	m, err := s.readManifest()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(m.Appends))
	for k, v := range m.Appends {
		out[k] = v
	}
	return out, nil
}

// State returns the manifest's three bindings — run → spec, run → batch
// count, run → base epoch — from one atomic manifest read. Callers that
// need a consistent cross-map view (boot, snapshot) must use this rather
// than Runs/Appends/Bases in sequence: a compaction committing between
// two separate reads would otherwise pair an already-folded base with its
// pre-fold batch count, double-applying every folded batch.
func (s *Store) State() (runs map[string]string, appends, bases map[string]int, err error) {
	s.mu.Lock()
	m, err := s.readManifest()
	s.mu.Unlock()
	if err != nil {
		return nil, nil, nil, err
	}
	runs = make(map[string]string, len(m.Runs))
	for k, v := range m.Runs {
		runs[k] = v
	}
	appends = make(map[string]int, len(m.Appends))
	for k, v := range m.Appends {
		appends[k] = v
	}
	bases = make(map[string]int, len(m.Bases))
	for k, v := range m.Bases {
		bases[k] = v
	}
	return runs, appends, bases, nil
}

// Runs returns the manifest's run → specification binding (a copy).
func (s *Store) Runs() (map[string]string, error) {
	s.mu.Lock()
	m, err := s.readManifest()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(m.Runs))
	for k, v := range m.Runs {
		out[k] = v
	}
	return out, nil
}

// RunNames lists the committed run names, sorted.
func (s *Store) RunNames() ([]string, error) {
	m, err := s.Runs()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// ---- layout helpers ----

type manifest struct {
	Runs map[string]string `json:"runs"`
	// Appends counts the committed growth batches per run; a manifest
	// written before append support simply lacks the key (zero batches).
	Appends map[string]int `json:"appends,omitempty"`
	// Bases maps a run to its base payload's compaction epoch: 0 (or
	// absent) is the original runs/<name>.json, epoch e >= 1 lives at
	// bases/<name>.<e>.json. The manifest switch is what commits a
	// compaction.
	Bases map[string]int `json:"bases,omitempty"`
	// Format is the store-wide payload format generation, advanced by the
	// owning layer once it has rewritten every base payload to a newer
	// codec (0 = legacy/unmigrated, 1 = columnar-native run bases). It is
	// a migration fast-path marker, not a decode directive — payloads are
	// self-describing and readers sniff each one — so a crash anywhere
	// during a migration simply re-runs it on the next open.
	Format int `json:"format,omitempty"`
}

func (s *Store) specPath(name string) string {
	return filepath.Join(s.dir, specsDir, url.PathEscape(name)+ext)
}

// runPath locates a run's base payload at a compaction epoch. Epoch 0 is
// the original upload in runs/; compacted bases live in their own
// directory so an epoch-suffixed filename can never collide with another
// run whose *name* ends in ".<digits>".
func (s *Store) runPath(name string, epoch int) string {
	if epoch == 0 {
		return filepath.Join(s.dir, runsDir, url.PathEscape(name)+ext)
	}
	return filepath.Join(s.dir, basesDir, fmt.Sprintf("%s.%d%s", url.PathEscape(name), epoch, ext))
}

func (s *Store) appendPath(name string, seq int) string {
	return filepath.Join(s.dir, appendsDir, fmt.Sprintf("%s.%d%s", url.PathEscape(name), seq, ext))
}

func (s *Store) manifestPath() string { return filepath.Join(s.dir, manifestName) }

// decodeName maps a directory entry back to a catalog name, rejecting
// anything that is not an escaped "<name>.json".
func decodeName(file string) (string, bool) {
	base, ok := strings.CutSuffix(file, ext)
	if !ok {
		return "", false
	}
	name, err := url.PathUnescape(base)
	if err != nil || name == "" {
		return "", false
	}
	return name, true
}

// readManifest returns a private copy of the manifest (callers hold s.mu
// and freely mutate the returned maps before writeManifest). The disk file
// is read and parsed only on the first call; afterwards the in-memory
// cache is authoritative — see the man field.
func (s *Store) readManifest() (manifest, error) {
	m, err := s.manifestView()
	if err != nil {
		return manifest{Runs: map[string]string{}}, err
	}
	return cloneManifest(*m), nil
}

// manifestView returns the cached manifest itself, without cloning —
// read-only access for hot paths like append sequence reservation.
// Callers hold s.mu and must neither mutate the result nor retain it past
// the unlock.
func (s *Store) manifestView() (*manifest, error) {
	if s.man == nil {
		m, err := s.loadManifest()
		if err != nil {
			return nil, err
		}
		s.man = &m
	}
	return s.man, nil
}

// loadManifest reads and parses the manifest file, bypassing the cache
// (Open-time and reopen-after-wedge paths).
func (s *Store) loadManifest() (manifest, error) {
	m := manifest{Runs: map[string]string{}}
	data, err := os.ReadFile(s.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		return m, nil
	}
	if err != nil {
		return m, fmt.Errorf("store: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("store: corrupt manifest %s: %w", s.manifestPath(), err)
	}
	if m.Runs == nil {
		m.Runs = map[string]string{}
	}
	return m, nil
}

// cloneManifest deep-copies the manifest's maps so cache and caller never
// alias (nil maps stay nil, matching the omitempty encoding).
func cloneManifest(m manifest) manifest {
	m.Runs = maps.Clone(m.Runs)
	m.Appends = maps.Clone(m.Appends)
	m.Bases = maps.Clone(m.Bases)
	return m
}

func (s *Store) writeManifest(m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := writeAtomic(s.manifestPath(), data); err != nil {
		return err
	}
	c := cloneManifest(m)
	s.man = &c
	mWrites.With("manifest").Inc()
	return nil
}

// writeAtomic writes data to path via a same-directory temp file, fsync
// and rename, so concurrent readers and crashed writers never observe a
// torn file, then fsyncs the parent directory so the rename survives power
// loss. When writeAtomic returns nil the write IS the commit.
func writeAtomic(path string, data []byte) error {
	if err := writeAtomicDeferSync(path, data, true); err != nil {
		return err
	}
	// Invariant: the rename above only updates the in-memory directory
	// entry; until the directory is fsynced the old entry (or none) can
	// reappear after a crash, which would silently undo a "committed"
	// manifest or payload. Fsyncing the parent directory pins the rename,
	// completing the temp-file + fsync + rename + dir-fsync sequence. A
	// failure *here* is ambiguous — the rename already applied, so the
	// write may or may not survive — and is classified as such so the
	// store wedges instead of mutating on top of an unknowable disk state.
	if err := FsyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("store: %s: %w: %w", path, errAmbiguousCommit, err)
	}
	return nil
}

// writeAtomicDeferSync is writeAtomic without the final parent-directory
// fsync: the rename is atomic, but may not survive power loss until
// someone fsyncs the directory. Callers must arrange that pin before
// treating the write as committed — the group-commit leader does it once
// per batch of staged appends (see groupcommit.go), which is what makes
// deferral profitable. When dataSync is false the file-content fsync is
// skipped too, for staged files whose data the leader will flush with one
// filesystem-wide syncfs; with it true the content is durable on return
// and only the rename is deferred. Unlike writeAtomic, no failure here is
// ambiguous: if the rename did not return nil the target was never
// published.
//
//provrpq:fsyncsafe writeAtomic's own body, split out so group commit can defer the directory fsync; every caller either is writeAtomic or routes the deferred pin through the commit leader
func writeAtomicDeferSync(path string, data []byte, dataSync bool) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	if dataSync {
		if err := tmp.Sync(); err != nil {
			return fmt.Errorf("store: %s: %w", path, err)
		}
		mFsyncs.Inc()
	}
	if err := tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	//provlint:ignore fsyncorder deferring the parent-directory fsync is this function's contract; the group-commit leader pins the rename before the manifest write that publishes it
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp = nil
	return nil
}

// writeStaged writes a staged append payload directly at its final path —
// no temp file, no rename, and durability deferred exactly like
// writeAtomicDeferSync (content fsync only when dataSync is true; the
// directory entry is pinned by the group-commit leader). Skipping the
// atomic dance is safe *only* for staged files: a staged path is below no
// manifest count, so readers can never observe it, and a torn write just
// leaves invisible garbage the next append at that sequence rewrites with
// O_TRUNC. Atomicity of the visible state is the manifest's job here, not
// the filesystem's — which saves the temp-file create and rename
// syscalls on the hottest write path in the store.
//
//provrpq:fsyncsafe staged append payloads are invisible until a manifest write counts them, so a torn write here can never be observed; durability is the group-commit leader's pre-manifest flush
func writeStaged(path string, data []byte, dataSync bool) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path) // best-effort: the partial file is invisible anyway
		return fmt.Errorf("store: %s: %w", path, err)
	}
	if dataSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: %s: %w", path, err)
		}
		mFsyncs.Inc()
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	return nil
}

// FsyncDir is syncDir, indirected so tests — including tests of layers
// above the store, like the server's degraded-/healthz coverage — can
// inject post-rename fsync failures, the ambiguous-commit window that
// wedges a store. Production code must never reassign it.
var FsyncDir = syncDir

// syncDir fsyncs a directory, making its entries (renames, creates)
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", dir, err)
	}
	mFsyncs.Inc()
	return nil
}
