// Package store implements the disk-backed catalog store underneath the
// root package's durable Catalog: named specification and run payloads,
// plus a manifest binding each run to its specification.
//
// On-disk layout under one root directory:
//
//	<dir>/specs/<name>.json    one specification payload per file
//	<dir>/runs/<name>.json     one run payload per file
//	<dir>/manifest.json        {"runs": {"<run>": "<spec>"}}
//
// Names are opaque non-empty strings; they are path-escaped on the way to
// a filename (so "a/b" and "a b" are valid catalog names) and unescaped
// when listing. Every write is atomic: the payload goes to a temp file in
// the destination directory, is fsynced, and is renamed over the final
// path, so a crash mid-write never leaves a torn file — readers see the
// old payload or the new one, nothing in between. The parent directory is
// not fsynced, so a whole-machine crash can lose the most recent rename
// (but never corrupt an existing entry).
//
// The manifest is the commit point for runs: PutRun writes the run file
// first and the manifest entry second, and readers only surface runs the
// manifest names, so a crash between the two writes leaves an invisible
// orphan file rather than a half-registered run. The store works at the
// []byte level — the root package owns the spec/run codecs — and is safe
// for concurrent use.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound marks a lookup of a name the store has no entry for (match
// with errors.Is).
var ErrNotFound = errors.New("not in store")

const (
	specsDir     = "specs"
	runsDir      = "runs"
	manifestName = "manifest.json"
	ext          = ".json"
)

// Store is one on-disk catalog directory. Open creates the layout; all
// methods are safe for concurrent use.
type Store struct {
	dir string

	// mu serializes writers: atomic renames alone keep individual files
	// consistent, but the manifest is read-modify-written and the
	// run-file-then-manifest ordering of PutRun must not interleave.
	mu sync.Mutex
}

// Open opens (creating if necessary) the store rooted at dir, sweeping
// any temp files a crashed writer abandoned (they are invisible to reads
// but would otherwise accumulate forever).
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, specsDir), filepath.Join(dir, runsDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		sweepTempFiles(d)
	}
	return &Store{dir: dir}, nil
}

// sweepTempFiles removes writeAtomic leftovers ("<base>.tmp-<random>")
// from one directory. Committed entries always decode back to a catalog
// name (they end in ".json"; temp files never do), so anything that both
// fails decodeName and carries the ".tmp-" marker is sweepable — a spec
// or run legitimately named "build.tmp-2026" escapes to
// "build.tmp-2026.json" and is left alone. Best-effort: a failure to
// remove junk must not block opening the store.
func sweepTempFiles(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() || !strings.Contains(e.Name(), ".tmp-") {
			continue
		}
		if _, ok := decodeName(e.Name()); ok {
			continue // committed entry whose name merely contains ".tmp-"
		}
		_ = os.Remove(filepath.Join(dir, e.Name()))
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// PutSpec durably writes a specification payload. An existing entry under
// the same name is replaced (the catalog layer enforces name uniqueness;
// at the store level a re-save is idempotent).
func (s *Store) PutSpec(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("store: empty specification name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return writeAtomic(s.specPath(name), data)
}

// GetSpec reads a specification payload.
func (s *Store) GetSpec(name string) ([]byte, error) {
	data, err := os.ReadFile(s.specPath(name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: specification %q: %w", name, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: specification %q: %w", name, err)
	}
	return data, nil
}

// HasSpec reports whether a specification is stored under name.
func (s *Store) HasSpec(name string) bool {
	_, err := os.Stat(s.specPath(name))
	return err == nil
}

// SpecNames lists the stored specification names, sorted.
func (s *Store) SpecNames() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, specsDir))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		name, ok := decodeName(e.Name())
		if !ok {
			continue // temp file or foreign junk
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// PutRun durably writes a run payload bound to the named specification.
// The run file lands before the manifest entry that makes it visible, so
// a crash between the two writes leaves an orphan file, never a run the
// loader would surface without its payload.
func (s *Store) PutRun(name, spec string, data []byte) error {
	if name == "" {
		return fmt.Errorf("store: empty run name")
	}
	if spec == "" {
		return fmt.Errorf("store: run %q: empty specification name", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := writeAtomic(s.runPath(name), data); err != nil {
		return err
	}
	m, err := s.readManifest()
	if err != nil {
		return err
	}
	m.Runs[name] = spec
	return s.writeManifest(m)
}

// GetRun reads a run payload and the specification name it is bound to.
// Only manifest-committed runs are readable.
func (s *Store) GetRun(name string) (spec string, data []byte, err error) {
	s.mu.Lock()
	m, err := s.readManifest()
	s.mu.Unlock()
	if err != nil {
		return "", nil, err
	}
	spec, ok := m.Runs[name]
	if !ok {
		return "", nil, fmt.Errorf("store: run %q: %w", name, ErrNotFound)
	}
	data, err = os.ReadFile(s.runPath(name))
	if err != nil {
		return "", nil, fmt.Errorf("store: run %q: %w", name, err)
	}
	return spec, data, nil
}

// GetRunData reads a run payload without consulting the manifest, for
// callers that already hold the run → specification binding (the boot
// replay reads the manifest once via Runs, then each payload directly —
// GetRun would re-parse the manifest per run).
func (s *Store) GetRunData(name string) ([]byte, error) {
	data, err := os.ReadFile(s.runPath(name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: run %q: %w", name, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: run %q: %w", name, err)
	}
	return data, nil
}

// HasRun reports whether a run is committed under name.
func (s *Store) HasRun(name string) bool {
	s.mu.Lock()
	m, err := s.readManifest()
	s.mu.Unlock()
	if err != nil {
		return false
	}
	_, ok := m.Runs[name]
	return ok
}

// Runs returns the manifest's run → specification binding (a copy).
func (s *Store) Runs() (map[string]string, error) {
	s.mu.Lock()
	m, err := s.readManifest()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(m.Runs))
	for k, v := range m.Runs {
		out[k] = v
	}
	return out, nil
}

// RunNames lists the committed run names, sorted.
func (s *Store) RunNames() ([]string, error) {
	m, err := s.Runs()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// ---- layout helpers ----

type manifest struct {
	Runs map[string]string `json:"runs"`
}

func (s *Store) specPath(name string) string {
	return filepath.Join(s.dir, specsDir, url.PathEscape(name)+ext)
}

func (s *Store) runPath(name string) string {
	return filepath.Join(s.dir, runsDir, url.PathEscape(name)+ext)
}

func (s *Store) manifestPath() string { return filepath.Join(s.dir, manifestName) }

// decodeName maps a directory entry back to a catalog name, rejecting
// anything that is not an escaped "<name>.json".
func decodeName(file string) (string, bool) {
	base, ok := strings.CutSuffix(file, ext)
	if !ok {
		return "", false
	}
	name, err := url.PathUnescape(base)
	if err != nil || name == "" {
		return "", false
	}
	return name, true
}

func (s *Store) readManifest() (manifest, error) {
	m := manifest{Runs: map[string]string{}}
	data, err := os.ReadFile(s.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		return m, nil
	}
	if err != nil {
		return m, fmt.Errorf("store: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("store: corrupt manifest %s: %w", s.manifestPath(), err)
	}
	if m.Runs == nil {
		m.Runs = map[string]string{}
	}
	return m, nil
}

func (s *Store) writeManifest(m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeAtomic(s.manifestPath(), data)
}

// writeAtomic writes data to path via a same-directory temp file, fsync
// and rename, so concurrent readers and crashed writers never observe a
// torn file.
func writeAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp = nil
	return nil
}
