//go:build !unix

package store

import (
	"fmt"
	"os"
)

// mmapRO is unavailable on this platform; GetRunDataMapped falls back to a
// plain read.
//
//provrpq:trusted
func mmapRO(f *os.File, size int) ([]byte, error) {
	return nil, fmt.Errorf("store: memory mapping unsupported on this platform")
}
