//go:build linux && amd64

package store

// sysSyncfs is the syncfs(2) syscall number on linux/amd64.
const sysSyncfs = 306
