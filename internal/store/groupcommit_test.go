package store

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestGroupCommitConcurrentAppends: N writers appending to N distinct runs
// concurrently must all commit, with dense per-run sequence numbers, and a
// reopen must replay exactly the committed batches. The coalescing counters
// must account for every append.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const runs, batches = 8, 6
	for i := 0; i < runs; i++ {
		if err := s.PutRun(fmt.Sprintf("r%d", i), "wf", []byte("base")); err != nil {
			t.Fatal(err)
		}
	}
	groups0, ops0 := CommitStats()
	var wg sync.WaitGroup
	errs := make([]error, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("r%d", i)
			for j := 0; j < batches; j++ {
				seq, err := s.AppendRun(name, []byte(fmt.Sprintf("%s.batch%d", name, j)))
				if err != nil {
					errs[i] = err
					return
				}
				if seq != j {
					errs[i] = fmt.Errorf("run %s batch %d got seq %d", name, j, seq)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	groups, ops := CommitStats()
	if got := ops - ops0; got != runs*batches {
		t.Fatalf("grouped append ops = %d, want %d", got, runs*batches)
	}
	if g := groups - groups0; g == 0 || g > runs*batches {
		t.Fatalf("group commits = %d, want within [1, %d]", g, runs*batches)
	}

	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	counts, err := s2.Appends()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < runs; i++ {
		name := fmt.Sprintf("r%d", i)
		if counts[name] != batches {
			t.Fatalf("run %s committed %d batches, want %d", name, counts[name], batches)
		}
		for j := 0; j < batches; j++ {
			data, err := s2.GetRunAppend(name, j)
			if err != nil || string(data) != fmt.Sprintf("%s.batch%d", name, j) {
				t.Fatalf("GetRunAppend(%s, %d) = (%q, %v)", name, j, data, err)
			}
		}
	}
}

// TestGroupCommitSerialBaseline: the serial path (one manifest write per
// batch, everything under the store mutex) must commit identically; the
// ingest benchmark leans on this equivalence.
func TestGroupCommitSerialBaseline(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetSerialCommit(true)
	if err := s.PutRun("r1", "wf", []byte("base")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.AppendRun("r1", []byte("b")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if m, _ := s.Appends(); m["r1"] != 4 {
		t.Fatalf("serial appends committed %d, want 4", m["r1"])
	}
}

// TestGroupCommitCrashBeforeManifest: a failure while staging batch
// payloads (the leader's pre-manifest staging flush — syncfs where the
// group defers durability to it, the appends-directory fsync elsewhere)
// must leave every in-flight batch invisible — the manifest still names
// zero batches on reopen, the orphan files are dead bytes, and the
// post-reopen append retakes sequence 0, atomically overwriting its
// orphan.
func TestGroupCommitCrashBeforeManifest(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const runs = 4
	for i := 0; i < runs; i++ {
		if err := s.PutRun(fmt.Sprintf("r%d", i), "wf", []byte("base")); err != nil {
			t.Fatal(err)
		}
	}
	origDir, origFS := FsyncDir, doSyncfs
	if syncfsSupported {
		doSyncfs = func(dir string) error {
			return fmt.Errorf("injected syncfs failure")
		}
	} else {
		FsyncDir = func(dir string) error {
			if strings.Contains(dir, appendsDir) {
				return fmt.Errorf("injected fsync failure")
			}
			return origDir(dir)
		}
	}
	defer func() { FsyncDir, doSyncfs = origDir, origFS }()

	var wg sync.WaitGroup
	errs := make([]error, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.AppendRun(fmt.Sprintf("r%d", i), []byte("doomed"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		// The first stage failure is ambiguous (the rename applied before
		// the injected fsync) and wedges the store; appends racing behind
		// it fail with either their own ambiguous stage or ErrWedged.
		if err == nil {
			t.Fatalf("append %d succeeded with failing appends-dir fsync", i)
		}
		if !strings.Contains(err.Error(), "ambiguous commit") && !errors.Is(err, ErrWedged) {
			t.Fatalf("append %d = %v, want ambiguous-commit or ErrWedged", i, err)
		}
	}
	if !s.Wedged() {
		t.Fatal("store must wedge after an ambiguous stage failure")
	}

	FsyncDir, doSyncfs = origDir, origFS
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	counts, err := s2.Appends()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < runs; i++ {
		name := fmt.Sprintf("r%d", i)
		if counts[name] != 0 {
			t.Fatalf("run %s shows %d committed batches after crash, want 0", name, counts[name])
		}
		if _, err := s2.GetRunAppend(name, 0); !errors.Is(err, ErrNotFound) {
			t.Fatalf("orphan batch of %s is visible: %v", name, err)
		}
		// Recovery retakes seq 0 and overwrites the orphan.
		if seq, err := s2.AppendRun(name, []byte("recovered")); err != nil || seq != 0 {
			t.Fatalf("append after reopen = (%d, %v), want seq 0", seq, err)
		}
		if data, err := s2.GetRunAppend(name, 0); err != nil || string(data) != "recovered" {
			t.Fatalf("GetRunAppend after recovery = (%q, %v)", data, err)
		}
	}
}

// TestGroupCommitAmbiguousManifestWedges: the coalesced manifest write
// failing *after* its rename applied (root-directory fsync, injected) is
// ambiguous for the whole group — every in-flight append must report
// failure, the store must wedge, and the reopened state must still be
// atomic per group: whatever batch count the manifest names, every counted
// batch is readable. A torn subset — some of one group's bumps visible,
// others not — is impossible because the group shares one manifest write.
func TestGroupCommitAmbiguousManifestWedges(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const runs = 4
	for i := 0; i < runs; i++ {
		if err := s.PutRun(fmt.Sprintf("r%d", i), "wf", []byte("base")); err != nil {
			t.Fatal(err)
		}
	}
	root := s.Dir()
	orig := FsyncDir
	FsyncDir = func(dir string) error {
		// Let batch payloads (appends/) stage durably; fail only the root
		// fsync that pins the manifest rename.
		if strings.TrimSuffix(dir, "/") == strings.TrimSuffix(root, "/") {
			return fmt.Errorf("injected fsync failure")
		}
		return orig(dir)
	}
	defer func() { FsyncDir = orig }()

	var wg sync.WaitGroup
	errs := make([]error, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.AppendRun(fmt.Sprintf("r%d", i), []byte("staged"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("append %d succeeded despite ambiguous manifest commit", i)
		}
		if !strings.Contains(err.Error(), "ambiguous commit") && !errors.Is(err, ErrWedged) {
			t.Fatalf("append %d = %v, want ambiguous-commit or ErrWedged", i, err)
		}
	}
	if !s.Wedged() {
		t.Fatal("store must wedge after an ambiguous group commit")
	}
	if _, err := s.AppendRun("r0", []byte("more")); !errors.Is(err, ErrWedged) {
		t.Fatalf("append on wedged store = %v, want ErrWedged", err)
	}

	FsyncDir = orig
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	counts, err := s2.Appends()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < runs; i++ {
		name := fmt.Sprintf("r%d", i)
		n := counts[name]
		if n < 0 || n > 1 {
			t.Fatalf("run %s committed count = %d, want 0 or 1", name, n)
		}
		// Invisible-or-committed: every batch the manifest counts must be
		// fully readable with the staged payload.
		for seq := 0; seq < n; seq++ {
			data, err := s2.GetRunAppend(name, seq)
			if err != nil || string(data) != "staged" {
				t.Fatalf("counted batch (%s, %d) unreadable: (%q, %v)", name, seq, data, err)
			}
		}
		// Either way the run accepts new growth after reopen.
		if seq, err := s2.AppendRun(name, []byte("after")); err != nil || seq != n {
			t.Fatalf("append after reopen = (%d, %v), want seq %d", seq, err, n)
		}
	}
}
