//go:build linux && (amd64 || arm64)

package store

import (
	"fmt"
	"os"
	"syscall"
)

// syncfsSupported gates the deferred-data-sync staging protocol: when
// true, stage skips the per-file content fsync and the group-commit
// leader flushes every staged payload in the group with one syncfs of the
// appends directory's filesystem (see groupcommit.go). When false, each
// stage pays its own content fsync and the leader only pins renames.
const syncfsSupported = true

// doSyncfs is indirected so in-package tests can inject a syncfs failure —
// the ambiguous window that must wedge the store. Production code must
// never reassign it.
var doSyncfs = syncFilesystem

// syncFilesystem flushes all dirty file data and metadata of the
// filesystem containing dir. Since Linux 4.13 syncfs reports writeback
// errors, so a nil return means the staged payloads' contents are on
// stable storage. Go's frozen syscall package predates the syncfs
// wrapper, hence the raw syscall with a per-arch number (syncfs_num_*.go).
func syncFilesystem(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if _, _, errno := syscall.Syscall(sysSyncfs, d.Fd(), 0, 0); errno != 0 {
		return fmt.Errorf("store: syncfs %s: %w", dir, errno)
	}
	mFsyncs.Inc()
	return nil
}
