package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSpecRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSpec("wf", []byte(`{"grammar":1}`)); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetSpec("wf")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"grammar":1}` {
		t.Fatalf("GetSpec = %q", got)
	}
	if !s.HasSpec("wf") || s.HasSpec("ghost") {
		t.Error("HasSpec wrong")
	}
	if _, err := s.GetSpec("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing spec error = %v, want ErrNotFound", err)
	}
	// A re-save replaces the payload (idempotent persistence).
	if err := s.PutSpec("wf", []byte(`{"grammar":2}`)); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.GetSpec("wf"); string(got) != `{"grammar":2}` {
		t.Fatalf("after re-save GetSpec = %q", got)
	}
}

func TestRunRoundTripAndManifest(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun("r1", "wf", []byte(`{"nodes":[]}`)); err != nil {
		t.Fatal(err)
	}
	spec, data, err := s.GetRun("r1")
	if err != nil {
		t.Fatal(err)
	}
	if spec != "wf" || string(data) != `{"nodes":[]}` {
		t.Fatalf("GetRun = (%q, %q)", spec, data)
	}
	if !s.HasRun("r1") || s.HasRun("ghost") {
		t.Error("HasRun wrong")
	}
	if _, _, err := s.GetRun("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing run error = %v, want ErrNotFound", err)
	}
	m, err := s.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m["r1"] != "wf" {
		t.Fatalf("Runs = %v", m)
	}
}

// TestEscapedNames puts names that are hostile as filenames — path
// separators, spaces, dots — through the full save/list/load cycle.
func TestEscapedNames(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a/b", "a b", "..", "weird%2Fname", "ünïcode"}
	for _, n := range names {
		if err := s.PutSpec(n, []byte(`{}`)); err != nil {
			t.Fatalf("PutSpec(%q): %v", n, err)
		}
		if err := s.PutRun(n, n, []byte(`{}`)); err != nil {
			t.Fatalf("PutRun(%q): %v", n, err)
		}
	}
	specs, err := s.SpecNames()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != len(names) {
		t.Fatalf("SpecNames = %v, want %d names", specs, len(names))
	}
	for _, n := range names {
		if _, err := s.GetSpec(n); err != nil {
			t.Errorf("GetSpec(%q): %v", n, err)
		}
		if spec, _, err := s.GetRun(n); err != nil || spec != n {
			t.Errorf("GetRun(%q) = (%q, %v)", n, spec, err)
		}
	}
	// No escaped name may climb out of the store's directories.
	entries, err := os.ReadDir(filepath.Join(s.Dir(), "specs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(names) {
		t.Fatalf("specs dir holds %d files, want %d", len(entries), len(names))
	}
}

// TestOrphanRunInvisible checks the manifest is the commit point: a run
// file without a manifest entry (a crash between the two PutRun writes)
// is not surfaced by any read path.
func TestOrphanRunInvisible(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun("committed", "wf", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(s.Dir(), "runs", "orphan.json")
	if err := os.WriteFile(orphan, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := s.RunNames()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "committed" {
		t.Fatalf("RunNames = %v; the orphan must stay invisible", names)
	}
	if s.HasRun("orphan") {
		t.Error("HasRun sees the orphan")
	}
	if _, _, err := s.GetRun("orphan"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetRun(orphan) = %v, want ErrNotFound", err)
	}
}

// TestAppendRunRoundTrip: growth batches commit in sequence, bound to an
// existing run, and read back exactly.
func TestAppendRunRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendRun("ghost", []byte(`{}`)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("append to unknown run = %v, want ErrNotFound", err)
	}
	if err := s.PutRun("r1", "wf", []byte(`{"nodes":[]}`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		seq, err := s.AppendRun("r1", []byte{byte('0' + i)})
		if err != nil {
			t.Fatal(err)
		}
		if seq != i {
			t.Fatalf("AppendRun #%d returned seq %d", i, seq)
		}
	}
	for i := 0; i < 3; i++ {
		data, err := s.GetRunAppend("r1", i)
		if err != nil || string(data) != string(byte('0'+i)) {
			t.Fatalf("GetRunAppend(%d) = %q, %v", i, data, err)
		}
	}
	if _, err := s.GetRunAppend("r1", 3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("past-end append read = %v, want ErrNotFound", err)
	}
	m, err := s.Appends()
	if err != nil || m["r1"] != 3 {
		t.Fatalf("Appends = %v, %v", m, err)
	}
	// A reopening process sees the same committed growth.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if m2, err := s2.Appends(); err != nil || m2["r1"] != 3 {
		t.Fatalf("reopened Appends = %v, %v", m2, err)
	}
}

// TestOrphanAppendInvisible mirrors TestOrphanRunInvisible for the append
// log: a batch file without its manifest count bump — a crash between
// AppendRun's two writes — must stay invisible to every read path, and the
// next AppendRun must commit cleanly over it.
func TestOrphanAppendInvisible(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun("r1", "wf", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendRun("r1", []byte(`committed-0`)); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: batch file for seq 1 lands, manifest never does.
	orphan := filepath.Join(s.Dir(), "appends", "r1.1.json")
	if err := os.WriteFile(orphan, []byte(`torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if m, err := reopened.Appends(); err != nil || m["r1"] != 1 {
		t.Fatalf("Appends after torn append = %v, %v, want r1:1", m, err)
	}
	if _, err := reopened.GetRunAppend("r1", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn batch readable: %v", err)
	}
	// The next append takes seq 1, atomically replacing the orphan.
	seq, err := reopened.AppendRun("r1", []byte(`committed-1`))
	if err != nil || seq != 1 {
		t.Fatalf("AppendRun after torn append = %d, %v", seq, err)
	}
	data, err := reopened.GetRunAppend("r1", 1)
	if err != nil || string(data) != "committed-1" {
		t.Fatalf("GetRunAppend(1) = %q, %v; the orphan must be gone", data, err)
	}
}

// TestNoTempLeftovers verifies atomic writes clean up after themselves
// and that listing skips anything that is not a committed entry.
func TestNoTempLeftovers(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.PutSpec("wf", []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		if err := s.PutRun("r", "wf", []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	var leftovers []string
	err = filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.Contains(d.Name(), ".tmp-") {
			leftovers = append(leftovers, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

// TestOpenSweepsAbandonedTempFiles: a kill -9 between CreateTemp and
// rename strands a temp file; the next Open must clear it while leaving
// committed entries alone.
func TestOpenSweepsAbandonedTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSpec("wf", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	stranded := []string{
		filepath.Join(dir, "specs", "wf.json.tmp-123"),
		filepath.Join(dir, "runs", "r.json.tmp-456"),
		filepath.Join(dir, "manifest.json.tmp-789"),
	}
	for _, p := range stranded {
		if err := os.WriteFile(p, []byte(`partial`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	for _, p := range stranded {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s survived the sweep", p)
		}
	}
	if got, err := s.GetSpec("wf"); err != nil || string(got) != `{}` {
		t.Fatalf("committed spec damaged by sweep: %q, %v", got, err)
	}
}

// Regression: names are opaque strings, and url.PathEscape leaves '.'
// and '-' alone, so a committed entry legitimately named "build.tmp-2026"
// lands on disk as "build.tmp-2026.json" — the sweep must not mistake it
// for a writeAtomic leftover and delete it on the next Open.
func TestSweepSparesCommittedNamesContainingTmpMarker(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const name = "build.tmp-2026"
	if err := s.PutSpec(name, []byte(`{"spec":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun(name, name, []byte(`{"run":true}`)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s2.GetSpec(name); err != nil || string(got) != `{"spec":true}` {
		t.Fatalf("committed spec swept on reopen: %q, %v", got, err)
	}
	if spec, got, err := s2.GetRun(name); err != nil || spec != name || string(got) != `{"run":true}` {
		t.Fatalf("committed run swept on reopen: spec=%q data=%q err=%v", spec, got, err)
	}
}

func TestReopenSeesContents(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSpec("wf", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun("r1", "wf", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	// A second process opening the same directory sees the committed state.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	specs, _ := s2.SpecNames()
	runs, _ := s2.RunNames()
	if len(specs) != 1 || len(runs) != 1 {
		t.Fatalf("reopened store: specs=%v runs=%v", specs, runs)
	}
}

func TestEmptyNamesRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSpec("", nil); err == nil {
		t.Error("empty spec name accepted")
	}
	if err := s.PutRun("", "wf", nil); err == nil {
		t.Error("empty run name accepted")
	}
	if err := s.PutRun("r", "", nil); err == nil {
		t.Error("empty bound spec name accepted")
	}
}

// TestCompactRunFoldsLog: compaction replaces base+batches with one
// payload at the next epoch, zeroes the batch count, reuses append seq 0,
// and removes the superseded files.
func TestCompactRunFoldsLog(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CompactRun("ghost", []byte(`{}`)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("compact of unknown run = %v, want ErrNotFound", err)
	}
	if err := s.PutRun("r1", "wf", []byte(`base`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.AppendRun("r1", []byte(`b`)); err != nil {
			t.Fatal(err)
		}
	}
	epoch, err := s.CompactRun("r1", []byte(`folded`))
	if err != nil || epoch != 1 {
		t.Fatalf("CompactRun = %d, %v", epoch, err)
	}
	spec, data, err := s.GetRun("r1")
	if err != nil || spec != "wf" || string(data) != "folded" {
		t.Fatalf("GetRun after compaction = (%q, %q, %v)", spec, data, err)
	}
	if m, _ := s.Appends(); m["r1"] != 0 {
		t.Fatalf("Appends after compaction = %v", m)
	}
	if b, _ := s.Bases(); b["r1"] != 1 {
		t.Fatalf("Bases after compaction = %v", b)
	}
	// Superseded files are gone; the reopened store sees only the folded
	// state and growth restarts at seq 0.
	if _, err := os.Stat(filepath.Join(s.Dir(), "runs", "r1.json")); !errors.Is(err, os.ErrNotExist) {
		t.Error("old epoch-0 base survived compaction")
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "appends", "r1.0.json")); !errors.Is(err, os.ErrNotExist) {
		t.Error("folded batch file survived compaction")
	}
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, data, err := s2.GetRun("r1"); err != nil || string(data) != "folded" {
		t.Fatalf("reopened GetRun = (%q, %v)", data, err)
	}
	if seq, err := s2.AppendRun("r1", []byte(`after`)); err != nil || seq != 0 {
		t.Fatalf("post-compaction AppendRun = %d, %v", seq, err)
	}
	// A second compaction moves to epoch 2.
	if epoch, err := s2.CompactRun("r1", []byte(`folded2`)); err != nil || epoch != 2 {
		t.Fatalf("second CompactRun = %d, %v", epoch, err)
	}
}

// TestTornCompactionInvisible: a crash between the new-base write and the
// manifest switch leaves the old base and the full append log in force.
func TestTornCompactionInvisible(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun("r1", "wf", []byte(`base`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendRun("r1", []byte(`batch0`)); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: the epoch-1 base lands, the manifest never
	// switches.
	orphan := filepath.Join(s.Dir(), "bases", "r1.1.json")
	if err := os.WriteFile(orphan, []byte(`torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, data, err := s2.GetRun("r1"); err != nil || string(data) != "base" {
		t.Fatalf("GetRun after torn compaction = (%q, %v), want the old base", data, err)
	}
	if m, _ := s2.Appends(); m["r1"] != 1 {
		t.Fatalf("Appends after torn compaction = %v, want r1:1", m)
	}
	// The next compaction retakes epoch 1, atomically replacing the
	// orphan.
	if epoch, err := s2.CompactRun("r1", []byte(`folded`)); err != nil || epoch != 1 {
		t.Fatalf("CompactRun after torn compaction = %d, %v", epoch, err)
	}
	if _, data, _ := s2.GetRun("r1"); string(data) != "folded" {
		t.Fatalf("GetRun = %q after recovery compaction", data)
	}
}

// TestAmbiguousCommitWedgesStore: a directory fsync failing after the
// rename applied means memory and disk may disagree about what is
// committed; the store must refuse further mutations (reads keep working)
// until reopened.
func TestAmbiguousCommitWedgesStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun("r1", "wf", []byte(`base`)); err != nil {
		t.Fatal(err)
	}
	fail := true
	orig := FsyncDir
	FsyncDir = func(dir string) error {
		if fail {
			return fmt.Errorf("injected fsync failure")
		}
		return orig(dir)
	}
	defer func() { FsyncDir = orig }()

	_, err = s.AppendRun("r1", []byte(`batch`))
	if err == nil || !strings.Contains(err.Error(), "ambiguous commit") {
		t.Fatalf("append with failing dir fsync = %v, want ambiguous-commit error", err)
	}
	fail = false
	// Every further mutation is refused — continuing on an unknowable
	// disk state is how histories diverge — while reads still serve.
	if _, err := s.AppendRun("r1", []byte(`b2`)); !errors.Is(err, ErrWedged) {
		t.Fatalf("append on wedged store = %v, want ErrWedged", err)
	}
	if err := s.PutSpec("wf", []byte(`{}`)); !errors.Is(err, ErrWedged) {
		t.Fatalf("PutSpec on wedged store = %v, want ErrWedged", err)
	}
	if err := s.PutRun("r2", "wf", []byte(`{}`)); !errors.Is(err, ErrWedged) {
		t.Fatalf("PutRun on wedged store = %v, want ErrWedged", err)
	}
	if _, err := s.CompactRun("r1", []byte(`{}`)); !errors.Is(err, ErrWedged) {
		t.Fatalf("CompactRun on wedged store = %v, want ErrWedged", err)
	}
	if _, data, err := s.GetRun("r1"); err != nil || string(data) != "base" {
		t.Fatalf("read on wedged store = (%q, %v); reads must keep working", data, err)
	}
	// Reopening re-reads the disk state and recovers.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.AppendRun("r1", []byte(`b3`)); err != nil {
		t.Fatalf("append after reopen = %v", err)
	}
}
