package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSpecRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSpec("wf", []byte(`{"grammar":1}`)); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetSpec("wf")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"grammar":1}` {
		t.Fatalf("GetSpec = %q", got)
	}
	if !s.HasSpec("wf") || s.HasSpec("ghost") {
		t.Error("HasSpec wrong")
	}
	if _, err := s.GetSpec("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing spec error = %v, want ErrNotFound", err)
	}
	// A re-save replaces the payload (idempotent persistence).
	if err := s.PutSpec("wf", []byte(`{"grammar":2}`)); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.GetSpec("wf"); string(got) != `{"grammar":2}` {
		t.Fatalf("after re-save GetSpec = %q", got)
	}
}

func TestRunRoundTripAndManifest(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun("r1", "wf", []byte(`{"nodes":[]}`)); err != nil {
		t.Fatal(err)
	}
	spec, data, err := s.GetRun("r1")
	if err != nil {
		t.Fatal(err)
	}
	if spec != "wf" || string(data) != `{"nodes":[]}` {
		t.Fatalf("GetRun = (%q, %q)", spec, data)
	}
	if !s.HasRun("r1") || s.HasRun("ghost") {
		t.Error("HasRun wrong")
	}
	if _, _, err := s.GetRun("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing run error = %v, want ErrNotFound", err)
	}
	m, err := s.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m["r1"] != "wf" {
		t.Fatalf("Runs = %v", m)
	}
}

// TestEscapedNames puts names that are hostile as filenames — path
// separators, spaces, dots — through the full save/list/load cycle.
func TestEscapedNames(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a/b", "a b", "..", "weird%2Fname", "ünïcode"}
	for _, n := range names {
		if err := s.PutSpec(n, []byte(`{}`)); err != nil {
			t.Fatalf("PutSpec(%q): %v", n, err)
		}
		if err := s.PutRun(n, n, []byte(`{}`)); err != nil {
			t.Fatalf("PutRun(%q): %v", n, err)
		}
	}
	specs, err := s.SpecNames()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != len(names) {
		t.Fatalf("SpecNames = %v, want %d names", specs, len(names))
	}
	for _, n := range names {
		if _, err := s.GetSpec(n); err != nil {
			t.Errorf("GetSpec(%q): %v", n, err)
		}
		if spec, _, err := s.GetRun(n); err != nil || spec != n {
			t.Errorf("GetRun(%q) = (%q, %v)", n, spec, err)
		}
	}
	// No escaped name may climb out of the store's directories.
	entries, err := os.ReadDir(filepath.Join(s.Dir(), "specs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(names) {
		t.Fatalf("specs dir holds %d files, want %d", len(entries), len(names))
	}
}

// TestOrphanRunInvisible checks the manifest is the commit point: a run
// file without a manifest entry (a crash between the two PutRun writes)
// is not surfaced by any read path.
func TestOrphanRunInvisible(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun("committed", "wf", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(s.Dir(), "runs", "orphan.json")
	if err := os.WriteFile(orphan, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := s.RunNames()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "committed" {
		t.Fatalf("RunNames = %v; the orphan must stay invisible", names)
	}
	if s.HasRun("orphan") {
		t.Error("HasRun sees the orphan")
	}
	if _, _, err := s.GetRun("orphan"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetRun(orphan) = %v, want ErrNotFound", err)
	}
}

// TestNoTempLeftovers verifies atomic writes clean up after themselves
// and that listing skips anything that is not a committed entry.
func TestNoTempLeftovers(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.PutSpec("wf", []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		if err := s.PutRun("r", "wf", []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	var leftovers []string
	err = filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.Contains(d.Name(), ".tmp-") {
			leftovers = append(leftovers, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

// TestOpenSweepsAbandonedTempFiles: a kill -9 between CreateTemp and
// rename strands a temp file; the next Open must clear it while leaving
// committed entries alone.
func TestOpenSweepsAbandonedTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSpec("wf", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	stranded := []string{
		filepath.Join(dir, "specs", "wf.json.tmp-123"),
		filepath.Join(dir, "runs", "r.json.tmp-456"),
		filepath.Join(dir, "manifest.json.tmp-789"),
	}
	for _, p := range stranded {
		if err := os.WriteFile(p, []byte(`partial`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	for _, p := range stranded {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s survived the sweep", p)
		}
	}
	if got, err := s.GetSpec("wf"); err != nil || string(got) != `{}` {
		t.Fatalf("committed spec damaged by sweep: %q, %v", got, err)
	}
}

// Regression: names are opaque strings, and url.PathEscape leaves '.'
// and '-' alone, so a committed entry legitimately named "build.tmp-2026"
// lands on disk as "build.tmp-2026.json" — the sweep must not mistake it
// for a writeAtomic leftover and delete it on the next Open.
func TestSweepSparesCommittedNamesContainingTmpMarker(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const name = "build.tmp-2026"
	if err := s.PutSpec(name, []byte(`{"spec":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun(name, name, []byte(`{"run":true}`)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s2.GetSpec(name); err != nil || string(got) != `{"spec":true}` {
		t.Fatalf("committed spec swept on reopen: %q, %v", got, err)
	}
	if spec, got, err := s2.GetRun(name); err != nil || spec != name || string(got) != `{"run":true}` {
		t.Fatalf("committed run swept on reopen: spec=%q data=%q err=%v", spec, got, err)
	}
}

func TestReopenSeesContents(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSpec("wf", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun("r1", "wf", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	// A second process opening the same directory sees the committed state.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	specs, _ := s2.SpecNames()
	runs, _ := s2.RunNames()
	if len(specs) != 1 || len(runs) != 1 {
		t.Fatalf("reopened store: specs=%v runs=%v", specs, runs)
	}
}

func TestEmptyNamesRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSpec("", nil); err == nil {
		t.Error("empty spec name accepted")
	}
	if err := s.PutRun("", "wf", nil); err == nil {
		t.Error("empty run name accepted")
	}
	if err := s.PutRun("r", "", nil); err == nil {
		t.Error("empty bound spec name accepted")
	}
}
