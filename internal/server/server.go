// Package server exposes a Catalog over HTTP/JSON — the paper's serving
// scenario: provenance labels are computed once at derivation time, then
// many clients answer many queries from stored labels alone.
//
// Endpoints (all JSON):
//
//	POST /v1/specs             register a specification   {"name", "spec"}
//	GET  /v1/specs             list specifications
//	POST /v1/runs              upload or derive a run     {"name", "spec", "run"|"derive"}
//	GET  /v1/runs              list runs
//	POST /v1/runs/{name}/edges grow a run by one batch    {"nodes"?, "edges"?}
//	POST /v1/runs/{name}/compact fold the run's append log into one stored base
//	POST /v1/evaluate          full evaluation on one run {"run", "query", "count_only"?, "limit"?, "offset"?}
//	POST /v1/explain           plan report, no evaluation {"run", "query"}
//	POST /v1/pairwise          one pair on one run        {"run", "query", "from", "to"}
//	POST /v1/batch             runs × queries fan-out     {"runs"?, "queries", "count_only"?}
//	GET  /v1/snapshot          durable-store contents (what a restart restores)
//	GET  /healthz              liveness (never limited); 503 "wedged" when the
//	                           durable store refused further mutations
//	GET  /statsz               plan-cache / worker-pool / request metrics,
//	                           uptime and build info (never limited)
//	GET  /metrics              Prometheus text exposition (never limited)
//
// Every request is counted, timed and (optionally) logged: per-route
// request counters and latency histograms land in the server's metrics
// registry (Options.Metrics, the process-wide default registry unless
// overridden), and Options.Logger, when set, emits one structured log
// line per request with a request id that is also returned in the
// X-Request-Id response header.
//
// Errors share one shape: {"error": {"code": "...", "message": "..."}}.
// When the catalog has a durable store attached (rpqd -data-dir), every
// successful POST /v1/specs and POST /v1/runs is committed to disk before
// the 201 is written; a persist failure leaves the catalog unchanged and
// answers 500 store_failed. The handler enforces a bounded number of
// in-flight requests (excess
// requests are rejected immediately with 429, protecting latency under
// overload) and a per-request timeout (503 on expiry).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"provrpq"
	"provrpq/internal/metrics"
)

// DefaultTimeout bounds one request's total handling time.
const DefaultTimeout = 30 * time.Second

// DefaultMaxInFlight bounds concurrently-served requests.
const DefaultMaxInFlight = 64

// DefaultMaxBodyBytes bounds one request body (runs of millions of edges
// fit comfortably; unbounded bodies would let one client exhaust memory).
const DefaultMaxBodyBytes = 1 << 28

// Streaming-ingestion defaults (see Options and stream.go).
const (
	// DefaultStreamFlushRecords bounds a streaming-ingest group by record
	// count.
	DefaultStreamFlushRecords = 512
	// DefaultStreamFlushInterval bounds how long a partially-filled group
	// may sit before it is committed.
	DefaultStreamFlushInterval = 150 * time.Millisecond
	// DefaultMaxRecordBytes bounds one NDJSON record.
	DefaultMaxRecordBytes = 1 << 20
	// DefaultMaxWatchers bounds concurrently-open standing-query streams.
	DefaultMaxWatchers = 64
	// DefaultMaxStreams bounds concurrently-open ingest streams.
	DefaultMaxStreams = 16
)

// Options configure a Server.
type Options struct {
	// Timeout bounds one request's handling time (0 selects DefaultTimeout,
	// negative disables the limit).
	Timeout time.Duration
	// MaxInFlight bounds concurrently-served requests (0 selects
	// DefaultMaxInFlight, negative disables the limit).
	MaxInFlight int
	// MaxBodyBytes bounds one JSON request body; exceeding it answers 413
	// request_too_large (0 selects DefaultMaxBodyBytes). Streaming-ingest
	// bodies are unbounded in total and bounded per record instead (see
	// MaxRecordBytes).
	MaxBodyBytes int64
	// StreamFlushRecords bounds a streaming-ingest group: a flush commits
	// once this many records are buffered (0 selects
	// DefaultStreamFlushRecords).
	StreamFlushRecords int
	// StreamFlushInterval commits a partially-filled ingest group after
	// this long, so a slow feed still becomes durable (and visible to
	// standing queries) promptly. 0 selects DefaultStreamFlushInterval;
	// negative disables the timer (groups flush on size and EOF only).
	StreamFlushInterval time.Duration
	// MaxRecordBytes bounds one NDJSON record on the ingest stream;
	// exceeding it answers 413 request_too_large (0 selects
	// DefaultMaxRecordBytes).
	MaxRecordBytes int
	// MaxWatchers bounds concurrently-open standing-query (SSE) streams;
	// excess registrations answer 429 (0 selects DefaultMaxWatchers,
	// negative disables the limit).
	MaxWatchers int
	// MaxStreams bounds concurrently-open NDJSON ingest streams; excess
	// streams answer 429 (0 selects DefaultMaxStreams, negative disables
	// the limit).
	MaxStreams int
	// Metrics is the registry request counters, latency histograms and
	// catalog gauges register into; nil selects the process-wide default
	// registry (which /metrics then also exposes for every other layer —
	// engine, planner, store).
	Metrics *metrics.Registry
	// Logger, when set, receives one structured log line per request
	// (request id, route, status, duration).
	Logger *slog.Logger
}

// Server serves a Catalog over HTTP. Create with New, mount via Handler.
type Server struct {
	cat          *provrpq.Catalog
	timeout      time.Duration
	maxInFlight  int
	maxBodyBytes int64
	sem          chan struct{}
	reg          *metrics.Registry
	log          *slog.Logger
	start        time.Time

	// Streaming-ingest and standing-query bounds (see Options).
	flushRecords  int
	flushInterval time.Duration
	maxRecord     int
	maxWatchers   int
	maxStreams    int

	inFlight atomic.Int64  // handlers currently doing work (held across a timeout)
	reqSeq   atomic.Uint64 // request-id source
	watchers atomic.Int64  // open standing-query (SSE) streams
	streams  atomic.Int64  // open NDJSON ingest streams

	mRequests   *metrics.Counter      // every request reaching the JSON routes, admitted or not
	mRejected   *metrics.Counter      // turned away by the in-flight limit (a subset of requests)
	mFailed     *metrics.Counter      // error responses from routed handlers (rejections and timeouts excluded)
	mRouteTotal *metrics.CounterVec   // responses by (route, status code), all routes
	mLatency    *metrics.HistogramVec // request latency by route, all routes
	mRunGen     *metrics.GaugeVec     // per-run growth generation, synced at scrape time

	mIngestRecords *metrics.CounterVec // NDJSON records accepted, by kind (node, edge)
	mIngestBatches *metrics.Counter    // ingest groups committed through the append path
	mWatchDeltas   *metrics.Counter    // delta events written to standing-query subscribers
	mWatchDropped  *metrics.Counter    // watchers dropped for lagging behind the append rate

	// testDelay, when set (tests only), runs inside the timeout scope
	// before every routed request, making deadline expiry deterministic.
	testDelay func()
}

// New returns a server over the catalog.
func New(cat *provrpq.Catalog, opts Options) *Server {
	s := &Server{
		cat:           cat,
		timeout:       opts.Timeout,
		maxInFlight:   opts.MaxInFlight,
		maxBodyBytes:  opts.MaxBodyBytes,
		flushRecords:  opts.StreamFlushRecords,
		flushInterval: opts.StreamFlushInterval,
		maxRecord:     opts.MaxRecordBytes,
		maxWatchers:   opts.MaxWatchers,
		maxStreams:    opts.MaxStreams,
		reg:           opts.Metrics,
		log:           opts.Logger,
		start:         time.Now(),
	}
	if s.timeout == 0 {
		s.timeout = DefaultTimeout
	}
	if s.maxInFlight == 0 {
		s.maxInFlight = DefaultMaxInFlight
	}
	if s.maxInFlight > 0 {
		s.sem = make(chan struct{}, s.maxInFlight)
	}
	if s.maxBodyBytes == 0 {
		s.maxBodyBytes = DefaultMaxBodyBytes
	}
	if s.flushRecords <= 0 {
		s.flushRecords = DefaultStreamFlushRecords
	}
	if s.flushInterval == 0 {
		s.flushInterval = DefaultStreamFlushInterval
	}
	if s.maxRecord <= 0 {
		s.maxRecord = DefaultMaxRecordBytes
	}
	if s.maxWatchers == 0 {
		s.maxWatchers = DefaultMaxWatchers
	}
	if s.maxStreams == 0 {
		s.maxStreams = DefaultMaxStreams
	}
	if s.reg == nil {
		s.reg = metrics.Default()
	}
	s.mRequests = s.reg.Counter("provrpq_http_requests_total",
		"Requests reaching the JSON routes, admitted or not.")
	s.mRejected = s.reg.Counter("provrpq_http_rejected_total",
		"Requests turned away by the in-flight limit (a subset of requests_total).")
	s.mFailed = s.reg.Counter("provrpq_http_failed_total",
		"Error responses from routed handlers (rejections and timeouts excluded).")
	s.mRouteTotal = s.reg.CounterVec("provrpq_http_route_requests_total",
		"Responses by route and status code, every route included.", "route", "code")
	s.mLatency = s.reg.HistogramVec("provrpq_http_request_seconds",
		"Request latency by route, as written to the wire.",
		metrics.LatencyBuckets, "route")
	s.mRunGen = s.reg.GaugeVec("provrpq_run_generation",
		"Growth batches applied to each served run (synced at scrape time).", "run")
	s.mIngestRecords = s.reg.CounterVec("provrpq_ingest_records_total",
		"NDJSON streaming-ingest records accepted, by kind (node, edge) — the sustained ingest rate.", "kind")
	s.mIngestBatches = s.reg.Counter("provrpq_ingest_batches_total",
		"Streaming-ingest groups committed through the append path (records/batches is the grouping factor).")
	s.mWatchDeltas = s.reg.Counter("provrpq_watch_deltas_total",
		"Delta events written to standing-query (SSE) subscribers.")
	s.mWatchDropped = s.reg.Counter("provrpq_watch_dropped_total",
		"Standing-query subscribers dropped for lagging behind the append rate.")
	// Callback metrics sample live state at scrape time; re-registration
	// rebinds them, so the newest server over a shared registry wins.
	s.reg.Func("provrpq_http_in_flight", "Handlers currently doing work (held across a timeout).",
		metrics.KindGauge, func() float64 { return float64(s.inFlight.Load()) })
	s.reg.Func("provrpq_watchers", "Open standing-query (SSE) streams.",
		metrics.KindGauge, func() float64 { return float64(s.watchers.Load()) })
	s.reg.Func("provrpq_ingest_streams", "Open NDJSON ingest streams.",
		metrics.KindGauge, func() float64 { return float64(s.streams.Load()) })
	s.reg.Func("provrpq_uptime_seconds", "Seconds since the server was created.",
		metrics.KindGauge, func() float64 { return time.Since(s.start).Seconds() })
	s.reg.Func("provrpq_catalog_specs", "Registered specifications.",
		metrics.KindGauge, func() float64 { return float64(s.cat.Stats().Specs) })
	s.reg.Func("provrpq_catalog_runs", "Registered runs.",
		metrics.KindGauge, func() float64 { return float64(s.cat.Stats().Runs) })
	s.reg.Func("provrpq_plan_cache_hits_total", "Compiled-plan cache hits.",
		metrics.KindCounter, func() float64 { return float64(s.cat.Stats().PlanCache.Hits) })
	s.reg.Func("provrpq_plan_cache_misses_total", "Compiled-plan cache misses.",
		metrics.KindCounter, func() float64 { return float64(s.cat.Stats().PlanCache.Misses) })
	s.reg.Func("provrpq_plan_cache_evictions_total", "Compiled-plan cache evictions.",
		metrics.KindCounter, func() float64 { return float64(s.cat.Stats().PlanCache.Evictions) })
	s.reg.Func("provrpq_plan_cache_plans", "Resident compiled plans.",
		metrics.KindGauge, func() float64 { return float64(s.cat.Stats().PlanCache.Plans) })
	return s
}

// Handler returns the fully-wrapped HTTP handler: JSON routes behind the
// in-flight limiter and the request timeout, with /healthz outside both so
// liveness probes succeed even under overload.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/specs", s.handleRegisterSpec)
	mux.HandleFunc("GET /v1/specs", s.handleListSpecs)
	mux.HandleFunc("POST /v1/runs", s.handleAddRun)
	mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	mux.HandleFunc("POST /v1/runs/{name}/edges", s.handleAppendEdges)
	mux.HandleFunc("POST /v1/runs/{name}/compact", s.handleCompactRun)
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	mux.HandleFunc("POST /v1/pairwise", s.handlePairwise)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, http.StatusNotFound, "not_found", "no such endpoint: "+r.URL.Path)
	})

	var inner http.Handler = mux
	if s.testDelay != nil {
		base, delay := inner, s.testDelay
		inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			delay()
			base.ServeHTTP(w, r)
		})
	}
	// work runs on the TimeoutHandler's handler goroutine, so its defers
	// fire when the routed handler actually finishes — a timed-out request
	// keeps holding its in-flight slot while its evaluation keeps running
	// (evaluation is not cancellable); the bound limits real concurrent
	// work, not just unanswered connections.
	work := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.sem != nil {
			defer func() { <-s.sem }()
		}
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		inner.ServeHTTP(w, r)
	}))
	if s.timeout > 0 {
		work = http.TimeoutHandler(work, s.timeout,
			`{"error":{"code":"timeout","message":"request exceeded the server's handling deadline"}}`)
	}
	limited := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Every response below is JSON, including the TimeoutHandler's 503
		// body (which writes without setting a Content-Type itself);
		// handlers that produce something else override this.
		w.Header().Set("Content-Type", "application/json")
		s.mRequests.Inc()
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				// Released by the work wrapper when the handler finishes.
			default:
				s.mRejected.Inc()
				// Not routed through writeError: a rejection is tallied in
				// rejected, never double-counted in failed.
				var body errorBody
				body.Error.Code = "overloaded"
				body.Error.Message = fmt.Sprintf("server is at its in-flight request limit (%d)", s.maxInFlight)
				s.writeJSON(w, http.StatusTooManyRequests, body)
				return
			}
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
		work.ServeHTTP(w, r)
	}))

	// healthz, statsz and metrics live outside the limiter and the
	// timeout: probes must succeed and metrics must stay scrapeable
	// precisely when the server is saturated — all three are reads of
	// atomic state. The two long-lived routes — NDJSON ingest streams and
	// standing-query SSE subscriptions — live here too: the TimeoutHandler
	// would kill them mid-stream (and buffer SSE writes), and MaxBytesReader
	// would cap an ingest stream's total size; each carries its own bound
	// (MaxStreams / MaxWatchers, per-record limits) instead.
	outer := http.NewServeMux()
	outer.HandleFunc("GET /healthz", s.handleHealth)
	outer.HandleFunc("GET /statsz", s.handleStats)
	outer.HandleFunc("GET /metrics", s.handleMetrics)
	outer.HandleFunc("POST /v1/runs/{name}/stream", s.handleStreamRun)
	outer.HandleFunc("POST /v1/watch", s.handleWatch)
	outer.Handle("/", limited)
	return s.instrument(outer)
}

// instrument wraps the whole route tree with per-request accounting:
// the (route, status) counter and per-route latency histogram, the
// X-Request-Id header, and one structured log line when a logger is
// configured. It observes the response as written to the wire — a
// request the TimeoutHandler answered 503 for counts as 503 even
// though its handler is still running.
func (s *Server) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("%d-%06d", s.start.UnixMilli(), s.reqSeq.Add(1))
		w.Header().Set("X-Request-Id", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		h.ServeHTTP(rec, r)
		d := time.Since(begin)
		route := routeOf(r)
		s.mRouteTotal.With(route, strconv.Itoa(rec.status)).Inc()
		s.mLatency.With(route).Observe(d.Seconds())
		if s.log != nil {
			s.log.Info("request",
				"req_id", id,
				"method", r.Method,
				"path", r.URL.Path,
				"route", route,
				"status", rec.status,
				"bytes", rec.bytes,
				"duration_ms", float64(d.Microseconds())/1000,
				"remote", r.RemoteAddr)
		}
	})
}

// statusRecorder captures the status code and body size a handler chain
// wrote, so instrumentation reports the wire response.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status, r.wrote = code, true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer so SSE handlers still see an
// http.Flusher through the instrumentation wrapper (an embedded interface
// does not promote optional methods).
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// routeOf maps a request to a bounded route label: named routes keep
// their pattern (path parameters collapsed to their placeholder, so one
// run name per request cannot grow the label space), everything else is
// "other".
func routeOf(r *http.Request) string {
	p := r.URL.Path
	if strings.HasPrefix(p, "/v1/runs/") {
		switch {
		case strings.HasSuffix(p, "/edges"):
			return r.Method + " /v1/runs/{name}/edges"
		case strings.HasSuffix(p, "/compact"):
			return r.Method + " /v1/runs/{name}/compact"
		case strings.HasSuffix(p, "/stream"):
			return r.Method + " /v1/runs/{name}/stream"
		}
		return "other"
	}
	switch p {
	case "/v1/specs", "/v1/runs", "/v1/evaluate", "/v1/explain", "/v1/pairwise",
		"/v1/batch", "/v1/snapshot", "/v1/watch", "/healthz", "/statsz", "/metrics":
		return r.Method + " " + p
	}
	return "other"
}

// ---- request / response shapes ----

type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

type registerSpecRequest struct {
	Name string          `json:"name"`
	Spec json.RawMessage `json:"spec"`
}

type specInfo struct {
	Name string   `json:"name"`
	Size int      `json:"size"`
	Tags []string `json:"tags"`
	Runs []string `json:"runs,omitempty"`
}

type deriveRequest struct {
	Seed              int64          `json:"seed"`
	TargetEdges       int            `json:"target_edges"`
	MaxRecursionDepth int            `json:"max_recursion_depth"`
	FavorModule       string         `json:"favor_module"`
	FavorModules      []string       `json:"favor_modules"`
	FavorCaps         map[string]int `json:"favor_caps"`
}

type addRunRequest struct {
	Name   string          `json:"name"`
	Spec   string          `json:"spec"`
	Run    json.RawMessage `json:"run"`
	Derive *deriveRequest  `json:"derive"`
}

type runInfo struct {
	Name  string `json:"name"`
	Spec  string `json:"spec"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	// Version counts the growth batches applied to the run (stable across
	// restarts of a durable catalog).
	Version int `json:"version"`
}

// The append request body is one growth batch in the run-upload wire
// shapes, {"nodes": [...], "edges": [...]}, decoded directly by the run
// codec.
type appendResponse struct {
	Run           string `json:"run"`
	Spec          string `json:"spec"`
	Version       int    `json:"version"`
	Nodes         int    `json:"nodes"`
	Edges         int    `json:"edges"`
	AppendedNodes int    `json:"appended_nodes"`
	AppendedEdges int    `json:"appended_edges"`
	Frontier      int    `json:"frontier"`
}

type evaluateRequest struct {
	Run       string `json:"run"`
	Query     string `json:"query"`
	CountOnly bool   `json:"count_only"`
	// Limit/Offset page the pair list: pairs carries the window
	// [offset, offset+limit) of the full result, whose size is always
	// reported in total (and count). Unset limit returns every pair, as
	// before paging existed.
	Limit  *int `json:"limit,omitempty"`
	Offset int  `json:"offset,omitempty"`
}

type pairJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
}

type evaluateResponse struct {
	Run   string `json:"run"`
	Query string `json:"query"`
	Safe  bool   `json:"safe"`
	// Strategy is the plan that actually answered: "rpl", "optrpl" or
	// "seeded" for safe queries, "decompose" for the unsafe safe-subtree
	// decomposition.
	Strategy string `json:"strategy"`
	// Count and Total both report the full match count — Count predates
	// paging and keeps its meaning for old clients; pagers read Total and
	// Offset to walk the windows.
	Count  int `json:"count"`
	Total  int `json:"total"`
	Offset int `json:"offset,omitempty"`
	// Pairs is a pointer so paging can distinguish "no pair list requested"
	// (count_only: field absent) from "the requested window is empty"
	// (offset at or past the end: "pairs": []) — a pager walking windows
	// must see the empty array, not a missing field or an error.
	Pairs *[]pairJSON `json:"pairs,omitempty"`
}

type explainRequest struct {
	Run   string `json:"run"`
	Query string `json:"query"`
}

type planCostsJSON struct {
	RPL    float64 `json:"rpl"`
	OptRPL float64 `json:"optrpl"`
	Seeded float64 `json:"seeded"`
}

type explainResponse struct {
	Run      string `json:"run"`
	Query    string `json:"query"`
	Safe     bool   `json:"safe"`
	Strategy string `json:"strategy"`
	SeedTag  string `json:"seed_tag,omitempty"`
	// SeedCount accompanies every reported seed tag — zero is meaningful
	// (the required tag is absent from the run, so the query matches
	// nothing), so it must not be dropped by omitempty.
	SeedCount *int           `json:"seed_count,omitempty"`
	Reverse   bool           `json:"reverse,omitempty"`
	Costs     *planCostsJSON `json:"costs,omitempty"`
	// UnitNanos carries the per-decode-unit costs (nanoseconds) the
	// comparison weighted the estimates by; CostSource reports whether
	// the chosen strategy's came from "measured" timings (warm EWMA of
	// observed evaluations) or the "static" constant.
	UnitNanos       *planCostsJSON `json:"unit_nanos,omitempty"`
	CostSource      string         `json:"cost_source,omitempty"`
	SafeSubtrees    []string       `json:"safe_subtrees,omitempty"`
	RelationalNodes int            `json:"relational_nodes,omitempty"`
}

type pairwiseRequest struct {
	Run   string `json:"run"`
	Query string `json:"query"`
	From  string `json:"from"`
	To    string `json:"to"`
}

type pairwiseResponse struct {
	Run   string `json:"run"`
	Query string `json:"query"`
	Safe  bool   `json:"safe"`
	Match bool   `json:"match"`
}

type batchRequest struct {
	Runs      []string `json:"runs"`
	Queries   []string `json:"queries"`
	CountOnly bool     `json:"count_only"`
}

type batchItem struct {
	Run   string     `json:"run"`
	Query string     `json:"query"`
	Count int        `json:"count"`
	Pairs []pairJSON `json:"pairs,omitempty"`
	Error string     `json:"error,omitempty"`
}

type batchResponse struct {
	Results []batchItem `json:"results"`
}

type cacheStatsJSON struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Plans     int    `json:"plans"`
}

type statsResponse struct {
	Specs       int            `json:"specs"`
	Runs        int            `json:"runs"`
	PlanCache   cacheStatsJSON `json:"plan_cache"`
	Workers     int            `json:"workers"`
	Requests    uint64         `json:"requests"`
	Rejected    uint64         `json:"rejected"`
	Failed      uint64         `json:"failed"`
	InFlight    int64          `json:"in_flight"`
	MaxInFlight int            `json:"max_in_flight"`
	TimeoutMS   int64          `json:"timeout_ms"`
	// UptimeSeconds, GoVersion and Revision describe the serving process;
	// Revision is the VCS commit baked in by the toolchain, when present.
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	Revision      string  `json:"vcs_revision,omitempty"`
	// RunGenerations maps each served run to the growth batches applied
	// to it (the same figure the provrpq_run_generation gauge exports).
	RunGenerations map[string]int `json:"run_generations,omitempty"`
}

type snapshotResponse struct {
	Durable bool              `json:"durable"`
	Dir     string            `json:"dir,omitempty"`
	Specs   []string          `json:"specs,omitempty"`
	Runs    map[string]string `json:"runs,omitempty"`    // run -> spec
	Appends map[string]int    `json:"appends,omitempty"` // run -> committed growth batches
}

// ---- handlers ----

// handleHealth answers liveness. A catalog whose durable store has
// wedged — an ambiguous commit failure latched it read-only — reports
// 503 "wedged": the process is up but must be restarted (reopening the
// store re-reads the committed manifest) before it accepts mutations
// again, and a probe that kept reporting ok would hide that.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if st := s.cat.Store(); st != nil && st.Wedged() {
		// Not writeError: a degraded health probe is not a handler failure.
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "wedged"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	cs := s.cat.Stats()
	resp := statsResponse{
		Specs: cs.Specs,
		Runs:  cs.Runs,
		PlanCache: cacheStatsJSON{
			Hits:      cs.PlanCache.Hits,
			Misses:    cs.PlanCache.Misses,
			Evictions: cs.PlanCache.Evictions,
			Plans:     cs.PlanCache.Plans,
		},
		Workers:       cs.Workers,
		Requests:      s.mRequests.Value(),
		Rejected:      s.mRejected.Value(),
		Failed:        s.mFailed.Value(),
		InFlight:      s.inFlight.Load(),
		MaxInFlight:   s.maxInFlight,
		TimeoutMS:     s.timeout.Milliseconds(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		GoVersion:     runtime.Version(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				resp.Revision = kv.Value
			}
		}
	}
	if names := s.cat.RunNames(); len(names) > 0 {
		resp.RunGenerations = make(map[string]int, len(names))
		for _, name := range names {
			if v, ok := s.cat.RunVersion(name); ok {
				resp.RunGenerations[name] = v
			}
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the Prometheus text exposition of the server's
// registry — with the default registry, that is every instrumented
// layer of the process: HTTP routes, evaluation strategies, planner
// timings, store durability counters, boot timings.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.syncRunGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// syncRunGauges refreshes the per-run generation gauges from the
// catalog. Scrape-time sync keeps the catalog free of metrics coupling;
// a run deleted from a future catalog would leave a stale gauge, but
// runs are never deleted today.
func (s *Server) syncRunGauges() {
	for _, name := range s.cat.RunNames() {
		if v, ok := s.cat.RunVersion(name); ok {
			s.mRunGen.With(name).Set(float64(v))
		}
	}
}

// handleSnapshot reports the durable store's committed contents — what a
// restart of the daemon would come back with. A catalog without a store
// answers {"durable": false} so clients can probe for durability.
func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	st := s.cat.Store()
	if st == nil {
		s.writeJSON(w, http.StatusOK, snapshotResponse{Durable: false})
		return
	}
	snap, err := st.Snapshot()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "store_failed", err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, snapshotResponse{
		Durable: true, Dir: snap.Dir, Specs: snap.Specs, Runs: snap.Runs, Appends: snap.Appends,
	})
}

func (s *Server) handleRegisterSpec(w http.ResponseWriter, r *http.Request) {
	var req registerSpecRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Name == "" || len(req.Spec) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", `"name" and "spec" are required`)
		return
	}
	spec := &provrpq.Spec{}
	if err := spec.UnmarshalJSON(req.Spec); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_spec", err.Error())
		return
	}
	if err := s.cat.RegisterSpec(req.Name, spec); err != nil {
		s.writeCatalogError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, specInfo{Name: req.Name, Size: spec.Size(), Tags: spec.Tags()})
}

func (s *Server) handleListSpecs(w http.ResponseWriter, _ *http.Request) {
	var out []specInfo
	for _, name := range s.cat.SpecNames() {
		spec, ok := s.cat.Spec(name)
		if !ok {
			continue
		}
		out = append(out, specInfo{
			Name: name,
			Size: spec.Size(),
			Tags: spec.Tags(),
			Runs: s.cat.RunsOfSpec(name),
		})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"specs": out})
}

func (s *Server) handleAddRun(w http.ResponseWriter, r *http.Request) {
	var req addRunRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Name == "" || req.Spec == "" {
		s.writeError(w, http.StatusBadRequest, "bad_request", `"name" and "spec" are required`)
		return
	}
	if (len(req.Run) == 0) == (req.Derive == nil) {
		s.writeError(w, http.StatusBadRequest, "bad_request", `exactly one of "run" and "derive" is required`)
		return
	}
	spec, ok := s.cat.Spec(req.Spec)
	if !ok {
		s.writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("specification %q is not registered", req.Spec))
		return
	}
	var run *provrpq.Run
	if req.Derive != nil {
		var err error
		run, err = s.cat.DeriveRun(req.Name, req.Spec, provrpq.DeriveOptions{
			Seed:              req.Derive.Seed,
			TargetEdges:       req.Derive.TargetEdges,
			MaxRecursionDepth: req.Derive.MaxRecursionDepth,
			FavorModule:       req.Derive.FavorModule,
			FavorModules:      req.Derive.FavorModules,
			FavorCaps:         req.Derive.FavorCaps,
		})
		if err != nil {
			switch {
			case errors.Is(err, provrpq.ErrAlreadyRegistered):
				s.writeError(w, http.StatusConflict, "conflict", err.Error())
			case errors.Is(err, provrpq.ErrStoreFailed):
				s.writeError(w, http.StatusInternalServerError, "store_failed", err.Error())
			default:
				s.writeError(w, http.StatusBadRequest, "bad_derive", err.Error())
			}
			return
		}
	} else {
		var err error
		run, err = provrpq.DecodeRun(spec, req.Run)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_run", err.Error())
			return
		}
		if err := s.cat.AddRun(req.Name, req.Spec, run); err != nil {
			s.writeCatalogError(w, err)
			return
		}
	}
	s.writeJSON(w, http.StatusCreated, runInfo{
		Name: req.Name, Spec: req.Spec, Nodes: run.NumNodes(), Edges: run.NumEdges(),
	})
}

func (s *Server) handleListRuns(w http.ResponseWriter, _ *http.Request) {
	var out []runInfo
	for _, name := range s.cat.RunNames() {
		run, ok := s.cat.Run(name)
		if !ok {
			continue
		}
		specName, _ := s.cat.RunSpecName(name)
		version, _ := s.cat.RunVersion(name)
		out = append(out, runInfo{Name: name, Spec: specName, Nodes: run.NumNodes(), Edges: run.NumEdges(), Version: version})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"runs": out})
}

// handleCompactRun folds the named run's committed growth batches into a
// single stored base payload, bounding the append log a long-lived run
// accumulates (and the work a restart replays). The served run is
// untouched; its version resets to 0.
func (s *Server) handleCompactRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := s.cat.RunSpecName(name); !ok {
		s.writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("run %q is not registered", name))
		return
	}
	if s.cat.Store() == nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "catalog has no durable store; nothing to compact")
		return
	}
	if err := s.cat.CompactRun(name); err != nil {
		if errors.Is(err, provrpq.ErrStoreFailed) {
			s.writeError(w, http.StatusInternalServerError, "store_failed", err.Error())
		} else {
			s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		}
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"run": name, "version": 0, "compacted": true})
}

// handleAppendEdges grows a run by one batch: POST /v1/runs/{name}/edges
// with the batch as the body. The growth is durable before the response on
// a catalog with a store, and the run's engine is swapped atomically — the
// very next evaluate sees the grown run.
//
// An append is not naturally idempotent (an edges-only batch applied
// twice duplicates its edges), so a client that may retry — after a 503
// timeout the server can still have finished the commit — passes the
// ?expected_version=N query parameter with the version it grew the batch
// against; a mismatch answers 409 conflict with the current version
// instead of double-applying.
func (s *Server) handleAppendEdges(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	expected := -1
	if ev := r.URL.Query().Get("expected_version"); ev != "" {
		n, err := strconv.Atoi(ev)
		if err != nil || n < 0 {
			s.writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("expected_version %q must be a non-negative integer", ev))
			return
		}
		expected = n
	}
	specName, ok := s.cat.RunSpecName(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("run %q is not registered", name))
		return
	}
	spec, ok := s.cat.Spec(specName)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "internal", fmt.Sprintf("run %q is bound to unknown specification %q", name, specName))
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeBodyError(w, err)
		return
	}
	batch, err := provrpq.DecodeBatch(spec, body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_batch", err.Error())
		return
	}
	if batch.NumNodes() == 0 && batch.NumEdges() == 0 {
		s.writeError(w, http.StatusBadRequest, "bad_batch", "empty batch: provide nodes and/or edges")
		return
	}
	var res provrpq.AppendResult
	if expected >= 0 {
		res, err = s.cat.AppendEdgesCAS(name, batch, expected)
	} else {
		res, err = s.cat.AppendEdges(name, batch)
	}
	if err != nil {
		switch {
		case errors.Is(err, provrpq.ErrVersionMismatch):
			s.writeError(w, http.StatusConflict, "conflict", err.Error())
		case errors.Is(err, provrpq.ErrStoreFailed):
			s.writeError(w, http.StatusInternalServerError, "store_failed", err.Error())
		default:
			s.writeError(w, http.StatusBadRequest, "bad_batch", err.Error())
		}
		return
	}
	s.writeJSON(w, http.StatusOK, appendResponse{
		Run:           name,
		Spec:          specName,
		Version:       res.Version,
		Nodes:         res.Run.NumNodes(),
		Edges:         res.Run.NumEdges(),
		AppendedNodes: res.Stats.NewNodes,
		AppendedEdges: res.Stats.NewEdges,
		Frontier:      res.Stats.Frontier,
	})
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req evaluateRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	eng, q, ok := s.resolve(w, req.Run, req.Query)
	if !ok {
		return
	}
	if req.Offset < 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", `"offset" must be >= 0`)
		return
	}
	if req.Limit != nil && *req.Limit < 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", `"limit" must be >= 0`)
		return
	}
	if _, err := eng.IsSafe(q); err != nil {
		// Compilation failures (e.g. a query whose minimal DFA exceeds the
		// supported state count) are the client's query, not our evaluation.
		s.writeError(w, http.StatusBadRequest, "bad_query", err.Error())
		return
	}
	pairs, rep, err := eng.EvaluatePlanned(q)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "evaluate_failed", err.Error())
		return
	}
	total := len(pairs)
	resp := evaluateResponse{
		Run: req.Run, Query: q.String(), Safe: rep.Safe,
		Strategy: strategyName(rep), Count: total, Total: total, Offset: req.Offset,
	}
	if !req.CountOnly {
		// Page the serialized window, not the evaluation: a full pair list
		// is O(n²) in the worst case, and an unbounded response body is
		// what the limit protects clients (and the wire) from. An offset at
		// or past the end is a legal empty window — "pairs": [] with the
		// true total — not an error: a pager's last step naturally lands
		// there.
		window := pairs
		if req.Offset > 0 {
			if req.Offset >= len(window) {
				window = nil
			} else {
				window = window[req.Offset:]
			}
		}
		if req.Limit != nil && *req.Limit < len(window) {
			window = window[:*req.Limit]
		}
		pj := toPairJSON(eng.Run(), window)
		resp.Pairs = &pj
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleExplain returns the evaluation plan for (run, query) without
// evaluating it: the planner's strategy choice, seed tag and cost
// estimates for safe queries, the safe-subtree decomposition for unsafe
// ones.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	eng, q, ok := s.resolve(w, req.Run, req.Query)
	if !ok {
		return
	}
	rep, err := eng.Explain(q)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_query", err.Error())
		return
	}
	resp := explainResponse{
		Run:             req.Run,
		Query:           rep.Query,
		Safe:            rep.Safe,
		Strategy:        strategyName(rep),
		SeedTag:         rep.SeedTag,
		Reverse:         rep.Reverse,
		SafeSubtrees:    rep.SafeSubtrees,
		RelationalNodes: rep.RelationalNodes,
	}
	if rep.SeedTag != "" {
		count := rep.SeedCount
		resp.SeedCount = &count
	}
	if rep.Safe {
		resp.Costs = &planCostsJSON{RPL: rep.CostRPL, OptRPL: rep.CostOptRPL, Seeded: rep.CostSeeded}
		resp.UnitNanos = &planCostsJSON{RPL: rep.UnitNanosRPL, OptRPL: rep.UnitNanosOptRPL, Seeded: rep.UnitNanosSeeded}
		resp.CostSource = rep.CostSource
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// strategyName renders a plan report's strategy for the wire: the unsafe
// decomposition has no single all-pairs strategy, so it reports
// "decompose" rather than Auto's enum name.
func strategyName(rep *provrpq.PlanReport) string {
	if rep.Decomposed {
		return "decompose"
	}
	return rep.Strategy.String()
}

func (s *Server) handlePairwise(w http.ResponseWriter, r *http.Request) {
	var req pairwiseRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	eng, q, ok := s.resolve(w, req.Run, req.Query)
	if !ok {
		return
	}
	u, uok := eng.Run().NodeByName(req.From)
	v, vok := eng.Run().NodeByName(req.To)
	if !uok || !vok {
		missing := req.From
		if uok {
			missing = req.To
		}
		s.writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("node %q not in run %q", missing, req.Run))
		return
	}
	safe, err := eng.IsSafe(q)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_query", err.Error())
		return
	}
	match, err := eng.Pairwise(q, u, v)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "evaluate_failed", err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, pairwiseResponse{Run: req.Run, Query: q.String(), Safe: safe, Match: match})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", `"queries" must be non-empty`)
		return
	}
	queries := make([]*provrpq.Query, len(req.Queries))
	for i, qs := range req.Queries {
		q, err := provrpq.ParseQuery(qs)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_query", fmt.Sprintf("query %d (%q): %v", i, qs, err))
			return
		}
		queries[i] = q
	}
	results := s.cat.EvaluateBatch(req.Runs, queries)
	resp := batchResponse{Results: make([]batchItem, len(results))}
	for i, res := range results {
		item := batchItem{Run: res.Run, Query: res.Query, Count: len(res.Pairs)}
		if res.Err != nil {
			item.Error = res.Err.Error()
		} else if !req.CountOnly {
			if run, ok := s.cat.Run(res.Run); ok {
				item.Pairs = toPairJSON(run, res.Pairs)
			}
		}
		resp.Results[i] = item
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// resolve maps (run name, query string) to an engine and parsed query,
// answering 404/400 itself on failure.
func (s *Server) resolve(w http.ResponseWriter, runName, queryStr string) (*provrpq.Engine, *provrpq.Query, bool) {
	if runName == "" || queryStr == "" {
		s.writeError(w, http.StatusBadRequest, "bad_request", `"run" and "query" are required`)
		return nil, nil, false
	}
	eng, err := s.cat.Engine(runName)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "not_found", err.Error())
		return nil, nil, false
	}
	q, err := provrpq.ParseQuery(queryStr)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_query", err.Error())
		return nil, nil, false
	}
	return eng, q, true
}

func toPairJSON(run *provrpq.Run, pairs []provrpq.Pair) []pairJSON {
	out := make([]pairJSON, len(pairs))
	for i, p := range pairs {
		out[i] = pairJSON{From: run.NodeName(p.From), To: run.NodeName(p.To)}
	}
	return out
}

func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		if isBodyLimit(err) {
			s.writeBodyError(w, err)
			return false
		}
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid request body: "+err.Error())
		return false
	}
	return true
}

// isBodyLimit reports whether a body-read failure is the MaxBytesReader
// limit firing — the client's request is too large, which must surface as
// 413 request_too_large, never a generic 400/500 (a client cannot fix what
// it cannot distinguish).
func isBodyLimit(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

// writeBodyError answers a failed request-body read: 413 request_too_large
// when the body limit fired, otherwise the client's generic 400.
func (s *Server) writeBodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.writeError(w, http.StatusRequestEntityTooLarge, "request_too_large",
			fmt.Sprintf("request body exceeds the server's %d-byte limit", mbe.Limit))
		return
	}
	s.writeError(w, http.StatusBadRequest, "bad_request", "reading request body: "+err.Error())
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeCatalogError maps a catalog registration error: a duplicate name
// is a 409 conflict, a failed store persist is the server's 500 (nothing
// was registered; the client may retry), anything else is the client's
// bad input.
func (s *Server) writeCatalogError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, provrpq.ErrAlreadyRegistered):
		s.writeError(w, http.StatusConflict, "conflict", err.Error())
	case errors.Is(err, provrpq.ErrStoreFailed):
		s.writeError(w, http.StatusInternalServerError, "store_failed", err.Error())
	default:
		s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, message string) {
	s.mFailed.Inc()
	var body errorBody
	body.Error.Code = code
	body.Error.Message = message
	s.writeJSON(w, status, body)
}
