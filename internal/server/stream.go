package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"provrpq"
)

// Streaming ingestion: POST /v1/runs/{name}/stream accepts an unbounded
// NDJSON body — one record per line, each a single node or edge in the
// run-upload wire shapes —
//
//	{"node": {"name": "a:9", "module": "a", "label": "<base64>"}}
//	{"edge": {"From": 3, "To": 12, "Tag": "s"}}
//
// and commits them through the ordinary append path in groups bounded by
// StreamFlushRecords and StreamFlushInterval. Each group is one durable
// batch: crash-wise it is invisible or committed as a whole (the store's
// manifest protocol), and standing-query watchers observe one AppendEvent
// per group. Edge endpoints use the grown run's numbering at the moment
// their group commits — ids at or above the pre-group node count reference
// nodes streamed earlier in the same group, in order.
//
// Backpressure is structural: the line reader hands records to the
// committing loop over an unbuffered channel, so the handler reads the
// request body only as fast as group commits drain. A slow disk slows the
// client down instead of buffering the stream in memory. The body's total
// size is therefore unbounded; each record is bounded by MaxRecordBytes
// (413 request_too_large on violation), and concurrently open streams are
// bounded by MaxStreams (429).
//
// The response is a single JSON summary written at EOF — or, on a
// mid-stream failure, an error that reports how many groups had already
// committed (those stay committed; streaming is not transactional across
// groups).

// streamResponse summarizes a completed ingest stream.
type streamResponse struct {
	Run     string `json:"run"`
	Spec    string `json:"spec"`
	Version int    `json:"version"`
	// Nodes and Edges are the run's totals after the stream.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// StreamedNodes/StreamedEdges/Batches count this stream's contribution.
	StreamedNodes int `json:"streamed_nodes"`
	StreamedEdges int `json:"streamed_edges"`
	Batches       int `json:"batches"`
}

// streamRecord is one NDJSON line: exactly one of the fields is set.
type streamRecord struct {
	Node json.RawMessage `json:"node"`
	Edge json.RawMessage `json:"edge"`
}

func (s *Server) handleStreamRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	specName, ok := s.cat.RunSpecName(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("run %q is not registered", name))
		return
	}
	spec, ok := s.cat.Spec(specName)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "internal", fmt.Sprintf("run %q is bound to unknown specification %q", name, specName))
		return
	}
	s.streams.Add(1)
	defer s.streams.Add(-1)
	if s.maxStreams > 0 && s.streams.Load() > int64(s.maxStreams) {
		s.writeError(w, http.StatusTooManyRequests, "overloaded",
			fmt.Sprintf("server is at its open-ingest-stream limit (%d)", s.maxStreams))
		return
	}

	// The reader goroutine owns the body: Scanner blocks on reads, so the
	// committing loop below must not. Lines flow over an unbuffered channel
	// — that is the backpressure — and the done channel releases the reader
	// if the loop exits early (commit failure, malformed record).
	lines := make(chan []byte)
	done := make(chan struct{})
	defer close(done)
	var scanErr error // written before close(lines); read after it closes
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(r.Body)
		initial := 64 << 10
		if s.maxRecord < initial {
			initial = s.maxRecord
		}
		sc.Buffer(make([]byte, 0, initial), s.maxRecord)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			cp := make([]byte, len(line))
			copy(cp, line)
			select {
			case lines <- cp:
			case <-done:
				return
			}
		}
		scanErr = sc.Err()
	}()

	var (
		nodes, edges []json.RawMessage
		resp         = streamResponse{Run: name, Spec: specName}
	)
	if v, ok := s.cat.RunVersion(name); ok {
		resp.Version = v
	}
	if run, ok := s.cat.Run(name); ok {
		resp.Nodes, resp.Edges = run.NumNodes(), run.NumEdges()
	}
	flush := func() error {
		if len(nodes)+len(edges) == 0 {
			return nil
		}
		payload, err := json.Marshal(struct {
			Nodes []json.RawMessage `json:"nodes,omitempty"`
			Edges []json.RawMessage `json:"edges,omitempty"`
		}{nodes, edges})
		if err != nil {
			return fmt.Errorf("assembling batch: %w", err)
		}
		b, err := provrpq.DecodeBatch(spec, payload)
		if err != nil {
			return err
		}
		res, err := s.cat.AppendEdges(name, b)
		if err != nil {
			return err
		}
		resp.Version = res.Version
		resp.Nodes, resp.Edges = res.Run.NumNodes(), res.Run.NumEdges()
		resp.StreamedNodes += res.Stats.NewNodes
		resp.StreamedEdges += res.Stats.NewEdges
		resp.Batches++
		s.mIngestRecords.With("node").Add(uint64(len(nodes)))
		s.mIngestRecords.With("edge").Add(uint64(len(edges)))
		s.mIngestBatches.Inc()
		nodes, edges = nil, nil
		return nil
	}
	// Every failure answer carries how far the stream got: groups already
	// committed stay committed (streaming is not transactional across
	// groups), so the client reconciles from the reported version.
	progress := func(msg string) string {
		return fmt.Sprintf("%s (stream had committed %d batches; run %q is at version %d)",
			msg, resp.Batches, name, resp.Version)
	}
	appendFailed := func(err error) {
		if errors.Is(err, provrpq.ErrStoreFailed) {
			s.writeError(w, http.StatusInternalServerError, "store_failed", progress(err.Error()))
			return
		}
		s.writeError(w, http.StatusBadRequest, "bad_batch", progress(err.Error()))
	}

	var timer *time.Timer
	var timerC <-chan time.Time
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				if scanErr != nil {
					if errors.Is(scanErr, bufio.ErrTooLong) {
						s.writeError(w, http.StatusRequestEntityTooLarge, "request_too_large",
							progress(fmt.Sprintf("NDJSON record exceeds the server's %d-byte record limit", s.maxRecord)))
					} else {
						s.writeError(w, http.StatusBadRequest, "bad_request",
							progress("reading stream: "+scanErr.Error()))
					}
					return
				}
				if err := flush(); err != nil {
					appendFailed(err)
					return
				}
				s.writeJSON(w, http.StatusOK, resp)
				return
			}
			var rec streamRecord
			dec := json.NewDecoder(bytes.NewReader(line))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&rec); err != nil {
				s.writeError(w, http.StatusBadRequest, "bad_request",
					progress("invalid NDJSON record: "+err.Error()))
				return
			}
			switch {
			case len(rec.Node) > 0 && len(rec.Edge) == 0:
				nodes = append(nodes, rec.Node)
			case len(rec.Edge) > 0 && len(rec.Node) == 0:
				edges = append(edges, rec.Edge)
			default:
				s.writeError(w, http.StatusBadRequest, "bad_request",
					progress(`invalid NDJSON record: exactly one of "node" and "edge" is required`))
				return
			}
			if len(nodes)+len(edges) >= s.flushRecords {
				if err := flush(); err != nil {
					appendFailed(err)
					return
				}
				if timer != nil {
					timer.Stop()
					timer, timerC = nil, nil
				}
			} else if timerC == nil && s.flushInterval > 0 {
				timer = time.NewTimer(s.flushInterval)
				timerC = timer.C
			}
		case <-timerC:
			// A partially-filled group has waited long enough: commit it so
			// slow feeds still become durable (and visible to watchers)
			// promptly.
			timer, timerC = nil, nil
			if err := flush(); err != nil {
				appendFailed(err)
				return
			}
		}
	}
}
