package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"provrpq"
	"provrpq/internal/store"
)

// introSpec is the workflow of the paper's introduction (same shape as the
// root package's test fixture).
func introSpec(t testing.TB) *provrpq.Spec {
	t.Helper()
	spec, err := provrpq.NewSpecBuilder().
		Start("W").
		Chain("W", "ingest", "Analysis", "post", "publish").
		Prod("Analysis", []string{"tool1", "Analysis", "result"},
			[]provrpq.BodyEdge{{From: 0, To: 1, Tag: "a1"}, {From: 1, To: 2, Tag: "s"}}).
		Prod("Analysis", []string{"tool2", "result"},
			[]provrpq.BodyEdge{{From: 0, To: 1, Tag: "s"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

type testClient struct {
	t    testing.TB
	base string
	hc   *http.Client
}

// do posts (or gets, body == nil) and decodes the JSON response into out,
// asserting the status code.
func (c *testClient) do(method, path string, body any, wantStatus int, out any) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		c.t.Fatalf("%s %s = %d, want %d; body: %s", method, path, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: bad response JSON %q: %v", method, path, raw, err)
		}
	}
}

// newService stands up a catalog, server and httptest front end.
func newService(t testing.TB, opts Options) (*provrpq.Catalog, *testClient) {
	t.Helper()
	cat := provrpq.NewCatalog(provrpq.CatalogOptions{})
	ts := httptest.NewServer(New(cat, opts).Handler())
	t.Cleanup(ts.Close)
	return cat, &testClient{t: t, base: ts.URL, hc: ts.Client()}
}

// registerFixture registers the intro spec and derives three runs via HTTP.
func registerFixture(t testing.TB, c *testClient) []string {
	t.Helper()
	specJSON, err := introSpec(t).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	c.do("POST", "/v1/specs", map[string]any{"name": "intro", "spec": json.RawMessage(specJSON)},
		http.StatusCreated, nil)
	runs := []string{"run-a", "run-b", "run-c"}
	for i, name := range runs {
		c.do("POST", "/v1/runs", map[string]any{
			"name": name, "spec": "intro",
			"derive": map[string]any{"seed": i + 1, "target_edges": 120 + 60*i},
		}, http.StatusCreated, nil)
	}
	return runs
}

// TestServerEndToEnd is the acceptance scenario: one spec, three runs,
// concurrent batch queries from 8 goroutines whose results must match
// direct Engine.Evaluate, with plan-cache hits above misses at the end.
func TestServerEndToEnd(t *testing.T) {
	cat, c := newService(t, Options{})
	runs := registerFixture(t, c)
	queries := []string{"_*.s._*.publish", "ingest._*", "_*.a1._*"}

	// Ground truth straight from the engines (same catalog the server
	// uses): the full pair lists, rendered the way the wire format does.
	want := map[string][]string{}
	for _, rn := range runs {
		eng, err := cat.Engine(rn)
		if err != nil {
			t.Fatal(err)
		}
		for _, qs := range queries {
			q, err := provrpq.ParseQuery(qs)
			if err != nil {
				t.Fatal(err)
			}
			pairs, err := eng.Evaluate(q)
			if err != nil {
				t.Fatal(err)
			}
			rendered := make([]string, len(pairs))
			for i, p := range pairs {
				rendered[i] = eng.Run().NodeName(p.From) + "->" + eng.Run().NodeName(p.To)
			}
			want[rn+"|"+q.String()] = rendered
		}
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				var resp struct {
					Results []struct {
						Run   string `json:"run"`
						Query string `json:"query"`
						Count int    `json:"count"`
						Pairs []struct {
							From string `json:"from"`
							To   string `json:"to"`
						} `json:"pairs"`
						Error string `json:"error"`
					} `json:"results"`
				}
				c.do("POST", "/v1/batch", map[string]any{"runs": runs, "queries": queries},
					http.StatusOK, &resp)
				if len(resp.Results) != len(runs)*len(queries) {
					t.Errorf("goroutine %d: %d results, want %d", g, len(resp.Results), len(runs)*len(queries))
					return
				}
				for _, res := range resp.Results {
					if res.Error != "" {
						t.Errorf("goroutine %d: (%s, %s) failed: %s", g, res.Run, res.Query, res.Error)
						return
					}
					w, ok := want[res.Run+"|"+res.Query]
					if !ok {
						t.Errorf("goroutine %d: unexpected cell (%s, %s)", g, res.Run, res.Query)
						return
					}
					if res.Count != len(w) || len(res.Pairs) != len(w) {
						t.Errorf("goroutine %d: (%s, %s) = %d pairs (count %d), want %d",
							g, res.Run, res.Query, len(res.Pairs), res.Count, len(w))
						return
					}
					for i, p := range res.Pairs {
						if p.From+"->"+p.To != w[i] {
							t.Errorf("goroutine %d: (%s, %s) pair %d = %s->%s, want %s",
								g, res.Run, res.Query, i, p.From, p.To, w[i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	var stats struct {
		Specs     int `json:"specs"`
		Runs      int `json:"runs"`
		PlanCache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"plan_cache"`
		Requests uint64 `json:"requests"`
	}
	c.do("GET", "/statsz", nil, http.StatusOK, &stats)
	if stats.Specs != 1 || stats.Runs != 3 {
		t.Errorf("statsz reports %d specs / %d runs, want 1 / 3", stats.Specs, stats.Runs)
	}
	if stats.PlanCache.Hits <= stats.PlanCache.Misses {
		t.Errorf("plan cache should hit more than it misses across runs of one spec: %+v", stats.PlanCache)
	}
	if stats.Requests == 0 {
		t.Error("request counter did not move")
	}
}

func TestServerCatalogEndpoints(t *testing.T) {
	cat, c := newService(t, Options{})
	runs := registerFixture(t, c)

	var specs struct {
		Specs []struct {
			Name string   `json:"name"`
			Size int      `json:"size"`
			Tags []string `json:"tags"`
			Runs []string `json:"runs"`
		} `json:"specs"`
	}
	c.do("GET", "/v1/specs", nil, http.StatusOK, &specs)
	if len(specs.Specs) != 1 || specs.Specs[0].Name != "intro" {
		t.Fatalf("specs listing = %+v", specs)
	}
	if len(specs.Specs[0].Runs) != 3 || specs.Specs[0].Size == 0 || len(specs.Specs[0].Tags) == 0 {
		t.Fatalf("spec info incomplete: %+v", specs.Specs[0])
	}

	var runList struct {
		Runs []struct {
			Name  string `json:"name"`
			Spec  string `json:"spec"`
			Nodes int    `json:"nodes"`
			Edges int    `json:"edges"`
		} `json:"runs"`
	}
	c.do("GET", "/v1/runs", nil, http.StatusOK, &runList)
	if len(runList.Runs) != 3 {
		t.Fatalf("runs listing = %+v", runList)
	}
	for _, ri := range runList.Runs {
		if ri.Spec != "intro" || ri.Nodes == 0 || ri.Edges == 0 {
			t.Fatalf("run info incomplete: %+v", ri)
		}
	}

	// Upload path: encode a run derived from the registered spec object.
	spec, _ := cat.Spec("intro")
	nat, err := spec.Derive(provrpq.DeriveOptions{Seed: 99, TargetEdges: 80})
	if err != nil {
		t.Fatal(err)
	}
	data, err := provrpq.EncodeRun(nat)
	if err != nil {
		t.Fatal(err)
	}
	c.do("POST", "/v1/runs", map[string]any{
		"name": "uploaded", "spec": "intro", "run": json.RawMessage(data),
	}, http.StatusCreated, nil)
	if _, err := cat.Engine("uploaded"); err != nil {
		t.Fatal(err)
	}

	// Evaluate + pairwise agree on one run.
	var ev struct {
		Safe  bool `json:"safe"`
		Count int  `json:"count"`
		Pairs []struct {
			From string `json:"from"`
			To   string `json:"to"`
		} `json:"pairs"`
	}
	c.do("POST", "/v1/evaluate", map[string]any{"run": runs[0], "query": "_*.s._*.publish"},
		http.StatusOK, &ev)
	if ev.Count == 0 || len(ev.Pairs) != ev.Count {
		t.Fatalf("evaluate = %+v", ev)
	}
	var pw struct {
		Match bool `json:"match"`
	}
	c.do("POST", "/v1/pairwise", map[string]any{
		"run": runs[0], "query": "_*.s._*.publish", "from": ev.Pairs[0].From, "to": ev.Pairs[0].To,
	}, http.StatusOK, &pw)
	if !pw.Match {
		t.Errorf("pairwise disagrees with evaluate on %+v", ev.Pairs[0])
	}

	// count_only drops the pair lists.
	var evCount struct {
		Count int             `json:"count"`
		Pairs json.RawMessage `json:"pairs"`
	}
	c.do("POST", "/v1/evaluate", map[string]any{"run": runs[0], "query": "_*.s._*.publish", "count_only": true},
		http.StatusOK, &evCount)
	if evCount.Count != ev.Count || len(evCount.Pairs) != 0 {
		t.Errorf("count_only evaluate = %+v", evCount)
	}

	var health struct {
		Status string `json:"status"`
	}
	c.do("GET", "/healthz", nil, http.StatusOK, &health)
	if health.Status != "ok" {
		t.Errorf("healthz = %+v", health)
	}
}

// TestServerExplain covers the plan endpoint: safe queries report a
// concrete strategy with seed and cost estimates, unsafe ones the
// decomposition, and /v1/evaluate names the strategy that answered.
func TestServerExplain(t *testing.T) {
	_, c := newService(t, Options{})
	runs := registerFixture(t, c)

	type explainResp struct {
		Run       string `json:"run"`
		Query     string `json:"query"`
		Safe      bool   `json:"safe"`
		Strategy  string `json:"strategy"`
		SeedTag   string `json:"seed_tag"`
		SeedCount *int   `json:"seed_count"`
		Costs     *struct {
			RPL    float64 `json:"rpl"`
			OptRPL float64 `json:"optrpl"`
			Seeded float64 `json:"seeded"`
		} `json:"costs"`
		SafeSubtrees    []string `json:"safe_subtrees"`
		RelationalNodes int      `json:"relational_nodes"`
	}

	var ex explainResp
	c.do("POST", "/v1/explain", map[string]any{"run": runs[0], "query": "_*.publish"},
		http.StatusOK, &ex)
	if !ex.Safe || ex.Costs == nil {
		t.Fatalf("explain safe query = %+v", ex)
	}
	switch ex.Strategy {
	case "rpl", "optrpl", "seeded":
	default:
		t.Fatalf("safe strategy = %q", ex.Strategy)
	}
	if ex.SeedTag != "publish" {
		t.Errorf("seed tag = %q, want publish (rarest required tag)", ex.SeedTag)
	}
	if ex.SeedCount == nil || *ex.SeedCount < 1 {
		t.Errorf("seed count = %v, want >= 1 alongside the seed tag", ex.SeedCount)
	}
	if ex.Costs.RPL <= 0 || ex.Costs.OptRPL <= 0 {
		t.Errorf("cost estimates missing: %+v", ex.Costs)
	}

	// A required tag absent from the run reports seed_count 0 explicitly —
	// zero is meaningful (the query cannot match), not an omitted field.
	var exAbsent explainResp
	c.do("POST", "/v1/explain", map[string]any{"run": runs[0], "query": "_*.ghost._*"},
		http.StatusOK, &exAbsent)
	if exAbsent.SeedTag != "ghost" || exAbsent.SeedCount == nil || *exAbsent.SeedCount != 0 {
		t.Errorf("absent-tag explain = seed %q count %v, want ghost with explicit 0", exAbsent.SeedTag, exAbsent.SeedCount)
	}

	var exU explainResp
	c.do("POST", "/v1/explain", map[string]any{"run": runs[0], "query": "a1.(_*.s._*)"},
		http.StatusOK, &exU)
	if exU.Safe || exU.Strategy != "decompose" || exU.Costs != nil {
		t.Fatalf("explain unsafe query = %+v", exU)
	}
	if exU.RelationalNodes == 0 {
		t.Errorf("unsafe explain reports zero relational nodes: %+v", exU)
	}

	// The evaluate response carries the strategy the plan chose.
	var ev struct {
		Strategy string `json:"strategy"`
		Count    int    `json:"count"`
	}
	c.do("POST", "/v1/evaluate", map[string]any{"run": runs[0], "query": "_*.publish", "count_only": true},
		http.StatusOK, &ev)
	if ev.Strategy != ex.Strategy {
		t.Errorf("evaluate strategy %q != explain strategy %q", ev.Strategy, ex.Strategy)
	}
	c.do("POST", "/v1/evaluate", map[string]any{"run": runs[0], "query": "a1.(_*.s._*)", "count_only": true},
		http.StatusOK, &ev)
	if ev.Strategy != "decompose" {
		t.Errorf("unsafe evaluate strategy = %q, want decompose", ev.Strategy)
	}

	// Error paths share the uniform shape.
	var eb struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	c.do("POST", "/v1/explain", map[string]any{"run": "nope", "query": "_*"},
		http.StatusNotFound, &eb)
	if eb.Error.Code != "not_found" {
		t.Errorf("explain unknown run code = %q", eb.Error.Code)
	}
	c.do("POST", "/v1/explain", map[string]any{"run": runs[0], "query": "(("},
		http.StatusBadRequest, &eb)
	if eb.Error.Code != "bad_query" {
		t.Errorf("explain bad query code = %q", eb.Error.Code)
	}
}

func TestServerErrorShape(t *testing.T) {
	_, c := newService(t, Options{})
	registerFixture(t, c)

	check := func(method, path string, body any, wantStatus int, wantCode string) {
		t.Helper()
		var eb struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		c.do(method, path, body, wantStatus, &eb)
		if eb.Error.Code != wantCode || eb.Error.Message == "" {
			t.Errorf("%s %s: error = %+v, want code %q with a message", method, path, eb.Error, wantCode)
		}
	}

	check("POST", "/v1/specs", map[string]any{"name": "intro", "spec": mustSpecJSON(t)},
		http.StatusConflict, "conflict")
	check("POST", "/v1/specs", map[string]any{"name": ""}, http.StatusBadRequest, "bad_request")
	check("POST", "/v1/runs", map[string]any{"name": "r9", "spec": "ghost", "derive": map[string]any{}},
		http.StatusNotFound, "not_found")
	check("POST", "/v1/runs", map[string]any{"name": "run-a", "spec": "intro", "derive": map[string]any{}},
		http.StatusConflict, "conflict")
	check("POST", "/v1/runs", map[string]any{
		"name": "r9", "spec": "intro", "derive": map[string]any{"favor_module": "nope"},
	}, http.StatusBadRequest, "bad_derive")
	check("POST", "/v1/runs", map[string]any{"name": "r9", "spec": "intro"},
		http.StatusBadRequest, "bad_request")
	check("POST", "/v1/runs", map[string]any{
		"name": "r9", "spec": "intro", "run": json.RawMessage(`{"nodes":[{"name":"x:1","module":"nope","label":""}]}`),
	}, http.StatusBadRequest, "bad_run")
	check("POST", "/v1/evaluate", map[string]any{"run": "ghost", "query": "_*"},
		http.StatusNotFound, "not_found")
	check("POST", "/v1/evaluate", map[string]any{"run": "run-a", "query": "(("},
		http.StatusBadRequest, "bad_query")
	check("POST", "/v1/pairwise", map[string]any{"run": "run-a", "query": "_*", "from": "nope:1", "to": "nope:2"},
		http.StatusNotFound, "not_found")
	check("POST", "/v1/batch", map[string]any{"runs": []string{"run-a"}, "queries": []string{}},
		http.StatusBadRequest, "bad_request")
	check("POST", "/v1/batch", map[string]any{"runs": []string{"run-a"}, "queries": []string{"(("}},
		http.StatusBadRequest, "bad_query")
	check("GET", "/v1/nope", nil, http.StatusNotFound, "not_found")

	// Unknown runs inside a batch are per-item errors, not request errors.
	var batch struct {
		Results []struct {
			Run   string `json:"run"`
			Error string `json:"error"`
		} `json:"results"`
	}
	c.do("POST", "/v1/batch", map[string]any{"runs": []string{"run-a", "ghost"}, "queries": []string{"_*"}},
		http.StatusOK, &batch)
	if len(batch.Results) != 2 || batch.Results[0].Error != "" || batch.Results[1].Error == "" {
		t.Errorf("batch per-item errors = %+v", batch.Results)
	}
}

func mustSpecJSON(t testing.TB) json.RawMessage {
	t.Helper()
	data, err := introSpec(t).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServerInFlightLimit saturates a 1-slot server and verifies the next
// request is rejected with 429 and the error shape, while /healthz (which
// bypasses the limiter) keeps answering.
func TestServerInFlightLimit(t *testing.T) {
	cat := provrpq.NewCatalog(provrpq.CatalogOptions{})
	srv := New(cat, Options{MaxInFlight: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.sem <- struct{}{} // hold the only slot, as an in-flight request would
	resp, err := ts.Client().Get(ts.URL + "/v1/specs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
	}
	var eb struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "overloaded" {
		t.Errorf("rejection code = %q, want overloaded", eb.Error.Code)
	}

	// healthz, statsz and the metrics scrape stay reachable even while
	// saturated — observability must not die with the service.
	for _, path := range []string{"/healthz", "/statsz", "/metrics"} {
		hr, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Errorf("%s = %d under load, want 200", path, hr.StatusCode)
		}
	}

	<-srv.sem // release; normal service resumes
	ok, err := ts.Client().Get(ts.URL + "/v1/specs")
	if err != nil {
		t.Fatal(err)
	}
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Errorf("released server answered %d, want 200", ok.StatusCode)
	}
}

// TestServerTimeout pins a delay longer than the deadline inside the
// timeout scope; the request must come back 503 with the timeout body —
// and because evaluation is not cancellable, the timed-out request must
// keep holding its in-flight slot until the work actually finishes, so
// the limit bounds real concurrent work.
func TestServerTimeout(t *testing.T) {
	release := make(chan struct{})
	cat := provrpq.NewCatalog(provrpq.CatalogOptions{})
	srv := New(cat, Options{Timeout: 5 * time.Millisecond, MaxInFlight: 1})
	srv.testDelay = func() { <-release }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	resp, err := ts.Client().Get(ts.URL + "/v1/specs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request answered %d, want 503", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("timeout Content-Type = %q, want application/json", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "timeout") {
		t.Errorf("timeout body = %s", raw)
	}

	// The 503 went out, but the handler goroutine is still blocked in
	// testDelay: the slot must still be occupied.
	busy, err := ts.Client().Get(ts.URL + "/v1/specs")
	if err != nil {
		t.Fatal(err)
	}
	busy.Body.Close()
	if busy.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request during a timed-out handler answered %d, want 429 (slot released too early)", busy.StatusCode)
	}

	// healthz sits outside both wrappers and still answers.
	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", hr.StatusCode)
	}

	// Once the stuck work finishes the slot frees up again.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok, err := ts.Client().Get(ts.URL + "/v1/specs")
		if err != nil {
			t.Fatal(err)
		}
		ok.Body.Close()
		if ok.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never released after work finished (last status %d)", ok.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// BenchmarkServerBatch measures end-to-end batch throughput over HTTP:
// one spec, three runs, three queries per request. It reports
// queries/sec — one "query" being one (run, query) cell.
func BenchmarkServerBatch(b *testing.B) {
	cat := provrpq.NewCatalog(provrpq.CatalogOptions{})
	if err := cat.RegisterSpec("intro", introSpec(b)); err != nil {
		b.Fatal(err)
	}
	runs := []string{"run-a", "run-b", "run-c"}
	for i, name := range runs {
		if _, err := cat.DeriveRun(name, "intro", provrpq.DeriveOptions{Seed: int64(i + 1), TargetEdges: 500}); err != nil {
			b.Fatal(err)
		}
	}
	ts := httptest.NewServer(New(cat, Options{}).Handler())
	defer ts.Close()
	queries := []string{"_*.s._*.publish", "ingest._*", "_*.s._*"}
	body, err := json.Marshal(map[string]any{"runs": runs, "queries": queries, "count_only": true})
	if err != nil {
		b.Fatal(err)
	}
	cells := len(runs) * len(queries)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("batch = %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "queries/sec")
}

// TestServerSnapshotAndRestart drives the durable path over the wire:
// register → derive → upload against a store-backed catalog, read the
// snapshot endpoint, then stand up a second server from the same store
// (a process restart) and require identical evaluation answers without
// any re-derivation.
func TestServerSnapshotAndRestart(t *testing.T) {
	// An in-memory catalog advertises non-durability.
	_, plain := newService(t, Options{})
	var probe struct {
		Durable bool `json:"durable"`
	}
	plain.do("GET", "/v1/snapshot", nil, http.StatusOK, &probe)
	if probe.Durable {
		t.Fatal("storeless catalog claims to be durable")
	}

	dir := t.TempDir()
	st, err := provrpq.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat := provrpq.NewCatalog(provrpq.CatalogOptions{Store: st})
	ts := httptest.NewServer(New(cat, Options{}).Handler())
	t.Cleanup(ts.Close)
	c := &testClient{t: t, base: ts.URL, hc: ts.Client()}
	runs := registerFixture(t, c)

	// Upload path must be durable too: round-trip a run through JSON.
	spec, _ := cat.Spec("intro")
	native, err := spec.Derive(provrpq.DeriveOptions{Seed: 7, TargetEdges: 90})
	if err != nil {
		t.Fatal(err)
	}
	runJSON, err := provrpq.EncodeRun(native)
	if err != nil {
		t.Fatal(err)
	}
	c.do("POST", "/v1/runs", map[string]any{
		"name": "uploaded", "spec": "intro", "run": json.RawMessage(runJSON),
	}, http.StatusCreated, nil)
	runs = append(runs, "uploaded")

	var snap struct {
		Durable bool              `json:"durable"`
		Dir     string            `json:"dir"`
		Specs   []string          `json:"specs"`
		Runs    map[string]string `json:"runs"`
	}
	c.do("GET", "/v1/snapshot", nil, http.StatusOK, &snap)
	if !snap.Durable || snap.Dir != dir {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Specs) != 1 || snap.Specs[0] != "intro" {
		t.Fatalf("snapshot specs = %v", snap.Specs)
	}
	if len(snap.Runs) != len(runs) || snap.Runs["uploaded"] != "intro" {
		t.Fatalf("snapshot runs = %v", snap.Runs)
	}

	// "Restart": a fresh catalog from the same directory behind a fresh
	// server must answer every query with the identical pair list.
	st2, err := provrpq.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat2, err := provrpq.NewCatalogFromStore(st2, provrpq.CatalogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(New(cat2, Options{}).Handler())
	t.Cleanup(ts2.Close)
	c2 := &testClient{t: t, base: ts2.URL, hc: ts2.Client()}

	for _, rn := range runs {
		for _, qs := range []string{"_*.s._*.publish", "ingest._*", "_*.a1._*"} {
			req := map[string]any{"run": rn, "query": qs}
			var before, after struct {
				Count int `json:"count"`
				Pairs []struct {
					From string `json:"from"`
					To   string `json:"to"`
				} `json:"pairs"`
			}
			c.do("POST", "/v1/evaluate", req, http.StatusOK, &before)
			c2.do("POST", "/v1/evaluate", req, http.StatusOK, &after)
			if before.Count != after.Count || len(before.Pairs) != len(after.Pairs) {
				t.Fatalf("(%s, %s): %d pairs before restart, %d after", rn, qs, before.Count, after.Count)
			}
			for i := range before.Pairs {
				if before.Pairs[i] != after.Pairs[i] {
					t.Fatalf("(%s, %s) pair %d: %v before restart, %v after", rn, qs, i, before.Pairs[i], after.Pairs[i])
				}
			}
		}
	}
}

// splitRunJSON carves an encoded run into a base-run payload (the first m
// nodes plus the edges internal to them) and one growth-batch payload (the
// remaining nodes and edges, in the run's final numbering).
func splitRunJSON(t testing.TB, data []byte, m int) (base, batch []byte) {
	t.Helper()
	var rj struct {
		Nodes []json.RawMessage `json:"nodes"`
		Edges []struct {
			From, To int
			Tag      string
		} `json:"edges"`
	}
	if err := json.Unmarshal(data, &rj); err != nil {
		t.Fatal(err)
	}
	if m <= 0 || m >= len(rj.Nodes) {
		t.Fatalf("split point %d outside (0,%d)", m, len(rj.Nodes))
	}
	type edge struct {
		From int    `json:"From"`
		To   int    `json:"To"`
		Tag  string `json:"Tag"`
	}
	var baseEdges, batchEdges []edge
	for _, e := range rj.Edges {
		if e.From < m && e.To < m {
			baseEdges = append(baseEdges, edge(e))
		} else {
			batchEdges = append(batchEdges, edge(e))
		}
	}
	base, err := json.Marshal(map[string]any{"nodes": rj.Nodes[:m], "edges": baseEdges})
	if err != nil {
		t.Fatal(err)
	}
	batch, err = json.Marshal(map[string]any{"nodes": rj.Nodes[m:], "edges": batchEdges})
	if err != nil {
		t.Fatal(err)
	}
	return base, batch
}

// TestServerAppendEdges grows a run over HTTP and checks the grown run
// answers exactly like the same graph uploaded whole.
func TestServerAppendEdges(t *testing.T) {
	cat, c := newService(t, Options{})
	specJSON, err := introSpec(t).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	c.do("POST", "/v1/specs", map[string]any{"name": "intro", "spec": json.RawMessage(specJSON)},
		http.StatusCreated, nil)

	spec, _ := cat.Spec("intro")
	native, err := spec.Derive(provrpq.DeriveOptions{Seed: 21, TargetEdges: 150})
	if err != nil {
		t.Fatal(err)
	}
	fullJSON, err := provrpq.EncodeRun(native)
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, batchJSON := splitRunJSON(t, fullJSON, native.NumNodes()/2)
	c.do("POST", "/v1/runs", map[string]any{"name": "full", "spec": "intro", "run": json.RawMessage(fullJSON)},
		http.StatusCreated, nil)
	c.do("POST", "/v1/runs", map[string]any{"name": "grow", "spec": "intro", "run": json.RawMessage(baseJSON)},
		http.StatusCreated, nil)

	// Error paths first: unknown run, malformed batch, empty batch, batch
	// with an out-of-alphabet tag. None of them may change the run.
	var errResp struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	c.do("POST", "/v1/runs/ghost/edges", json.RawMessage(batchJSON), http.StatusNotFound, &errResp)
	if errResp.Error.Code != "not_found" {
		t.Fatalf("unknown run code = %q", errResp.Error.Code)
	}
	c.do("POST", "/v1/runs/grow/edges", json.RawMessage(`{"edges":[{"From":0,"To":1,"Tag":"nope"}]}`),
		http.StatusBadRequest, &errResp)
	if errResp.Error.Code != "bad_batch" {
		t.Fatalf("bad tag code = %q", errResp.Error.Code)
	}
	c.do("POST", "/v1/runs/grow/edges", json.RawMessage(`{}`), http.StatusBadRequest, &errResp)
	if errResp.Error.Code != "bad_batch" {
		t.Fatalf("empty batch code = %q", errResp.Error.Code)
	}
	// Strict decode: a typo'd key is rejected instead of being silently
	// dropped and a partial batch durably committed.
	c.do("POST", "/v1/runs/grow/edges", json.RawMessage(`{"egdes":[{"From":0,"To":1,"Tag":"s"}]}`),
		http.StatusBadRequest, &errResp)
	if errResp.Error.Code != "bad_batch" {
		t.Fatalf("typo'd batch code = %q", errResp.Error.Code)
	}

	// Build an engine over the base version: the append must not disturb
	// queries already running against it, and the swap must give new
	// lookups the grown run.
	var before struct {
		Count int `json:"count"`
	}
	c.do("POST", "/v1/evaluate", map[string]any{"run": "grow", "query": "_*", "count_only": true},
		http.StatusOK, &before)

	var ar struct {
		Version       int `json:"version"`
		Nodes         int `json:"nodes"`
		Edges         int `json:"edges"`
		AppendedNodes int `json:"appended_nodes"`
		AppendedEdges int `json:"appended_edges"`
		Frontier      int `json:"frontier"`
	}
	c.do("POST", "/v1/runs/grow/edges", json.RawMessage(batchJSON), http.StatusOK, &ar)
	if ar.Version != 1 || ar.Nodes != native.NumNodes() || ar.Edges != native.NumEdges() {
		t.Fatalf("append response = %+v, want version 1 and the full graph size", ar)
	}
	if ar.AppendedNodes == 0 || ar.AppendedEdges == 0 || ar.Frontier == 0 {
		t.Fatalf("append response stats = %+v", ar)
	}

	// The grown run answers exactly like the whole upload, for safe and
	// unsafe queries alike.
	for _, qs := range []string{"_*.s._*.publish", "ingest._*", "_*.a1._*", "_*"} {
		var grown, whole struct {
			Count int                         `json:"count"`
			Pairs []struct{ From, To string } `json:"pairs"`
		}
		c.do("POST", "/v1/evaluate", map[string]any{"run": "grow", "query": qs}, http.StatusOK, &grown)
		c.do("POST", "/v1/evaluate", map[string]any{"run": "full", "query": qs}, http.StatusOK, &whole)
		if grown.Count != whole.Count {
			t.Fatalf("query %s: grown count %d, whole count %d", qs, grown.Count, whole.Count)
		}
		for i := range grown.Pairs {
			if grown.Pairs[i] != whole.Pairs[i] {
				t.Fatalf("query %s pair %d: grown %v, whole %v", qs, i, grown.Pairs[i], whole.Pairs[i])
			}
		}
	}
	if before.Count >= native.NumNodes()*native.NumNodes() {
		t.Fatal("sanity: base count suspicious")
	}

	// Retry safety: an append guarded by expected_version bounces off a
	// stale version with 409 instead of double-applying, a malformed
	// guard is 400, and the correct guard commits.
	smallBatch := json.RawMessage(`{"edges":[{"From":0,"To":1,"Tag":"s"}]}`)
	c.do("POST", "/v1/runs/grow/edges?expected_version=0", smallBatch, http.StatusConflict, &errResp)
	if errResp.Error.Code != "conflict" {
		t.Fatalf("stale expected_version code = %q", errResp.Error.Code)
	}
	c.do("POST", "/v1/runs/grow/edges?expected_version=x", smallBatch, http.StatusBadRequest, &errResp)
	if errResp.Error.Code != "bad_request" {
		t.Fatalf("malformed expected_version code = %q", errResp.Error.Code)
	}
	var ar2 struct {
		Version int `json:"version"`
	}
	c.do("POST", "/v1/runs/grow/edges?expected_version=1", smallBatch, http.StatusOK, &ar2)
	if ar2.Version != 2 {
		t.Fatalf("guarded append version = %d, want 2", ar2.Version)
	}

	// The listing reports the bumped version.
	var listing struct {
		Runs []struct {
			Name    string `json:"name"`
			Version int    `json:"version"`
		} `json:"runs"`
	}
	c.do("GET", "/v1/runs", nil, http.StatusOK, &listing)
	versions := map[string]int{}
	for _, ri := range listing.Runs {
		versions[ri.Name] = ri.Version
	}
	if versions["grow"] != 2 || versions["full"] != 0 {
		t.Fatalf("listed versions = %v", versions)
	}
}

// TestServerEvaluatePaging: limit/offset window the pair list, total always
// reports the full count, and the unpaged request is byte-compatible with
// the pre-paging wire shape.
func TestServerEvaluatePaging(t *testing.T) {
	_, c := newService(t, Options{})
	registerFixture(t, c)

	type page struct {
		Count int                         `json:"count"`
		Total int                         `json:"total"`
		Pairs []struct{ From, To string } `json:"pairs"`
	}
	var full page
	c.do("POST", "/v1/evaluate", map[string]any{"run": "run-a", "query": "_*"}, http.StatusOK, &full)
	if full.Total != full.Count || len(full.Pairs) != full.Total {
		t.Fatalf("unpaged response: count %d, total %d, %d pairs", full.Count, full.Total, len(full.Pairs))
	}
	if full.Total < 10 {
		t.Fatalf("fixture too small to page: %d pairs", full.Total)
	}

	// Walk the windows and reassemble the full list.
	limit := full.Total/3 + 1
	var got []struct{ From, To string }
	for off := 0; off < full.Total; off += limit {
		var p page
		c.do("POST", "/v1/evaluate",
			map[string]any{"run": "run-a", "query": "_*", "limit": limit, "offset": off},
			http.StatusOK, &p)
		if p.Total != full.Total || p.Count != full.Total {
			t.Fatalf("window at %d: total %d, count %d, want %d", off, p.Total, p.Count, full.Total)
		}
		if len(p.Pairs) > limit {
			t.Fatalf("window at %d: %d pairs exceeds limit %d", off, len(p.Pairs), limit)
		}
		got = append(got, p.Pairs...)
	}
	if len(got) != full.Total {
		t.Fatalf("reassembled %d pairs, want %d", len(got), full.Total)
	}
	for i := range got {
		if got[i] != full.Pairs[i] {
			t.Fatalf("pair %d: paged %v, full %v", i, got[i], full.Pairs[i])
		}
	}

	// Edges of the parameter space.
	var p page
	c.do("POST", "/v1/evaluate", map[string]any{"run": "run-a", "query": "_*", "limit": 0}, http.StatusOK, &p)
	if len(p.Pairs) != 0 || p.Total != full.Total {
		t.Fatalf("limit 0: %d pairs, total %d", len(p.Pairs), p.Total)
	}
	c.do("POST", "/v1/evaluate", map[string]any{"run": "run-a", "query": "_*", "offset": full.Total + 5}, http.StatusOK, &p)
	if len(p.Pairs) != 0 || p.Total != full.Total {
		t.Fatalf("offset past end: %d pairs, total %d", len(p.Pairs), p.Total)
	}
	var errResp struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	c.do("POST", "/v1/evaluate", map[string]any{"run": "run-a", "query": "_*", "limit": -1}, http.StatusBadRequest, &errResp)
	if errResp.Error.Code != "bad_request" {
		t.Fatalf("negative limit code = %q", errResp.Error.Code)
	}
	c.do("POST", "/v1/evaluate", map[string]any{"run": "run-a", "query": "_*", "offset": -1}, http.StatusBadRequest, &errResp)
	if errResp.Error.Code != "bad_request" {
		t.Fatalf("negative offset code = %q", errResp.Error.Code)
	}
}

// TestServerAppendDurableRestart: growth committed over HTTP must survive a
// daemon restart — the append log replays at boot and the restarted server
// answers identically.
func TestServerAppendDurableRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := provrpq.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat := provrpq.NewCatalog(provrpq.CatalogOptions{Store: st})
	ts := httptest.NewServer(New(cat, Options{}).Handler())
	t.Cleanup(ts.Close)
	c := &testClient{t: t, base: ts.URL, hc: ts.Client()}

	specJSON, err := introSpec(t).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	c.do("POST", "/v1/specs", map[string]any{"name": "intro", "spec": json.RawMessage(specJSON)},
		http.StatusCreated, nil)
	spec, _ := cat.Spec("intro")
	native, err := spec.Derive(provrpq.DeriveOptions{Seed: 33, TargetEdges: 120})
	if err != nil {
		t.Fatal(err)
	}
	fullJSON, err := provrpq.EncodeRun(native)
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, batchJSON := splitRunJSON(t, fullJSON, native.NumNodes()/2)
	c.do("POST", "/v1/runs", map[string]any{"name": "live", "spec": "intro", "run": json.RawMessage(baseJSON)},
		http.StatusCreated, nil)
	c.do("POST", "/v1/runs/live/edges", json.RawMessage(batchJSON), http.StatusOK, nil)

	var snap struct {
		Appends map[string]int `json:"appends"`
	}
	c.do("GET", "/v1/snapshot", nil, http.StatusOK, &snap)
	if snap.Appends["live"] != 1 {
		t.Fatalf("snapshot appends = %v, want live:1", snap.Appends)
	}

	var before struct {
		Count int                         `json:"count"`
		Pairs []struct{ From, To string } `json:"pairs"`
	}
	c.do("POST", "/v1/evaluate", map[string]any{"run": "live", "query": "_*"}, http.StatusOK, &before)

	// Restart on the same directory.
	st2, err := provrpq.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat2, err := provrpq.NewCatalogFromStore(st2, provrpq.CatalogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := cat2.RunVersion("live"); v != 1 {
		t.Fatalf("restored version = %d, want 1", v)
	}
	ts2 := httptest.NewServer(New(cat2, Options{}).Handler())
	t.Cleanup(ts2.Close)
	c2 := &testClient{t: t, base: ts2.URL, hc: ts2.Client()}
	var after struct {
		Count int                         `json:"count"`
		Pairs []struct{ From, To string } `json:"pairs"`
	}
	c2.do("POST", "/v1/evaluate", map[string]any{"run": "live", "query": "_*"}, http.StatusOK, &after)
	if before.Count != after.Count || len(before.Pairs) != len(after.Pairs) {
		t.Fatalf("restart changed the answer: %d pairs before, %d after", before.Count, after.Count)
	}
	for i := range before.Pairs {
		if before.Pairs[i] != after.Pairs[i] {
			t.Fatalf("pair %d: %v before restart, %v after", i, before.Pairs[i], after.Pairs[i])
		}
	}
	// Growth continues seamlessly after the restart: the next batch gets
	// the next sequence number and version.
	var errResp struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	c2.do("POST", "/v1/runs/live/edges", json.RawMessage(`{"edges":[{"From":0,"To":0,"Tag":"nope"}]}`),
		http.StatusBadRequest, &errResp)
	if errResp.Error.Code != "bad_batch" {
		t.Fatalf("post-restart bad batch code = %q", errResp.Error.Code)
	}

	// Compaction over HTTP folds the log: appends empty, version 0, and a
	// third boot (from the folded base alone) still answers identically.
	var cr struct {
		Compacted bool `json:"compacted"`
		Version   int  `json:"version"`
	}
	c2.do("POST", "/v1/runs/live/compact", nil, http.StatusOK, &cr)
	if !cr.Compacted || cr.Version != 0 {
		t.Fatalf("compact response = %+v", cr)
	}
	var snap2 struct {
		Appends map[string]int `json:"appends"`
	}
	c2.do("GET", "/v1/snapshot", nil, http.StatusOK, &snap2)
	if len(snap2.Appends) != 0 {
		t.Fatalf("snapshot appends after compaction = %v, want empty", snap2.Appends)
	}
	c2.do("POST", "/v1/runs/ghost/compact", nil, http.StatusNotFound, &errResp)
	st3, err := provrpq.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat3, err := provrpq.NewCatalogFromStore(st3, provrpq.CatalogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(New(cat3, Options{}).Handler())
	t.Cleanup(ts3.Close)
	c3 := &testClient{t: t, base: ts3.URL, hc: ts3.Client()}
	var folded struct {
		Count int                         `json:"count"`
		Pairs []struct{ From, To string } `json:"pairs"`
	}
	c3.do("POST", "/v1/evaluate", map[string]any{"run": "live", "query": "_*"}, http.StatusOK, &folded)
	if folded.Count != after.Count || len(folded.Pairs) != len(after.Pairs) {
		t.Fatalf("boot from folded base changed the answer: %d pairs, want %d", folded.Count, after.Count)
	}
	for i := range folded.Pairs {
		if folded.Pairs[i] != after.Pairs[i] {
			t.Fatalf("pair %d: %v from folded base, %v before", i, folded.Pairs[i], after.Pairs[i])
		}
	}
	// The non-durable server refuses compaction.
	_, plain := newService(t, Options{})
	specJSON2, _ := introSpec(t).MarshalJSON()
	plain.do("POST", "/v1/specs", map[string]any{"name": "intro", "spec": json.RawMessage(specJSON2)},
		http.StatusCreated, nil)
	plain.do("POST", "/v1/runs", map[string]any{
		"name": "mem", "spec": "intro", "derive": map[string]any{"seed": 1, "target_edges": 60},
	}, http.StatusCreated, nil)
	plain.do("POST", "/v1/runs/mem/compact", nil, http.StatusBadRequest, &errResp)
	if errResp.Error.Code != "bad_request" {
		t.Fatalf("non-durable compact code = %q", errResp.Error.Code)
	}
}

// TestServerHealthzWedged: when the durable store latches its wedge (an
// ambiguous commit failure — here an injected post-rename dir-fsync
// error), the liveness probe must flip to 503 {"status":"wedged"} so an
// orchestrator restarts the process instead of routing mutations at a
// read-only daemon.
func TestServerHealthzWedged(t *testing.T) {
	st, err := provrpq.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cat := provrpq.NewCatalog(provrpq.CatalogOptions{Store: st})
	ts := httptest.NewServer(New(cat, Options{}).Handler())
	t.Cleanup(ts.Close)
	c := &testClient{t: t, base: ts.URL, hc: ts.Client()}

	specJSON, err := introSpec(t).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	c.do("POST", "/v1/specs", map[string]any{"name": "intro", "spec": json.RawMessage(specJSON)},
		http.StatusCreated, nil)
	spec, _ := cat.Spec("intro")
	native, err := spec.Derive(provrpq.DeriveOptions{Seed: 7, TargetEdges: 120})
	if err != nil {
		t.Fatal(err)
	}
	fullJSON, err := provrpq.EncodeRun(native)
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, batchJSON := splitRunJSON(t, fullJSON, native.NumNodes()/2)
	c.do("POST", "/v1/runs", map[string]any{"name": "live", "spec": "intro", "run": json.RawMessage(baseJSON)},
		http.StatusCreated, nil)

	c.do("GET", "/healthz", nil, http.StatusOK, nil)

	fail := true
	orig := store.FsyncDir
	store.FsyncDir = func(dir string) error {
		if fail {
			return fmt.Errorf("injected fsync failure")
		}
		return orig(dir)
	}
	defer func() { store.FsyncDir = orig }()

	var errResp struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	c.do("POST", "/v1/runs/live/edges", json.RawMessage(batchJSON), http.StatusInternalServerError, &errResp)
	if errResp.Error.Code != "store_failed" {
		t.Fatalf("append with failing dir fsync code = %q, want store_failed", errResp.Error.Code)
	}
	fail = false

	// The wedge latched: health degrades and stays degraded (reopening the
	// directory is the only way out), while reads keep serving.
	var health struct {
		Status string `json:"status"`
	}
	c.do("GET", "/healthz", nil, http.StatusServiceUnavailable, &health)
	if health.Status != "wedged" {
		t.Fatalf("wedged healthz status = %q, want wedged", health.Status)
	}
	c.do("POST", "/v1/evaluate", map[string]any{"run": "live", "query": "_*"}, http.StatusOK, nil)
	c.do("POST", "/v1/runs/live/edges", json.RawMessage(batchJSON), http.StatusInternalServerError, &errResp)
	if errResp.Error.Code != "store_failed" {
		t.Fatalf("append on wedged store code = %q, want store_failed", errResp.Error.Code)
	}
}

// TestServerMetrics scrapes /metrics after real traffic and checks the
// exposition: correct content type, every line well-formed, the HTTP
// route counters, a populated per-strategy evaluation histogram, and
// the per-run generation gauge. This is the contract the CI smoke (and
// any Prometheus) scrapes against.
func TestServerMetrics(t *testing.T) {
	_, c := newService(t, Options{})
	registerFixture(t, c)
	c.do("POST", "/v1/evaluate", map[string]any{"run": "run-a", "query": "_*.s._*"}, http.StatusOK, nil)
	c.do("POST", "/v1/evaluate", map[string]any{"run": "run-b", "query": "ingest._*"}, http.StatusOK, nil)

	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q, want Prometheus text 0.0.4", ct)
	}
	if id := resp.Header.Get("X-Request-Id"); id == "" {
		t.Errorf("missing X-Request-Id response header")
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Well-formedness: every non-comment line ends in one parseable value,
	// every TYPE line names a known kind.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			kind := line[strings.LastIndexByte(line, ' ')+1:]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Errorf("unknown TYPE %q in line %q", kind, line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Errorf("line %q: value %q does not parse: %v", line, line[i+1:], err)
		}
	}

	for _, want := range []string{
		"provrpq_http_requests_total ",
		`provrpq_http_route_requests_total{route="POST /v1/evaluate",code="200"}`,
		`provrpq_http_request_seconds_bucket{route="POST /v1/evaluate",le="+Inf"}`,
		`provrpq_eval_seconds_bucket{strategy=`,
		`provrpq_eval_decode_units_bucket{strategy=`,
		`provrpq_run_generation{run="run-a"} 0`,
		"provrpq_http_in_flight ",
		"provrpq_uptime_seconds ",
		"provrpq_plan_cache_hits_total ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}

	// statsz rides the same registry and adds process identity.
	var stats struct {
		Requests       uint64         `json:"requests"`
		UptimeSeconds  float64        `json:"uptime_seconds"`
		GoVersion      string         `json:"go_version"`
		RunGenerations map[string]int `json:"run_generations"`
	}
	c.do("GET", "/statsz", nil, http.StatusOK, &stats)
	if stats.Requests == 0 || stats.UptimeSeconds <= 0 || stats.GoVersion == "" {
		t.Errorf("statsz = %+v, want non-zero requests/uptime and a go version", stats)
	}
	if _, ok := stats.RunGenerations["run-a"]; !ok {
		t.Errorf("statsz run_generations = %v, want run-a present", stats.RunGenerations)
	}
}
