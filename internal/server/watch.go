package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"provrpq"
)

// Standing queries: POST /v1/watch registers a safe RPQ against a run and
// streams its matches over Server-Sent Events. The first event is a
// snapshot — the full result at the run version current at registration —
// and every committed growth batch after it produces one delta event
// carrying only the new matches (DeltaPairs: pairs involving at least one
// batch node). snapshot ∪ deltas equals a full re-evaluation at any later
// version; the paper's dynamic-label property makes safe-query deltas
// append-only, which is why only safe queries are watchable (400 bad_query
// otherwise — unsafe answers can change on old pairs as edges arrive).
//
// Delivery is bounded: each watcher owns a fixed queue the append path
// fills without blocking (appenders never wait on a slow watcher). A
// watcher that falls more than the queue's length behind receives a
// terminal "lagged" event and must reconnect — the fresh snapshot
// resynchronizes it. Concurrently open watchers are bounded by MaxWatchers
// (429). The route lives outside the request timeout: a watch is meant to
// stay open indefinitely.

// watchQueueLen bounds one watcher's unconsumed append events. It needs to
// absorb bursts (a group-commit convoy draining), not sustained overload —
// a watcher slower than the steady append rate is lagged by definition.
const watchQueueLen = 1024

type watchRequest struct {
	Run   string `json:"run"`
	Query string `json:"query"`
}

// watchSnapshotEvent is the first SSE event on a watch stream.
type watchSnapshotEvent struct {
	Run     string     `json:"run"`
	Query   string     `json:"query"`
	Version int        `json:"version"`
	Total   int        `json:"total"`
	Pairs   []pairJSON `json:"pairs"`
}

// watchDeltaEvent reports one committed growth batch's new matches.
type watchDeltaEvent struct {
	Run           string     `json:"run"`
	Version       int        `json:"version"`
	AppendedNodes int        `json:"appended_nodes"`
	AppendedEdges int        `json:"appended_edges"`
	Count         int        `json:"count"`
	Pairs         []pairJSON `json:"pairs"`
}

// watchLaggedEvent terminates a stream that fell behind the append rate.
type watchLaggedEvent struct {
	Run     string `json:"run"`
	Message string `json:"message"`
}

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	// The route sits outside the limited handler chain, so bound the
	// registration body here; the stream itself writes, never reads.
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var req watchRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Run == "" || req.Query == "" {
		s.writeError(w, http.StatusBadRequest, "bad_request", `"run" and "query" are required`)
		return
	}
	specName, ok := s.cat.RunSpecName(req.Run)
	if !ok {
		s.writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("run %q is not registered", req.Run))
		return
	}
	spec, ok := s.cat.Spec(specName)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "internal", fmt.Sprintf("run %q is bound to unknown specification %q", req.Run, specName))
		return
	}
	q, err := provrpq.ParseQuery(req.Query)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_query", err.Error())
		return
	}
	safe, err := s.cat.IsSafeQuery(spec, q)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_query", err.Error())
		return
	}
	if !safe {
		s.writeError(w, http.StatusBadRequest, "bad_query",
			fmt.Sprintf("standing queries require a safe query; %q is unsafe (its answers over existing nodes can change as edges arrive, so it has no append-only delta stream)", q))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "internal", "response writer does not support streaming")
		return
	}
	s.watchers.Add(1)
	defer s.watchers.Add(-1)
	if s.maxWatchers > 0 && s.watchers.Load() > int64(s.maxWatchers) {
		s.writeError(w, http.StatusTooManyRequests, "overloaded",
			fmt.Sprintf("server is at its open-watcher limit (%d)", s.maxWatchers))
		return
	}

	// Subscribe BEFORE snapshotting: an append committing between the two
	// steps then lands in the queue and is deduplicated by version below.
	// The reverse order would lose it entirely. The callback runs on the
	// appending goroutine while the run's growth lock is held, so it must
	// never block: a full queue marks the watcher lagged instead.
	events := make(chan provrpq.AppendEvent, watchQueueLen)
	lagged := make(chan struct{})
	var laggedOnce sync.Once
	cancel := s.cat.SubscribeAppends(func(ev provrpq.AppendEvent) {
		if ev.RunName != req.Run {
			return
		}
		select {
		case events <- ev:
		default:
			laggedOnce.Do(func() {
				s.mWatchDropped.Inc()
				close(lagged)
			})
		}
	})
	defer cancel()

	snapRun, snapVer, ok := s.cat.RunAt(req.Run)
	if !ok {
		s.writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("run %q is not registered", req.Run))
		return
	}
	// The snapshot evaluates over the immutable registered version — a
	// fresh engine, not the catalog's cached one, so a concurrent append
	// swapping the catalog engine cannot slide the snapshot forward past
	// events already queued.
	pairs, err := provrpq.NewEngine(snapRun).Evaluate(q)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "evaluate_failed", err.Error())
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if err := writeSSE(w, "snapshot", watchSnapshotEvent{
		Run: req.Run, Query: q.String(), Version: snapVer,
		Total: len(pairs), Pairs: toPairJSON(snapRun, pairs),
	}); err != nil {
		return
	}
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-lagged:
			// Best-effort terminal notice; the connection closes either way
			// and the client resynchronizes by reconnecting.
			_ = writeSSE(w, "lagged", watchLaggedEvent{
				Run:     req.Run,
				Message: fmt.Sprintf("watcher fell more than %d events behind the append rate; reconnect for a fresh snapshot", watchQueueLen),
			})
			flusher.Flush()
			return
		case ev := <-events:
			if ev.Version <= snapVer {
				// Already included in the snapshot (the append committed
				// between subscribing and snapshotting).
				continue
			}
			delta, err := s.cat.DeltaPairs(ev, q)
			if err != nil {
				// Unreachable for a query validated safe above, but a
				// half-closed stream must still terminate cleanly.
				if !errors.Is(err, provrpq.ErrUnsafeWatch) {
					_ = writeSSE(w, "lagged", watchLaggedEvent{Run: req.Run, Message: err.Error()})
				}
				return
			}
			if err := writeSSE(w, "delta", watchDeltaEvent{
				Run: req.Run, Version: ev.Version,
				AppendedNodes: ev.NewNodes, AppendedEdges: ev.NewEdges,
				Count: len(delta), Pairs: toPairJSON(ev.Run, delta),
			}); err != nil {
				return
			}
			s.mWatchDeltas.Inc()
			flusher.Flush()
		}
	}
}

// writeSSE writes one Server-Sent Event with a JSON data payload.
func writeSSE(w io.Writer, event string, data any) error {
	b, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	return err
}
