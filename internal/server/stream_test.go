package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"provrpq"
)

// ---- 413 request_too_large on every mutating route ----

// TestServerRequestTooLarge is the regression test for the body-limit
// contract: a body exceeding MaxBodyBytes must answer 413 with the
// machine-readable request_too_large code on every mutating route — both
// the io.ReadAll route (append) and the json.Decoder routes — never a
// generic 400/500 a client cannot distinguish from a malformed request.
func TestServerRequestTooLarge(t *testing.T) {
	cat, c := newService(t, Options{MaxBodyBytes: 512})
	// Register the fixture directly — the HTTP bodies for registration
	// would themselves exceed the tiny test limit.
	if err := cat.RegisterSpec("intro", introSpec(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DeriveRun("run-a", "intro", provrpq.DeriveOptions{Seed: 1, TargetEdges: 120}); err != nil {
		t.Fatal(err)
	}

	// Valid JSON that exceeds the limit: the decoder must hit the byte cap
	// mid-token, not a parse error first.
	big := strings.Repeat("y", 2048)
	oversized := map[string]string{
		"/v1/specs":            fmt.Sprintf(`{"name":"x","spec":%q}`, big),
		"/v1/runs":             fmt.Sprintf(`{"name":"x","spec":%q}`, big),
		"/v1/evaluate":         fmt.Sprintf(`{"run":"run-a","query":%q}`, big),
		"/v1/batch":            fmt.Sprintf(`{"queries":[%q]}`, big),
		"/v1/runs/run-a/edges": fmt.Sprintf(`{"edges":[],"nodes":[{"name":%q}]}`, big),
	}
	for path, body := range oversized {
		resp, err := c.hc.Post(c.base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("POST %s oversized = %d, want 413; body: %s", path, resp.StatusCode, raw)
		}
		var errResp struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(raw, &errResp); err != nil {
			t.Fatalf("POST %s oversized: bad error JSON %q: %v", path, raw, err)
		}
		if errResp.Error.Code != "request_too_large" {
			t.Fatalf("POST %s oversized code = %q, want request_too_large", path, errResp.Error.Code)
		}
	}
	// The watch route carries its own (1 MiB) registration-body bound.
	resp, err := c.hc.Post(c.base+"/v1/watch", "application/json",
		strings.NewReader(fmt.Sprintf(`{"run":"run-a","query":%q}`, strings.Repeat("z", 2<<20))))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge || !bytes.Contains(raw, []byte("request_too_large")) {
		t.Fatalf("oversized watch registration = %d %s, want 413 request_too_large", resp.StatusCode, raw)
	}

	// The server still works at the same limit for reasonable bodies.
	var ev struct {
		Count int `json:"count"`
	}
	c.do("POST", "/v1/evaluate", map[string]any{"run": "run-a", "query": "_*", "count_only": true},
		http.StatusOK, &ev)
	if ev.Count == 0 {
		t.Fatal("small request after 413s returned no matches")
	}
}

// ---- paging boundaries ----

// TestServerEvaluatePagingBoundary pins the wire shape at the window
// edges: an offset at (or past) the end returns a present, empty "pairs"
// array with the true total — never a missing field, null, or an error —
// and a window straddling the end returns exactly the tail.
func TestServerEvaluatePagingBoundary(t *testing.T) {
	_, c := newService(t, Options{})
	registerFixture(t, c)

	var full struct {
		Total int `json:"total"`
	}
	c.do("POST", "/v1/evaluate", map[string]any{"run": "run-a", "query": "_*"}, http.StatusOK, &full)
	if full.Total < 3 {
		t.Fatalf("fixture too small: %d pairs", full.Total)
	}

	// Raw-body checks: json.Unmarshal cannot distinguish absent from empty.
	rawEval := func(body string) []byte {
		t.Helper()
		resp, err := c.hc.Post(c.base+"/v1/evaluate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("evaluate %s = %d: %s", body, resp.StatusCode, raw)
		}
		return raw
	}

	// offset == total: the pager's natural last step.
	raw := rawEval(fmt.Sprintf(`{"run":"run-a","query":"_*","offset":%d}`, full.Total))
	if !bytes.Contains(raw, []byte(`"pairs":[]`)) {
		t.Fatalf("offset == total: response %s lacks empty pairs array", raw)
	}
	var atEnd struct {
		Total  int         `json:"total"`
		Count  int         `json:"count"`
		Offset int         `json:"offset"`
		Pairs  *[]struct{} `json:"pairs"`
	}
	if err := json.Unmarshal(raw, &atEnd); err != nil {
		t.Fatal(err)
	}
	if atEnd.Total != full.Total || atEnd.Count != full.Total || atEnd.Offset != full.Total {
		t.Fatalf("offset == total: total %d count %d offset %d, want all %d", atEnd.Total, atEnd.Count, atEnd.Offset, full.Total)
	}
	if atEnd.Pairs == nil || len(*atEnd.Pairs) != 0 {
		t.Fatalf("offset == total: pairs = %v, want present empty array", atEnd.Pairs)
	}

	// offset past the end behaves identically.
	raw = rawEval(fmt.Sprintf(`{"run":"run-a","query":"_*","offset":%d}`, full.Total+10))
	if !bytes.Contains(raw, []byte(`"pairs":[]`)) {
		t.Fatalf("offset past end: response %s lacks empty pairs array", raw)
	}

	// offset+limit straddling the end returns exactly the tail.
	var straddle struct {
		Total int                         `json:"total"`
		Pairs []struct{ From, To string } `json:"pairs"`
	}
	c.do("POST", "/v1/evaluate",
		map[string]any{"run": "run-a", "query": "_*", "offset": full.Total - 1, "limit": 5},
		http.StatusOK, &straddle)
	if len(straddle.Pairs) != 1 || straddle.Total != full.Total {
		t.Fatalf("straddling window: %d pairs (total %d), want exactly the 1-pair tail", len(straddle.Pairs), straddle.Total)
	}

	// count_only still omits the field entirely (the pre-paging shape).
	raw = rawEval(`{"run":"run-a","query":"_*","count_only":true}`)
	if bytes.Contains(raw, []byte(`"pairs"`)) {
		t.Fatalf("count_only: response %s should omit pairs", raw)
	}
}

// ---- NDJSON streaming ingestion ----

// ndjsonOf renders a decoded batch as NDJSON record lines, nodes first (so
// any group boundary leaves edges referencing only already-committed or
// same-group nodes).
func ndjsonOf(t testing.TB, batchJSON []byte) (lines []string, nodes, edges int) {
	t.Helper()
	var b struct {
		Nodes []json.RawMessage `json:"nodes"`
		Edges []json.RawMessage `json:"edges"`
	}
	if err := json.Unmarshal(batchJSON, &b); err != nil {
		t.Fatal(err)
	}
	for _, n := range b.Nodes {
		lines = append(lines, fmt.Sprintf(`{"node":%s}`, n))
	}
	for _, e := range b.Edges {
		lines = append(lines, fmt.Sprintf(`{"edge":%s}`, e))
	}
	return lines, len(b.Nodes), len(b.Edges)
}

// TestServerStreamIngest is the streaming differential: a run streamed as
// NDJSON through size-bounded group commits must answer every query exactly
// like the same graph uploaded whole, and the stream must actually have
// been grouped (multiple batches, version == batches).
func TestServerStreamIngest(t *testing.T) {
	cat, c := newService(t, Options{
		StreamFlushRecords:  7,
		StreamFlushInterval: -1, // size- and EOF-bounded only: deterministic grouping
	})
	specJSON, err := introSpec(t).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	c.do("POST", "/v1/specs", map[string]any{"name": "intro", "spec": json.RawMessage(specJSON)},
		http.StatusCreated, nil)
	spec, _ := cat.Spec("intro")
	native, err := spec.Derive(provrpq.DeriveOptions{Seed: 31, TargetEdges: 160})
	if err != nil {
		t.Fatal(err)
	}
	fullJSON, err := provrpq.EncodeRun(native)
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, batchJSON := splitRunJSON(t, fullJSON, native.NumNodes()/3)
	c.do("POST", "/v1/runs", map[string]any{"name": "full", "spec": "intro", "run": json.RawMessage(fullJSON)},
		http.StatusCreated, nil)
	c.do("POST", "/v1/runs", map[string]any{"name": "streamed", "spec": "intro", "run": json.RawMessage(baseJSON)},
		http.StatusCreated, nil)

	lines, wantNodes, wantEdges := ndjsonOf(t, batchJSON)
	body := strings.Join(lines, "\n") + "\n\n" // trailing blank line must be ignored
	resp, err := c.hc.Post(c.base+"/v1/runs/streamed/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream = %d: %s", resp.StatusCode, raw)
	}
	var sr streamResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	wantBatches := (len(lines) + 6) / 7
	if sr.Batches != wantBatches || sr.Version != wantBatches {
		t.Fatalf("stream response %+v: want %d batches (and version)", sr, wantBatches)
	}
	if sr.StreamedNodes != wantNodes || sr.StreamedEdges != wantEdges {
		t.Fatalf("stream response %+v: want %d nodes, %d edges streamed", sr, wantNodes, wantEdges)
	}
	if sr.Nodes != native.NumNodes() || sr.Edges != native.NumEdges() {
		t.Fatalf("stream response %+v: want final totals %d/%d", sr, native.NumNodes(), native.NumEdges())
	}

	// Differential: streamed-and-grouped == uploaded whole, safe and unsafe.
	for _, qs := range []string{"_*.s._*.publish", "ingest._*", "_*.a1._*", "_*"} {
		var got, want struct {
			Count int                         `json:"count"`
			Pairs []struct{ From, To string } `json:"pairs"`
		}
		c.do("POST", "/v1/evaluate", map[string]any{"run": "streamed", "query": qs}, http.StatusOK, &got)
		c.do("POST", "/v1/evaluate", map[string]any{"run": "full", "query": qs}, http.StatusOK, &want)
		if got.Count != want.Count {
			t.Fatalf("query %s: streamed count %d, whole count %d", qs, got.Count, want.Count)
		}
		for i := range got.Pairs {
			if got.Pairs[i] != want.Pairs[i] {
				t.Fatalf("query %s pair %d: streamed %v, whole %v", qs, i, got.Pairs[i], want.Pairs[i])
			}
		}
	}
}

// TestServerStreamErrors covers the stream's failure contract: unknown run,
// malformed records, ambiguous records, and the per-record size bound
// (which must surface as 413 request_too_large, like the body bound).
func TestServerStreamErrors(t *testing.T) {
	cat, c := newService(t, Options{MaxRecordBytes: 256})
	if err := cat.RegisterSpec("intro", introSpec(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DeriveRun("run-a", "intro", provrpq.DeriveOptions{Seed: 1, TargetEdges: 120}); err != nil {
		t.Fatal(err)
	}
	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := c.hc.Post(c.base+path, "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}

	if code, raw := post("/v1/runs/ghost/stream", `{"edge":{"From":0,"To":1,"Tag":"s"}}`); code != http.StatusNotFound {
		t.Fatalf("unknown run = %d: %s", code, raw)
	}
	if code, raw := post("/v1/runs/run-a/stream", "not json\n"); code != http.StatusBadRequest || !bytes.Contains(raw, []byte("bad_request")) {
		t.Fatalf("malformed record = %d: %s", code, raw)
	}
	if code, raw := post("/v1/runs/run-a/stream",
		`{"node":{"name":"x","module":"y","label":""},"edge":{"From":0,"To":1,"Tag":"s"}}`+"\n"); code != http.StatusBadRequest {
		t.Fatalf("ambiguous record = %d: %s", code, raw)
	}
	if code, raw := post("/v1/runs/run-a/stream", `{"unknown":{}}`+"\n"); code != http.StatusBadRequest {
		t.Fatalf("unknown record kind = %d: %s", code, raw)
	}
	long := fmt.Sprintf(`{"edge":{"From":0,"To":1,"Tag":%q}}`, strings.Repeat("s", 1024))
	code, raw := post("/v1/runs/run-a/stream", long+"\n")
	if code != http.StatusRequestEntityTooLarge || !bytes.Contains(raw, []byte("request_too_large")) {
		t.Fatalf("oversized record = %d, want 413 request_too_large: %s", code, raw)
	}
	// A bad batch mid-stream reports the committed prefix; the run keeps it.
	two := `{"edge":{"From":0,"To":1,"Tag":"s"}}` + "\n" + `{"edge":{"From":0,"To":1,"Tag":"nope"}}` + "\n"
	if code, raw := post("/v1/runs/run-a/stream", two); code != http.StatusBadRequest || !bytes.Contains(raw, []byte("bad_batch")) {
		t.Fatalf("invalid-tag batch = %d: %s", code, raw)
	}
	if v, _ := cat.RunVersion("run-a"); v != 0 {
		// Both edges land in one EOF flush, so the failed group commits
		// nothing: the run must be untouched.
		t.Fatalf("run version after failed stream = %d, want 0", v)
	}
}

// ---- standing queries over SSE ----

// splitRunJSONAt carves an encoded run into a base payload (nodes below
// cuts[0]) and one growth batch per further cut; every edge lands in the
// earliest segment that contains both its endpoints, so each batch is a
// valid append against the run as grown so far.
func splitRunJSONAt(t testing.TB, data []byte, cuts []int) (base []byte, batches [][]byte) {
	t.Helper()
	var rj struct {
		Nodes []json.RawMessage `json:"nodes"`
		Edges []struct {
			From, To int
			Tag      string
		} `json:"edges"`
	}
	if err := json.Unmarshal(data, &rj); err != nil {
		t.Fatal(err)
	}
	type edge struct {
		From int    `json:"From"`
		To   int    `json:"To"`
		Tag  string `json:"Tag"`
	}
	bounds := append([]int{}, cuts...)
	if bounds[len(bounds)-1] != len(rj.Nodes) {
		bounds = append(bounds, len(rj.Nodes))
	}
	edgesOf := make([][]edge, len(bounds))
	for _, e := range rj.Edges {
		mx := e.From
		if e.To > mx {
			mx = e.To
		}
		for i, b := range bounds {
			if mx < b {
				edgesOf[i] = append(edgesOf[i], edge(e))
				break
			}
		}
	}
	marshal := func(nodes []json.RawMessage, edges []edge) []byte {
		out, err := json.Marshal(map[string]any{"nodes": nodes, "edges": edges})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base = marshal(rj.Nodes[:bounds[0]], edgesOf[0])
	for i := 1; i < len(bounds); i++ {
		batches = append(batches, marshal(rj.Nodes[bounds[i-1]:bounds[i]], edgesOf[i]))
	}
	return base, batches
}

// readSSE reads one complete SSE event (event name + data payload).
func readSSE(t testing.TB, br *bufio.Reader) (event string, data []byte) {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if event != "" || data != nil {
				return event, data
			}
			continue
		}
		if v, ok := strings.CutPrefix(line, "event: "); ok {
			event = v
		}
		if v, ok := strings.CutPrefix(line, "data: "); ok {
			data = []byte(v)
		}
	}
}

// TestServerWatchSSE is the standing-query differential over the wire: the
// snapshot event plus the union of every delta event must equal a post-hoc
// full /v1/evaluate, with no duplicates across events.
func TestServerWatchSSE(t *testing.T) {
	cat, c := newService(t, Options{})
	specJSON, err := introSpec(t).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	c.do("POST", "/v1/specs", map[string]any{"name": "intro", "spec": json.RawMessage(specJSON)},
		http.StatusCreated, nil)
	spec, _ := cat.Spec("intro")
	native, err := spec.Derive(provrpq.DeriveOptions{Seed: 41, TargetEdges: 180})
	if err != nil {
		t.Fatal(err)
	}
	fullJSON, err := provrpq.EncodeRun(native)
	if err != nil {
		t.Fatal(err)
	}
	n := native.NumNodes()
	baseJSON, batches := splitRunJSONAt(t, fullJSON, []int{n / 3, 2 * n / 3})
	c.do("POST", "/v1/runs", map[string]any{"name": "r1", "spec": "intro", "run": json.RawMessage(baseJSON)},
		http.StatusCreated, nil)

	const query = "_*.s._*.publish" // safe in the intro fixture

	// Unsafe and malformed registrations are refused before any stream
	// starts.
	var errResp struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	c.do("POST", "/v1/watch", map[string]any{"run": "r1", "query": "s.s"}, http.StatusBadRequest, &errResp)
	if errResp.Error.Code != "bad_query" {
		t.Fatalf("unsafe watch code = %q, want bad_query", errResp.Error.Code)
	}
	c.do("POST", "/v1/watch", map[string]any{"run": "ghost", "query": query}, http.StatusNotFound, nil)

	// Open the watcher and read its snapshot.
	body, _ := json.Marshal(map[string]string{"run": "r1", "query": query})
	resp, err := c.hc.Post(c.base+"/v1/watch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("watch = %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	event, data := readSSE(t, br)
	if event != "snapshot" {
		t.Fatalf("first event = %q, want snapshot", event)
	}
	var snap struct {
		Version int                         `json:"version"`
		Total   int                         `json:"total"`
		Pairs   []struct{ From, To string } `json:"pairs"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != 0 || len(snap.Pairs) != snap.Total {
		t.Fatalf("snapshot = %+v", snap)
	}
	union := map[[2]string]bool{}
	for _, p := range snap.Pairs {
		union[[2]string{p.From, p.To}] = true
	}

	// Grow the run twice and collect one delta per append.
	for i, b := range batches {
		c.do("POST", "/v1/runs/r1/edges", json.RawMessage(b), http.StatusOK, nil)
		event, data := readSSE(t, br)
		if event != "delta" {
			t.Fatalf("append %d: event = %q, want delta", i, event)
		}
		var delta struct {
			Version int                         `json:"version"`
			Count   int                         `json:"count"`
			Pairs   []struct{ From, To string } `json:"pairs"`
		}
		if err := json.Unmarshal(data, &delta); err != nil {
			t.Fatal(err)
		}
		if delta.Version != i+1 || len(delta.Pairs) != delta.Count {
			t.Fatalf("append %d: delta = %+v", i, delta)
		}
		for _, p := range delta.Pairs {
			key := [2]string{p.From, p.To}
			if union[key] {
				t.Fatalf("append %d: pair %v duplicated across events", i, p)
			}
			union[key] = true
		}
	}

	// Post-hoc ground truth: the union must equal a full evaluation.
	var want struct {
		Pairs []struct{ From, To string } `json:"pairs"`
	}
	c.do("POST", "/v1/evaluate", map[string]any{"run": "r1", "query": query}, http.StatusOK, &want)
	if len(want.Pairs) != len(union) {
		t.Fatalf("snapshot+deltas has %d pairs, full evaluation %d", len(union), len(want.Pairs))
	}
	for _, p := range want.Pairs {
		if !union[[2]string{p.From, p.To}] {
			t.Fatalf("pair %v missing from snapshot+deltas", p)
		}
	}
}

// TestServerWatchLimit: the MaxWatchers bound answers 429 overloaded once
// exhausted, and frees the slot when a watcher disconnects.
func TestServerWatchLimit(t *testing.T) {
	_, c := newService(t, Options{MaxWatchers: 1})
	registerFixture(t, c)
	body := `{"run":"run-a","query":"_*"}`

	resp1, err := c.hc.Post(c.base+"/v1/watch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp1.Body.Close()
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first watcher = %d", resp1.StatusCode)
	}
	// The snapshot event proves the first watcher holds its slot.
	if event, _ := readSSE(t, bufio.NewReader(resp1.Body)); event != "snapshot" {
		t.Fatalf("first watcher event = %q", event)
	}

	resp2, err := c.hc.Post(c.base+"/v1/watch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests || !bytes.Contains(raw, []byte("overloaded")) {
		t.Fatalf("second watcher = %d %s, want 429 overloaded", resp2.StatusCode, raw)
	}
}
