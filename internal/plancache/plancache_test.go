package plancache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"provrpq/internal/automata"
	"provrpq/internal/wf"
)

func TestGetSharesOnePlan(t *testing.T) {
	spec := wf.PaperSpec()
	c := New(8)
	q := automata.MustParse("_*.e._*")
	e1, err := c.Get(spec, q)
	if err != nil {
		t.Fatal(err)
	}
	// A semantically equal but distinct parse must hit the same slot.
	e2, err := c.Get(spec, automata.MustParse("_*.e._*"))
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("same (spec, query) returned different plans")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Len != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / len 1", st)
	}
}

func TestDistinctSpecsDoNotCollide(t *testing.T) {
	c := New(8)
	q := automata.MustParse("_*")
	e1, err := c.Get(wf.PaperSpec(), q)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Get(wf.ForkSpec(), q)
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e2 {
		t.Error("plans for different specs must be distinct")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestLRUBound(t *testing.T) {
	spec := wf.PaperSpec()
	c := New(3)
	queries := []string{"_*", "_+", "_*.e._*", "_*.b._*", "ε"}
	for _, qs := range queries {
		if _, err := c.Get(spec, automata.MustParse(qs)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want capacity 3", c.Len())
	}
	st := c.Stats()
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	// The most recent key must still be resident (a hit, not a recompile).
	before := c.Stats().Hits
	if _, err := c.Get(spec, automata.MustParse("ε")); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Hits != before+1 {
		t.Error("most recently inserted key was evicted")
	}
}

func TestLRUKeepsRecentlyUsed(t *testing.T) {
	spec := wf.PaperSpec()
	c := New(2)
	a, b, x := automata.MustParse("_*"), automata.MustParse("_+"), automata.MustParse("ε")
	if _, err := c.Get(spec, a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(spec, b); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(spec, a); err != nil { // touch a: b becomes LRU
		t.Fatal(err)
	}
	if _, err := c.Get(spec, x); err != nil { // evicts b
		t.Fatal(err)
	}
	before := c.Stats().Misses
	if _, err := c.Get(spec, a); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Misses != before {
		t.Error("recently used key was evicted instead of the LRU one")
	}
}

func TestErrorNotCached(t *testing.T) {
	spec := wf.PaperSpec()
	c := New(8)
	// A query whose minimal DFA exceeds 64 states fails to compile: e.g. a
	// long chain of optionals multiplies states. b?^70 gives > 64 states.
	qs := ""
	for i := 0; i < 70; i++ {
		qs += "b?."
	}
	qs += "b"
	bad := automata.MustParse(qs)
	if _, err := c.Get(spec, bad); err == nil {
		t.Skip("query unexpectedly compiled; pick a bigger one")
	}
	if c.Len() != 0 {
		t.Errorf("failed compile left %d resident entries", c.Len())
	}
}

// TestConcurrentGetSingleflight hammers one cold key from many goroutines
// and asserts they all receive the identical plan. Run with -race.
func TestConcurrentGetSingleflight(t *testing.T) {
	spec := wf.PaperSpec()
	c := New(16)
	const goroutines = 32
	var wg sync.WaitGroup
	var first atomic.Pointer[struct{ p any }]
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, err := c.Get(spec, automata.MustParse("_*.e._*.b._*"))
			if err != nil {
				errs <- err
				return
			}
			v := &struct{ p any }{p: e}
			if !first.CompareAndSwap(nil, v) && first.Load().p != e {
				errs <- fmt.Errorf("goroutine saw a different plan")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (singleflight)", st.Misses)
	}
}
