// Package plancache shares compiled query environments across engines.
//
// The paper's key observation makes this sound: a compiled core.Env depends
// only on the pair (specification, query) — never on a run — so every run
// of one specification can answer a query from the same compiled plan. The
// cache is keyed by specification identity (a *wf.Spec is immutable after
// wf.New) and the canonical query string, deduplicates concurrent compiles
// of the same key singleflight-style (one goroutine compiles, the rest
// block on the result), and bounds its footprint with LRU eviction.
package plancache

import (
	"container/list"
	"sync"

	"provrpq/internal/automata"
	"provrpq/internal/core"
	"provrpq/internal/wf"
)

// DefaultCapacity bounds the process-wide shared cache: compiled plans are
// small (a DFA plus per-production bit matrices), so a generous bound costs
// little and keeps hot queries resident under churn.
const DefaultCapacity = 1024

// Key identifies one compiled plan.
type Key struct {
	Spec  *wf.Spec
	Query string
}

// entry is one cache slot. once guards the compile so concurrent Gets of a
// missing key run it exactly once; elem is the slot's LRU list node; done
// (guarded by the cache mutex) marks the compile finished — eviction skips
// in-flight slots so concurrent Gets of one key always share one Env.
// Outside Get (the annotated mutator) a slot is read-only: the Env it
// resolves to is handed to concurrent evaluators.
//
//provrpq:immutable
type entry struct {
	key  Key
	once sync.Once
	env  *core.Env
	err  error
	elem *list.Element
	done bool
}

// Cache is a concurrency-safe, LRU-bounded map from (spec, query) to
// compiled environments.
type Cache struct {
	//provrpq:lockrank planCacheMu 60
	mu      sync.Mutex
	cap     int
	entries map[Key]*entry
	lru     *list.List // front = most recently used; values are *entry

	hits      uint64
	misses    uint64
	evictions uint64
}

// New returns a cache bounded to capacity plans (<= 0 selects
// DefaultCapacity).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{cap: capacity, entries: map[Key]*entry{}, lru: list.New()}
}

// Get returns the compiled environment for (spec, query), compiling it at
// most once per resident key no matter how many goroutines ask
// concurrently. Compile errors are not cached: the failed slot is dropped
// so a later Get retries. Get implements core.EnvSource.
//
//provrpq:mutator
func (c *Cache) Get(spec *wf.Spec, query *automata.Node) (*core.Env, error) {
	key := Key{Spec: spec, Query: query.String()}

	c.mu.Lock()
	en, ok := c.entries[key]
	if ok {
		c.hits++
		c.lru.MoveToFront(en.elem)
	} else {
		c.misses++
		en = &entry{key: key}
		en.elem = c.lru.PushFront(en)
		c.entries[key] = en
		for len(c.entries) > c.cap && c.evictOldestLocked(en) {
		}
	}
	c.mu.Unlock()

	// Compile outside the cache lock: other keys stay available while a
	// slow compile runs, and duplicate callers of this key block here.
	en.once.Do(func() { en.env, en.err = core.Compile(spec, query) })
	if en.err != nil {
		c.drop(en)
		return nil, en.err
	}
	c.mu.Lock()
	en.done = true
	c.mu.Unlock()
	return en.env, nil
}

// evictOldestLocked removes the least-recently-used completed slot, never
// the one just inserted (keep) and never a slot whose compile is still in
// flight — evicting those would let a concurrent Get of the same key
// compile a second, distinct Env. With every slot in flight nothing is
// evicted and the cache temporarily exceeds its bound (by at most the
// number of concurrent compiles). It reports whether a slot was evicted.
// Callers hold c.mu.
func (c *Cache) evictOldestLocked(keep *entry) bool {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		en := el.Value.(*entry)
		if en == keep || !en.done {
			continue
		}
		c.lru.Remove(el)
		delete(c.entries, en.key)
		c.evictions++
		return true
	}
	return false
}

// drop removes a slot if it is still resident (used for failed compiles).
func (c *Cache) drop(en *entry) {
	c.mu.Lock()
	if cur, ok := c.entries[en.key]; ok && cur == en {
		c.lru.Remove(en.elem)
		delete(c.entries, en.key)
	}
	c.mu.Unlock()
}

// Len returns the resident plan count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Metrics reports cumulative cache traffic.
type Metrics struct {
	Hits, Misses, Evictions uint64
	Len                     int
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Metrics{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Len: len(c.entries)}
}
