// Package plan implements the selectivity-driven query planner: per-run tag
// statistics from the inverted index (occurrence counts, distinct-endpoint
// counts, run size) feed a cost model that chooses, per safe all-pairs
// query, among
//
//   - RPL (nested-loop decode of every pair, paper Option S1),
//   - OptRPL (reachability-filtered scan, Option S2), and
//   - Seeded (this package's index-seeded strategy: start from the rarest
//     required tag's occurrence list, restrict both endpoint lists to the
//     nodes that can reach / be reached from those occurrences via the
//     output-linear label join, then verify only the surviving candidate
//     pairs — by constant-time decode for safe queries, or by expanding
//     through the minimal DFA, forward or via automata.Node.Reverse(),
//     for unsafe ones).
//
// The paper's evaluation (Section V) shows the winner is workload-dependent:
// OptRPL dominates when answers are sparse relative to reachability, while
// rare-label seeding wins when one query tag is highly selective. The
// planner makes that choice from statistics instead of a fixed default.
//
// A Planner is bound to one run (one Index) and is safe for concurrent
// use. Its statistics are sampled once per run version — engines rebuilt
// after a growth batch get a fresh planner, so decisions track the run's
// current shape — while the per-query inputs (the required-symbol set)
// are memoized on the compiled plan itself and shared across runs.
package plan

import (
	"math/rand"
	"sync"

	"provrpq/internal/core"
	"provrpq/internal/derive"
	"provrpq/internal/index"
	"provrpq/internal/reach"
)

// Strategy enumerates the planner's choices for a safe all-pairs scan.
type Strategy int

const (
	// RPL decodes every pair of l1 × l2 (Option S1).
	RPL Strategy = iota
	// OptRPL decodes only the coarsely-reachable pairs (Option S2).
	OptRPL
	// Seeded anchors on the rarest required tag's occurrence list.
	Seeded
)

// String returns the strategy's wire name.
func (s Strategy) String() string {
	switch s {
	case RPL:
		return "rpl"
	case OptRPL:
		return "optrpl"
	case Seeded:
		return "seeded"
	}
	return "unknown"
}

// Decision is one plan: the chosen strategy, the seed the seeded strategy
// would anchor on, and the cost estimates (in label-decode units) that led
// to the choice.
type Decision struct {
	// Strategy is the cheapest estimate.
	Strategy Strategy
	// SeedTag is the rarest required tag ("" when the query requires no
	// tag, in which case Seeded was not a candidate).
	SeedTag string
	// SeedCount is SeedTag's occurrence count in the run (0 both for an
	// absent tag — the query then matches nothing in this run — and when
	// SeedTag is "").
	SeedCount int
	// Reverse reports that the target side of the seed looks more selective
	// than the source side: the seeded scan resolves target candidates
	// first, and an unsafe seeded expansion would run the reversed query
	// backward from them.
	Reverse bool
	// CostRPL, CostOptRPL and CostSeeded are the model's estimates in
	// decode units; CostSeeded is +Inf-free but only meaningful when
	// SeedTag != "".
	CostRPL, CostOptRPL, CostSeeded float64
	// UnitNanosRPL, UnitNanosOptRPL and UnitNanosSeeded are the
	// per-decode-unit costs (nanoseconds) the comparison weighted each
	// estimate by; MeasuredRPL/MeasuredOptRPL/MeasuredSeeded report
	// whether each came from the live EWMA of observed evaluations
	// (warm) or from the static StaticUnitNanos constant (cold). A
	// planner built without timings (New) is always static.
	UnitNanosRPL, UnitNanosOptRPL, UnitNanosSeeded float64
	MeasuredRPL, MeasuredOptRPL, MeasuredSeeded    bool
}

// Measured reports whether the chosen strategy's unit cost came from
// measured timings rather than the static constant.
func (d Decision) Measured() bool {
	switch d.Strategy {
	case RPL:
		return d.MeasuredRPL
	case Seeded:
		return d.MeasuredSeeded
	}
	return d.MeasuredOptRPL
}

// UnitCost returns the decode units the model estimates for strategy s
// under this decision (the Cost* field matching s).
func (d Decision) UnitCost(s Strategy) float64 {
	switch s {
	case RPL:
		return d.CostRPL
	case Seeded:
		return d.CostSeeded
	}
	return d.CostOptRPL
}

// densitySamples is the size of the deterministic reachability sample
// behind ReachDensity.
const densitySamples = 1024

// Planner owns the per-run statistics and the cost model.
type Planner struct {
	ix *index.Index
	tm *Timings // nil = static unit costs only

	densityOnce sync.Once
	density     float64
}

// New returns a planner over the run the index was built from, using the
// static unit-cost constants — decisions depend only on the run's
// statistics, so they are fully deterministic.
func New(ix *index.Index) *Planner { return &Planner{ix: ix} }

// NewWithTimings is New with measured decode-unit timings attached: once
// a strategy is warm, its observed nanoseconds-per-unit EWMA replaces
// the static constant in the cost comparison (cold strategies keep the
// constant, in the same nanosecond unit, so the comparison stays
// consistent). Engines pass SharedTimings so calibration survives engine
// swaps on run growth.
func NewWithTimings(ix *index.Index, tm *Timings) *Planner { return &Planner{ix: ix, tm: tm} }

// ReachDensity estimates P(u ⇝ v) for a uniform random ordered node pair by
// a fixed-seed sample of constant-time label decodes (so the estimate — and
// every plan built on it — is deterministic for a given run). An empty run
// reports 0.
func (p *Planner) ReachDensity() float64 {
	p.densityOnce.Do(func() {
		run := p.ix.Run()
		n := run.NumNodes()
		if n == 0 {
			return
		}
		rng := rand.New(rand.NewSource(1))
		hits := 0
		for i := 0; i < densitySamples; i++ {
			u := run.LabelBytes(derive.NodeID(rng.Intn(n)))
			v := run.LabelBytes(derive.NodeID(rng.Intn(n)))
			if reach.PairwiseBytes(run.Spec, u, v) {
				hits++
			}
		}
		p.density = float64(hits) / densitySamples
	})
	return p.density
}

// Plan chooses a strategy for an all-pairs scan of the compiled query over
// endpoint lists of the given sizes. The model counts label decodes:
//
//	RPL     n1·n2                                  one decode per pair
//	OptRPL  n1 + n2 + ρ·n1·n2                      trie build + one decode
//	                                               per coarsely-reachable pair
//	Seeded  (n1 + n2 + ds + dt)                    candidate trie joins
//	        + ρ·(n1·ds + n2·dt)                    join outputs
//	        + estL·estR                            decode of surviving pairs
//
// where ρ is the sampled reachability density, ds/dt the seed tag's
// distinct source/target counts, and estL = n1·min(1, ρ·ds) (resp. estR)
// estimates the candidate set sizes — the probability a random endpoint
// reaches one of ds seed sources is ≈ min(1, ρ·ds). Every term degrades
// gracefully: an empty run, an empty list or an absent seed tag yields
// zero estimates, never a division.
//
// The decision compares the unit estimates weighted by per-strategy
// per-unit costs: the static StaticUnitNanos constant for every strategy
// on a planner built with New, and each strategy's measured EWMA (once
// warm) on a planner built with NewWithTimings. With uniform constants
// the weighting cancels and the comparison reduces to the unit counts.
func (p *Planner) Plan(env *core.Env, n1, n2 int) Decision {
	f1, f2 := float64(n1), float64(n2)
	rho := p.ReachDensity()
	d := Decision{
		Strategy:   OptRPL,
		CostRPL:    f1 * f2,
		CostOptRPL: f1 + f2 + rho*f1*f2,
	}
	d.UnitNanosRPL, d.MeasuredRPL = p.tm.UnitNanos(RPL)
	d.UnitNanosOptRPL, d.MeasuredOptRPL = p.tm.UnitNanos(OptRPL)
	d.UnitNanosSeeded, d.MeasuredSeeded = p.tm.UnitNanos(Seeded)

	seed, count := "", -1
	for _, sym := range env.RequiredSyms() {
		if c := p.ix.Count(sym); count < 0 || c < count {
			seed, count = sym, c
		}
	}
	if seed != "" {
		de := p.ix.DistinctEndpoints(seed)
		ds, dt := float64(de.Sources), float64(de.Targets)
		estL := f1 * minf(1, rho*ds)
		estR := f2 * minf(1, rho*dt)
		d.SeedTag, d.SeedCount = seed, count
		d.Reverse = de.Targets < de.Sources
		d.CostSeeded = (f1 + f2 + ds + dt) + rho*(f1*ds+f2*dt) + estL*estR
		if d.CostSeeded*d.UnitNanosSeeded < d.CostOptRPL*d.UnitNanosOptRPL {
			d.Strategy = Seeded
		}
	}
	if d.CostRPL*d.UnitNanosRPL < d.weighted() {
		d.Strategy = RPL
	}
	return d
}

// weighted returns the nanosecond estimate of the currently chosen
// strategy (units × per-unit cost).
func (d Decision) weighted() float64 {
	switch d.Strategy {
	case RPL:
		return d.CostRPL * d.UnitNanosRPL
	case Seeded:
		return d.CostSeeded * d.UnitNanosSeeded
	}
	return d.CostOptRPL * d.UnitNanosOptRPL
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
