package plan

import (
	"math/rand"
	"sort"
	"testing"

	"provrpq/internal/automata"
	"provrpq/internal/baseline"
	"provrpq/internal/core"
	"provrpq/internal/derive"
	"provrpq/internal/index"
	"provrpq/internal/wf"
	"provrpq/internal/workload"
)

// testSpec is the package-doc grammar: S -> x A p, with A a linear
// recursion over a1/a2 steps. Tag "p" occurs exactly once per run (the
// edge into the final p node), "x"-side tags likewise — a natural rare
// seed — while "s" fires once per A iteration.
func testSpec(t *testing.T) *wf.Spec {
	t.Helper()
	b := wf.NewBuilder().Start("S")
	b.Chain("S", "x", "A", "p")
	b.Chain("A", "a1", "A", "s")
	b.Chain("A", "a2", "s")
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testRun(t *testing.T, spec *wf.Spec, seed int64, edges int) *derive.Run {
	t.Helper()
	r, err := derive.Derive(spec, derive.Options{Seed: seed, TargetEdges: edges})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func compile(t *testing.T, spec *wf.Spec, q string) (*automata.Node, *core.Env) {
	t.Helper()
	n := automata.MustParse(q)
	env, err := core.Compile(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	return n, env
}

func pairsOf(emitInto *[][2]int) func(i, j int) {
	return func(i, j int) { *emitInto = append(*emitInto, [2]int{i, j}) }
}

func sortPairs(ps [][2]int) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a][0] != ps[b][0] {
			return ps[a][0] < ps[b][0]
		}
		return ps[a][1] < ps[b][1]
	})
}

// oraclePairs computes the ground truth over index lists with the product
// BFS oracle.
func oraclePairs(run *derive.Run, q *automata.Node, l1, l2 []derive.NodeID) [][2]int {
	o := baseline.NewOracle(run, q)
	var out [][2]int
	o.AllPairs(l1, l2, pairsOf(&out))
	sortPairs(out)
	return out
}

func seededPairs(t *testing.T, env *core.Env, ix *index.Index, dec Decision, l1, l2 []derive.NodeID) [][2]int {
	t.Helper()
	var out [][2]int
	if err := AllPairsSeeded(env, ix, dec, l1, l2, pairsOf(&out)); err != nil {
		t.Fatal(err)
	}
	sortPairs(out)
	return out
}

func TestSeededMatchesOracle(t *testing.T) {
	spec := testSpec(t)
	queries := []string{
		"x.(a1|a2)+.s._*.p", // safe, anchored at both rare ends
		"_*.p._*",           // safe, rare tag p required
		"_*.s._*",           // safe, per-iteration tag
		"a1.(_*.s._*)",      // unsafe (anchored on the recursive branch)
		"s.s._*",            // counts steps: unsafe shape
	}
	for _, seed := range []int64{1, 2, 3} {
		run := testRun(t, spec, seed, 120)
		ix := index.Build(run)
		pl := New(ix)
		all := run.AllNodes()
		// A skewed sublist with duplicates exercises the index mapping.
		var sub []derive.NodeID
		for i, id := range all {
			if i%3 == 0 {
				sub = append(sub, id, id)
			}
		}
		for _, qs := range queries {
			q, env := compile(t, spec, qs)
			dec := pl.Plan(env, len(all), len(all))
			for _, lists := range [][2][]derive.NodeID{{all, all}, {sub, all}, {all, sub}} {
				want := oraclePairs(run, q, lists[0], lists[1])
				got := seededPairs(t, env, ix, dec, lists[0], lists[1])
				if len(got) != len(want) {
					t.Fatalf("seed %d query %s: seeded %d pairs, oracle %d", seed, qs, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %d query %s: pair %d: seeded %v, oracle %v", seed, qs, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestSeededBothDirections forces both expansion directions of the unsafe
// path and both candidate orders of the safe path — correctness must not
// depend on the planner's Reverse estimate.
func TestSeededBothDirections(t *testing.T) {
	spec := testSpec(t)
	run := testRun(t, spec, 5, 150)
	ix := index.Build(run)
	all := run.AllNodes()
	for _, qs := range []string{"_*.p._*", "a1.(_*.s._*)"} {
		q, env := compile(t, spec, qs)
		pl := New(ix)
		dec := pl.Plan(env, len(all), len(all))
		if dec.SeedTag == "" {
			t.Fatalf("query %s: expected a required seed tag", qs)
		}
		want := oraclePairs(run, q, all, all)
		for _, rev := range []bool{false, true} {
			d := dec
			d.Reverse = rev
			got := seededPairs(t, env, ix, d, all, all)
			if len(got) != len(want) {
				t.Fatalf("query %s reverse=%v: %d pairs, oracle %d", qs, rev, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("query %s reverse=%v: pair %d: %v vs %v", qs, rev, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSeededFallbacks covers the no-seed paths: a query that requires no
// tag falls back to OptRPL (safe) or a full expansion (unsafe), and a
// decision carrying a tag the query does not require is ignored rather
// than trusted (trusting it would drop matches).
func TestSeededFallbacks(t *testing.T) {
	spec := testSpec(t)
	run := testRun(t, spec, 7, 100)
	ix := index.Build(run)
	all := run.AllNodes()

	// "_*" requires nothing and is safe.
	q, env := compile(t, spec, "_*")
	if syms := env.RequiredSyms(); len(syms) != 0 {
		t.Fatalf("_* should require no symbol, got %v", syms)
	}
	want := oraclePairs(run, q, all, all)
	got := seededPairs(t, env, ix, Decision{}, all, all)
	if len(got) != len(want) {
		t.Fatalf("_* fallback: %d pairs, oracle %d", len(got), len(want))
	}

	// "s?.a1.s?" style: unsafe with no required symbol — s? and the
	// anchoring make "a1" required though; use an alternation instead so
	// nothing is required.
	q, env = compile(t, spec, "(a1|s)._*")
	if env.Safe() {
		t.Skip("query unexpectedly safe for this grammar")
	}
	if syms := env.RequiredSyms(); len(syms) != 0 {
		t.Fatalf("(a1|s)._* should require no symbol, got %v", syms)
	}
	want = oraclePairs(run, q, all, all)
	got = seededPairs(t, env, ix, Decision{}, all, all)
	if len(got) != len(want) {
		t.Fatalf("unsafe no-seed fallback: %d pairs, oracle %d", len(got), len(want))
	}

	// A bogus seed (not required by the query) must be ignored.
	q, env = compile(t, spec, "_*.s._*")
	want = oraclePairs(run, q, all, all)
	got = seededPairs(t, env, ix, Decision{SeedTag: "p"}, all, all)
	if len(got) != len(want) {
		t.Fatalf("bogus seed: %d pairs, oracle %d", len(got), len(want))
	}
}

// TestSeededAbsentTag: a required tag with zero occurrences means no path
// can match — the scan must return empty without touching anything.
func TestSeededAbsentTag(t *testing.T) {
	spec := testSpec(t)
	run := testRun(t, spec, 9, 0) // minimal run: recursion winds down fast
	ix := index.Build(run)
	all := run.AllNodes()
	// "ghost" is not in Γ; the DFA still requires it, and no edge carries it.
	q, env := compile(t, spec, "_*.ghost._*")
	pl := New(ix)
	dec := pl.Plan(env, len(all), len(all))
	if dec.SeedTag != "ghost" || dec.SeedCount != 0 {
		t.Fatalf("expected ghost seed with zero occurrences, got %+v", dec)
	}
	got := seededPairs(t, env, ix, dec, all, all)
	if len(got) != 0 {
		t.Fatalf("absent tag: expected no pairs, got %d", len(got))
	}
	if want := oraclePairs(run, q, all, all); len(want) != 0 {
		t.Fatalf("oracle disagrees: %d pairs for a query requiring an absent tag", len(want))
	}
}

// TestPlanEdgeCases: empty runs and empty lists must produce finite zero
// costs, never a division by zero or NaN.
func TestPlanEdgeCases(t *testing.T) {
	spec := testSpec(t)
	empty, err := derive.DecodeRun(spec, []byte(`{"nodes":[],"edges":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(empty)
	pl := New(ix)
	if d := pl.ReachDensity(); d != 0 {
		t.Fatalf("empty run density = %v, want 0", d)
	}
	_, env := compile(t, spec, "_*.p._*")
	dec := pl.Plan(env, 0, 0)
	for name, c := range map[string]float64{"rpl": dec.CostRPL, "optrpl": dec.CostOptRPL, "seeded": dec.CostSeeded} {
		if c != c || c < 0 { // NaN or negative
			t.Fatalf("empty-run cost %s = %v", name, c)
		}
	}
	var out [][2]int
	if err := AllPairsSeeded(env, ix, dec, nil, nil, pairsOf(&out)); err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty run produced %d pairs", len(out))
	}
}

// TestPlanDeterminism: the sampled statistics are fixed-seed, so two
// planners over one run must agree exactly.
func TestPlanDeterminism(t *testing.T) {
	d := workload.BioAID()
	run, err := derive.Derive(d.Spec, derive.Options{Seed: 3, TargetEdges: 400})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(run)
	r := rand.New(rand.NewSource(11))
	qs := d.SafeIFQ(r, 3, false)
	_, env := compile(t, d.Spec, qs)
	a := New(ix).Plan(env, run.NumNodes(), run.NumNodes())
	b := New(ix).Plan(env, run.NumNodes(), run.NumNodes())
	if a != b {
		t.Fatalf("plans differ: %+v vs %+v", a, b)
	}
}

// TestPlanWorkloadChoices pins the planner's headline behaviour on the
// paper's workloads: a highly selective anchored IFQ is answered by the
// seeded strategy, a dense per-iteration IFQ by optRPL.
func TestPlanWorkloadChoices(t *testing.T) {
	for _, d := range []*workload.Dataset{workload.BioAID(), workload.QBLast()} {
		run, err := derive.Derive(d.Spec, derive.Options{Seed: 1, TargetEdges: 1000})
		if err != nil {
			t.Fatal(err)
		}
		ix := index.Build(run)
		pl := New(ix)
		r := rand.New(rand.NewSource(1))
		n := run.NumNodes()

		_, env := compile(t, d.Spec, d.SafeIFQ(r, 3, false))
		if dec := pl.Plan(env, n, n); dec.Strategy != Seeded {
			t.Errorf("%s selective IFQ: chose %v (seed %q count %d), want seeded: %+v",
				d.Name, dec.Strategy, dec.SeedTag, dec.SeedCount, dec)
		}
		_, env = compile(t, d.Spec, d.SafeIFQ(r, 3, true))
		if dec := pl.Plan(env, n, n); dec.Strategy == RPL {
			t.Errorf("%s dense IFQ: chose rpl, want a filtered scan: %+v", d.Name, dec)
		}
	}
}
