package plan

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"provrpq/internal/derive"
	"provrpq/internal/index"
	"provrpq/internal/workload"
)

// TestTimingsWarmup: a strategy reports the static constant until it has
// timingsWarmSamples observations, then the EWMA of what was observed.
func TestTimingsWarmup(t *testing.T) {
	var tm Timings
	if ns, measured := tm.UnitNanos(Seeded); measured || ns != StaticUnitNanos {
		t.Fatalf("cold strategy = (%v, %v), want (%v, false)", ns, measured, StaticUnitNanos)
	}
	// 1000 units in 50µs = 50ns/unit, observed repeatedly.
	for i := 0; i < timingsWarmSamples-1; i++ {
		tm.Observe(Seeded, 1000, 50*time.Microsecond)
		if _, measured := tm.UnitNanos(Seeded); measured {
			t.Fatalf("strategy warm after %d samples, want >= %d", i+1, timingsWarmSamples)
		}
	}
	tm.Observe(Seeded, 1000, 50*time.Microsecond)
	ns, measured := tm.UnitNanos(Seeded)
	if !measured {
		t.Fatalf("strategy still cold after %d samples", timingsWarmSamples)
	}
	if math.Abs(ns-50) > 1e-9 {
		t.Errorf("uniform 50ns/unit observations -> EWMA %v, want 50", ns)
	}
	// Other strategies stay cold: warmth is per strategy.
	if _, measured := tm.UnitNanos(OptRPL); measured {
		t.Error("OptRPL warmed from Seeded observations")
	}
	// EWMA tracks a shift: feed 200ns/unit and watch it move toward it.
	for i := 0; i < 50; i++ {
		tm.Observe(Seeded, 1000, 200*time.Microsecond)
	}
	if ns, _ := tm.UnitNanos(Seeded); math.Abs(ns-200) > 1 {
		t.Errorf("EWMA after sustained 200ns/unit = %v, want ~200", ns)
	}
	tm.Reset()
	if n := tm.Samples(Seeded); n != 0 {
		t.Errorf("samples after Reset = %d, want 0", n)
	}
	// Degenerate observations are ignored, never poison the average.
	tm.Observe(Seeded, 0, time.Second)
	tm.Observe(Seeded, -5, time.Second)
	tm.Observe(Seeded, 100, 0)
	tm.Observe(Strategy(99), 100, time.Second)
	if n := tm.Samples(Seeded); n != 0 {
		t.Errorf("degenerate observations counted: %d samples", n)
	}
	// A nil Timings (planner built with New) is inert and static.
	var nilTM *Timings
	nilTM.Observe(RPL, 100, time.Second)
	if ns, measured := nilTM.UnitNanos(RPL); measured || ns != StaticUnitNanos {
		t.Errorf("nil Timings = (%v, %v), want static", ns, measured)
	}
}

// TestPlanUsesMeasuredTimings: with measured per-unit costs attached,
// the same unit estimates can flip the decision — a strategy whose units
// are observed to be expensive loses to one observed cheap — while a
// planner without timings keeps the static choice. This is the
// replace-static-constants contract of the measured cost model.
func TestPlanUsesMeasuredTimings(t *testing.T) {
	d := workload.BioAID()
	run, err := derive.Derive(d.Spec, derive.Options{Seed: 1, TargetEdges: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(run)
	r := rand.New(rand.NewSource(1))
	_, env := compile(t, d.Spec, d.SafeIFQ(r, 3, false))
	n := run.NumNodes()

	static := New(ix).Plan(env, n, n)
	if static.Strategy != Seeded {
		t.Fatalf("static choice = %v, want Seeded (test needs the selective workload)", static.Strategy)
	}
	if static.Measured() || static.UnitNanosSeeded != StaticUnitNanos {
		t.Fatalf("static planner reported measured costs: %+v", static)
	}

	// Warm the timings with seeded observed 1000x more expensive per unit
	// than optrpl: the weighted comparison must flip to OptRPL.
	var tm Timings
	for i := 0; i < timingsWarmSamples; i++ {
		tm.Observe(Seeded, 1000, 100*time.Millisecond) // 100_000 ns/unit
		tm.Observe(OptRPL, 1000, 100*time.Microsecond) // 100 ns/unit
	}
	measured := NewWithTimings(ix, &tm).Plan(env, n, n)
	if !measured.MeasuredSeeded || !measured.MeasuredOptRPL {
		t.Fatalf("warm planner did not report measured unit costs: %+v", measured)
	}
	if measured.MeasuredRPL {
		t.Errorf("RPL was never observed but reports measured")
	}
	if measured.Strategy != OptRPL {
		t.Errorf("with seeded 1000x more expensive per unit, choice = %v, want OptRPL", measured.Strategy)
	}
	// The unit estimates themselves are model outputs and unchanged.
	if measured.CostSeeded != static.CostSeeded || measured.CostOptRPL != static.CostOptRPL {
		t.Errorf("unit estimates changed under timings: %+v vs %+v", measured, static)
	}

	// Timings agreeing with the static ratio (uniform per-unit costs)
	// must reproduce the static choice exactly.
	var uniform Timings
	for i := 0; i < timingsWarmSamples; i++ {
		for _, s := range []Strategy{RPL, OptRPL, Seeded} {
			uniform.Observe(s, 1000, 100*time.Microsecond)
		}
	}
	agree := NewWithTimings(ix, &uniform).Plan(env, n, n)
	if agree.Strategy != static.Strategy {
		t.Errorf("uniform measured costs flipped the choice: %v vs %v", agree.Strategy, static.Strategy)
	}
	if !agree.Measured() {
		t.Errorf("uniform warm planner reports static")
	}
}

// TestTimingsConcurrent: concurrent observers and readers are race-free
// (-race) and every observation is counted.
func TestTimingsConcurrent(t *testing.T) {
	var tm Timings
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tm.Observe(OptRPL, 100, time.Duration(1+i%7)*time.Microsecond)
				tm.UnitNanos(OptRPL)
			}
		}()
	}
	wg.Wait()
	if n := tm.Samples(OptRPL); n != workers*per {
		t.Errorf("samples = %d, want %d", n, workers*per)
	}
	ns, measured := tm.UnitNanos(OptRPL)
	if !measured || ns <= 0 || ns > 100 {
		t.Errorf("EWMA = (%v, %v), want measured in (0,100] ns/unit", ns, measured)
	}
}
