package plan

import (
	"provrpq/internal/automata"
	"provrpq/internal/core"
	"provrpq/internal/derive"
	"provrpq/internal/index"
	"provrpq/internal/label"
	"provrpq/internal/reach"
)

// AllPairsSeeded evaluates the compiled query over l1 × l2 anchored on the
// decision's seed tag, emitting each matching pair by list indices. It is
// exact for every query, safe or unsafe:
//
//  1. Every matching path traverses a seed-tagged edge (the seed is a
//     required symbol), so sources that reach no occurrence source and
//     targets unreachable from every occurrence target are discarded by two
//     output-linear label joins (reach.AllPairs against the distinct seed
//     endpoints). An absent seed tag means no pair can match.
//  2. The surviving candidate pairs are verified exactly: safe queries by
//     the constant-time label decode; unsafe queries by expanding through
//     the minimal DFA — forward from each source candidate, or backward
//     from each target candidate with the DFA of the reversed query
//     (automata.Node.Reverse()) when the target side is smaller.
//
// The decision's Reverse flag (which end the planner estimated more
// selective) orders the candidate joins so the emptier side is resolved —
// and can short-circuit the whole scan — first; the unsafe expansion then
// re-decides its direction from the actual candidate counts.
//
// A decision without a seed tag (the query requires no symbol) falls back
// to OptRPL for safe queries and to a full bidirectional expansion for
// unsafe ones — the shapes where seeding has nothing to anchor on.
func AllPairsSeeded(env *core.Env, ix *index.Index, dec Decision, l1, l2 []derive.NodeID, emit func(i, j int)) error {
	run := ix.Run()
	seed := dec.SeedTag
	if seed != "" && !isRequired(env, seed) {
		// Defensive: a seed the query does not require would drop matches
		// that avoid it. Fall back to the unseeded paths instead.
		seed = ""
	}
	la, lb := labelsOf(run, l1), labelsOf(run, l2)
	if seed == "" {
		if env.Safe() {
			return env.AllPairsSafe(la, lb, core.OptRPL, emit)
		}
		return expandPairs(env, run, allIdx(len(l1)), allIdx(len(l2)), l1, l2, len(l2) < len(l1), emit)
	}
	if ix.Count(seed) == 0 {
		return nil // required tag absent from the run: nothing can match
	}

	// Distinct seed endpoints: several occurrences often share sources or
	// targets, and the candidate joins only care about the distinct sets.
	var srcLabels, dstLabels []label.Label
	srcSeen := map[derive.NodeID]struct{}{}
	dstSeen := map[derive.NodeID]struct{}{}
	ix.EachPair(seed, func(p index.Pair) {
		if _, ok := srcSeen[p.From]; !ok {
			srcSeen[p.From] = struct{}{}
			srcLabels = append(srcLabels, run.Label(p.From))
		}
		if _, ok := dstSeen[p.To]; !ok {
			dstSeen[p.To] = struct{}{}
			dstLabels = append(dstLabels, run.Label(p.To))
		}
	})

	candSources := func() []int {
		in := make([]bool, len(l1))
		reach.AllPairs(run.Spec, la, srcLabels, func(i, _ int) { in[i] = true })
		return collect(in)
	}
	candTargets := func() []int {
		in := make([]bool, len(l2))
		reach.AllPairs(run.Spec, dstLabels, lb, func(_, j int) { in[j] = true })
		return collect(in)
	}
	var L, R []int
	if dec.Reverse {
		if R = candTargets(); len(R) == 0 {
			return nil
		}
		L = candSources()
	} else {
		if L = candSources(); len(L) == 0 {
			return nil
		}
		R = candTargets()
	}
	if len(L) == 0 || len(R) == 0 {
		return nil
	}
	if env.Safe() {
		d := env.NewDecoder()
		for _, i := range L {
			for _, j := range R {
				if d.PairwiseUnchecked(la[i], lb[j]) {
					emit(i, j)
				}
			}
		}
		return nil
	}
	return expandPairs(env, run, L, R, l1, l2, len(R) < len(L), emit)
}

// isRequired reports whether the compiled query requires sym.
func isRequired(env *core.Env, sym string) bool {
	for _, s := range env.RequiredSyms() {
		if s == sym {
			return true
		}
	}
	return false
}

// expandPairs verifies candidate pairs by product traversal of the run with
// the query DFA. Forward mode expands from each source candidate with the
// compiled minimal DFA; reverse mode (rev, chosen when the target side is
// smaller) expands from each target candidate over incoming edges with the
// DFA of the reversed query, which accepts exactly the reversals of the
// query's words. Emission is deterministic: candidate-major in the
// expansion side's order, list order on the other side.
func expandPairs(env *core.Env, run *derive.Run, L, R []int, l1, l2 []derive.NodeID, rev bool, emit func(i, j int)) error {
	if len(L) == 0 || len(R) == 0 {
		return nil
	}
	if !rev {
		for _, i := range L {
			hits := expand(run, env.DFA, l1[i], false)
			for _, j := range R {
				if hits[l2[j]] {
					emit(i, j)
				}
			}
		}
		return nil
	}
	rdfa := automata.CompileDFA(env.Query.Reverse(), run.Spec.Tags())
	for _, j := range R {
		hits := expand(run, rdfa, l2[j], true)
		for _, i := range L {
			if hits[l1[i]] {
				emit(i, j)
			}
		}
	}
	return nil
}

// expand runs the product traversal of run × dfa from one node and returns
// the set of nodes reached in an accepting state; the start node itself is
// included when the start state accepts (the empty path). backward walks
// incoming edges instead of outgoing ones.
func expand(run *derive.Run, dfa *automata.DFA, from derive.NodeID, backward bool) map[derive.NodeID]bool {
	nq := dfa.NumStates()
	seen := make([]bool, run.NumNodes()*nq)
	type item struct {
		n derive.NodeID
		q int
	}
	stack := []item{{from, dfa.Start}}
	seen[int(from)*nq+dfa.Start] = true
	hits := map[derive.NodeID]bool{}
	if dfa.Accept[dfa.Start] {
		hits[from] = true
	}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		edges := run.Out(it.n)
		if backward {
			edges = run.In(it.n)
		}
		for _, ei := range edges {
			e := run.Edges[ei]
			next := e.To
			if backward {
				next = e.From
			}
			q2 := dfa.Step(it.q, e.Tag)
			if q2 < 0 || seen[int(next)*nq+q2] {
				continue
			}
			seen[int(next)*nq+q2] = true
			if dfa.Accept[q2] {
				hits[next] = true
			}
			stack = append(stack, item{next, q2})
		}
	}
	return hits
}

func labelsOf(run *derive.Run, ids []derive.NodeID) []label.Label {
	out := make([]label.Label, len(ids))
	for i, id := range ids {
		out[i] = run.Label(id)
	}
	return out
}

func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func collect(in []bool) []int {
	var out []int
	for i, ok := range in {
		if ok {
			out = append(out, i)
		}
	}
	return out
}
