package plan

import (
	"math"
	"sync/atomic"
	"time"
)

// StaticUnitNanos is the cost model's static per-decode-unit constant:
// with no measurements, every strategy's cost estimate is
// units × StaticUnitNanos, which preserves the unit-count comparison the
// planner shipped with (the constant cancels out of every comparison).
// Once a strategy is warm its measured per-unit timing replaces the
// constant, so strategies whose "decode unit" is systematically more or
// less expensive than the model assumed — the seeded strategy's join
// outputs versus OptRPL's trie probes — compete on observed wall time
// instead of on the modeled unit count alone.
const StaticUnitNanos = 100.0

// timingsWarmSamples is how many observations a strategy needs before
// its EWMA replaces the static constant: a single measurement of a
// cold-cache run would otherwise swing plans by an order of magnitude.
const timingsWarmSamples = 8

// timingsAlpha is the EWMA smoothing factor. 0.2 means the estimate
// reflects roughly the last dozen evaluations — responsive to a run
// growing or caches warming, stable against one outlier.
const timingsAlpha = 0.2

// Timings accumulates measured per-strategy decode-unit timings: after
// each all-pairs evaluation the engine reports the strategy that ran,
// the cost model's unit estimate for it, and the observed wall time, and
// Timings maintains an exponentially-weighted moving average of
// nanoseconds per unit. This is the feedback loop that replaces the cost
// model's static constants: the model keeps predicting unit counts from
// statistics, and Timings calibrates what a unit of each strategy
// actually costs on this machine, under this workload, right now.
//
// All methods are safe for concurrent use and wait-free except for a
// bounded CAS loop; observation sits on the evaluation path, so it must
// cost nanoseconds.
type Timings struct {
	strat [3]stratTiming // indexed by Strategy
}

type stratTiming struct {
	bits atomic.Uint64 // float64 bits of the EWMA (ns per unit)
	n    atomic.Uint64 // observation count
}

// sharedTimings is the process-wide instance: warmth survives engine
// swaps on run growth and is shared across every run of every
// specification — the quantity being estimated (time per decode unit on
// this hardware) is a property of the process, not of one run.
var sharedTimings Timings

// SharedTimings returns the process-wide measured-timings instance.
func SharedTimings() *Timings { return &sharedTimings }

// Observe records one evaluation: strategy s processed an estimated
// units decode units in d. Non-positive units or durations are ignored
// (an empty run's estimate is 0 units; there is nothing to calibrate).
func (t *Timings) Observe(s Strategy, units float64, d time.Duration) {
	if t == nil || units <= 0 || d <= 0 || s < 0 || int(s) >= len(t.strat) {
		return
	}
	ratio := float64(d.Nanoseconds()) / units
	if math.IsInf(ratio, 0) || math.IsNaN(ratio) {
		return
	}
	st := &t.strat[s]
	for {
		old := st.bits.Load()
		cur := math.Float64frombits(old)
		next := cur + timingsAlpha*(ratio-cur)
		if old == 0 && st.n.Load() == 0 {
			next = ratio // first sample seeds the average
		}
		if st.bits.CompareAndSwap(old, math.Float64bits(next)) {
			break
		}
	}
	st.n.Add(1)
}

// UnitNanos returns the strategy's estimated cost per decode unit in
// nanoseconds and whether it is measured: once warm
// (>= timingsWarmSamples observations) the live EWMA, otherwise the
// static constant. The static constant is returned in the same unit, so
// a comparison mixing warm and cold strategies stays consistent.
func (t *Timings) UnitNanos(s Strategy) (ns float64, measured bool) {
	if t == nil || s < 0 || int(s) >= len(t.strat) {
		return StaticUnitNanos, false
	}
	st := &t.strat[s]
	if st.n.Load() < timingsWarmSamples {
		return StaticUnitNanos, false
	}
	v := math.Float64frombits(st.bits.Load())
	if v <= 0 {
		return StaticUnitNanos, false
	}
	return v, true
}

// Samples returns the strategy's observation count.
func (t *Timings) Samples(s Strategy) uint64 {
	if t == nil || s < 0 || int(s) >= len(t.strat) {
		return 0
	}
	return t.strat[s].n.Load()
}

// Reset clears every strategy back to cold (tests; a fleet-wide config
// change that invalidates old measurements).
func (t *Timings) Reset() {
	for i := range t.strat {
		t.strat[i].bits.Store(0)
		t.strat[i].n.Store(0)
	}
}
