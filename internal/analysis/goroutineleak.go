package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineLeakAnalyzer checks that every `go` statement has a bounded
// exit: its body must not loop forever without a return or break (the
// usual bounded shapes — a ctx.Done()/done-channel select case that
// returns, a closed-channel range, plain bounded work — all pass), a
// blocking net/http serve call inside a goroutine must not discard its
// error (the listener could then never be joined), and a goroutine
// sending on an unbuffered channel the spawner never receives from is
// flagged as blocked forever. `go someFunc()` spawns are checked through
// the call graph, so a leak inside a named worker in another package is
// still reported at the spawn site. Intentionally unbounded goroutines
// are annotated //provrpq:detached <reason> — on the go statement's line
// (or the line above), or on the spawned/spawning function.
var GoroutineLeakAnalyzer = &Analyzer{
	Name: "goroutineleak",
	Doc:  "every go statement has a bounded exit or a //provrpq:detached <reason> annotation",
	Run:  func(pass *Pass) { pass.Interprocedural(runGoroutineLeak) },
}

func runGoroutineLeak(f *Facts, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	funcs := f.Funcs()
	for _, pkg := range f.Pkgs {
		for _, file := range pkg.Files {
			detachedLines := collectDetachedLines(pkg, file, report)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				encl, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					g, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					line := pkg.Fset.Position(g.Pos()).Line
					if detachedLines[line] || f.Dirs.Detached(encl) {
						return true
					}
					checkGoStmt(f, pkg, fd, g, funcs, report)
					return true
				})
			}
		}
	}
}

// collectDetachedLines scans a file for free-standing
// //provrpq:detached comments and returns the go-statement lines they
// cover (the comment's own line for trailing comments, the line below
// for comments above the statement). A detached comment with no reason
// is itself a finding — and does not suppress.
func collectDetachedLines(pkg *Package, file *ast.File, report func(pkg *Package, pos token.Pos, format string, args ...any)) map[int]bool {
	docs := map[*ast.CommentGroup]bool{}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
			docs[fd.Doc] = true
		}
	}
	lines := map[int]bool{}
	for _, g := range file.Comments {
		for _, c := range g.List {
			rest, ok := strings.CutPrefix(c.Text, "//provrpq:detached")
			if !ok {
				continue
			}
			if strings.TrimSpace(rest) == "" {
				// Misplaced-or-empty doc-comment cases are already
				// reported by the directive collector. Anchor at the
				// group, matching the collector's convention.
				if !docs[g] {
					report(pkg, g.Pos(), "//provrpq:detached requires a reason")
				}
				continue
			}
			line := pkg.Fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

func checkGoStmt(f *Facts, pkg *Package, encl *ast.FuncDecl, g *ast.GoStmt, funcs map[string]*FnDecl, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		for _, pos := range unboundedLoops(lit.Body) {
			_ = pos
			report(pkg, g.Pos(), "spawned goroutine loops forever without return or break; select on a done channel or annotate //provrpq:detached <reason>")
			break // one finding per goroutine is enough
		}
		checkDiscardedServe(pkg, lit.Body, report)
		checkUnreceivedSends(pkg, encl, g, lit.Body, report)
		return
	}
	// Named spawn: follow the call edge and check the target's body.
	fn := staticCallee(pkg.Info, g.Call)
	if fn == nil {
		return
	}
	if f.Dirs.Detached(fn) {
		return
	}
	target := funcs[funcKey(fn)]
	if target == nil {
		return
	}
	if len(unboundedLoops(target.Decl.Body)) > 0 {
		report(pkg, g.Pos(), "goroutine %s loops forever without return or break; annotate it //provrpq:detached <reason> if intentional", funcKey(fn))
	}
}

// unboundedLoops returns the positions of `for { ... }` loops with no
// condition and no way out (no return, no break binding to the loop, no
// panic). Nested function literals are separate goroutine-less scopes
// and are skipped.
func unboundedLoops(body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !stmtHasExit(n.Body, true) {
				out = append(out, n.Pos())
			}
		}
		return true
	})
	return out
}

// stmtHasExit reports whether s can leave the enclosing loop: a return,
// a panic, a labeled break, or — when breakBinds (s is directly inside
// the loop rather than a nested loop/switch/select, where an unlabeled
// break binds to the inner construct) — a plain break.
func stmtHasExit(s ast.Stmt, breakBinds bool) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK && (breakBinds || s.Label != nil)
	case *ast.BlockStmt:
		for _, st := range s.List {
			if stmtHasExit(st, breakBinds) {
				return true
			}
		}
	case *ast.IfStmt:
		if stmtHasExit(s.Body, breakBinds) {
			return true
		}
		if s.Else != nil {
			return stmtHasExit(s.Else, breakBinds)
		}
	case *ast.LabeledStmt:
		return stmtHasExit(s.Stmt, breakBinds)
	case *ast.SwitchStmt:
		return clauseBodiesHaveExit(s.Body)
	case *ast.TypeSwitchStmt:
		return clauseBodiesHaveExit(s.Body)
	case *ast.SelectStmt:
		return clauseBodiesHaveExit(s.Body)
	case *ast.ForStmt:
		return stmtHasExit(s.Body, false)
	case *ast.RangeStmt:
		return stmtHasExit(s.Body, false)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func clauseBodiesHaveExit(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		for _, st := range stmts {
			if stmtHasExit(st, false) {
				return true
			}
		}
	}
	return false
}

// checkDiscardedServe flags blocking net/http serve calls inside a
// goroutine whose error result is thrown away: nothing can ever join
// the goroutine or learn the listener died.
func checkDiscardedServe(pkg *Package, body *ast.BlockStmt, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name := blockingServeName(pkg.Info, call); name != "" {
					report(pkg, call.Pos(), "%s blocks until the listener closes but its error is discarded; receive it on a channel so the goroutine can be joined, or annotate //provrpq:detached <reason>", name)
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 || !allBlank(n.Lhs) {
				return true
			}
			if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
				if name := blockingServeName(pkg.Info, call); name != "" {
					report(pkg, call.Pos(), "%s blocks until the listener closes but its error is discarded; receive it on a channel so the goroutine can be joined, or annotate //provrpq:detached <reason>", name)
				}
			}
		}
		return true
	})
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// blockingServeName recognizes the net/http entry points that block
// until their listener closes.
func blockingServeName(info *types.Info, call *ast.CallExpr) string {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return ""
	}
	switch fn.Name() {
	case "Serve", "ServeTLS", "ListenAndServe", "ListenAndServeTLS":
	default:
		return ""
	}
	if fn.Signature().Recv() != nil {
		return "(*http.Server)." + fn.Name()
	}
	return "http." + fn.Name()
}

// checkUnreceivedSends flags sends on unbuffered channels that the
// spawning function creates but never receives from or otherwise uses —
// the goroutine blocks on the send forever.
func checkUnreceivedSends(pkg *Package, encl *ast.FuncDecl, g *ast.GoStmt, body *ast.BlockStmt, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	ast.Inspect(body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(send.Chan).(*ast.Ident)
		if !ok {
			return true
		}
		ch, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if !unbufferedMakeOf(pkg, encl.Body, ch) {
			return true
		}
		if usedOutsideGoStmt(pkg, encl.Body, g, ch) {
			return true
		}
		report(pkg, send.Pos(), "goroutine sends on unbuffered channel %q but %s never receives from it; the send blocks forever", ch.Name(), encl.Name.Name)
		return true
	})
}

// unbufferedMakeOf reports whether ch is defined in scope by a one-arg
// make(chan T) — a channel the spawner owns and that has no slack.
func unbufferedMakeOf(pkg *Package, scope *ast.BlockStmt, ch *types.Var) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pkg.Info.Defs[id] != ch {
			return true
		}
		call, ok := defValue(pkg, scope, id).(*ast.CallExpr)
		if !ok {
			return true
		}
		if b, ok := pkg.Info.Uses[callFunIdent(call)].(*types.Builtin); ok && b.Name() == "make" && len(call.Args) == 1 {
			if t := pkg.Info.Types[call].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// defValue finds the expression assigned to the defining occurrence id
// (a := or var initializer), or nil.
func defValue(pkg *Package, scope *ast.BlockStmt, id *ast.Ident) ast.Expr {
	var out ast.Expr
	ast.Inspect(scope, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if lhs == id && i < len(n.Rhs) {
					out = n.Rhs[i]
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if name == id && i < len(n.Values) {
					out = n.Values[i]
				}
			}
		}
		return out == nil
	})
	return out
}

func callFunIdent(call *ast.CallExpr) *ast.Ident {
	id, _ := ast.Unparen(call.Fun).(*ast.Ident)
	return id
}

// usedOutsideGoStmt reports whether ch appears anywhere in the spawning
// function outside the go statement itself — a receive, a select case,
// or being passed along all count as the owner taking responsibility.
func usedOutsideGoStmt(pkg *Package, scope *ast.BlockStmt, g *ast.GoStmt, ch *types.Var) bool {
	used := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if pkg.Info.Uses[id] != ch {
			return true
		}
		if id.Pos() >= g.Pos() && id.End() <= g.End() {
			return true // inside the go statement under scrutiny
		}
		used = true
		return false
	})
	return used
}
