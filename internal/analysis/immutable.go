package analysis

import (
	"go/ast"
	"go/types"
)

// ImmutableAnalyzer enforces //provrpq:immutable: once such a value is
// published, nothing may store into it — no field writes, no element
// stores through its fields or values, no append/copy/delete/clear on
// them — except inside the type's constructors (same-package functions
// returning the type), package init, or functions explicitly annotated
// //provrpq:mutator. This is what makes constant-time pairwise decode
// and lock-free plan sharing sound: a compiled plan or a derivation
// label observed by one goroutine is byte-for-byte the value every other
// goroutine sees, forever.
var ImmutableAnalyzer = &Analyzer{
	Name: "immutable",
	Doc:  "flags stores into //provrpq:immutable types outside constructors, init and //provrpq:mutator functions",
	Run:  runImmutable,
}

func runImmutable(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkImmutableStore(pass, fd, lhs, "write")
					}
				case *ast.IncDecStmt:
					checkImmutableStore(pass, fd, n.X, "write")
				case *ast.CallExpr:
					checkImmutableBuiltin(pass, fd, n)
				}
				return true
			})
		}
	}
}

// checkImmutableStore walks the access path of a store target and reports
// the first immutable layer it pierces: a field of an annotated struct, an
// element of an annotated slice/map value, or a write through a pointer to
// an annotated type.
func checkImmutableStore(pass *Pass, fd *ast.FuncDecl, e ast.Expr, what string) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel := pass.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
				if tn := namedTypeName(sel.Recv()); tn != nil && pass.Dirs.immutableTypes[typeKey(tn)] && !writeExempt(pass, fd, tn) {
					pass.Reportf(x.Sel.Pos(), "%s to field %s of immutable type %s outside a constructor, init or //provrpq:mutator function", what, x.Sel.Name, tn.Name())
					return
				}
			}
			e = x.X
		case *ast.IndexExpr:
			if tn := namedTypeName(pass.Info.TypeOf(x.X)); tn != nil && pass.Dirs.immutableTypes[typeKey(tn)] && !writeExempt(pass, fd, tn) {
				pass.Reportf(x.Pos(), "element %s through immutable type %s outside a constructor, init or //provrpq:mutator function", what, tn.Name())
				return
			}
			e = x.X
		case *ast.StarExpr:
			if tn := namedTypeName(pass.Info.TypeOf(x.X)); tn != nil && pass.Dirs.immutableTypes[typeKey(tn)] && !writeExempt(pass, fd, tn) {
				pass.Reportf(x.Pos(), "%s through pointer replaces immutable type %s outside a constructor, init or //provrpq:mutator function", what, tn.Name())
				return
			}
			e = x.X
		default:
			return
		}
	}
}

// checkImmutableBuiltin flags append/copy/delete/clear whose target is (or
// is reached through) an immutable value: append may reuse shared backing
// even when its result is stored elsewhere.
func checkImmutableBuiltin(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || (b.Name() != "append" && b.Name() != "copy" && b.Name() != "delete" && b.Name() != "clear") {
		return
	}
	arg := ast.Unparen(call.Args[0])
	// A fresh value (conversion like Label(nil), or a composite literal)
	// has no shared backing; appending to it is construction, not
	// mutation.
	switch a := arg.(type) {
	case *ast.CompositeLit:
		return
	case *ast.CallExpr:
		if tv, ok := pass.Info.Types[a.Fun]; ok && tv.IsType() {
			return
		}
	}
	if tn := namedTypeName(pass.Info.TypeOf(arg)); tn != nil && pass.Dirs.immutableTypes[typeKey(tn)] && !writeExempt(pass, fd, tn) {
		pass.Reportf(call.Pos(), "%s on immutable type %s may write shared backing outside a constructor, init or //provrpq:mutator function (clone first)", id.Name, tn.Name())
		return
	}
	checkImmutableStore(pass, fd, arg, id.Name)
}

// writeExempt reports whether fd may mutate values of the annotated type
// tn: package init, an explicit //provrpq:mutator, or a constructor — a
// function in tn's package whose results include the type (by value,
// pointer, or slice).
func writeExempt(pass *Pass, fd *ast.FuncDecl, tn *types.TypeName) bool {
	if fd == nil || fd.Name.Name == "init" && fd.Recv == nil {
		return true
	}
	fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	if pass.Dirs.Mutator(fn) {
		return true
	}
	if fn.Pkg() == nil || tn.Pkg() == nil || fn.Pkg().Path() != tn.Pkg().Path() {
		return false
	}
	res := fn.Signature().Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if s, ok := t.Underlying().(*types.Slice); ok && namedTypeName(t) == nil {
			t = s.Elem()
		}
		if rtn := namedTypeName(t); rtn != nil && typeKey(rtn) == typeKey(tn) {
			return true
		}
	}
	return false
}
