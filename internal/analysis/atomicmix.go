package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMixAnalyzer flags the torn-protocol bug class the engine's
// lock-free structures depend on never having: a variable or field that
// is managed through sync/atomic functions in one place and read or
// written with a plain load/store in another. A single plain access
// silently demotes every atomic one — the race detector only catches it
// when a test happens to race. It also flags copying a struct that
// contains such an atomically-managed field: the copy forks the value
// behind the atomics' back. (Copies of sync.Mutex-style types are
// already covered by go vet's copylocks; this pass covers the plain
// int64-with-atomic.AddInt64 pattern vet cannot see.)
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags variables accessed both via sync/atomic and by plain load/store, and copies of structs containing them",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	// Pass 1: every &x handed to a sync/atomic function marks x's object
	// as atomically managed, and the &x node itself as sanctioned.
	managed := map[types.Object]bool{}
	sanctioned := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := addressedObj(pass, un.X); obj != nil {
					managed[obj] = true
					sanctioned[un] = true
				}
			}
			return true
		})
	}
	if len(managed) == 0 {
		return
	}
	// Pass 2: any other mention of a managed object is a plain access.
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || !managed[obj] {
				return true
			}
			for _, anc := range stack {
				if sanctioned[anc] {
					return true
				}
			}
			pass.Reportf(id.Pos(), "plain access of %s, which is managed with sync/atomic elsewhere in this package; use the atomic API for every access", id.Name)
			return true
		})
	}
	// Pass 3: copying a struct that contains a managed field forks the
	// value behind the atomics' back.
	structsWithManaged := map[string]bool{}
	for obj := range managed {
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			// Find the owning named struct by scanning package types.
			scope := pass.Pkg.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok {
					continue
				}
				st, ok := tn.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					if st.Field(i) == obj {
						structsWithManaged[typeKey(tn)] = true
					}
				}
			}
		}
	}
	if len(structsWithManaged) == 0 {
		return
	}
	copiesManaged := func(e ast.Expr) *types.TypeName {
		tn := namedTypeName(pass.Info.TypeOf(e))
		if tn == nil || !structsWithManaged[typeKey(tn)] {
			return nil
		}
		if _, isPtr := pass.Info.TypeOf(e).(*types.Pointer); isPtr {
			return nil
		}
		switch ast.Unparen(e).(type) {
		case *ast.CompositeLit, *ast.CallExpr:
			return nil // construction, not a copy of a live value
		}
		return tn
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, r := range n.Rhs {
					if tn := copiesManaged(r); tn != nil {
						pass.Reportf(r.Pos(), "copy of %s, whose field is managed with sync/atomic; pass a pointer instead", tn.Name())
					}
				}
			case *ast.CallExpr:
				if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				for _, a := range n.Args {
					if tn := copiesManaged(a); tn != nil {
						pass.Reportf(a.Pos(), "%s passed by value, but its field is managed with sync/atomic; pass a pointer instead", tn.Name())
					}
				}
			}
			return true
		})
	}
}

func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// addressedObj resolves &x to the variable or field object being handed
// to the atomic API.
func addressedObj(pass *Pass, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objOf(pass, x)
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return pass.Info.Uses[x.Sel]
	}
	return nil
}
