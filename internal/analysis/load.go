// Package analysis is provrpq's repo-specific static-analysis suite: a
// small, dependency-free reimplementation of the golang.org/x/tools
// go/analysis shape (Analyzer, Pass, diagnostics, an analysistest-style
// golden harness) plus five analyzers keyed to the engine's safety
// invariants — immutability of published plans and labels, copy-on-write
// aliasing discipline over trusted/mmap buffers, atomic-vs-plain access
// mixing, the store's write→fsync→rename→dir-fsync commit order, and the
// errors.Is wrapping contract on store/catalog/server error paths.
//
// The suite is driven by cmd/provlint and is wired into CI as a required
// job; see the README's "Static analysis" section for the annotation
// syntax (//provrpq:immutable, //provrpq:trusted, //provrpq:mutator,
// //provrpq:fsyncsafe) and the suppression directive (//provlint:ignore).
//
// Why not golang.org/x/tools/go/analysis itself: the module is
// deliberately dependency-free (go.mod has no requirements), so the
// framework here reproduces the pieces the suite needs — package loading
// via `go list`, types from compiler export data, per-package passes —
// in a few hundred lines.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package under analysis.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Fset  *token.FileSet
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Loader loads packages for analysis: target packages are parsed and
// type-checked from source (with full function bodies and comments), while
// every dependency — standard library and module-internal alike — is
// imported from compiler export data produced by `go list -deps -export`.
// Export data carries exact types without the cost or fragility of
// type-checking dependency sources, and works offline from the build
// cache.
type Loader struct {
	Fset *token.FileSet

	// exports maps import path -> export data file, accumulated across
	// go list invocations so repeated LoadDir calls (the test harness)
	// list each dependency set at most once.
	exports map[string]string
	imp     types.Importer
}

// NewLoader returns a loader with an empty export-data cache.
func NewLoader() *Loader {
	l := &Loader{Fset: token.NewFileSet(), exports: map[string]string{}}
	l.imp = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q (not listed by go list -deps)", path)
		}
		return os.Open(f)
	})
	return l
}

// goList runs `go list -deps -export -json` on the patterns and folds the
// result into the export cache, returning the listed packages in
// dependency-first order. CGO is disabled so the file sets are
// self-contained Go.
func (l *Loader) goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	var pkgs []listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: parsing go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists the patterns (relative to dir; "" means the current
// directory) and returns the matched packages — the non-DepOnly ones —
// parsed and type-checked from source.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := l.goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range listed {
		if p.DepOnly {
			continue
		}
		pkg, err := l.check(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir loads one directory as a single package, resolving its imports
// through `go list` on the import paths themselves. This is the test
// harness's entry point: testdata packages are excluded from "./..."
// wildcards, so they are listed indirectly via their dependencies.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(files)
	// Parse first to learn the import set, then list whatever is missing
	// from the export cache.
	parsed, err := l.parse(dir, files)
	if err != nil {
		return nil, err
	}
	var missing []string
	for _, f := range parsed {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "unsafe" && l.exports[path] == "" {
				missing = append(missing, path)
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		if _, err := l.goList(dir, missing); err != nil {
			return nil, err
		}
	}
	return l.checkParsed("provlint.test/"+filepath.Base(dir), dir, parsed)
}

func (l *Loader) parse(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

func (l *Loader) check(path, dir string, names []string) (*Package, error) {
	files, err := l.parse(dir, names)
	if err != nil {
		return nil, err
	}
	return l.checkParsed(path, dir, files)
}

func (l *Loader) checkParsed(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Pkg: pkg, Info: info, Fset: l.Fset}, nil
}
