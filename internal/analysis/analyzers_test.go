package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestImmutable(t *testing.T)   { runAnalyzerTest(t, ImmutableAnalyzer, "immutable") }
func TestCowAlias(t *testing.T)    { runAnalyzerTest(t, CowAliasAnalyzer, "cowalias") }
func TestAtomicMix(t *testing.T)   { runAnalyzerTest(t, AtomicMixAnalyzer, "atomicmix") }
func TestFsyncOrder(t *testing.T)  { runAnalyzerTest(t, FsyncOrderAnalyzer, "fsyncorder") }
func TestErrSentinel(t *testing.T) { runAnalyzerTest(t, ErrSentinelAnalyzer, "errsentinel") }
func TestDirectives(t *testing.T)  { runAnalyzerTest(t, ImmutableAnalyzer, "directives") }

// TestMalformedIgnoreDoesNotSuppress loads a package whose only
// suppression lacks the required reason: the malformed directive must be
// reported and the finding underneath it must still fire.
func TestMalformedIgnoreDoesNotSuppress(t *testing.T) {
	loader := NewLoader()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "badignore"))
	if err != nil {
		t.Fatal(err)
	}
	diags := (&Suite{Analyzers: []*Analyzer{ImmutableAnalyzer}}).Run([]*Package{pkg})
	var gotMalformed, gotFinding bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "provlint" && strings.Contains(d.Message, "requires an analyzer name and a reason"):
			gotMalformed = true
		case d.Analyzer == "immutable" && strings.Contains(d.Message, "write to field n"):
			gotFinding = true
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !gotMalformed {
		t.Error("malformed //provlint:ignore was not reported")
	}
	if !gotFinding {
		t.Error("malformed //provlint:ignore suppressed the finding it sits on")
	}
}
