package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestImmutable(t *testing.T)   { runAnalyzerTest(t, ImmutableAnalyzer, "immutable") }
func TestCowAlias(t *testing.T)    { runAnalyzerTest(t, CowAliasAnalyzer, "cowalias") }
func TestAtomicMix(t *testing.T)   { runAnalyzerTest(t, AtomicMixAnalyzer, "atomicmix") }
func TestFsyncOrder(t *testing.T)  { runAnalyzerTest(t, FsyncOrderAnalyzer, "fsyncorder") }
func TestErrSentinel(t *testing.T) { runAnalyzerTest(t, ErrSentinelAnalyzer, "errsentinel") }
func TestDirectives(t *testing.T)  { runAnalyzerTest(t, ImmutableAnalyzer, "directives") }

func TestLockOrder(t *testing.T)     { runAnalyzerTest(t, LockOrderAnalyzer, "lockorder") }
func TestGoroutineLeak(t *testing.T) { runAnalyzerTest(t, GoroutineLeakAnalyzer, "goroutineleak") }
func TestCtxFlow(t *testing.T)       { runAnalyzerTest(t, CtxFlowAnalyzer, "ctxflow") }

// The multifile package splits a caller and its lock-inheriting callee
// across two files; the generics package ranks mutex fields inside a
// generic container. Both run the interprocedural lockorder analyzer.
func TestLockOrderMultiFile(t *testing.T) { runAnalyzerTest(t, LockOrderAnalyzer, "multifile") }
func TestLockOrderGenerics(t *testing.T)  { runAnalyzerTest(t, LockOrderAnalyzer, "generics") }

// TestLoaderMultiFile pins down that LoadDir folds every file of a
// directory into one type-checked package — the harness previously only
// ever saw single-file testdata packages.
func TestLoaderMultiFile(t *testing.T) {
	pkg, err := NewLoader().LoadDir(filepath.Join("testdata", "src", "multifile"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("LoadDir(multifile): got %d files, want 2", len(pkg.Files))
	}
}

// TestLockGraphDOT renders the lockorder testdata's declared hierarchy
// and checks the nodes carry ranks and the observed nesting edges are
// present.
func TestLockGraphDOT(t *testing.T) {
	pkg, err := NewLoader().LoadDir(filepath.Join("testdata", "src", "lockorder"))
	if err != nil {
		t.Fatal(err)
	}
	dot := LockGraphDOT([]*Package{pkg})
	for _, want := range []string{
		"digraph lockrank",
		`"catalogMu"`,
		`rank 10`,
		`"catalogMu" -> "storeMu"`, // observed in Catalog.OK
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("lock graph missing %q:\n%s", want, dot)
		}
	}
}

// TestMalformedIgnoreDoesNotSuppress loads a package whose only
// suppression lacks the required reason: the malformed directive must be
// reported and the finding underneath it must still fire.
func TestMalformedIgnoreDoesNotSuppress(t *testing.T) {
	loader := NewLoader()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "badignore"))
	if err != nil {
		t.Fatal(err)
	}
	diags := (&Suite{Analyzers: []*Analyzer{ImmutableAnalyzer}}).Run([]*Package{pkg})
	var gotMalformed, gotFinding bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "provlint" && strings.Contains(d.Message, "requires an analyzer name and a reason"):
			gotMalformed = true
		case d.Analyzer == "immutable" && strings.Contains(d.Message, "write to field n"):
			gotFinding = true
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !gotMalformed {
		t.Error("malformed //provlint:ignore was not reported")
	}
	if !gotFinding {
		t.Error("malformed //provlint:ignore suppressed the finding it sits on")
	}
}
