package analysis

import (
	"go/ast"
	"go/types"
)

// CowAliasAnalyzer enforces the aliasing discipline around trusted
// buffers — byte slices returned by //provrpq:trusted functions (mmap
// payloads from GetRunDataMapped, columnar payloads handed to
// OpenColumnar) or read from fields of //provrpq:trusted types. Such a
// buffer is shared, possibly mapped read-only, and possibly the backing
// of a published run, so:
//
//   - nothing may write through a view of it (index store, copy
//     destination, append — append can scribble into the mapping when
//     spare capacity reaches it);
//   - a raw (unclamped) view may not escape a non-trusted function by
//     return, composite literal or store into a field/global. Clamping
//     with a three-index slice b[lo:hi:hi] is the sanctioned escape
//     hatch (appends then reallocate), as is an explicit copy.
//
// The analysis is a per-function taint pass over local variables; it
// does not chase aliases through calls or non-trusted struct fields.
var CowAliasAnalyzer = &Analyzer{
	Name: "cowalias",
	Doc:  "flags writes through, and unclamped escapes of, views over trusted/mmap buffers",
	Run:  runCowAlias,
}

type taint int

const (
	clean   taint = iota
	clamped       // cap-clamped view: append-safe to share, still not writable
	raw           // unclamped view: aliases spare capacity of the buffer
)

func runCowAlias(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeCow(pass, fd)
		}
	}
}

type cowState struct {
	pass    *Pass
	fd      *ast.FuncDecl
	trusted bool // the function itself is annotated //provrpq:trusted
	vars    map[*types.Var]taint
}

func analyzeCow(pass *Pass, fd *ast.FuncDecl) {
	fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
	st := &cowState{pass: pass, fd: fd, trusted: pass.Dirs.TrustedFunc(fn), vars: map[*types.Var]taint{}}
	if st.trusted && fn != nil {
		params := fn.Signature().Params()
		for i := 0; i < params.Len(); i++ {
			if isByteSlice(params.At(i).Type()) {
				st.vars[params.At(i)] = raw
			}
		}
	}
	// Propagate taint through local assignments to a fixpoint (loops can
	// carry taint backwards), then scan for violations.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				changed = st.flow(n.Lhs, n.Rhs) || changed
			case *ast.ValueSpec:
				var lhs []ast.Expr
				for _, name := range n.Names {
					lhs = append(lhs, name)
				}
				changed = st.flow(lhs, n.Values) || changed
			}
			return true
		})
	}
	st.scan()
}

func (st *cowState) flow(lhs, rhs []ast.Expr) (changed bool) {
	assign := func(l ast.Expr, t taint) {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			return
		}
		obj := st.pass.Info.Defs[id]
		if obj == nil {
			obj = st.pass.Info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || !isByteSlice(v.Type()) {
			return
		}
		if t > st.vars[v] {
			st.vars[v] = t
			changed = true
		}
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		// Tuple assignment from a call: a trusted call taints every
		// byte-slice result.
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok && st.trustedCall(call) {
			for _, l := range lhs {
				assign(l, raw)
			}
		}
		return changed
	}
	for i, l := range lhs {
		if i < len(rhs) {
			assign(l, st.taintOf(rhs[i]))
		}
	}
	return changed
}

func (st *cowState) trustedCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := st.pass.Info.Uses[fun].(*types.Func)
		return st.pass.Dirs.TrustedFunc(fn)
	case *ast.SelectorExpr:
		fn, _ := st.pass.Info.Uses[fun.Sel].(*types.Func)
		return st.pass.Dirs.TrustedFunc(fn)
	}
	return false
}

// taintOf computes the taint of an expression under the current variable
// state.
func (st *cowState) taintOf(e ast.Expr) taint {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := objOf(st.pass, e).(*types.Var); ok {
			return st.vars[v]
		}
	case *ast.CallExpr:
		if st.trustedCall(e) && isByteSlice(st.pass.Info.TypeOf(e)) {
			return raw
		}
	case *ast.SliceExpr:
		base := st.taintOf(e.X)
		if base == clean {
			return clean
		}
		if e.Slice3 {
			return clamped
		}
		return base
	case *ast.SelectorExpr:
		if sel := st.pass.Info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal &&
			st.pass.Dirs.TrustedType(sel.Recv()) && isByteSlice(st.pass.Info.TypeOf(e)) {
			return raw
		}
	}
	return clean
}

// scan reports violations under the final taint assignment.
func (st *cowState) scan() {
	pass := st.pass
	ast.Inspect(st.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok && st.taintOf(ix.X) != clean {
					pass.Reportf(l.Pos(), "write through a view of a trusted/mmap buffer (the backing may be shared or mapped read-only)")
				}
			}
			for i, r := range n.Rhs {
				if i < len(n.Lhs) && st.taintOf(r) == raw && escapeTarget(pass, n.Lhs[i]) {
					pass.Reportf(r.Pos(), "unclamped view of a trusted/mmap buffer escapes to a field or global; clamp with a three-index slice or copy")
				}
			}
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && st.trustedCall(call) {
					for _, l := range n.Lhs {
						if isByteSlice(pass.Info.TypeOf(l)) && escapeTarget(pass, l) {
							pass.Reportf(l.Pos(), "unclamped view of a trusted/mmap buffer escapes to a field or global; clamp with a three-index slice or copy")
						}
					}
				}
			}
		case *ast.CallExpr:
			st.scanCall(n)
		case *ast.ReturnStmt:
			if st.trusted {
				return true // trusted functions exist to hand the buffer out
			}
			for _, r := range n.Results {
				if st.taintOf(r) == raw {
					pass.Reportf(r.Pos(), "unclamped view of a trusted/mmap buffer returned; clamp with a three-index slice or copy")
				}
			}
		case *ast.CompositeLit:
			if st.pass.Dirs.TrustedType(pass.Info.TypeOf(n)) {
				return true // the annotated carrier type is the sanctioned home
			}
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if st.taintOf(v) == raw {
					pass.Reportf(v.Pos(), "unclamped view of a trusted/mmap buffer stored in a composite literal; clamp with a three-index slice or copy")
				}
			}
		}
		return true
	})
}

func (st *cowState) scanCall(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	b, ok := st.pass.Info.Uses[id].(*types.Builtin)
	if !ok || len(call.Args) == 0 {
		return
	}
	switch b.Name() {
	case "append":
		if st.taintOf(call.Args[0]) != clean {
			st.pass.Reportf(call.Pos(), "append to a view of a trusted/mmap buffer can write into the shared backing; copy first")
		}
	case "copy":
		if st.taintOf(call.Args[0]) != clean {
			st.pass.Reportf(call.Pos(), "copy into a view of a trusted/mmap buffer (the backing may be shared or mapped read-only)")
		}
	}
}

// escapeTarget reports whether storing into lhs leaves function locals: a
// struct field, an element of a non-local container, or a package-level
// variable.
func escapeTarget(pass *Pass, lhs ast.Expr) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		sel := pass.Info.Selections[l]
		return sel != nil && sel.Kind() == types.FieldVal
	case *ast.IndexExpr:
		return escapeTarget(pass, l.X)
	case *ast.StarExpr:
		return true
	case *ast.Ident:
		if v, ok := objOf(pass, l).(*types.Var); ok {
			return v.Parent() == pass.Pkg.Scope()
		}
	}
	return false
}

func objOf(pass *Pass, id *ast.Ident) types.Object {
	if o := pass.Info.Defs[id]; o != nil {
		return o
	}
	return pass.Info.Uses[id]
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
