package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrSentinelAnalyzer keeps the error contract between the storage layer
// and its callers intact. Callers branch on sentinels — errors.Is(err,
// store.ErrWedged) decides whether a catalog retries or fails the
// request — so within the error domain (the provrpq root package,
// internal/store, internal/server, and anything marked
// //provrpq:errdomain):
//
//   - an error passed to fmt.Errorf must be wrapped with %w, not
//     flattened with %v/%s, or the sentinel becomes unmatchable one
//     layer up (%T is allowed: printing an error's type is not
//     wrapping);
//   - errors.New inside a function body mints an unmatchable ad-hoc
//     sentinel; declare an exported package-level Err* or wrap an
//     existing one;
//   - HTTP error codes handed to writeError must be string literals
//     from the documented set in the README's error table.
var ErrSentinelAnalyzer = &Analyzer{
	Name: "errsentinel",
	Doc:  "requires %w wrapping of errors, package-level sentinels, and documented HTTP error codes in the error domain",
	Run:  runErrSentinel,
}

// documentedErrorCodes is the closed set of machine-readable `code`
// values the HTTP API documents; writeError must not invent new ones.
var documentedErrorCodes = map[string]bool{
	"bad_batch":         true,
	"bad_derive":        true,
	"bad_query":         true,
	"bad_request":       true,
	"bad_run":           true,
	"bad_spec":          true,
	"conflict":          true,
	"evaluate_failed":   true,
	"internal":          true,
	"not_found":         true,
	"overloaded":        true,
	"request_too_large": true,
	"store_failed":      true,
	"timeout":           true,
}

func runErrSentinel(pass *Pass) {
	path := pass.Pkg.Path()
	inDomain := path == "provrpq" ||
		strings.HasSuffix(path, "internal/store") ||
		strings.HasSuffix(path, "internal/server") ||
		pass.Dirs.errDomains[path]
	if !inDomain {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkErrorfWrap(pass, call)
				checkAdHocSentinel(pass, call)
				checkWriteErrorCode(pass, call)
				return true
			})
		}
	}
}

// checkErrorfWrap pairs fmt.Errorf's format verbs with its arguments and
// flags error-typed arguments rendered with anything but %w (or %T).
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(pass, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := stringLit(pass, call.Args[0])
	if !ok {
		return
	}
	verbs := formatVerbs(format)
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) || verb == 'w' || verb == 'T' {
			continue
		}
		arg := call.Args[argIdx]
		if isErrorType(pass.Info.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "error formatted with %%%c loses the sentinel for errors.Is/As; wrap with %%w instead", verb)
		}
	}
}

// checkAdHocSentinel flags errors.New calls inside function bodies (the
// walk only visits bodies, so any call seen here is ad hoc).
func checkAdHocSentinel(pass *Pass, call *ast.CallExpr) {
	if isPkgFunc(pass, call, "errors", "New") {
		pass.Reportf(call.Pos(), "errors.New inside a function mints an unmatchable ad-hoc error; declare a package-level Err* sentinel or wrap an existing one with %%w")
	}
}

// checkWriteErrorCode checks the code argument of writeError-style
// helpers (signature ..., code string, message string) against the
// documented set.
func checkWriteErrorCode(pass *Pass, call *ast.CallExpr) {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if name != "writeError" || len(call.Args) < 3 {
		return
	}
	code, ok := stringLit(pass, call.Args[2])
	if !ok {
		pass.Reportf(call.Args[2].Pos(), "writeError code must be a string literal from the documented error-code set")
		return
	}
	if !documentedErrorCodes[code] {
		pass.Reportf(call.Args[2].Pos(), "undocumented HTTP error code %q; add it to the README error table or use an existing code", code)
	}
}

// formatVerbs extracts the verb letters of a printf format string in
// argument order. Width/precision stars consume an argument slot and are
// recorded as '*'; explicit argument indexes (%[1]s) abort the scan —
// nothing in this codebase uses them and mispairing would misreport.
func formatVerbs(format string) []rune {
	var verbs []rune
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		for i < len(runes) {
			c := runes[i]
			if c == '%' {
				break // literal %%
			}
			if c == '[' {
				return verbs
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789.", c) {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs
}

func isPkgFunc(pass *Pass, call *ast.CallExpr, pkg, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkg
}

func stringLit(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, ok := t.Underlying().(*types.Interface)
	if ok && iface.NumMethods() == 1 && iface.Method(0).Name() == "Error" {
		return true
	}
	// Concrete types implementing error also lose their identity under %v.
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
