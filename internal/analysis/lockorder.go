package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderAnalyzer checks the module's declared lock hierarchy: every
// //provrpq:lockrank mutex must be acquired in strictly increasing rank
// order (equal ranks never nest), and no goroutine may re-acquire a lock
// it already holds. Held-lock sets are propagated over the static call
// graph to a fixpoint, so a violation is flagged even when the outer
// acquisition lives in a different function — or a different package —
// than the inner one. //provrpq:locks(...) and //provrpq:excludes(...)
// summaries extend the check across boundaries the call graph cannot see
// through (interface methods, function values).
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "ranked mutexes are acquired in strictly increasing //provrpq:lockrank order, never re-acquired",
	Run:  func(pass *Pass) { pass.Interprocedural(runLockOrder) },
}

// heldSet maps a held lock's declared name to how it came to be held:
// the empty string for locks acquired in the current function, or a
// caller-chain witness for locks inherited through the call graph.
type heldSet map[string]string

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func (h heldSet) union(other heldSet) {
	for k, v := range other {
		if _, ok := h[k]; !ok {
			h[k] = v
		}
	}
}

// acqSite is one lock acquisition (or //provrpq:locks summary applied at
// a call site); callSite is one static call edge. Both carry the set of
// locks locally held at the site and whether the enclosing function's
// entry set applies (it does not inside `go` literals — a spawned
// goroutine starts with no inherited locks).
type acqSite struct {
	lock    *LockDecl
	held    heldSet
	entry   bool // enclosing function's entry locks also held here
	try     bool // TryLock: cannot self-deadlock, still rank-checked
	pos     token.Pos
	viaCall string // non-empty: a locks(...) summary applied at a call to this key
}

type callSite struct {
	callee string
	held   heldSet
	entry  bool
	pos    token.Pos
}

type fnSummary struct {
	key   string
	pkg   *Package
	acqs  map[token.Pos]*acqSite
	calls map[token.Pos]*callSite
}

// runLockOrder summarizes every function, propagates entry lock-sets to
// a fixpoint, then checks each acquisition and call-site summary.
func runLockOrder(f *Facts, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	computeLockOrder(f, report, nil)
}

func computeLockOrder(f *Facts, report func(pkg *Package, pos token.Pos, format string, args ...any), edges map[[2]string]bool) {
	dirs := f.Dirs
	if len(dirs.lockByName) == 0 {
		return
	}
	validateLockAnns(f, report)

	sums := map[string]*fnSummary{}
	keys := make([]string, 0, len(f.Funcs()))
	for key, fn := range f.Funcs() {
		sums[key] = summarizeLocks(fn, dirs)
		keys = append(keys, key)
	}
	sort.Strings(keys) // deterministic fixpoint order and reporting

	// Fixpoint: the locks possibly held on entry to each function are the
	// union, over all call sites, of the caller's local held set plus the
	// caller's own entry set (unless the call sits inside a go literal).
	entry := map[string]heldSet{}
	for changed := true; changed; {
		changed = false
		for _, key := range keys {
			sum := sums[key]
			for _, c := range sortedCalls(sum) {
				if sums[c.callee] == nil {
					continue // no body loaded: summaries handle it below
				}
				eff := effectiveHeld(sum, c.held, c.entry, entry)
				for name := range eff {
					tgt := entry[c.callee]
					if tgt == nil {
						tgt = heldSet{}
						entry[c.callee] = tgt
					}
					if _, ok := tgt[name]; !ok {
						tgt[name] = fmt.Sprintf("held on entry from %s (%s)", key, sum.pkg.Fset.Position(c.pos))
						changed = true
					}
				}
			}
		}
	}

	for _, key := range keys {
		sum := sums[key]
		// Direct acquisitions, plus locks(...) summaries applied at call
		// sites as if the callee acquired (and released) the lock there.
		acqs := sortedAcqs(sum)
		for _, c := range sortedCalls(sum) {
			for _, ann := range dirs.funcLocks[c.callee] {
				if decl := dirs.LockByName(ann.Name); decl != nil {
					acqs = append(acqs, &acqSite{lock: decl, held: c.held, entry: c.entry, pos: c.pos, viaCall: c.callee})
				}
			}
		}
		for _, a := range acqs {
			eff := effectiveHeld(sum, a.held, a.entry, entry)
			what := fmt.Sprintf("acquiring %s (rank %d)", a.lock.Name, a.lock.Rank)
			if a.viaCall != "" {
				what = fmt.Sprintf("calling %s, which locks %s (rank %d),", a.viaCall, a.lock.Name, a.lock.Rank)
			}
			for _, name := range sortedNames(eff) {
				if edges != nil {
					edges[[2]string{name, a.lock.Name}] = true
				}
				if name == a.lock.Name {
					if !a.try {
						report(sum.pkg, a.pos, "%s while it is already held%s: self-deadlock", what, witness(eff[name]))
					}
					continue
				}
				held := dirs.LockByName(name)
				if held != nil && held.Rank >= a.lock.Rank {
					report(sum.pkg, a.pos, "%s while %s (rank %d) is held%s: lock ranks must strictly increase",
						what, name, held.Rank, witness(eff[name]))
				}
			}
		}
		// excludes(...) summaries: the callee must never run with the
		// named lock held.
		for _, c := range sortedCalls(sum) {
			eff := effectiveHeld(sum, c.held, c.entry, entry)
			for _, ann := range dirs.funcExcludes[c.callee] {
				if w, ok := eff[ann.Name]; ok {
					report(sum.pkg, c.pos, "calling %s while %s is held%s, but the callee declares excludes(%s)",
						c.callee, ann.Name, witness(w), ann.Name)
				}
			}
		}
	}
}

// validateLockAnns reports locks(...)/excludes(...) entries naming locks
// that no //provrpq:lockrank declares.
func validateLockAnns(f *Facts, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	for verb, tbl := range map[string]map[string][]LockAnn{"locks": f.Dirs.funcLocks, "excludes": f.Dirs.funcExcludes} {
		for _, anns := range tbl {
			for _, ann := range anns {
				if f.Dirs.LockByName(ann.Name) == nil {
					if pkg := f.pkgForPos(ann.Pos); pkg != nil {
						report(pkg, ann.Pos, "//provrpq:%s(%s) names a lock with no //provrpq:lockrank declaration", verb, ann.Name)
					}
				}
			}
		}
	}
}

func effectiveHeld(sum *fnSummary, held heldSet, withEntry bool, entry map[string]heldSet) heldSet {
	eff := held.clone()
	if withEntry {
		eff.union(entry[sum.key])
	}
	return eff
}

func witness(w string) string {
	if w == "" {
		return ""
	}
	return " (" + w + ")"
}

func sortedNames(h heldSet) []string {
	out := make([]string, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedAcqs(sum *fnSummary) []*acqSite {
	out := make([]*acqSite, 0, len(sum.acqs))
	for _, a := range sum.acqs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

func sortedCalls(sum *fnSummary) []*callSite {
	out := make([]*callSite, 0, len(sum.calls))
	for _, c := range sum.calls {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// lockWalker computes one function's summary with a possibly-held
// forward walk: branches fork a copy of the held set and the join takes
// the union of every branch that can fall through; loops are walked
// twice so locks held across an iteration are seen by the next one.
type lockWalker struct {
	dirs   *Directives
	pkg    *Package
	sum    *fnSummary
	locals map[types.Object]string // local var -> declared lock name
}

func summarizeLocks(fn *FnDecl, dirs *Directives) *fnSummary {
	sum := &fnSummary{key: fn.Key, pkg: fn.Pkg, acqs: map[token.Pos]*acqSite{}, calls: map[token.Pos]*callSite{}}
	w := &lockWalker{dirs: dirs, pkg: fn.Pkg, sum: sum, locals: map[types.Object]string{}}
	w.stmt(fn.Decl.Body, heldSet{}, true)
	return sum
}

// recordAcq merges events by position (the loop double-walk revisits
// sites; the union of held sets is the sound merge).
func (w *lockWalker) recordAcq(decl *LockDecl, held heldSet, entry, try bool, pos token.Pos) {
	if a := w.sum.acqs[pos]; a != nil {
		a.held.union(held)
		return
	}
	w.sum.acqs[pos] = &acqSite{lock: decl, held: held.clone(), entry: entry, try: try, pos: pos}
}

func (w *lockWalker) recordCall(callee string, held heldSet, entry bool, pos token.Pos) {
	if c := w.sum.calls[pos]; c != nil {
		c.held.union(held)
		return
	}
	w.sum.calls[pos] = &callSite{callee: callee, held: held.clone(), entry: entry, pos: pos}
}

// stmt walks s mutating held in place; it reports whether s definitely
// terminates the enclosing flow (return or panic), in which case held no
// longer flows onward.
func (w *lockWalker) stmt(s ast.Stmt, held heldSet, entry bool) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		for _, st := range s.List {
			if w.stmt(st, held, entry) {
				return true
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held, entry)
		}
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(w.pkg.Info, call) {
			w.expr(s.X, held, entry)
			return true
		}
		w.expr(s.X, held, entry)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held, entry)
		}
		w.trackLocals(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held, entry)
					}
				}
			}
		}
	case *ast.IfStmt:
		w.stmt(s.Init, held, entry)
		w.expr(s.Cond, held, entry)
		thenHeld := held.clone()
		t1 := w.stmt(s.Body, thenHeld, entry)
		elseHeld := held.clone()
		t2 := false
		if s.Else != nil {
			t2 = w.stmt(s.Else, elseHeld, entry)
		}
		merged := heldSet{}
		if !t1 {
			merged.union(thenHeld)
		}
		if s.Else != nil {
			if !t2 {
				merged.union(elseHeld)
			}
		} else {
			merged.union(held)
		}
		replace(held, merged)
		return t1 && t2 && s.Else != nil
	case *ast.ForStmt:
		w.stmt(s.Init, held, entry)
		w.expr(s.Cond, held, entry)
		w.loopBody(func(h heldSet) { w.stmt(s.Body, h, entry); w.stmt(s.Post, h, entry) }, held)
	case *ast.RangeStmt:
		w.expr(s.X, held, entry)
		w.loopBody(func(h heldSet) { w.stmt(s.Body, h, entry) }, held)
	case *ast.SwitchStmt:
		w.stmt(s.Init, held, entry)
		w.expr(s.Tag, held, entry)
		w.branches(caseBodies(s.Body), held, entry)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held, entry)
		w.stmt(s.Assign, held, entry)
		w.branches(caseBodies(s.Body), held, entry)
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.stmt(cc.Comm, held, entry)
			}
			bodies = append(bodies, cc.Body)
		}
		w.branches(bodies, held, entry)
	case *ast.DeferStmt:
		w.deferCall(s.Call, held, entry)
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.expr(arg, held, entry)
		}
		// A spawned goroutine starts with an empty held set, and the
		// enclosing function's entry locks do not transfer either.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.stmt(lit.Body, heldSet{}, false)
		}
	case *ast.SendStmt:
		w.expr(s.Chan, held, entry)
		w.expr(s.Value, held, entry)
	case *ast.IncDecStmt:
		w.expr(s.X, held, entry)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held, entry)
	case *ast.BranchStmt:
		// break/continue/goto: approximated as falling through.
	}
	return false
}

// loopBody walks a loop body twice: the second pass starts from the
// union of the pre-loop state and the first pass's exit state, so a lock
// held across the back edge is seen by the next iteration (catching
// `for { mu.Lock() }` self-deadlocks).
func (w *lockWalker) loopBody(body func(heldSet), held heldSet) {
	first := held.clone()
	body(first)
	carried := held.clone()
	carried.union(first)
	second := carried.clone()
	body(second)
	held.union(first)
	held.union(second)
}

func (w *lockWalker) branches(bodies [][]ast.Stmt, held heldSet, entry bool) {
	merged := held.clone()
	for _, b := range bodies {
		bh := held.clone()
		terminated := false
		for _, st := range b {
			if w.stmt(st, bh, entry) {
				terminated = true
				break
			}
		}
		if !terminated {
			merged.union(bh)
		}
	}
	replace(held, merged)
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		out = append(out, c.(*ast.CaseClause).Body)
	}
	return out
}

// deferCall handles `defer`: a deferred Unlock keeps the lock held for
// the rest of the function (the common Lock/defer-Unlock pairing), a
// deferred literal runs at exit with approximately the current held set,
// and a deferred named call is a call edge like any other.
func (w *lockWalker) deferCall(call *ast.CallExpr, held heldSet, entry bool) {
	for _, arg := range call.Args {
		w.expr(arg, held, entry)
	}
	if op, _ := w.lockOp(call); op == lockRelease {
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.stmt(lit.Body, held.clone(), entry)
		return
	}
	w.callEvent(call, held, entry)
}

type lockOpKind int

const (
	lockNone lockOpKind = iota
	lockAcquire
	lockTryAcquire
	lockRelease
)

// lockOp classifies call as a sync.Mutex/RWMutex operation on a ranked
// lock, returning the declaration it resolves to.
func (w *lockWalker) lockOp(call *ast.CallExpr) (lockOpKind, *LockDecl) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockNone, nil
	}
	fn, _ := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockNone, nil
	}
	var kind lockOpKind
	switch fn.Name() {
	case "Lock", "RLock":
		kind = lockAcquire
	case "TryLock", "TryRLock":
		kind = lockTryAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return lockNone, nil
	}
	return kind, w.resolveLock(sel.X)
}

// resolveLock maps a mutex-valued expression to its //provrpq:lockrank
// declaration: a struct field, a package-level var, a ranked getter
// call, or a local variable previously assigned from one of those.
func (w *lockWalker) resolveLock(expr ast.Expr) *LockDecl {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := w.pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if tn := namedTypeName(sel.Recv()); tn != nil {
				return w.dirs.LockByKey(typeKey(tn) + "." + e.Sel.Name)
			}
			return nil
		}
		if v, ok := w.pkg.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			return w.dirs.LockByKey(v.Pkg().Path() + "." + v.Name())
		}
	case *ast.Ident:
		switch obj := w.pkg.Info.Uses[e].(type) {
		case *types.Var:
			if name, ok := w.locals[obj]; ok {
				return w.dirs.LockByName(name)
			}
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return w.dirs.LockByKey(obj.Pkg().Path() + "." + obj.Name())
			}
		}
	case *ast.CallExpr:
		if fn := staticCallee(w.pkg.Info, e); fn != nil {
			return w.dirs.LockByKey(funcKey(fn))
		}
	case *ast.StarExpr:
		return w.resolveLock(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return w.resolveLock(e.X)
		}
	}
	return nil
}

// trackLocals records `mu := c.growLock(x)` / `mu := &c.persistMu`
// style bindings so later mu.Lock() calls resolve to the ranked lock.
func (w *lockWalker) trackLocals(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.pkg.Info.Defs[id]
		if obj == nil {
			obj = w.pkg.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if decl := w.resolveLock(s.Rhs[i]); decl != nil {
			w.locals[obj] = decl.Name
		} else {
			delete(w.locals, obj)
		}
	}
}

func (w *lockWalker) callEvent(call *ast.CallExpr, held heldSet, entry bool) {
	if fn := staticCallee(w.pkg.Info, call); fn != nil {
		w.recordCall(funcKey(fn), held, entry, call.Pos())
	}
}

// expr scans an expression, handling lock operations, immediately
// invoked and argument-passed function literals (walked inline: closure
// arguments like once.Do run synchronously in the common case), and
// static call edges.
func (w *lockWalker) expr(e ast.Expr, held heldSet, entry bool) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.CallExpr:
		for _, arg := range e.Args {
			w.expr(arg, held, entry)
		}
		if op, decl := w.lockOp(e); op != lockNone {
			if decl == nil {
				return // unranked mutex: out of scope
			}
			switch op {
			case lockAcquire, lockTryAcquire:
				w.recordAcq(decl, held, entry, op == lockTryAcquire, e.Pos())
				held[decl.Name] = ""
			case lockRelease:
				delete(held, decl.Name)
			}
			return
		}
		if lit, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
			w.stmt(lit.Body, held, entry)
			return
		}
		w.expr(e.Fun, held, entry)
		w.callEvent(e, held, entry)
	case *ast.FuncLit:
		w.stmt(e.Body, held, entry)
	case *ast.ParenExpr:
		w.expr(e.X, held, entry)
	case *ast.SelectorExpr:
		w.expr(e.X, held, entry)
	case *ast.StarExpr:
		w.expr(e.X, held, entry)
	case *ast.UnaryExpr:
		w.expr(e.X, held, entry)
	case *ast.BinaryExpr:
		w.expr(e.X, held, entry)
		w.expr(e.Y, held, entry)
	case *ast.IndexExpr:
		w.expr(e.X, held, entry)
		w.expr(e.Index, held, entry)
	case *ast.IndexListExpr:
		w.expr(e.X, held, entry)
	case *ast.SliceExpr:
		w.expr(e.X, held, entry)
		w.expr(e.Low, held, entry)
		w.expr(e.High, held, entry)
		w.expr(e.Max, held, entry)
	case *ast.TypeAssertExpr:
		w.expr(e.X, held, entry)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, held, entry)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Value, held, entry)
	}
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, _ := info.Uses[id].(*types.Builtin)
	return b != nil && b.Name() == "panic"
}

func replace(dst, src heldSet) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// LockGraphDOT renders the declared lock hierarchy plus every observed
// nesting edge (outer held while inner acquired) as a Graphviz digraph —
// the artifact behind `provlint -lockgraph` and the README's
// "Concurrency model" section.
func LockGraphDOT(pkgs []*Package) string {
	dirs := newDirectives()
	for _, pkg := range pkgs {
		dirs.collect(pkg, func(token.Pos, string, ...any) {})
	}
	f := &Facts{Pkgs: pkgs, Dirs: dirs}
	edges := map[[2]string]bool{}
	computeLockOrder(f, func(*Package, token.Pos, string, ...any) {}, edges)

	var b strings.Builder
	b.WriteString("digraph lockrank {\n")
	b.WriteString("\trankdir=LR;\n")
	b.WriteString("\tnode [shape=box, fontname=\"monospace\"];\n")
	for _, d := range dirs.LockDecls() {
		fmt.Fprintf(&b, "\t%q [label=\"%s\\nrank %d\\n%s\"];\n", d.Name, d.Name, d.Rank, d.Key)
	}
	keys := make([][2]string, 0, len(edges))
	for e := range edges {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, e := range keys {
		fmt.Fprintf(&b, "\t%q -> %q;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}
