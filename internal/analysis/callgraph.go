package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Facts is the whole-module view behind the interprocedural analyzers:
// every loaded package, the shared directive table, and memo slots the
// cross-package fixpoints are computed into exactly once per Suite.Run.
type Facts struct {
	Pkgs []*Package
	Dirs *Directives

	funcs map[string]*FnDecl
	memos map[string]map[*types.Package][]Diagnostic
}

// FnDecl is one declared function with a body, addressable by its stable
// function key — the call graph's node set.
type FnDecl struct {
	Key  string
	Obj  *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
}

// Funcs returns the module's declared functions keyed by funcKey. Built
// once; every interprocedural analyzer walks call edges through it.
func (f *Facts) Funcs() map[string]*FnDecl {
	if f.funcs != nil {
		return f.funcs
	}
	f.funcs = map[string]*FnDecl{}
	for _, pkg := range f.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				f.funcs[funcKey(fn)] = &FnDecl{Key: funcKey(fn), Obj: fn, Pkg: pkg, Decl: fd}
			}
		}
	}
	return f.funcs
}

// pkgForPos finds the loaded package whose files contain pos (all loaded
// packages share one FileSet, so positions are globally comparable).
func (f *Facts) pkgForPos(pos token.Pos) *Package {
	for _, pkg := range f.Pkgs {
		for _, file := range pkg.Files {
			if file.FileStart <= pos && pos <= file.FileEnd {
				return pkg
			}
		}
	}
	return nil
}

// Interprocedural runs compute once per Suite.Run (memoized under the
// pass's analyzer name) and replays the diagnostics belonging to the
// pass's package. compute reports through a package-qualified callback so
// each finding lands in the per-package pass that owns its file (and is
// therefore subject to that package's //provlint:ignore suppressions).
func (pass *Pass) Interprocedural(compute func(f *Facts, report func(pkg *Package, pos token.Pos, format string, args ...any))) {
	f := pass.Facts
	if f == nil { // defensive: a hand-built Pass outside Suite.Run
		return
	}
	name := pass.Analyzer.Name
	if f.memos == nil {
		f.memos = map[string]map[*types.Package][]Diagnostic{}
	}
	byPkg, ok := f.memos[name]
	if !ok {
		byPkg = map[*types.Package][]Diagnostic{}
		compute(f, func(pkg *Package, pos token.Pos, format string, args ...any) {
			byPkg[pkg.Pkg] = append(byPkg[pkg.Pkg], Diagnostic{
				Pos:      pkg.Fset.Position(pos),
				Analyzer: name,
				Message:  fmt.Sprintf(format, args...),
			})
		})
		f.memos[name] = byPkg
	}
	*pass.diags = append(*pass.diags, byPkg[pass.Pkg]...)
}

// staticCallee resolves a call expression to the called function object:
// plain identifiers, package-qualified names, and method selections all
// resolve through Uses. Interface method calls resolve to the interface
// method's object — which has no body, so the call graph stops there and
// the //provrpq:locks(...)/excludes(...) boundary summaries take over.
// Conversions and calls through function-typed variables return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	tn := namedTypeName(t)
	return tn != nil && tn.Pkg() != nil && tn.Pkg().Path() == "context" && tn.Name() == "Context"
}
