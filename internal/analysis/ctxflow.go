package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlowAnalyzer enforces the module's context-propagation contract:
// context.Background()/TODO() are minted only in main, init, tests, and
// //provrpq:ctxroot functions; and a function that receives a ctx must
// hand it (or a context derived from it) to every callee that accepts
// one — passing a fresh root or an unrelated context severs deadline and
// cancellation propagation. Root-minting is tracked through the call
// graph: a helper that merely returns context.Background() is a root
// factory, and passing its result while holding an incoming ctx is
// flagged at the call site even when the factory lives elsewhere.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "context roots are confined to main/tests/ctxroot functions; incoming ctx flows to every ctx-accepting callee",
	Run:  func(pass *Pass) { pass.Interprocedural(runCtxFlow) },
}

func runCtxFlow(f *Facts, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	factories := rootFactories(f)
	for _, pkg := range f.Pkgs {
		for _, file := range pkg.Files {
			inTest := strings.HasSuffix(pkg.Fset.Position(file.FileStart).Filename, "_test.go")
			for _, decl := range file.Decls {
				switch decl := decl.(type) {
				case *ast.FuncDecl:
					if decl.Body == nil {
						continue
					}
					fn, _ := pkg.Info.Defs[decl.Name].(*types.Func)
					allowed := inTest || rootAllowed(pkg, decl, fn, f.Dirs)
					if !allowed {
						reportRootMints(pkg, decl.Body, report)
					}
					checkCtxPropagation(pkg, decl, factories, report)
				case *ast.GenDecl:
					// Package-level `var ctx = context.Background()` is a
					// root no annotation can bless.
					if decl.Tok != token.VAR || inTest {
						continue
					}
					for _, spec := range decl.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, v := range vs.Values {
								reportRootMints(pkg, v, report)
							}
						}
					}
				}
			}
		}
	}
}

func rootAllowed(pkg *Package, decl *ast.FuncDecl, fn *types.Func, dirs *Directives) bool {
	if decl.Name.Name == "init" && decl.Recv == nil {
		return true
	}
	if decl.Name.Name == "main" && pkg.Pkg.Name() == "main" {
		return true
	}
	return dirs.CtxRoot(fn)
}

// rootMintName identifies direct context.Background()/TODO() calls.
func rootMintName(info *types.Info, call *ast.CallExpr) string {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return "context." + fn.Name() + "()"
	}
	return ""
}

func reportRootMints(pkg *Package, root ast.Node, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name := rootMintName(pkg.Info, call); name != "" {
				report(pkg, call.Pos(), "%s is confined to main, init, tests, and //provrpq:ctxroot functions; thread a ctx parameter instead or annotate the function", name)
			}
		}
		return true
	})
}

// rootFactories computes, to a fixpoint over the call graph, the set of
// declared functions that return a fresh root context (directly or by
// returning another factory's result).
func rootFactories(f *Facts) map[string]bool {
	factories := map[string]bool{}
	isFactoryCall := func(pkg *Package, call *ast.CallExpr) bool {
		if rootMintName(pkg.Info, call) != "" {
			return true
		}
		fn := staticCallee(pkg.Info, call)
		return fn != nil && factories[funcKey(fn)]
	}
	for changed := true; changed; {
		changed = false
		for key, fn := range f.Funcs() {
			if factories[key] {
				continue
			}
			returns := false
			ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
				if ret, ok := n.(*ast.ReturnStmt); ok {
					for _, res := range ret.Results {
						if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isFactoryCall(fn.Pkg, call) {
							returns = true
						}
					}
				}
				return !returns
			})
			if returns {
				factories[key] = true
				changed = true
			}
		}
	}
	return factories
}

// checkCtxPropagation walks one declared function: wherever a ctx
// parameter is in scope, every argument at a context.Context parameter
// position of a call must be that ctx or one derived from it.
func checkCtxPropagation(pkg *Package, decl *ast.FuncDecl, factories map[string]bool, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	derived := map[types.Object]bool{}
	addCtxParams := func(ft *ast.FuncType) bool {
		any := false
		if ft.Params == nil {
			return false
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil && isContextType(obj.Type()) {
					derived[obj] = true
					any = true
				}
			}
		}
		return any
	}
	hasCtx := addCtxParams(decl.Type)
	// Fixpoint over assignments: a variable assigned from a derived
	// expression (ctx itself, context.WithX(ctx, ...), req.Context())
	// is derived too.
	for changed := true; changed; {
		changed = false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				addCtxParams(n.Type)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pkg.Info.Defs[id]
					if obj == nil {
						obj = pkg.Info.Uses[id]
					}
					if obj == nil || derived[obj] || !isContextType(obj.Type()) {
						continue
					}
					var rhs ast.Expr
					if len(n.Lhs) == len(n.Rhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					}
					if rhs != nil && derivedExpr(pkg.Info, rhs, derived) {
						derived[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	var walk func(n ast.Node, hasCtx bool)
	walk = func(n ast.Node, hasCtx bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				walk(n.Body, hasCtx || addCtxParams(n.Type))
				return false
			case *ast.CallExpr:
				if hasCtx {
					checkCallArgs(pkg, n, derived, factories, report)
				}
			}
			return true
		})
	}
	walk(decl.Body, hasCtx)
}

// derivedExpr reports whether e evaluates to a context derived from an
// in-scope ctx: the ctx itself, any call consuming a derived context
// (context.WithCancel and friends), or a request-scoped Context()
// accessor.
func derivedExpr(info *types.Info, e ast.Expr, derived map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return derived[info.Uses[e]]
	case *ast.CallExpr:
		for _, a := range e.Args {
			if derivedExpr(info, a, derived) {
				return true
			}
		}
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Context" && len(e.Args) == 0 {
			return true // req.Context() and friends are request-derived
		}
	}
	return false
}

// checkCallArgs verifies every context.Context argument of one call.
func checkCallArgs(pkg *Package, call *ast.CallExpr, derived map[types.Object]bool, factories map[string]bool, report func(pkg *Package, pos token.Pos, format string, args ...any)) {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	callee := "a context-accepting callee"
	if fn := staticCallee(pkg.Info, call); fn != nil {
		callee = funcKey(fn)
	}
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		if sig.Variadic() && i == sig.Params().Len()-1 {
			break
		}
		if !isContextType(sig.Params().At(i).Type()) {
			continue
		}
		arg := call.Args[i]
		if derivedExpr(pkg.Info, arg, derived) {
			continue
		}
		if argCall, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			if rootMintName(pkg.Info, argCall) != "" {
				continue // the direct-mint rule already reports it
			}
			if fn := staticCallee(pkg.Info, argCall); fn != nil && factories[funcKey(fn)] {
				report(pkg, arg.Pos(), "receives a ctx but passes a fresh root context (via %s) to %s; derive from the incoming ctx instead", funcKey(fn), callee)
				continue
			}
		}
		report(pkg, arg.Pos(), "receives a ctx but passes a non-derived context to %s; pass the incoming ctx or one derived from it", callee)
	}
}
