// Package atomicmix exercises the atomicmix analyzer: a field managed
// with sync/atomic anywhere in the package must be accessed atomically
// everywhere, and structs containing such fields must not be copied.
package atomicmix

import "sync/atomic"

type counter struct {
	n    int64
	name string
}

func inc(c *counter) {
	atomic.AddInt64(&c.n, 1) // sanctioned
}

func read(c *counter) int64 {
	return atomic.LoadInt64(&c.n) // sanctioned
}

func torn(c *counter) int64 {
	return c.n // want "plain access of n"
}

func reset(c *counter) {
	c.n = 0 // want "plain access of n"
}

func describe(c *counter) string {
	return c.name // ok: name is not atomically managed
}

func fork(c *counter) {
	v := *c     // want "copy of counter"
	consume(*c) // want "counter passed by value"
	sink(&v)    // ok: pointers do not fork the value
}

func consume(counter) {}

func sink(*counter) {}

func fresh() *counter {
	c := counter{name: "x"} // ok: construction, not a copy
	return &c
}
