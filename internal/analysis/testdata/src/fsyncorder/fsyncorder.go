// Package fsyncorder exercises the fsyncorder analyzer: raw file
// mutation is confined to writeAtomic, and every rename-commit must be
// followed by a parent-directory fsync.
//
//provrpq:fsyncdomain
package fsyncorder

import "os"

// FsyncDir mirrors the store's directory-sync injection point.
var FsyncDir = func(dir string) error { return nil }

func writeAtomic(dir, path string, data []byte) error {
	f, err := os.CreateTemp(dir, "tmp-*") // ok: writeAtomic owns raw ops
	if err != nil {
		return err
	}
	name := f.Name()
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(name, path); err != nil { // ok: FsyncDir follows
		return err
	}
	return FsyncDir(dir)
}

func sloppy(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "raw os.WriteFile in the store outside writeAtomic"
}

func renameNoSync(a, b string) error {
	return os.Rename(a, b) // want "raw os.Rename in the store outside writeAtomic" "not followed by a parent-directory fsync"
}

// lock creates an advisory lockfile; losing it in a crash is harmless.
//
//provrpq:fsyncsafe advisory lockfile, crash loses nothing durable
func lock(path string) error {
	f, err := os.Create(path) // ok: fsyncsafe
	if err != nil {
		return err
	}
	return f.Close()
}

func exists(path string) bool {
	_, err := os.Stat(path) // ok: Stat neither creates nor replaces
	return err == nil
}
