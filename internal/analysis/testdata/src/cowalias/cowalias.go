// Package cowalias exercises the cowalias analyzer: views over
// trusted/mmap buffers must not be written through, and may escape a
// non-trusted function only after a three-index cap clamp or a copy.
package cowalias

// mapped stands in for a struct carrying an mmap-backed payload.
//
//provrpq:trusted
type mapped struct {
	data []byte
}

type holder struct {
	view []byte
}

type reader struct {
	buf []byte
	err error
}

var global []byte

// open is the sanctioned carrier: trusted functions may store and return
// raw views.
//
//provrpq:trusted
func open(data []byte) *mapped {
	return &mapped{data: data}
}

//provrpq:trusted
func openBytes() ([]byte, error) {
	return make([]byte, 8), nil
}

func readOnly(m *mapped) byte {
	b := m.data
	return b[0] // reads are fine
}

func writeThrough(m *mapped) {
	b := m.data
	b[0] = 1 // want "write through a view of a trusted/mmap buffer"
}

func writeDirect(m *mapped) {
	m.data[0] = 1 // want "write through a view of a trusted/mmap buffer"
}

func leak(m *mapped) []byte {
	return m.data // want "unclamped view of a trusted/mmap buffer returned"
}

func leakClamped(m *mapped, n int) []byte {
	return m.data[:n:n] // ok: three-index clamp reallocates on append
}

func leakCopy(m *mapped) []byte {
	return append([]byte(nil), m.data...) // ok: explicit copy
}

func stash(h *holder, m *mapped) {
	h.view = m.data // want "escapes to a field or global"
}

func stashGlobal(m *mapped) {
	global = m.data // want "escapes to a field or global"
}

func stashClamped(h *holder, m *mapped, n int) {
	h.view = m.data[:n:n] // ok: clamped
}

func tupleLeak(r *reader) {
	r.buf, r.err = openBytes() // want "escapes to a field or global"
}

func grow(m *mapped) []byte {
	return append(m.data, 1) // want "append to a view of a trusted/mmap buffer"
}

func clobber(m *mapped, src []byte) {
	b := m.data
	copy(b, src) // want "copy into a view of a trusted/mmap buffer"
}

func lit(m *mapped) holder {
	return holder{view: m.data} // want "stored in a composite literal"
}

func litClamped(m *mapped, n int) holder {
	return holder{view: m.data[:n:n]} // ok: clamped
}
