// Package directives exercises directive validation itself: unknown
// verbs, misplaced directives, and missing required arguments are
// reported by the provlint meta-analyzer.
package directives

//provrpq:bogus not a thing // want "unknown directive //provrpq:bogus"
type marker struct{}

//provrpq:immutable // want "not valid here"
func misplaced() {}

// want "fsyncsafe requires a reason"
//
//provrpq:fsyncsafe
func unexplained() {}

//provrpq:immutable
type frozen struct{ n int }

//provrpq:mutator
func legal(f *frozen) {
	f.n = 1 // ok: annotated mutator
}
