// Package generics exercises the harness and the lockorder analyzer on
// generic types: ranked mutex fields inside a generic container resolve
// through instantiated receivers and instantiated call targets alike.
package generics

import "sync"

// Box is a generic container with a two-level lock.
type Box[T any] struct {
	//provrpq:lockrank boxMu 10
	mu sync.Mutex

	//provrpq:lockrank itemsMu 20
	itemsMu sync.Mutex

	items []T
}

// Put nests in rank order: clean.
func (b *Box[T]) Put(v T) {
	b.mu.Lock()
	b.itemsMu.Lock()
	b.items = append(b.items, v)
	b.itemsMu.Unlock()
	b.mu.Unlock()
}

// Inverted acquires against the declared order inside a generic method.
func (b *Box[T]) Inverted(v T) {
	b.itemsMu.Lock()
	b.mu.Lock() // want `acquiring boxMu \(rank 10\) while itemsMu \(rank 20\) is held: lock ranks must strictly increase`
	b.mu.Unlock()
	b.itemsMu.Unlock()
}

// UseInt holds the inner lock of an instantiated Box across a call.
func UseInt(b *Box[int]) {
	b.itemsMu.Lock()
	defer b.itemsMu.Unlock()
	lockBox(b)
}

// lockBox inherits UseInt's held set through the call edge.
func lockBox(b *Box[int]) {
	b.mu.Lock() // want `acquiring boxMu \(rank 10\) while itemsMu \(rank 20\) is held \(held on entry from provlint\.test/generics\.UseInt`
	b.mu.Unlock()
}
