// Package badignore holds a malformed suppression: //provlint:ignore
// without a reason must be reported AND must not suppress the finding it
// sits on. Checked programmatically (not via want comments) because the
// reason field would swallow an inline want.
package badignore

//provrpq:immutable
type frozen struct{ n int }

func poke(f *frozen) {
	f.n = 1 //provlint:ignore immutable
}
