// Package goroutineleak exercises the goroutineleak analyzer: spawned
// goroutines need a bounded exit (or a //provrpq:detached <reason>
// annotation), blocking serve calls must not discard their error, and
// sends on unbuffered channels the spawner never receives from are
// flagged as blocked forever. Named `go worker()` spawns are followed
// through the call graph.
package goroutineleak

import (
	"context"
	"net"
	"net/http"
)

// LeakTicker spawns a goroutine that can never leave its loop.
func LeakTicker(ch chan int) {
	go func() { // want `spawned goroutine loops forever without return or break`
		for {
			<-ch
		}
	}()
}

// BoundedSelect exits through the done channel: clean.
func BoundedSelect(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
			}
		}
	}()
}

// RangeOverChannel ends when the channel closes: clean.
func RangeOverChannel(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// InnerBreakDoesNotExit: the unlabeled break binds to the select, not
// the loop, so the loop is still unbounded. A labeled break would pass.
func InnerBreakDoesNotExit(ch chan int) {
	go func() { // want `spawned goroutine loops forever without return or break`
		for {
			select {
			case <-ch:
				break
			}
		}
	}()
}

// SpawnWorker leaks through a named spawn: the loop lives in worker,
// the finding lands on the go statement.
func SpawnWorker(ch chan int) {
	go worker(ch) // want `goroutine provlint\.test/goroutineleak\.worker loops forever without return or break`
}

func worker(ch chan int) {
	for {
		<-ch
	}
}

// metronome runs for the process lifetime by design.
//
//provrpq:detached process-lifetime ticker, stopped only by exit
func metronome(ch chan int) {
	for {
		ch <- 1
	}
}

// SpawnMetronome is clean: the spawned function is annotated detached.
func SpawnMetronome(ch chan int) {
	go metronome(ch)
}

// LineDetached is clean: the annotation on the line above blesses the
// spawn.
func LineDetached(ch chan int) {
	//provrpq:detached intentional pump for the life of the process
	go func() {
		for {
			<-ch
		}
	}()
}

// Pump is clean: the spawning function itself is annotated.
//
//provrpq:detached owns a process-lifetime feeder goroutine
func Pump(ch chan int) {
	go func() {
		for {
			ch <- 0
		}
	}()
}

// MalformedDetached: a reason-less annotation is a finding and does not
// suppress the leak underneath it.
func MalformedDetached(ch chan int) {
	// want `//provrpq:detached requires a reason`
	//provrpq:detached
	go func() { // want `spawned goroutine loops forever without return or break`
		for {
			<-ch
		}
	}()
}

// ServeDiscarded throws away the blocking serve result: nothing can
// ever join the goroutine or learn the listener died.
func ServeDiscarded(ln net.Listener, h http.Handler) {
	go func() {
		_ = http.Serve(ln, h) // want `http\.Serve blocks until the listener closes but its error is discarded`
	}()
}

// ServeJoined feeds the result into a channel the caller owns: clean.
func ServeJoined(ln net.Listener, h http.Handler) error {
	errs := make(chan error, 1)
	go func() { errs <- http.Serve(ln, h) }()
	return <-errs
}

// LeakErrChan sends on an unbuffered channel nobody receives from.
func LeakErrChan() {
	errc := make(chan error)
	go func() {
		errc <- run() // want `sends on unbuffered channel "errc" but LeakErrChan never receives from it`
	}()
}

// JoinedErrChan receives the result: clean.
func JoinedErrChan() error {
	errc := make(chan error)
	go func() { errc <- run() }()
	return <-errc
}

// BufferedErrChan gives the send slack, so it cannot block: clean.
func BufferedErrChan() {
	errc := make(chan error, 1)
	go func() { errc <- run() }()
}

func run() error { return nil }
