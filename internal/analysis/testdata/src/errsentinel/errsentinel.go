// Package errsentinel exercises the errsentinel analyzer: errors are
// wrapped with %w (never flattened), sentinels are package-level, and
// HTTP error codes come from the documented set.
//
//provrpq:errdomain
package errsentinel

import (
	"errors"
	"fmt"
)

// ErrWedged is a package-level sentinel: fine.
var ErrWedged = errors.New("errsentinel: wedged")

func wrapped(err error) error {
	return fmt.Errorf("open store: %w", err) // ok
}

func doubleWrapped(path string, err error) error {
	return fmt.Errorf("store %s: %w: %w", path, ErrWedged, err) // ok: multiple %w
}

func flattened(err error) error {
	return fmt.Errorf("open store: %v", err) // want "error formatted with %v loses the sentinel"
}

func flattenedString(err error) error {
	return fmt.Errorf("open store: %s", err) // want "error formatted with %s loses the sentinel"
}

func halfWrapped(path string, err error) error {
	return fmt.Errorf("store %s: %w: %v", path, ErrWedged, err) // want "error formatted with %v loses the sentinel"
}

func typed(err error) error {
	return fmt.Errorf("unexpected error type %T", err) // ok: %T prints the type, not the chain
}

func adHoc() error {
	return errors.New("transient glitch") // want "ad-hoc error"
}

func writeError(w any, status int, code, message string) {}

func respond(w any) {
	writeError(w, 404, "not_found", "no such run")   // ok: documented code
	writeError(w, 500, "kaboom", "exploded")         // want "undocumented HTTP error code"
	writeError(w, 500, pick(), "dynamically picked") // want "must be a string literal"
}

func pick() string { return "internal" }
