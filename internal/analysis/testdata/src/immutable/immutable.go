// Package immutable exercises the immutable analyzer: stores into
// annotated types are only legal in constructors (same-package functions
// returning the type), package init, and //provrpq:mutator functions.
package immutable

// Plan stands in for a compiled query plan.
//
//provrpq:immutable
type Plan struct {
	Steps []int
	Cost  map[string]int
	Hits  int
}

// Label stands in for a derivation label: a named slice whose backing is
// shared between readers.
//
//provrpq:immutable
type Label []byte

// NewPlan is a constructor (returns *Plan), so its writes are exempt.
func NewPlan(n int) *Plan {
	p := &Plan{}
	p.Steps = append(p.Steps, n)
	p.Cost = map[string]int{}
	p.Cost["seed"] = n
	return p
}

// DecodeAll is a constructor by slice result ([]Label), so exempt.
func DecodeAll(data []byte) []Label {
	l := Label(nil)
	l = append(l, data...)
	return []Label{l}
}

// tweak is an annotated mutation site, so exempt.
//
//provrpq:mutator
func tweak(p *Plan) {
	p.Hits++
	p.Steps[0] = 9
}

var shared = NewPlan(1)

func init() {
	shared.Cost["boot"] = 1 // init is exempt
}

func mutateField(p *Plan) {
	p.Steps = nil // want "write to field Steps of immutable type Plan"
}

func mutateElem(p *Plan) {
	p.Steps[0] = 1 // want "write to field Steps of immutable type Plan"
}

func mutateMap(p *Plan) {
	p.Cost["x"] = 2 // want "write to field Cost of immutable type Plan"
}

func bump(p *Plan) {
	p.Hits++ // want "write to field Hits of immutable type Plan"
}

func mutateLabel(l Label) {
	l[0] = 1 // want "element write through immutable type Label"
}

func growLabel(l Label) {
	_ = append(l, 1) // want "append on immutable type Label"
}

func cloneLabel(l Label) []byte {
	// Appending to a fresh conversion is construction, not mutation.
	out := append(Label(nil), l...)
	return out
}

func suppressed(p *Plan) {
	p.Hits = 0 //provlint:ignore immutable reset before the plan is published
	//provlint:ignore immutable hit counter rebuilt during recovery
	p.Hits = 1
}

func reads(p *Plan, l Label) int {
	n := p.Hits + len(p.Steps) + p.Cost["x"]
	if len(l) > 0 {
		n += int(l[0])
	}
	return n
}
