package multifile

// inner re-acquires the lock its caller already holds.
func (s *Server) inner() {
	s.mu.Lock() // want `acquiring serverMu \(rank 10\) while it is already held \(held on entry from provlint\.test/multifile\.Server\.Outer`
	s.mu.Unlock()
}

// Alone is clean when entered without the lock.
func (s *Server) Alone() {
	s.mu.Lock()
	s.mu.Unlock()
}
