// Package multifile exercises the loader and the interprocedural
// fixpoint across a multi-file package: the outer acquisition lives in
// a.go, the violating inner one in b.go, and the held-set must survive
// the file boundary.
package multifile

import "sync"

// Server holds one ranked lock.
type Server struct {
	//provrpq:lockrank serverMu 10
	mu sync.Mutex
}

// Outer holds the lock across a call into the other file.
func (s *Server) Outer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner()
}
