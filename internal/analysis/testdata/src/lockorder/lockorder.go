// Package lockorder exercises the lockorder analyzer: //provrpq:lockrank
// mutexes must be acquired in strictly increasing rank order (equal
// ranks never nest), never re-acquired, with held sets propagated over
// the call graph and locks(...)/excludes(...) summaries honored at
// interface boundaries.
package lockorder

import "sync"

// gate serializes process-wide boot, below everything else.
//
//provrpq:lockrank gateMu 5
var gate sync.Mutex

// Catalog mirrors the engine's layered locking.
type Catalog struct {
	//provrpq:lockrank catalogMu 10
	mu sync.Mutex

	//provrpq:lockrank storeMu 20
	storeMu sync.Mutex

	// left and right share a rank: they must never nest.
	//provrpq:lockrank leftMu 30
	left sync.Mutex
	//provrpq:lockrank rightMu 30
	right sync.Mutex

	// want `re-declared with rank 11`
	//provrpq:lockrank catalogMu 11
	dup sync.Mutex

	bad sync.Mutex //provrpq:lockrank nope // want `requires a lock name and an integer rank`

	shards []shard
}

type shard struct{ mu sync.Mutex }

// shardLock is a ranked getter, like the catalog's per-run growth locks.
//
//provrpq:lockrank shardMu 40
func (c *Catalog) shardLock(i int) *sync.Mutex { return &c.shards[i].mu }

// OK acquires in strictly increasing rank order.
func (c *Catalog) OK() {
	c.mu.Lock()
	c.storeMu.Lock()
	c.storeMu.Unlock()
	c.mu.Unlock()
}

// Inverted takes the inner lock first.
func (c *Catalog) Inverted() {
	c.storeMu.Lock()
	c.mu.Lock() // want `acquiring catalogMu \(rank 10\) while storeMu \(rank 20\) is held: lock ranks must strictly increase`
	c.mu.Unlock()
	c.storeMu.Unlock()
}

// Reacquire deadlocks against itself.
func (c *Catalog) Reacquire() {
	c.mu.Lock()
	c.mu.Lock() // want `acquiring catalogMu \(rank 10\) while it is already held: self-deadlock`
	c.mu.Unlock()
	c.mu.Unlock()
}

// EqualRanks nest two same-rank locks.
func (c *Catalog) EqualRanks() {
	c.left.Lock()
	c.right.Lock() // want `acquiring rightMu \(rank 30\) while leftMu \(rank 30\) is held: lock ranks must strictly increase`
	c.right.Unlock()
	c.left.Unlock()
}

// Flush holds storeMu across a call; the violation is only visible
// through the call edge into flushLocked.
func (c *Catalog) Flush() {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	c.flushLocked()
}

func (c *Catalog) flushLocked() {
	c.mu.Lock() // want `acquiring catalogMu \(rank 10\) while storeMu \(rank 20\) is held \(held on entry from provlint\.test/lockorder\.Catalog\.Flush`
	c.mu.Unlock()
}

// ViaGetter binds a local to a ranked getter; 10 -> 40 is clean.
func (c *Catalog) ViaGetter(i int) {
	mu := c.shardLock(i)
	c.mu.Lock()
	mu.Lock()
	mu.Unlock()
	c.mu.Unlock()
}

// GetterInverted acquires below the getter's rank while holding it.
func (c *Catalog) GetterInverted(i int) {
	mu := c.shardLock(i)
	mu.Lock()
	c.storeMu.Lock() // want `acquiring storeMu \(rank 20\) while shardMu \(rank 40\) is held: lock ranks must strictly increase`
	c.storeMu.Unlock()
	mu.Unlock()
}

// BootUnderCatalog reaches for the package-level gate too late.
func (c *Catalog) BootUnderCatalog() {
	c.mu.Lock()
	gate.Lock() // want `acquiring gateMu \(rank 5\) while catalogMu \(rank 10\) is held: lock ranks must strictly increase`
	gate.Unlock()
	c.mu.Unlock()
}

// BranchRelease unlocks on the early-return path; after the branch the
// lock is still possibly held, but the final unlock clears it.
func (c *Catalog) BranchRelease(fast bool) {
	c.mu.Lock()
	if fast {
		c.mu.Unlock()
		return
	}
	c.storeMu.Lock()
	c.storeMu.Unlock()
	c.mu.Unlock()
}

// SpawnResets: a spawned goroutine starts with an empty held set, so
// its low-rank acquisition under a held storeMu is clean.
func (c *Catalog) SpawnResets(done chan struct{}) {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	go func() {
		c.mu.Lock()
		c.mu.Unlock()
		close(done)
	}()
}

// SuppressedInversion is a reviewed violation.
func (c *Catalog) SuppressedInversion() {
	c.storeMu.Lock()
	//provlint:ignore lockorder reviewed: boot path runs single-threaded
	c.mu.Lock()
	c.mu.Unlock()
	c.storeMu.Unlock()
}

// Sink is a boundary the call graph cannot see through: summaries
// declare what its implementations do with the ranked locks.
type Sink interface {
	// Flush acquires the store lock internally.
	//provrpq:locks(storeMu)
	Flush()
	// Snapshot must never run under the catalog lock.
	//provrpq:excludes(catalogMu)
	Snapshot()
}

// Drain calls a storeMu-locking boundary while already holding it.
func Drain(s Sink, c *Catalog) {
	c.storeMu.Lock()
	s.Flush() // want `calling provlint\.test/lockorder\.Sink\.Flush, which locks storeMu \(rank 20\), while it is already held: self-deadlock`
	c.storeMu.Unlock()
}

// DrainClean holds only the lower-ranked lock: 10 -> 20 is fine.
func DrainClean(s Sink, c *Catalog) {
	c.mu.Lock()
	s.Flush()
	c.mu.Unlock()
}

// Snap violates the boundary's excludes contract.
func Snap(s Sink, c *Catalog) {
	c.mu.Lock()
	s.Snapshot() // want `calling provlint\.test/lockorder\.Sink\.Snapshot while catalogMu is held, but the callee declares excludes\(catalogMu\)`
	c.mu.Unlock()
}

// Broken names a lock nothing declares.
type Broken interface {
	// want `names a lock with no //provrpq:lockrank declaration`
	//provrpq:locks(ghostMu)
	Run()
}
