package ctxflow

import "context"

// Test files may mint roots freely — no findings here.
func helperForTests() context.Context {
	return context.Background()
}
