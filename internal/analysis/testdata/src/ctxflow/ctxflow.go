// Package ctxflow exercises the ctxflow analyzer: context roots are
// minted only in main, init, tests, and //provrpq:ctxroot functions,
// and a function that receives a ctx must hand it (or a derivation of
// it) to every context-accepting callee. Root factories are tracked
// through the call graph.
package ctxflow

import (
	"context"
	"time"
)

func process(ctx context.Context, n int) {}

// Mint creates a root outside any blessed location.
func Mint() context.Context {
	return context.Background() // want `context\.Background\(\) is confined to main, init, tests, and //provrpq:ctxroot functions`
}

// bootCtx is a blessed boot-time helper: it may mint.
//
//provrpq:ctxroot boot-time wiring helper
func bootCtx() context.Context { return context.Background() }

// TodoPassed mints a TODO inline; the mint rule reports it once.
func TodoPassed() {
	process(context.TODO(), 1) // want `context\.TODO\(\) is confined to main, init, tests`
}

// Refresh receives a ctx but reaches for the boot root instead — the
// factory lives behind a call edge, the finding lands on the argument.
func Refresh(ctx context.Context, n int) {
	process(bootCtx(), n) // want `passes a fresh root context \(via provlint\.test/ctxflow\.bootCtx\) to provlint\.test/ctxflow\.process`
}

// DerivedOK threads the incoming ctx and contexts derived from it.
func DerivedOK(ctx context.Context, n int) {
	sub, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	process(sub, n)
	process(context.WithValue(ctx, key{}, 1), n)
}

type key struct{}

var globalCtx context.Context

// NonDerived receives a ctx but passes an unrelated one.
func NonDerived(ctx context.Context, n int) {
	process(globalCtx, n) // want `passes a non-derived context to provlint\.test/ctxflow\.process`
}

// MakeHandler: the literal's own ctx parameter is the derivation root
// inside it; nil is not derived from anything.
func MakeHandler() func(context.Context, int) {
	return func(ctx context.Context, n int) {
		process(ctx, n)
		process(nil, n) // want `passes a non-derived context to provlint\.test/ctxflow\.process`
	}
}

// bootRoot is a package-level root no annotation can bless.
var bootRoot = context.Background() // want `context\.Background\(\) is confined to main, init, tests`
