package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FsyncOrderAnalyzer guards the store's crash-consistency contract:
// every durable write follows the strict write → fsync → rename →
// parent-dir-fsync sequence, and that sequence lives in exactly one
// place, writeAtomic. Inside internal/store (or any package marked
// //provrpq:fsyncdomain):
//
//   - raw os.Rename / os.Create / os.CreateTemp / os.WriteFile /
//     os.OpenFile are forbidden outside writeAtomic, unless the function
//     carries //provrpq:fsyncsafe <reason>;
//   - every os.Rename must be followed, later in the same function, by a
//     directory fsync (a call to FsyncDir/syncDir) — the rename is not
//     durable until the parent directory is synced.
var FsyncOrderAnalyzer = &Analyzer{
	Name: "fsyncorder",
	Doc:  "forbids raw file mutation outside writeAtomic and checks every rename-commit is followed by a parent-directory fsync",
	Run:  runFsyncOrder,
}

// rawFileFuncs are the os entry points that create or replace files; all
// durable mutations must flow through writeAtomic instead.
var rawFileFuncs = map[string]bool{
	"Rename": true, "Create": true, "CreateTemp": true, "WriteFile": true, "OpenFile": true,
}

func runFsyncOrder(pass *Pass) {
	path := pass.Pkg.Path()
	if !strings.HasSuffix(path, "internal/store") && !pass.Dirs.fsyncDomains[path] {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			allowed := fd.Name.Name == "writeAtomic" || pass.Dirs.FsyncSafe(fn)
			var renames []token.Pos
			var dirsyncs []token.Pos
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := osFunc(pass, call); ok && rawFileFuncs[name] {
					if !allowed {
						pass.Reportf(call.Pos(), "raw os.%s in the store outside writeAtomic; route the write through writeAtomic or annotate the function //provrpq:fsyncsafe <reason>", name)
					}
					if name == "Rename" {
						renames = append(renames, call.Pos())
					}
				}
				if isDirSyncCall(pass, call) {
					dirsyncs = append(dirsyncs, call.End())
				}
				return true
			})
			for _, r := range renames {
				synced := false
				for _, s := range dirsyncs {
					if s > r {
						synced = true
						break
					}
				}
				if !synced {
					pass.Reportf(r, "os.Rename commit is not followed by a parent-directory fsync (FsyncDir) in this function; the rename is not durable until the directory is synced")
				}
			}
		}
	}
}

// osFunc resolves a call to package os and returns the function name.
func osFunc(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return "", false
	}
	return fn.Name(), true
}

// isDirSyncCall recognizes the store's directory-fsync helpers by name:
// the FsyncDir injection point and the syncDir implementation behind it.
func isDirSyncCall(pass *Pass, call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	switch name {
	case "FsyncDir", "syncDir", "fsyncDir":
		return true
	}
	return false
}
