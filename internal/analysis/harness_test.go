package analysis

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

// runAnalyzerTest is an analysistest-style golden harness: it loads
// testdata/src/<dir> as one package, runs the analyzer through the full
// Suite pipeline (directive collection, suppressions, dedupe included),
// and matches every diagnostic against `// want "regex"` comments on the
// same line. A line may carry several quoted regexes when it produces
// several diagnostics; back-quoted patterns avoid double-escaping
// metacharacters.

var (
	wantRE   = regexp.MustCompile(`//\s*want\s+(.*)`)
	quotedRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func runAnalyzerTest(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	loader := NewLoader()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	diags := (&Suite{Analyzers: []*Analyzer{a}}).Run([]*Package{pkg})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
