package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// An Analyzer is one invariant checker. Run is invoked once per target
// package with a fully type-checked Pass.
type Analyzer struct {
	Name string
	// Doc is the one-line invariant statement shown by `provlint -list`.
	Doc string
	Run func(*Pass)
}

// A Pass carries one package through one analyzer, plus the module-wide
// directive table (annotations are collected across every loaded package
// before any analyzer runs, so cross-package invariants hold).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Dirs     *Directives
	// Facts is the whole-module view shared by the interprocedural
	// analyzers: every loaded package plus memoized cross-package
	// results (call-graph facts are computed once per Suite.Run, then
	// replayed into each per-package pass).
	Facts *Facts

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Directives is the module-wide annotation table, keyed by stable
// package-path strings (object identity does not survive the export-data
// import boundary, names do).
//
// Annotation syntax, attached as doc comments:
//
//	//provrpq:immutable            on a type: its fields/elements are
//	                               frozen outside constructors (functions
//	                               returning the type), init, and
//	                               //provrpq:mutator functions
//	//provrpq:mutator              on a function: reviewed mutation site
//	//provrpq:trusted              on a function or type: its []byte
//	                               params/results (or fields) alias a
//	                               shared/mmap buffer
//	//provrpq:fsyncsafe <reason>   on a function: exempt from the
//	                               store's raw-file-operation ban
//	//provrpq:lockrank <name> <n>  on a mutex field, a package-level
//	                               mutex var, or a function returning a
//	                               mutex: declares the lock's place in
//	                               the module's partial acquisition
//	                               order (acquire in strictly increasing
//	                               rank; equal ranks never nest)
//	//provrpq:locks(<name>)        on a function or interface method: an
//	                               interprocedural summary — callers
//	                               must be able to acquire <name> at the
//	                               call site (boundaries the call graph
//	                               cannot see through)
//	//provrpq:excludes(<name>)     on a function or interface method: it
//	                               must never be called with <name> held
//	//provrpq:ctxroot <reason>     on a function: may mint root contexts
//	                               (context.Background/TODO)
//	//provrpq:detached <reason>    on a function, or on the line of (or
//	                               above) a go statement: the goroutine
//	                               intentionally has no bounded exit
//
// File-scope domain markers (anywhere in a file's comments) opt testdata
// packages into path-scoped analyzers:
//
//	//provrpq:fsyncdomain          treat this package like internal/store
//	//provrpq:errdomain            treat this package like store/catalog/server
type Directives struct {
	immutableTypes map[string]bool   // "pkgpath.TypeName"
	mutators       map[string]bool   // function key
	trustedFuncs   map[string]bool   // function key
	trustedTypes   map[string]bool   // "pkgpath.TypeName"
	fsyncsafe      map[string]string // function key -> reason
	fsyncDomains   map[string]bool   // package path
	errDomains     map[string]bool   // package path

	lockByKey    map[string]*LockDecl // mutex object key -> declaration
	lockByName   map[string]*LockDecl // declared lock name -> declaration
	funcLocks    map[string][]LockAnn // function key -> locks(...) summaries
	funcExcludes map[string][]LockAnn // function key -> excludes(...) summaries
	ctxRoots     map[string]string    // function key -> reason
	detached     map[string]string    // function key -> reason
}

// LockDecl is one //provrpq:lockrank declaration: a human-readable lock
// name, its rank in the acquisition order, and the object it annotates.
type LockDecl struct {
	Name string
	Rank int
	Key  string // "pkgpath.Type.field", "pkgpath.var" or a function key
	Pos  token.Pos
}

// LockAnn is one locks(...)/excludes(...) summary entry.
type LockAnn struct {
	Name string
	Pos  token.Pos
}

func newDirectives() *Directives {
	return &Directives{
		immutableTypes: map[string]bool{},
		mutators:       map[string]bool{},
		trustedFuncs:   map[string]bool{},
		trustedTypes:   map[string]bool{},
		fsyncsafe:      map[string]string{},
		fsyncDomains:   map[string]bool{},
		errDomains:     map[string]bool{},
		lockByKey:      map[string]*LockDecl{},
		lockByName:     map[string]*LockDecl{},
		funcLocks:      map[string][]LockAnn{},
		funcExcludes:   map[string][]LockAnn{},
		ctxRoots:       map[string]string{},
		detached:       map[string]string{},
	}
}

// typeKey names a defined type: "pkgpath.Name".
func typeKey(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Path() + "." + tn.Name()
}

// funcKey names a function or method: "pkgpath.Name" or
// "pkgpath.Recv.Name" (pointer receivers are normalized away).
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := fn.Signature().Recv(); recv != nil {
		if tn := namedTypeName(recv.Type()); tn != nil {
			return fn.Pkg().Path() + "." + tn.Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// namedTypeName unwraps pointers/aliases and returns the defined type's
// name object, or nil.
func namedTypeName(t types.Type) *types.TypeName {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt.Obj()
		default:
			return nil
		}
	}
}

// ImmutableType reports whether t (after unwrapping pointers) is
// annotated //provrpq:immutable.
func (d *Directives) ImmutableType(t types.Type) bool {
	tn := namedTypeName(t)
	return tn != nil && d.immutableTypes[typeKey(tn)]
}

// TrustedType reports whether t is annotated //provrpq:trusted.
func (d *Directives) TrustedType(t types.Type) bool {
	tn := namedTypeName(t)
	return tn != nil && d.trustedTypes[typeKey(tn)]
}

// Mutator reports whether fn is an annotated mutation site.
func (d *Directives) Mutator(fn *types.Func) bool { return fn != nil && d.mutators[funcKey(fn)] }

// TrustedFunc reports whether fn's byte-slice params/results are
// annotated as aliasing a shared buffer.
func (d *Directives) TrustedFunc(fn *types.Func) bool {
	return fn != nil && d.trustedFuncs[funcKey(fn)]
}

// FsyncSafe reports whether fn is exempt from the raw-file-operation ban.
func (d *Directives) FsyncSafe(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	_, ok := d.fsyncsafe[funcKey(fn)]
	return ok
}

// LockByKey returns the //provrpq:lockrank declaration attached to the
// mutex object named by key, or nil.
func (d *Directives) LockByKey(key string) *LockDecl { return d.lockByKey[key] }

// LockByName returns the declaration of the named lock, or nil.
func (d *Directives) LockByName(name string) *LockDecl { return d.lockByName[name] }

// LockDecls returns every declared lock, sorted by rank then name.
func (d *Directives) LockDecls() []*LockDecl {
	out := make([]*LockDecl, 0, len(d.lockByName))
	for _, l := range d.lockByName {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// CtxRoot reports whether fn is annotated //provrpq:ctxroot.
func (d *Directives) CtxRoot(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	_, ok := d.ctxRoots[funcKey(fn)]
	return ok
}

// Detached reports whether fn is annotated //provrpq:detached.
func (d *Directives) Detached(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	_, ok := d.detached[funcKey(fn)]
	return ok
}

// directiveLines extracts "provrpq:" directive verbs (with trailing
// arguments) from a comment group.
func directiveLines(g *ast.CommentGroup) []string {
	if g == nil {
		return nil
	}
	var out []string
	for _, c := range g.List {
		if rest, ok := strings.CutPrefix(c.Text, "//provrpq:"); ok {
			out = append(out, strings.TrimSpace(rest))
		}
	}
	return out
}

var knownDirectives = map[string]bool{
	"immutable": true, "mutator": true, "trusted": true, "fsyncsafe": true,
	"fsyncdomain": true, "errdomain": true,
	"lockrank": true, "locks": true, "excludes": true, "ctxroot": true, "detached": true,
}

// splitDirective separates one directive line into its verb, an optional
// parenthesized operand ("locks(growMu)" -> "locks", "growMu") and the
// space-separated tail arguments.
func splitDirective(line string) (verb, paren, arg string) {
	verb, arg, _ = strings.Cut(line, " ")
	arg = strings.TrimSpace(arg)
	if i := strings.IndexByte(verb, '('); i >= 0 && strings.HasSuffix(verb, ")") {
		paren = verb[i+1 : len(verb)-1]
		verb = verb[:i]
	}
	return verb, paren, arg
}

// splitLockNames parses the comma-separated operand of locks(...)/
// excludes(...).
func splitLockNames(paren string) []string {
	var out []string
	for _, n := range strings.Split(paren, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// addLockRank records one //provrpq:lockrank declaration on the object
// named by key. The argument must be "<name> <rank>"; conflicting ranks
// for one lock name are reported.
func (d *Directives) addLockRank(key, arg string, pos token.Pos, report func(token.Pos, string, ...any)) {
	fields := strings.Fields(arg)
	if len(fields) != 2 {
		report(pos, "//provrpq:lockrank requires a lock name and an integer rank, e.g. //provrpq:lockrank storeMu 30")
		return
	}
	rank, err := strconv.Atoi(fields[1])
	if err != nil {
		report(pos, "//provrpq:lockrank rank %q is not an integer", fields[1])
		return
	}
	decl := &LockDecl{Name: fields[0], Rank: rank, Key: key, Pos: pos}
	if prev := d.lockByName[decl.Name]; prev != nil && prev.Rank != rank {
		report(pos, "lock %q re-declared with rank %d (previously rank %d)", decl.Name, rank, prev.Rank)
		return
	}
	if d.lockByName[decl.Name] == nil {
		d.lockByName[decl.Name] = decl
	}
	d.lockByKey[key] = decl
}

// addLockSummaries records locks(...)/excludes(...) entries for a function
// key, reporting an empty operand list.
func (d *Directives) addLockSummaries(verb, key, paren string, pos token.Pos, report func(token.Pos, string, ...any)) {
	names := splitLockNames(paren)
	if len(names) == 0 {
		report(pos, "//provrpq:%s requires a parenthesized lock name, e.g. //provrpq:%s(growMu)", verb, verb)
		return
	}
	for _, n := range names {
		ann := LockAnn{Name: n, Pos: pos}
		if verb == "locks" {
			d.funcLocks[key] = append(d.funcLocks[key], ann)
		} else {
			d.funcExcludes[key] = append(d.funcExcludes[key], ann)
		}
	}
}

// collect folds one package's annotations into the table, reporting
// malformed or misplaced directives as provlint diagnostics.
func (d *Directives) collect(pkg *Package, report func(token.Pos, string, ...any)) {
	seen := map[*ast.CommentGroup]bool{}
	note := func(g *ast.CommentGroup, apply func(verb, paren, arg string, pos token.Pos) bool) {
		if g == nil || seen[g] {
			return
		}
		seen[g] = true
		for _, line := range directiveLines(g) {
			verb, paren, arg := splitDirective(line)
			if !knownDirectives[verb] {
				report(g.Pos(), "unknown directive //provrpq:%s", verb)
				continue
			}
			if !apply(verb, paren, arg, g.Pos()) {
				report(g.Pos(), "directive //provrpq:%s is not valid here", verb)
			}
		}
	}
	fileScope := func(verb string) bool {
		switch verb {
		case "fsyncdomain":
			d.fsyncDomains[pkg.Pkg.Path()] = true
			return true
		case "errdomain":
			d.errDomains[pkg.Pkg.Path()] = true
			return true
		}
		return false
	}
	// funcApply handles the verbs valid on functions and interface
	// methods, given the function object's stable key.
	funcApply := func(key string) func(verb, paren, arg string, pos token.Pos) bool {
		return func(verb, paren, arg string, pos token.Pos) bool {
			switch verb {
			case "mutator":
				d.mutators[key] = true
			case "trusted":
				d.trustedFuncs[key] = true
			case "fsyncsafe":
				if arg == "" {
					report(pos, "//provrpq:fsyncsafe requires a reason")
				}
				d.fsyncsafe[key] = arg
			case "lockrank":
				d.addLockRank(key, arg, pos, report)
			case "locks", "excludes":
				d.addLockSummaries(verb, key, paren, pos, report)
			case "ctxroot":
				d.ctxRoots[key] = arg
			case "detached":
				if arg == "" {
					report(pos, "//provrpq:detached requires a reason")
				}
				d.detached[key] = arg
			default:
				return fileScope(verb)
			}
			return true
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				fn, _ := pkg.Info.Defs[decl.Name].(*types.Func)
				note(decl.Doc, func(verb, paren, arg string, pos token.Pos) bool {
					if fn == nil {
						return false
					}
					return funcApply(funcKey(fn))(verb, paren, arg, pos)
				})
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						tn, _ := pkg.Info.Defs[spec.Name].(*types.TypeName)
						apply := func(verb, paren, arg string, pos token.Pos) bool {
							if tn == nil {
								return false
							}
							switch verb {
							case "immutable":
								d.immutableTypes[typeKey(tn)] = true
							case "trusted":
								d.trustedTypes[typeKey(tn)] = true
							default:
								return fileScope(verb)
							}
							return true
						}
						note(spec.Doc, apply)
						if len(decl.Specs) == 1 {
							note(decl.Doc, apply)
						}
						switch t := spec.Type.(type) {
						case *ast.StructType:
							// Mutex fields carry //provrpq:lockrank.
							for _, field := range t.Fields.List {
								field := field
								apply := func(verb, paren, arg string, pos token.Pos) bool {
									if verb != "lockrank" || tn == nil {
										return fileScope(verb)
									}
									for _, name := range field.Names {
										d.addLockRank(typeKey(tn)+"."+name.Name, arg, pos, report)
									}
									return true
								}
								note(field.Doc, apply)
								note(field.Comment, apply)
							}
						case *ast.InterfaceType:
							// Interface methods carry locks(...)/
							// excludes(...) boundary summaries.
							for _, m := range t.Methods.List {
								if len(m.Names) != 1 {
									continue
								}
								fn, _ := pkg.Info.Defs[m.Names[0]].(*types.Func)
								apply := func(verb, paren, arg string, pos token.Pos) bool {
									if fn == nil {
										return false
									}
									switch verb {
									case "locks", "excludes":
										d.addLockSummaries(verb, funcKey(fn), paren, pos, report)
										return true
									}
									return fileScope(verb)
								}
								note(m.Doc, apply)
								note(m.Comment, apply)
							}
						}
					case *ast.ValueSpec:
						// Package-level mutex vars carry lockrank.
						if decl.Tok != token.VAR {
							continue
						}
						apply := func(verb, paren, arg string, pos token.Pos) bool {
							if verb != "lockrank" {
								return fileScope(verb)
							}
							for _, name := range spec.Names {
								d.addLockRank(pkg.Pkg.Path()+"."+name.Name, arg, pos, report)
							}
							return true
						}
						note(spec.Doc, apply)
						if len(decl.Specs) == 1 {
							note(decl.Doc, apply)
						}
					}
				}
			}
		}
		// File-scope domain markers may sit in any comment group,
		// including the package doc.
		for _, g := range f.Comments {
			if seen[g] {
				continue
			}
			for _, line := range directiveLines(g) {
				verb, _, _ := splitDirective(line)
				fileScope(verb) // other verbs were (or will be) handled via decls
			}
		}
	}
}

// Suite runs a set of analyzers over loaded packages.
type Suite struct{ Analyzers []*Analyzer }

// DefaultSuite returns every provlint analyzer.
func DefaultSuite() *Suite {
	return &Suite{Analyzers: []*Analyzer{
		ImmutableAnalyzer, CowAliasAnalyzer, AtomicMixAnalyzer, FsyncOrderAnalyzer, ErrSentinelAnalyzer,
		LockOrderAnalyzer, GoroutineLeakAnalyzer, CtxFlowAnalyzer,
	}}
}

// Run collects directives across all packages, runs every analyzer on
// every package, applies //provlint:ignore suppressions, and returns the
// surviving diagnostics sorted by position.
func (s *Suite) Run(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	meta := &Analyzer{Name: "provlint"}
	dirs := newDirectives()
	for _, pkg := range pkgs {
		p := &Pass{Analyzer: meta, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info, diags: &diags}
		dirs.collect(pkg, p.Reportf)
	}
	facts := &Facts{Pkgs: pkgs, Dirs: dirs}
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg, func(pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{Pos: pkg.Fset.Position(pos), Analyzer: "provlint", Message: fmt.Sprintf(format, args...)})
		})
		var pkgDiags []Diagnostic
		for _, a := range s.Analyzers {
			p := &Pass{Analyzer: a, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info, Dirs: dirs, Facts: facts, diags: &pkgDiags}
			a.Run(p)
		}
		for _, d := range pkgDiags {
			if !sup.matches(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return dedupe(diags)
}

func dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// suppressions maps file -> line -> analyzer names silenced on that line.
// A //provlint:ignore comment silences the line it sits on and, when it is
// the only thing on its line, the line below.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) matches(d Diagnostic) bool {
	return s[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}

func collectSuppressions(pkg *Package, report func(token.Pos, string, ...any)) suppressions {
	sup := suppressions{}
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				rest, ok := strings.CutPrefix(c.Text, "//provlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(c.Pos(), "//provlint:ignore requires an analyzer name and a reason, e.g. //provlint:ignore immutable copied before publication")
					continue
				}
				name := fields[0]
				pos := pkg.Fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if lines[line] == nil {
						lines[line] = map[string]bool{}
					}
					lines[line][name] = true
				}
			}
		}
	}
	return sup
}
