package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one invariant checker. Run is invoked once per target
// package with a fully type-checked Pass.
type Analyzer struct {
	Name string
	// Doc is the one-line invariant statement shown by `provlint -list`.
	Doc string
	Run func(*Pass)
}

// A Pass carries one package through one analyzer, plus the module-wide
// directive table (annotations are collected across every loaded package
// before any analyzer runs, so cross-package invariants hold).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Dirs     *Directives

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Directives is the module-wide annotation table, keyed by stable
// package-path strings (object identity does not survive the export-data
// import boundary, names do).
//
// Annotation syntax, attached as doc comments:
//
//	//provrpq:immutable            on a type: its fields/elements are
//	                               frozen outside constructors (functions
//	                               returning the type), init, and
//	                               //provrpq:mutator functions
//	//provrpq:mutator              on a function: reviewed mutation site
//	//provrpq:trusted              on a function or type: its []byte
//	                               params/results (or fields) alias a
//	                               shared/mmap buffer
//	//provrpq:fsyncsafe <reason>   on a function: exempt from the
//	                               store's raw-file-operation ban
//
// File-scope domain markers (anywhere in a file's comments) opt testdata
// packages into path-scoped analyzers:
//
//	//provrpq:fsyncdomain          treat this package like internal/store
//	//provrpq:errdomain            treat this package like store/catalog/server
type Directives struct {
	immutableTypes map[string]bool   // "pkgpath.TypeName"
	mutators       map[string]bool   // function key
	trustedFuncs   map[string]bool   // function key
	trustedTypes   map[string]bool   // "pkgpath.TypeName"
	fsyncsafe      map[string]string // function key -> reason
	fsyncDomains   map[string]bool   // package path
	errDomains     map[string]bool   // package path
}

func newDirectives() *Directives {
	return &Directives{
		immutableTypes: map[string]bool{},
		mutators:       map[string]bool{},
		trustedFuncs:   map[string]bool{},
		trustedTypes:   map[string]bool{},
		fsyncsafe:      map[string]string{},
		fsyncDomains:   map[string]bool{},
		errDomains:     map[string]bool{},
	}
}

// typeKey names a defined type: "pkgpath.Name".
func typeKey(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Path() + "." + tn.Name()
}

// funcKey names a function or method: "pkgpath.Name" or
// "pkgpath.Recv.Name" (pointer receivers are normalized away).
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := fn.Signature().Recv(); recv != nil {
		if tn := namedTypeName(recv.Type()); tn != nil {
			return fn.Pkg().Path() + "." + tn.Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// namedTypeName unwraps pointers/aliases and returns the defined type's
// name object, or nil.
func namedTypeName(t types.Type) *types.TypeName {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt.Obj()
		default:
			return nil
		}
	}
}

// ImmutableType reports whether t (after unwrapping pointers) is
// annotated //provrpq:immutable.
func (d *Directives) ImmutableType(t types.Type) bool {
	tn := namedTypeName(t)
	return tn != nil && d.immutableTypes[typeKey(tn)]
}

// TrustedType reports whether t is annotated //provrpq:trusted.
func (d *Directives) TrustedType(t types.Type) bool {
	tn := namedTypeName(t)
	return tn != nil && d.trustedTypes[typeKey(tn)]
}

// Mutator reports whether fn is an annotated mutation site.
func (d *Directives) Mutator(fn *types.Func) bool { return fn != nil && d.mutators[funcKey(fn)] }

// TrustedFunc reports whether fn's byte-slice params/results are
// annotated as aliasing a shared buffer.
func (d *Directives) TrustedFunc(fn *types.Func) bool {
	return fn != nil && d.trustedFuncs[funcKey(fn)]
}

// FsyncSafe reports whether fn is exempt from the raw-file-operation ban.
func (d *Directives) FsyncSafe(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	_, ok := d.fsyncsafe[funcKey(fn)]
	return ok
}

// directiveLines extracts "provrpq:" directive verbs (with trailing
// arguments) from a comment group.
func directiveLines(g *ast.CommentGroup) []string {
	if g == nil {
		return nil
	}
	var out []string
	for _, c := range g.List {
		if rest, ok := strings.CutPrefix(c.Text, "//provrpq:"); ok {
			out = append(out, strings.TrimSpace(rest))
		}
	}
	return out
}

var knownDirectives = map[string]bool{
	"immutable": true, "mutator": true, "trusted": true, "fsyncsafe": true,
	"fsyncdomain": true, "errdomain": true,
}

// collect folds one package's annotations into the table, reporting
// malformed or misplaced directives as provlint diagnostics.
func (d *Directives) collect(pkg *Package, report func(token.Pos, string, ...any)) {
	seen := map[*ast.CommentGroup]bool{}
	note := func(g *ast.CommentGroup, apply func(verb, arg string, pos token.Pos) bool) {
		if g == nil || seen[g] {
			return
		}
		seen[g] = true
		for _, line := range directiveLines(g) {
			verb, arg, _ := strings.Cut(line, " ")
			arg = strings.TrimSpace(arg)
			if !knownDirectives[verb] {
				report(g.Pos(), "unknown directive //provrpq:%s", verb)
				continue
			}
			if !apply(verb, arg, g.Pos()) {
				report(g.Pos(), "directive //provrpq:%s is not valid here", verb)
			}
		}
	}
	fileScope := func(verb string) bool {
		switch verb {
		case "fsyncdomain":
			d.fsyncDomains[pkg.Pkg.Path()] = true
			return true
		case "errdomain":
			d.errDomains[pkg.Pkg.Path()] = true
			return true
		}
		return false
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				fn, _ := pkg.Info.Defs[decl.Name].(*types.Func)
				note(decl.Doc, func(verb, arg string, pos token.Pos) bool {
					if fn == nil {
						return false
					}
					switch verb {
					case "mutator":
						d.mutators[funcKey(fn)] = true
					case "trusted":
						d.trustedFuncs[funcKey(fn)] = true
					case "fsyncsafe":
						if arg == "" {
							report(pos, "//provrpq:fsyncsafe requires a reason")
						}
						d.fsyncsafe[funcKey(fn)] = arg
					default:
						return fileScope(verb)
					}
					return true
				})
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
					apply := func(verb, arg string, pos token.Pos) bool {
						if tn == nil {
							return false
						}
						switch verb {
						case "immutable":
							d.immutableTypes[typeKey(tn)] = true
						case "trusted":
							d.trustedTypes[typeKey(tn)] = true
						default:
							return fileScope(verb)
						}
						return true
					}
					note(ts.Doc, apply)
					if len(decl.Specs) == 1 {
						note(decl.Doc, apply)
					}
				}
			}
		}
		// File-scope domain markers may sit in any comment group,
		// including the package doc.
		for _, g := range f.Comments {
			if seen[g] {
				continue
			}
			for _, line := range directiveLines(g) {
				verb, _, _ := strings.Cut(line, " ")
				fileScope(verb) // other verbs were (or will be) handled via decls
			}
		}
	}
}

// Suite runs a set of analyzers over loaded packages.
type Suite struct{ Analyzers []*Analyzer }

// DefaultSuite returns every provlint analyzer.
func DefaultSuite() *Suite {
	return &Suite{Analyzers: []*Analyzer{
		ImmutableAnalyzer, CowAliasAnalyzer, AtomicMixAnalyzer, FsyncOrderAnalyzer, ErrSentinelAnalyzer,
	}}
}

// Run collects directives across all packages, runs every analyzer on
// every package, applies //provlint:ignore suppressions, and returns the
// surviving diagnostics sorted by position.
func (s *Suite) Run(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	meta := &Analyzer{Name: "provlint"}
	dirs := newDirectives()
	for _, pkg := range pkgs {
		p := &Pass{Analyzer: meta, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info, diags: &diags}
		dirs.collect(pkg, p.Reportf)
	}
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg, func(pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{Pos: pkg.Fset.Position(pos), Analyzer: "provlint", Message: fmt.Sprintf(format, args...)})
		})
		var pkgDiags []Diagnostic
		for _, a := range s.Analyzers {
			p := &Pass{Analyzer: a, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info, Dirs: dirs, diags: &pkgDiags}
			a.Run(p)
		}
		for _, d := range pkgDiags {
			if !sup.matches(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return dedupe(diags)
}

func dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// suppressions maps file -> line -> analyzer names silenced on that line.
// A //provlint:ignore comment silences the line it sits on and, when it is
// the only thing on its line, the line below.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) matches(d Diagnostic) bool {
	return s[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}

func collectSuppressions(pkg *Package, report func(token.Pos, string, ...any)) suppressions {
	sup := suppressions{}
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				rest, ok := strings.CutPrefix(c.Text, "//provlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(c.Pos(), "//provlint:ignore requires an analyzer name and a reason, e.g. //provlint:ignore immutable copied before publication")
					continue
				}
				name := fields[0]
				pos := pkg.Fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if lines[line] == nil {
						lines[line] = map[string]bool{}
					}
					lines[line][name] = true
				}
			}
		}
	}
	return sup
}
