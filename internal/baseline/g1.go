package baseline

import (
	"provrpq/internal/automata"
	"provrpq/internal/derive"
	"provrpq/internal/index"
)

// G1 is the paper's Option G1 (Li & Moon [21]): represent the query as a
// parse tree and evaluate bottom-up over the run with relational joins —
// leaf relations come from the inverted edge-tag index, concatenation is a
// join, alternation a union and Kleene star a semi-naive fixpoint. The
// intermediate results this materializes are exactly what the safe-query
// technique avoids.
type G1 struct {
	ix *index.Index
	// naive switches Kleene closures to the naive self-join fixpoint the
	// paper ascribes to the baseline (NewG1Naive); the default semi-naive
	// closure is what our own remainder evaluation uses.
	naive bool
}

// NewG1 wraps an inverted index (semi-naive closures).
func NewG1(ix *index.Index) *G1 { return &G1{ix: ix} }

// NewG1Naive wraps an inverted index with naive self-join closures — the
// paper-faithful baseline for the Kleene-star experiments (Fig. 13g/h).
func NewG1Naive(ix *index.Index) *G1 { return &G1{ix: ix, naive: true} }

func (g *G1) closure(r *Rel) *Rel {
	if g.naive {
		return r.ClosureNaive()
	}
	return r.Closure()
}

// Eval returns the full result relation of the query over the indexed run.
func (g *G1) Eval(q *automata.Node) *Rel {
	return g.eval(q)
}

// AllPairs evaluates the query and filters the result to l1 × l2.
func (g *G1) AllPairs(q *automata.Node, l1, l2 []derive.NodeID, emit func(i, j int)) {
	rel := g.eval(q)
	byLeft := map[derive.NodeID][]derive.NodeID{}
	rel.Each(func(a, b derive.NodeID) {
		byLeft[a] = append(byLeft[a], b)
	})
	pos2 := map[derive.NodeID][]int{}
	for j, v := range l2 {
		pos2[v] = append(pos2[v], j)
	}
	for i, u := range l1 {
		for _, v := range byLeft[u] {
			for _, j := range pos2[v] {
				emit(i, j)
			}
		}
	}
}

func (g *G1) eval(q *automata.Node) *Rel {
	switch q.Kind {
	case automata.KindSym:
		out := NewRel()
		g.ix.EachPair(q.Sym, func(p index.Pair) {
			out.Add(p.From, p.To)
		})
		return out
	case automata.KindWild:
		out := NewRel()
		run := g.ix.Run()
		for _, e := range run.Edges {
			out.Add(e.From, e.To)
		}
		return out
	case automata.KindEps:
		return IdentityRel(g.ix.Run())
	case automata.KindConcat:
		if len(q.Children) == 0 {
			return IdentityRel(g.ix.Run())
		}
		rel := g.eval(q.Children[0])
		for _, c := range q.Children[1:] {
			rel = rel.Join(g.eval(c))
		}
		return rel
	case automata.KindAlt:
		out := NewRel()
		for _, c := range q.Children {
			out = out.Union(g.eval(c))
		}
		return out
	case automata.KindStar:
		return g.closure(g.eval(q.Children[0])).Union(IdentityRel(g.ix.Run()))
	case automata.KindPlus:
		return g.closure(g.eval(q.Children[0]))
	case automata.KindOpt:
		return g.eval(q.Children[0]).Union(IdentityRel(g.ix.Run()))
	}
	panic("baseline: unknown query node kind")
}
