package baseline

import (
	"provrpq/internal/automata"
	"provrpq/internal/derive"
	"provrpq/internal/index"
)

// G2 is the paper's Option G2 (Koschmieder & Leser [20]): decompose the
// query at a *rare* label — a symbol that every accepted word must contain
// and that matches few run edges — and search outward from its occurrences:
// a backward product-BFS finds the sources that can reach the occurrence in
// the right prefix state, a forward product-BFS finds the targets. Queries
// with no required label fall back to a full product search from every
// source, which is where the technique degrades.
type G2 struct {
	ix  *index.Index
	dfa *automata.DFA
	// rare is the chosen decomposition label; empty when the query has no
	// required symbol. occs is its occurrence list, fetched once at
	// construction (Index.Pairs copies defensively; Pairwise iterates the
	// list per call and must not pay a copy each time).
	rare string
	occs []index.Pair
}

// NewG2 compiles the query and picks the rarest required label.
func NewG2(ix *index.Index, q *automata.Node) *G2 {
	run := ix.Run()
	g := &G2{ix: ix, dfa: automata.CompileDFA(q, run.Spec.Tags())}
	g.rare = g.pickRareLabel(q)
	g.occs = ix.Pairs(g.rare)
	return g
}

// RareLabel returns the chosen decomposition label ("" when none exists).
func (g *G2) RareLabel() string { return g.rare }

// pickRareLabel returns the least-frequent symbol that every accepted word
// contains (DFA.Requires): removing all its transitions must disconnect the
// start from every accepting state.
func (g *G2) pickRareLabel(q *automata.Node) string {
	best := ""
	bestCount := -1
	for _, sym := range q.Symbols() {
		if !g.dfa.Requires(sym) {
			continue
		}
		c := g.ix.Count(sym)
		if bestCount < 0 || c < bestCount {
			best, bestCount = sym, c
		}
	}
	return best
}

// Eval returns the full result relation.
func (g *G2) Eval() *Rel {
	run := g.ix.Run()
	out := NewRel()
	if g.rare == "" {
		// No required label: full product BFS from every node.
		o := &Oracle{run: run, dfa: g.dfa}
		for _, u := range run.AllNodes() {
			for _, v := range o.From(u) {
				out.Add(u, v)
			}
		}
		return out
	}
	// For each rare-label occurrence x -rare-> y: walk backward from x
	// to find (u, q) with δ*(q, tags(u→x)) landing at x in state q, then
	// forward from (y, δ(q, rare)).
	for _, occ := range g.occs {
		back := g.backward(occ.From) // node -> set of start-states q that reach occ.From in state q... see below
		// back[u] = DFA states q such that some u→occ.From path maps the
		// start state to q.
		fwdCache := map[int][]derive.NodeID{}
		for u, qs := range back {
			for _, q := range qs {
				q2 := g.dfa.Step(q, g.rare)
				if q2 < 0 {
					continue
				}
				vs, ok := fwdCache[q2]
				if !ok {
					vs = g.forward(occ.To, q2)
					fwdCache[q2] = vs
				}
				for _, v := range vs {
					out.Add(u, v)
				}
			}
		}
	}
	return out
}

// Pairwise answers a single pair through the rare-label search.
func (g *G2) Pairwise(u, v derive.NodeID) bool {
	run := g.ix.Run()
	if g.rare == "" {
		o := &Oracle{run: run, dfa: g.dfa}
		return o.Pairwise(u, v)
	}
	for _, occ := range g.occs {
		back := g.backwardFrom(u, occ.From)
		for _, q := range back {
			q2 := g.dfa.Step(q, g.rare)
			if q2 < 0 {
				continue
			}
			if g.forwardHits(occ.To, q2, v) {
				return true
			}
		}
	}
	return false
}

// backward returns, for every node u, the set { δ*(q0, tags(p)) : p a u→x
// path } — the DFA states a prefix ending at x can be in. It runs a reverse
// product-BFS over pairs (state at the current node, state at x): an edge
// (w, z, tag) extends a known pair (q', qx) at z to (q, qx) at w for every
// q with δ(q, tag) = q'; the answer keeps pairs whose node-state is the
// start state.
func (g *G2) backward(x derive.NodeID) map[derive.NodeID][]int {
	run := g.ix.Run()
	nq := g.dfa.NumStates()
	type pr struct{ qAtNode, qAtX int }
	seen := map[derive.NodeID]map[pr]bool{}
	var stack []struct {
		n derive.NodeID
		p pr
	}
	push := func(n derive.NodeID, p pr) {
		if seen[n] == nil {
			seen[n] = map[pr]bool{}
		}
		if !seen[n][p] {
			seen[n][p] = true
			stack = append(stack, struct {
				n derive.NodeID
				p pr
			}{n, p})
		}
	}
	for q := 0; q < nq; q++ {
		push(x, pr{q, q})
	}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range run.In(it.n) {
			e := run.Edges[ei]
			// Path e.From -tag-> it.n -...-> x: the state at e.From is any
			// q with δ(q, tag) == it.p.qAtNode.
			for q := 0; q < nq; q++ {
				if g.dfa.Step(q, e.Tag) == it.p.qAtNode {
					push(e.From, pr{q, it.p.qAtX})
				}
			}
		}
	}
	out := map[derive.NodeID][]int{}
	for n, ps := range seen {
		qs := map[int]bool{}
		for p := range ps {
			if p.qAtNode == g.dfa.Start {
				qs[p.qAtX] = true
			}
		}
		for q := range qs {
			out[n] = append(out[n], q)
		}
	}
	return out
}

// backwardFrom returns the arrival states at x of paths u→x that start in
// the DFA start state at u (forward product-BFS restricted to one source).
func (g *G2) backwardFrom(u, x derive.NodeID) []int {
	run := g.ix.Run()
	nq := g.dfa.NumStates()
	seen := make([]bool, run.NumNodes()*nq)
	type item struct {
		n derive.NodeID
		q int
	}
	stack := []item{{u, g.dfa.Start}}
	seen[int(u)*nq+g.dfa.Start] = true
	var out []int
	if u == x {
		out = append(out, g.dfa.Start)
	}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range run.Out(it.n) {
			e := run.Edges[ei]
			q2 := g.dfa.Step(it.q, e.Tag)
			if q2 < 0 || seen[int(e.To)*nq+q2] {
				continue
			}
			seen[int(e.To)*nq+q2] = true
			if e.To == x {
				out = append(out, q2)
			}
			stack = append(stack, item{e.To, q2})
		}
	}
	return out
}

// forward returns all v such that some y→v path maps state q to an
// accepting state (v = y included when q accepts).
func (g *G2) forward(y derive.NodeID, q int) []derive.NodeID {
	run := g.ix.Run()
	nq := g.dfa.NumStates()
	seen := make([]bool, run.NumNodes()*nq)
	type item struct {
		n derive.NodeID
		q int
	}
	stack := []item{{y, q}}
	seen[int(y)*nq+q] = true
	hit := map[derive.NodeID]bool{}
	if g.dfa.Accept[q] {
		hit[y] = true
	}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range run.Out(it.n) {
			e := run.Edges[ei]
			q2 := g.dfa.Step(it.q, e.Tag)
			if q2 < 0 || seen[int(e.To)*nq+q2] {
				continue
			}
			seen[int(e.To)*nq+q2] = true
			if g.dfa.Accept[q2] {
				hit[e.To] = true
			}
			stack = append(stack, item{e.To, q2})
		}
	}
	out := make([]derive.NodeID, 0, len(hit))
	for v := range hit {
		out = append(out, v)
	}
	return out
}

// forwardHits reports whether some y→target path maps q to an accepting
// state (target == y included when q accepts).
func (g *G2) forwardHits(y derive.NodeID, q int, target derive.NodeID) bool {
	for _, v := range g.forward(y, q) {
		if v == target {
			return true
		}
	}
	return false
}
