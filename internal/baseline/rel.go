package baseline

import (
	"sort"

	"provrpq/internal/derive"
)

// Rel is a binary relation over run nodes — the intermediate result type of
// the relational (G1-style) evaluation. The join/closure operators below
// are the "structural joins" whose intermediate-result blowup motivates the
// paper's approach.
type Rel struct {
	set map[[2]derive.NodeID]struct{}
}

// NewRel returns an empty relation.
func NewRel() *Rel { return &Rel{set: map[[2]derive.NodeID]struct{}{}} }

// Add inserts the pair (u, v).
func (r *Rel) Add(u, v derive.NodeID) { r.set[[2]derive.NodeID{u, v}] = struct{}{} }

// Has reports membership.
func (r *Rel) Has(u, v derive.NodeID) bool {
	_, ok := r.set[[2]derive.NodeID{u, v}]
	return ok
}

// Len returns the pair count.
func (r *Rel) Len() int { return len(r.set) }

// Each visits every pair in unspecified order.
func (r *Rel) Each(f func(u, v derive.NodeID)) {
	for p := range r.set {
		f(p[0], p[1])
	}
}

// Pairs returns the pairs sorted (for deterministic output).
func (r *Rel) Pairs() [][2]derive.NodeID {
	out := make([][2]derive.NodeID, 0, len(r.set))
	for p := range r.set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Union returns r ∪ s.
func (r *Rel) Union(s *Rel) *Rel {
	out := NewRel()
	for p := range r.set {
		out.set[p] = struct{}{}
	}
	for p := range s.set {
		out.set[p] = struct{}{}
	}
	return out
}

// Join returns the composition r ; s = {(u,w) | ∃v: (u,v) ∈ r, (v,w) ∈ s}.
func (r *Rel) Join(s *Rel) *Rel {
	// Hash s by its left column.
	byLeft := map[derive.NodeID][]derive.NodeID{}
	for p := range s.set {
		byLeft[p[0]] = append(byLeft[p[0]], p[1])
	}
	out := NewRel()
	for p := range r.set {
		for _, w := range byLeft[p[1]] {
			out.Add(p[0], w)
		}
	}
	return out
}

// Closure returns the transitive closure r⁺ by semi-naive iteration
// (repeated delta joins until fixpoint) — the self-join loop the paper
// describes for Kleene-star baselines.
func (r *Rel) Closure() *Rel {
	byLeft := map[derive.NodeID][]derive.NodeID{}
	for p := range r.set {
		byLeft[p[0]] = append(byLeft[p[0]], p[1])
	}
	out := NewRel()
	delta := make([][2]derive.NodeID, 0, len(r.set))
	for p := range r.set {
		out.set[p] = struct{}{}
		delta = append(delta, p)
	}
	for len(delta) > 0 {
		var next [][2]derive.NodeID
		for _, p := range delta {
			for _, w := range byLeft[p[1]] {
				np := [2]derive.NodeID{p[0], w}
				if _, seen := out.set[np]; !seen {
					out.set[np] = struct{}{}
					next = append(next, np)
				}
			}
		}
		delta = next
	}
	return out
}

// ClosureNaive computes the transitive closure by naive self-joins until a
// fixpoint: R ← R ∪ R;R₁ with the FULL relation re-joined every round.
// This is the behaviour the paper ascribes to the Kleene-star baselines
// ("it is unknown how many rounds it takes to reach a fixpoint, the
// performance can be very bad"): cost grows with the longest path times the
// result size. Closure (semi-naive) is what our own evaluator uses.
func (r *Rel) ClosureNaive() *Rel {
	byLeft := map[derive.NodeID][]derive.NodeID{}
	for p := range r.set {
		byLeft[p[0]] = append(byLeft[p[0]], p[1])
	}
	out := NewRel()
	for p := range r.set {
		out.set[p] = struct{}{}
	}
	for {
		snapshot := make([][2]derive.NodeID, 0, len(out.set))
		for p := range out.set {
			snapshot = append(snapshot, p)
		}
		grew := false
		for _, p := range snapshot {
			for _, w := range byLeft[p[1]] {
				np := [2]derive.NodeID{p[0], w}
				if _, seen := out.set[np]; !seen {
					out.set[np] = struct{}{}
					grew = true
				}
			}
		}
		if !grew {
			return out
		}
	}
}

// IdentityRel returns {(u,u)} over all nodes of the run (the ε relation).
func IdentityRel(run *derive.Run) *Rel {
	out := NewRel()
	for _, id := range run.AllNodes() {
		out.Add(id, id)
	}
	return out
}
