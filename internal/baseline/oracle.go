// Package baseline implements the comparison systems of Section IV-B /
// Section V plus a ground-truth oracle:
//
//	Oracle — the "simple algorithm" of Section III-B: a BFS over the
//	         product of the run with the query DFA. Linear in run size per
//	         source node; used as ground truth by the test suites and as
//	         the worst-case comparator.
//	G1     — bottom-up evaluation of the query parse tree with relational
//	         joins (Li & Moon [21]).
//	G2     — rare-label query decomposition with bidirectional search
//	         (Koschmieder & Leser [20]).
//	G3     — inverted index + reachability labels for infrequent-symbol
//	         queries R = _*a1_*…ak_* ([3]).
package baseline

import (
	"provrpq/internal/automata"
	"provrpq/internal/derive"
)

// Oracle answers regular path queries by explicit product-graph traversal
// of a materialized run. It is exact for every query (safe or not).
type Oracle struct {
	run *derive.Run
	dfa *automata.DFA
}

// NewOracle compiles the query against the run's specification alphabet.
func NewOracle(run *derive.Run, query *automata.Node) *Oracle {
	return &Oracle{run: run, dfa: automata.CompileDFA(query, run.Spec.Tags())}
}

// Pairwise reports whether some u→v path spells a word of the query
// language. The empty path answers u == v when ε ∈ L(R).
func (o *Oracle) Pairwise(u, v derive.NodeID) bool {
	target := o.statesAt(u)
	for _, q := range target[v] {
		if o.dfa.Accept[q] {
			return true
		}
	}
	return false
}

// From returns all nodes v with u —R→ v.
func (o *Oracle) From(u derive.NodeID) []derive.NodeID {
	states := o.statesAt(u)
	var out []derive.NodeID
	for v, qs := range states {
		for _, q := range qs {
			if o.dfa.Accept[q] {
				out = append(out, derive.NodeID(v))
				break
			}
		}
	}
	return out
}

// AllPairs emits every matching pair of l1 × l2.
func (o *Oracle) AllPairs(l1, l2 []derive.NodeID, emit func(i, j int)) {
	inL2 := map[derive.NodeID][]int{}
	for j, v := range l2 {
		inL2[v] = append(inL2[v], j)
	}
	for i, u := range l1 {
		states := o.statesAt(u)
		for v, qs := range states {
			accepts := false
			for _, q := range qs {
				if o.dfa.Accept[q] {
					accepts = true
					break
				}
			}
			if !accepts {
				continue
			}
			for _, j := range inL2[derive.NodeID(v)] {
				emit(i, j)
			}
		}
	}
}

// statesAt runs the product BFS from (u, start) and returns, per node, the
// DFA states reachable when arriving at that node. The state at u itself
// includes the start state (the empty path).
func (o *Oracle) statesAt(u derive.NodeID) [][]int {
	n := o.run.NumNodes()
	nq := o.dfa.NumStates()
	seen := make([]bool, n*nq)
	states := make([][]int, n)
	type item struct {
		node derive.NodeID
		q    int
	}
	stack := []item{{u, o.dfa.Start}}
	seen[int(u)*nq+o.dfa.Start] = true
	states[u] = append(states[u], o.dfa.Start)
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range o.run.Out(it.node) {
			e := o.run.Edges[ei]
			q2 := o.dfa.Step(it.q, e.Tag)
			if q2 < 0 || seen[int(e.To)*nq+q2] {
				continue
			}
			seen[int(e.To)*nq+q2] = true
			states[e.To] = append(states[e.To], q2)
			stack = append(stack, item{e.To, q2})
		}
	}
	return states
}
