package baseline

import (
	"testing"

	"provrpq/internal/automata"
	"provrpq/internal/derive"
	"provrpq/internal/index"
	"provrpq/internal/wf"
)

func testRun(t *testing.T, spec *wf.Spec, seed int64, target int) *derive.Run {
	t.Helper()
	r, err := derive.Derive(spec, derive.Options{Seed: seed, TargetEdges: target})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func relFromOracle(run *derive.Run, q *automata.Node) *Rel {
	o := NewOracle(run, q)
	out := NewRel()
	for _, u := range run.AllNodes() {
		for _, v := range o.From(u) {
			out.Add(u, v)
		}
	}
	return out
}

func sameRel(t *testing.T, name string, got, want *Rel, run *derive.Run) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Errorf("%s: %d pairs, oracle %d", name, got.Len(), want.Len())
	}
	want.Each(func(u, v derive.NodeID) {
		if !got.Has(u, v) {
			t.Errorf("%s: missing (%s,%s)", name, run.Nodes[u].Name, run.Nodes[v].Name)
		}
	})
	got.Each(func(u, v derive.NodeID) {
		if !want.Has(u, v) {
			t.Errorf("%s: spurious (%s,%s)", name, run.Nodes[u].Name, run.Nodes[v].Name)
		}
	})
}

var crossQueries = []string{
	"_*", "_*.e._*", "_*.e._*.b._*", "e", "b.b", "(e|b)._*", "d*", "A+",
	"_*.A._*", "_._._", "(A|d)+", "e.e", "_?",
}

func TestG1MatchesOracle(t *testing.T) {
	spec := wf.PaperSpec()
	for seed := int64(0); seed < 4; seed++ {
		run := testRun(t, spec, seed, 80)
		ix := index.Build(run)
		g1 := NewG1(ix)
		for _, qs := range crossQueries {
			q := automata.MustParse(qs)
			sameRel(t, "G1 "+qs, g1.Eval(q), relFromOracle(run, q), run)
		}
	}
}

func TestG2MatchesOracle(t *testing.T) {
	spec := wf.PaperSpec()
	for seed := int64(0); seed < 4; seed++ {
		run := testRun(t, spec, seed, 80)
		ix := index.Build(run)
		for _, qs := range crossQueries {
			q := automata.MustParse(qs)
			g2 := NewG2(ix, q)
			sameRel(t, "G2 "+qs, g2.Eval(), relFromOracle(run, q), run)
		}
	}
}

func TestG2PairwiseMatchesOracle(t *testing.T) {
	spec := wf.PaperSpec()
	run := testRun(t, spec, 5, 60)
	ix := index.Build(run)
	for _, qs := range []string{"_*.e._*", "e", "_*.e._*.b._*", "A+"} {
		q := automata.MustParse(qs)
		g2 := NewG2(ix, q)
		o := NewOracle(run, q)
		n := run.NumNodes()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				u, v := derive.NodeID(i), derive.NodeID(j)
				if g2.Pairwise(u, v) != o.Pairwise(u, v) {
					t.Fatalf("G2 %s (%s,%s): mismatch", qs, run.Nodes[i].Name, run.Nodes[j].Name)
				}
			}
		}
	}
}

func TestG2RareLabelChoice(t *testing.T) {
	spec := wf.PaperSpec()
	run := testRun(t, spec, 1, 150)
	ix := index.Build(run)
	// e occurs once per recursion base; b at least 3 times; _*e_* must pick e.
	g2 := NewG2(ix, automata.MustParse("_*.e._*"))
	if g2.RareLabel() != "e" {
		t.Errorf("rare label = %q, want e", g2.RareLabel())
	}
	// Kleene star has no required label.
	g2 = NewG2(ix, automata.MustParse("d*"))
	if g2.RareLabel() != "" {
		t.Errorf("rare label for d* = %q, want none", g2.RareLabel())
	}
	// Alternation: neither branch symbol is required.
	g2 = NewG2(ix, automata.MustParse("e|b"))
	if g2.RareLabel() != "" {
		t.Errorf("rare label for e|b = %q, want none", g2.RareLabel())
	}
	// ... but a symbol required via both branches is.
	g2 = NewG2(ix, automata.MustParse("(e.d)|(d.e)"))
	if g2.RareLabel() == "" {
		t.Error("d and e are both required in (e.d)|(d.e)")
	}
}

func TestIFQRecognition(t *testing.T) {
	cases := []struct {
		q    string
		want []string
		ok   bool
	}{
		{"_*", []string{}, true},
		{"_*.e._*", []string{"e"}, true},
		{"_*.e._*.b._*", []string{"e", "b"}, true},
		{"_*.a1._*.a2._*.a3._*", []string{"a1", "a2", "a3"}, true},
		{"e", nil, false},
		{"_*.e", nil, false},
		{"e._*", nil, false},
		{"_*.e*._*", nil, false},
		{"_*.(e|b)._*", nil, false},
		{"(_*.e._*)", []string{"e"}, true},
	}
	for _, c := range cases {
		syms, ok := IFQSymbols(automata.MustParse(c.q))
		if ok != c.ok {
			t.Errorf("IFQSymbols(%q) ok = %v, want %v", c.q, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(syms) != len(c.want) {
			t.Errorf("IFQSymbols(%q) = %v, want %v", c.q, syms, c.want)
			continue
		}
		for i := range syms {
			if syms[i] != c.want[i] {
				t.Errorf("IFQSymbols(%q) = %v, want %v", c.q, syms, c.want)
			}
		}
	}
}

func TestG3MatchesOracle(t *testing.T) {
	spec := wf.PaperSpec()
	for seed := int64(0); seed < 4; seed++ {
		run := testRun(t, spec, seed, 80)
		ix := index.Build(run)
		for _, qs := range []string{"_*", "_*.e._*", "_*.e._*.b._*", "_*.A._*.d._*"} {
			q := automata.MustParse(qs)
			g3, ok := NewG3(ix, q)
			if !ok {
				t.Fatalf("%q should be an IFQ", qs)
			}
			o := NewOracle(run, q)
			n := run.NumNodes()
			// Pairwise over all pairs.
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					u, v := derive.NodeID(i), derive.NodeID(j)
					if got, want := g3.Pairwise(u, v), o.Pairwise(u, v); got != want {
						t.Fatalf("G3 %s (%s,%s) = %v, oracle %v", qs,
							run.Nodes[i].Name, run.Nodes[j].Name, got, want)
					}
				}
			}
			// All-pairs over split lists.
			var l1, l2 []derive.NodeID
			for i := 0; i < n; i++ {
				if i%2 == 0 {
					l1 = append(l1, derive.NodeID(i))
				} else {
					l2 = append(l2, derive.NodeID(i))
				}
			}
			got := NewRel()
			g3.AllPairs(l1, l2, func(i, j int) { got.Add(l1[i], l2[j]) })
			want := NewRel()
			o.AllPairs(l1, l2, func(i, j int) { want.Add(l1[i], l2[j]) })
			sameRel(t, "G3 allpairs "+qs, got, want, run)
		}
	}
}

func TestNonIFQRejected(t *testing.T) {
	run := testRun(t, wf.PaperSpec(), 0, 40)
	ix := index.Build(run)
	if _, ok := NewG3(ix, automata.MustParse("e+")); ok {
		t.Error("e+ is not an IFQ")
	}
}

func TestOracleEmptyPath(t *testing.T) {
	run := testRun(t, wf.PaperSpec(), 0, 40)
	o := NewOracle(run, automata.MustParse("_*"))
	if !o.Pairwise(0, 0) {
		t.Error("reflexive reachability should hold for _*")
	}
	o2 := NewOracle(run, automata.MustParse("_+"))
	if o2.Pairwise(0, 0) {
		t.Error("_+ should not match the empty path")
	}
}

func TestRelOps(t *testing.T) {
	r := NewRel()
	r.Add(1, 2)
	r.Add(2, 3)
	r.Add(3, 1)
	if r.Len() != 3 || !r.Has(1, 2) || r.Has(2, 1) {
		t.Fatal("Add/Has broken")
	}
	j := r.Join(r) // (1,3), (2,1), (3,2)
	if j.Len() != 3 || !j.Has(1, 3) || !j.Has(2, 1) || !j.Has(3, 2) {
		t.Fatalf("Join = %v", j.Pairs())
	}
	c := r.Closure() // full 3x3 cycle closure: 9 pairs
	if c.Len() != 9 {
		t.Fatalf("Closure has %d pairs, want 9", c.Len())
	}
	u := r.Union(j)
	if u.Len() != 6 {
		t.Fatalf("Union has %d pairs, want 6", u.Len())
	}
	ps := u.Pairs()
	for i := 1; i < len(ps); i++ {
		if ps[i-1][0] > ps[i][0] || (ps[i-1][0] == ps[i][0] && ps[i-1][1] >= ps[i][1]) {
			t.Fatal("Pairs not sorted")
		}
	}
}

func TestG1AllPairsFilter(t *testing.T) {
	run := testRun(t, wf.PaperSpec(), 2, 60)
	ix := index.Build(run)
	g1 := NewG1(ix)
	q := automata.MustParse("_*.e._*")
	want := relFromOracle(run, q)
	var l1, l2 []derive.NodeID
	for i := 0; i < run.NumNodes(); i += 2 {
		l1 = append(l1, derive.NodeID(i))
	}
	for i := 1; i < run.NumNodes(); i += 3 {
		l2 = append(l2, derive.NodeID(i))
	}
	got := NewRel()
	g1.AllPairs(q, l1, l2, func(i, j int) { got.Add(l1[i], l2[j]) })
	for _, p := range got.Pairs() {
		if !want.Has(p[0], p[1]) {
			t.Fatalf("spurious pair %v", p)
		}
	}
	count := 0
	for _, u := range l1 {
		for _, v := range l2 {
			if want.Has(u, v) {
				count++
			}
		}
	}
	if got.Len() != count {
		t.Fatalf("AllPairs found %d pairs, want %d", got.Len(), count)
	}
}
