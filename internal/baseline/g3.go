package baseline

import (
	"provrpq/internal/automata"
	"provrpq/internal/derive"
	"provrpq/internal/index"
	"provrpq/internal/label"
	"provrpq/internal/reach"
)

// IFQSymbols recognizes the paper's infrequent-symbol query shape
// R = _* a1 _* a2 ... _* ak _* and returns [a1..ak]. The k = 0 case (plain
// reachability _*) returns an empty, non-nil slice. Any other shape returns
// ok == false.
func IFQSymbols(q *automata.Node) (syms []string, ok bool) {
	q = automata.Simplify(q)
	wildStar := func(n *automata.Node) bool {
		return n.Kind == automata.KindStar && n.Children[0].Kind == automata.KindWild
	}
	if wildStar(q) {
		return []string{}, true
	}
	if q.Kind != automata.KindConcat {
		return nil, false
	}
	cs := q.Children
	if len(cs) < 3 || len(cs)%2 == 0 {
		return nil, false
	}
	for i, c := range cs {
		if i%2 == 0 {
			if !wildStar(c) {
				return nil, false
			}
			continue
		}
		if c.Kind != automata.KindSym {
			return nil, false
		}
		syms = append(syms, c.Sym)
	}
	return syms, true
}

// G3 is the paper's Option G3 ([3]): evaluate IFQs by fetching the
// occurrence lists of each ai from the inverted index and connecting
// consecutive occurrences — and the query endpoints — with constant-time
// reachability-label tests. It only applies to the IFQ shape.
type G3 struct {
	ix   *index.Index
	syms []string
	// occs caches each symbol's occurrence list at construction
	// (Index.Pairs copies defensively; the per-pair Pairwise loops must
	// not pay a copy per call).
	occs [][]index.Pair
}

// NewG3 returns the evaluator, or ok == false when the query is not an IFQ.
func NewG3(ix *index.Index, q *automata.Node) (*G3, bool) {
	syms, ok := IFQSymbols(q)
	if !ok {
		return nil, false
	}
	g := &G3{ix: ix, syms: syms}
	for _, sym := range syms {
		g.occs = append(g.occs, ix.Pairs(sym))
	}
	return g, true
}

// Symbols returns the IFQ symbol sequence (empty for plain reachability).
func (g *G3) Symbols() []string { return g.syms }

// Pairwise answers u —R→ v: a chain of occurrences x1 -a1-> y1 ⇝ x2 -a2->
// y2 ⇝ ... with u ⇝ x1 and yk ⇝ v, all reachability via labels.
func (g *G3) Pairwise(u, v derive.NodeID) bool {
	run := g.ix.Run()
	spec := run.Spec
	if len(g.syms) == 0 {
		return reach.Pairwise(spec, run.Label(u), run.Label(v))
	}
	// frontier: the occurrence heads reachable so far.
	frontier := []derive.NodeID{u}
	for si := range g.syms {
		var next []derive.NodeID
		seen := map[derive.NodeID]bool{}
		for _, occ := range g.occs[si] {
			if seen[occ.To] {
				continue
			}
			for _, f := range frontier {
				if reach.Pairwise(spec, run.Label(f), run.Label(occ.From)) {
					seen[occ.To] = true
					next = append(next, occ.To)
					break
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		frontier = next
	}
	for _, f := range frontier {
		if reach.Pairwise(spec, run.Label(f), run.Label(v)) {
			return true
		}
	}
	return false
}

// AllPairs evaluates the IFQ over l1 × l2. The occurrence chain is
// materialized once (pairs of first-occurrence sources and last-occurrence
// targets), then joined to the endpoint lists with the output-linear
// all-pairs reachability of Section IV-A.
func (g *G3) AllPairs(l1, l2 []derive.NodeID, emit func(i, j int)) {
	run := g.ix.Run()
	spec := run.Spec
	labelsOf := func(ids []derive.NodeID) []label.Label {
		ls := make([]label.Label, len(ids))
		for i, id := range ids {
			ls[i] = run.Label(id)
		}
		return ls
	}
	if len(g.syms) == 0 {
		reach.AllPairs(spec, labelsOf(l1), labelsOf(l2), emit)
		return
	}

	// starts: distinct first-occurrence sources; chainEnds[s]: last-symbol
	// occurrence heads reachable from start s through the occurrence chain.
	first := g.occs[0]
	type chain struct {
		start derive.NodeID
		ends  map[derive.NodeID]bool
	}
	var chains []chain
	for _, occ := range first {
		c := chain{start: occ.From, ends: map[derive.NodeID]bool{occ.To: true}}
		chains = append(chains, c)
	}
	// Fold the middle symbols: for every chain, advance its end set.
	for si := range g.syms[1:] {
		occs := g.occs[1+si]
		for ci := range chains {
			next := map[derive.NodeID]bool{}
			for end := range chains[ci].ends {
				for _, occ := range occs {
					if next[occ.To] {
						continue
					}
					if reach.Pairwise(spec, run.Label(end), run.Label(occ.From)) {
						next[occ.To] = true
					}
				}
			}
			chains[ci].ends = next
		}
	}

	// Join with the endpoint lists: for each u, union the end sets of the
	// chains whose start u reaches, then match v against that union.
	for i, u := range l1 {
		ends := map[derive.NodeID]bool{}
		for _, c := range chains {
			if len(c.ends) == 0 {
				continue
			}
			if reach.Pairwise(spec, run.Label(u), run.Label(c.start)) {
				for e := range c.ends {
					ends[e] = true
				}
			}
		}
		if len(ends) == 0 {
			continue
		}
		for j, v := range l2 {
			for end := range ends {
				if reach.Pairwise(spec, run.Label(end), run.Label(v)) {
					emit(i, j)
					break
				}
			}
		}
	}
}
