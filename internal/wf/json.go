package wf

import "encoding/json"

// specJSON is the serialized form of a Spec: just the grammar; all derived
// structures (production graph, cycles, closures) are rebuilt on load.
type specJSON struct {
	Modules []Module     `json:"modules"`
	Start   ModuleID     `json:"start"`
	Prods   []Production `json:"productions"`
}

// MarshalJSON encodes the grammar portion of the Spec.
func (s *Spec) MarshalJSON() ([]byte, error) {
	return json.Marshal(specJSON{Modules: s.Modules, Start: s.Start, Prods: s.Prods})
}

// UnmarshalJSON decodes and re-validates a Spec. It replaces the receiver
// wholesale with a freshly validated Spec, which is the one sanctioned
// whole-value write.
//
//provrpq:mutator
func (s *Spec) UnmarshalJSON(data []byte) error {
	var sj specJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return err
	}
	ns, err := New(sj.Modules, sj.Start, sj.Prods)
	if err != nil {
		return err
	}
	*s = *ns
	return nil
}
