// Package wf implements the workflow-specification model of the paper:
// context-free graph grammars (CFGGs) whose language is the set of all
// possible workflow executions (Definitions 1-4).
//
// A specification is a set of modules (atomic or composite), a start module
// and a set of productions M -> W where W is a simple workflow (an acyclic
// edge-tagged DAG over modules). The package also builds the production
// graph P(G) (Definition 5), enumerates its cycles, and checks the two
// structural constraints the paper's labeling scheme requires:
//
//   - strict linear recursion: all cycles of P(G) are vertex-disjoint
//     (Definition 6);
//   - well-formed bodies: each production body is acyclic with a unique
//     source and a unique sink, and every body node lies on a source-to-sink
//     path. This is the coarse-grained single-input/single-output property
//     (Section III-A) that makes plain reachability safe for every workflow.
package wf

import (
	"fmt"
	"sort"
)

// ModuleID identifies a module within a Spec (index into Spec.Modules).
type ModuleID int

// Module is an atomic or composite workflow module (Definition 3: Sigma and
// Delta). Atomic modules are the terminals of the grammar; composite modules
// are replaced by production bodies during derivation.
type Module struct {
	Name      string `json:"name"`
	Composite bool   `json:"composite,omitempty"`
}

// Edge is a tagged data edge between two nodes of a production body
// (Definition 1). From and To index Body.Nodes. Parallel edges with
// different tags are allowed.
type Edge struct {
	From int    `json:"from"`
	To   int    `json:"to"`
	Tag  string `json:"tag"`
}

// Body is a simple workflow (Definition 1): the right-hand side of a
// production. Nodes lists the modules of the body in a fixed order; the node
// position within this list is the "i" of the paper's (k,i) edge labels.
type Body struct {
	Nodes []ModuleID `json:"nodes"`
	Edges []Edge     `json:"edges"`
}

// Production is a workflow production M -> W (Definition 2).
type Production struct {
	LHS  ModuleID `json:"lhs"`
	Body Body     `json:"body"`
}

// Spec is a workflow specification G = (Sigma, Delta, S, P) (Definition 3).
// Construct one with New, which validates the grammar and precomputes the
// production graph, cycles and per-body reachability closures. A Spec is
// shared by every run, engine and cached plan derived from it, so it is
// frozen once New returns.
//
//provrpq:immutable
type Spec struct {
	Modules []Module
	Start   ModuleID
	Prods   []Production

	byName    map[string]ModuleID
	prodsOf   [][]int  // composite module -> indices into Prods
	bodySrc   []int    // per production: index of the unique source node
	bodySink  []int    // per production: index of the unique sink node
	bodyReach [][]bool // per production: closure[i*len(nodes)+j], strict (i!=j paths)
	tagAlpha  map[string]bool

	pg *ProdGraph
}

// New validates the given modules, start module and productions and returns
// a ready-to-use Spec. The returned error describes the first violated
// constraint (invalid references, cyclic or ill-formed bodies, unproductive
// modules, or recursion that is not strictly linear).
func New(modules []Module, start ModuleID, prods []Production) (*Spec, error) {
	s := &Spec{Modules: modules, Start: start, Prods: prods}
	if err := s.validate(); err != nil {
		return nil, err
	}
	s.pg = buildProdGraph(s)
	if err := s.pg.checkStrictLinear(); err != nil {
		return nil, err
	}
	return s, nil
}

// ModuleByName returns the id of the module with the given name.
func (s *Spec) ModuleByName(name string) (ModuleID, bool) {
	id, ok := s.byName[name]
	return id, ok
}

// Name returns the name of module m.
func (s *Spec) Name(m ModuleID) string { return s.Modules[m].Name }

// IsComposite reports whether module m is composite.
func (s *Spec) IsComposite(m ModuleID) bool { return s.Modules[m].Composite }

// ProdsOf returns the indices of the productions whose left-hand side is m.
// The result is empty for atomic modules.
func (s *Spec) ProdsOf(m ModuleID) []int {
	if !s.Modules[m].Composite {
		return nil
	}
	return s.prodsOf[m]
}

// Source returns the index of the unique source node of production k's body.
func (s *Spec) Source(k int) int { return s.bodySrc[k] }

// Sink returns the index of the unique sink node of production k's body.
func (s *Spec) Sink(k int) int { return s.bodySink[k] }

// BodyReach reports whether body node i reaches body node j (via one or more
// edges) within production k's body. It is false for i == j.
func (s *Spec) BodyReach(k, i, j int) bool {
	n := len(s.Prods[k].Body.Nodes)
	return s.bodyReach[k][i*n+j]
}

// ProdGraph returns the production graph P(G) of the specification.
func (s *Spec) ProdGraph() *ProdGraph { return s.pg }

// Cycles returns the vertex-disjoint cycles of P(G), in a stable order; the
// slice index is the cycle id "s" used in recursion labels (s,t,i).
func (s *Spec) Cycles() []*Cycle { return s.pg.Cycles }

// IsRecursive reports whether module m lies on a cycle of P(G).
func (s *Spec) IsRecursive(m ModuleID) bool { return s.pg.cycleOf[m] >= 0 }

// CycleOf returns the cycle containing module m and m's position within the
// cycle's module list, or (nil, -1) if m is not recursive.
func (s *Spec) CycleOf(m ModuleID) (*Cycle, int) {
	ci := s.pg.cycleOf[m]
	if ci < 0 {
		return nil, -1
	}
	c := s.pg.Cycles[ci]
	return c, c.posOf[m]
}

// RecursiveProd returns, for a recursive module m, the index of its unique
// recursive production and the body position of the cycle-successor module
// within that production. It returns (-1, -1) for non-recursive modules.
func (s *Spec) RecursiveProd(m ModuleID) (prod, cyclePos int) {
	ci := s.pg.cycleOf[m]
	if ci < 0 {
		return -1, -1
	}
	c := s.pg.Cycles[ci]
	p := c.posOf[m]
	e := c.Edges[p]
	return e.Prod, e.Pos
}

// Size returns the paper's grammar-size measure: the sum over productions of
// one plus the number of body modules (footnote 3, Section V-A).
func (s *Spec) Size() int {
	n := 0
	for _, p := range s.Prods {
		n += 1 + len(p.Body.Nodes)
	}
	return n
}

// Tags returns the sorted set of edge tags appearing in any production body.
func (s *Spec) Tags() []string {
	set := s.TagSet()
	tags := make([]string, 0, len(set))
	for t := range set {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

// TagSet returns the edge-tag alphabet Γ as a set, shared and immutable:
// it is built once in validate, so per-append batch validation reads it
// without materializing a fresh map. Callers must not mutate it.
func (s *Spec) TagSet() map[string]bool {
	if s.tagAlpha != nil {
		return s.tagAlpha
	}
	// A Spec constructed without New (tests building literals) lacks the
	// derived tables; fall back to a one-off scan rather than panic.
	set := map[string]bool{}
	for _, p := range s.Prods {
		for _, e := range p.Body.Edges {
			set[e.Tag] = true
		}
	}
	return set
}

// validate checks the grammar and fills in the derived structures
// (byName, prodsOf, body source/sink/reachability). It runs inside New,
// before the Spec is published, which is why it is a sanctioned mutation
// site.
//
//provrpq:mutator
func (s *Spec) validate() error {
	if len(s.Modules) == 0 {
		return fmt.Errorf("wf: spec has no modules")
	}
	s.byName = make(map[string]ModuleID, len(s.Modules))
	for i, m := range s.Modules {
		if m.Name == "" {
			return fmt.Errorf("wf: module %d has empty name", i)
		}
		if _, dup := s.byName[m.Name]; dup {
			return fmt.Errorf("wf: duplicate module name %q", m.Name)
		}
		s.byName[m.Name] = ModuleID(i)
	}
	if s.Start < 0 || int(s.Start) >= len(s.Modules) {
		return fmt.Errorf("wf: start module id %d out of range", s.Start)
	}

	s.prodsOf = make([][]int, len(s.Modules))
	for k, p := range s.Prods {
		if p.LHS < 0 || int(p.LHS) >= len(s.Modules) {
			return fmt.Errorf("wf: production %d: lhs id %d out of range", k, p.LHS)
		}
		if !s.Modules[p.LHS].Composite {
			return fmt.Errorf("wf: production %d: lhs %q is atomic", k, s.Name(p.LHS))
		}
		s.prodsOf[p.LHS] = append(s.prodsOf[p.LHS], k)
	}
	for i, m := range s.Modules {
		if m.Composite && len(s.prodsOf[i]) == 0 {
			return fmt.Errorf("wf: composite module %q has no production", m.Name)
		}
	}

	s.bodySrc = make([]int, len(s.Prods))
	s.bodySink = make([]int, len(s.Prods))
	s.bodyReach = make([][]bool, len(s.Prods))
	for k := range s.Prods {
		if err := s.validateBody(k); err != nil {
			return err
		}
	}
	s.tagAlpha = map[string]bool{}
	for _, p := range s.Prods {
		for _, e := range p.Body.Edges {
			s.tagAlpha[e.Tag] = true
		}
	}
	return s.checkProductive()
}

// validateBody checks production k's body for well-formedness and computes
// its source, sink and reachability closure. Runs inside New via validate,
// before the Spec is published.
//
//provrpq:mutator
func (s *Spec) validateBody(k int) error {
	body := &s.Prods[k].Body
	n := len(body.Nodes)
	if n == 0 {
		return fmt.Errorf("wf: production %d: empty body", k)
	}
	for i, m := range body.Nodes {
		if m < 0 || int(m) >= len(s.Modules) {
			return fmt.Errorf("wf: production %d: body node %d references unknown module %d", k, i, m)
		}
	}
	indeg := make([]int, n)
	outdeg := make([]int, n)
	seen := make(map[[2]int]map[string]bool)
	for _, e := range body.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("wf: production %d: edge %v out of range", k, e)
		}
		if e.From == e.To {
			return fmt.Errorf("wf: production %d: self-loop on body node %d", k, e.From)
		}
		if e.Tag == "" {
			return fmt.Errorf("wf: production %d: edge (%d,%d) has empty tag", k, e.From, e.To)
		}
		key := [2]int{e.From, e.To}
		if seen[key] == nil {
			seen[key] = map[string]bool{}
		}
		if seen[key][e.Tag] {
			return fmt.Errorf("wf: production %d: duplicate edge (%d,%d,%q)", k, e.From, e.To, e.Tag)
		}
		seen[key][e.Tag] = true
		outdeg[e.From]++
		indeg[e.To]++
	}

	// Acyclicity via Kahn's algorithm.
	adj := make([][]int, n)
	for _, e := range body.Edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	deg := append([]int(nil), indeg...)
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if deg[i] == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, w := range adj[v] {
			deg[w]--
			if deg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if done != n {
		return fmt.Errorf("wf: production %d: body is cyclic", k)
	}

	// Unique source, unique sink.
	src, sink := -1, -1
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			if src >= 0 {
				return fmt.Errorf("wf: production %d: multiple source nodes (%d, %d)", k, src, i)
			}
			src = i
		}
		if outdeg[i] == 0 {
			if sink >= 0 {
				return fmt.Errorf("wf: production %d: multiple sink nodes (%d, %d)", k, sink, i)
			}
			sink = i
		}
	}
	s.bodySrc[k] = src
	s.bodySink[k] = sink

	// Reachability closure, then the "every node on a source-sink path"
	// property follows from unique source/sink in a DAG: every node is
	// reachable from src (else it would be a second source upstream) --
	// not quite: verify explicitly.
	reach := make([]bool, n*n)
	// DFS from each node (bodies are small; O(n*(n+e)) is fine).
	for i := 0; i < n; i++ {
		stack := append([]int(nil), adj[i]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reach[i*n+v] {
				continue
			}
			reach[i*n+v] = true
			stack = append(stack, adj[v]...)
		}
	}
	s.bodyReach[k] = reach
	for i := 0; i < n; i++ {
		if i != src && !reach[src*n+i] {
			return fmt.Errorf("wf: production %d: body node %d unreachable from source %d", k, i, src)
		}
		if i != sink && !reach[i*n+sink] {
			return fmt.Errorf("wf: production %d: body node %d cannot reach sink %d", k, i, sink)
		}
	}
	return nil
}

// checkProductive verifies every composite module can derive a finite,
// all-atomic execution (the CFG-emptiness worklist of Hopcroft/Ullman,
// which Section III-C also adapts for the safety check).
func (s *Spec) checkProductive() error {
	productive := make([]bool, len(s.Modules))
	for i, m := range s.Modules {
		if !m.Composite {
			productive[i] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, p := range s.Prods {
			if productive[p.LHS] {
				continue
			}
			ok := true
			for _, m := range p.Body.Nodes {
				if !productive[m] {
					ok = false
					break
				}
			}
			if ok {
				productive[p.LHS] = true
				changed = true
			}
		}
	}
	for i, m := range s.Modules {
		if !productive[i] {
			return fmt.Errorf("wf: module %q cannot derive any finite execution", m.Name)
		}
	}
	return nil
}
