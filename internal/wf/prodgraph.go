package wf

import "fmt"

// PGEdge is an edge of the production graph P(G): production Prod of module
// From has module To at body position Pos. The pair (Prod, Pos) is the
// paper's (k,i) label on P(G) edges (Section II-B).
type PGEdge struct {
	From ModuleID
	To   ModuleID
	Prod int // production index k
	Pos  int // body node index i within production k
}

// Cycle is one vertex-disjoint cycle of P(G). Modules lists the cycle's
// composite modules in cycle order (Modules[i]'s recursive production
// contains Modules[(i+1)%len]); Edges[i] is the P(G) edge out of Modules[i].
type Cycle struct {
	ID      int
	Modules []ModuleID
	Edges   []PGEdge

	posOf map[ModuleID]int
}

// Len returns the number of modules on the cycle.
func (c *Cycle) Len() int { return len(c.Modules) }

// ModuleAt returns the module at cycle position p (mod Len).
func (c *Cycle) ModuleAt(p int) ModuleID {
	n := len(c.Modules)
	return c.Modules[((p%n)+n)%n]
}

// EdgeAt returns the cycle edge out of the module at cycle position p (mod Len).
func (c *Cycle) EdgeAt(p int) PGEdge {
	n := len(c.Modules)
	return c.Edges[((p%n)+n)%n]
}

// ProdGraph is the production graph P(G) (Definition 5): one vertex per
// module, one edge per (production, body position) pair.
type ProdGraph struct {
	spec    *Spec
	Edges   []PGEdge
	out     [][]int // module -> indices into Edges
	Cycles  []*Cycle
	cycleOf []int // module -> cycle id, or -1
}

func buildProdGraph(s *Spec) *ProdGraph {
	pg := &ProdGraph{spec: s, out: make([][]int, len(s.Modules))}
	for k, p := range s.Prods {
		for i, m := range p.Body.Nodes {
			e := PGEdge{From: p.LHS, To: m, Prod: k, Pos: i}
			pg.out[p.LHS] = append(pg.out[p.LHS], len(pg.Edges))
			pg.Edges = append(pg.Edges, e)
		}
	}
	return pg
}

// checkStrictLinear verifies all cycles of P(G) are vertex-disjoint
// (Definition 6) and records them. The check is equivalent to: every
// non-trivial strongly connected component of P(G) is a simple directed
// cycle (each member has exactly one outgoing and one incoming edge to
// other members, counting parallel edges), and no vertex has more than one
// self-loop. If an SCC had a vertex with two distinct out-edges inside the
// SCC, two distinct cycles would share that vertex.
func (pg *ProdGraph) checkStrictLinear() error {
	s := pg.spec
	n := len(s.Modules)
	comp := pg.sccs()

	// Group vertices by component.
	members := map[int][]ModuleID{}
	for v := 0; v < n; v++ {
		members[comp[v]] = append(members[comp[v]], ModuleID(v))
	}

	pg.cycleOf = make([]int, n)
	for i := range pg.cycleOf {
		pg.cycleOf[i] = -1
	}

	// Deterministic order: by smallest member module id.
	order := make([]int, 0, len(members))
	for c := range members {
		order = append(order, c)
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if members[order[j]][0] < members[order[i]][0] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}

	for _, c := range order {
		ms := members[c]
		inComp := map[ModuleID]bool{}
		for _, m := range ms {
			inComp[m] = true
		}
		// Count internal edges per vertex.
		var internal []PGEdge
		outCount := map[ModuleID]int{}
		inCount := map[ModuleID]int{}
		for _, ei := range edgesFrom(pg, ms) {
			e := pg.Edges[ei]
			if inComp[e.To] {
				internal = append(internal, e)
				outCount[e.From]++
				inCount[e.To]++
			}
		}
		if len(internal) == 0 {
			continue // trivial component, no cycle
		}
		for _, m := range ms {
			if outCount[m] != 1 || inCount[m] != 1 {
				return fmt.Errorf("wf: not strictly linear-recursive: module %q lies on more than one cycle of P(G)", s.Name(m))
			}
		}
		// Walk the unique cycle starting from the smallest module id.
		succ := map[ModuleID]PGEdge{}
		for _, e := range internal {
			succ[e.From] = e
		}
		start := ms[0]
		cy := &Cycle{ID: len(pg.Cycles), posOf: map[ModuleID]int{}}
		for at := start; ; {
			cy.posOf[at] = len(cy.Modules)
			cy.Modules = append(cy.Modules, at)
			e := succ[at]
			cy.Edges = append(cy.Edges, e)
			at = e.To
			if at == start {
				break
			}
		}
		if len(cy.Modules) != len(ms) {
			return fmt.Errorf("wf: not strictly linear-recursive: component of %q is not a simple cycle", s.Name(start))
		}
		for _, m := range cy.Modules {
			pg.cycleOf[m] = cy.ID
		}
		pg.Cycles = append(pg.Cycles, cy)
	}
	return nil
}

func edgesFrom(pg *ProdGraph, ms []ModuleID) []int {
	var out []int
	for _, m := range ms {
		out = append(out, pg.out[m]...)
	}
	return out
}

// sccs computes strongly connected components with Tarjan's algorithm,
// returning the component id per module. Iterative to avoid deep stacks on
// large synthetic grammars.
func (pg *ProdGraph) sccs() []int {
	n := len(pg.spec.Modules)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	next := 0
	ncomp := 0

	type frame struct {
		v  int
		ei int
	}
	for root := 0; root < n; root++ {
		if index[root] >= 0 {
			continue
		}
		frames := []frame{{v: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < len(pg.out[v]) {
				e := pg.Edges[pg.out[v][f.ei]]
				f.ei++
				w := int(e.To)
				if index[w] < 0 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}
