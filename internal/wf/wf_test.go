package wf

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestPaperSpecValid(t *testing.T) {
	s := PaperSpec()
	if got := s.Size(); got != (1+4)+(1+3)+(1+2)+(1+2) {
		t.Errorf("Size() = %d, want 15", got)
	}
	if len(s.Prods) != 4 {
		t.Fatalf("len(Prods) = %d, want 4", len(s.Prods))
	}
	a, ok := s.ModuleByName("A")
	if !ok {
		t.Fatal("module A not found")
	}
	if !s.IsComposite(a) {
		t.Error("A should be composite")
	}
	if !s.IsRecursive(a) {
		t.Error("A should be recursive")
	}
	sMod, _ := s.ModuleByName("S")
	if s.IsRecursive(sMod) {
		t.Error("S should not be recursive")
	}
	if s.Start != sMod {
		t.Errorf("Start = %d, want %d", s.Start, sMod)
	}
}

func TestPaperSpecCycle(t *testing.T) {
	s := PaperSpec()
	cycles := s.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("len(Cycles) = %d, want 1", len(cycles))
	}
	c := cycles[0]
	if c.Len() != 1 {
		t.Fatalf("cycle length = %d, want 1", c.Len())
	}
	a, _ := s.ModuleByName("A")
	if c.Modules[0] != a {
		t.Errorf("cycle module = %q, want A", s.Name(c.Modules[0]))
	}
	k, pos := s.RecursiveProd(a)
	if k != 1 {
		t.Errorf("recursive production of A = %d, want 1 (W2)", k)
	}
	if pos != 1 {
		t.Errorf("cycle position = %d, want 1 (middle of a->A->d)", pos)
	}
}

func TestBodyReach(t *testing.T) {
	s := PaperSpec()
	// W1: c(0) -> A(1) -> B(2) -> b(3)
	cases := []struct {
		k, i, j int
		want    bool
	}{
		{0, 0, 1, true},
		{0, 0, 3, true},
		{0, 1, 3, true},
		{0, 3, 0, false},
		{0, 1, 1, false},
		{1, 0, 2, true}, // a -> d via A
		{1, 2, 0, false},
	}
	for _, c := range cases {
		if got := s.BodyReach(c.k, c.i, c.j); got != c.want {
			t.Errorf("BodyReach(%d,%d,%d) = %v, want %v", c.k, c.i, c.j, got, c.want)
		}
	}
	if s.Source(0) != 0 || s.Sink(0) != 3 {
		t.Errorf("W1 source/sink = %d/%d, want 0/3", s.Source(0), s.Sink(0))
	}
}

func TestNotStrictlyLinear(t *testing.T) {
	// Fig. 5: two cycles sharing S (S -> a S, S -> b S c collapsed to two
	// self-referencing productions => two parallel P(G) self-edges on S).
	_, err := NewBuilder().
		Start("S").
		Atomic("a", "b", "c").
		Chain("S", "a", "S").
		Chain("S", "b", "S").
		Chain("S", "c").
		Build()
	if err == nil || !strings.Contains(err.Error(), "strictly linear") {
		t.Errorf("expected strict-linearity error, got %v", err)
	}
}

func TestTwoOccurrencesOfRecursiveModuleRejected(t *testing.T) {
	// A body containing the cycle module twice creates parallel P(G) edges
	// and hence two non-disjoint cycles.
	_, err := NewBuilder().
		Start("S").
		Atomic("a").
		Chain("S", "a", "S", "S").
		Chain("S", "a").
		Build()
	if err == nil || !strings.Contains(err.Error(), "strictly linear") {
		t.Errorf("expected strict-linearity error, got %v", err)
	}
}

func TestMultiModuleCycleAccepted(t *testing.T) {
	s, err := NewBuilder().
		Start("S").
		Atomic("x", "y", "z").
		Chain("S", "x", "A").
		Chain("A", "x", "B", "y").
		Chain("A", "z").
		Chain("B", "y", "A", "x").
		Chain("B", "z", "z").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(s.Cycles()) != 1 {
		t.Fatalf("len(Cycles) = %d, want 1", len(s.Cycles()))
	}
	c := s.Cycles()[0]
	if c.Len() != 2 {
		t.Errorf("cycle length = %d, want 2 (A <-> B)", c.Len())
	}
	a, _ := s.ModuleByName("A")
	b, _ := s.ModuleByName("B")
	if !s.IsRecursive(a) || !s.IsRecursive(b) {
		t.Error("A and B should both be recursive")
	}
	// Cycle order must follow P(G) edges.
	_, posA := s.CycleOf(a)
	if c.ModuleAt(posA+1) != b {
		t.Error("successor of A on the cycle should be B")
	}
}

func TestIntersectingCyclesRejected(t *testing.T) {
	// A -> B -> A and A -> C -> A share vertex A.
	_, err := NewBuilder().
		Start("A").
		Atomic("t").
		Chain("A", "t", "B").
		Chain("A", "t", "C").
		Chain("A", "t").
		Chain("B", "t", "A").
		Chain("B", "t").
		Chain("C", "t", "A").
		Chain("C", "t").
		Build()
	if err == nil || !strings.Contains(err.Error(), "strictly linear") {
		t.Errorf("expected strict-linearity error, got %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name    string
		build   func() (*Spec, error)
		wantSub string
	}{
		{
			"cyclic body",
			func() (*Spec, error) {
				return NewBuilder().Start("S").Atomic("a", "b").
					Prod("S", []string{"a", "b"}, []BodyEdge{{0, 1, "x"}, {1, 0, "y"}}).Build()
			},
			"cyclic",
		},
		{
			"two sources",
			func() (*Spec, error) {
				return NewBuilder().Start("S").Atomic("a", "b", "c").
					Prod("S", []string{"a", "b", "c"}, []BodyEdge{{0, 2, "x"}, {1, 2, "y"}}).Build()
			},
			"multiple source",
		},
		{
			"two sinks",
			func() (*Spec, error) {
				return NewBuilder().Start("S").Atomic("a", "b", "c").
					Prod("S", []string{"a", "b", "c"}, []BodyEdge{{0, 1, "x"}, {0, 2, "y"}}).Build()
			},
			"multiple sink",
		},
		{
			"self loop",
			func() (*Spec, error) {
				return NewBuilder().Start("S").Atomic("a").
					Prod("S", []string{"a"}, []BodyEdge{{0, 0, "x"}}).Build()
			},
			"self-loop",
		},
		{
			"empty body",
			func() (*Spec, error) {
				return NewBuilder().Start("S").Prod("S", nil, nil).Build()
			},
			"empty body",
		},
		{
			"unproductive",
			func() (*Spec, error) {
				// S -> a A, A -> a A only: A never terminates.
				return NewBuilder().Start("S").Atomic("a").
					Chain("S", "a", "A").
					Chain("A", "a", "A").
					Build()
			},
			"finite execution",
		},
		{
			"composite without production",
			func() (*Spec, error) {
				return NewBuilder().Start("S").Composite("A").Atomic("a").
					Chain("S", "a").Build()
			},
			"no production",
		},
		{
			"duplicate edge",
			func() (*Spec, error) {
				return NewBuilder().Start("S").Atomic("a", "b").
					Prod("S", []string{"a", "b"}, []BodyEdge{{0, 1, "x"}, {0, 1, "x"}}).Build()
			},
			"duplicate edge",
		},
		{
			"disconnected node",
			func() (*Spec, error) {
				// c has no edges at all: it is a second source (and sink).
				return NewBuilder().Start("S").Atomic("a", "b", "c").
					Prod("S", []string{"a", "b", "c"}, []BodyEdge{{0, 1, "x"}}).Build()
			},
			"", // any error acceptable; structure is ill-formed some way
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.build()
			if err == nil {
				t.Fatal("expected error, got nil")
			}
			if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestParallelEdgesWithDistinctTags(t *testing.T) {
	s, err := NewBuilder().Start("S").Atomic("a", "b").
		Prod("S", []string{"a", "b"}, []BodyEdge{{0, 1, "x"}, {0, 1, "y"}}).Build()
	if err != nil {
		t.Fatalf("parallel edges with distinct tags should be valid: %v", err)
	}
	if len(s.Prods[0].Body.Edges) != 2 {
		t.Error("expected both edges retained")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := PaperSpec()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Size() != s.Size() || len(back.Prods) != len(s.Prods) || back.Start != s.Start {
		t.Error("round-trip changed the spec")
	}
	if len(back.Cycles()) != 1 {
		t.Error("derived structures not rebuilt on unmarshal")
	}
	a, _ := back.ModuleByName("A")
	if !back.IsRecursive(a) {
		t.Error("recursion lost in round trip")
	}
}

func TestTags(t *testing.T) {
	s := PaperSpec()
	tags := s.Tags()
	// Chain tags edges by head-module name; chain sources (a, c, e) never
	// appear as tags in PaperSpec.
	want := []string{"A", "B", "b", "d", "e"}
	if len(tags) != len(want) {
		t.Fatalf("Tags() = %v, want %v", tags, want)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("Tags() = %v, want %v", tags, want)
		}
	}
}

func TestForkSpec(t *testing.T) {
	s := ForkSpec()
	m, _ := s.ModuleByName("M")
	if !s.IsRecursive(m) {
		t.Error("M should be recursive")
	}
	if len(s.Cycles()) != 1 {
		t.Errorf("len(Cycles) = %d, want 1", len(s.Cycles()))
	}
}

func TestPGEdgeLabels(t *testing.T) {
	s := PaperSpec()
	pg := s.ProdGraph()
	// Every body position appears exactly once as a P(G) edge.
	count := map[[2]int]int{}
	for _, e := range pg.Edges {
		count[[2]int{e.Prod, e.Pos}]++
	}
	for k, p := range s.Prods {
		for i := range p.Body.Nodes {
			if count[[2]int{k, i}] != 1 {
				t.Errorf("P(G) edge for (%d,%d) occurs %d times", k, i, count[[2]int{k, i}])
			}
		}
	}
}
