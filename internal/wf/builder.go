package wf

import "fmt"

// Builder constructs a Spec incrementally using module names, which is far
// more convenient than raw ids for examples, tests and generators. Names are
// registered on first use; Atomic/Composite declare the kind explicitly and
// Prod marks its left-hand side composite.
type Builder struct {
	modules []Module
	byName  map[string]ModuleID
	start   string
	prods   []Production
	err     error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{byName: map[string]ModuleID{}}
}

// Atomic declares one or more atomic modules.
func (b *Builder) Atomic(names ...string) *Builder {
	for _, n := range names {
		b.module(n, false)
	}
	return b
}

// Composite declares one or more composite modules.
func (b *Builder) Composite(names ...string) *Builder {
	for _, n := range names {
		id := b.module(n, true)
		if id >= 0 {
			b.modules[id].Composite = true
		}
	}
	return b
}

// Start sets the start module.
func (b *Builder) Start(name string) *Builder {
	b.start = name
	b.module(name, true)
	return b
}

// BodyEdge describes one body edge by node positions and tag.
type BodyEdge struct {
	From, To int
	Tag      string
}

// Prod appends a production lhs -> body, where nodes lists the body modules
// by name (position in this list is the body node index used by edges).
func (b *Builder) Prod(lhs string, nodes []string, edges []BodyEdge) *Builder {
	l := b.module(lhs, true)
	if l < 0 {
		return b
	}
	b.modules[l].Composite = true
	body := Body{}
	for _, n := range nodes {
		id := b.module(n, false)
		if id < 0 {
			return b
		}
		body.Nodes = append(body.Nodes, id)
	}
	for _, e := range edges {
		body.Edges = append(body.Edges, Edge{From: e.From, To: e.To, Tag: e.Tag})
	}
	b.prods = append(b.prods, Production{LHS: l, Body: body})
	return b
}

// Chain appends a production whose body is the linear chain
// nodes[0] -> nodes[1] -> ... with each edge tagged by the name of the
// module at its head (the convention the paper's examples use).
func (b *Builder) Chain(lhs string, nodes ...string) *Builder {
	var edges []BodyEdge
	for i := 0; i+1 < len(nodes); i++ {
		edges = append(edges, BodyEdge{From: i, To: i + 1, Tag: nodes[i+1]})
	}
	return b.Prod(lhs, nodes, edges)
}

func (b *Builder) module(name string, composite bool) ModuleID {
	if b.err != nil {
		return -1
	}
	if name == "" {
		b.err = fmt.Errorf("wf: empty module name")
		return -1
	}
	if id, ok := b.byName[name]; ok {
		return id
	}
	id := ModuleID(len(b.modules))
	b.modules = append(b.modules, Module{Name: name, Composite: composite})
	b.byName[name] = id
	return id
}

// Build validates and returns the Spec.
func (b *Builder) Build() (*Spec, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.start == "" {
		return nil, fmt.Errorf("wf: builder: no start module set")
	}
	return New(b.modules, b.byName[b.start], b.prods)
}

// MustBuild is Build but panics on error; intended for tests and fixtures.
func (b *Builder) MustBuild() *Spec {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// PaperSpec returns the running example of the paper (Fig. 2a): composite
// modules S, A, B with productions
//
//	W1: S -> c -> A -> B -> b
//	W2: A -> a -> A -> d   (recursive)
//	W3: A -> e -> e        (base case)
//	W4: B -> b -> b
//
// Edge tags equal the head module's name, as in the paper's examples.
func PaperSpec() *Spec {
	return NewBuilder().
		Start("S").
		Composite("S", "A", "B").
		Atomic("a", "b", "c", "d", "e").
		Chain("S", "c", "A", "B", "b").
		Chain("A", "a", "A", "d").
		Chain("A", "e", "e").
		Chain("B", "b", "b").
		MustBuild()
}

// ForkSpec returns the fork pattern of Fig. 14: a fork distributor "a" is
// fired recursively, producing runs whose distributors form an a-tagged
// chain a:1 -a-> a:2 -a-> ... (Fig. 14b), terminated by the aggregator "b".
// Every execution of M spells a^j on its input-output path, which makes the
// Kleene-star query a* safe — exactly the workload of Fig. 13g/h.
func ForkSpec() *Spec {
	return NewBuilder().
		Start("S").
		Composite("S", "M").
		Atomic("a", "b").
		Prod("S", []string{"M", "b"}, []BodyEdge{{0, 1, "b"}}).
		Prod("M", []string{"a", "M"}, []BodyEdge{{0, 1, "a"}}).
		Prod("M", []string{"a"}, nil).
		MustBuild()
}
