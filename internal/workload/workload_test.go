package workload

import (
	"math/rand"
	"testing"

	"provrpq/internal/automata"
	"provrpq/internal/core"
	"provrpq/internal/derive"
	"provrpq/internal/index"
)

func TestBioAIDStatistics(t *testing.T) {
	d := BioAID()
	s := d.Spec
	if got := len(s.Modules); got != 112 {
		t.Errorf("modules = %d, want 112", got)
	}
	composite := 0
	for i := range s.Modules {
		if s.Modules[i].Composite {
			composite++
		}
	}
	if composite != 16 {
		t.Errorf("composite modules = %d, want 16", composite)
	}
	if got := len(s.Prods); got != 23 {
		t.Errorf("productions = %d, want 23", got)
	}
	recProds := 0
	for _, c := range s.Cycles() {
		recProds += len(c.Edges)
	}
	if recProds != 7 {
		t.Errorf("recursive productions = %d, want 7", recProds)
	}
	if got := s.Size(); got != 166 {
		t.Errorf("size = %d, want 166", got)
	}
}

func TestQBLastStatistics(t *testing.T) {
	d := QBLast()
	s := d.Spec
	if got := len(s.Modules); got != 77 {
		t.Errorf("modules = %d, want 77", got)
	}
	composite := 0
	for i := range s.Modules {
		if s.Modules[i].Composite {
			composite++
		}
	}
	if composite != 11 {
		t.Errorf("composite modules = %d, want 11", composite)
	}
	if got := len(s.Prods); got != 15 {
		t.Errorf("productions = %d, want 15", got)
	}
	recProds := 0
	for _, c := range s.Cycles() {
		recProds += len(c.Edges)
	}
	if recProds != 5 {
		t.Errorf("recursive productions = %d, want 5", recProds)
	}
	if got := s.Size(); got != 105 {
		t.Errorf("size = %d, want 105", got)
	}
	// QBLast's mutual recursion is a 2-cycle.
	has2 := false
	for _, c := range s.Cycles() {
		if c.Len() == 2 {
			has2 = true
		}
	}
	if !has2 {
		t.Error("expected the A<->B two-module cycle")
	}
}

func TestStarQuerySafe(t *testing.T) {
	for _, d := range []*Dataset{BioAID(), QBLast()} {
		env, err := core.Compile(d.Spec, automata.MustParse(d.StarQuery()))
		if err != nil {
			t.Fatal(err)
		}
		if !env.Safe() {
			t.Errorf("%s: %s should be safe (Fig. 13g/h uses RPL on it)", d.Name, d.StarQuery())
		}
	}
}

func TestSafeIFQsAreSafe(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, d := range []*Dataset{BioAID(), QBLast()} {
		for k := 0; k <= 10; k++ {
			for trial := 0; trial < 6; trial++ {
				for _, low := range []bool{false, true} {
					q := d.SafeIFQ(r, k, low)
					env, err := core.Compile(d.Spec, automata.MustParse(q))
					if err != nil {
						t.Fatal(err)
					}
					if !env.Safe() {
						t.Errorf("%s: SafeIFQ %q (k=%d, low=%v) is not safe", d.Name, q, k, low)
					}
				}
			}
		}
	}
}

func TestSelectivityContrast(t *testing.T) {
	d := BioAID()
	run, err := derive.Derive(d.Spec, derive.Options{Seed: 3, TargetEdges: 2000})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(run)
	// High-selectivity tags occur a bounded number of times; low-selectivity
	// tags occur once per loop iteration.
	for _, tag := range d.HighSelTags {
		if c := ix.Count(tag); c > 10 {
			t.Errorf("high-sel tag %s occurs %d times", tag, c)
		}
	}
	lowTotal := 0
	for _, tag := range d.LowSelTags {
		lowTotal += ix.Count(tag)
	}
	if lowTotal < 10*len(d.LowSelTags)/2 {
		t.Errorf("low-sel tags occur too rarely: %d total over %d tags", lowTotal, len(d.LowSelTags))
	}
}

func TestForkWorkload(t *testing.T) {
	for _, d := range []*Dataset{BioAID(), QBLast()} {
		run, err := derive.Derive(d.Spec, derive.Options{
			Seed: 2, TargetEdges: 1000, FavorModules: d.ForkFavor, FavorCaps: d.ForkCaps,
		})
		if err != nil {
			t.Fatal(err)
		}
		ix := index.Build(run)
		if c := ix.Count(d.ForkTag); c < 100 {
			t.Errorf("%s: fork tag %s occurs only %d times under the fork workload", d.Name, d.ForkTag, c)
		}
		// The run must hold MANY fork chains (Fig. 14b), not one giant one:
		// each fl edge terminates one chain.
		if c := ix.Count("fl"); c < 5 {
			t.Errorf("%s: only %d fork chains", d.Name, c)
		}
		// Chains are capped, bounding the a* result size.
		if cap := d.ForkCaps[d.ForkModule]; cap > 0 {
			if got := ix.Count(d.ForkTag) / maxi(1, ix.Count("fl")); got > cap {
				t.Errorf("%s: average chain length %d exceeds cap %d", d.Name, got, cap)
			}
		}
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestRandomQueriesMixSafeAndUnsafe(t *testing.T) {
	d := BioAID()
	r := rand.New(rand.NewSource(7))
	safe, unsafe := 0, 0
	for i := 0; i < 60; i++ {
		q := d.RandomQuery(r, 3)
		node, err := automata.Parse(q)
		if err != nil {
			t.Fatalf("generated query %q does not parse: %v", q, err)
		}
		env, err := core.Compile(d.Spec, node)
		if err != nil {
			// Oversized DFAs can occur for pathological random queries.
			continue
		}
		if env.Safe() {
			safe++
		} else {
			unsafe++
		}
	}
	if safe == 0 || unsafe == 0 {
		t.Errorf("random queries should mix verdicts: %d safe, %d unsafe", safe, unsafe)
	}
	// The paper observes most random queries are safe.
	if safe <= unsafe {
		t.Logf("note: %d safe vs %d unsafe (paper observed a safe majority)", safe, unsafe)
	}
}

func TestSyntheticSizes(t *testing.T) {
	for _, size := range []int{400, 800, 1200} {
		d := Synthetic(size, 1)
		got := d.Spec.Size()
		if got < size-60 || got > size+60 {
			t.Errorf("Synthetic(%d) size = %d", size, got)
		}
		// IFQs over its pipeline tags must be safe (the Fig. 13a workload).
		r := rand.New(rand.NewSource(1))
		q := d.SafeIFQ(r, 3, true)
		env, err := core.Compile(d.Spec, automata.MustParse(q))
		if err != nil {
			t.Fatal(err)
		}
		if !env.Safe() {
			t.Errorf("Synthetic(%d): %q should be safe", size, q)
		}
	}
}

func TestIFQRendering(t *testing.T) {
	if got := IFQ(); got != "_*" {
		t.Errorf("IFQ() = %q", got)
	}
	if got := IFQ("x", "y"); got != "_*.x._*.y._*" {
		t.Errorf("IFQ(x,y) = %q", got)
	}
}
