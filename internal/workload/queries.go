package workload

import (
	"math/rand"
	"strings"

	"provrpq/internal/automata"
)

// IFQ renders the infrequent-symbol query _* a1 _* a2 ... ak _* (Section
// V-A, query class 1). k = 0 yields plain reachability.
func IFQ(syms ...string) string {
	var b strings.Builder
	b.WriteString("_*")
	for _, s := range syms {
		b.WriteString(".")
		b.WriteString(s)
		b.WriteString("._*")
	}
	return b.String()
}

// SafeIFQ draws a k-symbol IFQ that is safe for the dataset: symbols are an
// increasing subsequence of one path-coherent tag group (so the query's
// symbol order matches a real path and repeated loop iterations saturate
// the query states consistently). lowSel selects the per-iteration pools
// (many matches); otherwise the query is anchored at its group's first and
// last tags, which have almost no upstream/downstream nodes, making it
// highly selective (Fig. 13e/f's under-ten-pairs queries).
func (d *Dataset) SafeIFQ(r *rand.Rand, k int, lowSel bool) string {
	groups := d.HighSelGroups
	if lowSel {
		groups = d.LowSelGroups
	}
	pool := groups[r.Intn(len(groups))]
	if k > len(pool) {
		k = len(pool)
	}
	var syms []string
	if !lowSel && k >= 2 {
		// Anchor both ends; fill the middle with an increasing subsequence.
		middle := pool[1 : len(pool)-1]
		syms = append(syms, pool[0])
		syms = append(syms, orderedSample(r, middle, k-2)...)
		syms = append(syms, pool[len(pool)-1])
	} else {
		syms = orderedSample(r, pool, k)
	}
	return IFQ(syms...)
}

// orderedSample picks k elements of pool preserving their order.
func orderedSample(r *rand.Rand, pool []string, k int) []string {
	if k > len(pool) {
		k = len(pool)
	}
	idx := r.Perm(len(pool))[:k]
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if idx[j] < idx[i] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	out := make([]string, k)
	for i, p := range idx {
		out[i] = pool[p]
	}
	return out
}

// StarQuery returns the Kleene-star workload a* over the fork tag
// (Section V-A, query class 2; Fig. 13g/h).
func (d *Dataset) StarQuery() string { return d.ForkTag + "*" }

// RandomQuery generates a query by randomly combining edge tags with
// concatenation, alternation and Kleene star (Section V-E). The pool mixes
// pipeline tags, top-level tags and recursion tags (loop next-edges, the
// fork tag), so both safe and unsafe queries arise.
func (d *Dataset) RandomQuery(r *rand.Rand, depth int) string {
	pool := d.randomPool()
	return d.randomNode(r, pool, depth).String()
}

func (d *Dataset) randomPool() []string {
	pool := append([]string{}, d.HighSelTags...)
	pool = append(pool, d.LowSelTags...)
	for _, t := range d.Spec.Tags() {
		if strings.HasPrefix(t, "next") || t == d.ForkTag {
			pool = append(pool, t)
		}
	}
	return pool
}

func (d *Dataset) randomNode(r *rand.Rand, pool []string, depth int) *automata.Node {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(5) {
		case 0:
			return automata.Wild()
		default:
			return automata.Sym(pool[r.Intn(len(pool))])
		}
	}
	switch r.Intn(7) {
	case 0, 1:
		return automata.Concat(d.randomNode(r, pool, depth-1), d.randomNode(r, pool, depth-1))
	case 2:
		// An IFQ fragment, the paper's main ingredient.
		k := 1 + r.Intn(3)
		syms := make([]*automata.Node, 0, 2*k+1)
		syms = append(syms, automata.Star(automata.Wild()))
		for i := 0; i < k; i++ {
			syms = append(syms, automata.Sym(pool[r.Intn(len(pool))]), automata.Star(automata.Wild()))
		}
		return automata.Concat(syms...)
	case 3:
		return automata.Alt(d.randomNode(r, pool, depth-1), d.randomNode(r, pool, depth-1))
	case 4:
		return automata.Star(automata.Sym(pool[r.Intn(len(pool))]))
	case 5:
		return automata.Plus(d.randomNode(r, pool, depth-1))
	default:
		return automata.Concat(
			d.randomNode(r, pool, depth-1),
			automata.Star(automata.Wild()),
			d.randomNode(r, pool, depth-1),
		)
	}
}
