// Package workload provides the paper's evaluation datasets and query
// generators (Section V-A).
//
// myExperiment's BioAID and QBLast workflow specifications are not
// redistributable here, so BioAID() and QBLast() synthesize specifications
// that match the statistics the paper publishes — module/production counts,
// recursive production counts, grammar size, and the deep-vs-branchy
// contrast — using realistic workflow idioms: nested sub-workflow chains,
// loop recursions over fixed pipelines, fork recursions (Fig. 14) and, for
// QBLast, a two-module mutual recursion. The substitution preserves the
// evaluated behaviour because every algorithm in this repository consumes
// only the grammar structure.
package workload

import (
	"fmt"

	"provrpq/internal/wf"
)

// Dataset bundles a specification with the tag pools the query generators
// draw from.
type Dataset struct {
	Name string
	Spec *wf.Spec
	// ForkModule is the fork recursion itself; ForkFavor lists the modules
	// the Fig. 13g/h workload extends (the fork plus the loop that keeps
	// starting new fork chains) and ForkCaps bounds each fork chain so a
	// run holds many moderate chains rather than one enormous one.
	ForkModule string
	ForkFavor  []string
	ForkCaps   map[string]int
	// ForkTag is the tag on the fork chain's edges (the a of a*).
	ForkTag string
	// HighSelGroups are tag sequences along one top-level path, in path
	// order, whose first tag has almost no upstream nodes and whose last
	// has almost no downstream nodes: IFQs anchored at both ends match
	// under ten pairs (the "highly selective" queries of Fig. 13e/f).
	HighSelGroups [][]string
	// LowSelGroups are per-branch pipeline tag sequences in path order;
	// the tags occur once per loop iteration, so in-order IFQs over one
	// group are safe and match many pairs (the "lowly selective" queries).
	LowSelGroups [][]string
	// HighSelTags and LowSelTags are the flattened groups (for statistics).
	HighSelTags []string
	LowSelTags  []string
}

func flatten(groups [][]string) []string {
	var out []string
	seen := map[string]bool{}
	for _, g := range groups {
		for _, t := range g {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}

// pipeline appends a single-production composite whose body is a chain of
// atoms; tags equal head-atom names. uniq atoms get the given name prefix;
// the first `repeats` atoms are appended again at the end (re-validation
// steps), so the body has uniq+repeats nodes using uniq distinct atoms.
func pipeline(b *wf.Builder, name, prefix string, uniq, repeats int) []string {
	atoms := make([]string, uniq)
	for i := range atoms {
		atoms[i] = fmt.Sprintf("%s_%d", prefix, i+1)
	}
	nodes := append([]string{}, atoms...)
	for i := 0; i < repeats; i++ {
		nodes = append(nodes, atoms[i])
	}
	b.Chain(name, nodes...)
	// Edge tags are head-atom names: atoms[1:] plus the repeated heads.
	var tags []string
	tags = append(tags, atoms[1:]...)
	for i := 0; i < repeats; i++ {
		tags = append(tags, atoms[i])
	}
	return tags
}

// loop appends a loop recursion: rec body pipe -> self (tagged nextTag),
// base body just the pipe. Every iteration executes the pipeline once, so
// pipeline tags occur once per iteration.
func loop(b *wf.Builder, name, pipe, nextTag string) {
	b.Prod(name, []string{pipe, name}, []wf.BodyEdge{{From: 0, To: 1, Tag: nextTag}})
	b.Prod(name, []string{pipe}, nil)
}

// fork appends the Fig. 14 fork recursion: distributors chained by forkTag.
func fork(b *wf.Builder, name, dist, forkTag string) {
	b.Prod(name, []string{dist, name}, []wf.BodyEdge{{From: 0, To: 1, Tag: forkTag}})
	b.Prod(name, []string{dist}, nil)
}

// forkLoop appends the loop that repeatedly starts fresh fork chains. Both
// bodies route the fork's output over an "fl"-tagged edge (to the next
// chain, or to the stop marker), so every execution of the loop spells
// a^j fl ... — keeping the Kleene-star query a* safe.
func forkLoop(b *wf.Builder, name, forkName, stop string) {
	b.Prod(name, []string{forkName, name}, []wf.BodyEdge{{From: 0, To: 1, Tag: "fl"}})
	b.Prod(name, []string{forkName, stop}, []wf.BodyEdge{{From: 0, To: 1, Tag: "fl"}})
}

// BioAID returns the deep dataset: 112 modules (16 composite), 23
// productions (7 recursive), grammar size 166 — the statistics the paper
// reports for the myExperiment BioAID workflow.
func BioAID() *Dataset {
	b := wf.NewBuilder().Start("S")
	b.Composite("S", "C1", "C2", "F", "FL", "L1", "L2", "L3", "L4", "L5",
		"P1", "P2", "P3", "P4", "P5", "P6")

	// Pipelines P1-P5 sit under loop recursions; P6 is called directly from
	// C2. uniq/repeat splits make the totals match the published statistics
	// exactly (asserted in tests): 87 unique pipeline atoms, 105 pipeline
	// body nodes.
	var lowSel []string
	uniq := []int{14, 14, 14, 15, 15, 14}
	reps := []int{4, 4, 4, 2, 2, 2}
	order := []int{1, 3, 4, 5, 6, 2} // execution order of pipelines along S
	tagsOf := map[int][]string{}
	for i := 0; i < 6; i++ {
		tagsOf[i+1] = pipeline(b, fmt.Sprintf("P%d", i+1), fmt.Sprintf("p%d", i+1), uniq[i], reps[i])
	}
	for _, li := range order {
		lowSel = append(lowSel, tagsOf[li]...)
	}
	for i := 1; i <= 5; i++ {
		loop(b, fmt.Sprintf("L%d", i), fmt.Sprintf("P%d", i), fmt.Sprintf("next%d", i))
	}
	fork(b, "F", "a", "a")
	// The fork loop re-enters the fork, so runs can hold many fork chains
	// (Fig. 14b): each FL iteration starts a fresh chain.
	forkLoop(b, "FL", "F", "fstop")

	// Deep skeleton: S chains through L1, C1, the fork loop, C2 and L2; C1
	// nests two loops, C2 nests a loop and the direct pipeline P6.
	b.Chain("S", "s_head", "L1", "C1", "FL", "C2", "L2", "s_tail")
	b.Chain("C1", "c1_in", "L3", "c1_mid", "L4", "c1_out")
	b.Chain("C2", "c2_in", "L5", "c2_mid", "P6", "c2_out")

	highGroups := [][]string{
		// The S chain, in path order: "L1" sits on the very first edge
		// (only s_head upstream) and "s_tail" on the very last.
		{"L1", "C1", "FL", "C2", "L2", "s_tail"},
	}
	lowGroups := [][]string{lowSel} // one serial branch: all pipelines chain
	return &Dataset{
		Name:          "BioAID",
		Spec:          b.MustBuild(),
		ForkModule:    "F",
		ForkFavor:     []string{"F", "FL"},
		ForkCaps:      map[string]int{"F": 150},
		ForkTag:       "a",
		HighSelGroups: highGroups,
		LowSelGroups:  lowGroups,
		HighSelTags:   flatten(highGroups),
		LowSelTags:    flatten(lowGroups),
	}
}

// QBLast returns the branchy dataset: 77 modules (11 composite), 15
// productions (5 recursive), grammar size 105.
func QBLast() *Dataset {
	b := wf.NewBuilder().Start("S")
	b.Composite("S", "C1", "C2", "C3", "F", "FL", "L1", "A", "B", "P1", "P2")

	p1Tags := pipeline(b, "P1", "q1", 24, 4)
	p2Tags := pipeline(b, "P2", "q2", 22, 3)
	loop(b, "L1", "P1", "next1")
	fork(b, "F", "a", "a")
	forkLoop(b, "FL", "F", "fstop")

	// Mutual recursion A <-> B (a 2-cycle of P(G)); only B has a base case.
	b.Chain("A", "a1", "B", "a2")
	b.Chain("B", "b1", "A", "b2")
	b.Chain("B", "b3", "b4")

	// Branchy skeleton: diamonds instead of chains.
	b.Prod("S", []string{"src", "C1", "C2", "C3", "snk"}, []wf.BodyEdge{
		{From: 0, To: 1, Tag: "C1"}, {From: 0, To: 2, Tag: "C2"}, {From: 0, To: 3, Tag: "C3"},
		{From: 1, To: 4, Tag: "j1"}, {From: 2, To: 4, Tag: "j2"}, {From: 3, To: 4, Tag: "j3"},
	})
	b.Prod("C1", []string{"c1s", "L1", "FL", "c1t"}, []wf.BodyEdge{
		{From: 0, To: 1, Tag: "L1"}, {From: 0, To: 2, Tag: "FL"},
		{From: 1, To: 3, Tag: "m1"}, {From: 2, To: 3, Tag: "m2"},
	})
	b.Prod("C2", []string{"c2s", "P2", "A", "c2t"}, []wf.BodyEdge{
		{From: 0, To: 1, Tag: "P2"}, {From: 0, To: 2, Tag: "A"},
		{From: 1, To: 3, Tag: "m3"}, {From: 2, To: 3, Tag: "m4"},
	})
	b.Prod("C3", []string{"c3s", "x1", "x2", "x3", "x4", "c3t"}, []wf.BodyEdge{
		{From: 0, To: 1, Tag: "x1"}, {From: 0, To: 2, Tag: "x2"},
		{From: 1, To: 3, Tag: "x3"}, {From: 2, To: 4, Tag: "x4"},
		{From: 3, To: 5, Tag: "j4"}, {From: 4, To: 5, Tag: "j5"},
	})

	highGroups := [][]string{
		// Each group follows one diamond branch src → Ci → snk: the first
		// tag leaves src, the last enters snk.
		{"C1", "m1", "j1"},
		// "A" is omitted: that tag recurs inside the B recursion, which
		// makes IFQs over it unsafe.
		{"C2", "m4", "j2"},
		{"C2", "P2", "m3", "j2"},
		{"C3", "x1", "x3", "j4"},
		{"C3", "x2", "x4", "j5"},
	}
	lowGroups := [][]string{p1Tags, p2Tags} // parallel branches: keep separate
	return &Dataset{
		Name:          "QBLast",
		Spec:          b.MustBuild(),
		ForkModule:    "F",
		ForkFavor:     []string{"F", "FL"},
		ForkCaps:      map[string]int{"F": 150},
		ForkTag:       "a",
		HighSelGroups: highGroups,
		LowSelGroups:  lowGroups,
		HighSelTags:   flatten(highGroups),
		LowSelTags:    flatten(lowGroups),
	}
}

// Synthetic returns a spec of approximately the requested grammar size
// (Fig. 13a varies 400–1200): a top-level chain of loop-over-pipeline
// blocks, each contributing a fixed size, padded by the final pipeline.
func Synthetic(size int, seed int64) *Dataset {
	const blockSize = 40 // loop (2 prods, 3 nodes) + pipeline (~33 nodes) + S slot
	if size < 60 {
		size = 60
	}
	blocks := (size - 10) / blockSize
	if blocks < 1 {
		blocks = 1
	}
	b := wf.NewBuilder().Start("S")
	var lowSel []string
	sBody := []string{"syn_head"}
	for i := 1; i <= blocks; i++ {
		ln := fmt.Sprintf("SL%d", i)
		pn := fmt.Sprintf("SP%d", i)
		uniq := 30
		if i == blocks {
			// Absorb the rounding remainder in the last pipeline.
			extra := size - 10 - blocks*blockSize
			uniq += extra
			if uniq < 2 {
				uniq = 2
			}
		}
		lowSel = append(lowSel, pipeline(b, pn, fmt.Sprintf("sp%d", i), uniq, 2)...)
		loop(b, ln, pn, fmt.Sprintf("snext%d", i))
		sBody = append(sBody, ln)
	}
	sBody = append(sBody, "syn_tail")
	b.Chain("S", sBody...)
	_ = seed
	highGroups := [][]string{append([]string{}, sBody[1:]...)}
	lowGroups := [][]string{lowSel}
	return &Dataset{
		Name:          fmt.Sprintf("Synthetic%d", size),
		Spec:          b.MustBuild(),
		ForkModule:    "",
		HighSelGroups: highGroups,
		LowSelGroups:  lowGroups,
		HighSelTags:   flatten(highGroups),
		LowSelTags:    flatten(lowGroups),
	}
}
