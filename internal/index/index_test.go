package index

import (
	"testing"

	"provrpq/internal/derive"
	"provrpq/internal/wf"
)

func TestBuildAndLookup(t *testing.T) {
	run, err := derive.Derive(wf.PaperSpec(), derive.Options{Seed: 1, TargetEdges: 120})
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(run)
	if ix.Run() != run {
		t.Error("Run() should return the indexed run")
	}
	// Every edge appears exactly once under its tag.
	total := 0
	for _, tag := range ix.Tags() {
		pairs := ix.Pairs(tag)
		if len(pairs) != ix.Count(tag) {
			t.Errorf("Count(%s) = %d but %d pairs", tag, ix.Count(tag), len(pairs))
		}
		total += len(pairs)
		for _, p := range pairs {
			found := false
			for _, ei := range run.Out(p.From) {
				e := run.Edges[ei]
				if e.To == p.To && e.Tag == tag {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("index pair (%d,%d) tag %s not in run", p.From, p.To, tag)
			}
		}
	}
	if total != run.NumEdges() {
		t.Errorf("index covers %d edges, run has %d", total, run.NumEdges())
	}
}

func TestTagsSortedByRarity(t *testing.T) {
	run, err := derive.Derive(wf.PaperSpec(), derive.Options{Seed: 2, TargetEdges: 200})
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(run)
	tags := ix.Tags()
	for i := 1; i < len(tags); i++ {
		if ix.Count(tags[i-1]) > ix.Count(tags[i]) {
			t.Fatalf("Tags not sorted by rarity: %s(%d) before %s(%d)",
				tags[i-1], ix.Count(tags[i-1]), tags[i], ix.Count(tags[i]))
		}
	}
	if ix.Count("no-such-tag") != 0 || ix.Pairs("no-such-tag") != nil {
		t.Error("missing tags should report zero occurrences")
	}
}
