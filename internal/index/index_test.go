package index

import (
	"sync"
	"testing"

	"provrpq/internal/derive"
	"provrpq/internal/wf"
)

func TestBuildAndLookup(t *testing.T) {
	run, err := derive.Derive(wf.PaperSpec(), derive.Options{Seed: 1, TargetEdges: 120})
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(run)
	if ix.Run() != run {
		t.Error("Run() should return the indexed run")
	}
	// Every edge appears exactly once under its tag.
	total := 0
	for _, tag := range ix.Tags() {
		pairs := ix.Pairs(tag)
		if len(pairs) != ix.Count(tag) {
			t.Errorf("Count(%s) = %d but %d pairs", tag, ix.Count(tag), len(pairs))
		}
		total += len(pairs)
		for _, p := range pairs {
			found := false
			for _, ei := range run.Out(p.From) {
				e := run.Edges[ei]
				if e.To == p.To && e.Tag == tag {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("index pair (%d,%d) tag %s not in run", p.From, p.To, tag)
			}
		}
	}
	if total != run.NumEdges() {
		t.Errorf("index covers %d edges, run has %d", total, run.NumEdges())
	}
}

func TestTagsSortedByRarity(t *testing.T) {
	run, err := derive.Derive(wf.PaperSpec(), derive.Options{Seed: 2, TargetEdges: 200})
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(run)
	tags := ix.Tags()
	for i := 1; i < len(tags); i++ {
		if ix.Count(tags[i-1]) > ix.Count(tags[i]) {
			t.Fatalf("Tags not sorted by rarity: %s(%d) before %s(%d)",
				tags[i-1], ix.Count(tags[i-1]), tags[i], ix.Count(tags[i]))
		}
	}
	if ix.Count("no-such-tag") != 0 || ix.Pairs("no-such-tag") != nil {
		t.Error("missing tags should report zero occurrences")
	}
	if d := ix.DistinctEndpoints("no-such-tag"); d.Sources != 0 || d.Targets != 0 {
		t.Errorf("missing tag distinct endpoints = %+v, want zeros", d)
	}
}

// TestPairsDefensiveCopy: the documented immutability must hold against a
// caller that mutates what Pairs hands back.
func TestPairsDefensiveCopy(t *testing.T) {
	run, err := derive.Derive(wf.PaperSpec(), derive.Options{Seed: 3, TargetEdges: 120})
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(run)
	tag := ix.Tags()[len(ix.Tags())-1] // most frequent: guaranteed non-empty
	orig := ix.Pairs(tag)
	if len(orig) == 0 {
		t.Fatalf("tag %s has no occurrences", tag)
	}
	mutated := ix.Pairs(tag)
	for i := range mutated {
		mutated[i] = Pair{From: -1, To: -1}
	}
	again := ix.Pairs(tag)
	for i := range again {
		if again[i] != orig[i] {
			t.Fatalf("mutating a returned slice leaked into the index at %d: %+v", i, again[i])
		}
	}
	// EachPair agrees with Pairs, in order, without exposing backing.
	i := 0
	ix.EachPair(tag, func(p Pair) {
		if p != orig[i] {
			t.Fatalf("EachPair[%d] = %+v, Pairs %+v", i, p, orig[i])
		}
		i++
	})
	if i != len(orig) {
		t.Fatalf("EachPair visited %d of %d", i, len(orig))
	}
}

// TestDistinctEndpoints pins the statistic against a hand-counted pass.
func TestDistinctEndpoints(t *testing.T) {
	run, err := derive.Derive(wf.PaperSpec(), derive.Options{Seed: 4, TargetEdges: 150})
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(run)
	for _, tag := range ix.Tags() {
		srcs := map[derive.NodeID]bool{}
		dsts := map[derive.NodeID]bool{}
		ix.EachPair(tag, func(p Pair) {
			srcs[p.From] = true
			dsts[p.To] = true
		})
		got := ix.DistinctEndpoints(tag)
		if got.Sources != len(srcs) || got.Targets != len(dsts) {
			t.Errorf("DistinctEndpoints(%s) = %+v, want {%d %d}", tag, got, len(srcs), len(dsts))
		}
		// Second read hits the memo and must agree.
		if again := ix.DistinctEndpoints(tag); again != got {
			t.Errorf("memoized DistinctEndpoints(%s) changed: %+v vs %+v", tag, again, got)
		}
	}
}

// TestConcurrentReaders hammers every reader from many goroutines — the
// missing regression test for the concurrency contract (run with -race).
func TestConcurrentReaders(t *testing.T) {
	run, err := derive.Derive(wf.PaperSpec(), derive.Options{Seed: 5, TargetEdges: 200})
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(run)
	tags := ix.Tags()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				tag := tags[(g+round)%len(tags)]
				ps := ix.Pairs(tag)
				if len(ps) != ix.Count(tag) {
					t.Errorf("Pairs/Count disagree on %s", tag)
					return
				}
				n := 0
				ix.EachPair(tag, func(Pair) { n++ })
				if n != len(ps) {
					t.Errorf("EachPair/Pairs disagree on %s", tag)
					return
				}
				d := ix.DistinctEndpoints(tag)
				if d.Sources > len(ps) || d.Targets > len(ps) {
					t.Errorf("DistinctEndpoints(%s) = %+v exceeds occurrence count %d", tag, d, len(ps))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
