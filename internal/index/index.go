// Package index provides the inverted edge-tag index of Section V-A: for
// each tag γ, the list of node pairs connected by a γ-tagged edge. The
// baselines (G1's leaf relations, G3's IFQ occurrence lists and G2's rare
// label statistics) are driven by it.
//
// An Index is immutable after Build and therefore safe for concurrent use.
package index

import (
	"sort"

	"provrpq/internal/derive"
)

// Pair is one edge occurrence (the node pair connected by a tagged edge).
type Pair struct {
	From, To derive.NodeID
}

// Index maps every edge tag of a run to its occurrence list.
type Index struct {
	run   *derive.Run
	byTag map[string][]Pair
}

// Build scans the run once and materializes the inverted index.
func Build(r *derive.Run) *Index {
	ix := &Index{run: r, byTag: map[string][]Pair{}}
	for _, e := range r.Edges {
		ix.byTag[e.Tag] = append(ix.byTag[e.Tag], Pair{From: e.From, To: e.To})
	}
	return ix
}

// Pairs returns the occurrences of tag (nil if absent). Callers must not
// mutate the slice.
func (ix *Index) Pairs(tag string) []Pair { return ix.byTag[tag] }

// Count returns the selectivity statistic |Pairs(tag)|.
func (ix *Index) Count(tag string) int { return len(ix.byTag[tag]) }

// Tags returns the indexed tags sorted by ascending occurrence count
// (rarest first, as the G2 baseline wants).
func (ix *Index) Tags() []string {
	tags := make([]string, 0, len(ix.byTag))
	for t := range ix.byTag {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool {
		ci, cj := len(ix.byTag[tags[i]]), len(ix.byTag[tags[j]])
		if ci != cj {
			return ci < cj
		}
		return tags[i] < tags[j]
	})
	return tags
}

// Run returns the indexed run.
func (ix *Index) Run() *derive.Run { return ix.run }
