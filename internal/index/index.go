// Package index provides the inverted edge-tag index of Section V-A: for
// each tag γ, the list of node pairs connected by a γ-tagged edge. The
// baselines (G1's leaf relations, G3's IFQ occurrence lists and G2's rare
// label statistics) and the selectivity planner (internal/plan) are driven
// by it.
//
// An Index is logically immutable after Build and safe for concurrent use:
// readers never observe the occurrence lists change. The only internal
// mutation is the lazily-memoized distinct-endpoint statistic, guarded by
// its own mutex.
package index

import (
	"sort"
	"sync"

	"provrpq/internal/derive"
)

// Pair is one edge occurrence (the node pair connected by a tagged edge).
type Pair struct {
	From, To derive.NodeID
}

// Distinct counts the distinct endpoints of a tag's occurrence list — the
// planner's per-end selectivity statistic (few distinct sources means a
// seeded backward expansion fans out from few points, and symmetrically
// for targets).
type Distinct struct {
	Sources, Targets int
}

// Index maps every edge tag of a run to its occurrence list. Postings
// are shared with every reader, so the index is frozen once Build
// returns; the only sanctioned post-Build write is the mutex-guarded
// DistinctEndpoints memo.
//
//provrpq:immutable
type Index struct {
	run   *derive.Run
	byTag map[string][]Pair

	// distinct memoizes per-tag endpoint statistics: computing them costs a
	// pass over the occurrence list, and the planner re-reads them on every
	// plan decision. Guarded by mu; everything else is written once in Build.
	//
	//provrpq:lockrank indexMu 70
	mu       sync.Mutex
	distinct map[string]Distinct
}

// Build scans the run once and materializes the inverted index.
func Build(r *derive.Run) *Index {
	ix := &Index{run: r, byTag: map[string][]Pair{}, distinct: map[string]Distinct{}}
	for _, e := range r.Edges {
		ix.byTag[e.Tag] = append(ix.byTag[e.Tag], Pair{From: e.From, To: e.To})
	}
	return ix
}

// Pairs returns a copy of the occurrences of tag (nil if absent). The copy
// is the caller's to keep or mutate; hot paths that only iterate should use
// EachPair, which allocates nothing.
func (ix *Index) Pairs(tag string) []Pair {
	ps := ix.byTag[tag]
	if ps == nil {
		return nil
	}
	out := make([]Pair, len(ps))
	copy(out, ps)
	return out
}

// EachPair visits the occurrences of tag in edge order without copying.
func (ix *Index) EachPair(tag string, f func(Pair)) {
	for _, p := range ix.byTag[tag] {
		f(p)
	}
}

// Count returns the selectivity statistic |Pairs(tag)|.
func (ix *Index) Count(tag string) int { return len(ix.byTag[tag]) }

// DistinctEndpoints returns how many distinct sources and targets the tag's
// occurrences touch (zero for an absent tag). Memoized: the first call per
// tag pays one pass over the occurrence list.
//
//provrpq:mutator
func (ix *Index) DistinctEndpoints(tag string) Distinct {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if d, ok := ix.distinct[tag]; ok {
		return d
	}
	srcs := map[derive.NodeID]struct{}{}
	dsts := map[derive.NodeID]struct{}{}
	for _, p := range ix.byTag[tag] {
		srcs[p.From] = struct{}{}
		dsts[p.To] = struct{}{}
	}
	d := Distinct{Sources: len(srcs), Targets: len(dsts)}
	ix.distinct[tag] = d
	return d
}

// Tags returns the indexed tags sorted by ascending occurrence count
// (rarest first, as the G2 baseline wants).
func (ix *Index) Tags() []string {
	tags := make([]string, 0, len(ix.byTag))
	for t := range ix.byTag {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool {
		ci, cj := len(ix.byTag[tags[i]]), len(ix.byTag[tags[j]])
		if ci != cj {
			return ci < cj
		}
		return tags[i] < tags[j]
	})
	return tags
}

// Run returns the indexed run.
func (ix *Index) Run() *derive.Run { return ix.run }
