// Package metrics is a dependency-free instrumentation layer: counters,
// gauges and fixed-bucket histograms with lock-free atomic hot paths, a
// registry that renders them in the Prometheus text exposition format
// (served by rpqd's GET /metrics), and a structured snapshot API feeding
// /statsz and rpqcli -stats — both endpoints read the same instruments,
// so they can never disagree.
//
// Instruments are registered get-or-create: asking a registry twice for
// the same name returns the same instrument, so independently-initialized
// layers (server, engine, store) share families without coordination.
// Registration takes a lock; observation is wait-free for counters and
// a bounded CAS loop for float accumulation, so instrumenting the
// evaluate hot path costs nanoseconds, not contention.
//
// The exposition writer emits families sorted by name and samples sorted
// by label values, so output is deterministic — golden-testable — and
// histograms follow the Prometheus contract: cumulative `_bucket` series
// with inclusive `le` upper bounds and a trailing `+Inf`, plus `_sum`
// and `_count`.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the exposition TYPE of a metric family.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// ---- instruments ----

// Counter is a monotonically increasing value. The zero value is ready to
// use, but counters are normally created through a Registry so they are
// exposed.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; deltas from concurrent writers all land).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Buckets are defined
// by their inclusive upper bounds (Prometheus `le` semantics: an
// observation equal to a bound lands in that bound's bucket); a final
// +Inf bucket is implicit. Observation is one atomic add plus a CAS loop
// for the running sum.
type Histogram struct {
	bounds []float64       // sorted inclusive upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1; counts[len(bounds)] is +Inf
	sum    Gauge           // running sum of observed values
}

// newHistogram validates and copies the bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	for i := 1; i < len(bs); i++ {
		if bs[i] == bs[i-1] {
			panic(fmt.Sprintf("metrics: duplicate histogram bound %g", bs[i]))
		}
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v: inclusive `le` bucketing. NaN lands in +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts are per-bucket (non-cumulative), aligned with Bounds; the last
// entry of Counts is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram's counters. Buckets are read one atomic
// load at a time, so a snapshot taken under concurrent observation is a
// consistent-enough view: every completed observation before the snapshot
// is included in its bucket, and Count is the sum of the buckets read.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: h.bounds, Counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Value()
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the snapshot's
// buckets by linear interpolation within the bucket holding the target
// rank — the same estimate Prometheus's histogram_quantile computes. An
// empty histogram reports 0; a target landing in the +Inf bucket reports
// the largest finite bound (the histogram cannot resolve beyond it).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(s.Bounds) { // +Inf bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		return lo + (s.Bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// ---- vectors ----

// labelKey joins label values into one map key. Values are escaped so
// ("a,b") and ("a","b") cannot collide.
func labelKey(values []string) string {
	var b strings.Builder
	for i, v := range values {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(v))
	}
	return b.String()
}

// child is one labeled instrument inside a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family is one named metric family: a fixed Kind and label schema, and
// one instrument per distinct label-value tuple (exactly one, with no
// labels, for plain instruments).
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histograms only

	//provrpq:lockrank metricsFamilyMu 90
	mu       sync.RWMutex
	children map[string]*child

	// fn, when set, makes this a callback family: the value is computed
	// at exposition time (uptime, registry sizes, wedged state). Callback
	// families have exactly one unlabeled sample.
	fn func() float64
}

func (f *family) get(values []string) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s expects %d label value(s), got %d", f.name, len(f.labelNames), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.children[key]; c != nil {
		return c
	}
	c = &child{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		c.counter = &Counter{}
	case KindGauge:
		c.gauge = &Gauge{}
	case KindHistogram:
		c.hist = newHistogram(f.buckets)
	}
	f.children[key] = c
	return c
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use. Callers on hot paths should cache the returned handle.
func (v *CounterVec) With(labelValues ...string) *Counter { return v.f.get(labelValues).counter }

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.f.get(labelValues).gauge }

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram { return v.f.get(labelValues).hist }

// ---- registry ----

// Registry holds metric families and renders them. The zero value is not
// usable; create with NewRegistry or use the process-wide Default.
type Registry struct {
	//provrpq:lockrank metricsRegistryMu 80
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// defaultRegistry is the process-wide registry: the engine, planner and
// store instrument it unconditionally, and rpqd's /metrics serves it.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// register returns the named family, creating it on first use. A second
// registration under the same name must agree on kind and label schema —
// a mismatch is a programming error and panics.
func (r *Registry) register(name, help string, kind Kind, labelNames []string, buckets []float64, fn func() float64) *family {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("metrics: %s re-registered with a different kind or label schema", name))
		}
		for i := range labelNames {
			if f.labelNames[i] != labelNames[i] {
				panic(fmt.Sprintf("metrics: %s re-registered with different label names", name))
			}
		}
		if fn != nil {
			// Callback families rebind to the latest callback: a replacement
			// server (tests, reconfiguration) must not expose a closure over
			// its predecessor's state.
			f.fn = fn
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		kind:       kind,
		labelNames: append([]string(nil), labelNames...),
		buckets:    buckets,
		children:   map[string]*child{},
		fn:         fn,
	}
	if fn == nil && len(labelNames) == 0 {
		f.get(nil) // plain instruments exist (and expose) immediately
	}
	r.families[name] = f
	return f
}

// Counter returns the named plain counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, KindCounter, nil, nil, nil).get(nil).counter
}

// CounterVec returns the named counter family keyed by labelNames.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, labelNames, nil, nil)}
}

// Gauge returns the named plain gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, nil, nil, nil).get(nil).gauge
}

// GaugeVec returns the named gauge family keyed by labelNames.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, labelNames, nil, nil)}
}

// Histogram returns the named plain histogram, creating it on first use
// with the given inclusive upper bounds (+Inf implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, KindHistogram, nil, buckets, nil).get(nil).hist
}

// HistogramVec returns the named histogram family keyed by labelNames.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, KindHistogram, labelNames, buckets, nil)}
}

// Func registers a callback metric: its value is computed at exposition
// and snapshot time. kind must be KindCounter (for values that are
// cumulative by construction, e.g. plan-cache hits) or KindGauge.
// Re-registering rebinds the callback.
func (r *Registry) Func(name, help string, kind Kind, fn func() float64) {
	if kind == KindHistogram {
		panic("metrics: histogram callbacks are not supported")
	}
	if fn == nil {
		panic("metrics: nil callback for " + name)
	}
	r.register(name, help, kind, nil, nil, fn)
}

// LatencyBuckets are the default duration buckets in seconds: 100µs to
// 10s, covering a nanosecond-scale decode that got batched behind a scan
// as well as a pathological multi-second evaluation.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// WorkBuckets are the default buckets for work-unit counts (decoded label
// units, pairs, edges): powers of ten from 1 to 1e9.
var WorkBuckets = []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}

// ---- snapshot ----

// Sample is one exposed series: its label values (aligned with the
// family's LabelNames) and either a scalar Value or a histogram.
type Sample struct {
	LabelValues []string
	Value       float64
	Histogram   *HistogramSnapshot // non-nil only for histogram families
}

// FamilySnapshot is one family's point-in-time state.
type FamilySnapshot struct {
	Name       string
	Help       string
	Kind       Kind
	LabelNames []string
	Samples    []Sample
}

// Snapshot copies every family, sorted by name with samples sorted by
// label values — the structured equivalent of the exposition output,
// consumed by /statsz and rpqcli -stats.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind, LabelNames: f.labelNames}
		if f.fn != nil {
			fs.Samples = []Sample{{Value: f.fn()}}
			out = append(out, fs)
			continue
		}
		f.mu.RLock()
		children := make([]*child, 0, len(f.children))
		for _, c := range f.children {
			children = append(children, c)
		}
		f.mu.RUnlock()
		sort.Slice(children, func(i, j int) bool {
			return labelKey(children[i].labelValues) < labelKey(children[j].labelValues)
		})
		for _, c := range children {
			s := Sample{LabelValues: c.labelValues}
			switch f.kind {
			case KindCounter:
				s.Value = float64(c.counter.Value())
			case KindGauge:
				s.Value = c.gauge.Value()
			case KindHistogram:
				h := c.hist.Snapshot()
				s.Histogram = &h
			}
			fs.Samples = append(fs.Samples, s)
		}
		out = append(out, fs)
	}
	return out
}

// ---- exposition ----

// WritePrometheus renders every family in the Prometheus text exposition
// format (text/plain; version=0.0.4): HELP and TYPE headers, families
// sorted by name, samples sorted by label values, histograms as
// cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fs := range r.Snapshot() {
		if fs.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fs.Name, escapeHelp(fs.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fs.Name, fs.Kind); err != nil {
			return err
		}
		for _, s := range fs.Samples {
			if err := writeSample(w, fs, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, fs FamilySnapshot, s Sample) error {
	if fs.Kind != KindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", fs.Name, renderLabels(fs.LabelNames, s.LabelValues, "", ""), formatValue(s.Value))
		return err
	}
	h := s.Histogram
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = formatValue(h.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fs.Name, renderLabels(fs.LabelNames, s.LabelValues, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fs.Name, renderLabels(fs.LabelNames, s.LabelValues, "", ""), formatValue(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fs.Name, renderLabels(fs.LabelNames, s.LabelValues, "", ""), h.Count)
	return err
}

// renderLabels formats `{a="x",b="y"}` (empty string when there are no
// labels), appending the extra pair — the histogram `le` — when set.
func renderLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
