package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact Prometheus text rendering: family
// ordering, label ordering and escaping, histogram bucket cumulation,
// +Inf handling, HELP escaping. The format is a wire contract — scrapers
// parse it — so it is golden-tested byte for byte.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Total requests.").Add(42)
	rv := r.CounterVec("test_route_total", "Per-route requests.", "route", "code")
	rv.With("/v1/evaluate", "200").Add(7)
	rv.With("/v1/evaluate", "400").Inc()
	rv.With(`/weird"path`+"\n", "200").Inc() // label escaping
	r.Gauge("test_in_flight", "In-flight requests.").Set(3)
	h := r.Histogram("test_latency_seconds", "Latency with a \\ backslash\nand newline.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.1) // boundary: le="0.1" is inclusive
	h.Observe(0.5)
	h.Observe(2) // +Inf bucket
	r.Func("test_uptime_seconds", "Uptime.", KindGauge, func() float64 { return 12.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_in_flight In-flight requests.
# TYPE test_in_flight gauge
test_in_flight 3
# HELP test_latency_seconds Latency with a \\ backslash\nand newline.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 2
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 2.65
test_latency_seconds_count 4
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total 42
# HELP test_route_total Per-route requests.
# TYPE test_route_total counter
test_route_total{route="/v1/evaluate",code="200"} 7
test_route_total{route="/v1/evaluate",code="400"} 1
test_route_total{route="/weird\"path\n",code="200"} 1
# HELP test_uptime_seconds Uptime.
# TYPE test_uptime_seconds gauge
test_uptime_seconds 12.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound contract
// on exact boundary values and the +Inf overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0, 0.5, 1} { // le="1"
		h.Observe(v)
	}
	h.Observe(1.0000001) // le="2"
	h.Observe(2)         // le="2": boundary is inclusive
	h.Observe(3)         // le="4"
	h.Observe(4)         // le="4"
	h.Observe(4.5)       // +Inf
	h.Observe(math.Inf(1))

	s := h.Snapshot()
	want := []uint64{3, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 9 {
		t.Errorf("total count = %d, want 9", s.Count)
	}
	// A negative observation lands in the first bucket.
	h2 := newHistogram([]float64{0.5})
	h2.Observe(-1)
	if got := h2.Snapshot().Counts[0]; got != 1 {
		t.Errorf("negative observation bucket count = %d, want 1", got)
	}
}

// TestQuantile checks the interpolated estimates against a known
// distribution, including the +Inf clamp.
func TestQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 40})
	// 10 observations uniformly inside (0,10], 10 inside (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	s := h.Snapshot()
	// Median rank = 10 → exactly fills bucket (0,10] → estimate 10.
	if got := s.Quantile(0.5); math.Abs(got-10) > 1e-9 {
		t.Errorf("p50 = %v, want 10", got)
	}
	// p75 → rank 15 → halfway through (10,20] → 15.
	if got := s.Quantile(0.75); math.Abs(got-15) > 1e-9 {
		t.Errorf("p75 = %v, want 15", got)
	}
	// Everything beyond the last finite bound clamps to it.
	h.Observe(1e9)
	s = h.Snapshot()
	if got := s.Quantile(1); got != 40 {
		t.Errorf("p100 with +Inf observation = %v, want clamp to 40", got)
	}
	// Empty histogram.
	if got := newHistogram([]float64{1}).Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

// TestGetOrCreate: re-registration returns the same instruments, so
// independently-initialized layers share families; schema mismatches
// panic.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_shared_total", "x")
	b := r.Counter("test_shared_total", "x")
	if a != b {
		t.Error("re-registered counter is a different instrument")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("shared counter did not share state")
	}
	v := r.CounterVec("test_vec_total", "x", "op")
	if v.With("a") != v.With("a") {
		t.Error("vec child not shared")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind mismatch did not panic")
			}
		}()
		r.Gauge("test_shared_total", "x")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("label arity mismatch did not panic")
			}
		}()
		v.With("a", "b")
	}()
}

// TestLabelKeyCollision: values containing the join separator cannot
// alias a different tuple.
func TestLabelKeyCollision(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_collide_total", "x", "a", "b")
	v.With(`x","b`, "y").Inc()
	if got := v.With("x", `b","y`).Value(); got != 0 {
		t.Errorf("colliding label tuples shared a counter (count %d)", got)
	}
}

// TestConcurrentIncrements hammers one counter, one gauge and one
// histogram from many goroutines; run under -race this is the data-race
// proof, and the final values prove no increment was lost.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "x")
	g := r.Gauge("test_conc_gauge", "x")
	h := r.Histogram("test_conc_hist", "x", LatencyBuckets)
	v := r.CounterVec("test_conc_vec_total", "x", "op")

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
				v.With([]string{"read", "write"}[i%2]).Inc()
				if i%16 == 0 {
					_ = r.Snapshot() // concurrent scrape
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := h.Snapshot().Count; got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	sum := v.With("read").Value() + v.With("write").Value()
	if sum != workers*perWorker {
		t.Errorf("vec sum = %d, want %d", sum, workers*perWorker)
	}
}
