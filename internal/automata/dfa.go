package automata

import (
	"fmt"
	"sort"
	"strings"
)

// DFA is a complete deterministic finite automaton over an alphabet of edge
// tags (Definition 11). Completeness: every state has a transition on every
// alphabet symbol (a non-accepting sink serves as the dead state), which the
// safety machinery relies on.
type DFA struct {
	Alphabet []string
	Start    int
	Accept   []bool
	// Delta[q*len(Alphabet)+s] is the successor of state q on symbol s.
	Delta []int

	symIdx map[string]int
}

// NumStates returns |Q|.
func (d *DFA) NumStates() int { return len(d.Accept) }

// SymIndex returns the alphabet index of tag, or -1 if the tag is not in
// the alphabet (such tags can never occur in a run of the specification the
// DFA was built against).
func (d *DFA) SymIndex(tag string) int {
	if i, ok := d.symIdx[tag]; ok {
		return i
	}
	return -1
}

// Step returns δ(q, tag); a tag outside the alphabet moves to the dead
// state if one exists, identified as a non-accepting state with only
// self-transitions, else returns -1.
func (d *DFA) Step(q int, tag string) int {
	s := d.SymIndex(tag)
	if s < 0 {
		if dead := d.DeadState(); dead >= 0 {
			return dead
		}
		return -1
	}
	return d.Delta[q*len(d.Alphabet)+s]
}

// StepSym returns δ(q, sym) by alphabet index.
func (d *DFA) StepSym(q, sym int) int { return d.Delta[q*len(d.Alphabet)+sym] }

// DeadState returns the index of a non-accepting all-self-loop state, or -1.
func (d *DFA) DeadState() int {
	n := len(d.Alphabet)
	for q := 0; q < d.NumStates(); q++ {
		if d.Accept[q] {
			continue
		}
		dead := true
		for s := 0; s < n; s++ {
			if d.Delta[q*n+s] != q {
				dead = false
				break
			}
		}
		if dead {
			return q
		}
	}
	return -1
}

// Requires reports whether every word of the DFA's language contains sym:
// removing all sym-transitions must disconnect the start state from every
// accepting state. A sym outside the alphabet is never required (no word
// contains it). Required symbols are what seed-driven evaluation (the G2
// baseline's rare-label decomposition, internal/plan's seeded strategy)
// anchors on: any matching run path must traverse a sym-tagged edge.
func (d *DFA) Requires(sym string) bool {
	s := d.SymIndex(sym)
	if s < 0 {
		return false
	}
	nsym := len(d.Alphabet)
	seen := make([]bool, d.NumStates())
	stack := []int{d.Start}
	seen[d.Start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Accept[q] {
			return false // an accepting path avoiding sym exists
		}
		for s2 := 0; s2 < nsym; s2++ {
			if s2 == s {
				continue
			}
			t := d.Delta[q*nsym+s2]
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return true
}

// Accepts runs the DFA on a sequence of edge tags.
func (d *DFA) Accepts(tags []string) bool {
	q := d.Start
	for _, t := range tags {
		q = d.Step(q, t)
		if q < 0 {
			return false
		}
	}
	return d.Accept[q]
}

// String renders a compact human-readable transition table for debugging.
func (d *DFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DFA states=%d start=%d alphabet=%v\n", d.NumStates(), d.Start, d.Alphabet)
	for q := 0; q < d.NumStates(); q++ {
		acc := " "
		if d.Accept[q] {
			acc = "*"
		}
		fmt.Fprintf(&b, "%s q%d:", acc, q)
		for s, tag := range d.Alphabet {
			fmt.Fprintf(&b, " %s->q%d", tag, d.Delta[q*len(d.Alphabet)+s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CompileDFA parses nothing: it builds the minimal complete DFA of the
// expression over the given alphabet (spec tags; expression tags are added).
// This is steps 1-2 of the safety-check pipeline in Section III-C.
func CompileDFA(n *Node, alphabet []string) *DFA {
	nfa := BuildNFA(n, alphabet)
	d := determinize(nfa)
	return Minimize(d)
}

// determinize applies the subset construction, producing a complete DFA
// (the empty subset is the dead state).
func determinize(m *NFA) *DFA {
	nsym := len(m.alphabet)
	d := &DFA{Alphabet: m.alphabet, symIdx: map[string]int{}}
	for i, t := range m.alphabet {
		d.symIdx[t] = i
	}

	key := func(set []int) string {
		var b strings.Builder
		for _, v := range set {
			fmt.Fprintf(&b, "%d,", v)
		}
		return b.String()
	}
	isAccept := func(set []int) bool {
		for _, v := range set {
			if v == m.accept {
				return true
			}
		}
		return false
	}

	start := m.closure([]int{m.start})
	ids := map[string]int{key(start): 0}
	sets := [][]int{start}
	d.Accept = append(d.Accept, isAccept(start))
	d.Start = 0

	for at := 0; at < len(sets); at++ {
		row := make([]int, nsym)
		for s := 0; s < nsym; s++ {
			next := m.closure(m.step(sets[at], s))
			k := key(next)
			id, ok := ids[k]
			if !ok {
				id = len(sets)
				ids[k] = id
				sets = append(sets, next)
				d.Accept = append(d.Accept, isAccept(next))
			}
			row[s] = id
		}
		d.Delta = append(d.Delta, row...)
	}
	return d
}

// Minimize returns the minimal complete DFA equivalent to d, using Moore's
// partition-refinement algorithm (adequate for the small query DFAs the
// paper's workloads produce).
func Minimize(d *DFA) *DFA {
	n := d.NumStates()
	nsym := len(d.Alphabet)

	// Restrict to states reachable from the start.
	reach := make([]bool, n)
	stack := []int{d.Start}
	reach[d.Start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := 0; s < nsym; s++ {
			t := d.Delta[q*nsym+s]
			if !reach[t] {
				reach[t] = true
				stack = append(stack, t)
			}
		}
	}

	class := make([]int, n)
	numClasses := 1
	for q := 0; q < n; q++ {
		if d.Accept[q] {
			class[q] = 1
			numClasses = 2
		}
	}
	// Each round refines the partition (the signature starts with the old
	// class), so the class count is non-decreasing and the loop terminates
	// exactly when the partition is stable.
	for {
		sig := map[string][]int{}
		var order []string
		for q := 0; q < n; q++ {
			if !reach[q] {
				continue
			}
			var b strings.Builder
			fmt.Fprintf(&b, "%d|", class[q])
			for s := 0; s < nsym; s++ {
				fmt.Fprintf(&b, "%d,", class[d.Delta[q*nsym+s]])
			}
			k := b.String()
			if _, ok := sig[k]; !ok {
				order = append(order, k)
			}
			sig[k] = append(sig[k], q)
		}
		sort.Strings(order)
		if len(order) == numClasses {
			break
		}
		numClasses = len(order)
		newClass := make([]int, n)
		for i, k := range order {
			for _, q := range sig[k] {
				newClass[q] = i
			}
		}
		class = newClass
	}

	// Build quotient automaton with stable state numbering: order classes by
	// the smallest reachable member.
	repr := map[int]int{}
	for q := 0; q < n; q++ {
		if !reach[q] {
			continue
		}
		if r, ok := repr[class[q]]; !ok || q < r {
			repr[class[q]] = q
		}
	}
	classes := make([]int, 0, len(repr))
	for c := range repr {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return repr[classes[i]] < repr[classes[j]] })
	remap := map[int]int{}
	for i, c := range classes {
		remap[c] = i
	}

	out := &DFA{Alphabet: d.Alphabet, symIdx: map[string]int{}}
	for i, t := range d.Alphabet {
		out.symIdx[t] = i
	}
	out.Accept = make([]bool, len(classes))
	out.Delta = make([]int, len(classes)*nsym)
	for _, c := range classes {
		q := repr[c]
		i := remap[c]
		out.Accept[i] = d.Accept[q]
		for s := 0; s < nsym; s++ {
			out.Delta[i*nsym+s] = remap[class[d.Delta[q*nsym+s]]]
		}
	}
	out.Start = remap[class[d.Start]]
	return out
}
