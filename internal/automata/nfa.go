package automata

import "sort"

// wildSym is the internal symbol index meaning "any tag".
const wildSym = -1

// nfaEdge is a labeled NFA transition; sym is an index into the alphabet or
// wildSym for wildcard transitions.
type nfaEdge struct {
	sym int
	to  int
}

// NFA is a Thompson-constructed nondeterministic automaton with a single
// start and a single accept state.
type NFA struct {
	alphabet []string
	symIdx   map[string]int
	edges    [][]nfaEdge
	eps      [][]int
	start    int
	accept   int
}

// BuildNFA constructs a Thompson NFA for the expression over the given
// alphabet. Tags mentioned by the expression that are missing from alphabet
// are appended to it, so wildcards range over the union.
func BuildNFA(n *Node, alphabet []string) *NFA {
	m := &NFA{symIdx: map[string]int{}}
	seen := map[string]bool{}
	for _, t := range alphabet {
		if !seen[t] {
			seen[t] = true
			m.symIdx[t] = len(m.alphabet)
			m.alphabet = append(m.alphabet, t)
		}
	}
	for _, t := range n.Symbols() {
		if !seen[t] {
			seen[t] = true
			m.symIdx[t] = len(m.alphabet)
			m.alphabet = append(m.alphabet, t)
		}
	}
	m.start, m.accept = m.build(n)
	return m
}

func (m *NFA) newState() int {
	m.edges = append(m.edges, nil)
	m.eps = append(m.eps, nil)
	return len(m.edges) - 1
}

func (m *NFA) addEdge(from, sym, to int) { m.edges[from] = append(m.edges[from], nfaEdge{sym, to}) }
func (m *NFA) addEps(from, to int)       { m.eps[from] = append(m.eps[from], to) }

func (m *NFA) build(n *Node) (start, accept int) {
	switch n.Kind {
	case KindSym:
		s, a := m.newState(), m.newState()
		m.addEdge(s, m.symIdx[n.Sym], a)
		return s, a
	case KindWild:
		s, a := m.newState(), m.newState()
		m.addEdge(s, wildSym, a)
		return s, a
	case KindEps:
		s, a := m.newState(), m.newState()
		m.addEps(s, a)
		return s, a
	case KindConcat:
		if len(n.Children) == 0 {
			s, a := m.newState(), m.newState()
			m.addEps(s, a)
			return s, a
		}
		s, a := m.build(n.Children[0])
		for _, c := range n.Children[1:] {
			s2, a2 := m.build(c)
			m.addEps(a, s2)
			a = a2
		}
		return s, a
	case KindAlt:
		s, a := m.newState(), m.newState()
		for _, c := range n.Children {
			cs, ca := m.build(c)
			m.addEps(s, cs)
			m.addEps(ca, a)
		}
		return s, a
	case KindStar:
		cs, ca := m.build(n.Children[0])
		s, a := m.newState(), m.newState()
		m.addEps(s, cs)
		m.addEps(ca, a)
		m.addEps(s, a)
		m.addEps(ca, cs)
		return s, a
	case KindPlus:
		cs, ca := m.build(n.Children[0])
		s, a := m.newState(), m.newState()
		m.addEps(s, cs)
		m.addEps(ca, a)
		m.addEps(ca, cs)
		return s, a
	case KindOpt:
		cs, ca := m.build(n.Children[0])
		s, a := m.newState(), m.newState()
		m.addEps(s, cs)
		m.addEps(ca, a)
		m.addEps(s, a)
		return s, a
	}
	panic("automata: unknown node kind")
}

// closure expands the state set to its ε-closure in place and returns it
// sorted and deduplicated.
func (m *NFA) closure(states []int) []int {
	mark := map[int]bool{}
	stack := append([]int(nil), states...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if mark[v] {
			continue
		}
		mark[v] = true
		stack = append(stack, m.eps[v]...)
	}
	out := make([]int, 0, len(mark))
	for v := range mark {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// step returns the (unclosed) set of states reachable from the set on sym.
func (m *NFA) step(states []int, sym int) []int {
	var out []int
	for _, v := range states {
		for _, e := range m.edges[v] {
			if e.sym == sym || e.sym == wildSym {
				out = append(out, e.to)
			}
		}
	}
	return out
}
