package automata

// Simplify returns an equivalent, normalized copy of the expression. It is
// used both to canonicalize generated queries and as the paper's future-work
// item 2 (Section VI): rewriting a query before decomposition can expose a
// larger safe subtree (e.g. flattening (a.(b.c)) so a safe prefix a.b is a
// single subtree).
//
// Rules (all language-preserving):
//
//	concat/alt flattening; unit collapsing (singleton concat/alt)
//	ε elimination in concatenations; duplicate alternative elimination
//	(e*)* = (e+)* = (e?)* = (e*)+ = (e*)? = e*
//	(e+)+ = e+ ; (e?)? = e? ; (e+)? = (e?)+ = e*
//	(ε|e) = e? ; ε* = ε+ = ε? = ε
func Simplify(n *Node) *Node {
	switch n.Kind {
	case KindSym, KindWild, KindEps:
		return n
	case KindConcat:
		var parts []*Node
		for _, c := range n.Children {
			sc := Simplify(c)
			if sc.Kind == KindEps {
				continue
			}
			if sc.Kind == KindConcat {
				parts = append(parts, sc.Children...)
			} else {
				parts = append(parts, sc)
			}
		}
		switch len(parts) {
		case 0:
			return Eps()
		case 1:
			return parts[0]
		}
		return Concat(parts...)
	case KindAlt:
		var parts []*Node
		seen := map[string]bool{}
		hasEps := false
		for _, c := range n.Children {
			sc := Simplify(c)
			if sc.Kind == KindEps {
				hasEps = true
				continue
			}
			if sc.Kind == KindAlt {
				for _, g := range sc.Children {
					if k := g.String(); !seen[k] {
						seen[k] = true
						parts = append(parts, g)
					}
				}
				continue
			}
			if k := sc.String(); !seen[k] {
				seen[k] = true
				parts = append(parts, sc)
			}
		}
		var out *Node
		switch len(parts) {
		case 0:
			return Eps()
		case 1:
			out = parts[0]
		default:
			out = Alt(parts...)
		}
		if hasEps && !out.Nullable() {
			out = Simplify(Opt(out))
		}
		return out
	case KindStar:
		c := Simplify(n.Children[0])
		switch c.Kind {
		case KindEps:
			return Eps()
		case KindStar, KindPlus, KindOpt:
			return Star(c.Children[0])
		}
		return Star(c)
	case KindPlus:
		c := Simplify(n.Children[0])
		switch c.Kind {
		case KindEps:
			return Eps()
		case KindStar:
			return c
		case KindPlus:
			return c
		case KindOpt:
			return Star(c.Children[0])
		}
		return Plus(c)
	case KindOpt:
		c := Simplify(n.Children[0])
		switch c.Kind {
		case KindEps:
			return Eps()
		case KindStar, KindOpt:
			return c
		case KindPlus:
			return Star(c.Children[0])
		}
		if c.Nullable() {
			return c
		}
		return Opt(c)
	}
	return n
}

// Equivalent reports whether two expressions denote the same language over
// the given alphabet, by comparing minimal DFAs up to isomorphism. Intended
// for tests and the rewrite search; cost is exponential in expression size
// in the worst case.
func Equivalent(a, b *Node, alphabet []string) bool {
	// Build over the union alphabet so wildcards range identically.
	union := append(append([]string(nil), alphabet...), a.Symbols()...)
	union = append(union, b.Symbols()...)
	da := CompileDFA(a, union)
	db := CompileDFA(b, union)
	return isoEqual(da, db)
}

// isoEqual checks minimal complete DFAs for isomorphism by parallel BFS.
func isoEqual(a, b *DFA) bool {
	if a.NumStates() != b.NumStates() || len(a.Alphabet) != len(b.Alphabet) {
		return false
	}
	// Alphabets may be permuted; align b's symbol order to a's.
	nsym := len(a.Alphabet)
	bsym := make([]int, nsym)
	for i, t := range a.Alphabet {
		j := b.SymIndex(t)
		if j < 0 {
			return false
		}
		bsym[i] = j
	}
	match := map[int]int{a.Start: b.Start}
	queue := []int{a.Start}
	for len(queue) > 0 {
		qa := queue[0]
		queue = queue[1:]
		qb := match[qa]
		if a.Accept[qa] != b.Accept[qb] {
			return false
		}
		for s := 0; s < nsym; s++ {
			ta := a.Delta[qa*nsym+s]
			tb := b.Delta[qb*nsym+bsym[s]]
			if prev, ok := match[ta]; ok {
				if prev != tb {
					return false
				}
				continue
			}
			match[ta] = tb
			queue = append(queue, ta)
		}
	}
	return true
}
