// Package automata implements the regular-expression machinery the paper
// relies on (it used the dk.brics.automaton library; we build the required
// subset from scratch): parsing regular path queries over edge tags,
// Thompson NFA construction, subset construction to a DFA, DFA minimization
// (Lemma 3.2 reduces safety of a query to safety of its minimal DFA), and a
// parse-tree view used by the general-query decomposition of Section IV-B.
//
// Query syntax (Section III-A):
//
//	expr   := term ('|' term)*          alternation
//	term   := factor factor*            concatenation ('.' optional)
//	factor := base ('*' | '+' | '?')*   Kleene star / plus / optional
//	base   := TAG | '_' | 'ε' | '(' expr ')'
//
// TAG is an identifier over [A-Za-z0-9_-] (a lone '_' is the wildcard that
// matches any single edge tag; 'ε', or the ASCII form '<eps>', is the empty
// string). Whitespace separates tokens and is otherwise ignored.
package automata

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates AST node kinds.
type Kind int

// AST node kinds.
const (
	KindSym Kind = iota
	KindWild
	KindEps
	KindConcat
	KindAlt
	KindStar
	KindPlus
	KindOpt
)

// Node is a node of a regular-expression abstract syntax tree. Nodes are
// immutable once built; Children must not be mutated by callers.
type Node struct {
	Kind     Kind
	Sym      string // tag for KindSym
	Children []*Node
}

// Sym returns a node matching exactly the given edge tag.
func Sym(tag string) *Node { return &Node{Kind: KindSym, Sym: tag} }

// Wild returns the wildcard node '_' matching any single edge tag.
func Wild() *Node { return &Node{Kind: KindWild} }

// Eps returns the empty-string node.
func Eps() *Node { return &Node{Kind: KindEps} }

// Concat returns the concatenation of the given expressions.
func Concat(xs ...*Node) *Node { return &Node{Kind: KindConcat, Children: xs} }

// Alt returns the alternation of the given expressions.
func Alt(xs ...*Node) *Node { return &Node{Kind: KindAlt, Children: xs} }

// Star returns x*.
func Star(x *Node) *Node { return &Node{Kind: KindStar, Children: []*Node{x}} }

// Plus returns x+.
func Plus(x *Node) *Node { return &Node{Kind: KindPlus, Children: []*Node{x}} }

// Opt returns x?.
func Opt(x *Node) *Node { return &Node{Kind: KindOpt, Children: []*Node{x}} }

// String renders the node in the package's query syntax; Parse(n.String())
// yields an equivalent expression.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

// precedence levels: alt=0, concat=1, unary=2, atom=3
func (n *Node) render(b *strings.Builder, prec int) {
	switch n.Kind {
	case KindSym:
		b.WriteString(n.Sym)
	case KindWild:
		b.WriteByte('_')
	case KindEps:
		b.WriteString("ε")
	case KindConcat:
		if prec > 1 {
			b.WriteByte('(')
		}
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte('.')
			}
			c.render(b, 2)
		}
		if prec > 1 {
			b.WriteByte(')')
		}
	case KindAlt:
		if prec > 0 {
			b.WriteByte('(')
		}
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte('|')
			}
			c.render(b, 1)
		}
		if prec > 0 {
			b.WriteByte(')')
		}
	case KindStar, KindPlus, KindOpt:
		n.Children[0].render(b, 3)
		switch n.Kind {
		case KindStar:
			b.WriteByte('*')
		case KindPlus:
			b.WriteByte('+')
		default:
			b.WriteByte('?')
		}
	}
}

// Symbols returns the sorted set of concrete tags mentioned by the
// expression (wildcards excluded).
func (n *Node) Symbols() []string {
	set := map[string]bool{}
	n.walk(func(m *Node) {
		if m.Kind == KindSym {
			set[m.Sym] = true
		}
	})
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// HasWildcard reports whether the expression contains '_'.
func (n *Node) HasWildcard() bool {
	found := false
	n.walk(func(m *Node) {
		if m.Kind == KindWild {
			found = true
		}
	})
	return found
}

func (n *Node) walk(f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		c.walk(f)
	}
}

// Size returns the number of AST nodes (a proxy for the paper's |R|).
func (n *Node) Size() int {
	total := 0
	n.walk(func(*Node) { total++ })
	return total
}

// Reverse returns an expression matching the reversal of every string of
// L(n). Used by the rare-label baseline (G2) for backward search.
func (n *Node) Reverse() *Node {
	switch n.Kind {
	case KindSym, KindWild, KindEps:
		return n
	case KindConcat:
		rev := make([]*Node, len(n.Children))
		for i, c := range n.Children {
			rev[len(n.Children)-1-i] = c.Reverse()
		}
		return Concat(rev...)
	default:
		cs := make([]*Node, len(n.Children))
		for i, c := range n.Children {
			cs[i] = c.Reverse()
		}
		return &Node{Kind: n.Kind, Children: cs}
	}
}

// Nullable reports whether ε ∈ L(n).
func (n *Node) Nullable() bool {
	switch n.Kind {
	case KindEps, KindStar, KindOpt:
		if n.Kind == KindEps {
			return true
		}
		return true
	case KindSym, KindWild:
		return false
	case KindConcat:
		for _, c := range n.Children {
			if !c.Nullable() {
				return false
			}
		}
		return true
	case KindAlt:
		for _, c := range n.Children {
			if c.Nullable() {
				return true
			}
		}
		return false
	case KindPlus:
		return n.Children[0].Nullable()
	}
	return false
}

type parser struct {
	toks []token
	pos  int
}

type token struct {
	kind byte // 'i' ident, or one of ().|*+?_e  ('e' = epsilon)
	text string
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case strings.IndexByte("().|*+?", c) >= 0:
			toks = append(toks, token{kind: c})
			i++
		case strings.HasPrefix(s[i:], "ε"):
			toks = append(toks, token{kind: 'e'})
			i += len("ε")
		case strings.HasPrefix(s[i:], "<eps>"):
			toks = append(toks, token{kind: 'e'})
			i += len("<eps>")
		case isIdentByte(c):
			j := i
			for j < len(s) && isIdentByte(s[j]) {
				j++
			}
			word := s[i:j]
			if word == "_" {
				toks = append(toks, token{kind: '_'})
			} else {
				toks = append(toks, token{kind: 'i', text: word})
			}
			i = j
		default:
			return nil, fmt.Errorf("automata: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' || c == ':'
}

// Parse parses a regular path query in the package syntax.
func Parse(s string) (*Node, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.alt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("automata: trailing input at token %d", p.pos)
	}
	return n, nil
}

// MustParse is Parse but panics on error; for tests and fixtures.
func MustParse(s string) *Node {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *parser) alt() (*Node, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	parts := []*Node{first}
	for {
		t, ok := p.peek()
		if !ok || t.kind != '|' {
			break
		}
		p.pos++
		next, err := p.concat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return Alt(parts...), nil
}

func (p *parser) concat() (*Node, error) {
	first, err := p.factor()
	if err != nil {
		return nil, err
	}
	parts := []*Node{first}
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		if t.kind == '.' {
			p.pos++
			next, err := p.factor()
			if err != nil {
				return nil, err
			}
			parts = append(parts, next)
			continue
		}
		// Implicit concatenation before an atom start.
		if t.kind == 'i' || t.kind == '_' || t.kind == 'e' || t.kind == '(' {
			next, err := p.factor()
			if err != nil {
				return nil, err
			}
			parts = append(parts, next)
			continue
		}
		break
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return Concat(parts...), nil
}

func (p *parser) factor() (*Node, error) {
	n, err := p.base()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		switch t.kind {
		case '*':
			n = Star(n)
		case '+':
			n = Plus(n)
		case '?':
			n = Opt(n)
		default:
			return n, nil
		}
		p.pos++
	}
	return n, nil
}

func (p *parser) base() (*Node, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("automata: unexpected end of query")
	}
	switch t.kind {
	case 'i':
		p.pos++
		return Sym(t.text), nil
	case '_':
		p.pos++
		return Wild(), nil
	case 'e':
		p.pos++
		return Eps(), nil
	case '(':
		p.pos++
		n, err := p.alt()
		if err != nil {
			return nil, err
		}
		t2, ok := p.peek()
		if !ok || t2.kind != ')' {
			return nil, fmt.Errorf("automata: missing ')'")
		}
		p.pos++
		return n, nil
	default:
		return nil, fmt.Errorf("automata: unexpected token %q", t.kind)
	}
}
