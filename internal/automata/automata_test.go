package automata

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseAndString(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical rendering; "" means same as in
	}{
		{"a", ""},
		{"a.b", ""},
		{"a b", "a.b"},
		{"a|b", ""},
		{"a*", ""},
		{"a+", ""},
		{"a?", ""},
		{"_", ""},
		{"ε", ""},
		{"<eps>", "ε"},
		{"(a|b)*", ""},
		{"x.(a1|a2)+.s._*.p", ""},
		{"_*.e._*", ""},
		{"((a))", "a"},
		{"a.(b|c).d", ""},
		{"a**", "a**"},
	}
	for _, c := range cases {
		n, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		want := c.want
		if want == "" {
			want = c.in
		}
		if got := n.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, want)
		}
		// Round trip: parse of rendering equals rendering.
		n2, err := Parse(n.String())
		if err != nil {
			t.Errorf("re-Parse(%q): %v", n.String(), err)
			continue
		}
		if n2.String() != n.String() {
			t.Errorf("round trip %q -> %q", n.String(), n2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "(", "a|", "*", "a)(", "a^b", "(a", "|a"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestDFAAccepts(t *testing.T) {
	alpha := []string{"a", "b", "c", "e"}
	cases := []struct {
		re   string
		in   []string
		want bool
	}{
		{"a", []string{"a"}, true},
		{"a", []string{"b"}, false},
		{"a", nil, false},
		{"ε", nil, true},
		{"ε", []string{"a"}, false},
		{"a*", nil, true},
		{"a*", []string{"a", "a", "a"}, true},
		{"a*", []string{"a", "b"}, false},
		{"a+", nil, false},
		{"a+", []string{"a"}, true},
		{"a?", nil, true},
		{"a?", []string{"a", "a"}, false},
		{"a|b", []string{"b"}, true},
		{"a.b", []string{"a", "b"}, true},
		{"a.b", []string{"b", "a"}, false},
		{"_", []string{"c"}, true},
		{"_", []string{"c", "c"}, false},
		{"_*.e._*", []string{"a", "e", "b"}, true},
		{"_*.e._*", []string{"a", "b"}, false},
		{"_*.e._*", []string{"e"}, true},
		{"(a|b)+.c", []string{"a", "b", "a", "c"}, true},
		{"(a|b)+.c", []string{"c"}, false},
		{"x.(a1|a2)+.s", []string{"x", "a1", "a2", "s"}, true},
		{"x.(a1|a2)+.s", []string{"x", "s"}, false},
	}
	for _, c := range cases {
		d := CompileDFA(MustParse(c.re), alpha)
		if got := d.Accepts(c.in); got != c.want {
			t.Errorf("DFA(%q).Accepts(%v) = %v, want %v", c.re, c.in, got, c.want)
		}
	}
}

func TestDFAComplete(t *testing.T) {
	alpha := []string{"a", "b"}
	d := CompileDFA(MustParse("a.b"), alpha)
	n := d.NumStates()
	for q := 0; q < n; q++ {
		for s := range d.Alphabet {
			to := d.Delta[q*len(d.Alphabet)+s]
			if to < 0 || to >= n {
				t.Fatalf("incomplete DFA: state %d symbol %d -> %d", q, s, to)
			}
		}
	}
	if d.DeadState() < 0 {
		t.Error("expected a dead state for a.b")
	}
}

func TestMinimalSizes(t *testing.T) {
	alpha := []string{"a", "b", "e"}
	cases := []struct {
		re     string
		states int
	}{
		// _*e_* : two live states (seen-e / not) as in Fig. 11a... plus no
		// dead state since every symbol keeps it live.
		{"_*.e._*", 2},
		{"e", 3}, // q0, qf, dead (Fig. 11b plus completion sink)
		{"_*", 1},
		{"a*", 2}, // a-loop accept + dead
	}
	for _, c := range cases {
		d := CompileDFA(MustParse(c.re), alpha)
		if d.NumStates() != c.states {
			t.Errorf("minimal DFA of %q has %d states, want %d\n%s", c.re, d.NumStates(), c.states, d)
		}
	}
}

func TestStepUnknownTag(t *testing.T) {
	d := CompileDFA(MustParse("a"), []string{"a"})
	dead := d.DeadState()
	if dead < 0 {
		t.Fatal("expected dead state")
	}
	if got := d.Step(d.Start, "zzz"); got != dead {
		t.Errorf("Step on unknown tag = %d, want dead state %d", got, dead)
	}
	if d.SymIndex("zzz") != -1 {
		t.Error("SymIndex of unknown tag should be -1")
	}
}

// nfaAccepts simulates the NFA directly, as an independent oracle.
func nfaAccepts(m *NFA, tags []string) bool {
	cur := m.closure([]int{m.start})
	for _, tag := range tags {
		sym, ok := m.symIdx[tag]
		if !ok {
			sym = -2 // unknown: only wildcard edges fire
		}
		var next []int
		for _, v := range cur {
			for _, e := range m.edges[v] {
				if e.sym == sym || e.sym == wildSym {
					next = append(next, e.to)
				}
			}
		}
		cur = m.closure(next)
	}
	for _, v := range cur {
		if v == m.accept {
			return true
		}
	}
	return false
}

// randomExpr generates a random expression over the alphabet.
func randomExpr(r *rand.Rand, alpha []string, depth int) *Node {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(6) {
		case 0:
			return Wild()
		case 1:
			return Eps()
		default:
			return Sym(alpha[r.Intn(len(alpha))])
		}
	}
	switch r.Intn(6) {
	case 0:
		return Concat(randomExpr(r, alpha, depth-1), randomExpr(r, alpha, depth-1))
	case 1:
		return Alt(randomExpr(r, alpha, depth-1), randomExpr(r, alpha, depth-1))
	case 2:
		return Star(randomExpr(r, alpha, depth-1))
	case 3:
		return Plus(randomExpr(r, alpha, depth-1))
	case 4:
		return Opt(randomExpr(r, alpha, depth-1))
	default:
		return Concat(randomExpr(r, alpha, depth-1), randomExpr(r, alpha, depth-1), randomExpr(r, alpha, depth-1))
	}
}

func randomString(r *rand.Rand, alpha []string, maxLen int) []string {
	n := r.Intn(maxLen + 1)
	out := make([]string, n)
	for i := range out {
		out[i] = alpha[r.Intn(len(alpha))]
	}
	return out
}

// TestPropertyDFAMatchesNFA cross-checks the whole pipeline (parse is
// exercised via String round trips elsewhere): for random expressions and
// random strings, minimal DFA acceptance equals direct NFA simulation.
func TestPropertyDFAMatchesNFA(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	alpha := []string{"a", "b", "c"}
	for i := 0; i < 300; i++ {
		e := randomExpr(r, alpha, 4)
		nfa := BuildNFA(e, alpha)
		dfa := CompileDFA(e, alpha)
		for j := 0; j < 25; j++ {
			w := randomString(r, alpha, 6)
			want := nfaAccepts(nfa, w)
			if got := dfa.Accepts(w); got != want {
				t.Fatalf("expr %s on %v: DFA=%v NFA=%v\n%s", e, w, got, want, dfa)
			}
		}
	}
}

// TestPropertyMinimizeIdempotent checks Minimize(Minimize(d)) has the same
// number of states, and that minimization preserves the language.
func TestPropertyMinimizeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	alpha := []string{"a", "b"}
	for i := 0; i < 200; i++ {
		e := randomExpr(r, alpha, 4)
		d := CompileDFA(e, alpha)
		d2 := Minimize(d)
		if d2.NumStates() != d.NumStates() {
			t.Fatalf("minimize not idempotent for %s: %d -> %d", e, d.NumStates(), d2.NumStates())
		}
		if !isoEqual(d, d2) {
			t.Fatalf("re-minimization changed the automaton for %s", e)
		}
	}
}

func TestPropertySimplifyPreservesLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	alpha := []string{"a", "b", "c"}
	for i := 0; i < 300; i++ {
		e := randomExpr(r, alpha, 4)
		s := Simplify(e)
		if !Equivalent(e, s, alpha) {
			t.Fatalf("Simplify changed language: %s -> %s", e, s)
		}
		if s.Size() > e.Size() {
			t.Errorf("Simplify grew %s (%d) -> %s (%d)", e, e.Size(), s, s.Size())
		}
	}
}

func TestSimplifyRules(t *testing.T) {
	cases := []struct{ in, want string }{
		{"(a*)*", "a*"},
		{"(a+)+", "a+"},
		{"(a*)+", "a*"},
		{"(a+)*", "a*"},
		{"(a?)?", "a?"},
		{"(a?)*", "a*"},
		{"(a?)+", "a*"},
		{"(a+)?", "a*"},
		{"ε*", "ε"},
		{"a.ε.b", "a.b"},
		{"a|a", "a"},
		{"ε|a", "a?"},
		{"(a.(b.c))", "a.b.c"},
		{"(a|(b|c))", "a|b|c"},
		{"(a*)?", "a*"},
	}
	for _, c := range cases {
		got := Simplify(MustParse(c.in)).String()
		if got != c.want {
			t.Errorf("Simplify(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestReverse(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a.b.c", "c.b.a"},
		{"(a.b)*", "(b.a)*"},
		{"a|b", "a|b"},
		{"x.(a1|a2)+.s", "s.(a1|a2)+.x"},
	}
	for _, c := range cases {
		got := MustParse(c.in).Reverse().String()
		if got != c.want {
			t.Errorf("Reverse(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Property: reversed DFA accepts reversed strings.
	r := rand.New(rand.NewSource(3))
	alpha := []string{"a", "b"}
	for i := 0; i < 100; i++ {
		e := randomExpr(r, alpha, 3)
		d := CompileDFA(e, alpha)
		dr := CompileDFA(e.Reverse(), alpha)
		for j := 0; j < 20; j++ {
			w := randomString(r, alpha, 5)
			wr := make([]string, len(w))
			for i2 := range w {
				wr[len(w)-1-i2] = w[i2]
			}
			if d.Accepts(w) != dr.Accepts(wr) {
				t.Fatalf("reverse mismatch for %s on %v", e, w)
			}
		}
	}
}

func TestNodeHelpers(t *testing.T) {
	n := MustParse("x.(a1|a2)+.s._*.p")
	syms := n.Symbols()
	want := "a1,a2,p,s,x"
	if strings.Join(syms, ",") != want {
		t.Errorf("Symbols = %v, want %s", syms, want)
	}
	if !n.HasWildcard() {
		t.Error("HasWildcard should be true")
	}
	if MustParse("a.b").HasWildcard() {
		t.Error("HasWildcard should be false")
	}
	if !MustParse("a*").Nullable() || MustParse("a+").Nullable() || !MustParse("a?").Nullable() {
		t.Error("Nullable wrong for star/plus/opt")
	}
	if !MustParse("a*.b?").Nullable() || MustParse("a*.b").Nullable() {
		t.Error("Nullable wrong for concat")
	}
	if !MustParse("a|b*").Nullable() || MustParse("a|b").Nullable() {
		t.Error("Nullable wrong for alt")
	}
}

func TestEquivalent(t *testing.T) {
	alpha := []string{"a", "b"}
	if !Equivalent(MustParse("a|b"), MustParse("b|a"), alpha) {
		t.Error("a|b should equal b|a")
	}
	if !Equivalent(MustParse("(a.b)*.a"), MustParse("a.(b.a)*"), alpha) {
		t.Error("(ab)*a should equal a(ba)*")
	}
	if Equivalent(MustParse("a*"), MustParse("a+"), alpha) {
		t.Error("a* should differ from a+")
	}
	if !Equivalent(MustParse("_"), MustParse("a|b"), alpha) {
		t.Error("wildcard over {a,b} should equal a|b")
	}
}
