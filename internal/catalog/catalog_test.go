package catalog

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// The registry is exercised with plain string specs/runs and a counting
// engine builder; the root package tests cover the wiring to real Engines.

func newTest() (*Registry[string, string, int], *atomic.Int64) {
	var builds atomic.Int64
	seq := atomic.Int64{}
	r := New[string, string, int](func(run string) int {
		builds.Add(1)
		return int(seq.Add(1))
	})
	return r, &builds
}

func TestRegistryBasics(t *testing.T) {
	g, _ := newTest()
	if err := g.PutSpec("w", "specW"); err != nil {
		t.Fatal(err)
	}
	if err := g.PutSpec("w", "again"); err == nil {
		t.Fatal("duplicate spec name should fail")
	}
	if err := g.PutSpec("", "x"); err == nil {
		t.Fatal("empty spec name should fail")
	}
	if err := g.PutRun("r1", "nope", "run1"); err == nil {
		t.Fatal("run with unknown spec should fail")
	}
	if err := g.PutRun("r1", "w", "run1"); err != nil {
		t.Fatal(err)
	}
	if err := g.PutRun("r1", "w", "dup"); err == nil {
		t.Fatal("duplicate run name should fail")
	}
	if err := g.PutRun("", "w", "x"); err == nil {
		t.Fatal("empty run name should fail")
	}

	if s, ok := g.Spec("w"); !ok || s != "specW" {
		t.Fatalf("Spec(w) = %q, %v", s, ok)
	}
	if r, ok := g.Run("r1"); !ok || r != "run1" {
		t.Fatalf("Run(r1) = %q, %v", r, ok)
	}
	if sp, ok := g.RunSpec("r1"); !ok || sp != "w" {
		t.Fatalf("RunSpec(r1) = %q, %v", sp, ok)
	}
	if _, ok := g.Run("ghost"); ok {
		t.Fatal("unknown run should not resolve")
	}
	if _, ok := g.Engine("ghost"); ok {
		t.Fatal("unknown engine should not resolve")
	}
	ns, nr := g.Len()
	if ns != 1 || nr != 1 {
		t.Fatalf("Len = (%d, %d), want (1, 1)", ns, nr)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	g, _ := newTest()
	for _, s := range []string{"zeta", "alpha", "mid"} {
		if err := g.PutSpec(s, s); err != nil {
			t.Fatal(err)
		}
	}
	got := g.SpecNames()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SpecNames = %v, want %v", got, want)
		}
	}
	for i, r := range []string{"r-c", "r-a", "r-b"} {
		spec := []string{"zeta", "alpha", "alpha"}[i]
		if err := g.PutRun(r, spec, r); err != nil {
			t.Fatal(err)
		}
	}
	runs := g.RunNames()
	if len(runs) != 3 || runs[0] != "r-a" || runs[2] != "r-c" {
		t.Fatalf("RunNames = %v", runs)
	}
	of := g.RunsOf("alpha")
	if len(of) != 2 || of[0] != "r-a" || of[1] != "r-b" {
		t.Fatalf("RunsOf(alpha) = %v", of)
	}
	if len(g.RunsOf("zeta")) != 1 {
		t.Fatalf("RunsOf(zeta) = %v", g.RunsOf("zeta"))
	}
}

// TestEngineBuiltOnce hammers one run's engine from many goroutines: the
// builder must fire exactly once and every caller must see the same engine.
func TestEngineBuiltOnce(t *testing.T) {
	g, builds := newTest()
	if err := g.PutSpec("w", "s"); err != nil {
		t.Fatal(err)
	}
	if err := g.PutRun("r", "w", "run"); err != nil {
		t.Fatal(err)
	}
	const goroutines = 64
	got := make([]int, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, ok := g.Engine("r")
			if !ok {
				t.Error("Engine(r) not found")
				return
			}
			got[i] = e
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builder fired %d times, want 1", n)
	}
	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatalf("goroutine %d saw engine %d, goroutine 0 saw %d", i, got[i], got[0])
		}
	}
}

// TestConcurrentRegistration races registrations against lookups and
// engine builds across many distinct names (run under -race in CI).
func TestConcurrentRegistration(t *testing.T) {
	g, builds := newTest()
	if err := g.PutSpec("w", "s"); err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("run-%d", i)
			if err := g.PutRun(name, "w", name); err != nil {
				t.Errorf("PutRun(%s): %v", name, err)
				return
			}
			if _, ok := g.Engine(name); !ok {
				t.Errorf("Engine(%s) missing right after PutRun", name)
			}
			g.RunNames()
			g.RunsOf("w")
		}(i)
	}
	wg.Wait()
	if _, nr := g.Len(); nr != n {
		t.Fatalf("registered %d runs, want %d", nr, n)
	}
	if b := builds.Load(); b != n {
		t.Fatalf("builder fired %d times, want %d", b, n)
	}
}

func TestReplaceRunSwapsEngine(t *testing.T) {
	g, builds := newTest()
	if err := g.PutSpec("w", "specW"); err != nil {
		t.Fatal(err)
	}
	if err := g.PutRun("r1", "w", "v0"); err != nil {
		t.Fatal(err)
	}
	if gen, ok := g.RunGeneration("r1"); !ok || gen != 0 {
		t.Fatalf("fresh generation = %d, %v", gen, ok)
	}
	e0, _ := g.Engine("r1")

	gen, ok := g.ReplaceRun("r1", "v1")
	if !ok || gen != 1 {
		t.Fatalf("ReplaceRun = %d, %v", gen, ok)
	}
	if r, _ := g.Run("r1"); r != "v1" {
		t.Fatalf("Run after replace = %q", r)
	}
	if sp, _ := g.RunSpec("r1"); sp != "w" {
		t.Fatalf("RunSpec after replace = %q; the binding must survive", sp)
	}
	e1, _ := g.Engine("r1")
	if e1 == e0 {
		t.Fatal("replace must drop the old engine")
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2", builds.Load())
	}
	// Further lookups reuse the rebuilt engine.
	if e2, _ := g.Engine("r1"); e2 != e1 {
		t.Fatal("engine rebuilt twice after one replace")
	}
	if _, ok := g.ReplaceRun("ghost", "x"); ok {
		t.Fatal("ReplaceRun of an unknown run must fail")
	}
}

func TestDropEngineKeepsRun(t *testing.T) {
	g, builds := newTest()
	if err := g.PutSpec("w", "specW"); err != nil {
		t.Fatal(err)
	}
	if err := g.PutRun("r1", "w", "v0"); err != nil {
		t.Fatal(err)
	}
	e0, _ := g.Engine("r1")
	if !g.DropEngine("r1") {
		t.Fatal("DropEngine failed")
	}
	if r, ok := g.Run("r1"); !ok || r != "v0" {
		t.Fatalf("run vanished on DropEngine: %q, %v", r, ok)
	}
	if gen, _ := g.RunGeneration("r1"); gen != 0 {
		t.Fatalf("DropEngine changed the generation to %d", gen)
	}
	e1, _ := g.Engine("r1")
	if e1 == e0 {
		t.Fatal("dropped engine came back")
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2", builds.Load())
	}
	if g.DropEngine("ghost") {
		t.Fatal("DropEngine of an unknown run must fail")
	}
}

func TestSetRunGeneration(t *testing.T) {
	g, _ := newTest()
	if err := g.PutSpec("w", "specW"); err != nil {
		t.Fatal(err)
	}
	if err := g.PutRun("r1", "w", "v0"); err != nil {
		t.Fatal(err)
	}
	if !g.SetRunGeneration("r1", 7) {
		t.Fatal("SetRunGeneration failed")
	}
	if gen, _ := g.RunGeneration("r1"); gen != 7 {
		t.Fatalf("generation = %d, want 7", gen)
	}
	if gen, _ := g.ReplaceRun("r1", "v1"); gen != 8 {
		t.Fatalf("generation after replace = %d, want 8", gen)
	}
	if g.SetRunGeneration("ghost", 1) {
		t.Fatal("SetRunGeneration of an unknown run must fail")
	}
}
