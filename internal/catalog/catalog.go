// Package catalog provides the concurrency-safe registry underneath the
// root package's Catalog: named specifications, named runs (each bound to
// one specification), and one lazily-built engine per run.
//
// The registry is generic over the spec, run and engine types so it can
// serve the root package without importing it (the root package imports
// this one). The engine builder runs at most once per run — concurrent
// first lookups of one run block on a single build, sync.Once-style —
// and builds execute outside the registry lock, so a slow engine build
// never stalls lookups of other runs.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrExists marks a registration under a name that is already taken
// (match with errors.Is to distinguish duplicates from invalid input).
var ErrExists = errors.New("name already registered")

// Registry is a concurrency-safe map of named specs and named runs. Each
// run belongs to exactly one registered spec and owns at most one engine,
// built on first demand by the constructor-supplied build function. Names
// are opaque non-empty strings; registration is first-writer-wins (a
// duplicate name is an error, never a silent replace).
type Registry[S, R, E any] struct {
	build func(R) E

	//provrpq:lockrank registryMu 20
	mu    sync.RWMutex
	specs map[string]S
	runs  map[string]*runEntry[R, E]
}

// runEntry is one registered run. once guards the engine build so
// concurrent Engine calls construct it exactly once. spec, run and the
// engine identity are immutable after insertion: ReplaceRun and DropEngine
// swap in a fresh entry rather than mutating this one, so a reader that
// resolved an entry before the swap keeps a fully consistent (run, engine)
// view while new lookups see the replacement. gen is the one mutable
// field — every access is under the registry mutex, and it is never read
// through an entry held outside the lock.
type runEntry[R, E any] struct {
	spec string
	run  R
	gen  int // growth generation: batches applied since registration or compaction
	once sync.Once
	eng  E
}

// New returns an empty registry whose engines are built by build.
func New[S, R, E any](build func(R) E) *Registry[S, R, E] {
	return &Registry[S, R, E]{
		build: build,
		specs: map[string]S{},
		runs:  map[string]*runEntry[R, E]{},
	}
}

// PutSpec registers a specification under name.
func (g *Registry[S, R, E]) PutSpec(name string, s S) error {
	if name == "" {
		return fmt.Errorf("catalog: empty specification name")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.specs[name]; ok {
		return fmt.Errorf("catalog: specification %q: %w", name, ErrExists)
	}
	g.specs[name] = s
	return nil
}

// Spec returns the specification registered under name.
func (g *Registry[S, R, E]) Spec(name string) (S, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s, ok := g.specs[name]
	return s, ok
}

// SpecNames returns all registered specification names, sorted.
func (g *Registry[S, R, E]) SpecNames() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.specs))
	for n := range g.specs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PutRun registers a run under name, bound to the named specification,
// which must already be registered.
func (g *Registry[S, R, E]) PutRun(name, spec string, r R) error {
	if name == "" {
		return fmt.Errorf("catalog: empty run name")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.specs[spec]; !ok {
		return fmt.Errorf("catalog: run %q references unregistered specification %q", name, spec)
	}
	if _, ok := g.runs[name]; ok {
		return fmt.Errorf("catalog: run %q: %w", name, ErrExists)
	}
	g.runs[name] = &runEntry[R, E]{spec: spec, run: r}
	return nil
}

// HasRun reports whether a run is registered under name.
func (g *Registry[S, R, E]) HasRun(name string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.runs[name]
	return ok
}

// Run returns the run registered under name.
func (g *Registry[S, R, E]) Run(name string) (R, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	en, ok := g.runs[name]
	if !ok {
		var zero R
		return zero, false
	}
	return en.run, true
}

// RunWithGeneration returns the run registered under name together with
// its growth generation, read under one lock acquisition. Callers that
// need the pair to be mutually consistent — e.g. a standing-query
// registration snapshotting "version V's result" before applying deltas
// for versions > V — must use this rather than Run + RunGeneration in
// sequence, which an interleaved ReplaceRun would desynchronize.
func (g *Registry[S, R, E]) RunWithGeneration(name string) (R, int, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	en, ok := g.runs[name]
	if !ok {
		var zero R
		return zero, 0, false
	}
	return en.run, en.gen, true
}

// RunSpec returns the specification name a run is bound to.
func (g *Registry[S, R, E]) RunSpec(name string) (string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	en, ok := g.runs[name]
	if !ok {
		return "", false
	}
	return en.spec, true
}

// RunNames returns all registered run names, sorted.
func (g *Registry[S, R, E]) RunNames() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.runs))
	for n := range g.runs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RunsOf returns the names of the runs bound to the named specification,
// sorted.
func (g *Registry[S, R, E]) RunsOf(spec string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	for n, en := range g.runs {
		if en.spec == spec {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// ReplaceRun atomically swaps the run registered under name for a new
// version and bumps its growth generation. The previous entry's lazily
// built engine is dropped with it — the next Engine call builds over the
// new run — while a caller that already holds the old engine keeps serving
// the old, internally consistent version. Returns the new generation, or
// false if no run is registered under name.
func (g *Registry[S, R, E]) ReplaceRun(name string, r R) (gen int, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	en, ok := g.runs[name]
	if !ok {
		return 0, false
	}
	g.runs[name] = &runEntry[R, E]{spec: en.spec, run: r, gen: en.gen + 1}
	return en.gen + 1, true
}

// DropEngine releases the engine built for the named run while keeping the
// run registered — the evict/rebuild hook: the next Engine call rebuilds
// from the run. A build already in flight completes into the discarded
// entry and is garbage once its callers let go. Returns false if no run is
// registered under name.
func (g *Registry[S, R, E]) DropEngine(name string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	en, ok := g.runs[name]
	if !ok {
		return false
	}
	g.runs[name] = &runEntry[R, E]{spec: en.spec, run: en.run, gen: en.gen}
	return true
}

// RunGeneration reports how many growth batches have been applied to the
// named run since it was registered (via ReplaceRun or SetRunGeneration).
func (g *Registry[S, R, E]) RunGeneration(name string) (int, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	en, ok := g.runs[name]
	if !ok {
		return 0, false
	}
	return en.gen, true
}

// SetRunGeneration overrides the named run's growth generation — used by a
// boot-from-store to account for batches replayed into the run before it
// was registered, and by compaction to reset the count. The run and any
// built engine are untouched (the generation is bookkeeping, not content;
// see runEntry for why the in-place write is safe). Returns false if no
// run is registered under name.
func (g *Registry[S, R, E]) SetRunGeneration(name string, gen int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	en, ok := g.runs[name]
	if !ok {
		return false
	}
	en.gen = gen
	return true
}

// Engine returns the named run's engine, building it on first use. The
// build runs outside the registry lock; concurrent callers of one run
// share a single build and all receive the same engine.
func (g *Registry[S, R, E]) Engine(name string) (E, bool) {
	g.mu.RLock()
	en, ok := g.runs[name]
	g.mu.RUnlock()
	if !ok {
		var zero E
		return zero, false
	}
	en.once.Do(func() { en.eng = g.build(en.run) })
	return en.eng, true
}

// Len reports the number of registered specifications and runs.
func (g *Registry[S, R, E]) Len() (specs, runs int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.specs), len(g.runs)
}
