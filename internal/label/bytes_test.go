package label

import (
	"math/rand"
	"testing"
)

// TestCursorMatchesDecode walks random encodings entry-by-entry with the
// cursor and checks it yields exactly what the reference decoder yields —
// the cursor is the zero-copy path, Decode the reference.
func TestCursorMatchesDecode(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		l := randLabel(r)
		buf := Bytes(l.Encode())
		want, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		c := NewCursor(buf)
		var got Label
		for {
			e, ok := c.Next()
			if !ok {
				break
			}
			got = append(got, e)
		}
		if err := c.Err(); err != nil {
			t.Fatalf("cursor error on valid encoding %v: %v", l, err)
		}
		if !Equal(want, got) {
			t.Fatalf("cursor decoded %v, reference decoded %v", got, want)
		}
	}
}

func TestCursorRest(t *testing.T) {
	l := Label{Prod(1, 2), Rec(0, 1, 7), Prod(3, 0)}
	buf := Bytes(l.Encode())
	c := NewCursor(buf)
	if _, ok := c.Next(); !ok {
		t.Fatal("Next failed")
	}
	rest, err := c.Rest().Decode()
	if err != nil {
		t.Fatalf("Rest().Decode(): %v", err)
	}
	if !Equal(rest, l[1:]) {
		t.Fatalf("Rest decoded %v, want %v", rest, l[1:])
	}
}

func TestCursorTruncated(t *testing.T) {
	l := Label{Rec(5, 2, 1000000)}
	buf := l.Encode()
	for n := 1; n < len(buf); n++ {
		c := NewCursor(buf[:n])
		for {
			if _, ok := c.Next(); !ok {
				break
			}
		}
		if c.Err() == nil {
			t.Fatalf("cursor accepted truncated encoding %d/%d bytes", n, len(buf))
		}
		if _, err := Decode(buf[:n]); err == nil {
			t.Fatalf("Decode accepted truncated encoding %d/%d bytes", n, len(buf))
		}
	}
}

func TestCompareBytesMatchesCompare(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	sign := func(x int) int {
		switch {
		case x < 0:
			return -1
		case x > 0:
			return 1
		}
		return 0
	}
	for i := 0; i < 2000; i++ {
		a, b := randLabel(r), randLabel(r)
		if i%10 == 0 {
			b = append(Label(nil), a...) // force equal pairs into the mix
		}
		want := sign(Compare(a, b))
		got := sign(CompareBytes(a.Encode(), b.Encode()))
		if want != got {
			t.Fatalf("CompareBytes(%v, %v) sign = %d, Compare sign = %d", a, b, got, want)
		}
		if eq := EqualBytes(a.Encode(), b.Encode()); eq != (want == 0) {
			t.Fatalf("EqualBytes(%v, %v) = %v, want %v", a, b, eq, want == 0)
		}
	}
}

func TestDecodeInto(t *testing.T) {
	l := Label{Prod(1, 2), Rec(0, 1, 7)}
	scratch := make(Label, 0, 8)
	got, err := DecodeInto(scratch, l.Encode())
	if err != nil {
		t.Fatalf("DecodeInto: %v", err)
	}
	if !Equal(got, l) {
		t.Fatalf("DecodeInto = %v, want %v", got, l)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatalf("DecodeInto did not reuse the provided backing array")
	}
	// Appending onto a non-empty prefix preserves it.
	got2, err := DecodeInto(got, l.Encode())
	if err != nil {
		t.Fatalf("DecodeInto(append): %v", err)
	}
	if len(got2) != 2*len(l) || !Equal(got2[len(l):], l) {
		t.Fatalf("DecodeInto append = %v", got2)
	}
}

// BenchmarkDecode backs the allocation fix: Decode preallocates from the
// byte-length estimate, so a decode is one allocation (the entry slice)
// instead of log-many grows.
func BenchmarkDecode(b *testing.B) {
	l := make(Label, 64)
	for i := range l {
		if i%3 == 0 {
			l[i] = Rec(i%4, i%3, 1+i*37)
		} else {
			l[i] = Prod(i%8, i%5)
		}
	}
	buf := l.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCursor is the zero-copy counterpart: walking the same encoding
// through the cursor allocates nothing.
func BenchmarkCursor(b *testing.B) {
	l := make(Label, 64)
	for i := range l {
		l[i] = Prod(i%8, i%5)
	}
	buf := Bytes(l.Encode())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCursor(buf)
		for {
			if _, ok := c.Next(); !ok {
				break
			}
		}
		if c.Err() != nil {
			b.Fatal(c.Err())
		}
	}
}
