// Package label implements the derivation-based node labels ψV of the
// paper's Section II-B (reconstructing the scheme of Bao, Davidson and Milo,
// PVLDB 2012 — reference [4]).
//
// A node of a run is labeled with the sequence of compressed-parse-tree edge
// labels from the root to the node:
//
//   - a production entry (k, i): the parent was expanded with production k
//     and the node is (derived under) the i-th body node;
//   - a recursion entry (s, t, i): the parent is the recursive node of cycle
//     s entered via cycle edge t, and the node is (derived under) the i-th
//     iteration of the unfolded cycle.
//
// Labels are assigned once, when a node is derived, and never change
// (dynamic labeling). Because compressed-parse-tree depth is bounded by the
// specification size and entry components are bounded by the specification
// size or the recursion depth, the varint encoding is O(|G| · log n) bits —
// the paper's "logarithmic in the run size" for fixed G.
package label

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Entry is one compressed-parse-tree edge label.
type Entry struct {
	// Rec distinguishes recursion entries (s,t,i) from production entries (k,i).
	Rec bool
	// X is the production index k, or the cycle id s.
	X int
	// Y is the body position i (production entries), or the entry edge t
	// (recursion entries).
	Y int
	// Z is the iteration number i >= 1 for recursion entries; unused otherwise.
	Z int
}

// Prod returns a production entry (k, i).
func Prod(k, i int) Entry { return Entry{X: k, Y: i} }

// Rec returns a recursion entry (s, t, iter).
func Rec(s, t, iter int) Entry { return Entry{Rec: true, X: s, Y: t, Z: iter} }

// String renders the entry in the paper's notation.
func (e Entry) String() string {
	if e.Rec {
		return fmt.Sprintf("(%d,%d,%d)", e.X, e.Y, e.Z)
	}
	return fmt.Sprintf("(%d,%d)", e.X, e.Y)
}

// Label is the full root-to-node entry sequence ψV(v). Once attached to
// a node it is shared by every reader of the run, so it is frozen after
// construction: mutate via Clone.
//
//provrpq:immutable
type Label []Entry

// String renders the label in the paper's notation, e.g. "(1,3)(4,1)".
func (l Label) String() string {
	var b strings.Builder
	for _, e := range l {
		b.WriteString(e.String())
	}
	return b.String()
}

// Clone returns an independent copy.
func (l Label) Clone() Label { return append(Label(nil), l...) }

// Equal reports whether two labels are identical.
func Equal(a, b Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Compare totally orders labels lexicographically by entries (a strict
// prefix sorts first). Entries compare by (Rec, X, Y, Z). Sorting a node
// list with Compare groups common prefixes consecutively, which lets the
// all-pairs algorithms build the tree representation in linear time
// (Section IV-A, "tree representation of a list of nodes").
func Compare(a, b Label) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := compareEntry(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func compareEntry(a, b Entry) int {
	if a.Rec != b.Rec {
		if !a.Rec {
			return -1
		}
		return 1
	}
	switch {
	case a.X != b.X:
		return sign(a.X - b.X)
	case a.Y != b.Y:
		return sign(a.Y - b.Y)
	case a.Z != b.Z:
		return sign(a.Z - b.Z)
	}
	return 0
}

func sign(d int) int {
	switch {
	case d < 0:
		return -1
	case d > 0:
		return 1
	}
	return 0
}

// LCP returns the length of the longest common prefix of a and b. The
// divergence entries a[LCP], b[LCP] (when both exist) identify the least
// common ancestor in the compressed parse tree — the core step of the
// constant-time decoding (Section II-B "Decoding").
func LCP(a, b Label) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Encode packs the label into a compact varint byte string: per entry, a
// head varint X*2 + recBit, then Y, then (recursion only) Z.
func (l Label) Encode() []byte {
	return l.AppendEncode(make([]byte, 0, len(l)*3))
}

// Decode parses an Encode result. An entry occupies at least two bytes, so
// the entry count is bounded by len(buf)/2 and the label is allocated in
// one shot instead of growing by repeated appends.
func Decode(buf []byte) (Label, error) {
	if len(buf) == 0 {
		return nil, nil
	}
	return DecodeInto(make(Label, 0, len(buf)/2), buf)
}

// DecodeInto appends the encoded entries to dst (which may be a reused
// scratch slice, typically dst[:0]) and returns the extended label.
func DecodeInto(dst Label, buf []byte) (Label, error) {
	for len(buf) > 0 {
		head, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("label: bad head varint")
		}
		buf = buf[n:]
		e := Entry{Rec: head&1 == 1, X: int(head >> 1)}
		y, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("label: truncated entry")
		}
		buf = buf[n:]
		e.Y = int(y)
		if e.Rec {
			z, n := binary.Uvarint(buf)
			if n <= 0 {
				return nil, fmt.Errorf("label: truncated recursion entry")
			}
			buf = buf[n:]
			e.Z = int(z)
		}
		dst = append(dst, e)
	}
	return dst, nil
}
