package label

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Bytes is the varint encoding of a Label — exactly the byte string Encode
// produces — viewed without materializing []Entry. The columnar run format
// stores every node's label in one contiguous column of such strings, and
// the pairwise decoders walk them in place with a Cursor, so a reachability
// answer touches only cache-resident bytes and allocates nothing.
type Bytes []byte

// Cursor iterates the entries of an encoded label in place. The zero
// Cursor is exhausted; obtain one with NewCursor. A malformed tail
// (truncated varint, missing component) ends the iteration and is
// reported by Err.
type Cursor struct {
	buf Bytes
	err error
}

// NewCursor returns a cursor positioned at the label's first entry.
func NewCursor(b Bytes) Cursor { return Cursor{buf: b} }

// Next decodes and consumes one entry. It returns ok=false at the end of
// the label or on a malformed encoding (the two are distinguished by Err).
func (c *Cursor) Next() (Entry, bool) {
	if len(c.buf) == 0 || c.err != nil {
		return Entry{}, false
	}
	head, n := binary.Uvarint(c.buf)
	if n <= 0 {
		c.err = fmt.Errorf("label: bad head varint")
		return Entry{}, false
	}
	rest := c.buf[n:]
	e := Entry{Rec: head&1 == 1, X: int(head >> 1)}
	y, n := binary.Uvarint(rest)
	if n <= 0 {
		c.err = fmt.Errorf("label: truncated entry")
		return Entry{}, false
	}
	rest = rest[n:]
	e.Y = int(y)
	if e.Rec {
		z, n := binary.Uvarint(rest)
		if n <= 0 {
			c.err = fmt.Errorf("label: truncated recursion entry")
			return Entry{}, false
		}
		rest = rest[n:]
		e.Z = int(z)
	}
	c.buf = rest
	return e, true
}

// Err reports whether the iteration stopped on a malformed encoding
// rather than at the end of the label.
func (c *Cursor) Err() error { return c.err }

// Rest returns the not-yet-consumed tail of the encoding — the suffix
// starting at the entry the next Next call would decode.
func (c *Cursor) Rest() Bytes { return c.buf }

// Done reports whether the cursor consumed the whole label cleanly.
func (c *Cursor) Done() bool { return len(c.buf) == 0 && c.err == nil }

// Decode materializes the encoded label (the reference decoder the cursor
// is differential-tested against).
func (b Bytes) Decode() (Label, error) { return Decode(b) }

// CompareBytes totally orders two encoded labels in entry order — the
// exact order Compare defines on the materialized labels — by walking both
// encodings in lockstep, allocating nothing. A malformed encoding sorts as
// if it ended at its last whole entry (encodings from Encode or a
// validated column are never malformed).
func CompareBytes(a, b Bytes) int {
	ca, cb := NewCursor(a), NewCursor(b)
	for {
		ea, oka := ca.Next()
		eb, okb := cb.Next()
		switch {
		case !oka && !okb:
			return 0
		case !oka:
			return -1
		case !okb:
			return 1
		}
		if c := compareEntry(ea, eb); c != 0 {
			return c
		}
	}
}

// EqualBytes reports whether two encoded labels decode to identical
// labels. Identical bytes decode identically, so the common case is one
// memcmp; encodings that differ in bytes fall back to the lockstep walk
// (binary.Uvarint accepts overlong varints, so distinct byte strings can
// encode equal entries).
func EqualBytes(a, b Bytes) bool {
	if bytes.Equal(a, b) {
		return true
	}
	return CompareBytes(a, b) == 0
}

// AppendEncode appends the label's varint encoding to dst and returns the
// extended slice — Encode, minus the allocation, for column builders.
func (l Label) AppendEncode(dst []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	put := func(v int) {
		n := binary.PutUvarint(tmp[:], uint64(v))
		dst = append(dst, tmp[:n]...)
	}
	for _, e := range l {
		head := e.X * 2
		if e.Rec {
			head++
		}
		put(head)
		put(e.Y)
		if e.Rec {
			put(e.Z)
		}
	}
	return dst
}
