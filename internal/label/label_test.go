package label

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestStringNotation(t *testing.T) {
	l := Label{Prod(1, 3), Prod(4, 1)}
	if got := l.String(); got != "(1,3)(4,1)" {
		t.Errorf("String = %q, want (1,3)(4,1)", got)
	}
	l2 := Label{Prod(1, 2), Rec(1, 1, 2), Prod(2, 3)}
	if got := l2.String(); got != "(1,2)(1,1,2)(2,3)" {
		t.Errorf("String = %q", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Label{
		nil,
		{Prod(0, 0)},
		{Prod(1, 2), Rec(0, 1, 7), Prod(3, 0)},
		{Rec(5, 2, 1000000)},
		{Prod(127, 128), Prod(128, 127)},
	}
	for _, l := range cases {
		back, err := Decode(l.Encode())
		if err != nil {
			t.Fatalf("Decode(%v): %v", l, err)
		}
		if !Equal(l, back) {
			t.Errorf("round trip %v -> %v", l, back)
		}
	}
}

func randLabel(r *rand.Rand) Label {
	n := r.Intn(6)
	l := make(Label, n)
	for i := range l {
		if r.Intn(3) == 0 {
			l[i] = Rec(r.Intn(4), r.Intn(3), 1+r.Intn(50))
		} else {
			l[i] = Prod(r.Intn(8), r.Intn(5))
		}
	}
	return l
}

func TestPropertyEncodeDecode(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		l := randLabel(r)
		back, err := Decode(l.Encode())
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !Equal(l, back) {
			t.Fatalf("round trip %v -> %v", l, back)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	// Truncated after head.
	l := Label{Prod(1, 2)}
	enc := l.Encode()
	if _, err := Decode(enc[:1]); err == nil {
		t.Error("expected error for truncated entry")
	}
	// Truncated recursion entry.
	lr := Label{Rec(1, 2, 3)}
	encr := lr.Encode()
	if _, err := Decode(encr[:len(encr)-1]); err == nil {
		t.Error("expected error for truncated recursion entry")
	}
}

func TestCompareOrder(t *testing.T) {
	a := Label{Prod(1, 2)}
	b := Label{Prod(1, 2), Prod(2, 1)}
	if Compare(a, b) >= 0 {
		t.Error("prefix should sort first")
	}
	if Compare(b, a) <= 0 {
		t.Error("antisymmetry violated")
	}
	if Compare(a, a) != 0 {
		t.Error("reflexivity violated")
	}
	// Production entries sort before recursion entries with same numbers.
	c := Label{Prod(1, 1)}
	d := Label{Rec(1, 1, 1)}
	if Compare(c, d) >= 0 {
		t.Error("prod entry should sort before rec entry")
	}
	// Iteration number is significant.
	e := Label{Rec(0, 0, 1)}
	f := Label{Rec(0, 0, 2)}
	if Compare(e, f) >= 0 {
		t.Error("iterations should order recursion entries")
	}
}

func TestPropertyCompareTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var ls []Label
	for i := 0; i < 200; i++ {
		ls = append(ls, randLabel(r))
	}
	sort.Slice(ls, func(i, j int) bool { return Compare(ls[i], ls[j]) < 0 })
	for i := 0; i+1 < len(ls); i++ {
		if Compare(ls[i], ls[i+1]) > 0 {
			t.Fatalf("sort order broken at %d", i)
		}
		// Transitivity spot check via sortedness is implied; verify
		// consistency with equality.
		if Compare(ls[i], ls[i+1]) == 0 && !Equal(ls[i], ls[i+1]) {
			t.Fatalf("compare==0 but not equal: %v vs %v", ls[i], ls[i+1])
		}
	}
}

func TestLCP(t *testing.T) {
	cases := []struct {
		a, b Label
		want int
	}{
		{Label{Prod(1, 2), Prod(2, 1)}, Label{Prod(1, 2), Prod(2, 3)}, 1},
		{Label{Prod(1, 2)}, Label{Prod(1, 2)}, 1},
		{Label{Prod(1, 2)}, Label{Prod(1, 3)}, 0},
		{nil, Label{Prod(1, 2)}, 0},
		{
			Label{Prod(1, 2), Rec(1, 1, 1), Prod(2, 1)},
			Label{Prod(1, 2), Rec(1, 1, 2), Prod(2, 3)},
			1,
		},
	}
	for _, c := range cases {
		if got := LCP(c.a, c.b); got != c.want {
			t.Errorf("LCP(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestQuickCompareSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by uint8) bool {
		a := Label{Prod(int(ax), int(ay))}
		b := Label{Prod(int(bx), int(by))}
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	l := Label{Prod(1, 2), Prod(3, 4)}
	c := l.Clone()
	c[0] = Prod(9, 9)
	if l[0] != Prod(1, 2) {
		t.Error("Clone aliased the original")
	}
}

func TestEncodingCompact(t *testing.T) {
	// Small entries take 2-3 bytes each.
	l := Label{Prod(1, 2), Prod(3, 4), Rec(0, 1, 9)}
	if n := len(l.Encode()); n > 8 {
		t.Errorf("encoding of %v is %d bytes, want <= 8", l, n)
	}
}
