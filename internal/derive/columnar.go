package derive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"unsafe"

	"provrpq/internal/label"
	"provrpq/internal/wf"
)

// Columnar payload format ("RPQC", version 1)
//
// A run (or growth batch) is stored as a set of contiguous columns rather
// than per-node JSON objects, so opening a persisted run is a handful of
// bounds-checked slice views instead of a parse-and-allocate pass over
// every node. All integers are little-endian uint32; every section starts
// 4-byte aligned (variable-length blobs are zero-padded to 4 bytes).
//
//	offset  size          field
//	0       4             magic "RPQC"
//	4       4             format version (1)
//	8       4             kind: 1 = run, 2 = growth batch
//	12      4             node count N
//	16      4             edge count E
//	20      4             module dictionary size M
//	24      4             tag dictionary size T
//	28      4             reserved (0)
//	32      ...           sections, in order:
//	        4*(M+1)+blob    module dictionary (offsets + name blob + pad)
//	        4*N             node module column (dictionary indices)
//	        4*(N+1)+blob    node name column (offsets + blob + pad)
//	        4*(N+1)+blob    label column (offsets + packed varint entries + pad)
//	        4*E             edge source column
//	        4*E             edge target column
//	        4*E             edge tag column (dictionary indices)
//	        4*(T+1)+blob    tag dictionary (offsets + blob + pad)
//	last    4             CRC-32C (Castagnoli) of everything before it
//
// The label column holds each node's label.Label.Encode bytes
// back-to-back; node n's encoding is labelCol[offs[n]:offs[n+1]]. This is
// exactly the Run.labelCol / Run.labelOffs representation, so encoding a
// finished run copies the column verbatim and opening a payload points the
// run straight into the (possibly mmapped) file.
//
// The trailing checksum detects torn or bit-rotted writes; it does NOT
// substitute for validation — a hostile payload can carry a valid checksum
// — so both decode paths fully bounds-check every offset, index and label
// entry against the specification before the run is used.
//
// Decoded runs and batches alias the payload: node names, edge tags and
// the label column are zero-copy views into data, which therefore must not
// be mutated afterwards (an mmapped payload is mapped read-only and never
// unmapped).
const (
	colMagic      = "RPQC"
	colVersion    = 1
	colKindRun    = 1
	colKindBatch  = 2
	colHeaderSize = 32
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// IsColumnar reports whether data starts with the columnar payload magic.
// The magic is not valid JSON, so the two on-disk formats are disjoint and
// every decoder can sniff.
func IsColumnar(data []byte) bool {
	return len(data) >= len(colMagic) && string(data[:len(colMagic)]) == colMagic
}

// nativeLE reports whether the host is little-endian, which gates the
// zero-copy uint32 column views (the payload is little-endian by
// definition; a big-endian host decodes the columns by copying).
var nativeLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// u32view reinterprets b (length 4*n) as n uint32s, zero-copy when the
// host is little-endian and b is 4-aligned, copying otherwise. The view's
// cap equals its length, so appending to it (AppendEdges growing the label
// offsets) reallocates instead of writing through to the payload.
func u32view(b []byte, n int) []uint32 {
	if n == 0 {
		return nil
	}
	if nativeLE && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// viewString returns b as a string without copying. The string aliases b.
func viewString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// ---------------------------------------------------------------------------
// encoding

type colWriter struct{ buf []byte }

func (w *colWriter) u32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

func (w *colWriter) pad4() {
	for len(w.buf)%4 != 0 {
		w.buf = append(w.buf, 0)
	}
}

// dict writes an offsets-plus-blob string dictionary section.
func (w *colWriter) dict(names []string) error {
	total := 0
	for _, s := range names {
		total += len(s)
		if total > math.MaxUint32 {
			return fmt.Errorf("derive: columnar: dictionary blob exceeds 4 GiB")
		}
	}
	off := uint32(0)
	w.u32(0)
	for _, s := range names {
		off += uint32(len(s))
		w.u32(off)
	}
	for _, s := range names {
		w.buf = append(w.buf, s...)
	}
	w.pad4()
	return nil
}

// EncodeColumnar serializes a run as a columnar payload. The label column
// is taken verbatim from the run when present (finish builds it for every
// derived or decoded run), so encode performs no per-entry work on labels.
func EncodeColumnar(r *Run) ([]byte, error) {
	col, offs := r.labelCol, r.labelOffs
	if offs == nil {
		// A hand-assembled run that never went through finish.
		offs = make([]uint32, len(r.Nodes)+1)
		col = make([]byte, 0, len(r.Nodes)*4)
		for i := range r.Nodes {
			col = r.Nodes[i].Label.AppendEncode(col)
			if len(col) > math.MaxUint32 {
				return nil, fmt.Errorf("derive: columnar: label column exceeds 4 GiB")
			}
			offs[i+1] = uint32(len(col))
		}
	}
	return encodeColumnar(r.Spec, colKindRun, len(r.Nodes),
		func(i int) wf.ModuleID { return r.Nodes[i].Module },
		func(i int) string { return r.Nodes[i].Name },
		offs, col, r.Edges)
}

// EncodeBatchColumnar serializes a growth batch as a columnar payload
// (kind 2). Batch edge endpoints use the grown run's numbering and are
// stored as-is; they are range-checked by AppendEdges against the run the
// batch finally applies to, exactly like the JSON batch codec.
func EncodeBatchColumnar(spec *wf.Spec, b Batch) ([]byte, error) {
	offs := make([]uint32, len(b.Nodes)+1)
	col := make([]byte, 0, len(b.Nodes)*4)
	for i := range b.Nodes {
		col = b.Nodes[i].Label.AppendEncode(col)
		if len(col) > math.MaxUint32 {
			return nil, fmt.Errorf("derive: columnar: label column exceeds 4 GiB")
		}
		offs[i+1] = uint32(len(col))
	}
	return encodeColumnar(spec, colKindBatch, len(b.Nodes),
		func(i int) wf.ModuleID { return b.Nodes[i].Module },
		func(i int) string { return b.Nodes[i].Name },
		offs, col, b.Edges)
}

func encodeColumnar(spec *wf.Spec, kind uint32, n int,
	module func(int) wf.ModuleID, name func(int) string,
	labelOffs []uint32, labelCol []byte, edges []Edge) ([]byte, error) {

	if n > math.MaxUint32 || len(edges) > math.MaxUint32 {
		return nil, fmt.Errorf("derive: columnar: run too large for the format (%d nodes, %d edges)", n, len(edges))
	}

	// Dictionaries in first-use order, so encoding is deterministic.
	modIdx := make(map[wf.ModuleID]uint32)
	var modNames []string
	nodeMod := make([]uint32, n)
	nameLen := 0
	for i := 0; i < n; i++ {
		m := module(i)
		idx, ok := modIdx[m]
		if !ok {
			idx = uint32(len(modNames))
			modIdx[m] = idx
			modNames = append(modNames, spec.Name(m))
		}
		nodeMod[i] = idx
		nameLen += len(name(i))
		if nameLen > math.MaxUint32 {
			return nil, fmt.Errorf("derive: columnar: node name column exceeds 4 GiB")
		}
	}
	tagIdx := make(map[string]uint32)
	var tagNames []string
	for i, e := range edges {
		if _, ok := tagIdx[e.Tag]; !ok {
			tagIdx[e.Tag] = uint32(len(tagNames))
			tagNames = append(tagNames, e.Tag)
		}
		if e.From < 0 || int64(e.From) > math.MaxUint32 || e.To < 0 || int64(e.To) > math.MaxUint32 {
			return nil, fmt.Errorf("derive: columnar: edge %d endpoint out of uint32 range", i)
		}
	}

	est := colHeaderSize + 4 +
		4*(len(modNames)+1) + 4*n + // module dict offs + node module column
		4*(n+1) + nameLen + // name column
		4*(n+1) + len(labelCol) + // label column
		12*len(edges) + // edge columns
		4*(len(tagNames)+1) + 64 // tag dict offs + blob slack + pads
	w := &colWriter{buf: make([]byte, 0, est)}

	w.buf = append(w.buf, colMagic...)
	w.u32(colVersion)
	w.u32(kind)
	w.u32(uint32(n))
	w.u32(uint32(len(edges)))
	w.u32(uint32(len(modNames)))
	w.u32(uint32(len(tagNames)))
	w.u32(0) // reserved

	if err := w.dict(modNames); err != nil {
		return nil, err
	}
	for _, m := range nodeMod {
		w.u32(m)
	}
	nameOff := uint32(0)
	w.u32(0)
	for i := 0; i < n; i++ {
		nameOff += uint32(len(name(i)))
		w.u32(nameOff)
	}
	for i := 0; i < n; i++ {
		w.buf = append(w.buf, name(i)...)
	}
	w.pad4()
	if len(labelCol) > math.MaxUint32 {
		return nil, fmt.Errorf("derive: columnar: label column exceeds 4 GiB")
	}
	for _, o := range labelOffs {
		w.u32(o)
	}
	w.buf = append(w.buf, labelCol...)
	w.pad4()
	for _, e := range edges {
		w.u32(uint32(e.From))
	}
	for _, e := range edges {
		w.u32(uint32(e.To))
	}
	for _, e := range edges {
		w.u32(tagIdx[e.Tag])
	}
	if err := w.dict(tagNames); err != nil {
		return nil, err
	}

	w.u32(crc32.Checksum(w.buf, castagnoli))
	return w.buf, nil
}

// ---------------------------------------------------------------------------
// decoding

// colReader cursors over a columnar payload. Its data field aliases the
// caller's buffer — possibly a read-only mmap — so views it hands out are
// cap-clamped (take) and nothing writes through them.
//
//provrpq:trusted
type colReader struct {
	data []byte // sections only: past the header, before the checksum
	off  int
}

func (r *colReader) remaining() int { return len(r.data) - r.off }

// take returns the next n bytes as a cap-clamped view (so appending to a
// column derived from it reallocates instead of scribbling past it).
func (r *colReader) take(n int, what string) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("derive: columnar: truncated payload reading %s (%d bytes needed, %d left)", what, n, r.remaining())
	}
	b := r.data[r.off : r.off+n : r.off+n]
	r.off += n
	return b, nil
}

func (r *colReader) u32s(n int, what string) ([]uint32, error) {
	if n > r.remaining()/4 {
		return nil, fmt.Errorf("derive: columnar: truncated payload reading %s (%d entries needed, %d bytes left)", what, n, r.remaining())
	}
	b, err := r.take(4*n, what)
	if err != nil {
		return nil, err
	}
	return u32view(b, n), nil
}

func (r *colReader) skipPad(blobLen int, what string) error {
	pad := (4 - blobLen%4) % 4
	_, err := r.take(pad, what+" padding")
	return err
}

// checkOffs validates an offsets array (starts at 0, nondecreasing) and
// returns the blob length it describes.
func checkOffs(offs []uint32, what string) (int, error) {
	if offs[0] != 0 {
		return 0, fmt.Errorf("derive: columnar: %s offsets do not start at 0", what)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return 0, fmt.Errorf("derive: columnar: %s offsets decrease at %d", what, i)
		}
	}
	return int(offs[len(offs)-1]), nil
}

// dict reads an offsets-plus-blob string dictionary section.
func (r *colReader) dict(count int, what string) ([]string, error) {
	offs, err := r.u32s(count+1, what+" offsets")
	if err != nil {
		return nil, err
	}
	blobLen, err := checkOffs(offs, what)
	if err != nil {
		return nil, err
	}
	blob, err := r.take(blobLen, what+" blob")
	if err != nil {
		return nil, err
	}
	if err := r.skipPad(blobLen, what); err != nil {
		return nil, err
	}
	out := make([]string, count)
	for i := range out {
		out[i] = viewString(blob[offs[i]:offs[i+1]])
	}
	return out, nil
}

// colSections is a fully bounds-checked view of one columnar payload.
type colSections struct {
	nodes, edges int
	modules      []wf.ModuleID // dictionary index -> specification module
	nodeMod      []uint32
	nameOffs     []uint32
	nameBlob     []byte
	labelOffs    []uint32
	labelCol     []byte
	edgeFrom     []uint32
	edgeTo       []uint32
	edgeTag      []uint32
	tags         []string
}

// parseColumnar verifies the checksum and structurally validates every
// section of a columnar payload against the specification: offsets in
// bounds and monotone, dictionary indices in range, module names and edge
// tags known to the specification, endpoints in range (runs), and every
// label-column entry valid per ValidateLabel — walked with a cursor, never
// materialized. Both the strict and the trusted open path run this; the
// checksum alone proves nothing about a hostile payload.
//
//provrpq:trusted
func parseColumnar(spec *wf.Spec, data []byte, wantKind uint32) (*colSections, error) {
	if len(data) < colHeaderSize+4 {
		return nil, fmt.Errorf("derive: columnar: payload too short (%d bytes)", len(data))
	}
	if string(data[:4]) != colMagic {
		return nil, fmt.Errorf("derive: columnar: bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != colVersion {
		return nil, fmt.Errorf("derive: columnar: unsupported format version %d (this build reads version %d)", v, colVersion)
	}
	if k := binary.LittleEndian.Uint32(data[8:]); k != wantKind {
		return nil, fmt.Errorf("derive: columnar: payload kind %d, want %d", k, wantKind)
	}
	body := data[:len(data)-4]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(data[len(data)-4:]); got != want {
		return nil, fmt.Errorf("derive: columnar: checksum mismatch (torn write or corrupt payload)")
	}
	s := &colSections{
		nodes: int(binary.LittleEndian.Uint32(data[12:])),
		edges: int(binary.LittleEndian.Uint32(data[16:])),
	}
	modules := int(binary.LittleEndian.Uint32(data[20:]))
	tags := int(binary.LittleEndian.Uint32(data[24:]))
	if v := binary.LittleEndian.Uint32(data[28:]); v != 0 {
		return nil, fmt.Errorf("derive: columnar: reserved header field is %d, want 0", v)
	}

	r := &colReader{data: body[colHeaderSize:]}
	modNames, err := r.dict(modules, "module dictionary")
	if err != nil {
		return nil, err
	}
	s.modules = make([]wf.ModuleID, modules)
	for i, name := range modNames {
		m, ok := spec.ModuleByName(name)
		if !ok {
			return nil, fmt.Errorf("derive: columnar: references unknown module %q", name)
		}
		s.modules[i] = m
	}
	if s.nodeMod, err = r.u32s(s.nodes, "node module column"); err != nil {
		return nil, err
	}
	for i, m := range s.nodeMod {
		if int(m) >= modules {
			return nil, fmt.Errorf("derive: columnar: node %d: module index %d out of range [0,%d)", i, m, modules)
		}
	}
	if s.nameOffs, err = r.u32s(s.nodes+1, "node name offsets"); err != nil {
		return nil, err
	}
	nameLen, err := checkOffs(s.nameOffs, "node name")
	if err != nil {
		return nil, err
	}
	if s.nameBlob, err = r.take(nameLen, "node name blob"); err != nil {
		return nil, err
	}
	if err := r.skipPad(nameLen, "node name blob"); err != nil {
		return nil, err
	}
	if s.labelOffs, err = r.u32s(s.nodes+1, "label offsets"); err != nil {
		return nil, err
	}
	colLen, err := checkOffs(s.labelOffs, "label")
	if err != nil {
		return nil, err
	}
	if s.labelCol, err = r.take(colLen, "label column"); err != nil {
		return nil, err
	}
	if err := r.skipPad(colLen, "label column"); err != nil {
		return nil, err
	}
	if s.edgeFrom, err = r.u32s(s.edges, "edge source column"); err != nil {
		return nil, err
	}
	if s.edgeTo, err = r.u32s(s.edges, "edge target column"); err != nil {
		return nil, err
	}
	if s.edgeTag, err = r.u32s(s.edges, "edge tag column"); err != nil {
		return nil, err
	}
	if s.tags, err = r.dict(tags, "tag dictionary"); err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("derive: columnar: %d bytes of trailing data after the last section", r.remaining())
	}

	alphabet := tagSet(spec)
	for i, t := range s.tags {
		if !alphabet[t] {
			return nil, fmt.Errorf("derive: columnar: tag dictionary entry %d: tag %q not in the specification's alphabet", i, t)
		}
	}
	for i := 0; i < s.edges; i++ {
		if int(s.edgeTag[i]) >= tags {
			return nil, fmt.Errorf("derive: columnar: edge %d: tag index %d out of range [0,%d)", i, s.edgeTag[i], tags)
		}
		if wantKind == colKindRun {
			if int(s.edgeFrom[i]) >= s.nodes || int(s.edgeTo[i]) >= s.nodes {
				return nil, fmt.Errorf("derive: columnar: edge %d (%d -> %d): endpoint out of range [0,%d)",
					i, s.edgeFrom[i], s.edgeTo[i], s.nodes)
			}
		}
	}

	// Validate the label column entry by entry with a cursor: the pairwise
	// decoders will index specification tables straight from these bytes,
	// so every entry must pass the same checks ValidateLabel applies to
	// materialized labels, and each node's range must decode exactly (no
	// dangling half-entry at a range boundary).
	for i := 0; i < s.nodes; i++ {
		cur := label.NewCursor(label.Bytes(s.labelCol[s.labelOffs[i]:s.labelOffs[i+1]]))
		for j := 0; ; j++ {
			e, ok := cur.Next()
			if !ok {
				break
			}
			if err := validateEntry(spec, e, j); err != nil {
				return nil, fmt.Errorf("derive: columnar: node %d: %v", i, err)
			}
		}
		if err := cur.Err(); err != nil {
			return nil, fmt.Errorf("derive: columnar: node %d: %v", i, err)
		}
	}
	return s, nil
}

// materializeEdges builds the Edge slice from the three endpoint/tag
// columns; the Tag strings are the (shared, zero-copy) dictionary entries.
func (s *colSections) materializeEdges() []Edge {
	edges := make([]Edge, s.edges)
	for i := range edges {
		edges[i] = Edge{
			From: NodeID(s.edgeFrom[i]),
			To:   NodeID(s.edgeTo[i]),
			Tag:  s.tags[s.edgeTag[i]],
		}
	}
	return edges
}

// materializeNodes builds the Node slice with zero-copy names and nil
// labels (the label column carries them).
func (s *colSections) materializeNodes() []Node {
	nodes := make([]Node, s.nodes)
	for i := range nodes {
		nodes[i] = Node{
			Module: s.modules[s.nodeMod[i]],
			Name:   viewString(s.nameBlob[s.nameOffs[i]:s.nameOffs[i+1]]),
		}
	}
	return nodes
}

// DecodeColumnar is the strict columnar run decoder, used for untrusted
// payloads (uploads): on top of the full structural validation it eagerly
// checks node-name uniqueness — a duplicate would silently shadow all
// earlier nodes of that name in every name-addressed lookup — and builds
// the name map and adjacency up front, exactly like the JSON decoder.
func DecodeColumnar(spec *wf.Spec, data []byte) (*Run, error) {
	s, err := parseColumnar(spec, data, colKindRun)
	if err != nil {
		return nil, err
	}
	r := &Run{
		Spec:      spec,
		Nodes:     s.materializeNodes(),
		Edges:     s.materializeEdges(),
		labelCol:  s.labelCol,
		labelOffs: s.labelOffs,
	}
	byName := make(map[string]NodeID, len(r.Nodes))
	for i := range r.Nodes {
		name := r.Nodes[i].Name
		if first, dup := byName[name]; dup {
			return nil, fmt.Errorf("derive: run node %d: duplicate node name %q (already used by node %d)", i, name, first)
		}
		byName[name] = NodeID(i)
	}
	r.byName = byName
	r.buildAdj()
	return r, nil
}

// OpenColumnar opens a trusted columnar run payload — one this process (or
// a prior run of it) persisted from an already-validated run — for
// serving. The payload is checksum-verified and fully bounds-checked like
// any other, but per-node table construction is deferred: the name map and
// adjacency lists build lazily on first use, labels stay as the zero-copy
// column, and node names are views into data. Boot cost is therefore the
// validation scans, not allocation proportional to the run.
//
// The returned run aliases data for its whole lifetime; an mmapped payload
// must stay mapped (the store never unmaps).
//
//provrpq:trusted
func OpenColumnar(spec *wf.Spec, data []byte) (*Run, error) {
	s, err := parseColumnar(spec, data, colKindRun)
	if err != nil {
		return nil, err
	}
	return &Run{
		Spec:      spec,
		Nodes:     s.materializeNodes(),
		Edges:     s.materializeEdges(),
		labelCol:  s.labelCol,
		labelOffs: s.labelOffs,
		nameOnce:  new(sync.Once),
		adjOnce:   new(sync.Once),
	}, nil
}

// DecodeBatchColumnar decodes a columnar growth batch. Labels are
// materialized (AppendEdges consumes Node.Label) and endpoints are left to
// AppendEdges to range-check against the run the batch applies to, the
// same contract as the JSON batch decoder.
func DecodeBatchColumnar(spec *wf.Spec, data []byte) (Batch, error) {
	s, err := parseColumnar(spec, data, colKindBatch)
	if err != nil {
		return Batch{}, err
	}
	b := Batch{Edges: s.materializeEdges()}
	if s.nodes > 0 {
		b.Nodes = s.materializeNodes()
		for i := range b.Nodes {
			l, err := label.Decode(s.labelCol[s.labelOffs[i]:s.labelOffs[i+1]])
			if err != nil {
				// parseColumnar validated the column; unreachable.
				return Batch{}, fmt.Errorf("derive: columnar: batch node %d: %v", i, err)
			}
			b.Nodes[i].Label = l
		}
	}
	return b, nil
}
