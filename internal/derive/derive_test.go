package derive

import (
	"strings"
	"testing"

	"provrpq/internal/label"
	"provrpq/internal/wf"
)

// scriptW2W2W3 expands A with W2 twice and W3 the third time, mirroring the
// paper's sample run (Fig. 2b): productions are 0=W1, 1=W2, 2=W3, 3=W4.
func scriptW2W2W3(m wf.ModuleID, prods []int, iter int) int {
	if len(prods) == 1 {
		return prods[0]
	}
	if iter < 3 {
		return 1 // W2
	}
	return 2 // W3
}

func paperRun(t *testing.T) *Run {
	t.Helper()
	r, err := Derive(wf.PaperSpec(), Options{Policy: scriptW2W2W3})
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	return r
}

func TestPaperRunShape(t *testing.T) {
	r := paperRun(t)
	// Expected atomic nodes: c:1; a:1,a:2; e:1,e:2; d:1,d:2; b:1,b:2 (W4);
	// b:3 (W1) = 10 nodes.
	if r.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", r.NumNodes())
	}
	counts := map[string]int{}
	for _, n := range r.Nodes {
		counts[r.Spec.Name(n.Module)]++
	}
	want := map[string]int{"a": 2, "b": 3, "c": 1, "d": 2, "e": 2}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("count[%s] = %d, want %d", k, counts[k], v)
		}
	}
	// The paper-spec bodies are chains, so the whole run is a path: 9 edges,
	// unique source and sink.
	if r.NumEdges() != 9 {
		t.Errorf("NumEdges = %d, want 9", r.NumEdges())
	}
	srcs, sinks := 0, 0
	for i := range r.Nodes {
		if len(r.In(NodeID(i))) == 0 {
			srcs++
		}
		if len(r.Out(NodeID(i))) == 0 {
			sinks++
		}
	}
	if srcs != 1 || sinks != 1 {
		t.Errorf("sources=%d sinks=%d, want 1/1", srcs, sinks)
	}
}

func TestPaperRunLabels(t *testing.T) {
	r := paperRun(t)
	// Using 0-based production/position indices (paper is 1-based):
	// a:1 hangs under iteration 1 of cycle 0 at W1 position 1.
	// Occurrence numbers follow DFS creation order: the d of iteration 2 is
	// created before the d of iteration 1 (the recursive subtree at body
	// position 1 is expanded before body position 2).
	cases := map[string]label.Label{
		"c:1": {label.Prod(0, 0)},
		"a:1": {label.Prod(0, 1), label.Rec(0, 0, 1), label.Prod(1, 0)},
		"d:2": {label.Prod(0, 1), label.Rec(0, 0, 1), label.Prod(1, 2)},
		"a:2": {label.Prod(0, 1), label.Rec(0, 0, 2), label.Prod(1, 0)},
		"d:1": {label.Prod(0, 1), label.Rec(0, 0, 2), label.Prod(1, 2)},
		"e:1": {label.Prod(0, 1), label.Rec(0, 0, 3), label.Prod(2, 0)},
		"e:2": {label.Prod(0, 1), label.Rec(0, 0, 3), label.Prod(2, 1)},
		"b:1": {label.Prod(0, 2), label.Prod(3, 0)},
		"b:2": {label.Prod(0, 2), label.Prod(3, 1)},
		"b:3": {label.Prod(0, 3)},
	}
	for name, want := range cases {
		id, ok := r.NodeByName(name)
		if !ok {
			t.Errorf("node %s not found", name)
			continue
		}
		if got := r.Label(id); !label.Equal(got, want) {
			t.Errorf("label(%s) = %s, want %s", name, got, want)
		}
	}
}

func TestPaperRunEdges(t *testing.T) {
	r := paperRun(t)
	// The run is the chain c:1 -A-> a:1 -A-> a:2 -A-> e:1 -e-> e:2 -d-> d:1
	// -d-> d:2 -B-> b:1 -b-> b:2 -b-> b:3 (tags are head-module names from
	// wf.PaperSpec's Chain convention; d:1 is iteration 2's d by creation
	// order).
	type want struct{ from, to, tag string }
	wants := []want{
		{"c:1", "a:1", "A"},
		{"a:1", "a:2", "A"},
		{"a:2", "e:1", "A"},
		{"e:1", "e:2", "e"},
		{"e:2", "d:1", "d"},
		{"d:1", "d:2", "d"},
		{"d:2", "b:1", "B"},
		{"b:1", "b:2", "b"},
		{"b:2", "b:3", "b"},
	}
	if len(wants) != r.NumEdges() {
		t.Fatalf("edge count %d, want %d", r.NumEdges(), len(wants))
	}
	have := map[want]bool{}
	for _, e := range r.Edges {
		have[want{r.Nodes[e.From].Name, r.Nodes[e.To].Name, e.Tag}] = true
	}
	for _, w := range wants {
		if !have[w] {
			t.Errorf("missing edge %v; have %v", w, have)
		}
	}
}

func TestLabelsUniqueAndPrefixFree(t *testing.T) {
	spec := wf.PaperSpec()
	for seed := int64(0); seed < 10; seed++ {
		r, err := Derive(spec, Options{Seed: seed, TargetEdges: 200})
		if err != nil {
			t.Fatalf("Derive(seed=%d): %v", seed, err)
		}
		seen := map[string]string{}
		for _, n := range r.Nodes {
			k := n.Label.String()
			if prev, dup := seen[k]; dup {
				t.Fatalf("duplicate label %s on %s and %s", k, prev, n.Name)
			}
			seen[k] = n.Name
		}
		// Prefix-freeness between leaves.
		for i := range r.Nodes {
			for j := range r.Nodes {
				if i == j {
					continue
				}
				a, b := r.Nodes[i].Label, r.Nodes[j].Label
				if len(a) < len(b) && label.LCP(a, b) == len(a) {
					t.Fatalf("label %s (%s) is a prefix of %s (%s)",
						a, r.Nodes[i].Name, b, r.Nodes[j].Name)
				}
			}
		}
	}
}

func TestRunIsDAGWithUniqueEnds(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r, err := Derive(wf.PaperSpec(), Options{Seed: seed, TargetEdges: 300})
		if err != nil {
			t.Fatalf("Derive: %v", err)
		}
		// Kahn topological sort must consume all nodes.
		indeg := make([]int, r.NumNodes())
		for _, e := range r.Edges {
			indeg[e.To]++
		}
		var queue []NodeID
		srcs := 0
		for i := range r.Nodes {
			if indeg[i] == 0 {
				queue = append(queue, NodeID(i))
				srcs++
			}
		}
		if srcs != 1 {
			t.Fatalf("seed %d: %d sources, want 1", seed, srcs)
		}
		done := 0
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			done++
			for _, ei := range r.Out(v) {
				e := r.Edges[ei]
				indeg[e.To]--
				if indeg[e.To] == 0 {
					queue = append(queue, e.To)
				}
			}
		}
		if done != r.NumNodes() {
			t.Fatalf("seed %d: run has a cycle (%d of %d ordered)", seed, done, r.NumNodes())
		}
	}
}

func TestTargetEdgesBudget(t *testing.T) {
	for _, target := range []int{100, 1000, 4000} {
		r, err := Derive(wf.PaperSpec(), Options{Seed: 1, TargetEdges: target})
		if err != nil {
			t.Fatalf("Derive: %v", err)
		}
		// A chain is allotted at least half the remaining budget, so a
		// single-recursion grammar lands in [target/2 - slack, 2*target].
		if r.NumEdges() < target/3 {
			t.Errorf("target %d: got only %d edges", target, r.NumEdges())
		}
		// Overshoot is bounded by one wind-down of each open recursion;
		// generously allow 2x.
		if r.NumEdges() > target*2+50 {
			t.Errorf("target %d: got %d edges (overshoot too large)", target, r.NumEdges())
		}
	}
}

func TestFavorModuleExtendsFork(t *testing.T) {
	spec := wf.ForkSpec()
	r, err := Derive(spec, Options{Seed: 3, TargetEdges: 500, FavorModule: "M"})
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	// Every recursion step adds 2 edges and one a; expect ~250 a-nodes.
	as := r.NodesOfModule("a")
	if len(as) < 100 {
		t.Errorf("favored fork recursion too short: %d a-nodes", len(as))
	}
	// The a-nodes must form a tagged chain a:1 -a-> a:2 -a-> ... (the final
	// a-tagged edge of the base production points at the aggregator b).
	aa := 0
	for _, e := range r.Edges {
		if e.Tag == "a" &&
			r.Spec.Name(r.Nodes[e.From].Module) == "a" &&
			r.Spec.Name(r.Nodes[e.To].Module) == "a" {
			aa++
		}
	}
	if aa != len(as)-1 {
		t.Errorf("a-to-a chain edges = %d, want %d", aa, len(as)-1)
	}
}

func TestDeriveFromNonStart(t *testing.T) {
	spec := wf.PaperSpec()
	a, _ := spec.ModuleByName("A")
	r, err := DeriveFrom(spec, a, Options{Policy: scriptW2W2W3})
	if err != nil {
		t.Fatalf("DeriveFrom: %v", err)
	}
	// A recursing twice then W3: a,a,e,e,d,d = 6 nodes.
	if r.NumNodes() != 6 {
		t.Errorf("NumNodes = %d, want 6", r.NumNodes())
	}
	// Root label must start directly with the recursion entry.
	id, ok := r.NodeByName("a:1")
	if !ok {
		t.Fatal("a:1 missing")
	}
	want := label.Label{label.Rec(0, 0, 1), label.Prod(1, 0)}
	if got := r.Label(id); !label.Equal(got, want) {
		t.Errorf("label(a:1) = %s, want %s", got, want)
	}
}

func TestAtomicRoot(t *testing.T) {
	spec := wf.PaperSpec()
	a, _ := spec.ModuleByName("c")
	r, err := DeriveFrom(spec, a, Options{})
	if err != nil {
		t.Fatalf("DeriveFrom: %v", err)
	}
	if r.NumNodes() != 1 || r.NumEdges() != 0 {
		t.Errorf("atomic root run: %d nodes %d edges, want 1/0", r.NumNodes(), r.NumEdges())
	}
	if len(r.Label(0)) != 0 {
		t.Errorf("atomic root label should be empty, got %s", r.Label(0))
	}
}

func TestMultiModuleCycleDerivation(t *testing.T) {
	spec := mustBuild(t, wf.NewBuilder().
		Start("S").
		Atomic("x", "y", "z").
		Chain("S", "x", "A").
		Chain("A", "x", "B", "y").
		Chain("A", "z").
		Chain("B", "y", "A", "x").
		Chain("B", "z", "z"))
	for seed := int64(0); seed < 6; seed++ {
		r, err := Derive(spec, Options{Seed: seed, TargetEdges: 60})
		if err != nil {
			t.Fatalf("Derive: %v", err)
		}
		// Iterations of the A<->B cycle must alternate modules; verify by
		// checking recursion entries: consecutive iters share (s,t).
		for _, n := range r.Nodes {
			for _, e := range n.Label {
				if e.Rec && e.Z < 1 {
					t.Fatalf("iteration %d < 1 in %s", e.Z, n.Label)
				}
			}
		}
		if r.NumNodes() == 0 {
			t.Fatal("empty run")
		}
	}
}

func TestRunJSONRoundTrip(t *testing.T) {
	r := paperRun(t)
	data, err := EncodeRun(r)
	if err != nil {
		t.Fatalf("EncodeRun: %v", err)
	}
	back, err := DecodeRun(r.Spec, data)
	if err != nil {
		t.Fatalf("DecodeRun: %v", err)
	}
	if back.NumNodes() != r.NumNodes() || back.NumEdges() != r.NumEdges() {
		t.Fatal("round trip changed sizes")
	}
	for i := range r.Nodes {
		if back.Nodes[i].Name != r.Nodes[i].Name ||
			!label.Equal(back.Nodes[i].Label, r.Nodes[i].Label) ||
			back.Nodes[i].Module != r.Nodes[i].Module {
			t.Fatalf("node %d changed in round trip", i)
		}
	}
	if _, ok := back.NodeByName("c:1"); !ok {
		t.Error("indices not rebuilt after decode")
	}
}

func TestDecodeRunErrors(t *testing.T) {
	spec := wf.PaperSpec()
	if _, err := DecodeRun(spec, []byte(`{"nodes":[{"name":"q:1","module":"nope","label":""}]}`)); err == nil {
		t.Error("unknown module should fail")
	}
	if _, err := DecodeRun(spec, []byte(`{"nodes":[],"edges":[{"From":0,"To":1,"Tag":"x"}]}`)); err == nil {
		t.Error("out-of-range edge should fail")
	}
	if _, err := DecodeRun(spec, []byte(`{"nodes":[{"name":"a:1","module":"a","label":"!!!"}]}`)); err == nil {
		t.Error("bad base64 should fail")
	}
	twoNodes := `{"nodes":[{"name":"a:1","module":"a","label":""},{"name":"a:2","module":"a","label":""}],`
	if _, err := DecodeRun(spec, []byte(twoNodes+`"edges":[{"From":0,"To":1,"Tag":"zzz"}]}`)); err == nil {
		t.Error("edge tag outside the specification's alphabet should fail")
	}
	if _, err := DecodeRun(spec, []byte(twoNodes+`"edges":[{"From":0,"To":-1,"Tag":"zzz"}]}`)); err == nil {
		t.Error("negative edge endpoint should fail")
	}
}

// TestDecodeRunRejectsDuplicateNames is the regression test for the
// silent node-name shadowing bug: finish() builds byName by overwriting,
// so before the decode-time check, a payload with two nodes named "a:1"
// made NodeByName (and every name-addressed query) resolve to the *last*
// node of that name. The decoder must reject such payloads with a
// positioned error instead.
func TestDecodeRunRejectsDuplicateNames(t *testing.T) {
	spec := wf.PaperSpec()
	payload := `{"nodes":[
		{"name":"a:1","module":"a","label":""},
		{"name":"b:1","module":"b","label":""},
		{"name":"a:1","module":"a","label":""}],"edges":[]}`
	_, err := DecodeRun(spec, []byte(payload))
	if err == nil {
		t.Fatal("duplicate node names should be rejected")
	}
	msg := err.Error()
	for _, want := range []string{"node 2", `"a:1"`, "node 0"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %s", msg, want)
		}
	}
}

func mustBuild(t *testing.T, b *wf.Builder) *wf.Spec {
	t.Helper()
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNodesOfModuleAndSort(t *testing.T) {
	r := paperRun(t)
	ds := r.NodesOfModule("d")
	if len(ds) != 2 {
		t.Fatalf("NodesOfModule(d) = %d nodes, want 2", len(ds))
	}
	sorted := r.SortByLabel(append([]NodeID(nil), ds...))
	if label.Compare(r.Label(sorted[0]), r.Label(sorted[1])) > 0 {
		t.Error("SortByLabel did not sort")
	}
}
