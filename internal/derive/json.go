package derive

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"

	"provrpq/internal/label"
	"provrpq/internal/wf"
)

// runJSON is the on-disk form of a run. The paper stored runs as Java
// serializable objects; we use JSON with base64 varint-packed labels.
type runJSON struct {
	Nodes []nodeJSON `json:"nodes"`
	Edges []Edge     `json:"edges"`
}

type nodeJSON struct {
	Name   string `json:"name"`
	Module string `json:"module"`
	Label  string `json:"label"` // base64 of label.Label.Encode()
}

// EncodeRun serializes a run (without its specification; keep the spec's
// JSON alongside). Label bytes come straight from the run's label column,
// so a columnar-opened run (whose Node.Label stays nil) serializes the
// same payload as a materialized one — JSON→columnar→JSON round-trips are
// byte-identical.
func EncodeRun(r *Run) ([]byte, error) {
	rj := runJSON{Edges: r.Edges}
	for i, n := range r.Nodes {
		rj.Nodes = append(rj.Nodes, nodeJSON{
			Name:   n.Name,
			Module: r.Spec.Name(n.Module),
			Label:  base64.StdEncoding.EncodeToString(r.LabelBytes(NodeID(i))),
		})
	}
	return json.Marshal(rj)
}

// batchJSON is the wire form of a growth batch — the same node and edge
// shapes as runJSON, so a client that can upload runs can grow them.
type batchJSON struct {
	Nodes []nodeJSON `json:"nodes,omitempty"`
	Edges []Edge     `json:"edges,omitempty"`
}

// EncodeBatch serializes a growth batch against its specification (module
// ids become names, labels are varint-packed and base64-wrapped — exactly
// the EncodeRun node shape). This is the payload the append log persists,
// so DecodeBatch(spec, EncodeBatch(spec, b)) replays to an equal batch.
func EncodeBatch(spec *wf.Spec, b Batch) ([]byte, error) {
	bj := batchJSON{Edges: b.Edges}
	for _, n := range b.Nodes {
		bj.Nodes = append(bj.Nodes, encodeNode(spec, n))
	}
	return json.Marshal(bj)
}

// DecodeBatch deserializes a growth batch against a specification,
// validating what the specification alone can check (known modules, label
// encoding and structure). Run-relative validation — endpoint ranges, name
// uniqueness, edge tags — happens in AppendEdges, against the run the
// batch is finally applied to. Unlike a run upload, a batch is decoded
// strictly (unknown JSON keys are errors): a committed batch replays on
// every restart, so a typo that silently dropped half the payload would
// be permanent.
func DecodeBatch(spec *wf.Spec, data []byte) (Batch, error) {
	if IsColumnar(data) {
		return DecodeBatchColumnar(spec, data)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var bj batchJSON
	if err := dec.Decode(&bj); err != nil {
		return Batch{}, fmt.Errorf("derive: batch: %v", err)
	}
	if dec.More() {
		// Decode stops at the first JSON value; accepting trailing data
		// would silently (and, in the append log, permanently) drop it.
		return Batch{}, fmt.Errorf("derive: batch: trailing data after the batch object")
	}
	b := Batch{Edges: bj.Edges}
	for i, nj := range bj.Nodes {
		n, err := decodeNode(spec, nj)
		if err != nil {
			return Batch{}, fmt.Errorf("derive: batch node %d%s: %v", i, nodeRef(nj.Name), err)
		}
		b.Nodes = append(b.Nodes, n)
	}
	return b, nil
}

// encodeNode and decodeNode are the single definition of the node wire
// shape, shared by the run and batch codecs.
func encodeNode(spec *wf.Spec, n Node) nodeJSON {
	return nodeJSON{
		Name:   n.Name,
		Module: spec.Name(n.Module),
		Label:  base64.StdEncoding.EncodeToString(n.Label.Encode()),
	}
}

func decodeNode(spec *wf.Spec, nj nodeJSON) (Node, error) {
	m, ok := spec.ModuleByName(nj.Module)
	if !ok {
		return Node{}, fmt.Errorf("references unknown module %q", nj.Module)
	}
	raw, err := base64.StdEncoding.DecodeString(nj.Label)
	if err != nil {
		return Node{}, fmt.Errorf("bad label encoding: %v", err)
	}
	lab, err := label.Decode(raw)
	if err != nil {
		return Node{}, err
	}
	if err := ValidateLabel(spec, lab); err != nil {
		return Node{}, err
	}
	return Node{Module: m, Name: nj.Name, Label: lab}, nil
}

// nodeRef renders " (name)" for positioned errors, empty when unnamed.
func nodeRef(name string) string {
	if name == "" {
		return ""
	}
	return " (" + name + ")"
}

// DecodeRun deserializes a run against its specification. Both payload
// formats are accepted: the binary columnar format is recognized by its
// magic and routed to the strict columnar decoder; anything else is
// treated as JSON.
func DecodeRun(spec *wf.Spec, data []byte) (*Run, error) {
	if IsColumnar(data) {
		return DecodeColumnar(spec, data)
	}
	var rj runJSON
	if err := json.Unmarshal(data, &rj); err != nil {
		return nil, err
	}
	r := &Run{Spec: spec, Edges: rj.Edges}
	// Node names must be unique: byName (and every name-addressed lookup
	// built on it) maps each name to exactly one node, so a duplicate
	// would silently shadow all earlier nodes of that name.
	seen := make(map[string]int, len(rj.Nodes))
	for i, nj := range rj.Nodes {
		if first, dup := seen[nj.Name]; dup {
			return nil, fmt.Errorf("derive: run node %d: duplicate node name %q (already used by node %d)", i, nj.Name, first)
		}
		seen[nj.Name] = i
		n, err := decodeNode(spec, nj)
		if err != nil {
			return nil, fmt.Errorf("derive: run node %d%s: %v", i, nodeRef(nj.Name), err)
		}
		r.Nodes = append(r.Nodes, n)
	}
	alphabet := tagSet(spec)
	for i, e := range r.Edges {
		if e.From < 0 || int(e.From) >= len(r.Nodes) || e.To < 0 || int(e.To) >= len(r.Nodes) {
			return nil, fmt.Errorf("derive: edge %d (%d -[%s]-> %d): endpoint out of range [0,%d)",
				i, e.From, e.Tag, e.To, len(r.Nodes))
		}
		if !alphabet[e.Tag] {
			return nil, fmt.Errorf("derive: edge %d (%s -> %s): tag %q not in the specification's alphabet",
				i, r.Nodes[e.From].Name, r.Nodes[e.To].Name, e.Tag)
		}
	}
	r.finish()
	return r, nil
}
