package derive

import (
	"encoding/base64"
	"encoding/json"
	"fmt"

	"provrpq/internal/label"
	"provrpq/internal/wf"
)

// runJSON is the on-disk form of a run. The paper stored runs as Java
// serializable objects; we use JSON with base64 varint-packed labels.
type runJSON struct {
	Nodes []nodeJSON `json:"nodes"`
	Edges []Edge     `json:"edges"`
}

type nodeJSON struct {
	Name   string `json:"name"`
	Module string `json:"module"`
	Label  string `json:"label"` // base64 of label.Label.Encode()
}

// EncodeRun serializes a run (without its specification; keep the spec's
// JSON alongside).
func EncodeRun(r *Run) ([]byte, error) {
	rj := runJSON{Edges: r.Edges}
	for _, n := range r.Nodes {
		rj.Nodes = append(rj.Nodes, nodeJSON{
			Name:   n.Name,
			Module: r.Spec.Name(n.Module),
			Label:  base64.StdEncoding.EncodeToString(n.Label.Encode()),
		})
	}
	return json.Marshal(rj)
}

// DecodeRun deserializes a run against its specification.
func DecodeRun(spec *wf.Spec, data []byte) (*Run, error) {
	var rj runJSON
	if err := json.Unmarshal(data, &rj); err != nil {
		return nil, err
	}
	r := &Run{Spec: spec, Edges: rj.Edges}
	// Node names must be unique: byName (and every name-addressed lookup
	// built on it) maps each name to exactly one node, so a duplicate
	// would silently shadow all earlier nodes of that name.
	seen := make(map[string]int, len(rj.Nodes))
	for i, nj := range rj.Nodes {
		m, ok := spec.ModuleByName(nj.Module)
		if !ok {
			return nil, fmt.Errorf("derive: run node %d references unknown module %q", i, nj.Module)
		}
		if first, dup := seen[nj.Name]; dup {
			return nil, fmt.Errorf("derive: run node %d: duplicate node name %q (already used by node %d)", i, nj.Name, first)
		}
		seen[nj.Name] = i
		raw, err := base64.StdEncoding.DecodeString(nj.Label)
		if err != nil {
			return nil, fmt.Errorf("derive: run node %d: bad label encoding: %v", i, err)
		}
		lab, err := label.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("derive: run node %d: %v", i, err)
		}
		if err := ValidateLabel(spec, lab); err != nil {
			return nil, fmt.Errorf("derive: run node %d (%s): %v", i, nj.Name, err)
		}
		r.Nodes = append(r.Nodes, Node{Module: m, Name: nj.Name, Label: lab})
	}
	alphabet := map[string]bool{}
	for _, t := range spec.Tags() {
		alphabet[t] = true
	}
	for i, e := range r.Edges {
		if e.From < 0 || int(e.From) >= len(r.Nodes) || e.To < 0 || int(e.To) >= len(r.Nodes) {
			return nil, fmt.Errorf("derive: edge %d (%d -[%s]-> %d): endpoint out of range [0,%d)",
				i, e.From, e.Tag, e.To, len(r.Nodes))
		}
		if !alphabet[e.Tag] {
			return nil, fmt.Errorf("derive: edge %d (%s -> %s): tag %q not in the specification's alphabet",
				i, r.Nodes[e.From].Name, r.Nodes[e.To].Name, e.Tag)
		}
	}
	r.finish()
	return r, nil
}
