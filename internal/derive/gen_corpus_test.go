package derive

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"provrpq/internal/wf"
)

func TestGenCorpus(t *testing.T) {
	if os.Getenv("GEN_CORPUS") == "" {
		t.Skip("set GEN_CORPUS=1 to regenerate the committed fuzz seeds")
	}
	spec := wf.PaperSpec()
	mk := func(seed int64, edges int) []byte {
		r, err := Derive(spec, Options{Seed: seed, TargetEdges: edges})
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeColumnar(r)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	small := mk(2, 10)
	big := mk(7, 120)
	r, err := Derive(spec, Options{Seed: 5, TargetEdges: 60})
	if err != nil {
		t.Fatal(err)
	}
	batch := Batch{Edges: []Edge{{From: 0, To: 1, Tag: r.Edges[0].Tag}}}
	batchData, err := EncodeBatchColumnar(spec, batch)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), big...)
	corrupt[len(corrupt)/2] ^= 0x40
	seeds := map[string][]byte{
		"valid-run-small":  small,
		"valid-run-large":  big,
		"batch-wrong-kind": batchData,
		"truncated-run":    big[:len(big)/2],
		"bitflip-resealed": reseal(corrupt),
		"header-only":      reseal(append(append([]byte(colMagic), make([]byte, colHeaderSize-4)...), 0, 0, 0, 0)),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeColumnar")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
