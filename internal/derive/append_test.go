package derive

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"provrpq/internal/label"
	"provrpq/internal/wf"
)

// appendSpec builds a small grammar with a recursion so derived runs have
// non-trivial labels.
func appendSpec(t *testing.T) *wf.Spec {
	t.Helper()
	b := wf.NewBuilder()
	b.Start("S")
	b.Chain("S", "x", "A", "p")
	b.Chain("A", "a1", "A", "s")
	b.Chain("A", "a2", "s")
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// splitRun carves a derived run into a base prefix plus growth batches:
// base = nodes [0,m) with the edges internal to them, then batches of the
// remaining nodes in id order, each carrying every not-yet-placed edge
// whose endpoints exist once the batch's nodes do. Edge order inside each
// part follows the original run's edge order.
func splitRun(r *Run, cuts []int) (*Run, []Batch) {
	base := &Run{Spec: r.Spec}
	base.Nodes = append(base.Nodes, r.Nodes[:cuts[0]]...)
	var batches []Batch
	for i := 1; i < len(cuts); i++ {
		batches = append(batches, Batch{Nodes: append([]Node(nil), r.Nodes[cuts[i-1]:cuts[i]]...)})
	}
	for _, e := range r.Edges {
		hi := e.From
		if e.To > hi {
			hi = e.To
		}
		placed := false
		for i := 1; i < len(cuts); i++ {
			if int(hi) < cuts[i] && int(hi) >= cuts[i-1] {
				batches[i-1].Edges = append(batches[i-1].Edges, e)
				placed = true
				break
			}
		}
		if !placed {
			base.Edges = append(base.Edges, e)
		}
	}
	base.finish()
	return base, batches
}

// TestAppendMatchesFinish is the derive-level incremental-equals-full
// property: splitting a derived run into a base plus random batches and
// appending them back must reproduce the exact run a from-scratch finish()
// over the final node/edge lists builds — labels, names, adjacency and the
// serialized bytes all identical.
func TestAppendMatchesFinish(t *testing.T) {
	spec := appendSpec(t)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		full, err := Derive(spec, Options{Seed: seed, TargetEdges: 40 + rng.Intn(200)})
		if err != nil {
			t.Fatal(err)
		}
		n := full.NumNodes()
		cuts := []int{1 + rng.Intn(n)}
		for cuts[len(cuts)-1] < n {
			next := cuts[len(cuts)-1] + 1 + rng.Intn(n/2+1)
			if next > n {
				next = n
			}
			cuts = append(cuts, next)
		}
		base, batches := splitRun(full, cuts)

		// Reference: the final graph rebuilt from scratch, with the edge
		// order the append path produces (base edges, then each batch's).
		ref := &Run{Spec: spec}
		ref.Nodes = append(ref.Nodes, full.Nodes...)
		ref.Edges = append(ref.Edges, base.Edges...)
		for _, b := range batches {
			ref.Edges = append(ref.Edges, b.Edges...)
		}
		ref.finish()

		for bi, b := range batches {
			stats, err := AppendEdges(base, b)
			if err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, bi, err)
			}
			if stats.NewNodes != len(b.Nodes) || stats.NewEdges != len(b.Edges) {
				t.Fatalf("seed %d batch %d: stats %+v", seed, bi, stats)
			}
			if stats.Touched > len(b.Nodes)+2*len(b.Edges) {
				t.Fatalf("seed %d batch %d: touched %d nodes for a %d-node/%d-edge batch",
					seed, bi, stats.Touched, len(b.Nodes), len(b.Edges))
			}
		}
		if err := sameRun(base, ref); err != nil {
			t.Fatalf("seed %d: append differs from full rebuild: %v", seed, err)
		}
		gotJSON, err := EncodeRun(base)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := EncodeRun(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("seed %d: appended run encodes differently from the full rebuild", seed)
		}
	}
}

// TestGrowLeavesParentIntact: Grow must version, not mutate — the parent
// run stays byte-identical and its adjacency is never written through.
func TestGrowLeavesParentIntact(t *testing.T) {
	spec := appendSpec(t)
	full, err := Derive(spec, Options{Seed: 7, TargetEdges: 120})
	if err != nil {
		t.Fatal(err)
	}
	cut := full.NumNodes() / 2
	base, batches := splitRun(full, []int{cut, full.NumNodes()})
	beforeJSON, err := EncodeRun(base)
	if err != nil {
		t.Fatal(err)
	}
	beforeOut := make([]int, len(base.out))
	for i := range base.out {
		beforeOut[i] = len(base.out[i])
	}

	grown, stats, err := base.Grow(batches[0])
	if err != nil {
		t.Fatal(err)
	}
	if grown.NumNodes() != full.NumNodes() {
		t.Fatalf("grown has %d nodes, want %d", grown.NumNodes(), full.NumNodes())
	}
	if stats.NewNodes == 0 {
		t.Fatalf("stats = %+v, want new nodes", stats)
	}
	afterJSON, err := EncodeRun(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(beforeJSON, afterJSON) {
		t.Fatal("Grow mutated the parent run's encoding")
	}
	for i := range base.out {
		if len(base.out[i]) != beforeOut[i] {
			t.Fatalf("Grow changed parent adjacency of node %d", i)
		}
	}
	// A second Grow from the same parent must not corrupt the first.
	grown2, _, err := base.Grow(batches[0])
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := EncodeRun(grown)
	j2, _ := EncodeRun(grown2)
	if !bytes.Equal(j1, j2) {
		t.Fatal("two Grows from one parent diverged")
	}
	// New names resolve in the grown version only.
	newName := batches[0].Nodes[0].Name
	if _, ok := base.NodeByName(newName); ok {
		t.Fatalf("parent resolves appended name %q", newName)
	}
	if _, ok := grown.NodeByName(newName); !ok {
		t.Fatalf("grown version cannot resolve appended name %q", newName)
	}
}

// TestAppendRejectsBadBatches: every validation failure must leave the run
// untouched.
func TestAppendRejectsBadBatches(t *testing.T) {
	spec := appendSpec(t)
	run, err := Derive(spec, Options{Seed: 3, TargetEdges: 60})
	if err != nil {
		t.Fatal(err)
	}
	before, err := EncodeRun(run)
	if err != nil {
		t.Fatal(err)
	}
	lab := run.Nodes[len(run.Nodes)-1].Label
	cases := []struct {
		name string
		b    Batch
		want string
	}{
		{"dup name", Batch{Nodes: []Node{{Module: 0, Name: run.Nodes[0].Name, Label: lab}}}, "duplicate node name"},
		{"empty name", Batch{Nodes: []Node{{Module: 0, Name: "", Label: lab}}}, "empty name"},
		{"bad module", Batch{Nodes: []Node{{Module: 99, Name: "fresh:1", Label: lab}}}, "module id"},
		{"bad label", Batch{Nodes: []Node{{Module: 0, Name: "fresh:1", Label: append(lab.Clone(), label.Prod(999, 0))}}}, "label entry"},
		{"edge range", Batch{Edges: []Edge{{From: 0, To: NodeID(run.NumNodes()), Tag: "p"}}}, "out of range"},
		{"edge tag", Batch{Edges: []Edge{{From: 0, To: 1, Tag: "nope"}}}, "alphabet"},
	}
	for _, tc := range cases {
		if _, err := AppendEdges(run, tc.b); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
	after, err := EncodeRun(run)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("a rejected append mutated the run")
	}
}

// TestBatchJSONRoundTrip: the append-log payload decodes back to an equal
// batch, and bad payloads are rejected with positioned errors.
func TestBatchJSONRoundTrip(t *testing.T) {
	spec := appendSpec(t)
	full, err := Derive(spec, Options{Seed: 11, TargetEdges: 80})
	if err != nil {
		t.Fatal(err)
	}
	cut := full.NumNodes() - 3
	base, batches := splitRun(full, []int{cut, full.NumNodes()})
	data, err := EncodeBatch(spec, batches[0])
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBatch(spec, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AppendEdges(base, back); err != nil {
		t.Fatalf("replayed batch rejected: %v", err)
	}
	gotJSON, _ := EncodeRun(base)
	wantJSON, _ := EncodeRun(full)
	// Same final node set; edge order may differ from the original
	// derivation, so compare node sections and edge count.
	if base.NumNodes() != full.NumNodes() || base.NumEdges() != full.NumEdges() {
		t.Fatalf("replay mismatch: %d/%d nodes, %d/%d edges",
			base.NumNodes(), full.NumNodes(), base.NumEdges(), full.NumEdges())
	}
	_ = gotJSON
	_ = wantJSON

	for _, bad := range []struct{ name, payload, want string }{
		{"module", `{"nodes":[{"name":"n:1","module":"ghost","label":""}]}`, "unknown module"},
		{"base64", `{"nodes":[{"name":"n:1","module":"x","label":"!!!"}]}`, "bad label encoding"},
		{"label", `{"nodes":[{"name":"n:1","module":"x","label":"/w8B"}]}`, "label"},
		// A batch is decoded strictly — a typo'd key must fail loudly, not
		// silently drop half the payload into the permanent append log.
		{"typo", `{"nodes":[],"egdes":[{"From":0,"To":1,"Tag":"p"}]}`, "unknown field"},
		{"trailing", `{"edges":[{"From":0,"To":1,"Tag":"p"}]}{"edges":[]}`, "trailing data"},
	} {
		if _, err := DecodeBatch(spec, []byte(bad.payload)); err == nil || !strings.Contains(err.Error(), bad.want) {
			t.Errorf("DecodeBatch(%s) err = %v, want %q", bad.name, err, bad.want)
		}
	}
}

// sameRun compares two runs structurally: nodes (module, name, label),
// edges, name table and adjacency.
func sameRun(a, b *Run) error {
	if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
		return fmt.Errorf("size mismatch: %d/%d nodes, %d/%d edges", len(a.Nodes), len(b.Nodes), len(a.Edges), len(b.Edges))
	}
	for i := range a.Nodes {
		x, y := a.Nodes[i], b.Nodes[i]
		if x.Module != y.Module || x.Name != y.Name || x.Label.String() != y.Label.String() {
			return fmt.Errorf("node %d: %v vs %v", i, x, y)
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return fmt.Errorf("edge %d: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
	if na, nb := len(a.byName)+len(a.nameOverlay), len(b.byName)+len(b.nameOverlay); na != nb {
		return fmt.Errorf("name table size %d vs %d", na, nb)
	}
	for i := range a.Nodes {
		name := a.Nodes[i].Name
		ai, aok := a.NodeByName(name)
		bi, bok := b.NodeByName(name)
		if !aok || !bok || ai != NodeID(i) || bi != NodeID(i) {
			return fmt.Errorf("name %q resolves to (%d,%v) vs (%d,%v), want node %d", name, ai, aok, bi, bok, i)
		}
	}
	for i := range a.out {
		if fmt.Sprint(a.out[i]) != fmt.Sprint(b.out[i]) || fmt.Sprint(a.in[i]) != fmt.Sprint(b.in[i]) {
			return fmt.Errorf("adjacency of node %d differs: out %v/%v in %v/%v", i, a.out[i], b.out[i], a.in[i], b.in[i])
		}
	}
	return nil
}

// TestAppendHubStreamAndSiblingSafety streams many tiny batches that all
// attach to one hub node — the ownership tracking must keep the hub's
// list correct across plain (amortized) appends — and interleaves Grow
// clones to pin the subtle case: a parent extending an owned list's spare
// capacity that a clone's slice header still references must never change
// what the clone reads.
func TestAppendHubStreamAndSiblingSafety(t *testing.T) {
	spec := appendSpec(t)
	run, err := Derive(spec, Options{Seed: 41, TargetEdges: 60})
	if err != nil {
		t.Fatal(err)
	}
	tag := spec.Tags()[0]
	hub := NodeID(0)
	edgeAt := func(i int) Edge {
		return Edge{From: hub, To: NodeID(1 + i%(run.NumNodes()-1)), Tag: tag}
	}

	var clone *Run
	var cloneJSON []byte
	const stream = 300
	for i := 0; i < stream; i++ {
		if _, err := AppendEdges(run, Batch{Edges: []Edge{edgeAt(i)}}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if i == stream/2 {
			// Clone mid-stream: the parent keeps appending into backing
			// the clone's headers still reference.
			clone, _, err = run.Grow(Batch{Edges: []Edge{edgeAt(i + 1)}})
			if err != nil {
				t.Fatal(err)
			}
			cloneJSON, err = EncodeRun(clone)
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	// The streamed run equals a from-scratch rebuild of its final lists.
	ref := &Run{Spec: spec}
	ref.Nodes = append(ref.Nodes, run.Nodes...)
	ref.Edges = append(ref.Edges, run.Edges...)
	ref.finish()
	if err := sameRun(run, ref); err != nil {
		t.Fatalf("hub stream diverged from full rebuild: %v", err)
	}

	// The clone is byte-identical to its snapshot, and its adjacency still
	// matches a rebuild of its own edge list.
	afterJSON, err := EncodeRun(clone)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cloneJSON, afterJSON) {
		t.Fatal("parent's later appends changed the clone's encoding")
	}
	cref := &Run{Spec: spec}
	cref.Nodes = append(cref.Nodes, clone.Nodes...)
	cref.Edges = append(cref.Edges, clone.Edges...)
	cref.finish()
	if err := sameRun(clone, cref); err != nil {
		t.Fatalf("clone diverged from full rebuild: %v", err)
	}
	// And the clone can keep growing independently.
	if _, err := AppendEdges(clone, Batch{Edges: []Edge{edgeAt(7)}}); err != nil {
		t.Fatal(err)
	}
}
