// Package derive implements workflow derivation (Definition 4) and the
// dynamic, derivation-based labeling of runs (Section II-B, reconstructing
// reference [4]).
//
// A run is derived by repeatedly replacing a composite node with the body of
// one of its productions. Each node is labeled the moment it is created with
// the root-to-node edge-label sequence of the *compressed parse tree*:
//
//   - expanding a node with production k places body node i under it with
//     entry (k, i);
//   - a node whose module is recursive (lies on cycle s of P(G)) is placed
//     under an implicit recursive R node: its label additionally carries a
//     recursion entry (s, t, m) where t is the cycle position of the entry
//     module and m the iteration number. The cycle-successor child of an
//     iteration becomes iteration m+1 of the same R node rather than a
//     deeper subtree, which keeps tree depth bounded by the specification
//     size regardless of recursion depth.
//
// The package materializes the final run as a DAG of atomic module
// executions with tagged edges (used by the baselines and the oracle), but
// all label decoding in internal/reach and internal/core works from labels
// and the specification alone, never scanning the run.
package derive

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"provrpq/internal/label"
	"provrpq/internal/wf"
)

// NodeID indexes a node of a Run.
type NodeID int

// Node is one atomic module execution in a run.
type Node struct {
	Module wf.ModuleID
	// Name is the paper-style display id "a:1" (module name plus occurrence
	// number in creation order).
	Name  string
	Label label.Label
}

// Edge is a tagged data edge of a run.
type Edge struct {
	From, To NodeID
	Tag      string
}

// Run is a fully derived workflow execution.
type Run struct {
	Spec  *wf.Spec
	Nodes []Node
	Edges []Edge

	// labelCol/labelOffs are the packed label column: node n's varint
	// label encoding (the Label.Encode bytes) occupies
	// labelCol[labelOffs[n]:labelOffs[n+1]]. finish builds the column for
	// derived and JSON-decoded runs; a columnar open points it straight
	// into the (possibly mmapped) file, leaving Node.Label nil — the
	// pairwise decoders read LabelBytes and never materialize entries.
	labelCol  []byte
	labelOffs []uint32

	// byName is immutable once built (by buildByName, or by an overlay
	// merge that replaces it wholesale with a fresh map), so Grow versions
	// share it without copying. Names added by appends land in nameOverlay
	// — owned per Run value, copied (small) by Grow — and are folded into
	// a new byName once the overlay outgrows a fraction of the base,
	// keeping lookups at two probes and the fold cost amortized O(1) per
	// name.
	byName      map[string]NodeID
	nameOverlay map[string]NodeID
	out         [][]int // node -> indices into Edges
	in          [][]int

	// nameOnce/adjOnce defer the byName map and the adjacency lists of a
	// columnar-opened run: boot then costs O(labels+edges) validation
	// passes instead of map and slice construction over every node, and a
	// run that only ever answers label-based queries never builds either.
	// nil (built eagerly) for derived and JSON-decoded runs. AppendEdges
	// and Grow force both before mutating or cloning.
	nameOnce *sync.Once
	adjOnce  *sync.Once

	// ownedOut/ownedIn mark adjacency lists whose backing this Run value
	// allocated itself (by an AppendEdges copy-on-write), as opposed to
	// backing possibly shared with the parent a Grow cloned it from. An
	// owned list is extended with a plain (amortized) append; an unowned
	// one is copied exactly once on first touch. Grow deliberately does
	// not carry these over — every list starts unowned in the clone — so
	// sibling versions can never write into common backing. nil until the
	// first append.
	ownedOut, ownedIn map[NodeID]bool
}

// NumNodes returns the number of atomic module executions.
func (r *Run) NumNodes() int { return len(r.Nodes) }

// NumEdges returns the number of data edges (the paper's run-size measure).
func (r *Run) NumEdges() int { return len(r.Edges) }

// NodeByName resolves a paper-style id like "a:1".
func (r *Run) NodeByName(name string) (NodeID, bool) {
	if id, ok := r.nameOverlay[name]; ok {
		return id, true
	}
	id, ok := r.names()[name]
	return id, ok
}

// names returns the byName map, building it on first use for
// columnar-opened runs. Safe for concurrent readers (sync.Once).
func (r *Run) names() map[string]NodeID {
	if r.nameOnce != nil {
		r.nameOnce.Do(r.buildByName)
	}
	return r.byName
}

// ensureAdj builds the adjacency lists on first use for columnar-opened
// runs. Safe for concurrent readers (sync.Once).
func (r *Run) ensureAdj() {
	if r.adjOnce != nil {
		r.adjOnce.Do(r.buildAdj)
	}
}

// NodesOfModule returns all executions of the named module, in creation order.
func (r *Run) NodesOfModule(name string) []NodeID {
	var out []NodeID
	for i := range r.Nodes {
		if r.Spec.Name(r.Nodes[i].Module) == name {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// AllNodes returns every node id.
func (r *Run) AllNodes() []NodeID {
	out := make([]NodeID, len(r.Nodes))
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// Out returns the indices (into r.Edges) of the outgoing edges of n.
func (r *Run) Out(n NodeID) []int { r.ensureAdj(); return r.out[n] }

// In returns the indices (into r.Edges) of the incoming edges of n.
func (r *Run) In(n NodeID) []int { r.ensureAdj(); return r.in[n] }

// Label returns ψV(n). For columnar-opened runs the entries are decoded on
// demand from the label column (the hot pairwise paths read LabelBytes
// instead and never pay this); derived and JSON-decoded runs return their
// materialized labels.
func (r *Run) Label(n NodeID) label.Label {
	if l := r.Nodes[n].Label; l != nil || r.labelOffs == nil {
		return l
	}
	l, err := label.Decode(r.LabelBytes(n))
	if err != nil {
		// The column is validated when the run is decoded or opened.
		panic(fmt.Sprintf("derive: corrupt label column for node %d: %v", n, err))
	}
	return l
}

// LabelBytes returns the varint encoding of ψV(n) as a zero-copy view into
// the run's label column.
func (r *Run) LabelBytes(n NodeID) label.Bytes {
	if r.labelOffs == nil {
		// A run assembled in-package without finish: encode on the fly.
		return r.Nodes[n].Label.Encode()
	}
	return label.Bytes(r.labelCol[r.labelOffs[n]:r.labelOffs[n+1]])
}

// MaterializeLabels decodes every node's label into one arena-backed slice
// — the bulk form of Label for the all-pairs scans, which need []Entry
// labels for sorting and tree construction. Materialized labels (derived
// or JSON-decoded runs, appended nodes) are reused as-is.
func (r *Run) MaterializeLabels() []label.Label {
	out := make([]label.Label, len(r.Nodes))
	if r.labelOffs == nil {
		for i := range r.Nodes {
			out[i] = r.Nodes[i].Label
		}
		return out
	}
	// Entries are at least two bytes, so one arena of len(column)/2 entries
	// holds every decoded label without reallocating (keeping out[i] slices
	// of a single backing array).
	arena := make(label.Label, 0, len(r.labelCol)/2+1)
	for i := range r.Nodes {
		if l := r.Nodes[i].Label; l != nil {
			out[i] = l
			continue
		}
		start := len(arena)
		var err error
		arena, err = label.DecodeInto(arena, r.LabelBytes(NodeID(i)))
		if err != nil {
			panic(fmt.Sprintf("derive: corrupt label column for node %d: %v", i, err))
		}
		out[i] = arena[start:len(arena):len(arena)]
	}
	return out
}

// SortByLabel sorts the node list by label order (the order the all-pairs
// tree construction requires) and returns it.
func (r *Run) SortByLabel(ns []NodeID) []NodeID {
	sort.Slice(ns, func(i, j int) bool {
		return label.CompareBytes(r.LabelBytes(ns[i]), r.LabelBytes(ns[j])) < 0
	})
	return ns
}

func (r *Run) finish() {
	r.buildByName()
	r.buildAdj()
	if r.labelOffs == nil {
		r.buildLabelColumn()
	}
}

func (r *Run) buildByName() {
	byName := make(map[string]NodeID, len(r.Nodes))
	for i := range r.Nodes {
		byName[r.Nodes[i].Name] = NodeID(i)
	}
	r.byName = byName
}

func (r *Run) buildAdj() {
	out := make([][]int, len(r.Nodes))
	in := make([][]int, len(r.Nodes))
	for ei, e := range r.Edges {
		out[e.From] = append(out[e.From], ei)
		in[e.To] = append(in[e.To], ei)
	}
	r.out, r.in = out, in
}

func (r *Run) buildLabelColumn() {
	offs := make([]uint32, len(r.Nodes)+1)
	col := make([]byte, 0, len(r.Nodes)*4)
	for i := range r.Nodes {
		col = r.Nodes[i].Label.AppendEncode(col)
		offs[i+1] = uint32(len(col))
	}
	r.labelCol, r.labelOffs = col, offs
}

// Policy chooses the production to fire when expanding a composite node.
// prods are the candidate production indices; iter is the 1-based iteration
// number when the module is recursive (0 otherwise).
type Policy func(m wf.ModuleID, prods []int, iter int) int

// Options control derivation.
type Options struct {
	// Seed seeds the default random policy.
	Seed int64
	// TargetEdges stops growth once the emitted edge count reaches it;
	// recursion then terminates as fast as possible. 0 means "expand every
	// recursion exactly once" unless a policy decides otherwise.
	TargetEdges int
	// MaxRecursionDepth caps the iteration count of any single recursion
	// chain (default 1 << 20).
	MaxRecursionDepth int
	// FavorModule, when non-empty, names a recursive module whose recursion
	// is extended while the edge budget lasts; all other recursions run a
	// single iteration (the Fig. 13g/h workload: "firing the specified fork
	// recursion many times and other recursions only once").
	FavorModule string
	// FavorModules extends FavorModule to several modules (e.g. a fork and
	// the loop that re-enters it).
	FavorModules []string
	// FavorCaps optionally caps the iteration count of a favored module's
	// chains (e.g. bound each fork chain while the enclosing loop keeps
	// firing new chains).
	FavorCaps map[string]int
	// ContinueProb, when positive, is the fixed probability of continuing a
	// recursion while the budget lasts. When zero, an adaptive probability
	// is used that sizes chains to the remaining budget (so TargetEdges is
	// reliably approached even for grammars with a single recursion).
	// FavorModule chains always continue while the budget lasts.
	ContinueProb float64
	// Policy overrides all of the above when set.
	Policy Policy
}

type deriver struct {
	spec    *wf.Spec
	opts    Options
	rng     *rand.Rand
	run     *Run
	nameSeq map[string]int
	edges   int // emitted so far (budget accounting)

	minProd []int // module -> production index minimizing derivation size
}

// Derive generates a run of the specification's start module.
func Derive(spec *wf.Spec, opts Options) (*Run, error) {
	return DeriveFrom(spec, spec.Start, opts)
}

// DeriveFrom generates a run rooted at the given module (an execution of
// that module). Rooting at non-start modules is used by the safety property
// tests and the workload generators.
func DeriveFrom(spec *wf.Spec, root wf.ModuleID, opts Options) (*Run, error) {
	if opts.MaxRecursionDepth <= 0 {
		opts.MaxRecursionDepth = 1 << 20
	}
	if opts.FavorModule != "" {
		opts.FavorModules = append(opts.FavorModules, opts.FavorModule)
	}
	d := &deriver{
		spec:    spec,
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		run:     &Run{Spec: spec},
		nameSeq: map[string]int{},
	}
	for _, name := range opts.FavorModules {
		if _, ok := spec.ModuleByName(name); !ok {
			return nil, fmt.Errorf("derive: favored module %q not in specification", name)
		}
	}
	d.computeMinProds()

	rootLabel := label.Label{}
	if spec.IsRecursive(root) {
		c, pos := spec.CycleOf(root)
		rootLabel = label.Label{label.Rec(c.ID, pos, 1)}
	}
	if _, _, err := d.expand(root, rootLabel, 1, -1); err != nil {
		return nil, err
	}
	d.run.finish()
	return d.run, nil
}

// computeMinProds finds, per composite module, the production minimizing
// the total derivation size, so budget-exhausted expansion terminates
// quickly. Standard fixpoint over the grammar.
func (d *deriver) computeMinProds() {
	s := d.spec
	const inf = int(1) << 40
	minSize := make([]int, len(s.Modules))
	d.minProd = make([]int, len(s.Modules))
	for i := range minSize {
		if s.IsComposite(wf.ModuleID(i)) {
			minSize[i] = inf
			d.minProd[i] = -1
		} else {
			minSize[i] = 1
		}
	}
	for changed := true; changed; {
		changed = false
		for k, p := range s.Prods {
			total := 1
			ok := true
			for _, m := range p.Body.Nodes {
				if minSize[m] >= inf {
					ok = false
					break
				}
				total += minSize[m]
			}
			if ok && total < minSize[p.LHS] {
				minSize[p.LHS] = total
				d.minProd[p.LHS] = k
				changed = true
			}
		}
	}
}

// expand derives module m with the given label; iter is its 1-based
// iteration number if m is recursive, and chainCap the absolute emitted-edge
// threshold allotted to the enclosing recursion chain (-1 outside chains).
// It returns the run-node ids of the entry (source) and exit (sink) of the
// produced execution.
//
// Derivation is where labels are built: every append below extends a
// Clone (or a local grown from one), never the shared label of an
// existing node.
//
//provrpq:mutator
func (d *deriver) expand(m wf.ModuleID, lab label.Label, iter, chainCap int) (entry, exit NodeID, err error) {
	if !d.spec.IsComposite(m) {
		id := d.newNode(m, lab)
		return id, id, nil
	}
	if d.spec.IsRecursive(m) && iter == 1 && chainCap < 0 && d.opts.TargetEdges > 0 && d.opts.Policy == nil {
		// Entering a fresh chain: allot it a random share of the remaining
		// budget, so single-recursion grammars reach the target while
		// multi-recursion grammars spread the budget over several chains.
		remaining := d.opts.TargetEdges - d.edges
		if remaining > 0 {
			share := 0.5 + 0.5*d.rng.Float64()
			if len(d.opts.FavorModules) > 0 {
				share = 1.0
			}
			chainCap = d.edges + int(share*float64(remaining))
		} else {
			chainCap = d.edges // exhausted: terminate immediately
		}
	}
	k := d.chooseProduction(m, iter, chainCap)
	p := d.spec.Prods[k]
	d.edges += len(p.Body.Edges)

	recProd, cyclePos := -1, -1
	if d.spec.IsRecursive(m) {
		recProd, cyclePos = d.spec.RecursiveProd(m)
	}

	entries := make([]NodeID, len(p.Body.Nodes))
	exits := make([]NodeID, len(p.Body.Nodes))
	for i, mi := range p.Body.Nodes {
		var childLab label.Label
		childIter := 1
		if k == recProd && i == cyclePos {
			// The cycle successor continues the enclosing R node: replace
			// the trailing recursion entry (s,t,iter) with (s,t,iter+1).
			last := lab[len(lab)-1]
			childLab = append(lab[:len(lab)-1].Clone(), label.Rec(last.X, last.Y, last.Z+1))
			childIter = iter + 1
		} else {
			childLab = append(lab.Clone(), label.Prod(k, i))
			if d.spec.IsRecursive(mi) {
				// Entering a fresh cycle: open an R node at this position.
				c, pos := d.spec.CycleOf(mi)
				childLab = append(childLab, label.Rec(c.ID, pos, 1))
			}
		}
		childCap := -1
		if k == recProd && i == cyclePos {
			childCap = chainCap // stay in the same chain
		}
		e, x, err := d.expand(mi, childLab, childIter, childCap)
		if err != nil {
			return 0, 0, err
		}
		entries[i], exits[i] = e, x
	}
	for _, be := range p.Body.Edges {
		d.run.Edges = append(d.run.Edges, Edge{From: exits[be.From], To: entries[be.To], Tag: be.Tag})
	}
	return entries[d.spec.Source(k)], exits[d.spec.Sink(k)], nil
}

func (d *deriver) newNode(m wf.ModuleID, lab label.Label) NodeID {
	name := d.spec.Name(m)
	d.nameSeq[name]++
	id := NodeID(len(d.run.Nodes))
	d.run.Nodes = append(d.run.Nodes, Node{
		Module: m,
		Name:   fmt.Sprintf("%s:%d", name, d.nameSeq[name]),
		Label:  lab,
	})
	return id
}

// chooseProduction applies the policy (or the default budgeted random
// policy) to pick a production for module m at iteration iter, given the
// enclosing chain's edge allotment.
func (d *deriver) chooseProduction(m wf.ModuleID, iter, chainCap int) int {
	prods := d.spec.ProdsOf(m)
	if d.opts.Policy != nil {
		return d.opts.Policy(m, prods, iter)
	}
	recProd := -1
	if d.spec.IsRecursive(m) {
		recProd, _ = d.spec.RecursiveProd(m)
	}
	if recProd < 0 {
		return prods[d.rng.Intn(len(prods))]
	}

	// Recursive module: decide whether to continue the chain.
	budgetLeft := (d.opts.TargetEdges == 0 || d.edges < d.opts.TargetEdges) &&
		(chainCap < 0 || d.edges < chainCap)
	continueRec := false
	switch {
	case iter >= d.opts.MaxRecursionDepth:
	case !budgetLeft:
	case len(d.opts.FavorModules) > 0:
		name := d.spec.Name(m)
		favored := false
		for _, f := range d.opts.FavorModules {
			if f == name {
				favored = true
				break
			}
		}
		if cap, ok := d.opts.FavorCaps[name]; ok && iter >= cap {
			favored = false
		}
		continueRec = favored && d.opts.TargetEdges > 0
	case d.opts.ContinueProb > 0:
		continueRec = d.rng.Float64() < d.opts.ContinueProb
	case d.opts.TargetEdges > 0:
		continueRec = true // run the chain to its allotment
	default:
		continueRec = d.rng.Float64() < 0.7
	}
	if continueRec {
		return recProd
	}
	// Terminate: choose among non-recursive productions, or the minimal one
	// when exhausted. Multi-module cycles may leave a module with only its
	// recursive production; then we must take it and let the cycle wind
	// down at a module that has a base case.
	var base []int
	for _, k := range prods {
		if k != recProd {
			base = append(base, k)
		}
	}
	if len(base) == 0 {
		return recProd
	}
	if !budgetLeft {
		// Prefer the smallest terminating production.
		if d.minProd[m] >= 0 && d.minProd[m] != recProd {
			return d.minProd[m]
		}
	}
	return base[d.rng.Intn(len(base))]
}
