package derive

import (
	"fmt"

	"provrpq/internal/wf"
)

// Batch is one append-only growth step of a run: new atomic module
// executions, each carrying the derivation-based label it was assigned when
// the workflow engine fired the production that created it, plus new tagged
// data edges. Edge endpoints use the grown run's numbering: an endpoint
// below the pre-append node count references an existing node, anything at
// or above it references a batch node (endpoint - old count).
//
// Growth is append-only by construction — a batch can add nodes and edges
// but never rewrite or remove anything — which is exactly what the paper's
// dynamic labeling supports: a label is assigned once, when its node is
// derived, and never changes (Section II-B), so extending a run leaves
// every existing label byte-identical and only the new nodes' labels are
// derived. Appended content must, like an uploaded run, describe a
// derivation of the specification for safe-query answers to stay exact;
// the structural checks here (modules, labels, tags, endpoints) are the
// same ones DecodeRun applies to a full upload.
type Batch struct {
	Nodes []Node
	Edges []Edge
}

// AppendStats reports the work an append performed, for observability and
// for asserting the incremental-cost contract in tests.
type AppendStats struct {
	// NewNodes and NewEdges count the batch's contents.
	NewNodes, NewEdges int
	// Frontier counts the pre-existing nodes whose derived per-node state
	// (adjacency) changed — the endpoints the new edges attach to,
	// discovered by a BFS over the batch's edges. Everything outside the
	// frontier is untouched: labels are dynamic (assigned at derivation,
	// never recomputed), so an append can never change an existing label,
	// and adjacency only changes where a new edge lands.
	Frontier int
	// Touched = NewNodes + Frontier: the total number of nodes whose state
	// was (re)computed. The append-cost contract is O(Touched + NewEdges)
	// amortized, independent of the run's total size.
	Touched int
}

// AppendEdges extends the run with one growth batch, in place, recomputing
// per-node state only for the batch and its frontier instead of re-deriving
// all n nodes: new nodes are labeled/validated and registered, and
// adjacency is extended exactly at the new edges' endpoints. The batch is
// fully validated before the first mutation, so a rejected append leaves
// the run byte-identical to its pre-call state.
//
// AppendEdges mutates the run and is therefore not safe to call while the
// run is being read concurrently (an Engine built over it caches per-run
// state and would go stale anyway). Exclusive owners — a decoder, a boot
// replay — call it directly; a run served by a Catalog grows through
// Catalog.AppendEdges, which versions the run via Grow and atomically
// swaps engines instead.
func AppendEdges(r *Run, b Batch) (AppendStats, error) {
	base := len(r.Nodes)
	total := base + len(b.Nodes)

	// A columnar-opened run defers its name map and adjacency; growth
	// needs both (duplicate-name checks, adjacency extension), so force
	// them now, before any mutation.
	r.names()
	r.ensureAdj()

	// ---- validate everything before mutating anything ----
	seen := make(map[string]bool, len(b.Nodes))
	for i, n := range b.Nodes {
		if n.Module < 0 || int(n.Module) >= len(r.Spec.Modules) {
			return AppendStats{}, fmt.Errorf("derive: append node %d (%s): module id %d out of range", i, n.Name, n.Module)
		}
		if n.Name == "" {
			return AppendStats{}, fmt.Errorf("derive: append node %d: empty name", i)
		}
		if _, dup := r.NodeByName(n.Name); dup || seen[n.Name] {
			return AppendStats{}, fmt.Errorf("derive: append node %d: duplicate node name %q", i, n.Name)
		}
		seen[n.Name] = true
		if err := ValidateLabel(r.Spec, n.Label); err != nil {
			return AppendStats{}, fmt.Errorf("derive: append node %d (%s): %v", i, n.Name, err)
		}
	}
	alphabet := tagSet(r.Spec)
	for i, e := range b.Edges {
		if e.From < 0 || int(e.From) >= total || e.To < 0 || int(e.To) >= total {
			return AppendStats{}, fmt.Errorf("derive: append edge %d (%d -[%s]-> %d): endpoint out of range [0,%d)",
				i, e.From, e.Tag, e.To, total)
		}
		if !alphabet[e.Tag] {
			return AppendStats{}, fmt.Errorf("derive: append edge %d (%d -> %d): tag %q not in the specification's alphabet",
				i, e.From, e.To, e.Tag)
		}
	}

	// ---- frontier: the pre-existing nodes the batch attaches to ----
	// BFS over the batch's edges from their endpoints; with append-only
	// growth the traversal closes after one step — dynamic labels mean no
	// change ever propagates past the nodes a new edge touches — so the
	// frontier is exactly the set of existing endpoints, and per-endpoint
	// we learn how much adjacency room the touched node needs.
	outAdd := make(map[NodeID]int)
	inAdd := make(map[NodeID]int)
	frontier := make(map[NodeID]bool)
	for _, e := range b.Edges {
		outAdd[e.From]++
		inAdd[e.To]++
		if int(e.From) < base {
			frontier[e.From] = true
		}
		if int(e.To) < base {
			frontier[e.To] = true
		}
	}

	// ---- apply ----
	// Copy-on-write the adjacency lists of frontier nodes this Run does
	// not yet own: a Run produced by Grow shares inner slices with its
	// parent version, and an in-place append must never write into
	// backing arrays a sibling version could also extend. Ownership makes
	// the copy a once-per-list cost rather than once-per-append — without
	// it, a stream of small batches attaching to one high-degree hub node
	// would re-copy the hub's whole list every time, quadratic in
	// aggregate — so the contract stays amortized O(Touched + NewEdges).
	// (Writing an owned list's spare capacity is safe even when a child
	// clone shares the backing: the child's length predates the spare,
	// and the child copies before its own first write.)
	if r.ownedOut == nil {
		r.ownedOut = make(map[NodeID]bool, len(outAdd)+len(b.Nodes))
		r.ownedIn = make(map[NodeID]bool, len(inAdd)+len(b.Nodes))
	}
	for u, c := range outAdd {
		if int(u) < base && !r.ownedOut[u] {
			r.out[u] = growIntSlice(r.out[u], c)
			r.ownedOut[u] = true
		}
	}
	for u, c := range inAdd {
		if int(u) < base && !r.ownedIn[u] {
			r.in[u] = growIntSlice(r.in[u], c)
			r.ownedIn[u] = true
		}
	}
	if len(b.Nodes) > 0 && r.nameOverlay == nil {
		r.nameOverlay = make(map[string]NodeID, len(b.Nodes))
	}
	for _, n := range b.Nodes {
		id := NodeID(len(r.Nodes))
		// New names go to the overlay, never into byName: byName is
		// immutable so Grow versions can share it without an O(n) rehash
		// per append.
		r.nameOverlay[n.Name] = id
		r.Nodes = append(r.Nodes, n)
		if r.labelOffs != nil {
			// Extend the label column in step with the node list. An
			// mmap-backed or Grow-shared column has cap == len, so the
			// first append reallocates to process-owned memory and never
			// writes into a mapping or a sibling version's backing.
			r.labelCol = n.Label.AppendEncode(r.labelCol)
			r.labelOffs = append(r.labelOffs, uint32(len(r.labelCol)))
		}
		r.out = append(r.out, nil)
		r.in = append(r.in, nil)
		// A new node's list starts nil, so its backing is allocated by
		// this Run's own appends.
		r.ownedOut[id] = true
		r.ownedIn[id] = true
	}
	// Fold a grown overlay into a fresh base map (never mutating the old
	// one — other versions may share it). The threshold keeps lookups at
	// two small probes and amortizes the fold to O(1) per appended name.
	if len(r.nameOverlay) > len(r.byName)/4+64 {
		merged := make(map[string]NodeID, len(r.byName)+len(r.nameOverlay))
		for name, id := range r.byName {
			merged[name] = id
		}
		for name, id := range r.nameOverlay {
			merged[name] = id
		}
		r.byName = merged
		r.nameOverlay = nil
	}
	for _, e := range b.Edges {
		ei := len(r.Edges)
		r.Edges = append(r.Edges, e)
		r.out[e.From] = append(r.out[e.From], ei)
		r.in[e.To] = append(r.in[e.To], ei)
	}

	return AppendStats{
		NewNodes: len(b.Nodes),
		NewEdges: len(b.Edges),
		Frontier: len(frontier),
		Touched:  len(b.Nodes) + len(frontier),
	}, nil
}

// growIntSlice returns a fresh copy of s with room for n more entries,
// never aliasing s's backing array.
func growIntSlice(s []int, n int) []int {
	out := make([]int, len(s), len(s)+n)
	copy(out, s)
	return out
}

// Grow returns a new Run equal to r with the batch appended, leaving r —
// and every engine, index or evaluator built over it — fully intact and
// readable. This is the versioning primitive the serving layer swaps in:
// in-flight queries keep reading the old version while new lookups see the
// grown one.
//
// Cost: all expensive per-node work (label validation, name registration,
// adjacency construction) is paid only for the batch and its frontier.
// The node, edge and label columns are append-only, so the clone shares
// their backing with capacity clamped to length: the clone's first own
// append reallocates, and the parent extending its spare capacity stays
// invisible below the clone's length — no O(n) copy per version. Only the
// adjacency headers are memmoved (AppendEdges rewrites their elements in
// place for the frontier's copy-on-write, so the outer arrays cannot be
// shared) plus the (small) name overlay; the name map proper is immutable
// and shared, never rehashed. Bulk loaders ingesting into an unregistered
// run should prefer the in-place AppendEdges, which skips even that. Two
// Grows from the same receiver are independent — the copy-on-write in
// AppendEdges never writes into shared backing, and each clone starts
// with no adjacency ownership.
func (r *Run) Grow(b Batch) (*Run, AppendStats, error) {
	// Materialize any deferred tables first: the clone must copy built
	// state, and the shared byName below must actually exist.
	r.names()
	r.ensureAdj()
	nr := &Run{
		Spec:      r.Spec,
		Nodes:     r.Nodes[:len(r.Nodes):len(r.Nodes)],
		Edges:     r.Edges[:len(r.Edges):len(r.Edges)],
		byName:    r.byName, // immutable: shared, not copied
		out:       append(make([][]int, 0, len(r.out)+len(b.Nodes)), r.out...),
		in:        append(make([][]int, 0, len(r.in)+len(b.Nodes)), r.in...),
		labelCol:  r.labelCol[:len(r.labelCol):len(r.labelCol)],
		labelOffs: r.labelOffs[:len(r.labelOffs):len(r.labelOffs)],
	}
	if len(r.nameOverlay) > 0 {
		nr.nameOverlay = make(map[string]NodeID, len(r.nameOverlay)+len(b.Nodes))
		for name, id := range r.nameOverlay {
			nr.nameOverlay[name] = id
		}
	}
	stats, err := AppendEdges(nr, b)
	if err != nil {
		return nil, AppendStats{}, err
	}
	return nr, stats, nil
}

// tagSet returns the specification's edge-tag alphabet Γ as a set. The
// set is the Spec's shared immutable table — validation only reads it, so
// nothing is materialized per call.
func tagSet(spec *wf.Spec) map[string]bool {
	return spec.TagSet()
}
