package derive

import (
	"encoding/base64"
	"encoding/json"
	"strings"
	"testing"

	"provrpq/internal/label"
	"provrpq/internal/wf"
)

func TestValidateLabelAcceptsDerived(t *testing.T) {
	spec := wf.PaperSpec()
	r, err := Derive(spec, Options{Seed: 1, TargetEdges: 150})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Nodes {
		if err := ValidateLabel(spec, n.Label); err != nil {
			t.Fatalf("derived label %s rejected: %v", n.Label, err)
		}
	}
}

func TestValidateLabelRejectsGarbage(t *testing.T) {
	spec := wf.PaperSpec()
	cases := []struct {
		name string
		l    label.Label
		sub  string
	}{
		{"bad production", label.Label{label.Prod(99, 0)}, "production 99"},
		{"bad position", label.Label{label.Prod(0, 99)}, "body position 99"},
		{"bad cycle", label.Label{label.Rec(7, 0, 1)}, "cycle 7"},
		{"bad entry edge", label.Label{label.Rec(0, 5, 1)}, "entry edge 5"},
		{"zero iteration", label.Label{label.Rec(0, 0, 0)}, "iteration 0"},
		{"nested garbage", label.Label{label.Prod(0, 1), label.Rec(0, 0, 1), label.Prod(1, 42)}, "body position 42"},
	}
	for _, c := range cases {
		err := ValidateLabel(spec, c.l)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.sub)
		}
	}
}

// TestDecodeRunRejectsCorruptLabels: a tampered run file must fail cleanly
// at load time rather than panic inside the decoders later.
func TestDecodeRunRejectsCorruptLabels(t *testing.T) {
	spec := wf.PaperSpec()
	bad := label.Label{label.Prod(3, 77)}
	rj := map[string]interface{}{
		"nodes": []map[string]string{{
			"name":   "c:1",
			"module": "c",
			"label":  base64.StdEncoding.EncodeToString(bad.Encode()),
		}},
		"edges": []Edge{},
	}
	data, err := json.Marshal(rj)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRun(spec, data); err == nil {
		t.Fatal("corrupt label should be rejected at load time")
	}
}
