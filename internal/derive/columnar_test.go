package derive

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"

	"provrpq/internal/label"
	"provrpq/internal/wf"
)

// reencode recomputes a tampered payload's checksum so decoder tests hit
// the structural validation they target instead of the checksum gate.
func reseal(data []byte) []byte {
	out := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(out[len(out)-4:], crc32.Checksum(out[:len(out)-4], crc32.MakeTable(crc32.Castagnoli)))
	return out
}

func bigRun(t *testing.T) *Run {
	t.Helper()
	r, err := Derive(wf.PaperSpec(), Options{Seed: 7, TargetEdges: 2000})
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	return r
}

// runsEqual compares two runs structurally: nodes (module, name, label)
// and edges.
func runsEqual(t *testing.T, a, b *Run) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d nodes, %d/%d edges", a.NumNodes(), b.NumNodes(), a.NumEdges(), b.NumEdges())
	}
	for i := range a.Nodes {
		if a.Nodes[i].Module != b.Nodes[i].Module || a.Nodes[i].Name != b.Nodes[i].Name {
			t.Fatalf("node %d: %v/%q vs %v/%q", i, a.Nodes[i].Module, a.Nodes[i].Name, b.Nodes[i].Module, b.Nodes[i].Name)
		}
		if !label.Equal(a.Label(NodeID(i)), b.Label(NodeID(i))) {
			t.Fatalf("node %d label: %s vs %s", i, a.Label(NodeID(i)), b.Label(NodeID(i)))
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d: %+v vs %+v", i, a.Edges[i], b.Edges[i])
		}
	}
}

func TestColumnarRoundTrip(t *testing.T) {
	spec := wf.PaperSpec()
	r := bigRun(t)
	data, err := EncodeColumnar(r)
	if err != nil {
		t.Fatalf("EncodeColumnar: %v", err)
	}
	if !IsColumnar(data) {
		t.Fatalf("EncodeColumnar payload not recognized as columnar")
	}
	for _, decode := range []struct {
		name string
		fn   func(*wf.Spec, []byte) (*Run, error)
	}{{"DecodeColumnar", DecodeColumnar}, {"OpenColumnar", OpenColumnar}} {
		got, err := decode.fn(spec, data)
		if err != nil {
			t.Fatalf("%s: %v", decode.name, err)
		}
		runsEqual(t, r, got)
		// Name-addressed lookup and adjacency work (lazily for Open).
		for i := range r.Nodes {
			id, ok := got.NodeByName(r.Nodes[i].Name)
			if !ok || id != NodeID(i) {
				t.Fatalf("%s: NodeByName(%q) = %d,%v", decode.name, r.Nodes[i].Name, id, ok)
			}
			if len(got.Out(NodeID(i))) != len(r.Out(NodeID(i))) || len(got.In(NodeID(i))) != len(r.In(NodeID(i))) {
				t.Fatalf("%s: node %d adjacency mismatch", decode.name, i)
			}
		}
	}
}

// TestColumnarJSONByteIdentity is the format's codec-fidelity property:
// encoding a JSON-decoded run as columnar, reopening it, and re-encoding
// as JSON yields byte-identical JSON.
func TestColumnarJSONByteIdentity(t *testing.T) {
	spec := wf.PaperSpec()
	r := bigRun(t)
	jsonData, err := EncodeRun(r)
	if err != nil {
		t.Fatalf("EncodeRun: %v", err)
	}
	jr, err := DecodeRun(spec, jsonData)
	if err != nil {
		t.Fatalf("DecodeRun: %v", err)
	}
	col, err := EncodeColumnar(jr)
	if err != nil {
		t.Fatalf("EncodeColumnar: %v", err)
	}
	cr, err := OpenColumnar(spec, col)
	if err != nil {
		t.Fatalf("OpenColumnar: %v", err)
	}
	jsonAgain, err := EncodeRun(cr)
	if err != nil {
		t.Fatalf("EncodeRun(columnar-opened): %v", err)
	}
	if !bytes.Equal(jsonData, jsonAgain) {
		t.Fatalf("JSON -> columnar -> JSON is not byte-identical (%d vs %d bytes)", len(jsonData), len(jsonAgain))
	}
	// And the columnar encoding itself is deterministic.
	col2, err := EncodeColumnar(cr)
	if err != nil {
		t.Fatalf("EncodeColumnar(reopened): %v", err)
	}
	if !bytes.Equal(col, col2) {
		t.Fatalf("columnar re-encode is not byte-identical")
	}
}

func TestColumnarBatchRoundTrip(t *testing.T) {
	spec := wf.PaperSpec()
	b := Batch{
		Nodes: []Node{{Module: 0, Name: "x:extra", Label: label.Label{label.Prod(0, 0), label.Rec(0, 0, 3)}}},
		// Endpoints deliberately reference the (future) grown run, beyond
		// any batch-local range.
		Edges: []Edge{{From: 2, To: 100, Tag: "b"}},
	}
	data, err := EncodeBatchColumnar(spec, b)
	if err != nil {
		t.Fatalf("EncodeBatchColumnar: %v", err)
	}
	got, err := DecodeBatch(spec, data) // sniffs -> DecodeBatchColumnar
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got.Nodes) != 1 || got.Nodes[0].Name != "x:extra" || !label.Equal(got.Nodes[0].Label, b.Nodes[0].Label) {
		t.Fatalf("batch nodes differ: %+v", got.Nodes)
	}
	if len(got.Edges) != 1 || got.Edges[0] != b.Edges[0] {
		t.Fatalf("batch edges differ: %+v", got.Edges)
	}
	// A run payload must not decode as a batch and vice versa.
	if _, err := DecodeBatchColumnar(spec, mustEncodeColumnar(t, bigRun(t))); err == nil {
		t.Fatalf("DecodeBatchColumnar accepted a run payload")
	}
	if _, err := DecodeColumnar(spec, data); err == nil {
		t.Fatalf("DecodeColumnar accepted a batch payload")
	}
}

func mustEncodeColumnar(t *testing.T, r *Run) []byte {
	t.Helper()
	data, err := EncodeColumnar(r)
	if err != nil {
		t.Fatalf("EncodeColumnar: %v", err)
	}
	return data
}

func TestColumnarDecodeErrors(t *testing.T) {
	spec := wf.PaperSpec()
	data := mustEncodeColumnar(t, paperRun(t))

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 3, 8, colHeaderSize, len(data) / 2, len(data) - 1} {
			if _, err := DecodeColumnar(spec, data[:n]); err == nil {
				t.Errorf("decode of %d/%d bytes succeeded", n, len(data))
			}
		}
	})
	t.Run("bit-flip", func(t *testing.T) {
		// Any single corrupted byte must fail the checksum.
		for _, off := range []int{0, 5, colHeaderSize + 1, len(data) / 2, len(data) - 5} {
			bad := append([]byte(nil), data...)
			bad[off] ^= 0x40
			if _, err := DecodeColumnar(spec, bad); err == nil {
				t.Errorf("decode with corrupt byte %d succeeded", off)
			}
		}
	})
	t.Run("checksum-names-cause", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[len(bad)-1] ^= 1
		_, err := DecodeColumnar(spec, bad)
		if err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Errorf("err = %v, want checksum mismatch", err)
		}
	})
	t.Run("resealed-structural", func(t *testing.T) {
		// A payload with a *valid* checksum but hostile contents must be
		// rejected by structural validation, on both decode paths.
		cases := []func([]byte){
			func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 1<<30) },        // node count
			func(b []byte) { binary.LittleEndian.PutUint32(b[16:], 1<<30) },        // edge count
			func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 99) },            // version
			func(b []byte) { binary.LittleEndian.PutUint32(b[28:], 7) },            // reserved
			func(b []byte) { binary.LittleEndian.PutUint32(b[colHeaderSize:], 9) }, // module dict offs[0]
		}
		for i, mutate := range cases {
			bad := append([]byte(nil), data...)
			mutate(bad)
			bad = reseal(bad)
			if _, err := DecodeColumnar(spec, bad); err == nil {
				t.Errorf("case %d: strict decode accepted a resealed hostile payload", i)
			}
			if _, err := OpenColumnar(spec, bad); err == nil {
				t.Errorf("case %d: trusted open accepted a resealed hostile payload", i)
			}
		}
	})
	t.Run("unknown-module", func(t *testing.T) {
		// Corrupt the module dictionary blob's first byte (module names sit
		// right after the dict offsets) and reseal.
		r := paperRun(t)
		enc := mustEncodeColumnar(t, r)
		// module dict: offsets at colHeaderSize, blob after.
		nmods := int(binary.LittleEndian.Uint32(enc[20:]))
		blobOff := colHeaderSize + 4*(nmods+1)
		bad := append([]byte(nil), enc...)
		bad[blobOff] = 'Z'
		bad = reseal(bad)
		_, err := DecodeColumnar(spec, bad)
		if err == nil || !strings.Contains(err.Error(), "unknown module") {
			t.Errorf("err = %v, want unknown module", err)
		}
	})
	t.Run("duplicate-name-strict-only", func(t *testing.T) {
		// Two nodes sharing a name: strict decode rejects (the PR-3
		// shadowing fix), trusted open defers the map and accepts.
		r, err := Derive(wf.PaperSpec(), Options{Policy: scriptW2W2W3})
		if err != nil {
			t.Fatalf("Derive: %v", err)
		}
		r.Nodes[1].Name = r.Nodes[0].Name
		r.byName = nil
		r.buildByName()
		enc := mustEncodeColumnar(t, r)
		if _, err := DecodeColumnar(spec, enc); err == nil || !strings.Contains(err.Error(), "duplicate node name") {
			t.Errorf("strict decode: err = %v, want duplicate node name", err)
		}
		if _, err := OpenColumnar(spec, enc); err != nil {
			t.Errorf("trusted open: %v", err)
		}
	})
}

func TestColumnarLabelColumnValidation(t *testing.T) {
	spec := wf.PaperSpec()
	// A label entry referencing a production out of range must be rejected
	// even with a valid checksum.
	r, err := Derive(spec, Options{Policy: scriptW2W2W3})
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	r.Nodes[3].Label = label.Label{label.Prod(99, 0)}
	r.labelCol, r.labelOffs = nil, nil
	r.buildLabelColumn()
	enc := mustEncodeColumnar(t, r)
	for _, decode := range []func(*wf.Spec, []byte) (*Run, error){DecodeColumnar, OpenColumnar} {
		if _, err := decode(spec, enc); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("err = %v, want label entry out of range", err)
		}
	}
}

func TestColumnarOpenThenAppendAndGrow(t *testing.T) {
	spec := wf.PaperSpec()
	r := paperRun(t)
	opened, err := OpenColumnar(spec, mustEncodeColumnar(t, r))
	if err != nil {
		t.Fatalf("OpenColumnar: %v", err)
	}
	base := opened.NumNodes()
	batch := Batch{
		Nodes: []Node{{Module: opened.Nodes[0].Module, Name: "fresh:1", Label: opened.Label(0).Clone()}},
		Edges: []Edge{{From: 0, To: NodeID(base), Tag: "b"}},
	}
	// Grow must not disturb the opened parent.
	colBefore := append([]byte(nil), opened.labelCol...)
	grown, _, err := opened.Grow(batch)
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if grown.NumNodes() != base+1 || grown.NumEdges() != opened.NumEdges()+1 {
		t.Fatalf("grown shape: %d nodes %d edges", grown.NumNodes(), grown.NumEdges())
	}
	if !bytes.Equal(colBefore, opened.labelCol) {
		t.Fatalf("Grow mutated the parent's label column")
	}
	if id, ok := grown.NodeByName("fresh:1"); !ok || id != NodeID(base) {
		t.Fatalf("grown NodeByName(fresh:1) = %d,%v", id, ok)
	}
	if !label.Equal(grown.Label(NodeID(base)), batch.Nodes[0].Label) {
		t.Fatalf("grown label mismatch")
	}
	// And a grown columnar run re-encodes cleanly.
	re, err := DecodeColumnar(spec, mustEncodeColumnar(t, grown))
	if err != nil {
		t.Fatalf("re-decode grown: %v", err)
	}
	runsEqual(t, grown, re)

	// In-place append on a freshly opened run also works (boot replay path).
	opened2, err := OpenColumnar(spec, mustEncodeColumnar(t, r))
	if err != nil {
		t.Fatalf("OpenColumnar: %v", err)
	}
	if _, err := AppendEdges(opened2, batch); err != nil {
		t.Fatalf("AppendEdges: %v", err)
	}
	runsEqual(t, grown, opened2)
}

// TestColumnarEmptyLabels checks the nil-vs-empty label distinction
// survives the column: the derivation root has an empty (zero-entry)
// label, which must stay len-0 across the round trip.
func TestColumnarEmptyLabels(t *testing.T) {
	spec := wf.PaperSpec()
	r := paperRun(t)
	found := false
	for i := range r.Nodes {
		if len(r.Nodes[i].Label) == 0 {
			found = true
		}
	}
	if !found {
		t.Skip("no empty-label node in fixture")
	}
	got, err := OpenColumnar(spec, mustEncodeColumnar(t, r))
	if err != nil {
		t.Fatalf("OpenColumnar: %v", err)
	}
	for i := range r.Nodes {
		if len(r.Nodes[i].Label) == 0 && len(got.Label(NodeID(i))) != 0 {
			t.Fatalf("node %d: empty label decoded as %s", i, got.Label(NodeID(i)))
		}
	}
}

func FuzzDecodeColumnar(f *testing.F) {
	spec := wf.PaperSpec()
	r, err := Derive(spec, Options{Seed: 1, TargetEdges: 40})
	if err != nil {
		f.Fatalf("Derive: %v", err)
	}
	seed, err := EncodeColumnar(r)
	if err != nil {
		f.Fatalf("EncodeColumnar: %v", err)
	}
	f.Add(seed)
	f.Add([]byte(colMagic))
	f.Add(reseal(append(append([]byte(colMagic), make([]byte, colHeaderSize-4)...), 0, 0, 0, 0)))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; on success the run must be internally
		// consistent enough to re-encode.
		r, err := DecodeColumnar(spec, data)
		if err != nil {
			return
		}
		if _, err := EncodeColumnar(r); err != nil {
			t.Fatalf("re-encode of accepted payload failed: %v", err)
		}
		if _, err := OpenColumnar(spec, data); err != nil {
			t.Fatalf("strict decode accepted but trusted open rejected: %v", err)
		}
	})
}

// ---- benchmarks backing the boot-speed claim at the codec level ----

func benchRun(b *testing.B, edges int) *Run {
	b.Helper()
	r, err := Derive(wf.PaperSpec(), Options{Seed: 42, TargetEdges: edges})
	if err != nil {
		b.Fatalf("Derive: %v", err)
	}
	return r
}

func BenchmarkDecodeRunJSON(b *testing.B) {
	r := benchRun(b, 100000)
	data, err := EncodeRun(r)
	if err != nil {
		b.Fatalf("EncodeRun: %v", err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRun(wf.PaperSpec(), data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenColumnar(b *testing.B) {
	r := benchRun(b, 100000)
	data, err := EncodeColumnar(r)
	if err != nil {
		b.Fatalf("EncodeColumnar: %v", err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OpenColumnar(wf.PaperSpec(), data); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = fmt.Sprintf // keep fmt linked for debug edits
