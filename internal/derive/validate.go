package derive

import (
	"fmt"

	"provrpq/internal/label"
	"provrpq/internal/wf"
)

// ValidateLabel checks that every entry of a label is structurally valid
// for the specification: production entries reference existing productions
// and body positions, recursion entries reference existing cycles with
// in-range entry edges and positive iteration numbers. The decoders index
// specification tables with label entries, so externally loaded labels
// (DecodeRun) must pass this check before use.
func ValidateLabel(spec *wf.Spec, l label.Label) error {
	for i, e := range l {
		if err := validateEntry(spec, e, i); err != nil {
			return err
		}
	}
	return nil
}

// validateEntry checks one entry at position i of a label — shared by
// ValidateLabel and the columnar decoder's label-column validation pass,
// which walks encoded entries with a cursor instead of materializing them.
func validateEntry(spec *wf.Spec, e label.Entry, i int) error {
	if e.Rec {
		if e.X < 0 || e.X >= len(spec.Cycles()) {
			return fmt.Errorf("label entry %d: cycle %d out of range", i, e.X)
		}
		c := spec.Cycles()[e.X]
		if e.Y < 0 || e.Y >= c.Len() {
			return fmt.Errorf("label entry %d: cycle entry edge %d out of range [0,%d)", i, e.Y, c.Len())
		}
		if e.Z < 1 {
			return fmt.Errorf("label entry %d: iteration %d < 1", i, e.Z)
		}
		return nil
	}
	if e.X < 0 || e.X >= len(spec.Prods) {
		return fmt.Errorf("label entry %d: production %d out of range", i, e.X)
	}
	if e.Y < 0 || e.Y >= len(spec.Prods[e.X].Body.Nodes) {
		return fmt.Errorf("label entry %d: body position %d out of range for production %d", i, e.Y, e.X)
	}
	return nil
}
