package bench

import (
	"fmt"
	"math/rand"

	"provrpq/internal/automata"
	"provrpq/internal/core"
	"provrpq/internal/derive"
	"provrpq/internal/index"
	"provrpq/internal/label"
	"provrpq/internal/plan"
	"provrpq/internal/workload"
)

// FigPlan is the selectivity-planner experiment (beyond the paper; the
// paper's future-work item 1 asks for exactly this cost model): all-pairs
// IFQ queries over BioAID and QBLast runs, one highly selective (anchored
// at the run's ends, under ten matches) and one dense (per-iteration
// pipeline tags, many matches), timed under each forced strategy and under
// Auto (the planner's choice). The planner wins when Auto tracks the best
// forced column on both rows: seeded on the selective workload, optRPL on
// the dense one.
func FigPlan(cfg Config) error {
	header(cfg, "plan: selectivity planner — Auto vs forced strategies (l1 = l2 = all nodes)")
	size := 2000
	if cfg.Quick {
		size = 300
	}
	report := PlanFigReport{Quick: cfg.Quick, RunEdges: size}
	fmt.Fprintf(cfg.W, "%-8s %-10s %-34s %-8s %-18s %-10s %-10s %-10s %-10s\n",
		"dataset", "workload", "query", "matches", "chosen(seed)", "RPL-s", "optRPL-s", "seeded-s", "Auto-s")
	for _, d := range []*workload.Dataset{workload.BioAID(), workload.QBLast()} {
		run, err := derive.Derive(d.Spec, derive.Options{Seed: cfg.Seed, TargetEdges: size})
		if err != nil {
			return err
		}
		ix := index.Build(run)
		pl := plan.New(ix)
		pl.ReachDensity() // pay the one-time statistics sample outside the timings
		nodes := run.AllNodes()
		labels := make([]label.Label, len(nodes))
		for i, id := range nodes {
			labels[i] = run.Label(id)
		}
		r := rand.New(rand.NewSource(cfg.Seed + 7))
		cases := []struct{ sel, q string }{
			{"selective", d.SafeIFQ(r, 3, false)},
			{"dense", d.SafeIFQ(r, 3, true)},
		}
		for _, c := range cases {
			q := automata.MustParse(c.q)
			env, err := core.Compile(run.Spec, q)
			if err != nil {
				return err
			}
			if !env.Safe() {
				return fmt.Errorf("bench: IFQ %s unexpectedly unsafe on %s", c.q, d.Name)
			}
			matches := 0
			rplT, err := timeOfErr(func() error {
				matches = 0
				return env.AllPairsSafe(labels, labels, core.RPL, func(i, j int) { matches++ })
			})
			if err != nil {
				return err
			}
			optT, err := timeOfErr(func() error {
				return env.AllPairsSafe(labels, labels, core.OptRPL, func(i, j int) {})
			})
			if err != nil {
				return err
			}
			dec := pl.Plan(env, len(nodes), len(nodes))
			seedT, err := timeOfErr(func() error {
				return plan.AllPairsSeeded(env, ix, dec, nodes, nodes, func(i, j int) {})
			})
			if err != nil {
				return err
			}
			// Auto pays for the plan decision plus the chosen strategy.
			autoT, err := timeOfErr(func() error {
				dec := pl.Plan(env, len(nodes), len(nodes))
				switch dec.Strategy {
				case plan.RPL:
					return env.AllPairsSafe(labels, labels, core.RPL, func(i, j int) {})
				case plan.Seeded:
					return plan.AllPairsSeeded(env, ix, dec, nodes, nodes, func(i, j int) {})
				default:
					return env.AllPairsSafe(labels, labels, core.OptRPL, func(i, j int) {})
				}
			})
			if err != nil {
				return err
			}
			qs := c.q
			if len(qs) > 32 {
				qs = qs[:29] + "..."
			}
			chosen := fmt.Sprintf("%s(%s:%d)", dec.Strategy, dec.SeedTag, dec.SeedCount)
			fmt.Fprintf(cfg.W, "%-8s %-10s %-34s %-8d %-18s %-10.4f %-10.4f %-10.4f %-10.4f\n",
				d.Name, c.sel, qs, matches, chosen, sec(rplT), sec(optT), sec(seedT), sec(autoT))
			report.Rows = append(report.Rows, PlanFigRow{
				Dataset:  d.Name,
				Workload: c.sel,
				Query:    c.q,
				Matches:  matches,
				Chosen:   chosen,
				RPLSec:   sec(rplT),
				OptSec:   sec(optT),
				SeedSec:  sec(seedT),
				AutoSec:  sec(autoT),
			})
		}
	}
	return writeFigJSON(cfg, "plan", report)
}

// PlanFigReport is the machine-readable record of the planner experiment,
// written as BENCH_plan.json when Config.JSONDir is set.
type PlanFigReport struct {
	Quick    bool         `json:"quick"`
	RunEdges int          `json:"run_edges"`
	Rows     []PlanFigRow `json:"rows"`
}

// PlanFigRow is one (dataset, workload) cell of the planner experiment.
type PlanFigRow struct {
	Dataset  string  `json:"dataset"`
	Workload string  `json:"workload"`
	Query    string  `json:"query"`
	Matches  int     `json:"matches"`
	Chosen   string  `json:"chosen"`
	RPLSec   float64 `json:"rpl_sec"`
	OptSec   float64 `json:"optrpl_sec"`
	SeedSec  float64 `json:"seeded_sec"`
	AutoSec  float64 `json:"auto_sec"`
}
