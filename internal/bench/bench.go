// Package bench regenerates every figure of the paper's evaluation
// (Section V): one runner per figure, printing the same series the paper
// plots. Absolute numbers differ from the paper's 2013 Java/Mac testbed;
// EXPERIMENTS.md records the shape comparison.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"provrpq/internal/automata"
	"provrpq/internal/baseline"
	"provrpq/internal/core"
	"provrpq/internal/derive"
	"provrpq/internal/index"
	"provrpq/internal/label"
	"provrpq/internal/workload"
)

// Config controls a figure run.
type Config struct {
	// W receives the report (required).
	W io.Writer
	// Quick shrinks workloads for tests and smoke runs.
	Quick bool
	// Seed randomizes workload generation deterministically.
	Seed int64
	// Workers extends the worker sweep of the parallel figure ("par")
	// beyond its default 1/2/4/8 ladder.
	Workers int
	// JSONDir, when non-empty, makes figures with machine-readable output
	// ("boot" and "plan") also write a BENCH_<figure>.json file into this
	// directory, alongside the textual report on W.
	JSONDir string
}

// Figures lists the available experiment ids in paper order; "par" is the
// parallel-scaling experiment, "plan" the selectivity-planner experiment,
// "boot" the zero-copy columnar boot experiment and "ingest" the
// group-commit ingest experiment, all beyond the paper.
func Figures() []string {
	return []string{"13a", "13b", "13c", "13d", "13e", "13f", "13g", "13h", "15a", "15b", "par", "plan", "boot", "ingest"}
}

// Run dispatches one figure by id.
func Run(id string, cfg Config) error {
	switch id {
	case "13a":
		return Fig13a(cfg)
	case "13b":
		return Fig13b(cfg)
	case "13c":
		return Fig13c(cfg)
	case "13d":
		return Fig13d(cfg)
	case "13e":
		return Fig13e(cfg)
	case "13f":
		return Fig13f(cfg)
	case "13g":
		return Fig13g(cfg)
	case "13h":
		return Fig13h(cfg)
	case "15a":
		return Fig15a(cfg)
	case "15b":
		return Fig15b(cfg)
	case "par":
		return FigPar(cfg)
	case "plan":
		return FigPlan(cfg)
	case "boot":
		return FigBoot(cfg)
	case "ingest":
		return FigIngest(cfg)
	}
	return fmt.Errorf("bench: unknown figure %q (have %v)", id, Figures())
}

func header(cfg Config, title string) {
	fmt.Fprintf(cfg.W, "== %s ==\n", title)
}

// timeOf measures one invocation.
func timeOf(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// timeOfErr measures one fallible invocation, propagating its error — a
// figure runner is library code, so an evaluation failure must travel up
// the gather path as a value, never tear the process down as a panic.
func timeOfErr(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// Fig13a: safety-check time overhead versus grammar size (synthetic
// specifications, 20 IFQs with k=3 per size; avg and worst, ms).
func Fig13a(cfg Config) error {
	header(cfg, "Fig 13a: time overhead vs grammar size (synthetic, IFQ k=3)")
	sizes := []int{400, 600, 800, 1000, 1200}
	queries := 20
	if cfg.Quick {
		sizes = []int{200, 400}
		queries = 4
	}
	fmt.Fprintf(cfg.W, "%-14s %-12s %-12s\n", "grammar-size", "avg-ms", "worst-ms")
	for _, size := range sizes {
		d := workload.Synthetic(size, cfg.Seed)
		r := rand.New(rand.NewSource(cfg.Seed + int64(size)))
		var total, worst time.Duration
		for i := 0; i < queries; i++ {
			q := automata.MustParse(d.SafeIFQ(r, 3, true))
			dur, err := timeOfErr(func() error {
				_, err := core.Compile(d.Spec, q)
				return err
			})
			if err != nil {
				return err
			}
			total += dur
			if dur > worst {
				worst = dur
			}
		}
		fmt.Fprintf(cfg.W, "%-14d %-12.3f %-12.3f\n",
			d.Spec.Size(), ms(total)/float64(queries), ms(worst))
	}
	return nil
}

// Fig13b: safety-check overhead versus query size k on BioAID and QBLast.
func Fig13b(cfg Config) error {
	header(cfg, "Fig 13b: time overhead vs query size k (BioAID, QBLast IFQs)")
	ks := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	queries := 10
	if cfg.Quick {
		ks = []int{0, 2, 4}
		queries = 3
	}
	fmt.Fprintf(cfg.W, "%-8s %-9s %-14s %-14s\n", "dataset", "k", "avg-ms", "worst-ms")
	for _, d := range []*workload.Dataset{workload.BioAID(), workload.QBLast()} {
		r := rand.New(rand.NewSource(cfg.Seed + 1))
		for _, k := range ks {
			var total, worst time.Duration
			for i := 0; i < queries; i++ {
				q := automata.MustParse(d.SafeIFQ(r, k, i%2 == 0))
				dur, err := timeOfErr(func() error {
					_, err := core.Compile(d.Spec, q)
					return err
				})
				if err != nil {
					return err
				}
				total += dur
				if dur > worst {
					worst = dur
				}
			}
			fmt.Fprintf(cfg.W, "%-8s %-9d %-14.3f %-14.3f\n",
				d.Name, k, ms(total)/float64(queries), ms(worst))
		}
	}
	return nil
}

// pairSample draws npairs random node pairs from a run.
func pairSample(r *rand.Rand, run *derive.Run, npairs int) [][2]derive.NodeID {
	n := run.NumNodes()
	out := make([][2]derive.NodeID, npairs)
	for i := range out {
		out[i] = [2]derive.NodeID{derive.NodeID(r.Intn(n)), derive.NodeID(r.Intn(n))}
	}
	return out
}

// Fig13c: pairwise query time versus run size (BioAID, IFQ k=3, 10K node
// pairs): RPL vs Option G3 vs Option G2, µs per pair.
func Fig13c(cfg Config) error {
	header(cfg, "Fig 13c: pairwise query time vs run size (BioAID, IFQ k=3)")
	sizes := []int{1000, 2000, 4000, 8000}
	npairs := 10000
	if cfg.Quick {
		sizes = []int{300, 600}
		npairs = 500
	}
	d := workload.BioAID()
	r := rand.New(rand.NewSource(cfg.Seed + 2))
	// Draw the three symbols from one high-traffic pipeline so their
	// occurrence lists grow with run size (what stresses G3).
	g := d.LowSelGroups[0]
	query := workload.IFQ(g[1], g[6], g[11])
	fmt.Fprintf(cfg.W, "query: %s\n", query)
	fmt.Fprintf(cfg.W, "%-10s %-12s %-12s %-12s\n", "run-edges", "RPL-µs", "G3-µs", "G2-µs")
	for _, size := range sizes {
		run, err := derive.Derive(d.Spec, derive.Options{Seed: cfg.Seed, TargetEdges: size})
		if err != nil {
			return err
		}
		pairs := pairSample(r, run, npairs)
		q := automata.MustParse(query)
		ix := index.Build(run)

		// RPL: compile (the amortized overhead) plus one decode per pair.
		var env *core.Env
		rplTotal, err := timeOfErr(func() error {
			env, err = core.Compile(run.Spec, q)
			if err != nil {
				return err
			}
			dec := env.NewDecoder() // hold one decoder: no pool traffic in the timed loop
			for _, p := range pairs {
				dec.PairwiseUnchecked(run.Label(p[0]), run.Label(p[1]))
			}
			return nil
		})
		if err != nil {
			return err
		}
		if !env.Safe() {
			return fmt.Errorf("bench: query %s unexpectedly unsafe", query)
		}

		g3, ok := baseline.NewG3(ix, q)
		if !ok {
			return fmt.Errorf("bench: %s is not an IFQ", query)
		}
		g3Total := timeOf(func() {
			for _, p := range pairs {
				g3.Pairwise(p[0], p[1])
			}
		})

		g2 := baseline.NewG2(ix, q)
		g2Pairs := pairs
		g2Scale := 1.0
		if len(pairs) > 200 {
			// G2 re-searches per pair; sample to keep the sweep tractable
			// and scale the per-pair cost accordingly (it is unaffected).
			g2Pairs = pairs[:200]
			g2Scale = float64(len(pairs)) / 200
		}
		g2Total := time.Duration(float64(timeOf(func() {
			for _, p := range g2Pairs {
				g2.Pairwise(p[0], p[1])
			}
		})))
		_ = g2Scale

		fmt.Fprintf(cfg.W, "%-10d %-12.3f %-12.3f %-12.3f\n",
			run.NumEdges(),
			us(rplTotal)/float64(len(pairs)),
			us(g3Total)/float64(len(pairs)),
			us(g2Total)/float64(len(g2Pairs)))
	}
	return nil
}

// Fig13d: pairwise query time versus query size k (BioAID, runs of 2K).
func Fig13d(cfg Config) error {
	header(cfg, "Fig 13d: pairwise query time vs query size k (BioAID, run 2K)")
	ks := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	npairs := 10000
	size := 2000
	if cfg.Quick {
		ks = []int{0, 2, 4}
		npairs = 400
		size = 400
	}
	d := workload.BioAID()
	r := rand.New(rand.NewSource(cfg.Seed + 3))
	run, err := derive.Derive(d.Spec, derive.Options{Seed: cfg.Seed, TargetEdges: size})
	if err != nil {
		return err
	}
	ix := index.Build(run)
	pairs := pairSample(r, run, npairs)
	fmt.Fprintf(cfg.W, "%-6s %-12s %-12s %-12s\n", "k", "RPL-µs", "G3-µs", "G2-µs")
	for _, k := range ks {
		q := automata.MustParse(d.SafeIFQ(r, k, true))
		var env *core.Env
		rplTotal, err := timeOfErr(func() error {
			env, err = core.Compile(run.Spec, q)
			if err != nil {
				return err
			}
			dec := env.NewDecoder() // hold one decoder: no pool traffic in the timed loop
			for _, p := range pairs {
				dec.PairwiseUnchecked(run.Label(p[0]), run.Label(p[1]))
			}
			return nil
		})
		if err != nil {
			return err
		}
		g3, ok := baseline.NewG3(ix, q)
		if !ok {
			return fmt.Errorf("bench: not an IFQ")
		}
		g3Pairs := pairs
		if k >= 2 && len(pairs) > 1000 {
			g3Pairs = pairs[:1000] // occurrence-chain joins grow with k
		}
		g3Total := timeOf(func() {
			for _, p := range g3Pairs {
				g3.Pairwise(p[0], p[1])
			}
		})
		g2 := baseline.NewG2(ix, q)
		g2Pairs := pairs
		if len(pairs) > 200 {
			g2Pairs = pairs[:200]
		}
		g2Total := timeOf(func() {
			for _, p := range g2Pairs {
				g2.Pairwise(p[0], p[1])
			}
		})
		fmt.Fprintf(cfg.W, "%-6d %-12.3f %-12.3f %-12.3f\n",
			k,
			us(rplTotal)/float64(len(pairs)),
			us(g3Total)/float64(len(g3Pairs)),
			us(g2Total)/float64(len(g2Pairs)))
	}
	return nil
}

// allPairsIFQ runs one Fig 13e/f dataset: 8 IFQs with k=3, four highly and
// four lowly selective, l1 = l2 = all nodes; baseline Option G3 vs RPL vs
// optRPL, seconds per query.
func allPairsIFQ(cfg Config, d *workload.Dataset) error {
	size := 2000
	if cfg.Quick {
		size = 300
	}
	run, err := derive.Derive(d.Spec, derive.Options{Seed: cfg.Seed, TargetEdges: size})
	if err != nil {
		return err
	}
	ix := index.Build(run)
	nodes := run.AllNodes()
	labels := make([]label.Label, len(nodes))
	for i, id := range nodes {
		labels[i] = run.Label(id)
	}
	r := rand.New(rand.NewSource(cfg.Seed + 4))
	type queryCase struct {
		sel string
		q   string
	}
	var cases []queryCase
	for i := 0; i < 4; i++ {
		cases = append(cases, queryCase{"high", d.SafeIFQ(r, 3, false)})
	}
	for i := 0; i < 4; i++ {
		cases = append(cases, queryCase{"low", d.SafeIFQ(r, 3, true)})
	}
	fmt.Fprintf(cfg.W, "run edges: %d, nodes: %d (l1 = l2 = all nodes)\n", run.NumEdges(), run.NumNodes())
	fmt.Fprintf(cfg.W, "%-4s %-5s %-36s %-9s %-12s %-10s %-10s\n",
		"id", "sel", "query", "matches", "G3-s", "RPL-s", "optRPL-s")
	for i, c := range cases {
		q := automata.MustParse(c.q)
		env, err := core.Compile(run.Spec, q)
		if err != nil {
			return err
		}
		if !env.Safe() {
			return fmt.Errorf("bench: IFQ %s unexpectedly unsafe", c.q)
		}
		matches := 0
		rplT, err := timeOfErr(func() error {
			matches = 0
			return env.AllPairsSafe(labels, labels, core.RPL, func(i, j int) { matches++ })
		})
		if err != nil {
			return err
		}
		optT, err := timeOfErr(func() error {
			return env.AllPairsSafe(labels, labels, core.OptRPL, func(i, j int) {})
		})
		if err != nil {
			return err
		}
		g3, ok := baseline.NewG3(ix, q)
		if !ok {
			return fmt.Errorf("bench: not an IFQ")
		}
		g3T := timeOf(func() {
			g3.AllPairs(nodes, nodes, func(i, j int) {})
		})
		fmt.Fprintf(cfg.W, "%-4d %-5s %-36s %-9d %-12.3f %-10.3f %-10.3f\n",
			i+1, c.sel, c.q, matches, sec(g3T), sec(rplT), sec(optT))
	}
	return nil
}

// Fig13e: all-pairs IFQ time on BioAID.
func Fig13e(cfg Config) error {
	header(cfg, "Fig 13e: all-pairs IFQ query time (BioAID, 8 IFQs k=3, run 2K)")
	return allPairsIFQ(cfg, workload.BioAID())
}

// Fig13f: all-pairs IFQ time on QBLast.
func Fig13f(cfg Config) error {
	header(cfg, "Fig 13f: all-pairs IFQ query time (QBLast, 8 IFQs k=3, run 2K)")
	return allPairsIFQ(cfg, workload.QBLast())
}

// kleene runs one Fig 13g/h dataset: all-pairs a* over the fork workload,
// baseline Option G1 vs RPL vs optRPL, varying run size.
func kleene(cfg Config, d *workload.Dataset) error {
	// The paper sweeps 1K-16K; we stop at 8K because the naive-fixpoint
	// baseline needs minutes beyond that (the trend is established well
	// before).
	sizes := []int{1000, 2000, 4000, 8000}
	if cfg.Quick {
		sizes = []int{300, 600}
	}
	q := automata.MustParse(d.StarQuery())
	fmt.Fprintf(cfg.W, "query: %s (l1 = l2 = fork distributor nodes)\n", d.StarQuery())
	fmt.Fprintf(cfg.W, "%-10s %-8s %-9s %-12s %-10s %-10s\n",
		"run-edges", "a-nodes", "matches", "G1-s", "RPL-s", "optRPL-s")
	for _, size := range sizes {
		run, err := derive.Derive(d.Spec, derive.Options{
			Seed: cfg.Seed, TargetEdges: size,
			FavorModules: d.ForkFavor, FavorCaps: d.ForkCaps,
		})
		if err != nil {
			return err
		}
		ix := index.Build(run)
		env, err := core.Compile(run.Spec, q)
		if err != nil {
			return err
		}
		if !env.Safe() {
			return fmt.Errorf("bench: %s unexpectedly unsafe on %s", d.StarQuery(), d.Name)
		}
		anodes := run.NodesOfModule("a")
		labels := make([]label.Label, len(anodes))
		for i, id := range anodes {
			labels[i] = run.Label(id)
		}
		matches := 0
		rplT, err := timeOfErr(func() error {
			matches = 0
			return env.AllPairsSafe(labels, labels, core.RPL, func(i, j int) { matches++ })
		})
		if err != nil {
			return err
		}
		optT, err := timeOfErr(func() error {
			return env.AllPairsSafe(labels, labels, core.OptRPL, func(i, j int) {})
		})
		if err != nil {
			return err
		}
		// The paper-faithful baseline self-joins naively until a fixpoint.
		g1 := baseline.NewG1Naive(ix)
		g1T := timeOf(func() {
			g1.AllPairs(q, anodes, anodes, func(i, j int) {})
		})
		fmt.Fprintf(cfg.W, "%-10d %-8d %-9d %-12.3f %-10.3f %-10.3f\n",
			run.NumEdges(), len(anodes), matches, sec(g1T), sec(rplT), sec(optT))
	}
	return nil
}

// Fig13g: all-pairs a* on BioAID fork runs.
func Fig13g(cfg Config) error {
	header(cfg, "Fig 13g: all-pairs Kleene star a* vs run size (BioAID)")
	return kleene(cfg, workload.BioAID())
}

// Fig13h: all-pairs a* on QBLast fork runs.
func Fig13h(cfg Config) error {
	header(cfg, "Fig 13h: all-pairs Kleene star a* vs run size (QBLast)")
	return kleene(cfg, workload.QBLast())
}

// general runs one Fig 15 dataset: random unsafe queries; % improvement of
// the safe-subtree decomposition (optRPL components) over Option G1.
func general(cfg Config, d *workload.Dataset) error {
	// Run size 1200 rather than the paper's 2K keeps the full 40-query
	// sweep within minutes; the improvement percentages are size-stable.
	wantUnsafe := 40
	size := 1200
	if cfg.Quick {
		wantUnsafe = 5
		size = 250
	}
	run, err := derive.Derive(d.Spec, derive.Options{Seed: cfg.Seed, TargetEdges: size})
	if err != nil {
		return err
	}
	ix := index.Build(run)
	r := rand.New(rand.NewSource(cfg.Seed + 5))

	// Collect random unsafe queries with lowly selective components (stars
	// or wildcards): the paper reports the improvement only for the subset
	// of unsafe queries "that generate massive intermediate results due to
	// lowly selective components" (31/40 on BioAID, 13/40 on QBLast).
	var unsafe []*automata.Node
	generated := 0
	for len(unsafe) < wantUnsafe && generated < wantUnsafe*400 {
		generated++
		qn, err := automata.Parse(d.RandomQuery(r, 3))
		if err != nil {
			continue
		}
		if !hasLowSelComponent(qn) {
			continue
		}
		env, err := core.Compile(d.Spec, qn)
		if err != nil || env.Safe() {
			continue
		}
		unsafe = append(unsafe, qn)
	}
	fmt.Fprintf(cfg.W, "run edges: %d; %d unsafe queries out of %d generated\n",
		run.NumEdges(), len(unsafe), generated)
	fmt.Fprintf(cfg.W, "%-4s %-44s %-10s %-12s %-12s %-12s\n",
		"id", "query", "matches", "G1-s", "ours-s", "improve-%")

	// Like the paper, report only the subset of unsafe queries that
	// actually generate massive intermediate results (31/40 on BioAID,
	// 13/40 on QBLast there); the rest are trivially cheap for both sides.
	massiveThreshold := 50 * time.Millisecond
	if cfg.Quick {
		massiveThreshold = time.Millisecond
	}
	var improvements []float64
	shown := 0
	for _, qn := range unsafe {
		g1 := baseline.NewG1(ix)
		var g1Rel *baseline.Rel
		g1T := timeOf(func() { g1Rel = g1.Eval(qn) })
		if g1T < massiveThreshold {
			continue
		}
		var rel *baseline.Rel
		oursT, err := timeOfErr(func() error {
			ours := core.NewGeneral(run, ix, core.CostBased)
			var err error
			rel, _, err = ours.Eval(qn)
			return err
		})
		if err != nil {
			return err
		}
		if g1Rel.Len() != rel.Len() {
			return fmt.Errorf("bench: result mismatch on %s: ours %d vs G1 %d", qn, rel.Len(), g1Rel.Len())
		}
		imp := 100 * (sec(g1T) - sec(oursT)) / sec(g1T)
		improvements = append(improvements, imp)
		shown++
		qs := qn.String()
		if len(qs) > 42 {
			qs = qs[:39] + "..."
		}
		fmt.Fprintf(cfg.W, "%-4d %-44s %-10d %-12.4f %-12.4f %-12.1f\n",
			shown, qs, rel.Len(), sec(g1T), sec(oursT), imp)
	}
	sort.Float64s(improvements)
	improved, big := 0, 0
	for _, imp := range improvements {
		if imp > 0 {
			improved++
		}
		if imp > 40 {
			big++
		}
	}
	fmt.Fprintf(cfg.W, "massive-intermediate queries: %d/%d; improved: %d/%d; >40%% improvement: %d/%d\n",
		shown, len(unsafe), improved, len(improvements), big, len(improvements))
	return nil
}

// hasLowSelComponent reports whether the query contains a subexpression
// that makes relational evaluation materialize large intermediates: a
// Kleene star/plus over more than a single symbol, or a wildcard.
func hasLowSelComponent(q *automata.Node) bool {
	switch q.Kind {
	case automata.KindWild:
		return true
	case automata.KindStar, automata.KindPlus:
		if q.Children[0].Kind != automata.KindSym {
			return true
		}
	}
	for _, c := range q.Children {
		if hasLowSelComponent(c) {
			return true
		}
	}
	return false
}

// Fig15a: improvement of the decomposition over G1 on BioAID.
func Fig15a(cfg Config) error {
	header(cfg, "Fig 15a: optRPL improvement on unsafe general queries (BioAID)")
	return general(cfg, workload.BioAID())
}

// Fig15b: improvement of the decomposition over G1 on QBLast.
func Fig15b(cfg Config) error {
	header(cfg, "Fig 15b: optRPL improvement on unsafe general queries (QBLast)")
	return general(cfg, workload.QBLast())
}

func ms(d time.Duration) float64  { return float64(d.Nanoseconds()) / 1e6 }
func us(d time.Duration) float64  { return float64(d.Nanoseconds()) / 1e3 }
func sec(d time.Duration) float64 { return d.Seconds() }
