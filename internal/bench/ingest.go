package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"provrpq"
	"provrpq/internal/store"
	"provrpq/internal/workload"
)

// IngestReport is the machine-readable record of the ingest experiment,
// written as BENCH_ingest.json when Config.JSONDir is set. One row per
// (writer count, commit mode, watcher count) cell.
type IngestReport struct {
	Dataset string `json:"dataset"`
	Quick   bool   `json:"quick"`
	// BatchesPerWriter is the growth batches each writer commits; every
	// batch carries a contiguous node/edge segment of that writer's
	// derived run (real nodes with real labels, so standing-query deltas
	// are non-trivial).
	BatchesPerWriter int `json:"batches_per_writer"`
	// BestOf is how many times each throughput cell was measured (the
	// fastest run is reported). Shared and virtualized devices degrade
	// several-fold under sustained flush storms and recover after idle;
	// keeping the best run filters that interference out instead of
	// attributing the device's mood to whichever protocol ran later.
	BestOf int         `json:"best_of"`
	Rows   []IngestRow `json:"rows"`
}

// IngestRow measures one sustained-ingest cell: N concurrent writers,
// each appending durable growth batches to its own run of a shared
// catalog, under one commit protocol.
type IngestRow struct {
	Writers int `json:"writers"`
	// Mode is "serial" (one manifest fsync per batch, everything under
	// the store mutex) or "group" (leader/follower coalesced commits).
	Mode        string  `json:"mode"`
	Watchers    int     `json:"watchers"`
	Edges       int     `json:"edges"`
	Batches     int     `json:"batches"`
	Seconds     float64 `json:"seconds"`
	EdgesPerSec float64 `json:"edges_per_sec"`
	// GroupCommits is the number of manifest writes the row's appends
	// cost; Coalescing = batches / group_commits (1.0 means every batch
	// paid its own manifest fsync — what the serial mode always reports).
	GroupCommits uint64  `json:"group_commits"`
	Coalescing   float64 `json:"coalescing"`
	// WatchPairs counts the standing-query delta pairs the row's
	// watchers computed (0 with no watchers); it proves the subscribers
	// did the per-append delta work while the writers ran.
	WatchPairs int `json:"watch_pairs"`
}

// FigIngest is the group-commit ingest experiment (beyond the paper):
// sustained durable append throughput at varying writer counts, serial
// commit (one manifest fsync per batch, everything under the store mutex)
// versus group commit (payload staging outside the lock, coalesced
// leader/follower manifest writes), and group commit again with standing
// queries subscribed — the serving-while-watching cost. Each writer owns
// one run, so payload staging never contends; the manifest is the single
// shared commit point both protocols must fund, which is exactly what
// group commit amortizes. Batches are node-bearing segments of a real
// derivation (split, not synthesized), so every append also pays label
// validation and the watchers' deltas are non-empty.
func FigIngest(cfg Config) error {
	header(cfg, "ingest: durable append throughput — serial vs group commit")
	// Small, frequent batches (~5 edges) mirror the streaming-ingest
	// regime the endpoint produces — time-bounded flushes of a live event
	// feed — and are where commit overhead, the thing group commit
	// amortizes, actually dominates.
	writerCounts := []int{1, 2, 4, 8}
	batchesPerWriter := 512
	baseEdges := 400
	growthEdges := 2600
	watchers := 2
	if cfg.Quick {
		writerCounts = []int{1, 4}
		batchesPerWriter = 16
		baseEdges = 150
		growthEdges = 400
		watchers = 2
	}
	d := workload.BioAID()
	// Round-trip the dataset's specification through its JSON encoding to
	// obtain the public-API handle the catalog wants.
	specJSON, err := json.Marshal(d.Spec)
	if err != nil {
		return err
	}
	spec := &provrpq.Spec{}
	if err := spec.UnmarshalJSON(specJSON); err != nil {
		return err
	}
	// One safe standing query (watchability is exactly safety), validated
	// here so a workload change fails loudly instead of skewing the
	// watcher rows with parse errors.
	r := rand.New(rand.NewSource(cfg.Seed + 6))
	watchQuery, err := provrpq.ParseQuery(d.SafeIFQ(r, 3, true))
	if err != nil {
		return err
	}

	// One derived-and-split load per writer slot, shared by every cell:
	// all cells ingest identical byte streams, so rows differ only in
	// protocol and concurrency.
	maxWriters := 0
	for _, w := range writerCounts {
		if w > maxWriters {
			maxWriters = w
		}
	}
	loads := make([]writerLoad, maxWriters)
	for w := range loads {
		if loads[w], err = splitDerivedRun(spec, cfg.Seed+int64(w), baseEdges+growthEdges, batchesPerWriter); err != nil {
			return err
		}
	}

	bestOf := 2
	if cfg.Quick {
		bestOf = 1
	}
	report := IngestReport{Dataset: d.Name, Quick: cfg.Quick, BatchesPerWriter: batchesPerWriter, BestOf: bestOf}
	fmt.Fprintf(cfg.W, "%-9s %-8s %-10s %-10s %-10s %-12s %-12s %-12s %-11s\n",
		"writers", "mode", "watchers", "edges", "seconds", "edges/sec", "commits", "coalescing", "watch-pairs")
	for _, writers := range writerCounts {
		for _, cell := range []struct {
			mode     string
			watchers int
		}{{"serial", 0}, {"group", 0}, {"group", watchers}} {
			// Throughput cells run bestOf times, fastest kept (see
			// IngestReport.BestOf); the watcher cells are dominated by the
			// subscribers' delta CPU, not the device, so once is enough.
			reps := bestOf
			if cell.watchers > 0 {
				reps = 1
			}
			var row IngestRow
			for rep := 0; rep < reps; rep++ {
				if !cfg.Quick {
					// Sustained fsync storms degrade shared/virtualized
					// devices across cells; a settle pause lets the device
					// recover so later cells are not measured against a
					// slower disk than earlier ones.
					time.Sleep(5 * time.Second)
				}
				r, err := ingestCell(spec, watchQuery, loads[:writers], cell.watchers, cell.mode == "serial")
				if err != nil {
					return err
				}
				if rep == 0 || r.EdgesPerSec > row.EdgesPerSec {
					row = r
				}
			}
			report.Rows = append(report.Rows, row)
			fmt.Fprintf(cfg.W, "%-9d %-8s %-10d %-10d %-10.3f %-12.0f %-12d %-12.2f %-11d\n",
				row.Writers, row.Mode, row.Watchers, row.Edges, row.Seconds,
				row.EdgesPerSec, row.GroupCommits, row.Coalescing, row.WatchPairs)
		}
	}
	return writeFigJSON(cfg, "ingest", report)
}

// writerLoad is one writer's pre-split ingest stream: a base run payload
// plus the growth batches that rebuild the rest of the derivation.
type writerLoad struct {
	base       []byte
	batches    [][]byte
	batchEdges int // total edges across the batches
}

// splitDerivedRun derives one run and splits its JSON encoding into a
// base prefix and `batches` sequential node/edge segments. Each edge
// lands in the earliest segment containing both endpoints, so every
// batch's edges reference only already-committed or same-batch nodes —
// any prefix of the stream is a valid derivation, mirroring how the
// streaming-ingest route groups records.
func splitDerivedRun(spec *provrpq.Spec, seed int64, targetEdges, batches int) (writerLoad, error) {
	run, err := spec.Derive(provrpq.DeriveOptions{Seed: seed, TargetEdges: targetEdges})
	if err != nil {
		return writerLoad{}, err
	}
	data, err := provrpq.EncodeRun(run)
	if err != nil {
		return writerLoad{}, err
	}
	var full struct {
		Nodes []json.RawMessage `json:"nodes"`
		Edges []struct {
			From, To int
			Tag      string
		} `json:"edges"`
	}
	if err := json.Unmarshal(data, &full); err != nil {
		return writerLoad{}, err
	}
	n := len(full.Nodes)
	if n < (batches+1)*2 {
		return writerLoad{}, fmt.Errorf("bench: ingest: run of %d nodes cannot split into %d batches", n, batches)
	}
	// Node cut points: the base keeps the first sixth of the nodes, the
	// batches split the rest evenly.
	cuts := make([]int, batches+1)
	cuts[0] = n / 6
	for i := 1; i <= batches; i++ {
		cuts[i] = cuts[0] + (n-cuts[0])*i/batches
	}
	segEdges := make([][]int, batches+1) // segment -> edge indexes; 0 is the base
	for ei, e := range full.Edges {
		hi := e.From
		if e.To > hi {
			hi = e.To
		}
		seg := 0
		for seg < batches && hi >= cuts[seg] {
			seg++
		}
		segEdges[seg] = append(segEdges[seg], ei)
	}
	encode := func(nodes []json.RawMessage, edgeIdx []int) ([]byte, error) {
		var seg struct {
			Nodes []json.RawMessage `json:"nodes"`
			Edges []json.RawMessage `json:"edges"`
		}
		seg.Nodes = nodes
		for _, ei := range edgeIdx {
			e := full.Edges[ei]
			seg.Edges = append(seg.Edges, json.RawMessage(
				fmt.Sprintf(`{"From":%d,"To":%d,"Tag":%q}`, e.From, e.To, e.Tag)))
		}
		return json.Marshal(seg)
	}
	load := writerLoad{}
	if load.base, err = encode(full.Nodes[:cuts[0]], segEdges[0]); err != nil {
		return writerLoad{}, err
	}
	for i := 1; i <= batches; i++ {
		b, err := encode(full.Nodes[cuts[i-1]:cuts[i]], segEdges[i])
		if err != nil {
			return writerLoad{}, err
		}
		load.batches = append(load.batches, b)
		load.batchEdges += len(segEdges[i])
	}
	return load, nil
}

// ingestCell runs one measurement: a fresh durable catalog, one goroutine
// per writer load committing its growth batches to its own run, timed
// wall-clock across all of them.
func ingestCell(spec *provrpq.Spec, watchQuery *provrpq.Query,
	loads []writerLoad, watchers int, serial bool) (IngestRow, error) {
	dir, err := os.MkdirTemp("", "provrpq-bench-ingest-*")
	if err != nil {
		return IngestRow{}, err
	}
	defer os.RemoveAll(dir)
	st, err := provrpq.OpenStore(dir)
	if err != nil {
		return IngestRow{}, err
	}
	st.SetSerialCommit(serial)
	cat := provrpq.NewCatalog(provrpq.CatalogOptions{Store: st})
	if err := cat.RegisterSpec("wf", spec); err != nil {
		return IngestRow{}, err
	}
	// Register bases and pre-decode every batch outside the timed region,
	// so appends measure validation plus durability, not JSON parsing.
	writers := len(loads)
	batchesByWriter := make([][]*provrpq.Batch, writers)
	for w, load := range loads {
		base, err := provrpq.DecodeRun(spec, load.base)
		if err != nil {
			return IngestRow{}, err
		}
		if err := cat.AddRun(runName(w), "wf", base); err != nil {
			return IngestRow{}, err
		}
		for _, data := range load.batches {
			b, err := provrpq.DecodeBatch(spec, data)
			if err != nil {
				return IngestRow{}, err
			}
			batchesByWriter[w] = append(batchesByWriter[w], b)
		}
	}

	watchPairs := 0
	if watchers > 0 {
		var wmu sync.Mutex
		for i := 0; i < watchers; i++ {
			cancel := cat.SubscribeAppends(func(ev provrpq.AppendEvent) {
				pairs, err := cat.DeltaPairs(ev, watchQuery)
				if err != nil {
					return // surfaced by the zero watch_pairs count
				}
				wmu.Lock()
				watchPairs += len(pairs)
				wmu.Unlock()
			})
			defer cancel()
		}
	}

	groupsBefore, _ := store.CommitStats()
	var wg sync.WaitGroup
	errs := make([]error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, b := range batchesByWriter[w] {
				if _, err := cat.AppendEdges(runName(w), b); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return IngestRow{}, err
		}
	}

	totalBatches, totalEdges := 0, 0
	for _, load := range loads {
		totalBatches += len(load.batches)
		totalEdges += load.batchEdges
	}
	mode := "group"
	commits := uint64(0)
	if serial {
		mode = "serial"
		// The serial path bypasses the commit queue; by construction it is
		// one manifest write per batch.
		commits = uint64(totalBatches)
	} else if groupsAfter, _ := store.CommitStats(); groupsAfter > groupsBefore {
		// CommitStats is process-wide; the delta across this cell's timed
		// region is this cell's commits (cells run one at a time).
		commits = groupsAfter - groupsBefore
	}
	row := IngestRow{
		Writers: writers, Mode: mode, Watchers: watchers,
		Edges: totalEdges, Batches: totalBatches,
		Seconds:     elapsed.Seconds(),
		EdgesPerSec: float64(totalEdges) / elapsed.Seconds(),
		WatchPairs:  watchPairs,
	}
	row.GroupCommits = commits
	if commits > 0 {
		row.Coalescing = float64(totalBatches) / float64(commits)
	}
	return row, nil
}

func runName(w int) string { return fmt.Sprintf("ingest-%d", w) }
