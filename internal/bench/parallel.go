package bench

import (
	"fmt"
	"time"

	"provrpq/internal/automata"
	"provrpq/internal/core"
	"provrpq/internal/derive"
	"provrpq/internal/label"
	"provrpq/internal/workload"
)

// FigPar is an experiment beyond the paper: parallel scaling of the
// all-pairs scans on one large fork run. For each worker count it times the
// RPL nested-loop scan and the optRPL reachability-filtered scan of a*
// over the fork distributor nodes, reporting the speedup over the serial
// scan and cross-checking that every worker count finds the same matches.
func FigPar(cfg Config) error {
	size := 16000
	if cfg.Quick {
		size = 1200
	}
	header(cfg, fmt.Sprintf("Fig P: parallel all-pairs scaling (BioAID fork, a*, ~%d edges)", size))
	workerSweep := []int{1, 2, 4, 8}
	if cfg.Workers > 1 {
		found := false
		for _, w := range workerSweep {
			if w == cfg.Workers {
				found = true
			}
		}
		if !found {
			workerSweep = append(workerSweep, cfg.Workers)
		}
	}

	d := workload.BioAID()
	run, err := derive.Derive(d.Spec, derive.Options{
		Seed: cfg.Seed, TargetEdges: size,
		FavorModules: d.ForkFavor, FavorCaps: d.ForkCaps,
	})
	if err != nil {
		return err
	}
	q := automata.MustParse(d.StarQuery())
	env, err := core.Compile(run.Spec, q)
	if err != nil {
		return err
	}
	if !env.Safe() {
		return fmt.Errorf("bench: %s unexpectedly unsafe", d.StarQuery())
	}
	anodes := run.NodesOfModule("a")
	labels := make([]label.Label, len(anodes))
	for i, id := range anodes {
		labels[i] = run.Label(id)
	}
	fmt.Fprintf(cfg.W, "run edges: %d, a-nodes: %d (l1 = l2 = fork distributor nodes)\n",
		run.NumEdges(), len(anodes))
	fmt.Fprintf(cfg.W, "%-9s %-10s %-10s %-12s %-12s %-9s\n",
		"workers", "RPL-s", "optRPL-s", "RPL-spdup", "opt-spdup", "matches")

	var serialRPL, serialOpt time.Duration
	wantMatches := -1
	for _, w := range workerSweep {
		matches := 0
		rplT, err := timeOfErr(func() error {
			matches = 0
			return env.AllPairsSafeParallel(labels, labels, core.RPL, w, func(i, j int) { matches++ })
		})
		if err != nil {
			return err
		}
		optMatches := 0
		optT, err := timeOfErr(func() error {
			optMatches = 0
			return env.AllPairsSafeParallel(labels, labels, core.OptRPL, w, func(i, j int) { optMatches++ })
		})
		if err != nil {
			return err
		}
		if matches != optMatches {
			return fmt.Errorf("bench: RPL found %d matches, optRPL %d at %d workers", matches, optMatches, w)
		}
		if wantMatches < 0 {
			wantMatches = matches
			serialRPL, serialOpt = rplT, optT
		} else if matches != wantMatches {
			return fmt.Errorf("bench: %d workers found %d matches, serial found %d", w, matches, wantMatches)
		}
		fmt.Fprintf(cfg.W, "%-9d %-10.3f %-10.3f %-12.2f %-12.2f %-9d\n",
			w, sec(rplT), sec(optT),
			sec(serialRPL)/sec(rplT), sec(serialOpt)/sec(optT), matches)
	}
	return nil
}
