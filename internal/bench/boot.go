package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"

	"provrpq/internal/derive"
	"provrpq/internal/reach"
	"provrpq/internal/workload"
)

// BootReport is the machine-readable record of the boot experiment,
// written as BENCH_boot.json when Config.JSONDir is set. One row per
// measured run size.
type BootReport struct {
	Dataset string    `json:"dataset"`
	Quick   bool      `json:"quick"`
	Rows    []BootRow `json:"rows"`
}

// BootRow compares opening one persisted run as JSON versus columnar.
type BootRow struct {
	Edges             int     `json:"edges"`
	Nodes             int     `json:"nodes"`
	JSONBytes         int     `json:"json_bytes"`
	ColumnarBytes     int     `json:"columnar_bytes"`
	JSONDecodeMS      float64 `json:"json_decode_ms"`
	ColumnarOpenMS    float64 `json:"columnar_open_ms"`
	Speedup           float64 `json:"speedup"`
	JSONHeapBytes     uint64  `json:"json_heap_bytes"`
	ColumnarHeapBytes uint64  `json:"columnar_heap_bytes"`
	PairsChecked      int     `json:"pairs_checked"`
}

// FigBoot is the zero-copy boot experiment (beyond the paper): persist one
// derived run both as the legacy JSON payload and as the columnar format,
// then measure the cost of bringing each back to a query-ready state —
// full JSON decode (parse, validate, materialize labels, build adjacency)
// versus columnar open (checksum + structural validation over the raw
// bytes; names, adjacency and labels stay lazy). Decoded-structure heap is
// sampled around each open, and every measurement is guarded by an
// answer-equality check over sampled pairwise queries on both runs.
func FigBoot(cfg Config) error {
	header(cfg, "boot: catalog boot time — JSON decode vs zero-copy columnar open")
	sizes := []int{100000, 1000000}
	npairs := 2000
	if cfg.Quick {
		sizes = []int{20000}
		npairs = 200
	}
	d := workload.BioAID()
	report := BootReport{Dataset: d.Name, Quick: cfg.Quick}
	fmt.Fprintf(cfg.W, "%-10s %-10s %-12s %-12s %-12s %-12s %-10s %-12s %-12s\n",
		"edges", "nodes", "json-KB", "col-KB", "json-ms", "col-ms", "speedup", "json-heap", "col-heap")
	for _, size := range sizes {
		run, err := derive.Derive(d.Spec, derive.Options{Seed: cfg.Seed, TargetEdges: size})
		if err != nil {
			return err
		}
		jsonData, err := derive.EncodeRun(run)
		if err != nil {
			return err
		}
		colData, err := derive.EncodeColumnar(run)
		if err != nil {
			return err
		}

		var jsonRun, colRun *derive.Run
		jsonHeap := heapDelta(func() error {
			jsonRun, err = derive.DecodeRun(d.Spec, jsonData)
			return err
		})
		if err != nil {
			return err
		}
		colHeap := heapDelta(func() error {
			colRun, err = derive.OpenColumnar(d.Spec, colData)
			return err
		})
		if err != nil {
			return err
		}
		jsonT, err := timeOfErr(func() error {
			_, err := derive.DecodeRun(d.Spec, jsonData)
			return err
		})
		if err != nil {
			return err
		}
		colT, err := timeOfErr(func() error {
			_, err := derive.OpenColumnar(d.Spec, colData)
			return err
		})
		if err != nil {
			return err
		}

		// Answer-equality guard: the fast boot must not change a single
		// pairwise answer.
		r := rand.New(rand.NewSource(cfg.Seed + int64(size)))
		for _, p := range pairSample(r, run, npairs) {
			ja := reach.PairwiseBytes(jsonRun.Spec, jsonRun.LabelBytes(p[0]), jsonRun.LabelBytes(p[1]))
			ca := reach.PairwiseBytes(colRun.Spec, colRun.LabelBytes(p[0]), colRun.LabelBytes(p[1]))
			if ja != ca {
				return fmt.Errorf("bench: boot: pairwise(%d,%d) diverges: json=%v columnar=%v", p[0], p[1], ja, ca)
			}
		}

		row := BootRow{
			Edges:             run.NumEdges(),
			Nodes:             run.NumNodes(),
			JSONBytes:         len(jsonData),
			ColumnarBytes:     len(colData),
			JSONDecodeMS:      ms(jsonT),
			ColumnarOpenMS:    ms(colT),
			Speedup:           float64(jsonT) / float64(colT),
			JSONHeapBytes:     jsonHeap,
			ColumnarHeapBytes: colHeap,
			PairsChecked:      npairs,
		}
		report.Rows = append(report.Rows, row)
		fmt.Fprintf(cfg.W, "%-10d %-10d %-12d %-12d %-12.2f %-12.3f %-10.1f %-12d %-12d\n",
			row.Edges, row.Nodes, row.JSONBytes/1024, row.ColumnarBytes/1024,
			row.JSONDecodeMS, row.ColumnarOpenMS, row.Speedup, row.JSONHeapBytes, row.ColumnarHeapBytes)
		runtime.KeepAlive(jsonRun)
		runtime.KeepAlive(colRun)
	}
	return writeFigJSON(cfg, "boot", report)
}

// heapDelta runs f and returns the live-heap growth it caused — the
// memory its results keep reachable, not its transient allocation.
func heapDelta(f func() error) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if f() != nil {
		return 0 // the caller re-runs f for the error
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if after.HeapAlloc < before.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - before.HeapAlloc
}

// writeFigJSON writes a figure's machine-readable record as
// BENCH_<id>.json under Config.JSONDir; with no JSONDir set it is a no-op
// (the textual report is the only output).
func writeFigJSON(cfg Config, id string, v any) error {
	if cfg.JSONDir == "" {
		return nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: figure %s: %w", id, err)
	}
	path := filepath.Join(cfg.JSONDir, "BENCH_"+id+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: figure %s: %w", id, err)
	}
	fmt.Fprintf(cfg.W, "(wrote %s)\n", path)
	return nil
}
