package bench

import (
	"bytes"
	"strings"
	"testing"

	"provrpq/internal/automata"
)

// TestAllFiguresQuick smoke-runs every figure on the reduced workloads and
// checks each produces its expected series header.
func TestAllFiguresQuick(t *testing.T) {
	expects := map[string]string{
		"13a": "grammar-size",
		"13b": "avg-ms",
		"13c": "RPL-µs",
		"13d": "G2-µs",
		"13e": "optRPL-s",
		"13f": "optRPL-s",
		"13g": "G1-s",
		"13h": "a-nodes",
		"15a": "improve-%",
		"15b": "improve-%",
	}
	for _, id := range Figures() {
		var buf bytes.Buffer
		if err := Run(id, Config{W: &buf, Quick: true, Seed: 1}); err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		out := buf.String()
		if !strings.Contains(out, expects[id]) {
			t.Errorf("figure %s output missing %q:\n%s", id, expects[id], out)
		}
		// Every figure must emit at least one data row after its header.
		if strings.Count(out, "\n") < 3 {
			t.Errorf("figure %s produced no data:\n%s", id, out)
		}
	}
}

func TestUnknownFigure(t *testing.T) {
	if err := Run("99z", Config{W: &bytes.Buffer{}, Quick: true}); err == nil {
		t.Error("unknown figure id should error")
	}
}

func TestHasLowSelComponent(t *testing.T) {
	cases := []struct {
		q    string
		want bool
	}{
		{"_", true},
		{"a", false},
		{"a*", false},    // star over a single symbol joins cheaply
		{"(a.b)*", true}, // star over a composite: fixpoint blowup
		{"a._*.b", true}, // wildcard star
		{"a.b|c", false},
		{"(a|b)+", true},
	}
	for _, c := range cases {
		n := mustParse(t, c.q)
		if got := hasLowSelComponent(n); got != c.want {
			t.Errorf("hasLowSelComponent(%q) = %v, want %v", c.q, got, c.want)
		}
	}
}

func mustParse(t *testing.T, s string) *automata.Node {
	t.Helper()
	n, err := automata.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}
