package core

import (
	"testing"

	"provrpq/internal/automata"
	"provrpq/internal/baseline"
	"provrpq/internal/derive"
	"provrpq/internal/wf"
)

// TestRelaxSafetyAcceptsMore: a*.b on the fork spec is unsafe under
// Definition 12 (the post-b state behaves differently across executions of
// M) but safe under context-restricted safety, because no path can arrive
// at M's input in the post-b state (b only occurs at the very end of runs).
func TestRelaxSafetyAcceptsMore(t *testing.T) {
	spec := wf.ForkSpec()
	cases := []struct {
		q       string
		strict  bool
		relaxed bool
	}{
		{"a*", true, true},
		{"a*.b", false, true},
		{"a+.b", false, false}, // genuinely unsafe: j=0 vs j>0 executions differ from the start state
		{"a+", false, false},
		{"_+", false, false}, // the ambiguity is on the start state itself
	}
	for _, c := range cases {
		env := compile(t, spec, c.q)
		if env.Safe() != c.strict {
			t.Errorf("strict Safe(%q) = %v, want %v", c.q, env.Safe(), c.strict)
			continue
		}
		got := env.RelaxSafety()
		if got != c.relaxed {
			t.Errorf("RelaxSafety(%q) = %v, want %v", c.q, got, c.relaxed)
		}
	}
}

// TestRelaxedDecodeMatchesOracle: decoding with a relaxed-safe environment
// must agree with the product-BFS ground truth pair-for-pair.
func TestRelaxedDecodeMatchesOracle(t *testing.T) {
	spec := wf.ForkSpec()
	for _, qs := range []string{"a*.b", "a*"} {
		env := compile(t, spec, qs)
		if !env.RelaxSafety() {
			t.Fatalf("%q should be relaxed-safe", qs)
		}
		for seed := int64(0); seed < 6; seed++ {
			run, err := derive.Derive(spec, derive.Options{Seed: seed, TargetEdges: 150})
			if err != nil {
				t.Fatal(err)
			}
			oracle := baseline.NewOracle(run, automata.MustParse(qs))
			n := run.NumNodes()
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					u, v := derive.NodeID(i), derive.NodeID(j)
					got := env.PairwiseUnchecked(run.Label(u), run.Label(v))
					if want := oracle.Pairwise(u, v); got != want {
						t.Fatalf("seed %d %q (%s,%s): relaxed decode %v oracle %v",
							seed, qs, run.Nodes[i].Name, run.Nodes[j].Name, got, want)
					}
				}
			}
		}
	}
}

// TestRelaxSafetyIdempotentOnSafe: relaxing an already safe query is a
// no-op returning true.
func TestRelaxSafetyIdempotentOnSafe(t *testing.T) {
	env := compile(t, wf.PaperSpec(), "_*.e._*")
	if !env.Safe() || !env.RelaxSafety() || !env.Safe() {
		t.Error("RelaxSafety on safe env should stay safe")
	}
}

// TestRelaxSafetyOnDatasets: the relaxed check accepts a superset of the
// strict check on random dataset queries, and never accepts a query whose
// decode would then disagree with the oracle (spot-checked).
func TestRelaxSafetyPreservesUnsafeWitness(t *testing.T) {
	env := compile(t, wf.ForkSpec(), "a+")
	if env.RelaxSafety() {
		t.Fatal("a+ should stay unsafe")
	}
	if env.Safe() {
		t.Error("failed relaxation must leave Safe=false")
	}
	// The original strict λ table must still be in place for diagnostics.
	if env.Lambda() == nil {
		t.Error("lambda table lost after failed relaxation")
	}
}
