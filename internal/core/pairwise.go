package core

import (
	"bytes"
	"fmt"
	"math/bits"

	"provrpq/internal/label"
)

// ErrUnsafe is returned by the safe-query entry points when the compiled
// query is not safe for the specification; callers should fall back to the
// general evaluator (general.go) or a baseline.
var ErrUnsafe = fmt.Errorf("core: query is not safe for this specification")

// Pairwise answers u —R→ v from the two node labels alone (Algorithm 1 /
// Theorem 1): does some path from u to v spell a word of L(R)? The cost is
// O(depth · |Q|³/64) — independent of the run size. It requires a safe
// query.
func (e *Env) Pairwise(a, b label.Label) (bool, error) {
	d := e.decoder()
	if d == nil {
		return false, ErrUnsafe
	}
	ok := d.PairwiseUnchecked(a, b)
	e.release(d)
	return ok, nil
}

// PairwiseMatrix answers the query via full transition-matrix products
// rather than the row-vector fast path. Both compute the same answer; the
// matrix form also yields every (q,q') transition and is kept for
// diagnostics and as a cross-check in the tests.
func (e *Env) PairwiseMatrix(a, b label.Label) (bool, error) {
	d := e.decoder()
	if d == nil {
		return false, ErrUnsafe
	}
	m := d.pairwiseMat(a, b)
	e.release(d)
	if m == nil {
		return false, nil
	}
	return m[e.DFA.Start]&e.AcceptMask() != 0, nil
}

// PairwiseUnchecked is Pairwise for callers that already verified e.Safe().
// It borrows a pooled decoder; hot loops (the all-pairs scans, parallel
// workers) should instead hold their own Decoder and call its
// PairwiseUnchecked directly.
func (e *Env) PairwiseUnchecked(a, b label.Label) bool {
	d := e.decoder()
	if d == nil {
		panic("core: PairwiseUnchecked on an unsafe query")
	}
	ok := d.PairwiseUnchecked(a, b)
	e.release(d)
	return ok
}

// PairwiseBytes is Pairwise on encoded labels (see
// Decoder.PairwiseBytesUnchecked): the answer is computed from the bytes
// without materializing either label.
func (e *Env) PairwiseBytes(a, b label.Bytes) (bool, error) {
	d := e.decoder()
	if d == nil {
		return false, ErrUnsafe
	}
	ok := d.PairwiseBytesUnchecked(a, b)
	e.release(d)
	return ok, nil
}

// PairwiseBytesUnchecked is PairwiseBytes for callers that already
// verified e.Safe().
func (e *Env) PairwiseBytesUnchecked(a, b label.Bytes) bool {
	d := e.decoder()
	if d == nil {
		panic("core: PairwiseBytesUnchecked on an unsafe query")
	}
	ok := d.PairwiseBytesUnchecked(a, b)
	e.release(d)
	return ok
}

// PairwiseUnchecked answers the safe pairwise query on the decoder's
// environment (the hot path of the all-pairs scans). It propagates only the
// start state's reachable-state set (a row vector) through the decode
// factors, so each factor costs O(|Q|) word operations instead of a matrix
// product — this is what makes the per-pair cost tens of nanoseconds.
func (d *Decoder) PairwiseUnchecked(a, b label.Label) bool {
	if label.Equal(a, b) {
		return d.e.MatchesEmpty()
	}
	dd := label.LCP(a, b)
	if dd >= len(a) || dd >= len(b) {
		return false
	}
	return d.pairwiseTail(a[dd:], b[dd:])
}

// PairwiseBytesUnchecked is PairwiseUnchecked on encoded labels — the hot
// path of a columnar-opened run, which never materializes []Entry labels.
// The encodings are walked in lockstep with cursors to the divergence
// entry; only the two (depth-bounded) suffixes from the divergence on are
// decoded, into decoder-owned scratch, so a pairwise answer allocates
// nothing after scratch warm-up. Byte equality is only a fast path: equal
// labels with unequal bytes (overlong varints) are decided by the lockstep
// walk, never assumed impossible.
//
// The inputs must be valid encodings (Encode output or a validated label
// column); a malformed input panics, like a corrupt label column would.
//
// Sanctioned Label mutation: the appends below recycle d.sa/d.sb, scratch
// Labels owned by this decoder, never a label attached to a run.
//
//provrpq:mutator
func (d *Decoder) PairwiseBytesUnchecked(a, b label.Bytes) bool {
	if bytes.Equal(a, b) {
		return d.e.MatchesEmpty()
	}
	ca, cb := label.NewCursor(a), label.NewCursor(b)
	for {
		ea, oka := ca.Next()
		eb, okb := cb.Next()
		if !oka || !okb {
			if err := ca.Err(); err != nil {
				panic(fmt.Sprintf("core: malformed label encoding: %v", err))
			}
			if err := cb.Err(); err != nil {
				panic(fmt.Sprintf("core: malformed label encoding: %v", err))
			}
			if !oka && !okb {
				return d.e.MatchesEmpty() // equal entry sequences
			}
			return false // proper prefix: labels cannot coexist in one run
		}
		if ea == eb {
			continue
		}
		var err error
		d.sa = append(d.sa[:0], ea)
		if d.sa, err = label.DecodeInto(d.sa, ca.Rest()); err != nil {
			panic(fmt.Sprintf("core: malformed label encoding: %v", err))
		}
		d.sb = append(d.sb[:0], eb)
		if d.sb, err = label.DecodeInto(d.sb, cb.Rest()); err != nil {
			panic(fmt.Sprintf("core: malformed label encoding: %v", err))
		}
		return d.pairwiseTail(d.sa, d.sb)
	}
}

// pairwiseTail answers the divergent case given the two label suffixes
// starting at the divergence entry (a[0] != b[0], both non-empty).
func (d *Decoder) pairwiseTail(a, b label.Label) bool {
	e := d.e
	ea, eb := a[0], b[0]
	if ea.Rec != eb.Rec {
		return false
	}
	art := d.art
	sv := uint64(1) << uint(e.DFA.Start)

	apply := func(m Mat) {
		var out uint64
		rest := sv
		for rest != 0 {
			q := bits.TrailingZeros64(rest)
			rest &^= 1 << uint(q)
			out |= m[q]
		}
		sv = out
	}
	upApply := func(l label.Label, start int) bool {
		for lvl := len(l) - 1; lvl >= start; lvl-- {
			en := l[lvl]
			if !en.Rec {
				apply(art.out[en.X][en.Y])
			} else {
				apply(d.chainOut(en.X, en.Y, en.Z-1, 1))
			}
			if sv == 0 {
				return false
			}
		}
		return true
	}
	downApply := func(l label.Label, start int) bool {
		for lvl := start; lvl < len(l); lvl++ {
			en := l[lvl]
			if !en.Rec {
				apply(art.in[en.X][en.Y])
			} else {
				apply(d.chainIn(en.X, en.Y, 1, en.Z-1))
			}
			if sv == 0 {
				return false
			}
		}
		return true
	}

	if !ea.Rec {
		if ea.X != eb.X {
			return false
		}
		k := ea.X
		n := len(e.Spec.Prods[k].Body.Nodes)
		mid := art.mid[k][ea.Y*n+eb.Y]
		if mid.IsZero() {
			return false
		}
		if !upApply(a, 1) {
			return false
		}
		apply(mid)
		if sv == 0 || !downApply(b, 1) {
			return false
		}
		return sv&e.AcceptMask() != 0
	}
	if ea.X != eb.X || ea.Y != eb.Y {
		return false
	}
	s, t := ea.X, ea.Y
	i, j := ea.Z, eb.Z
	switch {
	case i < j:
		ki, cu, ok := childEntry(a, 0)
		if !ok {
			return false
		}
		rp, cyclePos := e.Spec.RecursiveProd(e.Spec.Prods[ki].LHS)
		if rp != ki {
			return false
		}
		n := len(e.Spec.Prods[ki].Body.Nodes)
		mid := art.mid[ki][cu*n+cyclePos]
		if mid.IsZero() {
			return false
		}
		if !upApply(a, 2) {
			return false
		}
		apply(mid)
		if sv == 0 {
			return false
		}
		apply(d.chainIn(s, t, i+1, j-1))
		if sv == 0 || !downApply(b, 1) {
			return false
		}
		return sv&e.AcceptMask() != 0
	case i > j:
		kj, cv, ok := childEntry(b, 0)
		if !ok {
			return false
		}
		rp, cyclePos := e.Spec.RecursiveProd(e.Spec.Prods[kj].LHS)
		if rp != kj {
			return false
		}
		n := len(e.Spec.Prods[kj].Body.Nodes)
		mid := art.mid[kj][cyclePos*n+cv]
		if mid.IsZero() {
			return false
		}
		if !upApply(a, 1) {
			return false
		}
		apply(d.chainOut(s, t, i-1, j+1))
		if sv == 0 {
			return false
		}
		apply(mid)
		if sv == 0 || !downApply(b, 2) {
			return false
		}
		return sv&e.AcceptMask() != 0
	}
	return false
}

// pairwiseMat computes the full transition matrix M with M[q][q'] = "some
// u→v path moves the DFA from q to q'", or nil when no path exists. The
// identity is returned for u == v (the empty path).
func (d *Decoder) pairwiseMat(a, b label.Label) Mat {
	e := d.e
	if label.Equal(a, b) {
		return Identity(e.NQ)
	}
	dd := label.LCP(a, b)
	if dd >= len(a) || dd >= len(b) {
		return nil // prefix labels cannot coexist as run leaves
	}
	ea, eb := a[dd], b[dd]
	if ea.Rec != eb.Rec {
		return nil
	}
	art := d.art
	if !ea.Rec {
		// Composite divergence: same node expanded with one production.
		if ea.X != eb.X {
			return nil
		}
		k := ea.X
		n := len(e.Spec.Prods[k].Body.Nodes)
		mid := art.mid[k][ea.Y*n+eb.Y]
		if mid.IsZero() {
			return nil
		}
		return d.upTo(a, dd+1).Mul(mid).Mul(d.downTo(b, dd+1))
	}
	// Recursive divergence: same R node, different iterations.
	if ea.X != eb.X || ea.Y != eb.Y {
		return nil
	}
	s, t := ea.X, ea.Y
	i, j := ea.Z, eb.Z
	switch {
	case i < j:
		// u climbs to its child unit's output inside iteration i, crosses
		// into the cycle-successor, rides the chain down to iteration j.
		ki, cu, ok := childEntry(a, dd)
		if !ok {
			return nil
		}
		rp, cyclePos := e.Spec.RecursiveProd(e.Spec.Prods[ki].LHS)
		if rp != ki {
			return nil
		}
		n := len(e.Spec.Prods[ki].Body.Nodes)
		mid := art.mid[ki][cu*n+cyclePos]
		if mid.IsZero() {
			return nil
		}
		m := d.upTo(a, dd+2).Mul(mid)
		m = m.Mul(d.chainIn(s, t, i+1, j-1))
		return m.Mul(d.downTo(b, dd+1))
	case i > j:
		// u exits iterations i..j+1 through their outputs, then crosses to
		// v's child unit within iteration j's body.
		kj, cv, ok := childEntry(b, dd)
		if !ok {
			return nil
		}
		rp, cyclePos := e.Spec.RecursiveProd(e.Spec.Prods[kj].LHS)
		if rp != kj {
			return nil
		}
		n := len(e.Spec.Prods[kj].Body.Nodes)
		mid := art.mid[kj][cyclePos*n+cv]
		if mid.IsZero() {
			return nil
		}
		m := d.upTo(a, dd+1).Mul(d.chainOut(s, t, i-1, j+1))
		return m.Mul(mid).Mul(d.downTo(b, dd+2))
	}
	return nil // same iteration yet divergent at the R entry: malformed
}

// childEntry extracts the production entry just below position d, i.e. the
// (production, body position) of the label's subtree within iteration l[d].Z.
func childEntry(l label.Label, d int) (k, c int, ok bool) {
	if d+1 >= len(l) || l[d+1].Rec {
		return 0, 0, false
	}
	return l[d+1].X, l[d+1].Y, true
}

// upTo composes the climb from the leaf's output port to the output port of
// the unit at entry index start-1's child — i.e. it folds the label entries
// l[len-1] .. l[start] bottom-up through OutMat factors (production entries)
// and descending chain products (recursion entries).
func (d *Decoder) upTo(l label.Label, start int) Mat {
	m := Identity(d.e.NQ)
	for lvl := len(l) - 1; lvl >= start; lvl-- {
		en := l[lvl]
		if !en.Rec {
			m = m.Mul(d.art.out[en.X][en.Y])
		} else {
			// From the output of iteration en.Z to the output of iteration
			// 1 (the R unit's output).
			m = m.Mul(d.chainOut(en.X, en.Y, en.Z-1, 1))
		}
	}
	return m
}

// downTo composes the descent from the input port of the unit at entry
// index start's parent down to the leaf's input port — folding entries
// l[start] .. l[len-1] through InMat factors and ascending chain products.
func (d *Decoder) downTo(l label.Label, start int) Mat {
	m := Identity(d.e.NQ)
	for lvl := start; lvl < len(l); lvl++ {
		en := l[lvl]
		if !en.Rec {
			m = m.Mul(d.art.in[en.X][en.Y])
		} else {
			// From the input of iteration 1 (the R unit's input) to the
			// input of iteration en.Z.
			m = m.Mul(d.chainIn(en.X, en.Y, 1, en.Z-1))
		}
	}
	return m
}
