package core

import (
	"testing"

	"provrpq/internal/automata"
	"provrpq/internal/baseline"
	"provrpq/internal/derive"
	"provrpq/internal/index"
	"provrpq/internal/wf"
)

// generalQueries mixes safe, unsafe and structured queries on PaperSpec.
var generalQueries = []string{
	// Safe as a whole.
	"_*.e._*",
	"_*",
	// Unsafe as a whole with safe subtrees.
	"_*.A._*",     // A occurs only in W2 executions
	"(_*.e._*).A", // safe prefix, unsafe suffix
	"d.(_*.e._*)", // unsafe head, safe tail
	"_*.d._*",     // unsafe IFQ
	"(A|d)+",      // recursion-ish unsafe
	"A+",
	"e",
	"b|e",
	"d*._*.e._*",
	"(b.b)|(e.d)",
	"_?",
}

func TestGeneralMatchesOracle(t *testing.T) {
	spec := wf.PaperSpec()
	for seed := int64(0); seed < 4; seed++ {
		run, err := derive.Derive(spec, derive.Options{Seed: seed, TargetEdges: 80})
		if err != nil {
			t.Fatal(err)
		}
		ix := index.Build(run)
		for _, strategy := range []GeneralStrategy{LargestSafeSubtree, CostBased, RelationalOnly} {
			gen := NewGeneral(run, ix, strategy)
			for _, qs := range generalQueries {
				q := automata.MustParse(qs)
				rel, rep, err := gen.Eval(q)
				if err != nil {
					t.Fatalf("Eval(%q): %v", qs, err)
				}
				oracle := baseline.NewOracle(run, q)
				want := baseline.NewRel()
				for _, u := range run.AllNodes() {
					for _, v := range oracle.From(u) {
						want.Add(u, v)
					}
				}
				if rel.Len() != want.Len() {
					t.Fatalf("strategy %d seed %d query %q: %d pairs, oracle %d (report %+v)",
						strategy, seed, qs, rel.Len(), want.Len(), rep)
				}
				want.Each(func(u, v derive.NodeID) {
					if !rel.Has(u, v) {
						t.Fatalf("strategy %d query %q: missing (%s,%s)",
							strategy, qs, run.Nodes[u].Name, run.Nodes[v].Name)
					}
				})
			}
		}
	}
}

func TestGeneralReportsDecomposition(t *testing.T) {
	spec := wf.PaperSpec()
	run, err := derive.Derive(spec, derive.Options{Seed: 1, TargetEdges: 60})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(run)
	gen := NewGeneral(run, ix, LargestSafeSubtree)

	// Whole query safe: exactly one safe subtree, no relational nodes.
	_, rep, err := gen.Eval(automata.MustParse("_*.e._*"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe || len(rep.SafeSubtrees) != 1 || rep.RelationalNodes != 0 {
		t.Errorf("safe query report = %+v", rep)
	}

	// Unsafe query with a safe subtree: the safe part must be found. (The
	// leading A makes it unsafe: W3 executions of module A kill the query
	// while W2 executions satisfy the A and proceed.)
	_, rep, err = gen.Eval(automata.MustParse("A.(_*.e._*)"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe {
		t.Error("A.(_*.e._*) should be unsafe overall")
	}
	if len(rep.SafeSubtrees) == 0 {
		t.Error("expected a maximal safe subtree to be used")
	}
	if rep.RelationalNodes == 0 {
		t.Error("expected a relational remainder")
	}

	// RelationalOnly never uses safe subtrees.
	genRel := NewGeneral(run, ix, RelationalOnly)
	_, rep, err = genRel.Eval(automata.MustParse("_*.e._*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SafeSubtrees) != 0 {
		t.Errorf("RelationalOnly used safe subtrees: %+v", rep)
	}
}

func TestGeneralEnvCacheReuse(t *testing.T) {
	spec := wf.PaperSpec()
	run, err := derive.Derive(spec, derive.Options{Seed: 1, TargetEdges: 40})
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGeneral(run, index.Build(run), LargestSafeSubtree)
	if _, _, err := gen.Eval(automata.MustParse("_*.e._*")); err != nil {
		t.Fatal(err)
	}
	count := func() int {
		n := 0
		gen.envs.Range(func(_, _ any) bool { n++; return true })
		return n
	}
	before := count()
	if _, _, err := gen.Eval(automata.MustParse("_*.e._*")); err != nil {
		t.Fatal(err)
	}
	if count() != before {
		t.Error("env cache should be reused for a repeated query")
	}
}
