package core

import (
	"testing"

	"provrpq/internal/automata"
	"provrpq/internal/baseline"
	"provrpq/internal/derive"
	"provrpq/internal/label"
	"provrpq/internal/wf"
)

func compile(t *testing.T, spec *wf.Spec, q string) *Env {
	t.Helper()
	e, err := Compile(spec, automata.MustParse(q))
	if err != nil {
		t.Fatalf("Compile(%q): %v", q, err)
	}
	return e
}

func TestSafetyVerdictsPaperSpec(t *testing.T) {
	spec := wf.PaperSpec()
	cases := []struct {
		q    string
		safe bool
	}{
		{"_*", true},           // reachability is safe for every workflow
		{"_*.e._*", true},      // paper's R3: A always terminates through W3's e edge
		{"_*.A._*", false},     // analogue of the paper's unsafe _*a_*: only W2 executions carry an A tag
		{"_*.d._*", false},     // d occurs only in W2 executions of A
		{"_*.b._*", true},      // b occurs in every execution of S and B, never inside A
		{"e", false},           // paper's R4
		{"_+", true},           // at least one edge: every composite consumes one
		{"ε", true},            // empty-path query: trivially deterministic
		{"b|e", false},         // distinguishes W2 from W3 executions of A
		{"_*.e._*.e._*", true}, // two e's: W2 recursions preserve the count reached
	}
	for _, c := range cases {
		e := compile(t, spec, c.q)
		if e.Safe() != c.safe {
			t.Errorf("Safe(%q) = %v, want %v (witness module %d prod %d)",
				c.q, e.Safe(), c.safe, e.UnsafeModule(), e.UnsafeProd())
		}
		if !e.Safe() && (e.UnsafeModule() < 0 || e.UnsafeProd() < 0) {
			t.Errorf("unsafe verdict for %q lacks a witness", c.q)
		}
	}
}

func TestSafetyVerdictsForkSpec(t *testing.T) {
	spec := wf.ForkSpec()
	// Every execution of M spells a^j (j >= 0) on its input-output path;
	// every execution of S spells a^j b.
	cases := []struct {
		q    string
		safe bool
	}{
		{"_*", true},
		{"a*", true},    // a^j keeps the a-loop state for every j
		{"a*.b", false}, // Def. 12 quantifies over ALL state pairs: the
		// post-b state survives M's ε path but dies on a^+ paths
		{"a+", false}, // distinguishes j = 0 from j > 0 executions of M
		{"a+.b", false},
		{"_+", false}, // M's base execution has an empty path
		{"ε", false},
	}
	for _, c := range cases {
		e := compile(t, spec, c.q)
		if e.Safe() != c.safe {
			t.Errorf("Safe(%q) = %v, want %v", c.q, e.Safe(), c.safe)
		}
	}
}

func TestUnsafeEntryPointsReject(t *testing.T) {
	spec := wf.PaperSpec()
	e := compile(t, spec, "_*.A._*")
	if _, err := e.Pairwise(label.Label{label.Prod(0, 0)}, label.Label{label.Prod(0, 3)}); err != ErrUnsafe {
		t.Errorf("Pairwise on unsafe query: err = %v, want ErrUnsafe", err)
	}
	if err := e.AllPairsSafe(nil, nil, OptRPL, func(i, j int) {}); err != ErrUnsafe {
		t.Errorf("AllPairsSafe on unsafe query: err = %v, want ErrUnsafe", err)
	}
}

func TestLambdaPaperSpecR3(t *testing.T) {
	// For R3 = _*e_*, λ(A) must map q0 to the accepting state (every
	// execution of A passes an e edge) and λ(B) must keep states unchanged.
	spec := wf.PaperSpec()
	e := compile(t, spec, "_*.e._*")
	if !e.Safe() {
		t.Fatal("R3 should be safe")
	}
	if e.NQ != 2 {
		t.Fatalf("NQ = %d, want 2", e.NQ)
	}
	q0 := e.DFA.Start
	qf := -1
	for q := 0; q < e.NQ; q++ {
		if e.DFA.Accept[q] {
			qf = q
		}
	}
	aMod, _ := spec.ModuleByName("A")
	bMod, _ := spec.ModuleByName("B")
	sMod, _ := spec.ModuleByName("S")
	if la := e.Lambda()[aMod]; !la.Get(q0, qf) || la.Get(q0, q0) || !la.Get(qf, qf) {
		t.Errorf("λ(A) = %s: want q0->qf only from q0", la)
	}
	if lb := e.Lambda()[bMod]; !lb.Get(q0, q0) || lb.Get(q0, qf) || !lb.Get(qf, qf) {
		t.Errorf("λ(B) = %s: want state-preserving", lb)
	}
	if ls := e.Lambda()[sMod]; !ls.Get(q0, qf) || ls.Get(q0, q0) {
		t.Errorf("λ(S) = %s: S's executions always pass e", ls)
	}
}

// scriptW2W2W3 reproduces the paper's sample run.
func scriptW2W2W3(m wf.ModuleID, prods []int, iter int) int {
	if len(prods) == 1 {
		return prods[0]
	}
	if iter < 3 {
		return 1
	}
	return 2
}

func TestPairwiseR3OnPaperRun(t *testing.T) {
	spec := wf.PaperSpec()
	run, err := derive.Derive(spec, derive.Options{Policy: scriptW2W2W3})
	if err != nil {
		t.Fatal(err)
	}
	e := compile(t, spec, "_*.e._*")
	cases := []struct {
		u, v string
		want bool
	}{
		{"c:1", "b:3", true},  // the chain passes the e edge inside A's base case
		{"c:1", "a:2", false}, // before the e edge
		{"e:1", "e:2", true},  // the e edge itself
		{"e:2", "d:1", false}, // after the e edge, no second e
		{"a:1", "d:2", true},  // crosses the nested base case
		{"b:1", "b:2", false},
		{"c:1", "c:1", false}, // ε not in L(R3)
	}
	for _, c := range cases {
		u, _ := run.NodeByName(c.u)
		v, _ := run.NodeByName(c.v)
		got, err := e.Pairwise(run.Label(u), run.Label(v))
		if err != nil {
			t.Fatalf("Pairwise: %v", err)
		}
		if got != c.want {
			t.Errorf("R3(%s, %s) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

type querySuite struct {
	spec    *wf.Spec
	queries []string
	minSafe int
}

// specsAndQueries enumerates the cross-validation workloads: per spec, a
// list of queries of which the safe ones are oracle-compared exhaustively.
func specsAndQueries() map[string]querySuite {
	multi, err := wf.NewBuilder().
		Start("S").
		Atomic("x", "y", "z").
		Chain("S", "x", "A").
		Chain("A", "x", "B", "y").
		Chain("A", "z", "z").
		Chain("B", "y", "A", "x").
		Chain("B", "z", "z").
		Build()
	if err != nil {
		panic(err)
	}
	branchy, err := wf.NewBuilder().
		Start("S").
		Atomic("src", "l", "r", "snk", "t").
		Prod("S", []string{"src", "L", "R", "snk"}, []wf.BodyEdge{
			{From: 0, To: 1, Tag: "l"}, {From: 0, To: 2, Tag: "r"},
			{From: 1, To: 3, Tag: "s"}, {From: 2, To: 3, Tag: "s"},
		}).
		Prod("L", []string{"src", "L", "snk"}, []wf.BodyEdge{
			{From: 0, To: 1, Tag: "l"}, {From: 1, To: 2, Tag: "l"},
		}).
		Chain("L", "l").
		Prod("R", []string{"r", "t"}, []wf.BodyEdge{{From: 0, To: 1, Tag: "t"}}).
		Build()
	if err != nil {
		panic(err)
	}
	return map[string]querySuite{
		"paper": {
			spec: wf.PaperSpec(),
			queries: []string{
				"_*", "_+", "_*.e._*", "_*.b._*", "_*.e._*.b._*", "ε",
				"_*.e._*.e._*", "b.b", "_._*", "(e|b)._*", "_?",
			},
			minSafe: 8,
		},
		"fork": {
			spec:    wf.ForkSpec(),
			queries: []string{"_*", "a*", "a*.b", "a+", "a+.b", "ε"},
			minSafe: 2,
		},
		"multicycle": {
			spec:    multi,
			queries: []string{"_*", "_+", "_*.z._*", "x._*", "ε"},
			minSafe: 4,
		},
		"branchy": {
			spec:    branchy,
			queries: []string{"_*", "_+", "_*.s._*", "l*", "_*.t._*", "r.t.s"},
			minSafe: 4,
		},
	}
}

func TestPairwiseMatchesOracle(t *testing.T) {
	for name, suite := range specsAndQueries() {
		safeCount := 0
		for _, q := range suite.queries {
			env := compile(t, suite.spec, q)
			if !env.Safe() {
				continue
			}
			safeCount++
			for seed := int64(0); seed < 6; seed++ {
				run, err := derive.Derive(suite.spec, derive.Options{Seed: seed, TargetEdges: 120})
				if err != nil {
					t.Fatal(err)
				}
				oracle := baseline.NewOracle(run, automata.MustParse(q))
				n := run.NumNodes()
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						u, v := derive.NodeID(i), derive.NodeID(j)
						got, err := env.Pairwise(run.Label(u), run.Label(v))
						if err != nil {
							t.Fatal(err)
						}
						if want := oracle.Pairwise(u, v); got != want {
							t.Fatalf("%s seed %d query %q: Pairwise(%s,%s)=%v oracle=%v\nlabels %s | %s",
								name, seed, q, run.Nodes[i].Name, run.Nodes[j].Name,
								got, want, run.Label(u), run.Label(v))
						}
					}
				}
			}
		}
		if safeCount < suite.minSafe {
			t.Errorf("%s: only %d safe queries exercised, want >= %d", name, safeCount, suite.minSafe)
		}
	}
}

func TestDeepRecursionChainPowers(t *testing.T) {
	// Long fork chains force the chain caches through many loop powers.
	spec := wf.ForkSpec()
	run, err := derive.Derive(spec, derive.Options{Seed: 1, TargetEdges: 3000, FavorModule: "M"})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"a*", "_*"} {
		env := compile(t, spec, q)
		if !env.Safe() {
			t.Fatalf("%q unexpectedly unsafe", q)
		}
		oracle := baseline.NewOracle(run, automata.MustParse(q))
		as := run.NodesOfModule("a")
		bs := run.NodesOfModule("b")
		// Sample far-apart pairs along the chain.
		pairs := [][2]derive.NodeID{
			{as[0], bs[len(bs)-1]},
			{as[0], bs[0]},
			{as[len(as)/2], bs[len(bs)-1]},
			{as[len(as)-1], bs[0]},
			{as[0], as[len(as)-1]},
			{as[3], as[4]},
		}
		for _, p := range pairs {
			got, err := env.Pairwise(run.Label(p[0]), run.Label(p[1]))
			if err != nil {
				t.Fatal(err)
			}
			if want := oracle.Pairwise(p[0], p[1]); got != want {
				t.Fatalf("query %q pair (%s,%s): got %v want %v", q,
					run.Nodes[p[0]].Name, run.Nodes[p[1]].Name, got, want)
			}
		}
	}
}

// TestVectorAndMatrixDecodeAgree cross-checks the row-vector fast path
// against the full matrix-product decode over every node pair.
func TestVectorAndMatrixDecodeAgree(t *testing.T) {
	spec := wf.PaperSpec()
	for _, qs := range []string{"_*.e._*", "_*", "_*.e._*.b._*", "b.b"} {
		env := compile(t, spec, qs)
		if !env.Safe() {
			t.Fatalf("%q unexpectedly unsafe", qs)
		}
		run, err := derive.Derive(spec, derive.Options{Seed: 11, TargetEdges: 150})
		if err != nil {
			t.Fatal(err)
		}
		n := run.NumNodes()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a, b := run.Label(derive.NodeID(i)), run.Label(derive.NodeID(j))
				fast := env.PairwiseUnchecked(a, b)
				slow, err := env.PairwiseMatrix(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if fast != slow {
					t.Fatalf("%q (%s,%s): vector=%v matrix=%v", qs,
						run.Nodes[i].Name, run.Nodes[j].Name, fast, slow)
				}
			}
		}
	}
}

func TestAllPairsStrategiesAgree(t *testing.T) {
	spec := wf.PaperSpec()
	env := compile(t, spec, "_*.e._*")
	run, err := derive.Derive(spec, derive.Options{Seed: 9, TargetEdges: 200})
	if err != nil {
		t.Fatal(err)
	}
	var l1, l2 []label.Label
	for i, n := range run.Nodes {
		if i%2 == 0 {
			l1 = append(l1, n.Label)
		} else {
			l2 = append(l2, n.Label)
		}
	}
	collect := func(s AllPairsStrategy) map[[2]int]bool {
		out := map[[2]int]bool{}
		if err := env.AllPairsSafe(l1, l2, s, func(i, j int) { out[[2]int{i, j}] = true }); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(RPL), collect(OptRPL)
	if len(a) != len(b) {
		t.Fatalf("RPL %d pairs, OptRPL %d", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("OptRPL missing %v", k)
		}
	}
	if len(a) == 0 {
		t.Fatal("expected some matches")
	}
}

// TestSafetyMeansExecutionMatricesAgree validates the safety checker
// against sampled executions: for a safe query, every sampled execution of
// every composite module must exhibit exactly λ(M).
func TestSafetyMeansExecutionMatricesAgree(t *testing.T) {
	spec := wf.PaperSpec()
	for _, q := range []string{"_*.e._*", "_*", "_*.b._*", "_+"} {
		env := compile(t, spec, q)
		if !env.Safe() {
			t.Fatalf("%q unexpectedly unsafe", q)
		}
		for m := range spec.Modules {
			mod := wf.ModuleID(m)
			if !spec.IsComposite(mod) {
				continue
			}
			for seed := int64(0); seed < 10; seed++ {
				run, err := derive.DeriveFrom(spec, mod, derive.Options{Seed: seed, TargetEdges: 40})
				if err != nil {
					t.Fatal(err)
				}
				got := executionMatrix(env, run)
				if !got.Eq(env.Lambda()[mod]) {
					t.Fatalf("query %q module %s seed %d: execution matrix %s != λ %s",
						q, spec.Name(mod), seed, got, env.Lambda()[mod])
				}
			}
		}
	}
}

// executionMatrix computes the input-to-output transition matrix of a
// materialized execution by forward DP (ground truth for λ).
func executionMatrix(env *Env, run *derive.Run) Mat {
	n := run.NumNodes()
	// Find source and sink.
	indeg := make([]int, n)
	outdeg := make([]int, n)
	for _, e := range run.Edges {
		indeg[e.To]++
		outdeg[e.From]++
	}
	src, sink := -1, -1
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			src = i
		}
		if outdeg[i] == 0 {
			sink = i
		}
	}
	// at[v][q][q'] accumulated as Mat per node; topological by Kahn.
	at := make([]Mat, n)
	at[src] = Identity(env.NQ)
	deg := append([]int(nil), indeg...)
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ei := range run.Out(derive.NodeID(v)) {
			e := run.Edges[ei]
			step := at[v].Mul(env.tagMat(e.Tag))
			if at[e.To] == nil {
				at[e.To] = step
			} else {
				at[e.To].OrInPlace(step)
			}
			deg[e.To]--
			if deg[e.To] == 0 {
				queue = append(queue, int(e.To))
			}
		}
	}
	return at[sink]
}
