package core

import (
	"math/bits"

	"provrpq/internal/wf"
)

// This file implements an extension beyond the paper: context-restricted
// safety. Definition 12 requires every DFA state pair (q1, q2) to behave
// deterministically across a module's executions. But a pairwise query
// starts at an arbitrary node u in the DFA start state, so the only states
// that can ever arrive at a module's input are those reachable from q0 by
// some path suffix that the grammar can actually generate upstream of the
// module. Requiring determinism only on those rows accepts strictly more
// queries as safe, and the decode remains correct because the row-vector
// fast path only ever reads λ rows for states in the arriving set.
//
// The arriving sets are computed as a least fixpoint over the grammar using
// the union transition semantics λ∪ (the union of all executions' matrices,
// which is well-defined regardless of safety):
//
//	q0 arrives at every body position (a path may start anywhere);
//	a state arriving at a production's input flows through the body —
//	through λ∪ of each node and the edge-tag transitions — and arrives at
//	each downstream position and at nested modules' inputs.

// RelaxSafety upgrades an unsafe verdict using context-restricted safety.
// It returns true when the query is safe in the relaxed sense; the Env is
// then fully usable for pairwise/all-pairs decoding (its λ rows outside
// the arriving sets are normalized to the union semantics, which the
// decode never consults from a start-state vector).
//
// RelaxSafety is safe for concurrent use: the relaxation fixpoint runs at
// most once per Env, concurrent callers block on it, and a successful
// upgrade is published atomically as a complete replacement state — readers
// observe either the strict verdict or the fully relaxed one, never a
// mixture. A failed relaxation leaves the strict verdict (and its witness)
// untouched.
//
//provrpq:mutator
func (e *Env) RelaxSafety() bool {
	if e.state.Load().safe {
		return true
	}
	e.relaxMu.Lock()
	defer e.relaxMu.Unlock()
	if e.state.Load().safe {
		return true
	}
	if e.relaxTried {
		return false
	}
	e.relaxTried = true
	lam, ok := e.relaxedLambda()
	if !ok {
		return false
	}
	e.publish(&envState{lambda: lam, safe: true, unsafeModule: -1, unsafeProd: -1})
	return true
}

// relaxedLambda runs the context-restricted worklist and returns the
// union-semantics λ table when the query is relaxed-safe. It reads only the
// Env's immutable compile-time fields.
func (e *Env) relaxedLambda() ([]Mat, bool) {
	lambdaU := e.unionLambda()
	arrive := e.arrivingStates(lambdaU)

	// Re-run the worklist, comparing candidates only on arriving rows and
	// storing the union matrix so later productions compose consistently.
	s := e.Spec
	lam := make([]Mat, len(s.Modules))
	for i := range s.Modules {
		if !s.IsComposite(wf.ModuleID(i)) {
			lam[i] = Identity(e.NQ)
		}
	}
	pending := make([]bool, len(s.Prods))
	for i := range pending {
		pending[i] = true
	}
	defined := make([]bool, len(s.Modules))
	for i := range s.Modules {
		defined[i] = !s.IsComposite(wf.ModuleID(i))
	}
	for changed := true; changed; {
		changed = false
		for k := range s.Prods {
			if !pending[k] {
				continue
			}
			p := &s.Prods[k]
			ready := true
			for _, m := range p.Body.Nodes {
				if !defined[m] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			pending[k] = false
			changed = true
			cand := e.prodLambda(lam, k)
			if !defined[p.LHS] {
				// Define as the union semantics so downstream compositions
				// see every possible transition; determinism is enforced
				// only on the rows that can arrive.
				lam[p.LHS] = lambdaU[p.LHS]
				defined[p.LHS] = true
			}
			for q := 0; q < e.NQ; q++ {
				if arrive[p.LHS]&(1<<uint(q)) == 0 {
					continue
				}
				if cand[q] != lambdaU[p.LHS][q] {
					// Some execution of LHS lacks a transition that another
					// provides, on an arriving row: genuinely unsafe.
					return nil, false
				}
			}
		}
	}
	return lam, true
}

// unionLambda computes λ∪(M) for every module: the union over all
// executions of the input-to-output transition relation. Least fixpoint
// (Kleene iteration) over the production bodies.
func (e *Env) unionLambda() []Mat {
	s := e.Spec
	lam := make([]Mat, len(s.Modules))
	for i := range s.Modules {
		if s.IsComposite(wf.ModuleID(i)) {
			lam[i] = NewMat(e.NQ)
		} else {
			lam[i] = Identity(e.NQ)
		}
	}
	for changed := true; changed; {
		changed = false
		for k := range s.Prods {
			cand := e.prodLambda(lam, k)
			lhs := s.Prods[k].LHS
			for q := 0; q < e.NQ; q++ {
				if cand[q]&^lam[lhs][q] != 0 {
					lam[lhs][q] |= cand[q]
					changed = true
				}
			}
		}
	}
	return lam
}

// arrivingStates computes, per module, the bitset of DFA states that can
// arrive at the module's input on some path of some run. Seeds: the start
// state arrives everywhere (a path may begin at any node). Propagation:
// a state arriving at a production's owner flows through the body to each
// position using λ∪ and the edge transitions.
func (e *Env) arrivingStates(lambdaU []Mat) []uint64 {
	s := e.Spec
	arrive := make([]uint64, len(s.Modules))
	start := uint64(1) << uint(e.DFA.Start)
	for i := range arrive {
		arrive[i] = start
	}
	for changed := true; changed; {
		changed = false
		for k := range s.Prods {
			p := &s.Prods[k]
			ins := e.bodyInMats(lambdaU, k) // composed through λ∪
			src := arrive[p.LHS]
			for c, m := range p.Body.Nodes {
				// States arriving at position c given src arriving at the
				// body input.
				var at uint64
				rest := src
				for rest != 0 {
					q := bits.TrailingZeros64(rest)
					rest &^= 1 << uint(q)
					at |= ins[c][q]
				}
				if at&^arrive[m] != 0 {
					arrive[m] |= at
					changed = true
				}
			}
		}
	}
	return arrive
}
