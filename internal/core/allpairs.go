package core

import (
	"provrpq/internal/label"
	"provrpq/internal/parallel"
	"provrpq/internal/reach"
)

// AllPairsStrategy selects how a safe all-pairs query is evaluated.
type AllPairsStrategy int

const (
	// RPL is the paper's Option S1: a nested-loop scan testing every pair
	// with the constant-time pairwise decode. Θ(|l1|·|l2|) decode calls.
	RPL AllPairsStrategy = iota
	// OptRPL is Option S2: first find the (coarsely) reachable pairs with
	// the output-linear tree algorithm, then decode only those. The decode
	// count drops to N, the number of reachable pairs.
	OptRPL
)

// rplParallelCutoff is the nested-loop pair-count floor below which the RPL
// scan stays serial, and optParallelCutoff the l1 size floor for OptRPL:
// goroutine fan-out only pays off once there is enough per-shard work to
// amortize it.
const (
	rplParallelCutoff = 2048
	optParallelCutoff = 512
)

// AllPairsSafe evaluates the safe all-pairs query over two label lists and
// emits each matching pair by list indices, serially on the calling
// goroutine. Pairs are emitted in a deterministic order (RPL: l1-major
// nested-loop order; OptRPL: the reach-walk order of the coarse filter).
func (e *Env) AllPairsSafe(l1, l2 []label.Label, strategy AllPairsStrategy, emit func(i, j int)) error {
	return e.AllPairsSafeParallel(l1, l2, strategy, 1, emit)
}

// AllPairsSafeParallel is AllPairsSafe sharded across a bounded worker pool
// of the given size (0 means one worker per CPU, 1 forces the serial scan).
// l1 is split into contiguous shards, each scanned by its own goroutine
// with its own Decoder; per-shard emits are buffered and merged in shard
// order, so the emit callback runs on the calling goroutine and — for a
// fixed worker count — observes a deterministic pair sequence. The RPL scan
// reproduces the serial nested-loop order exactly; the OptRPL scan shards
// the coarse reach filter itself (each shard walks its own sub-trie against
// a shared l2 trie), so its order is shard-major rather than the serial
// walk order, but the pair set is always identical.
func (e *Env) AllPairsSafeParallel(l1, l2 []label.Label, strategy AllPairsStrategy, workers int, emit func(i, j int)) error {
	st := e.state.Load()
	if !st.safe {
		return ErrUnsafe
	}
	e.artifactsFor(st) // build once up front, not per worker
	workers = parallel.Workers(workers)

	switch strategy {
	case RPL:
		if workers <= 1 || len(l1)*len(l2) < rplParallelCutoff {
			d := e.decoder()
			defer e.release(d)
			for i, a := range l1 {
				for j, b := range l2 {
					if d.PairwiseUnchecked(a, b) {
						emit(i, j)
					}
				}
			}
			return nil
		}
		parallel.Gather(len(l1), workers, func(_, lo, hi int, out func([2]int)) {
			d := e.decoder() // pooled: each worker borrows a warm decoder
			defer e.release(d)
			for i := lo; i < hi; i++ {
				for j, b := range l2 {
					if d.PairwiseUnchecked(l1[i], b) {
						out([2]int{i, j})
					}
				}
			}
		}, func(p [2]int) { emit(p[0], p[1]) })
		return nil

	case OptRPL:
		if workers <= 1 || len(l1) < optParallelCutoff {
			d := e.decoder()
			defer e.release(d)
			reach.AllPairs(e.Spec, l1, l2, func(i, j int) {
				if d.PairwiseUnchecked(l1[i], l2[j]) {
					emit(i, j)
				}
			})
			return nil
		}
		t2 := reach.NewTrie(l2)
		parallel.Gather(len(l1), workers, func(_, lo, hi int, out func([2]int)) {
			d := e.decoder()
			defer e.release(d)
			t1 := reach.NewTrie(l1[lo:hi])
			reach.AllPairsTries(e.Spec, t1, t2, func(i, j int) {
				if d.PairwiseUnchecked(l1[lo+i], l2[j]) {
					out([2]int{lo + i, j})
				}
			})
		}, func(p [2]int) { emit(p[0], p[1]) })
		return nil
	}
	return nil
}
