package core

import (
	"provrpq/internal/label"
	"provrpq/internal/reach"
)

// AllPairsStrategy selects how a safe all-pairs query is evaluated.
type AllPairsStrategy int

const (
	// RPL is the paper's Option S1: a nested-loop scan testing every pair
	// with the constant-time pairwise decode. Θ(|l1|·|l2|) decode calls.
	RPL AllPairsStrategy = iota
	// OptRPL is Option S2: first find the (coarsely) reachable pairs with
	// the output-linear tree algorithm, then decode only those. The decode
	// count drops to N, the number of reachable pairs.
	OptRPL
)

// AllPairsSafe evaluates the safe all-pairs query over two label lists and
// emits each matching pair by list indices. The emit order is unspecified.
func (e *Env) AllPairsSafe(l1, l2 []label.Label, strategy AllPairsStrategy, emit func(i, j int)) error {
	if !e.Safe {
		return ErrUnsafe
	}
	e.ensureArtifacts()
	switch strategy {
	case RPL:
		for i, a := range l1 {
			for j, b := range l2 {
				if e.PairwiseUnchecked(a, b) {
					emit(i, j)
				}
			}
		}
	case OptRPL:
		reach.AllPairs(e.Spec, l1, l2, func(i, j int) {
			if e.PairwiseUnchecked(l1[i], l2[j]) {
				emit(i, j)
			}
		})
	}
	return nil
}
