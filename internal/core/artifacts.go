package core

import "provrpq/internal/label"

// artifacts holds the decode structures derived from the query-intersected
// specification G_R (Section III-B): per-production port-transition matrices
// and per-cycle chain step matrices. They are valid only for safe queries,
// because composite body nodes are summarized by their λ matrices. Once
// built the tables are never written again, so any number of decoders can
// read them concurrently.
type artifacts struct {
	// in[k][c]: from the input port of production k's body to the input
	// port of body node c (identity at the source).
	in [][]Mat
	// out[k][c]: from the output port of body node c to the output port of
	// production k's body (identity at the sink).
	out [][]Mat
	// mid[k][c1*n+c2]: from the output port of body node c1 to the input
	// port of body node c2 within production k (zero when c1 cannot reach
	// c2).
	mid [][]Mat

	// stepIn[s][p]: cycle s, cycle position p — from the input port of an
	// iteration whose module sits at position p to the input port of the
	// next iteration (InMat of the recursive production at its
	// cycle-successor position). stepOut is the dual for output ports.
	stepIn  [][]Mat
	stepOut [][]Mat
}

// rangeKey identifies one chain range product.
type rangeKey struct {
	out      bool
	s, t     int
	from, to int
}

// artifactsFor returns the state's decode structures, building them exactly
// once; callers must have verified st.safe.
func (e *Env) artifactsFor(st *envState) *artifacts {
	if !st.safe {
		panic("core: decode artifacts requested for an unsafe query")
	}
	st.artOnce.Do(func() { st.art = e.buildArtifacts(st.lambda) })
	return st.art
}

// buildArtifacts materializes the port-transition tables against one λ
// table.
func (e *Env) buildArtifacts(lam []Mat) *artifacts {
	a := &artifacts{}
	s := e.Spec
	a.in = make([][]Mat, len(s.Prods))
	a.out = make([][]Mat, len(s.Prods))
	a.mid = make([][]Mat, len(s.Prods))
	for k := range s.Prods {
		a.in[k] = e.bodyInMats(lam, k)
		a.out[k] = e.bodyOutMats(lam, k)
		a.mid[k] = e.bodyMidMats(lam, k)
	}
	a.stepIn = make([][]Mat, len(s.Cycles()))
	a.stepOut = make([][]Mat, len(s.Cycles()))
	for _, c := range s.Cycles() {
		L := c.Len()
		a.stepIn[c.ID] = make([]Mat, L)
		a.stepOut[c.ID] = make([]Mat, L)
		for p := 0; p < L; p++ {
			m := c.ModuleAt(p)
			k, cyclePos := s.RecursiveProd(m)
			a.stepIn[c.ID][p] = a.in[k][cyclePos]
			a.stepOut[c.ID][p] = a.out[k][cyclePos]
		}
	}
	return a
}

// bodyMidMats computes, for every ordered body-node pair (c1, c2) of
// production k, the matrix from the output port of c1 to the input port of
// c2. Backward DP per target: W[x] = ∪ over edges (x,y,tag) of
// T_tag · (y == c2 ? I : λ(y) · W[y]).
func (e *Env) bodyMidMats(lam []Mat, k int) []Mat {
	p := &e.Spec.Prods[k]
	n := len(p.Body.Nodes)
	topo := e.bodyTopo(k)
	id := Identity(e.NQ)
	mid := make([]Mat, n*n)
	for c2 := 0; c2 < n; c2++ {
		w := make([]Mat, n)
		for i := len(topo) - 1; i >= 0; i-- {
			x := topo[i]
			w[x] = NewMat(e.NQ)
			for _, be := range p.Body.Edges {
				if be.From != x {
					continue
				}
				var tail Mat
				if be.To == c2 {
					tail = id
				} else {
					if w[be.To].IsZero() {
						continue
					}
					tail = lam[p.Body.Nodes[be.To]].Mul(w[be.To])
				}
				w[x].OrInPlace(e.tagMat(be.Tag).Mul(tail))
			}
		}
		for c1 := 0; c1 < n; c1++ {
			mid[c1*n+c2] = w[c1]
		}
	}
	return mid
}

// Decoder answers pairwise decodes against one compiled environment. It
// owns the mutable memo tables of the decode hot path (the chain-power and
// range-product caches), so a Decoder is NOT safe for concurrent use —
// parallel scans give every worker goroutine its own. The underlying
// artifacts and λ tables are shared and immutable.
type Decoder struct {
	e   *Env
	st  *envState
	art *artifacts

	chainCache map[chainKey]*powSeq
	// rangeCache memoizes chainIn/chainOut range products; the decode fast
	// path calls them with label-derived arguments that repeat heavily
	// across an all-pairs scan. nil when Env.DisableRangeCache is set.
	rangeCache map[rangeKey]Mat

	// sa/sb are reusable scratch for PairwiseBytesUnchecked's suffix
	// decode, so byte-path pairwise answers stop allocating once the
	// scratch has grown to the label depth.
	sa, sb label.Label
}

// NewDecoder returns a fresh decoder over the environment's current state.
// It panics when the query is not (relaxed-)safe.
func (e *Env) NewDecoder() *Decoder { return e.newDecoder(e.state.Load()) }

func (e *Env) newDecoder(st *envState) *Decoder {
	d := &Decoder{e: e, st: st, art: e.artifactsFor(st), chainCache: map[chainKey]*powSeq{}}
	if !e.DisableRangeCache {
		d.rangeCache = map[rangeKey]Mat{}
	}
	return d
}

// decoder borrows a pooled decoder for the current state; release returns
// it. The pool keeps memo tables warm across the convenience entry points
// without sharing them between goroutines.
func (e *Env) decoder() *Decoder {
	st := e.state.Load()
	if !st.safe {
		return nil
	}
	return st.decPool.Get().(*Decoder)
}

func (e *Env) release(d *Decoder) { d.st.decPool.Put(d) }

// chainKey identifies a cached power sequence: cycle, flavor (in/out),
// starting cycle position and direction.
type chainKey struct {
	cycle    int
	out      bool
	startPos int
	desc     bool
}

// powSeq caches successive powers of a loop-product matrix until the
// sequence becomes periodic, giving O(1) lookups of arbitrary powers. A
// single boolean matrix generates a finite (and in practice tiny) monoid.
type powSeq struct {
	base  Mat
	seq   []Mat
	index map[string]int // matrix key -> position in seq
	pre   int            // preperiod (index where the cycle starts)
	per   int            // period; 0 until detected
}

func newPowSeq(base Mat) *powSeq {
	return &powSeq{base: base, index: map[string]int{}}
}

// power returns base^e for e >= 1.
func (p *powSeq) power(e int) Mat {
	if e < 1 {
		panic("core: power exponent must be >= 1")
	}
	for p.per == 0 && len(p.seq) < e {
		var next Mat
		if len(p.seq) == 0 {
			next = p.base
		} else {
			next = p.seq[len(p.seq)-1].Mul(p.base)
		}
		k := next.key()
		if at, seen := p.index[k]; seen {
			p.pre = at
			p.per = len(p.seq) - at
			break
		}
		p.index[k] = len(p.seq)
		p.seq = append(p.seq, next)
	}
	if e <= len(p.seq) {
		return p.seq[e-1]
	}
	// e beyond the detected cycle: fold into [pre, pre+per).
	return p.seq[p.pre+((e-1-p.pre)%p.per)]
}

// chainIn returns the matrix from the input port of iteration fromIter to
// the input port of iteration toIter+1 of a recursion chain on cycle s
// entered at cycle position t — the product of stepIn factors for
// iterations fromIter..toIter ascending. fromIter > toIter yields the
// identity.
func (d *Decoder) chainIn(s, t, fromIter, toIter int) Mat {
	if d.rangeCache == nil {
		return d.chainProd(d.art.stepIn[s], chainKey{cycle: s, out: false}, t, fromIter, toIter, false)
	}
	k := rangeKey{out: false, s: s, t: t, from: fromIter, to: toIter}
	if m, ok := d.rangeCache[k]; ok {
		return m
	}
	m := d.chainProd(d.art.stepIn[s], chainKey{cycle: s, out: false}, t, fromIter, toIter, false)
	d.rangeCache[k] = m
	return m
}

// chainOut returns the matrix from the output port of iteration fromIter+1
// to the output port of iteration toIter of the chain — the product of
// stepOut factors for iterations fromIter..toIter descending. fromIter <
// toIter yields the identity.
func (d *Decoder) chainOut(s, t, fromIter, toIter int) Mat {
	if d.rangeCache == nil {
		return d.chainProd(d.art.stepOut[s], chainKey{cycle: s, out: true}, t, fromIter, toIter, true)
	}
	k := rangeKey{out: true, s: s, t: t, from: fromIter, to: toIter}
	if m, ok := d.rangeCache[k]; ok {
		return m
	}
	m := d.chainProd(d.art.stepOut[s], chainKey{cycle: s, out: true}, t, fromIter, toIter, true)
	d.rangeCache[k] = m
	return m
}

// chainProd multiplies step[pos(m)] over iterations m from fromIter to
// toIter (ascending or descending), where pos(m) = (t + m - 1) mod L. Long
// runs are folded into powers of the full-loop product, cached per starting
// position.
func (d *Decoder) chainProd(step []Mat, key chainKey, t, fromIter, toIter int, desc bool) Mat {
	nq := d.e.NQ
	L := len(step)
	count := toIter - fromIter + 1
	if desc {
		count = fromIter - toIter + 1
	}
	if count <= 0 {
		return Identity(nq)
	}
	pos := func(m int) int { return ((t+m-1)%L + L) % L }
	dir := 1
	if desc {
		dir = -1
	}

	// Short chains and the partial prefix: multiply directly.
	prod := Identity(nq)
	m := fromIter
	direct := count % L
	if count < 2*L {
		direct = count
	}
	for i := 0; i < direct; i++ {
		prod = prod.Mul(step[pos(m)])
		m += dir
	}
	remaining := count - direct
	if remaining == 0 {
		return prod
	}
	// remaining is a positive multiple of L: fold into loop powers.
	e := remaining / L
	key.startPos = pos(m)
	key.desc = desc
	ps, ok := d.chainCache[key]
	if !ok {
		loop := Identity(nq)
		mm := m
		for i := 0; i < L; i++ {
			loop = loop.Mul(step[pos(mm)])
			mm += dir
		}
		ps = newPowSeq(loop)
		d.chainCache[key] = ps
	}
	return prod.Mul(ps.power(e))
}
