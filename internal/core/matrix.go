package core

import (
	"math/bits"
	"strings"
)

// Mat is a boolean |Q|×|Q| transition-relation matrix over DFA states,
// stored as one uint64 bitset row per state (|Q| ≤ 64 is enforced at query
// compile time). Mat[q] has bit q' set iff some path transitions the DFA
// from q to q'. These matrices are the λ(M,ex) of Section III-C and the
// building blocks of the fine-grained decode.
type Mat []uint64

// NewMat returns the all-zero n×n matrix.
func NewMat(n int) Mat { return make(Mat, n) }

// Identity returns the n×n identity matrix.
func Identity(n int) Mat {
	m := NewMat(n)
	for i := range m {
		m[i] = 1 << uint(i)
	}
	return m
}

// Clone returns an independent copy.
func (a Mat) Clone() Mat { return append(Mat(nil), a...) }

// Mul returns the boolean matrix product a·b: (a·b)[q][q'] = ∃r a[q][r] ∧
// b[r][q'] — "first take a path described by a, then one described by b".
func (a Mat) Mul(b Mat) Mat {
	n := len(a)
	c := NewMat(n)
	for i := 0; i < n; i++ {
		row := a[i]
		var acc uint64
		for row != 0 {
			j := bits.TrailingZeros64(row)
			row &^= 1 << uint(j)
			acc |= b[j]
		}
		c[i] = acc
	}
	return c
}

// OrInPlace sets a to the element-wise union a ∪ b.
func (a Mat) OrInPlace(b Mat) {
	for i := range a {
		a[i] |= b[i]
	}
}

// Eq reports element-wise equality.
func (a Mat) Eq(b Mat) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether no entry is set.
func (a Mat) IsZero() bool {
	for _, r := range a {
		if r != 0 {
			return false
		}
	}
	return true
}

// Get reports entry (q, q2).
func (a Mat) Get(q, q2 int) bool { return a[q]&(1<<uint(q2)) != 0 }

// Set sets entry (q, q2).
func (a Mat) Set(q, q2 int) { a[q] |= 1 << uint(q2) }

// key returns a map key identifying the matrix value (used by the chain
// power caches to detect that the power sequence has become periodic).
func (a Mat) key() string {
	var b strings.Builder
	for _, r := range a {
		b.WriteByte(byte(r))
		b.WriteByte(byte(r >> 8))
		b.WriteByte(byte(r >> 16))
		b.WriteByte(byte(r >> 24))
		b.WriteByte(byte(r >> 32))
		b.WriteByte(byte(r >> 40))
		b.WriteByte(byte(r >> 48))
		b.WriteByte(byte(r >> 56))
	}
	return b.String()
}

// String renders the matrix as 0/1 rows for debugging.
func (a Mat) String() string {
	var b strings.Builder
	n := len(a)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a.Get(i, j) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		if i+1 < n {
			b.WriteByte('|')
		}
	}
	return b.String()
}
